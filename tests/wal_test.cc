#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/failpoints.h"
#include "base/io.h"

namespace dire::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> ReplayAll(const std::string& path,
                                   WalReplayStats* stats_out = nullptr) {
  std::vector<std::string> payloads;
  Result<WalReplayStats> stats =
      ReplayWal(path, [&payloads](std::string_view p) {
        payloads.emplace_back(p);
        return Status::Ok();
      });
  EXPECT_TRUE(stats.ok()) << stats.status();
  if (stats.ok() && stats_out != nullptr) *stats_out = *stats;
  return payloads;
}

TEST(Wal, AppendReplayRoundTrip) {
  std::string path = TempPath("wal_test_roundtrip.log");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<Wal>> wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok()) << wal.status();
    ASSERT_TRUE((*wal)->Append("one").ok());
    ASSERT_TRUE((*wal)->Append("two with spaces").ok());
    ASSERT_TRUE((*wal)->Append("").ok());  // Empty payload is legal.
  }
  WalReplayStats stats;
  std::vector<std::string> payloads = ReplayAll(path, &stats);
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "one");
  EXPECT_EQ(payloads[1], "two with spaces");
  EXPECT_EQ(payloads[2], "");
  EXPECT_FALSE(stats.dropped_torn_tail);
  std::remove(path.c_str());
}

TEST(Wal, MissingFileIsEmptyLog) {
  WalReplayStats stats;
  std::vector<std::string> payloads =
      ReplayAll(TempPath("wal_test_never_created.log"), &stats);
  EXPECT_EQ(payloads.size(), 0u);
  EXPECT_EQ(stats.valid_bytes, 0u);
}

TEST(Wal, TornTailIsDroppedAtEveryTruncationPoint) {
  std::string path = TempPath("wal_test_torn.log");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<Wal>> wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("first-record").ok());
    ASSERT_TRUE((*wal)->Append("second-record").ok());
  }
  Result<std::string> full = io::ReadFile(path);
  ASSERT_TRUE(full.ok());
  const size_t first_end = 8 + std::string("first-record").size();

  for (size_t cut = full->size(); cut-- > 0;) {
    ASSERT_TRUE(io::AtomicWriteFile(path, full->substr(0, cut)).ok());
    WalReplayStats stats;
    std::vector<std::string> payloads = ReplayAll(path, &stats);
    if (cut >= full->size()) {
      EXPECT_EQ(payloads.size(), 2u);
    } else if (cut >= first_end) {
      // Second record torn, first survives.
      ASSERT_EQ(payloads.size(), 1u) << "cut at " << cut;
      EXPECT_EQ(payloads[0], "first-record");
      EXPECT_EQ(stats.dropped_torn_tail, cut != first_end);
      EXPECT_EQ(stats.valid_bytes, first_end);
    } else {
      EXPECT_EQ(payloads.size(), 0u) << "cut at " << cut;
      EXPECT_EQ(stats.valid_bytes, 0u);
    }
  }
  std::remove(path.c_str());
}

TEST(Wal, MidFileDamageIsCorruption) {
  std::string path = TempPath("wal_test_midfile.log");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<Wal>> wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("aaaaaaaa").ok());
    ASSERT_TRUE((*wal)->Append("bbbbbbbb").ok());
  }
  Result<std::string> full = io::ReadFile(path);
  ASSERT_TRUE(full.ok());
  // Flip a payload byte of the FIRST record: the bad record is followed by
  // further bytes, so this is not a torn tail.
  std::string damaged = *full;
  damaged[8] ^= 0x01;
  ASSERT_TRUE(io::AtomicWriteFile(path, damaged).ok());
  Result<WalReplayStats> stats =
      ReplayWal(path, [](std::string_view) { return Status::Ok(); });
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(Wal, ResetEmptiesAndTruncateToDropsTail) {
  std::string path = TempPath("wal_test_reset.log");
  std::remove(path.c_str());
  Result<std::unique_ptr<Wal>> wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("gone-after-reset").ok());
  ASSERT_TRUE((*wal)->Reset().ok());
  EXPECT_EQ(ReplayAll(path).size(), 0u);

  ASSERT_TRUE((*wal)->Append("kept").ok());
  uint64_t keep = io::ReadFile(path)->size();
  ASSERT_TRUE((*wal)->Append("dropped").ok());
  ASSERT_TRUE((*wal)->TruncateTo(keep).ok());
  std::vector<std::string> payloads = ReplayAll(path);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "kept");
  // Appends after the truncation land cleanly.
  ASSERT_TRUE((*wal)->Append("after").ok());
  EXPECT_EQ(ReplayAll(path).size(), 2u);
  std::remove(path.c_str());
}

TEST(Wal, AppendFailpointsLeaveRecoverableLog) {
  std::string path = TempPath("wal_test_fp.log");
  std::remove(path.c_str());
  Result<std::unique_ptr<Wal>> wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("durable").ok());

  {
    failpoints::Scoped fp("wal.append.short");
    EXPECT_FALSE((*wal)->Append("torn-record-payload").ok());
  }
  // The torn tail hides the failed append but not the durable record.
  WalReplayStats stats;
  std::vector<std::string> payloads = ReplayAll(path, &stats);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "durable");
  EXPECT_TRUE(stats.dropped_torn_tail);

  {
    failpoints::Scoped fp("wal.append.enospc");
    EXPECT_FALSE((*wal)->Append("never-lands").ok());
  }
  {
    failpoints::Scoped fp("wal.sync");
    EXPECT_FALSE((*wal)->Append("sync-fails").ok());
  }
  std::remove(path.c_str());
}

TEST(Wal, ReplayAbortsOnApplyError) {
  std::string path = TempPath("wal_test_apply_err.log");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<Wal>> wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("a").ok());
    ASSERT_TRUE((*wal)->Append("b").ok());
  }
  int applied = 0;
  Result<WalReplayStats> stats =
      ReplayWal(path, [&applied](std::string_view) {
        ++applied;
        return Status::InvalidArgument("boom");
      });
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(applied, 1);
  std::remove(path.c_str());
}

TEST(Wal, FactRecordRoundTrip) {
  std::string payload =
      EncodeFactRecord("edge", {"with\ttab", "plain", std::string("n\0l", 3)});
  Result<FactRecord> record = DecodeFactRecord(payload);
  ASSERT_TRUE(record.ok()) << record.status();
  EXPECT_EQ(record->relation, "edge");
  ASSERT_EQ(record->values.size(), 3u);
  EXPECT_EQ(record->values[0], "with\ttab");
  EXPECT_EQ(record->values[1], "plain");
  EXPECT_EQ(record->values[2], std::string("n\0l", 3));

  EXPECT_FALSE(DecodeFactRecord("X\tnot-a-fact").ok());
  EXPECT_FALSE(DecodeFactRecord("").ok());
}

TEST(Wal, RetractRecordRoundTrip) {
  std::string payload = EncodeRetractRecord("edge", {"a", "with\ttab"});
  // The op-aware decoder sees the retraction.
  Result<WalRecord> record = DecodeWalRecord(payload);
  ASSERT_TRUE(record.ok()) << record.status();
  EXPECT_EQ(record->op, WalRecord::Op::kRetract);
  EXPECT_EQ(record->relation, "edge");
  ASSERT_EQ(record->values.size(), 2u);
  EXPECT_EQ(record->values[0], "a");
  EXPECT_EQ(record->values[1], "with\ttab");
  // The insert-only decoder refuses it rather than misapplying it.
  EXPECT_FALSE(DecodeFactRecord(payload).ok());
}

TEST(Wal, WalRecordDecodesBothOps) {
  Result<WalRecord> insert =
      DecodeWalRecord(EncodeFactRecord("node", {"x"}));
  ASSERT_TRUE(insert.ok()) << insert.status();
  EXPECT_EQ(insert->op, WalRecord::Op::kInsert);
  EXPECT_EQ(insert->relation, "node");

  EXPECT_FALSE(DecodeWalRecord("Q\tunknown-op").ok());
  EXPECT_FALSE(DecodeWalRecord("").ok());
}

TEST(Wal, TransientSyncGlitchIsRetriedUnderBackoff) {
  std::string path = TempPath("wal_test_retry_sync.log");
  std::remove(path.c_str());
  Result<std::unique_ptr<Wal>> wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  {
    // Two transient fsync failures, then success: the append must not
    // surface them to the committer.
    failpoints::Config glitch;
    glitch.fire_count = 2;
    failpoints::Scoped fp("wal.retry.sync", glitch);
    ASSERT_TRUE((*wal)->Append("survives-glitch").ok());
    EXPECT_EQ(failpoints::HitCount("wal.retry.sync"), 3);
  }
  {
    // A persistent failure is capped at the attempt budget and surfaces.
    failpoints::Scoped fp("wal.retry.sync");
    EXPECT_FALSE((*wal)->Append("never-durable").ok());
    EXPECT_EQ(failpoints::HitCount("wal.retry.sync"), 4);
  }
  // The glitch-surviving record replays; the failed one is at worst a torn
  // tail (it was written before the sync, so it may well be intact too —
  // only its durability was never confirmed).
  std::vector<std::string> payloads = ReplayAll(path);
  ASSERT_GE(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "survives-glitch");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dire::storage
