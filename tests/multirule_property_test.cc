// Property suite for the §5 extension: on random pairs of linear recursive
// rules, Theorem 5.1's verdict ("no chain generating path" => strongly data
// independent) is validated against the rewrite semi-decision with the
// canonical t0 exit rule, and structural invariants of the A/V machinery
// are checked on the way.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/string_util.h"
#include "core/analysis.h"
#include "core/equivalence.h"
#include "core/graph_view.h"
#include "core/rewrite.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

ast::Term Pick(const std::vector<std::string>& pool, Rng* rng) {
  return ast::Term::Var(pool[rng->Uniform(pool.size())]);
}

// Two random linear recursive rules over t/2 plus the canonical exit rule.
ast::Program RandomPair(uint64_t seed) {
  Rng rng(seed);
  ast::Program out;
  for (int r = 0; r < 2; ++r) {
    std::vector<std::string> pool = {"X", "Y", StrFormat("U%d", r),
                                     StrFormat("V%d", r)};
    ast::Rule rule;
    rule.head = ast::Atom("t", {ast::Term::Var("X"), ast::Term::Var("Y")});
    int atoms = 1 + static_cast<int>(rng.Uniform(2));
    for (int i = 0; i < atoms; ++i) {
      std::vector<ast::Term> args = {Pick(pool, &rng), Pick(pool, &rng)};
      rule.body.emplace_back(StrFormat("p%d_%d", r, i), std::move(args));
    }
    rule.body.emplace_back(
        "t", std::vector<ast::Term>{Pick(pool, &rng), Pick(pool, &rng)});
    out.rules.push_back(std::move(rule));
  }
  ast::Rule exit;
  exit.head = ast::Atom("t", {ast::Term::Var("X"), ast::Term::Var("Y")});
  exit.body.emplace_back(
      "t0", std::vector<ast::Term>{ast::Term::Var("X"), ast::Term::Var("Y")});
  out.rules.push_back(std::move(exit));
  return out;
}

class MultiRuleTheorem51 : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiRuleTheorem51, NoChainImpliesBounded) {
  ast::Program program = RandomPair(GetParam());
  Result<ast::RecursiveDefinition> def = ast::MakeDefinition(program, "t");
  ASSERT_TRUE(def.ok()) << def.status();
  Result<StrongIndependenceResult> strong = TestStrongIndependence(*def);
  ASSERT_TRUE(strong.ok()) << strong.status();
  if (strong->verdict != Verdict::kIndependent) return;

  SCOPED_TRACE(program.ToString());
  RewriteOptions opts;
  opts.max_depth = 8;
  opts.expansion.max_partial_strings = 1024;
  Result<RewriteResult> rewrite = BoundedRewrite(*def, opts);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status();
  EXPECT_EQ(rewrite->outcome, RewriteResult::Outcome::kBounded)
      << "Theorem 5.1 said independent but no bound found: "
      << rewrite->note;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiRuleTheorem51,
                         ::testing::Range<uint64_t>(0, 80));

// Structural invariants of the graph machinery on random pairs.
class MultiRuleStructure : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiRuleStructure, GraphInvariantsHold) {
  ast::Program program = RandomPair(GetParam() + 300);
  Result<ast::RecursiveDefinition> def = ast::MakeDefinition(program, "t");
  ASSERT_TRUE(def.ok());
  Result<AvGraph> graph = AvGraph::Build(*def);
  ASSERT_TRUE(graph.ok()) << graph.status();

  GraphView view = GraphView::All(*graph, /*augmented=*/true);
  for (size_t u = 0; u < graph->nodes().size(); ++u) {
    // Walk weights are antisymmetric in their base and share the gcd.
    for (size_t v = u; v < graph->nodes().size(); ++v) {
      WalkWeights forward = view.Weights(static_cast<int>(u),
                                         static_cast<int>(v));
      WalkWeights backward = view.Weights(static_cast<int>(v),
                                          static_cast<int>(u));
      ASSERT_EQ(forward.connected, backward.connected);
      if (!forward.connected) continue;
      EXPECT_TRUE(forward.ContainsValue(-backward.base));
      EXPECT_EQ(forward.gcd, backward.gcd);
      // Concatenating u->v and v->u must contain 0.
      EXPECT_TRUE(SumOf(forward, backward).ContainsValue(0));
    }
  }

  // Every edge's endpoints agree with the potential function modulo the
  // component gcd.
  for (const AvGraph::Edge& e : graph->edges()) {
    int w = e.kind == AvGraph::EdgeKind::kUnification ? 1 : 0;
    WalkWeights across = view.Weights(e.from, e.to);
    ASSERT_TRUE(across.connected);
    EXPECT_TRUE(across.ContainsValue(w));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiRuleStructure,
                         ::testing::Range<uint64_t>(0, 40));

// Chain detection is order-insensitive: permuting the two recursive rules
// must not change the verdict.
class MultiRuleOrderInvariance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiRuleOrderInvariance, VerdictStable) {
  ast::Program program = RandomPair(GetParam() + 600);
  ast::Program swapped;
  swapped.rules = {program.rules[1], program.rules[0], program.rules[2]};

  Result<ast::RecursiveDefinition> d1 = ast::MakeDefinition(program, "t");
  Result<ast::RecursiveDefinition> d2 = ast::MakeDefinition(swapped, "t");
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  Result<AvGraph> g1 = AvGraph::Build(*d1);
  Result<AvGraph> g2 = AvGraph::Build(*d2);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  Result<ChainAnalysis> c1 = DetectChains(*g1);
  Result<ChainAnalysis> c2 = DetectChains(*g2);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c1->has_chain_generating_path, c2->has_chain_generating_path)
      << program.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiRuleOrderInvariance,
                         ::testing::Range<uint64_t>(0, 60));

}  // namespace
}  // namespace dire::core
