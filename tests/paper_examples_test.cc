// End-to-end reproduction of every worked example in the paper. Each test
// states the paper's claim and checks the library reaches the same verdict.

#include <gtest/gtest.h>

#include "dire.h"
#include "tests/test_util.h"

namespace dire {
namespace {

using core::Verdict;
using testing::AnalyzeOrDie;

// Example 1.1 / 2.1: transitive closure is not data independent; its rule is
// not strongly data independent (Aho–Ullman).
TEST(PaperExamples, TransitiveClosureIsDependent) {
  core::RecursionAnalysis a = AnalyzeOrDie(testing::kTransitiveClosure, "t");
  EXPECT_TRUE(a.chains.has_chain_generating_path);
  EXPECT_TRUE(a.chains.exact);
  EXPECT_EQ(a.strong.verdict, Verdict::kDependent);
  EXPECT_EQ(a.strong.theorem, "Theorem 4.2");
  ASSERT_TRUE(a.weak.has_value());
  EXPECT_EQ(a.weak->verdict, Verdict::kDependent);
  EXPECT_EQ(a.weak->theorem, "Theorem 4.3");
  EXPECT_TRUE(a.weak->exit_connected);
  EXPECT_TRUE(a.weak->exit_irredundant);
}

// Example 1.2: the buys rules are data independent; the paper replaces them
// with two nonrecursive rules.
TEST(PaperExamples, BuysIsStronglyIndependent) {
  core::RecursionAnalysis a = AnalyzeOrDie(testing::kBuys, "buys");
  EXPECT_FALSE(a.chains.has_chain_generating_path);
  EXPECT_EQ(a.strong.verdict, Verdict::kIndependent);
  EXPECT_EQ(a.strong.theorem, "Theorem 4.1");
  ASSERT_TRUE(a.weak.has_value());
  EXPECT_EQ(a.weak->verdict, Verdict::kIndependent);
}

TEST(PaperExamples, BuysRewriteMatchesPaper) {
  ast::RecursiveDefinition def = testing::DefOrDie(testing::kBuys, "buys");
  Result<core::RewriteResult> r = core::BoundedRewrite(def);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->outcome, core::RewriteResult::Outcome::kBounded);
  // The paper's equivalent definition has two rules:
  //   buys(X,Y) :- likes(X,Y).
  //   buys(X,Y) :- trendy(X), likes(Z,Y).
  EXPECT_EQ(r->bound, 1);
  ASSERT_EQ(r->rewritten.rules.size(), 2u);
  EXPECT_EQ(r->rewritten.rules[0].ToString(), "buys(X,Y) :- likes(X,Y).");
  EXPECT_EQ(r->rewritten.rules[1].ToString(),
            "buys(X,Y) :- trendy(X), likes(Z_0,Y).");
}

// Example 3.3 / Figure 4: there is a path from p^1 to p^2 of weight 1, so
// (Lemma 3.3) position p^1 at iteration i shares a variable with p^2 at
// iteration i+1.
TEST(PaperExamples, Example33WeightOnePath) {
  core::RecursionAnalysis a = AnalyzeOrDie(testing::kExample33, "t");
  int p1 = a.graph.ArgumentNode(0, 1, 0);  // p(Y,Z) is body atom 1.
  int p2 = a.graph.ArgumentNode(0, 1, 1);
  ASSERT_GE(p1, 0);
  ASSERT_GE(p2, 0);
  core::GraphView view = core::GraphView::All(a.graph, /*augmented=*/false);
  EXPECT_TRUE(view.Weights(p1, p2).ContainsValue(1));
}

// Example 4.2 / Figure 6: two-segment chain generating path.
TEST(PaperExamples, TwoSegmentChain) {
  core::RecursionAnalysis a = AnalyzeOrDie(testing::kTwoSegment, "t");
  EXPECT_TRUE(a.chains.has_chain_generating_path);
  EXPECT_EQ(a.strong.verdict, Verdict::kDependent);
  // Both p and q lie on the chain.
  EXPECT_EQ(a.chains.atoms_on_chains.size(), 2u);
}

// Example 4.3 / Figure 7.
TEST(PaperExamples, Example43HasChain) {
  core::RecursionAnalysis a = AnalyzeOrDie(testing::kExample43, "t");
  EXPECT_TRUE(a.chains.has_chain_generating_path);
  EXPECT_EQ(a.strong.verdict, Verdict::kDependent);
}

// Example 4.4: a chain generating path exists, but the rule is strongly data
// independent — the test is incomplete for repeated nonrecursive predicates,
// so the library must answer kUnknown, not kDependent.
TEST(PaperExamples, Example44ChainButUnknown) {
  core::RecursionAnalysis a = AnalyzeOrDie(testing::kExample44, "t");
  EXPECT_TRUE(a.chains.has_chain_generating_path);
  EXPECT_EQ(a.strong.verdict, Verdict::kUnknown);
}

// Example 4.4 is in fact bounded: the semi-decision should find the rewrite.
TEST(PaperExamples, Example44IsActuallyBounded) {
  ast::RecursiveDefinition def = testing::DefOrDie(testing::kExample44, "t");
  Result<core::RewriteResult> r = core::BoundedRewrite(def);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->outcome, core::RewriteResult::Outcome::kBounded);
}

// Example 4.5 / Figure 8: no chain generating path; strongly independent.
TEST(PaperExamples, Example45StronglyIndependent) {
  core::RecursionAnalysis a = AnalyzeOrDie(testing::kExample45, "t");
  EXPECT_FALSE(a.chains.has_chain_generating_path);
  EXPECT_EQ(a.strong.verdict, Verdict::kIndependent);
  EXPECT_EQ(a.strong.theorem, "Theorem 4.1");
}

// Example 4.6, r3/r4: weakly data independent although not strongly; outside
// Theorem 4.3's class (multiple nonrecursive atoms), but the rewrite
// semi-decision settles it.
TEST(PaperExamples, Example46WeakButNotStrong) {
  core::RecursionAnalysis a = AnalyzeOrDie(testing::kExample46, "t");
  EXPECT_TRUE(a.chains.has_chain_generating_path);
  // Repeated nonrecursive predicate e: strong test must stay silent.
  EXPECT_EQ(a.strong.verdict, Verdict::kUnknown);
  ASSERT_TRUE(a.weak.has_value());
  EXPECT_EQ(a.weak->verdict, Verdict::kUnknown);

  ast::RecursiveDefinition def = testing::DefOrDie(testing::kExample46, "t");
  Result<core::RewriteResult> r = core::BoundedRewrite(def);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->outcome, core::RewriteResult::Outcome::kBounded);
  EXPECT_EQ(r->bound, 1);  // "the second string maps to all subsequent".
}

// Example 4.6, first variant: replacing the exit rule by t(X,Y) :- e(W,Y)
// makes the pair data independent (t is completely defined by the exit
// rule): the exit predicate is not connected to the chain.
TEST(PaperExamples, TcWithLooseExitIsIndependent) {
  core::RecursionAnalysis a = AnalyzeOrDie(testing::kTcLooseExit, "t");
  EXPECT_TRUE(a.chains.has_chain_generating_path);
  EXPECT_EQ(a.strong.verdict, Verdict::kDependent);  // Rule itself.
  ASSERT_TRUE(a.weak.has_value());
  EXPECT_TRUE(a.weak->regular_pair_test_applied);
  EXPECT_FALSE(a.weak->exit_connected);
  EXPECT_EQ(a.weak->verdict, Verdict::kIndependent);
}

// Example 4.7 / Figures 9-11: the three exit variants.
TEST(PaperExamples, Example47ExitNotConnected) {
  std::string text = std::string(testing::kExample47RecRule) + "\n" +
                     std::string(testing::kExample47ExitA);
  core::RecursionAnalysis a = AnalyzeOrDie(text, "t");
  ASSERT_TRUE(a.weak.has_value());
  EXPECT_TRUE(a.weak->regular_pair_test_applied);
  EXPECT_TRUE(a.chains.has_chain_generating_path);
  EXPECT_FALSE(a.weak->exit_connected);
  EXPECT_EQ(a.weak->verdict, Verdict::kIndependent);
}

TEST(PaperExamples, Example47ExitConnectedButRedundant) {
  std::string text = std::string(testing::kExample47RecRule) + "\n" +
                     std::string(testing::kExample47ExitB);
  core::RecursionAnalysis a = AnalyzeOrDie(text, "t");
  ASSERT_TRUE(a.weak.has_value());
  EXPECT_TRUE(a.weak->regular_pair_test_applied);
  EXPECT_TRUE(a.weak->exit_connected);
  EXPECT_FALSE(a.weak->exit_irredundant);
  EXPECT_EQ(a.weak->verdict, Verdict::kIndependent);
}

TEST(PaperExamples, Example47ExitIrredundantSoDependent) {
  std::string text = std::string(testing::kExample47RecRule) + "\n" +
                     std::string(testing::kExample47ExitC);
  core::RecursionAnalysis a = AnalyzeOrDie(text, "t");
  ASSERT_TRUE(a.weak.has_value());
  EXPECT_TRUE(a.weak->regular_pair_test_applied);
  EXPECT_TRUE(a.weak->exit_connected);
  EXPECT_TRUE(a.weak->exit_irredundant);
  EXPECT_EQ(a.weak->irredundance_condition, 3);  // Paper cites condition 3.
  EXPECT_EQ(a.weak->verdict, Verdict::kDependent);
}

// Example 5.1 / Figure 15: each rule alone is strongly independent; together
// they have a chain generating path.
TEST(PaperExamples, Example51RulesIndependentAlone) {
  core::RecursionAnalysis r1 = AnalyzeOrDie(testing::kExample51R1Only, "t");
  EXPECT_FALSE(r1.chains.has_chain_generating_path);
  EXPECT_EQ(r1.strong.verdict, Verdict::kIndependent);

  core::RecursionAnalysis r2 = AnalyzeOrDie(testing::kExample51R2Only, "t");
  EXPECT_FALSE(r2.chains.has_chain_generating_path);
  EXPECT_EQ(r2.strong.verdict, Verdict::kIndependent);
}

TEST(PaperExamples, Example51PairHasChain) {
  core::RecursionAnalysis a = AnalyzeOrDie(testing::kExample51, "t");
  EXPECT_TRUE(a.chains.has_chain_generating_path);
  // With several rules the chain test is only a sufficient condition for
  // independence, so finding a chain yields kUnknown, never kIndependent.
  EXPECT_NE(a.strong.verdict, Verdict::kIndependent);
}

// Example 6.1: b(W,Y) is not connected to the unbounded chain; e(X,Z) is.
TEST(PaperExamples, Example61HoistableAtom) {
  core::RecursionAnalysis a = AnalyzeOrDie(testing::kExample61, "t");
  EXPECT_TRUE(a.chains.has_chain_generating_path);
  // Body atoms of the recursive rule: 0 = e(X,Z), 1 = b(W,Y), 2 = t(Z,Y).
  EXPECT_TRUE(a.chains.chain_connected_atoms.count({0, 0}) > 0);
  EXPECT_TRUE(a.chains.chain_connected_atoms.count({0, 1}) == 0);
}

TEST(PaperExamples, Example61HoistProducesEquivalentProgram) {
  ast::RecursiveDefinition def = testing::DefOrDie(testing::kExample61, "t");
  Result<core::HoistResult> h = core::HoistUnconnectedPredicates(def);
  ASSERT_TRUE(h.ok()) << h.status();
  EXPECT_TRUE(h->changed) << h->note;
  ASSERT_EQ(h->hoisted.size(), 1u);
  EXPECT_EQ(h->hoisted[0].predicate, "b");
}

}  // namespace
}  // namespace dire
