#include <gtest/gtest.h>

#include "base/rng.h"
#include "storage/csv.h"
#include "storage/database.h"
#include "storage/generators.h"
#include "storage/relation.h"
#include "storage/value.h"
#include "tests/test_util.h"

namespace dire::storage {
namespace {

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable t;
  ValueId a = t.Intern("alice");
  ValueId b = t.Intern("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.Intern("alice"), a);
  EXPECT_EQ(t.Name(a), "alice");
  EXPECT_EQ(t.size(), 2u);
}

TEST(SymbolTable, FindWithoutIntern) {
  SymbolTable t;
  EXPECT_EQ(t.Find("x"), SymbolTable::kMissing);
  ValueId a = t.Intern("x");
  EXPECT_EQ(t.Find("x"), a);
}

TEST(Relation, InsertDeduplicates) {
  Relation r("e", 2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({2, 1}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({2, 1}));
  EXPECT_FALSE(r.Contains({9, 9}));
}

TEST(Relation, ProbeFindsMatchingRows) {
  Relation r("e", 2);
  r.Insert({1, 2});
  r.Insert({1, 3});
  r.Insert({2, 3});
  const std::vector<uint32_t>& rows = r.Probe(0, 1);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(r.row(rows[0])[0], 1u);
  EXPECT_EQ(r.row(rows[1])[0], 1u);
  EXPECT_TRUE(r.Probe(1, 99).empty());
}

TEST(Relation, IndexMaintainedAcrossInserts) {
  Relation r("e", 2);
  r.Insert({1, 2});
  EXPECT_EQ(r.Probe(0, 1).size(), 1u);  // Builds the index.
  r.Insert({1, 5});                     // Must update it.
  EXPECT_EQ(r.Probe(0, 1).size(), 2u);
  EXPECT_TRUE(r.HasIndex(0));
  EXPECT_FALSE(r.HasIndex(1));
}

TEST(Relation, CompositeProbeFindsExactMatches) {
  Relation r("p", 3);
  r.Insert({1, 2, 3});
  r.Insert({1, 2, 4});
  r.Insert({1, 5, 3});
  r.Insert({2, 2, 3});
  const std::vector<uint32_t>& rows = r.ProbeComposite({0, 1}, {1, 2});
  ASSERT_EQ(rows.size(), 2u);
  // Row order within a bucket is insertion order.
  EXPECT_TRUE(RowEquals(r.row(rows[0]), Tuple{1, 2, 3}));
  EXPECT_TRUE(RowEquals(r.row(rows[1]), Tuple{1, 2, 4}));
  EXPECT_TRUE(r.ProbeComposite({0, 1}, {9, 9}).empty());
  EXPECT_TRUE(r.HasCompositeIndex({0, 1}));
  EXPECT_FALSE(r.HasCompositeIndex({0, 2}));
}

TEST(Relation, CompositeIndexMaintainedAcrossInserts) {
  Relation r("p", 3);
  r.Insert({1, 2, 3});
  EXPECT_EQ(r.ProbeComposite({1, 2}, {2, 3}).size(), 1u);  // Builds it.
  r.Insert({7, 2, 3});                                     // Must update it.
  EXPECT_EQ(r.ProbeComposite({1, 2}, {2, 3}).size(), 2u);
}

TEST(Relation, FrozenProbesRequirePreparedIndexes) {
  Relation r("e", 2);
  r.Insert({1, 2});
  r.Insert({1, 3});
  // Without preparation the frozen probes yield nothing (and never build).
  EXPECT_FALSE(r.HasIndex(0));
  EXPECT_FALSE(r.HasCompositeIndex({0, 1}));
  r.EnsureIndex(0);
  r.EnsureCompositeIndex({0, 1});
  const Relation& frozen = r;
  EXPECT_EQ(frozen.ProbeFrozen(0, 1).size(), 2u);
  EXPECT_EQ(frozen.ProbeCompositeFrozen({0, 1}, {1, 3}).size(), 1u);
  EXPECT_TRUE(frozen.ProbeCompositeFrozen({0, 1}, {1, 9}).empty());
}

TEST(Relation, ReserveKeepsContentsAndDedup) {
  Relation r("e", 2);
  r.Insert({1, 2});
  r.Reserve(1000);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({3, 4}));
}

TEST(Relation, ApproxBytesCountsCompositeIndexes) {
  Relation r("p", 3);
  for (ValueId i = 0; i < 100; ++i) r.Insert({i, i % 7, i % 3});
  size_t before = r.ApproxBytes();
  r.EnsureCompositeIndex({0, 1});
  EXPECT_GT(r.ApproxBytes(), before);
}

TEST(Relation, ClearDropsCompositeIndexes) {
  Relation r("p", 2);
  r.Insert({1, 2});
  r.EnsureCompositeIndex({0, 1});
  r.Clear();
  EXPECT_FALSE(r.HasCompositeIndex({0, 1}));
  EXPECT_EQ(r.size(), 0u);
}

TEST(Relation, ClearResetsEverything) {
  Relation r("e", 1);
  r.Insert({7});
  r.Probe(0, 7);
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.Probe(0, 7).empty());
  EXPECT_TRUE(r.Insert({7}));
}

TEST(Relation, EraseRowCompactsInPlace) {
  Relation r("e", 2);
  r.Insert({1, 2});
  r.Insert({3, 4});
  r.Insert({5, 6});
  EXPECT_FALSE(r.EraseRow(Tuple{9, 9}));
  EXPECT_TRUE(r.EraseRow(Tuple{3, 4}));
  EXPECT_EQ(r.size(), 2u);
  // Survivors keep their relative (insertion) order under new dense ids.
  EXPECT_TRUE(RowEquals(r.row(0), Tuple{1, 2}));
  EXPECT_TRUE(RowEquals(r.row(1), Tuple{5, 6}));
  EXPECT_FALSE(r.Contains({3, 4}));
  EXPECT_TRUE(r.Insert({3, 4}));  // Dedup forgot it; re-insert is new.
  EXPECT_FALSE(r.Insert({5, 6}));
}

TEST(Relation, ErasePatchesBuiltIndexes) {
  Relation r("e", 2);
  r.Insert({1, 2});
  r.Insert({1, 3});
  r.Insert({2, 3});
  r.Insert({1, 4});
  r.EnsureIndex(0);
  r.EnsureCompositeIndex({0, 1});
  r.EnsureSortedIndex(1);
  ASSERT_TRUE(r.EraseRow(Tuple{1, 3}));
  // Hash index: remaining (1, *) rows, ascending, without a rebuild.
  EXPECT_TRUE(r.HasIndex(0));
  const std::vector<uint32_t>& rows = r.ProbeFrozen(0, 1);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(RowEquals(r.row(rows[0]), Tuple{1, 2}));
  EXPECT_TRUE(RowEquals(r.row(rows[1]), Tuple{1, 4}));
  // Composite index: the erased key probes to nothing.
  EXPECT_TRUE(r.ProbeCompositeFrozen({0, 1}, {1, 3}).empty());
  EXPECT_EQ(r.ProbeCompositeFrozen({0, 1}, {2, 3}).size(), 1u);
  // Sorted index still covers every row.
  EXPECT_TRUE(r.HasSortedIndex(1));
  std::vector<uint32_t> sorted;
  r.ProbeSortedFrozen(1, 3, &sorted);
  ASSERT_EQ(sorted.size(), 1u);
  EXPECT_TRUE(RowEquals(r.row(sorted[0]), Tuple{2, 3}));
  // And the patched indexes absorb later inserts like any built index.
  r.Insert({1, 9});
  EXPECT_EQ(r.ProbeFrozen(0, 1).size(), 3u);
}

TEST(Relation, EraseMatchingKeepsCountsAligned) {
  Relation r("t", 1);
  r.EnableCounts();
  for (ValueId v = 0; v < 6; ++v) {
    r.Insert({v});
    r.SetCount(v, static_cast<int64_t>(v) * 10);
  }
  Relation drop("drop", 1);
  drop.Insert({1});
  drop.Insert({4});
  drop.Insert({9});  // Absent: must not count.
  EXPECT_EQ(r.EraseMatching(drop), 2u);
  ASSERT_EQ(r.size(), 4u);
  const ValueId expect[] = {0, 2, 3, 5};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(RowEquals(r.row(i), Tuple{expect[i]}));
    EXPECT_EQ(r.CountAt(i), static_cast<int64_t>(expect[i]) * 10);
  }
}

TEST(Relation, EraseManyKeepsDedupTableConsistent) {
  // Enough rows that the dedup table has real collision clusters, so the
  // backward-shift deletion's chain repair is actually exercised.
  Relation r("e", 2);
  for (ValueId v = 0; v < 2000; ++v) r.Insert({v, v % 13});
  r.EnsureIndex(1);
  Relation drop("drop", 2);
  for (ValueId v = 0; v < 2000; v += 3) drop.Insert({v, v % 13});
  EXPECT_EQ(r.EraseMatching(drop), drop.size());
  EXPECT_EQ(r.size(), 2000u - drop.size());
  size_t live = 0;
  for (ValueId v = 0; v < 2000; ++v) {
    const bool dropped = v % 3 == 0;
    EXPECT_NE(r.Contains({v, v % 13}), dropped) << v;
    if (!dropped) ++live;
  }
  size_t indexed = 0;
  for (ValueId k = 0; k < 13; ++k) indexed += r.ProbeFrozen(1, k).size();
  EXPECT_EQ(indexed, live);
  // Erased tuples are insertable again; survivors still deduplicate.
  EXPECT_TRUE(r.Insert({0, 0}));
  EXPECT_FALSE(r.Insert({1, 1}));
}

TEST(Database, GetOrCreateChecksArity) {
  Database db;
  ASSERT_TRUE(db.GetOrCreate("e", 2).ok());
  EXPECT_TRUE(db.GetOrCreate("e", 2).ok());
  EXPECT_FALSE(db.GetOrCreate("e", 3).ok());
  EXPECT_NE(db.Find("e"), nullptr);
  EXPECT_EQ(db.Find("nope"), nullptr);
}

TEST(Database, AddFactAndDump) {
  Database db;
  ast::Program p = dire::testing::ParseOrDie("e(b, c). e(a, b).");
  ASSERT_TRUE(db.LoadFacts(p).ok());
  EXPECT_EQ(db.DumpRelation("e"), "e(a,b)\ne(b,c)\n");  // Sorted.
  EXPECT_EQ(db.TotalTuples(), 2u);
}

TEST(Database, AddFactRejectsVariables) {
  Database db;
  ast::Atom atom("e", {ast::Term::Var("X")});
  EXPECT_FALSE(db.AddFact(atom).ok());
}

TEST(Database, RemoveRowDeletesExactlyOneTuple) {
  Database db;
  ast::Program p = dire::testing::ParseOrDie("e(a, b). e(b, c).");
  ASSERT_TRUE(db.LoadFacts(p).ok());

  Result<bool> removed = db.RemoveRow("e", {"a", "b"});
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_TRUE(*removed);
  EXPECT_EQ(db.DumpRelation("e"), "e(b,c)\n");
  // The index answers consistently after the in-place erase.
  Relation* e = db.Find("e");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->Probe(0, db.symbols().Intern("a")).empty());
  EXPECT_EQ(e->Probe(0, db.symbols().Intern("b")).size(), 1u);

  // Absent tuple, absent relation: false, not an error.
  EXPECT_FALSE(*db.RemoveRow("e", {"a", "b"}));
  EXPECT_FALSE(*db.RemoveRow("nope", {"x"}));
  // Arity mismatch is caller error.
  EXPECT_FALSE(db.RemoveRow("e", {"a"}).ok());
}

TEST(Csv, LoadAndDumpRoundTrip) {
  Database db;
  ASSERT_TRUE(LoadCsv(&db, "e", "a, b\n# comment\n\nb,c\n").ok());
  Result<std::string> out = DumpCsv(db, "e");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "a,b\nb,c\n");
}

TEST(Csv, FieldCountMismatch) {
  Database db;
  Status s = LoadCsv(&db, "e", "a,b\na\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(Generators, ChainHasNMinusOneEdges) {
  Database db;
  ASSERT_TRUE(MakeChain(&db, "e", 10).ok());
  EXPECT_EQ(db.Find("e")->size(), 9u);
}

TEST(Generators, CycleClosesChain) {
  Database db;
  ASSERT_TRUE(MakeCycle(&db, "e", 10).ok());
  EXPECT_EQ(db.Find("e")->size(), 10u);
}

TEST(Generators, TreeEdgeCount) {
  Database db;
  ASSERT_TRUE(MakeTree(&db, "e", 2, 3).ok());
  // Complete binary tree with 3 edge levels: 2 + 4 + 8 = 14 edges.
  EXPECT_EQ(db.Find("e")->size(), 14u);
}

TEST(Generators, RandomGraphExactEdgeCount) {
  Database db;
  Rng rng(5);
  ASSERT_TRUE(MakeRandomGraph(&db, "e", 20, 50, &rng).ok());
  EXPECT_EQ(db.Find("e")->size(), 50u);
  // No self loops.
  for (RowRef t : db.Find("e")->rows()) EXPECT_NE(t[0], t[1]);
}

TEST(Generators, RandomGraphRejectsImpossible) {
  Database db;
  Rng rng(5);
  EXPECT_FALSE(MakeRandomGraph(&db, "e", 2, 5, &rng).ok());
}

TEST(Generators, GridEdgeCount) {
  Database db;
  ASSERT_TRUE(MakeGrid(&db, "e", 3, 4).ok());
  // Right edges: 2*4, down edges: 3*3.
  EXPECT_EQ(db.Find("e")->size(), 8u + 9u);
}

TEST(Generators, ConsumerData) {
  Database db;
  Rng rng(7);
  ASSERT_TRUE(MakeConsumerData(&db, 20, 10, 3, 0.5, &rng).ok());
  EXPECT_EQ(db.Find("likes")->size(), 60u);
  EXPECT_LE(db.Find("trendy")->size(), 20u);
}

TEST(Generators, ConsumerDataZeroTrendyStillCreatesRelation) {
  Database db;
  Rng rng(7);
  ASSERT_TRUE(MakeConsumerData(&db, 5, 5, 1, 0.0, &rng).ok());
  ASSERT_NE(db.Find("trendy"), nullptr);
  EXPECT_EQ(db.Find("trendy")->size(), 0u);
}

TEST(Generators, Deterministic) {
  Database a;
  Database b;
  Rng ra(11);
  Rng rb(11);
  ASSERT_TRUE(MakeRandomGraph(&a, "e", 15, 30, &ra).ok());
  ASSERT_TRUE(MakeRandomGraph(&b, "e", 15, 30, &rb).ok());
  EXPECT_EQ(a.DumpRelation("e"), b.DumpRelation("e"));
}

}  // namespace
}  // namespace dire::storage
