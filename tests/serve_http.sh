#!/usr/bin/env bash
# Observability end-to-end for `dire serve`:
#
#   - /healthz, /statusz, /tracez answer valid JSON on a live loaded server
#     (checked with a real JSON parser, not substring grep);
#   - /metrics answers a strictly valid Prometheus exposition — line
#     grammar, unique # TYPE per family, histogram `le` cumulativity — and
#     keeps answering while every admission slot is held by SLEEPs;
#   - a query slower than --slow-query-ms produces a slow-query access-log
#     entry carrying the join order with est= and actual= cardinalities;
#   - after a graceful stop, the access log holds exactly one
#     "type":"request" line per acknowledged request (HEALTH probes are
#     unlogged by design, which is what keeps this count deterministic).
#
# Usage: serve_http.sh /path/to/dire_cli
set -u

CLI="${1:?usage: serve_http.sh /path/to/dire_cli}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/dire_serve_http.XXXXXX")"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

command -v curl > /dev/null || fail "curl is required"
command -v python3 > /dev/null || fail "python3 is required"

# Transitive closure over a 200-node cycle: t holds 40000 tuples, so a full
# QUERY t(X, Y) reliably crosses the 1 ms slow-query threshold.
PROG="$WORK/tc.dl"
{
  echo 't(X, Y) :- e(X, Z), t(Z, Y).'
  echo 't(X, Y) :- e(X, Y).'
  for i in $(seq 0 199); do
    echo "e(n$i, n$(( (i + 1) % 200 )))."
  done
} > "$PROG"

ACCESS_LOG="$WORK/access.log"
"$CLI" serve "$PROG" --data-dir "$WORK/d" \
    --port-file "$WORK/port" --http-port 0 --http-port-file "$WORK/http_port" \
    --access-log "$ACCESS_LOG" --slow-query-ms 1 \
    --max-inflight 1 --max-queue 1 \
    > "$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 2000); do
  [ -s "$WORK/port" ] && [ -s "$WORK/http_port" ] && break
  kill -0 "$SERVER_PID" 2> /dev/null || fail "server died at startup: $(cat "$WORK/server.log")"
  sleep 0.005
done
PORT="$(cat "$WORK/port")"
HTTP_PORT="$(cat "$WORK/http_port")"
[ -n "$PORT" ] && [ -n "$HTTP_PORT" ] || fail "server never wrote its port files"
[ "$HTTP_PORT" -gt 0 ] || fail "http port file holds '$HTTP_PORT'"

request() { # line -> one response line
  local line="$1" response
  exec 3<> "/dev/tcp/127.0.0.1/$PORT" || return 1
  printf '%s\n' "$line" >&3 || { exec 3>&-; return 1; }
  IFS= read -r -t 15 response <&3 || { exec 3>&-; return 1; }
  exec 3>&-
  printf '%s\n' "$response"
}

# A QUERY drained through END; prints the status line.
query() { # atom
  local status=""
  exec 3<> "/dev/tcp/127.0.0.1/$PORT" || return 1
  printf 'QUERY %s\n' "$1" >&3
  local line
  while IFS= read -r -t 30 line <&3; do
    [ -z "$status" ] && status="$line"
    [ "$line" = "END" ] && break
  done
  exec 3>&-
  printf '%s\n' "$status"
}

for _ in $(seq 1 2000); do
  case "$(request HEALTH 2> /dev/null)" in "OK ready=1"*) break ;; esac
  kill -0 "$SERVER_PID" 2> /dev/null || fail "server died during recovery"
  sleep 0.005
done

fetch() { # path file
  curl -fsS --max-time 5 "http://127.0.0.1:$HTTP_PORT$1" -o "$2" \
      || fail "GET $1 failed"
}

# Tracked requests we send; each must produce one access-log line.
ACKED=0

# --- Healthz / statusz JSON shape on a live server. --------------------------
echo "--- healthz and statusz"
response="$(query 't(n0, X)')"
[ "$response" = "OK 200" ] || fail "expected OK 200 from the point query, got: $response"
ACKED=$((ACKED + 1))

fetch /healthz "$WORK/healthz.json"
python3 - "$WORK/healthz.json" << 'EOF' || fail "healthz JSON invalid"
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["ready"] is True, doc
assert doc["live"] is True, doc
assert doc["role"] == "primary", doc
assert isinstance(doc["version"], str) and doc["version"], doc
assert isinstance(doc["uptime_s"], int), doc
EOF

fetch /statusz "$WORK/statusz.json"
python3 - "$WORK/statusz.json" << 'EOF' || fail "statusz JSON invalid"
import json, sys
doc = json.load(open(sys.argv[1]))
gauges = doc["gauges"]
assert gauges["tuples"] >= 40000, gauges
series = doc["series"]
assert series["resolution_s"] == 1, series
for key in ("qps", "p50_us", "p99_us", "queue_depth", "shed", "repl_lag"):
    assert isinstance(series[key], list), (key, series)
EOF

fetch /tracez "$WORK/tracez.json"
python3 - "$WORK/tracez.json" << 'EOF' || fail "tracez JSON invalid"
import json, sys
doc = json.load(open(sys.argv[1]))
spans = doc["spans"]
assert any(s["verb"] == "QUERY" and s["relation"] == "t" for s in spans), spans
assert all(s["request_id"] >= 1 for s in spans), spans
EOF
echo "    healthz/statusz/tracez parse and agree with the load"

# --- Strict Prometheus exposition, live. -------------------------------------
echo "--- metrics exposition"
validate_metrics() { # file
  python3 - "$1" << 'EOF'
import re, sys
text = open(sys.argv[1]).read()
types = {}
sampled = set()
series = set()
hist = {}
METRIC = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
for number, line in enumerate(text.split("\n")[:-1], 1):
    if not line:
        continue
    if line.startswith("# TYPE "):
        name, kind = line[7:].rsplit(" ", 1)
        assert METRIC.match(name), line
        assert name not in types, f"duplicate TYPE: {line}"
        assert name not in sampled, f"TYPE after samples: {line}"
        assert kind in ("counter", "gauge", "histogram"), line
        types[name] = kind
        continue
    if line.startswith("#"):
        continue
    m = re.match(r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$", line)
    assert m, f"line {number} malformed: {line}"
    name, labels, value = m.group(1), m.group(2) or "", m.group(3)
    assert value == "+Inf" or re.match(r"^[-+0-9.eE]+$", value), line
    for escape in re.findall(r"\\.", labels):
        assert escape in ("\\\\", '\\"', "\\n"), f"illegal escape in {line}"
    assert (name, labels) not in series, f"duplicate series: {line}"
    series.add((name, labels))
    family = name
    for suffix in ("_bucket", "_sum", "_count"):
        base = name[: -len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) == "histogram":
            family = base
    sampled.add(family)
    if name.endswith("_bucket") and types.get(name[:-7]) == "histogram":
        le = re.search(r'le="([^"]+)"', labels).group(1)
        group = re.sub(r'le="[^"]+",?', "", labels)
        bound = float("inf") if le == "+Inf" else float(le)
        hist.setdefault((name[:-7], group), []).append((bound, float(value)))
for (family, group), buckets in hist.items():
    bounds = [b for b, _ in buckets]
    counts = [c for _, c in buckets]
    assert bounds == sorted(bounds), f"{family} le bounds not increasing"
    assert counts == sorted(counts), f"{family} buckets not cumulative"
    assert bounds[-1] == float("inf"), f"{family} missing +Inf bucket"
print(f"ok: {len(series)} series, {len(types)} typed families")
EOF
}
fetch /metrics "$WORK/metrics.txt"
validate_metrics "$WORK/metrics.txt" || fail "metrics exposition invalid"
# Under -DDIRE_OBS=OFF the subsystem compiles out and the exposition is
# legitimately empty; the endpoint must still answer, but the content
# checks only apply when metrics are compiled in.
if grep -q '^# TYPE ' "$WORK/metrics.txt"; then
  grep -q 'dire_build_info{version="' "$WORK/metrics.txt" \
      || fail "metrics lack dire_build_info"
  grep -q 'dire_server_request_exec_us_bucket{.*verb="QUERY"' "$WORK/metrics.txt" \
      || fail "metrics lack the per-verb exec-latency histogram"
else
  echo "    exposition empty (observability compiled out); content checks skipped"
fi

# --- /metrics under full saturation. -----------------------------------------
echo "--- metrics while saturated"
(request "SLEEP 3000" > "$WORK/sleep1.out") &
SLEEP1=$!
(request "SLEEP 3000" > "$WORK/sleep2.out") &
SLEEP2=$!
saturated=0
for _ in $(seq 1 2000); do
  case "$(request HEALTH)" in
    "OK ready=1 inflight=2"*) saturated=1; break ;;
  esac
  sleep 0.005
done
[ "$saturated" = 1 ] || fail "server never reached inflight=2"

# Both admission slots are held, yet the scrape must answer promptly: the
# observability plane never queues behind the request plane. The ISSUE
# budget is 100 ms; allow 1 s so sanitizer builds do not flake the bound.
curl -fsS --max-time 1 "http://127.0.0.1:$HTTP_PORT/metrics" \
    -o "$WORK/metrics_saturated.txt" \
    || fail "GET /metrics stalled behind a saturated admission queue"
validate_metrics "$WORK/metrics_saturated.txt" \
    || fail "saturated metrics exposition invalid"

wait "$SLEEP1" "$SLEEP2"
grep -qx "OK slept=3000" "$WORK/sleep1.out" || fail "first SLEEP was disturbed"
grep -qx "OK slept=3000" "$WORK/sleep2.out" || fail "queued SLEEP was disturbed"
ACKED=$((ACKED + 2))
echo "    scrape answered under saturation; sleeps finished untouched"

# --- Slow-query capture. -----------------------------------------------------
echo "--- slow-query log"
response="$(query 't(X, Y)')"
[ "$response" = "OK 40000" ] || fail "expected the full closure, got: $response"
ACKED=$((ACKED + 1))

# The slow-query entry is written after the response is acknowledged; give
# the worker a moment to finish the explain capture. The earlier SLEEPs
# also produce slow_query entries (any request over the threshold does),
# so select the QUERY one rather than assuming it appears first.
found=0
for _ in $(seq 1 1000); do
  grep '"type":"slow_query"' "$ACCESS_LOG" 2> /dev/null \
      | grep -q '"verb":"QUERY"' && { found=1; break; }
  sleep 0.01
done
[ "$found" = 1 ] \
    || fail "no QUERY slow_query entry appeared in the access log"
slow_line="$(grep '"type":"slow_query"' "$ACCESS_LOG" \
    | grep '"verb":"QUERY"' | head -1)"
case "$slow_line" in
  *"join order"*) ;;
  *) fail "slow_query entry lacks the join order: $slow_line" ;;
esac
case "$slow_line" in
  *"est="*"actual="*) ;;
  *) fail "slow_query entry lacks est/actual cardinalities: $slow_line" ;;
esac
echo "    slow query captured its join order with est/actual cardinalities"

# --- Access-log completeness after a graceful stop. --------------------------
echo "--- access-log completeness"
kill -TERM "$SERVER_PID" 2> /dev/null
wait "$SERVER_PID" 2> /dev/null
SERVER_PID=""
[ -e "$WORK/d/LOCK" ] && fail "server leaked its LOCK"

logged="$(grep -c '"type":"request"' "$ACCESS_LOG")"
[ "$logged" = "$ACKED" ] \
    || fail "access log holds $logged request lines for $ACKED acked requests: $(cat "$ACCESS_LOG")"
python3 - "$ACCESS_LOG" "$ACKED" << 'EOF' || fail "access-log lines invalid"
import json, sys
ids = set()
for line in open(sys.argv[1]):
    doc = json.loads(line)
    if doc["type"] != "request":
        continue
    assert doc["verb"] in ("QUERY", "ADD", "RETRACT", "SLEEP"), doc
    assert doc["status"] in ("OK", "PARTIAL"), doc
    assert doc["queue_us"] >= 0 and doc["exec_us"] >= 0, doc
    ids.add(doc["request_id"])
assert len(ids) == int(sys.argv[2]), (ids, sys.argv[2])
EOF
echo "    one access-log line per acked request, all distinct IDs"

echo "PASS: observability endpoints valid, live under saturation, slow queries explained, access log complete"
