#include <gtest/gtest.h>

#include "core/equivalence.h"
#include "core/plan_program.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

using dire::testing::ParseOrDie;

const PredicateReport* FindReport(const ProgramPlan& plan,
                                  const std::string& predicate) {
  for (const PredicateReport& r : plan.reports) {
    if (r.predicate == predicate) return &r;
  }
  return nullptr;
}

// A mixed workload: one bounded recursion, one genuine recursion, one
// hoistable recursion, one nonrecursive view.
constexpr const char* kMixed = R"(
  buys(X, Y) :- likes(X, Y).
  buys(X, Y) :- trendy(X), buys(Z, Y).

  reach(X, Y) :- edge(X, Z), reach(Z, Y).
  reach(X, Y) :- edge(X, Y).

  annot(X, Y) :- edge(X, Z), tag(W, Y), annot(Z, Y).
  annot(X, Y) :- seed(X, Y).

  view(X) :- likes(X, Y), trendy(X).
)";

TEST(PlanProgram, MixedWorkloadActions) {
  ast::Program program = ParseOrDie(kMixed);
  Result<ProgramPlan> plan = OptimizeProgram(program);
  ASSERT_TRUE(plan.ok()) << plan.status();

  const PredicateReport* buys = FindReport(*plan, "buys");
  ASSERT_NE(buys, nullptr);
  EXPECT_EQ(buys->action, PredicateReport::Action::kRewritten) << buys->note;

  const PredicateReport* reach = FindReport(*plan, "reach");
  ASSERT_NE(reach, nullptr);
  EXPECT_EQ(reach->action, PredicateReport::Action::kUnchanged);
  EXPECT_EQ(reach->strong_verdict, Verdict::kDependent);

  const PredicateReport* annot = FindReport(*plan, "annot");
  ASSERT_NE(annot, nullptr);
  EXPECT_EQ(annot->action, PredicateReport::Action::kHoisted) << annot->note;

  // Nonrecursive predicates do not appear in the reports.
  EXPECT_EQ(FindReport(*plan, "view"), nullptr);

  // No rule of the optimized buys definition is recursive anymore.
  for (const ast::Rule& r : plan->optimized.rules) {
    if (r.head.predicate == "buys") {
      EXPECT_FALSE(r.BodyUses("buys")) << r.ToString();
    }
  }
}

TEST(PlanProgram, OptimizedProgramIsEquivalent) {
  ast::Program program = ParseOrDie(kMixed);
  Result<ProgramPlan> plan = OptimizeProgram(program);
  ASSERT_TRUE(plan.ok());
  for (const char* target : {"buys", "reach", "annot", "view"}) {
    Result<EquivalenceCheckResult> eq = CheckEquivalenceOnRandomDatabases(
        program, plan->optimized, target);
    ASSERT_TRUE(eq.ok()) << eq.status();
    EXPECT_TRUE(eq->equivalent) << target << "\n" << eq->counterexample;
  }
}

TEST(PlanProgram, MutualRecursionSkipped) {
  ast::Program program = ParseOrDie(R"(
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
  )");
  Result<ProgramPlan> plan = OptimizeProgram(program);
  ASSERT_TRUE(plan.ok());
  const PredicateReport* even = FindReport(*plan, "even");
  ASSERT_NE(even, nullptr);
  EXPECT_EQ(even->action, PredicateReport::Action::kSkipped);
  EXPECT_NE(even->note.find("mutually recursive"), std::string::npos);
  EXPECT_EQ(plan->optimized.rules.size(), program.rules.size());
}

TEST(PlanProgram, FactsPassThrough) {
  ast::Program program = ParseOrDie(R"(
    likes(ann, vase).
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), buys(Z, Y).
  )");
  Result<ProgramPlan> plan = OptimizeProgram(program);
  ASSERT_TRUE(plan.ok());
  bool fact_kept = false;
  for (const ast::Rule& r : plan->optimized.rules) {
    if (r.IsFact() && r.head.predicate == "likes") fact_kept = true;
  }
  EXPECT_TRUE(fact_kept);
}

TEST(PlanProgram, DisablingStepsKeepsRecursion) {
  ast::Program program = ParseOrDie(dire::testing::kBuys);
  PlanProgramOptions options;
  options.enable_rewrite = false;
  options.enable_hoist = false;
  Result<ProgramPlan> plan = OptimizeProgram(program, options);
  ASSERT_TRUE(plan.ok());
  const PredicateReport* buys = FindReport(*plan, "buys");
  ASSERT_NE(buys, nullptr);
  EXPECT_EQ(buys->action, PredicateReport::Action::kUnchanged);
  EXPECT_EQ(plan->optimized.rules.size(), program.rules.size());
}

TEST(PlanProgram, SummaryListsEveryReport) {
  ast::Program program = ParseOrDie(kMixed);
  Result<ProgramPlan> plan = OptimizeProgram(program);
  ASSERT_TRUE(plan.ok());
  std::string summary = plan->Summary();
  EXPECT_NE(summary.find("buys"), std::string::npos);
  EXPECT_NE(summary.find("rewritten"), std::string::npos);
  EXPECT_NE(summary.find("hoisted"), std::string::npos);
  EXPECT_NE(summary.find("unchanged"), std::string::npos);
}

}  // namespace
}  // namespace dire::core
