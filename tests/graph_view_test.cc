#include <gtest/gtest.h>

#include "core/graph_view.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

using dire::testing::DefOrDie;

AvGraph Build(std::string_view program) {
  ast::RecursiveDefinition def = DefOrDie(program, "t");
  Result<AvGraph> g = AvGraph::Build(def);
  EXPECT_TRUE(g.ok());
  if (!g.ok()) std::abort();
  return std::move(g).value();
}

// Figure 2 / Example 3.2: the graph splits into the cyclic component
// {t2, Y, e'2} and a tree containing the nondistinguished Z.
TEST(GraphView, Figure2Components) {
  AvGraph g = Build(dire::testing::kTransitiveClosure);
  GraphView view = GraphView::All(g, /*augmented=*/false);
  int y = g.VariableNode("Y");
  int z = g.VariableNode("Z");
  int x = g.VariableNode("X");
  ASSERT_GE(y, 0);
  EXPECT_NE(view.ComponentOf(y), view.ComponentOf(z));
  EXPECT_EQ(view.ComponentOf(x), view.ComponentOf(z));
  EXPECT_TRUE(view.ComponentHasCycle(view.ComponentOf(y)));
  EXPECT_FALSE(view.ComponentHasCycle(view.ComponentOf(z)));
  // The t2-Y parallel pair (identity + unification) is a weight-1 cycle.
  EXPECT_EQ(view.ComponentCycleGcd(view.ComponentOf(y)), 1);
  EXPECT_TRUE(view.OnCycle(y));
  EXPECT_TRUE(view.OnNonzeroCycle(y));
  EXPECT_FALSE(view.OnCycle(z));
}

TEST(GraphView, AugmentedViewAddsChainCycle) {
  AvGraph g = Build(dire::testing::kTransitiveClosure);
  GraphView aug = GraphView::All(g, /*augmented=*/true);
  int z = g.VariableNode("Z");
  // With the e1-e2 predicate edge, Z joins a nonzero-weight cycle
  // (the chain generating path of Example 4.2).
  EXPECT_TRUE(aug.OnNonzeroCycle(z));
}

TEST(GraphView, WalkWeightsAlongTree) {
  AvGraph g = Build(dire::testing::kTransitiveClosure);
  GraphView view = GraphView::All(g, /*augmented=*/false);
  int z = g.VariableNode("Z");
  int x = g.VariableNode("X");
  // Z reaches X through t1's unification edge: weight +1, acyclic component
  // so the weight is exact.
  WalkWeights w = view.Weights(z, x);
  ASSERT_TRUE(w.connected);
  EXPECT_EQ(w.gcd, 0);
  EXPECT_EQ(w.base, 1);
  // And the reverse direction negates.
  EXPECT_EQ(view.Weights(x, z).base, -1);
}

TEST(GraphView, DisconnectedPairs) {
  AvGraph g = Build(dire::testing::kTransitiveClosure);
  GraphView view = GraphView::All(g, /*augmented=*/false);
  WalkWeights w = view.Weights(g.VariableNode("Z"), g.VariableNode("Y"));
  EXPECT_FALSE(w.connected);
  EXPECT_FALSE(w.ContainsValue(0));
  EXPECT_FALSE(w.ContainsPositive());
}

TEST(GraphView, FilteredViewExcludesNodes) {
  AvGraph g = Build(dire::testing::kTransitiveClosure);
  std::vector<bool> none(g.nodes().size(), false);
  GraphView view(g, none, /*augmented=*/true);
  EXPECT_EQ(view.num_components(), 0);
  EXPECT_EQ(view.ComponentOf(0), -1);
}

TEST(WalkWeights, ContainsValueCosetArithmetic) {
  WalkWeights w{true, 2, 3};  // {..., -1, 2, 5, 8, ...}
  EXPECT_TRUE(w.ContainsValue(2));
  EXPECT_TRUE(w.ContainsValue(-1));
  EXPECT_TRUE(w.ContainsValue(8));
  EXPECT_FALSE(w.ContainsValue(3));
  EXPECT_TRUE(w.ContainsPositive());
}

TEST(WalkWeights, FixedValueSet) {
  WalkWeights w{true, -2, 0};
  EXPECT_TRUE(w.ContainsValue(-2));
  EXPECT_FALSE(w.ContainsValue(0));
  EXPECT_FALSE(w.ContainsPositive());
}

TEST(WalkWeights, Intersections) {
  WalkWeights a{true, 1, 4};   // 1 mod 4
  WalkWeights b{true, 3, 6};   // 3 mod 6
  EXPECT_TRUE(Intersects(a, b));  // 9 = 1+2*4 = 3+6.
  WalkWeights c{true, 0, 4};
  WalkWeights d{true, 1, 2};
  EXPECT_FALSE(Intersects(c, d));  // Even vs odd.
  EXPECT_FALSE(Intersects(WalkWeights{}, a));
}

TEST(WalkWeights, IntersectCosetsCrt) {
  WalkWeights a{true, 1, 4};
  WalkWeights b{true, 3, 6};
  WalkWeights i = IntersectCosets(a, b);
  ASSERT_TRUE(i.connected);
  EXPECT_EQ(i.gcd, 12);
  EXPECT_TRUE(i.ContainsValue(9));
  EXPECT_TRUE(a.ContainsValue(i.base));
  EXPECT_TRUE(b.ContainsValue(i.base));
}

TEST(WalkWeights, IntersectCosetsWithFixedValues) {
  WalkWeights fixed{true, 5, 0};
  WalkWeights coset{true, 1, 2};
  EXPECT_TRUE(IntersectCosets(fixed, coset).connected);  // 5 is odd.
  WalkWeights coset_even{true, 0, 2};
  EXPECT_FALSE(IntersectCosets(fixed, coset_even).connected);
  EXPECT_FALSE(IntersectCosets(WalkWeights{}, coset).connected);
}

TEST(WalkWeights, SumOf) {
  WalkWeights a{true, 2, 4};
  WalkWeights b{true, -1, 6};
  WalkWeights s = SumOf(a, b);
  ASSERT_TRUE(s.connected);
  EXPECT_EQ(s.base, 1);
  EXPECT_EQ(s.gcd, 2);
}

// Example 4.5's graph: component of X and Y is cyclic (removed by phase 1);
// the W component is a tree.
TEST(GraphView, Example45ComponentShapes) {
  AvGraph g = Build(dire::testing::kExample45);
  GraphView view = GraphView::All(g, /*augmented=*/false);
  int x = g.VariableNode("X");
  int y = g.VariableNode("Y");
  int w = g.VariableNode("W");
  EXPECT_EQ(view.ComponentOf(x), view.ComponentOf(y));
  EXPECT_TRUE(view.ComponentHasCycle(view.ComponentOf(x)));
  // The X-Y swap cycle has weight 2: X only reappears every other iteration.
  EXPECT_EQ(view.ComponentCycleGcd(view.ComponentOf(x)), 2);
  EXPECT_FALSE(view.ComponentHasCycle(view.ComponentOf(w)));
}

}  // namespace
}  // namespace dire::core
