#include <gtest/gtest.h>

#include <algorithm>

#include "eval/magic.h"
#include "eval/topdown.h"
#include "storage/generators.h"
#include "tests/test_util.h"

namespace dire::eval {
namespace {

using dire::testing::ParseOrDie;

ast::Atom Q(std::string_view text) {
  Result<ast::Atom> a = parser::ParseAtom(text);
  EXPECT_TRUE(a.ok());
  return std::move(a).value();
}

std::vector<std::string> Render(const std::vector<storage::Tuple>& tuples,
                                const storage::Database& db) {
  std::vector<std::string> out;
  for (const storage::Tuple& t : tuples) {
    std::string row;
    for (storage::ValueId v : t) row += db.symbols().Name(v) + "|";
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(TopDown, AnswersTcPointQuery) {
  ast::Program p = ParseOrDie(dire::testing::kTransitiveClosure);
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 10).ok());
  TabledTopDown engine(&db, p);
  Result<QueryAnswer> ans = engine.Query(Q("t(n3, Y)"));
  ASSERT_TRUE(ans.ok()) << ans.status();
  EXPECT_EQ(ans->tuples.size(), 6u);  // n4..n9.
}

TEST(TopDown, LeftRecursionTerminates) {
  // Left-recursive closure on cyclic data: classic Prolog death, fine with
  // tabling.
  ast::Program p = ParseOrDie(R"(
    t(X, Y) :- t(X, Z), e(Z, Y).
    t(X, Y) :- e(X, Y).
  )");
  storage::Database db;
  ASSERT_TRUE(storage::MakeCycle(&db, "e", 6).ok());
  TabledTopDown engine(&db, p);
  Result<QueryAnswer> ans = engine.Query(Q("t(n0, Y)"));
  ASSERT_TRUE(ans.ok()) << ans.status();
  EXPECT_EQ(ans->tuples.size(), 6u);  // Everything, including n0 itself.
}

TEST(TopDown, AgreesWithMagicAndBottomUp) {
  const char* programs[] = {
      R"(t(X, Y) :- e(X, Z), t(Z, Y). t(X, Y) :- e(X, Y).)",
      R"(t(X, Y) :- t(X, Z), e(Z, Y). t(X, Y) :- e(X, Y).)",
      R"(t(X, Y) :- t(X, Z), t(Z, Y). t(X, Y) :- e(X, Y).)",
  };
  const char* queries[] = {"t(n2, Y)", "t(X, n5)", "t(X, Y)", "t(n0, n4)"};
  for (const char* ptext : programs) {
    ast::Program p = ParseOrDie(ptext);
    for (const char* qtext : queries) {
      SCOPED_TRACE(std::string(ptext) + " ?- " + qtext);
      storage::Database db_td;
      storage::Database db_magic;
      Rng r1(5);
      Rng r2(5);
      ASSERT_TRUE(storage::MakeRandomGraph(&db_td, "e", 10, 18, &r1).ok());
      ASSERT_TRUE(storage::MakeRandomGraph(&db_magic, "e", 10, 18, &r2).ok());
      TabledTopDown engine(&db_td, p);
      Result<QueryAnswer> td = engine.Query(Q(qtext));
      Result<QueryAnswer> mg = AnswerQuery(&db_magic, p, Q(qtext));
      ASSERT_TRUE(td.ok()) << td.status();
      ASSERT_TRUE(mg.ok()) << mg.status();
      EXPECT_EQ(Render(td->tuples, db_td), Render(mg->tuples, db_magic));
    }
  }
}

TEST(TopDown, MutualRecursion) {
  ast::Program p = ParseOrDie(R"(
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
    zero(n0).
    succ(n0, n1). succ(n1, n2). succ(n2, n3).
  )");
  storage::Database db;
  TabledTopDown engine(&db, p);
  Result<QueryAnswer> ans = engine.Query(Q("odd(X)"));
  ASSERT_TRUE(ans.ok()) << ans.status();
  EXPECT_EQ(ans->tuples.size(), 2u);  // n1, n3.
}

TEST(TopDown, TablesOnlyRelevantCalls) {
  // Two disjoint chains; querying one must not table calls about the other.
  ast::Program p = ParseOrDie(dire::testing::kTransitiveClosure);
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 8).ok());
  for (int i = 100; i < 150; ++i) {
    ASSERT_TRUE(db.AddRow("e", {StrFormat("n%d", i),
                                StrFormat("n%d", i + 1)}).ok());
  }
  TabledTopDown engine(&db, p);
  Result<QueryAnswer> ans = engine.Query(Q("t(n0, Y)"));
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->tuples.size(), 7u);
  // Tabled answers stay within the first chain: well under the full closure.
  EXPECT_LE(engine.stats().answers, 7u * 8u);
}

TEST(TopDown, EdbQueryIsSelection) {
  ast::Program p = ParseOrDie("e(a,b). e(a,c). t(X) :- e(X, X).");
  storage::Database db;
  TabledTopDown engine(&db, p);
  Result<QueryAnswer> ans = engine.Query(Q("e(a, Y)"));
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->tuples.size(), 2u);
}

TEST(TopDown, RejectsNegation) {
  ast::Program p = ParseOrDie("t(X) :- base(X), not bad(X).");
  storage::Database db;
  TabledTopDown engine(&db, p);
  EXPECT_FALSE(engine.Query(Q("t(a)")).ok());
}

TEST(TopDown, UnsafeRuleReported) {
  ast::Program p = ParseOrDie("t(X, Y) :- e(X).");
  storage::Database db;
  ASSERT_TRUE(db.AddRow("e", {"a"}).ok());
  TabledTopDown engine(&db, p);
  Result<QueryAnswer> ans = engine.Query(Q("t(X, Y)"));
  ASSERT_FALSE(ans.ok());
  EXPECT_NE(ans.status().message().find("unsafe"), std::string::npos);
}

}  // namespace
}  // namespace dire::eval
