// Replication: wire framing, deterministic retry jitter, the durable
// (epoch, lsn) identity of a data directory, fencing semantics, and an
// in-process primary/follower pair exercising the full WAL-shipping and
// failover flow (the SIGKILL chaos variant lives in
// tests/replication_failover.sh).

#include "server/replication.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "server/server.h"
#include "storage/persist.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace dire::server {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Deterministic retry jitter.
// ---------------------------------------------------------------------------

TEST(Jitter, DeterministicWithinBoundsAndSpread) {
  std::set<int> seen;
  for (uint64_t seq = 0; seq < 200; ++seq) {
    int hint = JitteredRetryAfterMs(40, /*seed=*/1, seq);
    EXPECT_GE(hint, 20);  // [base/2, 3*base/2]
    EXPECT_LE(hint, 60);
    EXPECT_EQ(hint, JitteredRetryAfterMs(40, 1, seq));  // Reproducible.
    seen.insert(hint);
  }
  // Jitter that never varies is not jitter: the 200 ordinals must cover a
  // real spread of the 41-value window.
  EXPECT_GT(seen.size(), 20u);
  // Different seeds give different schedules.
  bool differs = false;
  for (uint64_t seq = 0; seq < 32 && !differs; ++seq) {
    differs = JitteredRetryAfterMs(40, 1, seq) !=
              JitteredRetryAfterMs(40, 2, seq);
  }
  EXPECT_TRUE(differs);
  // Degenerate bases pass through untouched.
  EXPECT_EQ(JitteredRetryAfterMs(0, 1, 7), 0);
  EXPECT_EQ(JitteredRetryAfterMs(-5, 1, 7), -5);
}

// ---------------------------------------------------------------------------
// Stream line framing.
// ---------------------------------------------------------------------------

TEST(ReplicationWire, RecLineRoundTripsAndChecksums) {
  std::string payload = storage::EncodeStampedFactRecord(3, 17, "e", {"a", "b"});
  std::string line = FormatRecLine(3, 17, payload);
  Result<RecLine> parsed = ParseRecLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->epoch, 3u);
  EXPECT_EQ(parsed->lsn, 17u);
  EXPECT_EQ(parsed->payload, payload);

  // Any damaged byte fails the CRC; damage cannot reach the database.
  for (size_t i = 0; i < line.size(); ++i) {
    std::string bad = line;
    bad[i] = bad[i] == 'x' ? 'y' : 'x';
    if (bad == line) continue;
    EXPECT_FALSE(ParseRecLine(bad).ok()) << "flip at " << i;
  }
  EXPECT_FALSE(ParseRecLine("REC 1 2").ok());
  EXPECT_FALSE(ParseRecLine("REC 1 2 nothex payload").ok());
  EXPECT_FALSE(ParseRecLine("").ok());
}

TEST(ReplicationWire, AckPingAndHeaderLines) {
  Result<uint64_t> ack = ParseAckLine(FormatAckLine(41));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(*ack, 41u);
  EXPECT_FALSE(ParseAckLine("ACK").ok());
  EXPECT_FALSE(ParseAckLine("ACK lsn=x").ok());

  Result<PingLine> ping = ParsePingLine(FormatPingLine(2, 9));
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->epoch, 2u);
  EXPECT_EQ(ping->lsn, 9u);

  Result<StreamHeader> stream = ParseStreamHeader(FormatStreamLine(4, 100));
  ASSERT_TRUE(stream.ok());
  EXPECT_FALSE(stream->snapshot);
  EXPECT_EQ(stream->epoch, 4u);
  EXPECT_EQ(stream->lsn, 100u);

  Result<StreamHeader> snap =
      ParseStreamHeader(FormatSnapshotLine(4, 100, 12345));
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap->snapshot);
  EXPECT_EQ(snap->snapshot_bytes, 12345u);

  EXPECT_FALSE(ParseStreamHeader("GARBAGE epoch=1 lsn=2").ok());
  EXPECT_FALSE(ParseStreamHeader("SNAPSHOT epoch=1 lsn=2").ok());
}

// ---------------------------------------------------------------------------
// Stamped WAL records.
// ---------------------------------------------------------------------------

TEST(StampedWal, RecordsRoundTripAndLegacyStillDecodes) {
  Result<storage::WalRecord> fact = storage::DecodeWalRecord(
      storage::EncodeStampedFactRecord(2, 7, "e", {"a", "tab\tvalue"}));
  ASSERT_TRUE(fact.ok()) << fact.status();
  EXPECT_EQ(fact->op, storage::WalRecord::Op::kInsert);
  EXPECT_TRUE(fact->stamped);
  EXPECT_EQ(fact->epoch, 2u);
  EXPECT_EQ(fact->lsn, 7u);
  EXPECT_EQ(fact->relation, "e");
  ASSERT_EQ(fact->values.size(), 2u);
  EXPECT_EQ(fact->values[1], "tab\tvalue");

  Result<storage::WalRecord> retract = storage::DecodeWalRecord(
      storage::EncodeStampedRetractRecord(2, 8, "e", {"a", "b"}));
  ASSERT_TRUE(retract.ok());
  EXPECT_EQ(retract->op, storage::WalRecord::Op::kRetract);

  Result<storage::WalRecord> promoted =
      storage::DecodeWalRecord(storage::EncodeEpochRecord(3, 9, false));
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(promoted->op, storage::WalRecord::Op::kEpoch);
  EXPECT_FALSE(promoted->fenced);
  Result<storage::WalRecord> fenced =
      storage::DecodeWalRecord(storage::EncodeEpochRecord(3, 9, true));
  ASSERT_TRUE(fenced.ok());
  EXPECT_TRUE(fenced->fenced);

  // Pre-replication records decode unstamped; old directories replay as-is.
  Result<storage::WalRecord> legacy =
      storage::DecodeWalRecord(storage::EncodeFactRecord("e", {"a", "b"}));
  ASSERT_TRUE(legacy.ok());
  EXPECT_FALSE(legacy->stamped);
  EXPECT_EQ(legacy->epoch, 0u);

  EXPECT_FALSE(storage::DecodeWalRecord("S\tnotanumber\t1\tF\te\ta").ok());
  EXPECT_FALSE(storage::DecodeWalRecord("S\t1\t2\tE\tmystery").ok());
}

TEST(ReplState, FormatParsesBackAndRejectsGarbage) {
  storage::ReplState state;
  state.epoch = 5;
  state.lsn = 99;
  state.fenced = true;
  Result<storage::ReplState> parsed =
      storage::ParseReplState(storage::FormatReplState(state));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->epoch, 5u);
  EXPECT_EQ(parsed->lsn, 99u);
  EXPECT_TRUE(parsed->fenced);
  EXPECT_FALSE(storage::ParseReplState("").ok());
  EXPECT_FALSE(storage::ParseReplState("epoch x\nlsn 1\n").ok());
  EXPECT_FALSE(storage::ParseReplState("lsn 1\n").ok());
}

// ---------------------------------------------------------------------------
// DataDir identity, fencing, tail, snapshot install.
// ---------------------------------------------------------------------------

TEST(ReplicatedDataDir, WritesStampContiguousLsnsAndRecover) {
  std::string dir = FreshDir("repl_dd_stamps");
  {
    auto opened = storage::DataDir::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status();
    storage::DataDir& dd = **opened;
    EXPECT_EQ(dd.epoch(), 1u);
    EXPECT_EQ(dd.lsn(), 0u);
    storage::DataDir::AppendedRecord rec;
    ASSERT_TRUE(dd.AppendFact("e", {"a", "b"}, &rec).ok());
    EXPECT_EQ(rec.epoch, 1u);
    EXPECT_EQ(rec.lsn, 1u);
    bool removed = false;
    ASSERT_TRUE(dd.RetractFact("e", {"a", "b"}, &removed, &rec).ok());
    EXPECT_TRUE(removed);
    EXPECT_EQ(rec.lsn, 2u);
  }
  // Identity survives reopen — from the WAL stamps alone (pre-checkpoint)
  // and from replstate after a checkpoint folds the WAL away.
  {
    auto opened = storage::DataDir::Open(dir);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ((*opened)->epoch(), 1u);
    EXPECT_EQ((*opened)->lsn(), 2u);
    ASSERT_TRUE((*opened)->Checkpoint().ok());
  }
  {
    auto opened = storage::DataDir::Open(dir);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ((*opened)->lsn(), 2u);
  }
}

TEST(ReplicatedDataDir, PromoteBumpsEpochDurablyAndFenceSeals) {
  std::string dir = FreshDir("repl_dd_promote");
  {
    auto opened = storage::DataDir::Open(dir);
    ASSERT_TRUE(opened.ok());
    storage::DataDir& dd = **opened;
    ASSERT_TRUE(dd.AppendFact("e", {"a", "b"}).ok());
    EXPECT_FALSE(dd.Promote(1).ok());  // Must strictly advance.
    ASSERT_TRUE(dd.Promote(2).ok());
    EXPECT_EQ(dd.epoch(), 2u);
    EXPECT_EQ(dd.lsn(), 2u);  // The control record consumed an lsn.
  }
  {
    auto opened = storage::DataDir::Open(dir);
    ASSERT_TRUE(opened.ok());
    storage::DataDir& dd = **opened;
    EXPECT_EQ(dd.epoch(), 2u);
    EXPECT_FALSE(dd.fenced());

    ASSERT_TRUE(dd.Fence(3).ok());
    EXPECT_TRUE(dd.fenced());
    // Sealed: writes refused, promotion refused, fence idempotent.
    Status write = dd.AppendFact("e", {"c", "d"});
    EXPECT_FALSE(write.ok());
    EXPECT_NE(write.ToString().find("fenced"), std::string::npos);
    EXPECT_FALSE(dd.Promote(4).ok());
    EXPECT_TRUE(dd.Fence(3).ok());
    // A lower-epoch fence is an idempotent no-op; the seal never regresses.
    EXPECT_TRUE(dd.Fence(2).ok());
    EXPECT_EQ(dd.epoch(), 3u);
  }
  {
    auto opened = storage::DataDir::Open(dir);
    ASSERT_TRUE(opened.ok());
    EXPECT_TRUE((*opened)->fenced());  // The seal is durable.
  }
}

TEST(ReplicatedDataDir, TornFenceRecoversAsFenced) {
  // A crash between stamping LOCK with the new epoch and appending the
  // fence record must fail closed: simulate it with a stale (dead-pid)
  // LOCK carrying a higher epoch than anything durable.
  std::string dir = FreshDir("repl_dd_tornfence");
  {
    auto opened = storage::DataDir::Open(dir);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE((*opened)->AppendFact("e", {"a", "b"}).ok());
  }
  {
    std::ofstream lock(dir + "/LOCK");
    lock << 999999999 << "\n" << 7 << "\n";  // Dead pid, epoch from the future.
  }
  auto opened = storage::DataDir::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_TRUE((*opened)->fenced());
}

TEST(ReplicatedDataDir, TailSinceResumesOrRefusesHonestly) {
  std::string dir = FreshDir("repl_dd_tail");
  auto opened = storage::DataDir::Open(dir);
  ASSERT_TRUE(opened.ok());
  storage::DataDir& dd = **opened;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(dd.AppendFact("e", {"a", std::to_string(i)}).ok());
  }
  Result<std::vector<storage::DataDir::TailEntry>> tail = dd.TailSince(2);
  ASSERT_TRUE(tail.ok()) << tail.status();
  ASSERT_EQ(tail->size(), 2u);
  EXPECT_EQ((*tail)[0].lsn, 3u);
  EXPECT_EQ((*tail)[1].lsn, 4u);
  // Everything already shipped: an empty, successful tail.
  Result<std::vector<storage::DataDir::TailEntry>> upToDate = dd.TailSince(4);
  ASSERT_TRUE(upToDate.ok());
  EXPECT_TRUE(upToDate->empty());
  // A follower claiming to be ahead of the primary is refused.
  EXPECT_FALSE(dd.TailSince(5).ok());
  // After a checkpoint the WAL no longer covers old positions; the caller
  // must fall back to a snapshot rather than silently skip records.
  ASSERT_TRUE(dd.Checkpoint().ok());
  EXPECT_FALSE(dd.TailSince(2).ok());
  ASSERT_TRUE(dd.AppendFact("e", {"b", "x"}).ok());
  Result<std::vector<storage::DataDir::TailEntry>> fresh = dd.TailSince(4);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  ASSERT_EQ(fresh->size(), 1u);
  EXPECT_EQ((*fresh)[0].lsn, 5u);
}

TEST(ReplicatedDataDir, AppendReplicatedEnforcesContiguityAndEpoch) {
  std::string dir = FreshDir("repl_dd_applied");
  auto opened = storage::DataDir::Open(dir);
  ASSERT_TRUE(opened.ok());
  storage::DataDir& dd = **opened;

  auto apply = [&](const std::string& payload) -> Status {
    Result<storage::WalRecord> rec = storage::DecodeWalRecord(payload);
    if (!rec.ok()) return rec.status();
    bool mutated = false;
    return dd.AppendReplicated(payload, *rec, &mutated);
  };

  ASSERT_TRUE(
      apply(storage::EncodeStampedFactRecord(1, 1, "e", {"a", "b"})).ok());
  // A gap means records were lost: refuse, forcing a resync.
  Status gap = apply(storage::EncodeStampedFactRecord(1, 3, "e", {"c", "d"}));
  EXPECT_FALSE(gap.ok());
  EXPECT_NE(gap.ToString().find("gap"), std::string::npos);
  // Unstamped payloads cannot carry a position: refused.
  EXPECT_FALSE(apply(storage::EncodeFactRecord("e", {"c", "d"})).ok());
  // Records from a dethroned epoch are refused.
  ASSERT_TRUE(apply(storage::EncodeEpochRecord(3, 2, false)).ok());
  EXPECT_FALSE(
      apply(storage::EncodeStampedFactRecord(2, 3, "e", {"c", "d"})).ok());
  // The stream resumes in the new epoch.
  ASSERT_TRUE(
      apply(storage::EncodeStampedFactRecord(3, 3, "e", {"c", "d"})).ok());
  EXPECT_EQ(dd.epoch(), 3u);
  EXPECT_EQ(dd.lsn(), 3u);
  // A fencing control record seals the directory.
  ASSERT_TRUE(apply(storage::EncodeEpochRecord(4, 4, true)).ok());
  EXPECT_TRUE(dd.fenced());
}

TEST(ReplicatedDataDir, InstallSnapshotAdoptsForeignState) {
  // Build a source database and snapshot it.
  std::string src_dir = FreshDir("repl_dd_snap_src");
  auto src = storage::DataDir::Open(src_dir);
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE((*src)->AppendFact("e", {"a", "b"}).ok());
  ASSERT_TRUE((*src)->AppendFact("e", {"b", "c"}).ok());
  Result<std::string> image = storage::SaveSnapshot(*(*src)->db());
  ASSERT_TRUE(image.ok());

  std::string dst_dir = FreshDir("repl_dd_snap_dst");
  {
    auto dst = storage::DataDir::Open(dst_dir);
    ASSERT_TRUE(dst.ok());
    ASSERT_TRUE((*dst)->AppendFact("old", {"x"}).ok());
    ASSERT_TRUE((*dst)->Fence(9).ok());  // Even a fenced dir can resync.
    ASSERT_TRUE((*dst)->InstallSnapshot(*image, 10, 2).ok());
    EXPECT_EQ((*dst)->epoch(), 10u);
    EXPECT_EQ((*dst)->lsn(), 2u);
    EXPECT_FALSE((*dst)->fenced());
    storage::Relation* e = (*dst)->db()->Find("e");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->size(), 2u);
    EXPECT_EQ((*dst)->db()->Find("old"), nullptr);  // Dropped, not merged.
    // Garbage bytes never replace a working database.
    Status bad = (*dst)->InstallSnapshot("not a snapshot", 11, 3);
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ((*dst)->epoch(), 10u);
    ASSERT_NE((*dst)->db()->Find("e"), nullptr);
  }
  auto reopened = storage::DataDir::Open(dst_dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->epoch(), 10u);
  EXPECT_EQ((*reopened)->lsn(), 2u);
}

// ---------------------------------------------------------------------------
// In-process primary/follower pair, full flow over real sockets.
// ---------------------------------------------------------------------------

constexpr std::string_view kTcProgram = R"(
  t(X, Y) :- e(X, Z), t(Z, Y).
  t(X, Y) :- e(X, Y).
)";

class TestServer {
 public:
  explicit TestServer(ServerConfig config) {
    config.host = "127.0.0.1";
    config.port = 0;
    Result<std::unique_ptr<Server>> created = Server::Create(
        config, dire::testing::ParseOrDie(kTcProgram), std::string(kTcProgram));
    EXPECT_TRUE(created.ok()) << created.status();
    server_ = std::move(created).value();
    runner_ = std::thread([this] { run_status_ = server_->Run(); });
  }
  ~TestServer() {
    if (server_) Stop();
  }
  void Stop() {
    server_->Shutdown();
    if (runner_.joinable()) runner_.join();
    EXPECT_TRUE(run_status_.ok()) << run_status_;
    server_.reset();
  }
  Server& server() { return *server_; }
  int port() const { return server_->port(); }
  void WaitReady() {
    while (!server_->ready()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

 private:
  std::unique_ptr<Server> server_;
  std::thread runner_;
  Status run_status_;
};

// Minimal blocking line client (same protocol as server_test.cc).
class Client {
 public:
  explicit Client(int port) {
    Result<int> fd = DialTcp("127.0.0.1:" + std::to_string(port));
    if (fd.ok()) fd_ = *fd;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return fd_ >= 0; }

  std::string RoundTrip(const std::string& line) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      ssize_t n = ::write(fd_, framed.data() + sent, framed.size() - sent);
      if (n <= 0) return "";
      sent += static_cast<size_t>(n);
    }
    return ReadLine();
  }

  std::vector<std::string> RoundTripMulti(const std::string& line) {
    std::vector<std::string> lines;
    lines.push_back(RoundTrip(line));
    while (lines.back() != "END" && !lines.back().empty()) {
      lines.push_back(ReadLine());
    }
    return lines;
  }

  std::string ReadLine() {
    std::string line;
    size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return line;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return line;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

// Polls the follower until its replication link reports connected.
void WaitConnected(int follower_port) {
  Client probe(follower_port);
  ASSERT_TRUE(probe.connected());
  for (int i = 0; i < 3000; ++i) {
    std::string health = probe.RoundTrip("HEALTH");
    if (health.find("connected=1") != std::string::npos) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "follower never connected to its primary";
}

TEST(Replication, FollowerMirrorsPrimaryAndFailsOver) {
  ServerConfig primary_config;
  primary_config.data_dir = FreshDir("repl_e2e_primary");
  TestServer primary(primary_config);
  primary.WaitReady();

  ServerConfig follower_config;
  follower_config.data_dir = FreshDir("repl_e2e_follower");
  follower_config.replicate_from =
      "127.0.0.1:" + std::to_string(primary.port());
  TestServer follower(follower_config);
  follower.WaitReady();
  WaitConnected(follower.port());

  Client to_primary(primary.port());
  Client to_follower(follower.port());
  ASSERT_TRUE(to_primary.connected());
  ASSERT_TRUE(to_follower.connected());

  // A synchronous write: by the time the primary answers OK, the follower
  // has durably applied the record — so an immediate follower read sees
  // both the base fact and its derived consequences.
  EXPECT_EQ(to_primary.RoundTrip("ADD e(a, b)"), "OK added=1");
  EXPECT_EQ(to_primary.RoundTrip("ADD e(b, c)"), "OK added=1");
  std::vector<std::string> answer = to_follower.RoundTripMulti("QUERY t(a, X)");
  ASSERT_EQ(answer.size(), 4u) << answer[0];
  EXPECT_EQ(answer[0], "OK 2");
  EXPECT_EQ(answer[1], "t(a, b)");
  EXPECT_EQ(answer[2], "t(a, c)");

  // Retractions replicate too.
  EXPECT_EQ(to_primary.RoundTrip("RETRACT e(b, c)"), "OK removed=1");
  EXPECT_EQ(to_follower.RoundTripMulti("QUERY t(a, X)")[0], "OK 1");

  // The follower is read-only and says who leads.
  std::string readonly = to_follower.RoundTrip("ADD e(x, y)");
  EXPECT_EQ(readonly, ReadonlyLine(follower_config.replicate_from));

  // Replication observability: role and lag on HEALTH, counters on STATS.
  std::string health = to_follower.RoundTrip("HEALTH");
  EXPECT_NE(health.find("role=follower"), std::string::npos) << health;
  EXPECT_NE(health.find("lag=0"), std::string::npos) << health;
  std::vector<std::string> stats = to_follower.RoundTripMulti("STATS");
  bool saw_applied = false;
  for (const std::string& line : stats) {
    if (line == "repl_applied_total 3") saw_applied = true;
  }
  EXPECT_TRUE(saw_applied);

  // Failover: promote the follower; it fences the old epoch durably and
  // starts accepting writes.
  std::string promoted = to_follower.RoundTrip("PROMOTE");
  EXPECT_EQ(promoted.rfind("OK promoted epoch=2", 0), 0u) << promoted;
  // Idempotent for a retrying failover driver.
  EXPECT_EQ(to_follower.RoundTrip("PROMOTE"), promoted);
  EXPECT_EQ(to_follower.RoundTrip("ADD e(b, d)"), "OK added=1");
  EXPECT_EQ(to_follower.RoundTripMulti("QUERY t(a, X)")[0], "OK 2");

  // The deposed primary's directory, once fenced, refuses to serve.
  follower.Stop();
  primary.Stop();
  {
    auto old_dir = storage::DataDir::Open(primary_config.data_dir);
    ASSERT_TRUE(old_dir.ok());
    ASSERT_TRUE((*old_dir)->Fence(2).ok());
  }
  ServerConfig deposed;
  deposed.data_dir = primary_config.data_dir;
  deposed.host = "127.0.0.1";
  deposed.port = 0;
  Result<std::unique_ptr<Server>> restarted = Server::Create(
      deposed, dire::testing::ParseOrDie(kTcProgram), std::string(kTcProgram));
  ASSERT_TRUE(restarted.ok());
  Status run = (*restarted)->Run();
  EXPECT_FALSE(run.ok());
  EXPECT_NE(run.ToString().find("fenced"), std::string::npos) << run;
}

TEST(Replication, FollowerCatchesUpAfterRestart) {
  ServerConfig primary_config;
  primary_config.data_dir = FreshDir("repl_catchup_primary");
  // Large fold cadence keeps the WAL tail intact, so the restarted
  // follower resumes over STREAM rather than a snapshot.
  primary_config.checkpoint_every_writes = 1000;
  TestServer primary(primary_config);
  primary.WaitReady();
  Client to_primary(primary.port());
  ASSERT_TRUE(to_primary.connected());
  EXPECT_EQ(to_primary.RoundTrip("ADD e(a, b)"), "OK added=1");

  std::string follower_dir = FreshDir("repl_catchup_follower");
  ServerConfig follower_config;
  follower_config.data_dir = follower_dir;
  follower_config.replicate_from =
      "127.0.0.1:" + std::to_string(primary.port());
  {
    // First generation: bootstraps over a full snapshot transfer.
    TestServer follower(follower_config);
    follower.WaitReady();
    WaitConnected(follower.port());
    Client c(follower.port());
    EXPECT_EQ(c.RoundTripMulti("QUERY e(X, Y)")[0], "OK 1");
  }  // Graceful stop.

  // The primary moves on while the follower is down.
  EXPECT_EQ(to_primary.RoundTrip("ADD e(b, c)"), "OK added=1");
  EXPECT_EQ(to_primary.RoundTrip("ADD e(c, d)"), "OK added=1");

  {
    // Second generation: resumes from its own durable position and
    // replays only the missed tail.
    TestServer follower(follower_config);
    follower.WaitReady();
    WaitConnected(follower.port());
    Client c(follower.port());
    ASSERT_TRUE(c.connected());
    EXPECT_EQ(c.RoundTripMulti("QUERY e(X, Y)")[0], "OK 3");
    EXPECT_EQ(c.RoundTripMulti("QUERY t(a, X)")[0], "OK 3");
    std::vector<std::string> stats = c.RoundTripMulti("STATS");
    for (const std::string& line : stats) {
      // A STREAM resume, not a snapshot install.
      if (line.rfind("repl_resyncs_total ", 0) == 0) {
        EXPECT_EQ(line, "repl_resyncs_total 0");
      }
    }
  }
}

}  // namespace
}  // namespace dire::server
