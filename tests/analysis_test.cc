#include <gtest/gtest.h>

#include "core/analysis.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

using dire::testing::AnalyzeOrDie;
using dire::testing::ParseOrDie;

TEST(Analysis, ReportMentionsAllSections) {
  RecursionAnalysis a = AnalyzeOrDie(dire::testing::kTransitiveClosure, "t");
  std::string report = a.Report();
  EXPECT_NE(report.find("Recursion analysis for t/2"), std::string::npos);
  EXPECT_NE(report.find("chain generating path: YES"), std::string::npos);
  EXPECT_NE(report.find("Theorem 4.2"), std::string::npos);
  EXPECT_NE(report.find("Theorem 4.3"), std::string::npos);
  EXPECT_NE(report.find("[rec]"), std::string::npos);
  EXPECT_NE(report.find("[exit]"), std::string::npos);
}

TEST(Analysis, ConvenienceAccessors) {
  RecursionAnalysis buys = AnalyzeOrDie(dire::testing::kBuys, "buys");
  EXPECT_TRUE(buys.strongly_data_independent());
  EXPECT_TRUE(buys.weakly_data_independent());

  RecursionAnalysis tc = AnalyzeOrDie(dire::testing::kTransitiveClosure, "t");
  EXPECT_FALSE(tc.strongly_data_independent());
  EXPECT_FALSE(tc.weakly_data_independent());
}

TEST(Analysis, NoExitRuleMeansNoWeakResult) {
  RecursionAnalysis a = AnalyzeOrDie("t(X,Y) :- e(X,Z), t(Z,Y).", "t");
  EXPECT_FALSE(a.weak.has_value());
  EXPECT_FALSE(a.Report().empty());
}

TEST(Analysis, NonRecursivePredicateRejected) {
  ast::Program p = ParseOrDie("t(X) :- e(X).");
  Result<RecursionAnalysis> a = AnalyzeRecursion(p, "t");
  EXPECT_FALSE(a.ok());
}

TEST(Analysis, UnknownPredicateRejected) {
  ast::Program p = ParseOrDie("t(X) :- e(X), t(X).");
  Result<RecursionAnalysis> a = AnalyzeRecursion(p, "nope");
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kNotFound);
}

TEST(Analysis, NonlinearRuleYieldsUnknown) {
  RecursionAnalysis a = AnalyzeOrDie(R"(
    t(X, Y) :- t(X, Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
  )", "t");
  EXPECT_EQ(a.strong.verdict, Verdict::kUnknown);
  EXPECT_NE(a.strong.explanation.find("linear"), std::string::npos);
}

}  // namespace
}  // namespace dire::core
