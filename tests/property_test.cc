// Property-based cross-validation of the paper's algorithms on randomly
// generated rules: the A/V-graph tests are checked against the expansion/
// containment semi-decision and against actual bottom-up evaluation.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/string_util.h"
#include "core/analysis.h"
#include "core/equivalence.h"
#include "core/rewrite.h"
#include "core/strings_eval.h"
#include "eval/evaluator.h"
#include "storage/generators.h"
#include "tests/test_util.h"

namespace dire {
namespace {

using core::Verdict;

// ---------------------------------------------------------------------------
// Random rule generation.
// ---------------------------------------------------------------------------

std::vector<std::string> HeadVars(int arity) {
  std::vector<std::string> out;
  for (int i = 0; i < arity; ++i) out.push_back(StrFormat("V%d", i));
  return out;
}

ast::Term PickVar(const std::vector<std::string>& pool, Rng* rng) {
  return ast::Term::Var(pool[rng->Uniform(pool.size())]);
}

ast::Program RandomDefinitionAttempt(uint64_t seed);

bool IsSafe(const ast::Rule& rule) {
  std::set<std::string> body_vars;
  for (const ast::Atom& a : rule.body) {
    for (const ast::Term& t : a.args) {
      if (t.IsVariable()) body_vars.insert(t.text());
    }
  }
  for (const std::string& v : rule.DistinguishedVariables()) {
    if (body_vars.count(v) == 0) return false;
  }
  return true;
}

// A random linear recursive rule + single-atom exit rule. Nonrecursive
// predicates are pairwise distinct (p0, p1, ...), keeping the definition in
// Theorem 4.2's completeness class. Retries until both rules are safe
// (every head variable bound in the body), as Datalog requires.
ast::Program RandomDefinition(uint64_t seed) {
  for (uint64_t attempt = 0;; ++attempt) {
    ast::Program candidate = RandomDefinitionAttempt(seed * 131 + attempt);
    if (IsSafe(candidate.rules[0]) && IsSafe(candidate.rules[1])) {
      return candidate;
    }
  }
}

ast::Program RandomDefinitionAttempt(uint64_t seed) {
  Rng rng(seed);
  int arity = 1 + static_cast<int>(rng.Uniform(3));
  int extra_vars = 1 + static_cast<int>(rng.Uniform(3));
  int num_atoms = 1 + static_cast<int>(rng.Uniform(2));

  std::vector<std::string> head = HeadVars(arity);
  std::vector<std::string> pool = head;
  for (int i = 0; i < extra_vars; ++i) pool.push_back(StrFormat("W%d", i));

  ast::Atom head_atom("t", [&] {
    std::vector<ast::Term> args;
    for (const std::string& v : head) args.push_back(ast::Term::Var(v));
    return args;
  }());

  ast::Rule recursive;
  recursive.head = head_atom;
  for (int i = 0; i < num_atoms; ++i) {
    int pred_arity = 1 + static_cast<int>(rng.Uniform(2));
    std::vector<ast::Term> args;
    for (int k = 0; k < pred_arity; ++k) args.push_back(PickVar(pool, &rng));
    recursive.body.emplace_back(StrFormat("p%d", i), std::move(args));
  }
  std::vector<ast::Term> rec_args;
  for (int k = 0; k < arity; ++k) rec_args.push_back(PickVar(pool, &rng));
  recursive.body.emplace_back("t", std::move(rec_args));

  ast::Rule exit;
  exit.head = head_atom;
  int exit_arity = 1 + static_cast<int>(rng.Uniform(2));
  std::vector<ast::Term> exit_args;
  std::vector<std::string> exit_pool = head;
  exit_pool.push_back("We");
  for (int k = 0; k < exit_arity; ++k) {
    exit_args.push_back(PickVar(exit_pool, &rng));
  }
  exit.body.emplace_back("e0", std::move(exit_args));

  ast::Program p;
  p.rules.push_back(recursive);
  p.rules.push_back(exit);
  return p;
}

// ---------------------------------------------------------------------------
// Property 1: strong independence (Theorems 4.1/4.2) against the rewrite
// semi-decision with the canonical exit rule t(H) :- t0(H) used in the
// paper's Theorem 4.2 proof.
// ---------------------------------------------------------------------------

class StrongVsRewrite : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrongVsRewrite, VerdictsAgree) {
  ast::Program program = RandomDefinition(GetParam());
  // Replace the random exit rule with the canonical t0 exit rule.
  ast::Program canonical;
  canonical.rules.push_back(program.rules[0]);
  {
    ast::Rule exit;
    exit.head = program.rules[0].head;
    exit.body.emplace_back("t0", exit.head.args);
    canonical.rules.push_back(exit);
  }

  Result<ast::RecursiveDefinition> def = ast::MakeDefinition(canonical, "t");
  ASSERT_TRUE(def.ok()) << def.status();
  Result<core::StrongIndependenceResult> strong =
      core::TestStrongIndependence(*def);
  ASSERT_TRUE(strong.ok()) << strong.status();

  core::RewriteOptions opts;
  opts.max_depth = 10;
  Result<core::RewriteResult> rewrite = core::BoundedRewrite(*def, opts);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status();

  SCOPED_TRACE(canonical.ToString());
  if (strong->verdict == Verdict::kIndependent) {
    // Theorem 4.1 promises boundedness under any exit rule.
    EXPECT_EQ(rewrite->outcome, core::RewriteResult::Outcome::kBounded);
    if (rewrite->outcome == core::RewriteResult::Outcome::kBounded) {
      Result<core::EquivalenceCheckResult> eq =
          core::CheckEquivalenceOnRandomDatabases(canonical,
                                                  rewrite->rewritten, "t");
      ASSERT_TRUE(eq.ok()) << eq.status();
      EXPECT_TRUE(eq->equivalent) << eq->counterexample;
    }
  } else if (strong->verdict == Verdict::kDependent) {
    // Theorem 4.2's proof shows this very pairing is data dependent.
    EXPECT_EQ(rewrite->outcome, core::RewriteResult::Outcome::kInconclusive);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrongVsRewrite,
                         ::testing::Range<uint64_t>(0, 60));

// ---------------------------------------------------------------------------
// Property 2: the Theorem 4.3 weak-independence verdict against the rewrite
// semi-decision, on the random recursive/exit pair itself.
// ---------------------------------------------------------------------------

class WeakVsRewrite : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WeakVsRewrite, VerdictsAgree) {
  ast::Program program = RandomDefinition(GetParam() + 1000);
  Result<ast::RecursiveDefinition> def = ast::MakeDefinition(program, "t");
  ASSERT_TRUE(def.ok()) << def.status();
  Result<core::WeakIndependenceResult> weak =
      core::TestWeakIndependence(*def);
  ASSERT_TRUE(weak.ok()) << weak.status();
  if (weak->verdict == Verdict::kUnknown) return;  // Out of class.

  core::RewriteOptions opts;
  opts.max_depth = 10;
  Result<core::RewriteResult> rewrite = core::BoundedRewrite(*def, opts);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status();

  SCOPED_TRACE(program.ToString());
  if (weak->verdict == Verdict::kIndependent) {
    EXPECT_EQ(rewrite->outcome, core::RewriteResult::Outcome::kBounded);
  } else {
    EXPECT_EQ(rewrite->outcome, core::RewriteResult::Outcome::kInconclusive);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeakVsRewrite,
                         ::testing::Range<uint64_t>(0, 60));

// ---------------------------------------------------------------------------
// Property 3: whenever the rewrite declares a bound, the nonrecursive
// program is semantically equivalent to the original.
// ---------------------------------------------------------------------------

class RewriteEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewriteEquivalence, BoundedRewritePreservesSemantics) {
  ast::Program program = RandomDefinition(GetParam() + 2000);
  Result<ast::RecursiveDefinition> def = ast::MakeDefinition(program, "t");
  ASSERT_TRUE(def.ok()) << def.status();
  Result<core::RewriteResult> rewrite = core::BoundedRewrite(*def);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status();
  if (rewrite->outcome != core::RewriteResult::Outcome::kBounded) return;
  Result<core::EquivalenceCheckResult> eq =
      core::CheckEquivalenceOnRandomDatabases(program, rewrite->rewritten,
                                              "t");
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(eq->equivalent) << program.ToString() << "\n"
                              << eq->counterexample;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteEquivalence,
                         ::testing::Range<uint64_t>(0, 40));

// ---------------------------------------------------------------------------
// Property 4: string-at-a-time expansion evaluation agrees with the
// fixpoint evaluator (ExpandRule + containment semantics vs bottom-up).
// ---------------------------------------------------------------------------

class ExpansionVsFixpoint : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExpansionVsFixpoint, SameRelation) {
  ast::Program program = RandomDefinition(GetParam() + 3000);
  Result<ast::RecursiveDefinition> def = ast::MakeDefinition(program, "t");
  ASSERT_TRUE(def.ok()) << def.status();

  // One random database shared by both evaluations.
  storage::Database db_fix;
  storage::Database db_str;
  Rng rng(GetParam() * 7 + 5);
  for (const std::string& pred : program.EdbPredicates()) {
    size_t arity = 0;
    for (const ast::Rule& r : program.rules) {
      for (const ast::Atom& a : r.body) {
        if (a.predicate == pred) arity = a.arity();
      }
    }
    for (int i = 0; i < 12; ++i) {
      std::vector<std::string> row;
      for (size_t k = 0; k < arity; ++k) {
        row.push_back(StrFormat("c%d", static_cast<int>(rng.Uniform(4))));
      }
      ASSERT_TRUE(db_fix.AddRow(pred, row).ok());
      ASSERT_TRUE(db_str.AddRow(pred, row).ok());
    }
  }

  eval::Evaluator fixpoint(&db_fix);
  Result<eval::EvalStats> fs = fixpoint.Evaluate(program);
  ASSERT_TRUE(fs.ok()) << fs.status();

  core::StringEvalOptions opts;
  opts.max_levels = 40;
  opts.quiet_levels = 3;
  Result<core::StringEvalStats> ss =
      core::EvaluateViaExpansion(*def, &db_str, opts);
  ASSERT_TRUE(ss.ok()) << ss.status();
  EXPECT_TRUE(ss->converged);

  EXPECT_EQ(db_fix.DumpRelation("t"), db_str.DumpRelation("t"))
      << program.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionVsFixpoint,
                         ::testing::Range<uint64_t>(0, 40));

// ---------------------------------------------------------------------------
// Property 5: containment mappings are sound — if s1 maps to s2, then on
// every database rel(s2) is a subset of rel(s1) (Lemma 2.1).
// ---------------------------------------------------------------------------

class ContainmentSoundness : public ::testing::TestWithParam<uint64_t> {};

cq::ConjunctiveQuery RandomQuery(Rng* rng, int tag) {
  std::vector<std::string> pool = {"X", "Y", StrFormat("W%d", tag),
                                   StrFormat("U%d", tag)};
  cq::ConjunctiveQuery q;
  q.head = {ast::Term::Var("X"), ast::Term::Var("Y")};
  int atoms = 1 + static_cast<int>(rng->Uniform(3));
  for (int i = 0; i < atoms; ++i) {
    std::vector<ast::Term> args = {PickVar(pool, rng), PickVar(pool, rng)};
    q.body.emplace_back(StrFormat("r%d", static_cast<int>(rng->Uniform(2))),
                        std::move(args));
  }
  // Safety: make sure X and Y occur.
  q.body.emplace_back("anchor",
                      std::vector<ast::Term>{ast::Term::Var("X"),
                                             ast::Term::Var("Y")});
  return q;
}

TEST_P(ContainmentSoundness, MappingImpliesContainment) {
  Rng rng(GetParam() + 4000);
  cq::ConjunctiveQuery q1 = RandomQuery(&rng, 1);
  cq::ConjunctiveQuery q2 = RandomQuery(&rng, 2);
  bool maps = cq::MapsTo(q1, q2);

  // Evaluate both queries on a shared random database.
  storage::Database db;
  for (const char* pred : {"r0", "r1", "anchor"}) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db.AddRow(pred,
                            {StrFormat("c%d", static_cast<int>(rng.Uniform(3))),
                             StrFormat("c%d", static_cast<int>(rng.Uniform(3)))})
                      .ok());
    }
  }
  eval::Evaluator ev(&db);
  ASSERT_TRUE(ev.EvaluateOnce({q1.ToRule("q1")}).ok());
  ASSERT_TRUE(ev.EvaluateOnce({q2.ToRule("q2")}).ok());

  if (maps) {
    // Every q2 tuple must be a q1 tuple.
    const storage::Relation* rel1 = db.Find("q1");
    const storage::Relation* rel2 = db.Find("q2");
    ASSERT_NE(rel1, nullptr);
    ASSERT_NE(rel2, nullptr);
    for (storage::RowRef t : rel2->rows()) {
      EXPECT_TRUE(rel1->Contains(t))
          << q1.ToString() << " should contain " << q2.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentSoundness,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace dire
