#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace dire::parser {
namespace {

TEST(Lexer, TokenKinds) {
  Result<std::vector<Token>> toks = Tokenize("t(X, abc) :- 42, \"hi\".");
  ASSERT_TRUE(toks.ok()) << toks.status();
  std::vector<TokenKind> kinds;
  for (const Token& t : *toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kConstant, TokenKind::kLParen, TokenKind::kVariable,
                TokenKind::kComma, TokenKind::kConstant, TokenKind::kRParen,
                TokenKind::kImplies, TokenKind::kNumber, TokenKind::kComma,
                TokenKind::kString, TokenKind::kPeriod, TokenKind::kEof}));
}

TEST(Lexer, PositionsAndComments) {
  Result<std::vector<Token>> toks = Tokenize("% comment\n  t(X).");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].line, 2);
  EXPECT_EQ((*toks)[0].column, 3);
}

TEST(Lexer, HashCommentsToo) {
  Result<std::vector<Token>> toks = Tokenize("# c\nt.");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "t");
}

TEST(Lexer, NegativeNumbersAndUnderscoreVariables) {
  Result<std::vector<Token>> toks = Tokenize("_x -12");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kVariable);
  EXPECT_EQ((*toks)[1].kind, TokenKind::kNumber);
  EXPECT_EQ((*toks)[1].text, "-12");
}

TEST(Lexer, UnterminatedString) {
  Result<std::vector<Token>> toks = Tokenize("p(\"oops");
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("unterminated"), std::string::npos);
}

TEST(Lexer, UnknownCharacterReportsPosition) {
  Result<std::vector<Token>> toks = Tokenize("p(X) @");
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("1:6"), std::string::npos);
}

TEST(Parser, RuleAndFact) {
  Result<ast::Program> p = ParseProgram(R"(
    t(X, Y) :- e(X, Z), t(Z, Y).
    e(a, b).
  )");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->rules.size(), 2u);
  EXPECT_FALSE(p->rules[0].IsFact());
  EXPECT_TRUE(p->rules[1].IsFact());
  EXPECT_EQ(p->rules[0].ToString(), "t(X,Y) :- e(X,Z), t(Z,Y).");
}

TEST(Parser, ZeroArityPredicates) {
  Result<ast::Program> p = ParseProgram("ok :- ready(). ready().");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->rules[0].head.arity(), 0u);
  EXPECT_EQ(p->rules[0].body[0].arity(), 0u);
}

TEST(Parser, ConstantsKinds) {
  Result<ast::Rule> r = ParseRule("p(alice, 42, \"New York\").");
  ASSERT_TRUE(r.ok()) << r.status();
  for (const ast::Term& t : r->head.args) EXPECT_TRUE(t.IsConstant());
  EXPECT_EQ(r->head.args[2].text(), "New York");
}

TEST(Parser, ArityConflictRejected) {
  Result<ast::Program> p = ParseProgram("p(a). p(a, b).");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("arity"), std::string::npos);
}

TEST(Parser, MissingPeriod) {
  Result<ast::Program> p = ParseProgram("p(a)");
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kParseError);
}

TEST(Parser, UpperCasePredicateRejected) {
  Result<ast::Program> p = ParseProgram("P(a).");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("predicate name"), std::string::npos);
}

TEST(Parser, DanglingComma) {
  EXPECT_FALSE(ParseProgram("t(X) :- e(X), .").ok());
}

TEST(Parser, SingleAtomHelpers) {
  Result<ast::Atom> a = ParseAtom("edge(X, Y)");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->ToString(), "edge(X,Y)");
  // Trailing garbage rejected.
  EXPECT_FALSE(ParseAtom("edge(X) extra").ok());
}

TEST(Parser, RoundTripThroughToString) {
  const char* text = "t(X,Y) :- e(X,Z_0), t(Z_0,Y).";
  Result<ast::Rule> r1 = ParseRule(text);
  ASSERT_TRUE(r1.ok());
  Result<ast::Rule> r2 = ParseRule(r1->ToString());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
}

TEST(Parser, ErrorPositionInMessage) {
  Result<ast::Program> p = ParseProgram("t(X) :-\n  e(X\n.");
  ASSERT_FALSE(p.ok());
  // The ')' is missing; the error should point at line 3.
  EXPECT_NE(p.status().message().find("3:"), std::string::npos)
      << p.status().message();
}

}  // namespace
}  // namespace dire::parser
