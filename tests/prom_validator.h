#ifndef DIRE_TESTS_PROM_VALIDATOR_H_
#define DIRE_TESTS_PROM_VALIDATOR_H_

// Strict parse-back validator for the Prometheus text exposition format
// (text/plain; version=0.0.4), shared by obs_test.cc (registry output) and
// server_test.cc (live GET /metrics). Checks the things a scraper trips
// over that substring assertions never catch:
//
//   - line grammar: `# HELP`, `# TYPE`, and sample lines only;
//   - metric and label names match the spec's character classes;
//   - label values use only the three legal escapes (\\ , \" , \n);
//   - at most one `# TYPE` per family, and it precedes the samples;
//   - no duplicate series (same name + same label set);
//   - sample values parse as numbers (+Inf/-Inf/NaN allowed);
//   - histograms: per label set, `le` bucket bounds strictly increase,
//     cumulative counts never decrease, the `+Inf` bucket exists and
//     equals `_count`, and `_sum`/`_count` are present.
//
// ValidatePrometheusText returns "" when the text is valid, otherwise a
// one-line description of the first violation. An empty exposition is
// valid (the -DDIRE_OBS=OFF exporters emit empty documents).

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dire::test {

struct PromSample {
  std::string name;                          // e.g. "dire_foo_bucket"
  std::map<std::string, std::string> labels;  // unescaped values
  double value = 0;
};

struct PromExposition {
  std::map<std::string, std::string> types;  // family -> counter|gauge|...
  std::vector<PromSample> samples;
};

namespace prom_internal {

inline bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (i > 0 && c >= '0' && c <= '9');
    if (!ok) return false;
  }
  return true;
}

inline bool ValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              (i > 0 && c >= '0' && c <= '9');
    if (!ok) return false;
  }
  return true;
}

inline bool ValidSampleValue(const std::string& text) {
  if (text.empty()) return false;
  if (text == "+Inf" || text == "-Inf" || text == "Inf" || text == "NaN") {
    return true;
  }
  char* end = nullptr;
  std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

// The family a sample belongs to: histogram series drop their
// _bucket/_sum/_count suffix so they attach to the `# TYPE name histogram`
// declaration.
inline std::string FamilyOf(const PromExposition& exposition,
                            const std::string& sample_name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    std::string base = sample_name;
    size_t len = std::string(suffix).size();
    if (base.size() > len && base.compare(base.size() - len, len, suffix) == 0) {
      base.resize(base.size() - len);
      auto it = exposition.types.find(base);
      if (it != exposition.types.end() && it->second == "histogram") {
        return base;
      }
    }
  }
  return sample_name;
}

// Renders a label set (minus `le`) into a stable grouping key.
inline std::string GroupKey(const PromSample& sample) {
  std::string key;
  for (const auto& [name, value] : sample.labels) {
    if (name == "le") continue;
    key += name;
    key += '\x1f';
    key += value;
    key += '\x1e';
  }
  return key;
}

}  // namespace prom_internal

// Parses and validates `text`. Returns "" when valid; on success and when
// `out` is non-null, fills it with the parsed samples and family types.
inline std::string ValidatePrometheusText(const std::string& text,
                                          PromExposition* out = nullptr) {
  using namespace prom_internal;
  PromExposition exposition;
  // Families that already emitted a sample; a `# TYPE` after that is a
  // spec violation.
  std::set<std::string> sampled_families;
  std::set<std::string> seen_series;

  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    ++line_no;
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      return "line " + std::to_string(line_no) + ": missing trailing newline";
    }
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    auto fail = [&](const std::string& what) {
      return "line " + std::to_string(line_no) + ": " + what + ": " + line;
    };
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# HELP ", 0) == 0) {
        std::string rest = line.substr(7);
        size_t space = rest.find(' ');
        std::string name =
            space == std::string::npos ? rest : rest.substr(0, space);
        if (!ValidMetricName(name)) return fail("bad HELP metric name");
        // Help text: anything except a raw backslash that is not \\ or \n.
        std::string help =
            space == std::string::npos ? "" : rest.substr(space + 1);
        for (size_t i = 0; i < help.size(); ++i) {
          if (help[i] != '\\') continue;
          if (i + 1 >= help.size() ||
              (help[i + 1] != '\\' && help[i + 1] != 'n')) {
            return fail("bad escape in HELP text");
          }
          ++i;
        }
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string rest = line.substr(7);
        size_t space = rest.find(' ');
        if (space == std::string::npos) return fail("TYPE needs a kind");
        std::string name = rest.substr(0, space);
        std::string kind = rest.substr(space + 1);
        if (!ValidMetricName(name)) return fail("bad TYPE metric name");
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped") {
          return fail("unknown TYPE kind");
        }
        if (exposition.types.count(name) != 0) return fail("duplicate TYPE");
        if (sampled_families.count(name) != 0) {
          return fail("TYPE after samples of the family");
        }
        exposition.types[name] = kind;
        continue;
      }
      continue;  // Other comments are legal and ignored.
    }

    // Sample line: name[{labels}] value [timestamp]
    PromSample sample;
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) return fail("no value");
    sample.name = line.substr(0, name_end);
    if (!ValidMetricName(sample.name)) return fail("bad metric name");
    size_t cursor = name_end;
    if (line[cursor] == '{') {
      ++cursor;
      while (cursor < line.size() && line[cursor] != '}') {
        size_t eq = line.find('=', cursor);
        if (eq == std::string::npos) return fail("label without '='");
        std::string label_name = line.substr(cursor, eq - cursor);
        if (!ValidLabelName(label_name)) return fail("bad label name");
        if (eq + 1 >= line.size() || line[eq + 1] != '"') {
          return fail("label value not quoted");
        }
        std::string value;
        size_t i = eq + 2;
        bool closed = false;
        for (; i < line.size(); ++i) {
          char c = line[i];
          if (c == '\\') {
            if (i + 1 >= line.size()) return fail("dangling backslash");
            char esc = line[i + 1];
            if (esc == '\\') {
              value += '\\';
            } else if (esc == '"') {
              value += '"';
            } else if (esc == 'n') {
              value += '\n';
            } else {
              return fail("illegal escape in label value");
            }
            ++i;
            continue;
          }
          if (c == '"') {
            closed = true;
            break;
          }
          value += c;
        }
        if (!closed) return fail("unterminated label value");
        if (sample.labels.count(label_name) != 0) {
          return fail("duplicate label name");
        }
        sample.labels[label_name] = value;
        cursor = i + 1;
        if (cursor < line.size() && line[cursor] == ',') ++cursor;
      }
      if (cursor >= line.size() || line[cursor] != '}') {
        return fail("unterminated label set");
      }
      ++cursor;
    }
    if (cursor >= line.size() || line[cursor] != ' ') {
      return fail("no space before value");
    }
    ++cursor;
    std::string value_text = line.substr(cursor);
    size_t space = value_text.find(' ');
    if (space != std::string::npos) value_text.resize(space);  // timestamp ok
    if (!ValidSampleValue(value_text)) return fail("bad sample value");
    if (value_text == "+Inf" || value_text == "Inf") {
      sample.value = HUGE_VAL;
    } else if (value_text == "-Inf") {
      sample.value = -HUGE_VAL;
    } else if (value_text == "NaN") {
      sample.value = NAN;
    } else {
      sample.value = std::strtod(value_text.c_str(), nullptr);
    }

    std::string series_key = sample.name + '\x1d' + GroupKey(sample);
    auto le = sample.labels.find("le");
    if (le != sample.labels.end()) series_key += "\x1dle=" + le->second;
    if (!seen_series.insert(series_key).second) {
      return fail("duplicate series");
    }
    sampled_families.insert(FamilyOf(exposition, sample.name));
    exposition.samples.push_back(std::move(sample));
  }

  // Histogram shape checks, per (family, label-set-minus-le).
  for (const auto& [family, kind] : exposition.types) {
    if (kind != "histogram") continue;
    struct Group {
      std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
      bool has_sum = false;
      bool has_count = false;
      double count = 0;
    };
    std::map<std::string, Group> groups;
    for (const PromSample& sample : exposition.samples) {
      std::string key = GroupKey(sample);
      if (sample.name == family + "_bucket") {
        auto le = sample.labels.find("le");
        if (le == sample.labels.end()) {
          return "histogram " + family + " has a _bucket without le";
        }
        double bound = le->second == "+Inf"
                           ? HUGE_VAL
                           : std::strtod(le->second.c_str(), nullptr);
        groups[key].buckets.emplace_back(bound, sample.value);
      } else if (sample.name == family + "_sum") {
        groups[key].has_sum = true;
      } else if (sample.name == family + "_count") {
        groups[key].has_count = true;
        groups[key].count = sample.value;
      }
    }
    if (groups.empty()) {
      return "histogram " + family + " declared but has no samples";
    }
    for (const auto& [key, group] : groups) {
      if (!group.has_sum) return "histogram " + family + " missing _sum";
      if (!group.has_count) return "histogram " + family + " missing _count";
      if (group.buckets.empty()) {
        return "histogram " + family + " has no buckets";
      }
      for (size_t i = 0; i < group.buckets.size(); ++i) {
        if (i > 0) {
          if (!(group.buckets[i].first > group.buckets[i - 1].first)) {
            return "histogram " + family + " le bounds not increasing";
          }
          if (group.buckets[i].second < group.buckets[i - 1].second) {
            return "histogram " + family + " cumulative counts decrease";
          }
        }
      }
      const auto& last = group.buckets.back();
      if (!std::isinf(last.first)) {
        return "histogram " + family + " missing +Inf bucket";
      }
      if (last.second != group.count) {
        return "histogram " + family + " +Inf bucket != _count";
      }
    }
  }

  if (out != nullptr) *out = std::move(exposition);
  return "";
}

}  // namespace dire::test

#endif  // DIRE_TESTS_PROM_VALIDATOR_H_
