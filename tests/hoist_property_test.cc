// Property suite for the §6 hoisting transformation: on randomly shaped
// Example-6.1-like rules, whenever HoistUnconnectedPredicates reports a
// transformation, the transformed program must be semantically equivalent
// to the original on fresh random databases (a different RNG stream from
// the transformation's own internal verification).

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/string_util.h"
#include "core/equivalence.h"
#include "core/optimize.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

// A chain rule t(X,Y) :- e(X,Z), <extra atoms>, t(Z,Y) with random extra
// atoms drawn from: stable-variable lookups b_i(Y...), private-variable
// lookups c_i(W_i...), and chain-touching lookups d_i(Z,...).
ast::Program RandomHoistScenario(uint64_t seed) {
  Rng rng(seed);
  std::string body = "e(X, Z), ";
  int extras = 1 + static_cast<int>(rng.Uniform(3));
  for (int i = 0; i < extras; ++i) {
    switch (rng.Uniform(4)) {
      case 0:
        body += StrFormat("b%d(Y), ", i);
        break;
      case 1:
        body += StrFormat("c%d(W%d, Y), ", i, i);
        break;
      case 2:
        body += StrFormat("c%d(W%d, W%d), ", i, i, i);
        break;
      default:
        body += StrFormat("d%d(Z, Y), ", i);
        break;
    }
  }
  std::string text = StrFormat(
      "t(X, Y) :- %st(Z, Y).\nt(X, Y) :- t0(X, Y).\n", body.c_str());
  return dire::testing::ParseOrDie(text);
}

class HoistEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HoistEquivalence, TransformedProgramIsEquivalent) {
  ast::Program program = RandomHoistScenario(GetParam());
  Result<ast::RecursiveDefinition> def = ast::MakeDefinition(program, "t");
  ASSERT_TRUE(def.ok()) << def.status();

  Result<HoistResult> h = HoistUnconnectedPredicates(*def);
  ASSERT_TRUE(h.ok()) << h.status();
  if (!h->changed) return;  // Nothing hoisted; nothing to verify.

  EquivalenceCheckOptions opts;
  opts.trials = 10;
  opts.domain_size = 4;
  opts.seed = GetParam() * 31 + 17;  // Independent of the built-in check.
  Result<EquivalenceCheckResult> eq =
      CheckEquivalenceOnRandomDatabases(program, h->program, "t", opts);
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(eq->equivalent)
      << program.ToString() << "\n=> hoisted:\n"
      << h->program.ToString() << "\n"
      << eq->counterexample;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HoistEquivalence,
                         ::testing::Range<uint64_t>(0, 50));

// The transformation must never hoist a chain-touching atom (one sharing the
// recursion's nondistinguished variable Z).
class HoistSafety : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HoistSafety, ChainAtomsStayInRecursion) {
  ast::Program program = RandomHoistScenario(GetParam() + 100);
  Result<ast::RecursiveDefinition> def = ast::MakeDefinition(program, "t");
  ASSERT_TRUE(def.ok());
  Result<HoistResult> h = HoistUnconnectedPredicates(*def);
  ASSERT_TRUE(h.ok());
  for (const ast::Atom& atom : h->hoisted) {
    EXPECT_NE(atom.predicate, "e");
    EXPECT_NE(atom.predicate.substr(0, 1), "d") << atom.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HoistSafety,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace dire::core
