#include <gtest/gtest.h>

#include "core/equivalence.h"
#include "core/rewrite.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

using dire::testing::DefOrDie;
using dire::testing::ParseOrDie;

RewriteResult Rewrite(std::string_view program, const std::string& target,
                      RewriteOptions options = {}) {
  ast::RecursiveDefinition def = DefOrDie(program, target);
  Result<RewriteResult> r = BoundedRewrite(def, options);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.status().ToString());
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

// The rewrite of a bounded definition must be semantically equivalent to the
// original on random databases.
void ExpectEquivalent(std::string_view program, const std::string& target,
                      const ast::Program& rewritten) {
  Result<EquivalenceCheckResult> eq = CheckEquivalenceOnRandomDatabases(
      ParseOrDie(program), rewritten, target);
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(eq->equivalent) << eq->counterexample;
}

// Containment-based equivalence for definitions whose rules are not
// range-restricted (the paper allows head variables that never occur in a
// body, e.g. Example 4.5's Z; classical bottom-up evaluation does not):
// every expansion string up to `depth` must be contained in the union of
// the rewrite's conjunctive queries (Theorem 2.1 / Sagiv–Yannakakis).
void ExpectRewriteCoversExpansion(std::string_view program,
                                  const std::string& target,
                                  const ast::Program& rewritten, int depth) {
  ast::RecursiveDefinition def = DefOrDie(program, target);
  std::vector<cq::ConjunctiveQuery> union_queries;
  for (const ast::Rule& r : rewritten.rules) {
    union_queries.push_back(cq::ConjunctiveQuery::FromRule(r));
  }
  Result<std::vector<core::ExpansionString>> strings =
      core::ExpandToDepth(def, depth);
  ASSERT_TRUE(strings.ok()) << strings.status();
  for (const core::ExpansionString& s : *strings) {
    EXPECT_TRUE(cq::UnionContains(union_queries, s.query))
        << "string not covered: " << s.ToString();
  }
}

TEST(Rewrite, BuysIsBoundedAndEquivalent) {
  RewriteResult r = Rewrite(dire::testing::kBuys, "buys");
  ASSERT_EQ(r.outcome, RewriteResult::Outcome::kBounded);
  EXPECT_EQ(r.bound, 1);
  EXPECT_EQ(r.strings_kept, 2u);
  ExpectEquivalent(dire::testing::kBuys, "buys", r.rewritten);
}

TEST(Rewrite, TransitiveClosureIsInconclusive) {
  RewriteResult r = Rewrite(dire::testing::kTransitiveClosure, "t");
  EXPECT_EQ(r.outcome, RewriteResult::Outcome::kInconclusive);
  EXPECT_EQ(r.bound, -1);
  EXPECT_TRUE(r.rewritten.rules.empty());
}

TEST(Rewrite, Example44BoundedAndEquivalent) {
  RewriteResult r = Rewrite(dire::testing::kExample44, "t");
  ASSERT_EQ(r.outcome, RewriteResult::Outcome::kBounded);
  ExpectEquivalent(dire::testing::kExample44, "t", r.rewritten);
}

TEST(Rewrite, Example46BoundedAndEquivalent) {
  RewriteResult r = Rewrite(dire::testing::kExample46, "t");
  ASSERT_EQ(r.outcome, RewriteResult::Outcome::kBounded);
  EXPECT_EQ(r.bound, 1);
  ExpectEquivalent(dire::testing::kExample46, "t", r.rewritten);
}

TEST(Rewrite, Example45StrongIndependenceYieldsBound) {
  // Example 4.5's rule binds Z only through the exit rule, so the program
  // is not range-restricted; equivalence is checked by containment.
  RewriteResult r = Rewrite(dire::testing::kExample45, "t");
  ASSERT_EQ(r.outcome, RewriteResult::Outcome::kBounded);
  ExpectRewriteCoversExpansion(dire::testing::kExample45, "t", r.rewritten,
                               r.bound + 4);
}

TEST(Rewrite, ExitDefinedRecursion) {
  // Example 4.6 variant: the exit rule e(W,Y) alone defines t (and leaves X
  // range-unrestricted, so again check by containment).
  RewriteResult r = Rewrite(dire::testing::kTcLooseExit, "t");
  ASSERT_EQ(r.outcome, RewriteResult::Outcome::kBounded);
  ExpectRewriteCoversExpansion(dire::testing::kTcLooseExit, "t", r.rewritten,
                               r.bound + 4);
}

TEST(Rewrite, MultiRuleBoundedDefinition) {
  // Both rules only permute head variables; everything collapses quickly.
  const char* program = R"(
    t(X, Y) :- a(X), t(X, Y).
    t(X, Y) :- b(Y), t(X, Y).
    t(X, Y) :- e(X, Y).
  )";
  RewriteResult r = Rewrite(program, "t");
  ASSERT_EQ(r.outcome, RewriteResult::Outcome::kBounded);
  ExpectEquivalent(program, "t", r.rewritten);
}

TEST(Rewrite, MinimizationShrinksKeptStrings) {
  // Level 1 is kept (likes(X,Y) cannot map onto likes(Z_0,Y)), and its two
  // tr atoms fold into one under minimization.
  const char* program = R"(
    t(X, Y) :- tr(X, W), tr(X, V), t(Z, Y).
    t(X, Y) :- likes(X, Y).
  )";
  RewriteOptions with;
  with.minimize_queries = true;
  RewriteOptions without;
  without.minimize_queries = false;
  RewriteResult minimized = Rewrite(program, "t", with);
  RewriteResult raw = Rewrite(program, "t", without);
  ASSERT_EQ(minimized.outcome, RewriteResult::Outcome::kBounded);
  size_t total_min = 0;
  size_t total_raw = 0;
  for (const ast::Rule& r : minimized.rewritten.rules) {
    total_min += r.body.size();
  }
  for (const ast::Rule& r : raw.rewritten.rules) total_raw += r.body.size();
  EXPECT_LT(total_min, total_raw);
  ExpectEquivalent(program, "t", minimized.rewritten);
}

TEST(Rewrite, MaxDepthIsRespected) {
  RewriteOptions opts;
  opts.max_depth = 2;
  RewriteResult r = Rewrite(dire::testing::kTransitiveClosure, "t", opts);
  EXPECT_EQ(r.outcome, RewriteResult::Outcome::kInconclusive);
  EXPECT_LE(r.strings_seen, 3u);
}

TEST(PlanIterationBound, BoundedDefinitionGetsRounds) {
  ast::RecursiveDefinition def = DefOrDie(dire::testing::kBuys, "buys");
  Result<int> rounds = PlanIterationBound(def);
  ASSERT_TRUE(rounds.ok()) << rounds.status();
  EXPECT_EQ(*rounds, 2);  // Strings of depth 0 and 1.
}

TEST(PlanIterationBound, DependentDefinitionInconclusive) {
  ast::RecursiveDefinition def =
      DefOrDie(dire::testing::kTransitiveClosure, "t");
  Result<int> rounds = PlanIterationBound(def);
  ASSERT_FALSE(rounds.ok());
  EXPECT_EQ(rounds.status().code(), StatusCode::kInconclusive);
}

}  // namespace
}  // namespace dire::core
