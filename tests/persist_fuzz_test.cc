// Robustness fuzzing for the durable-format loaders: snapshots and WAL
// files with flipped bytes, truncations, and random garbage must never
// crash or partially mutate a database — every outcome is a clean load or a
// clean kCorruption / kParseError status, and recovery mode recovers a
// verified committed prefix or nothing.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <string>
#include <vector>

#include "base/io.h"
#include "base/rng.h"
#include "storage/database.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace dire::storage {
namespace {

// A representative snapshot: several relations, escaped values, meta keys,
// extra ("$delta:") sections.
std::string CorpusSnapshot() {
  Database db;
  EXPECT_TRUE(db.AddRow("e", {"a", "b"}).ok());
  EXPECT_TRUE(db.AddRow("e", {"b", "c"}).ok());
  EXPECT_TRUE(db.AddRow("t", {"a", "c"}).ok());
  EXPECT_TRUE(db.AddRow("label", {"x", "with\ttab and\nnewline"}).ok());
  Relation delta("$delta:t", 2);
  delta.Insert({db.symbols().Intern("a"), db.symbols().Intern("c")});
  SnapshotWriteOptions opts;
  opts.meta["stratum"] = "1";
  opts.meta["rounds"] = "3";
  opts.extra_relations.emplace_back("$delta:t", &delta);
  Result<std::string> text = SaveSnapshot(db, opts);
  EXPECT_TRUE(text.ok());
  return text.ok() ? *text : std::string();
}

// ctest runs every seed as its own process in parallel, so scratch files
// must be per-process to avoid collisions.
std::string ScratchPath(const std::string& stem) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "/" + stem + "." +
         std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1)) + ".wal";
}

std::string CorpusWal() {
  std::string path = ScratchPath("persist_fuzz_corpus");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<Wal>> wal = Wal::Open(path);
    EXPECT_TRUE(wal.ok());
    EXPECT_TRUE((*wal)->Append(EncodeFactRecord("e", {"c", "d"})).ok());
    EXPECT_TRUE((*wal)->Append(EncodeFactRecord("e", {"d", "e\tf"})).ok());
    EXPECT_TRUE((*wal)->Append(EncodeFactRecord("flag", {})).ok());
  }
  Result<std::string> bytes = io::ReadFile(path);
  EXPECT_TRUE(bytes.ok());
  std::remove(path.c_str());
  return bytes.ok() ? *bytes : std::string();
}

// Loads `text` as a snapshot into a database that already holds a sentinel
// relation; whatever happens, the sentinel survives and no tuple is wider
// or narrower than its relation's arity.
void CheckSnapshotLoad(const std::string& text, bool recover_tail) {
  Database db;
  ASSERT_TRUE(db.AddRow("sentinel", {"s"}).ok());
  SnapshotLoadOptions opts;
  opts.recover_tail = recover_tail;
  Result<SnapshotLoadStats> r = LoadSnapshot(&db, text, opts);
  if (!r.ok()) {
    EXPECT_FALSE(r.status().message().empty());
    // A failed load never mutates: only the sentinel remains.
    EXPECT_EQ(db.RelationNames().size(), 1u);
  }
  ASSERT_NE(db.Find("sentinel"), nullptr);
  EXPECT_EQ(db.Find("sentinel")->size(), 1u);
  for (const std::string& name : db.RelationNames()) {
    const Relation* rel = db.Find(name);
    ASSERT_NE(rel, nullptr);
    for (RowRef t : rel->rows()) {
      EXPECT_EQ(t.size(), rel->arity());
    }
  }
}

void CheckWalReplay(const std::string& bytes) {
  std::string path = ScratchPath("persist_fuzz_replay");
  ASSERT_TRUE(io::AtomicWriteFile(path, bytes).ok());
  size_t seen = 0;
  Result<WalReplayStats> stats =
      ReplayWal(path, [&seen](std::string_view payload) {
        // Decoding may fail (payload bytes are attacker-controlled); it must
        // fail cleanly.
        Result<FactRecord> record = DecodeFactRecord(payload);
        if (record.ok()) {
          EXPECT_EQ(record->relation.empty(), false);
        }
        ++seen;
        return Status::Ok();
      });
  if (stats.ok()) {
    EXPECT_EQ(stats->records, seen);
    EXPECT_LE(stats->valid_bytes, bytes.size());
  } else {
    EXPECT_FALSE(stats.status().message().empty());
  }
  std::remove(path.c_str());
}

class PersistFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PersistFuzz, SnapshotByteFlips) {
  static const std::string corpus = CorpusSnapshot();
  ASSERT_FALSE(corpus.empty());
  Rng rng(GetParam() * 131 + 7);
  for (int trial = 0; trial < 8; ++trial) {
    std::string mutated = corpus;
    int flips = 1 + static_cast<int>(rng.Next() % 4);
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.Next() % mutated.size();
      mutated[pos] ^= static_cast<char>(1u << (rng.Next() % 8));
    }
    CheckSnapshotLoad(mutated, false);
    CheckSnapshotLoad(mutated, true);
  }
}

TEST_P(PersistFuzz, SnapshotTruncations) {
  static const std::string corpus = CorpusSnapshot();
  Rng rng(GetParam() * 17 + 3);
  for (int trial = 0; trial < 8; ++trial) {
    size_t cut = rng.Next() % (corpus.size() + 1);
    std::string truncated = corpus.substr(0, cut);
    CheckSnapshotLoad(truncated, false);

    // Recovery mode: a pure truncation of a valid snapshot must either load
    // a verified prefix or fail cleanly on a damaged directive line — and
    // recovered relations only ever shrink, never invent tuples.
    Database db;
    SnapshotLoadOptions opts;
    opts.recover_tail = true;
    Result<SnapshotLoadStats> r = LoadSnapshot(&db, truncated, opts);
    if (r.ok()) {
      const Relation* e = db.Find("e");
      if (e != nullptr) {
        EXPECT_LE(e->size(), 2u);
      }
    }
  }
}

TEST_P(PersistFuzz, SnapshotRandomGarbage) {
  Rng rng(GetParam() * 29 + 11);
  for (size_t length : {0, 5, 64, 400}) {
    std::string garbage = "# dire snapshot v2\n";
    for (size_t i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.Next() % 256);
    }
    CheckSnapshotLoad(garbage, false);
    CheckSnapshotLoad(garbage, true);
  }
}

TEST_P(PersistFuzz, WalByteFlips) {
  static const std::string corpus = CorpusWal();
  ASSERT_FALSE(corpus.empty());
  Rng rng(GetParam() * 41 + 13);
  for (int trial = 0; trial < 8; ++trial) {
    std::string mutated = corpus;
    size_t pos = rng.Next() % mutated.size();
    mutated[pos] ^= static_cast<char>(1u << (rng.Next() % 8));
    CheckWalReplay(mutated);
  }
}

TEST_P(PersistFuzz, WalTruncationsRecoverPrefix) {
  static const std::string corpus = CorpusWal();
  Rng rng(GetParam() * 59 + 1);
  for (int trial = 0; trial < 8; ++trial) {
    size_t cut = rng.Next() % (corpus.size() + 1);
    CheckWalReplay(corpus.substr(0, cut));
  }
}

TEST_P(PersistFuzz, WalRandomGarbage) {
  Rng rng(GetParam() * 71 + 5);
  for (size_t length : {0, 3, 17, 200}) {
    std::string garbage;
    for (size_t i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.Next() % 256);
    }
    CheckWalReplay(garbage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistFuzz,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace dire::storage
