#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "eval/plan.h"
#include "storage/generators.h"
#include "tests/test_util.h"

namespace dire::eval {
namespace {

using dire::testing::ParseOrDie;

// Transitive closure of a 5-node chain has n*(n-1)/2 = 10 pairs.
constexpr size_t kChain5Closure = 10;

EvalOptions Naive() {
  EvalOptions o;
  o.mode = EvalOptions::Mode::kNaive;
  return o;
}

TEST(Evaluator, TransitiveClosureOnChainSemiNaive) {
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 5).ok());
  Evaluator ev(&db);
  Result<EvalStats> stats =
      ev.Evaluate(ParseOrDie(dire::testing::kTransitiveClosure));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(db.Find("t")->size(), kChain5Closure);
  EXPECT_TRUE(stats->converged);
}

TEST(Evaluator, NaiveAndSemiNaiveAgree) {
  for (int seed : {1, 2, 3}) {
    storage::Database a;
    storage::Database b;
    Rng ra(static_cast<uint64_t>(seed));
    Rng rb(static_cast<uint64_t>(seed));
    ASSERT_TRUE(storage::MakeRandomGraph(&a, "e", 12, 25, &ra).ok());
    ASSERT_TRUE(storage::MakeRandomGraph(&b, "e", 12, 25, &rb).ok());
    Evaluator ea(&a, Naive());
    Evaluator eb(&b);
    ast::Program p = ParseOrDie(dire::testing::kTransitiveClosure);
    ASSERT_TRUE(ea.Evaluate(p).ok());
    ASSERT_TRUE(eb.Evaluate(p).ok());
    EXPECT_EQ(a.DumpRelation("t"), b.DumpRelation("t")) << "seed " << seed;
  }
}

TEST(Evaluator, CycleClosureIsComplete) {
  storage::Database db;
  ASSERT_TRUE(storage::MakeCycle(&db, "e", 6).ok());
  Evaluator ev(&db);
  ASSERT_TRUE(ev.Evaluate(ParseOrDie(dire::testing::kTransitiveClosure)).ok());
  // On a cycle every node reaches every node (including itself).
  EXPECT_EQ(db.Find("t")->size(), 36u);
}

TEST(Evaluator, FactsInProgramAreLoaded) {
  storage::Database db;
  Evaluator ev(&db);
  ASSERT_TRUE(ev.Evaluate(ParseOrDie(R"(
    e(a, b). e(b, c). e(c, d).
    t(X, Y) :- e(X, Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
  )")).ok());
  EXPECT_EQ(db.DumpRelation("t"),
            "t(a,b)\nt(a,c)\nt(a,d)\nt(b,c)\nt(b,d)\nt(c,d)\n");
}

TEST(Evaluator, MutualRecursion) {
  storage::Database db;
  Evaluator ev(&db);
  ASSERT_TRUE(ev.Evaluate(ParseOrDie(R"(
    zero(n0).
    succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4).
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
  )")).ok());
  EXPECT_EQ(db.DumpRelation("even"), "even(n0)\neven(n2)\neven(n4)\n");
  EXPECT_EQ(db.DumpRelation("odd"), "odd(n1)\nodd(n3)\n");
}

TEST(Evaluator, ConstantsInRules) {
  storage::Database db;
  Evaluator ev(&db);
  ASSERT_TRUE(ev.Evaluate(ParseOrDie(R"(
    e(a, b). e(b, c).
    from_a(Y) :- e(a, Y).
  )")).ok());
  EXPECT_EQ(db.DumpRelation("from_a"), "from_a(b)\n");
}

TEST(Evaluator, RepeatedVariableInAtom) {
  storage::Database db;
  Evaluator ev(&db);
  ASSERT_TRUE(ev.Evaluate(ParseOrDie(R"(
    e(a, a). e(a, b). e(c, c).
    loop(X) :- e(X, X).
  )")).ok());
  EXPECT_EQ(db.DumpRelation("loop"), "loop(a)\nloop(c)\n");
}

TEST(Evaluator, UnsafeRuleRejected) {
  storage::Database db;
  Evaluator ev(&db);
  Result<EvalStats> r = ev.Evaluate(ParseOrDie("t(X, Y) :- e(X)."));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unsafe"), std::string::npos);
}

TEST(Evaluator, MissingEdbRelationYieldsEmpty) {
  storage::Database db;
  Evaluator ev(&db);
  ASSERT_TRUE(ev.Evaluate(ParseOrDie("t(X) :- ghost(X).")).ok());
  ASSERT_NE(db.Find("t"), nullptr);
  EXPECT_EQ(db.Find("t")->size(), 0u);
}

TEST(Evaluator, IterationBoundRunsExactRounds) {
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 8).ok());
  EvalOptions opts;
  opts.mode = EvalOptions::Mode::kNaive;
  opts.max_iterations = 2;
  opts.stop_on_fixpoint = false;
  Evaluator ev(&db);
  ev = Evaluator(&db, opts);
  Result<EvalStats> stats =
      ev.Evaluate(ParseOrDie(dire::testing::kTransitiveClosure));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->iterations, 2);
  // Two naive rounds reach paths of length <= 2: 7 + 6 edges.
  EXPECT_EQ(db.Find("t")->size(), 13u);
}

TEST(Evaluator, IterationBoundRequiresPositiveCap) {
  storage::Database db;
  EvalOptions opts;
  opts.stop_on_fixpoint = false;
  Evaluator ev(&db, opts);
  EXPECT_FALSE(ev.Evaluate(ParseOrDie("t(X) :- e(X).")).ok());
}

TEST(Evaluator, MaxIterationsReportsNonConvergence) {
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 30).ok());
  EvalOptions opts;
  opts.max_iterations = 3;
  Evaluator ev(&db, opts);
  Result<EvalStats> stats =
      ev.Evaluate(ParseOrDie(dire::testing::kTransitiveClosure));
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->converged);
}

TEST(Evaluator, EvaluateOnceIsSinglePass) {
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 5).ok());
  Evaluator ev(&db);
  ast::Program p = ParseOrDie(R"(
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, Z), e(Z, Y).
  )");
  Result<EvalStats> stats = ev.EvaluateOnce(p.rules);
  ASSERT_TRUE(stats.ok());
  // Paths of length 1 (4) and 2 (3).
  EXPECT_EQ(db.Find("t")->size(), 7u);
}

TEST(Evaluator, SemiNaiveFewerFiringsThanNaiveDerivations) {
  storage::Database db1;
  storage::Database db2;
  ASSERT_TRUE(storage::MakeChain(&db1, "e", 40).ok());
  ASSERT_TRUE(storage::MakeChain(&db2, "e", 40).ok());
  ast::Program p = ParseOrDie(dire::testing::kTransitiveClosure);
  Evaluator naive(&db1, Naive());
  Evaluator semi(&db2);
  Result<EvalStats> sn = naive.Evaluate(p);
  Result<EvalStats> ss = semi.Evaluate(p);
  ASSERT_TRUE(sn.ok());
  ASSERT_TRUE(ss.ok());
  EXPECT_EQ(db1.Find("t")->size(), db2.Find("t")->size());
  // Both must have derived the same set; semi-naive should not do more
  // iterations than naive.
  EXPECT_LE(ss->iterations, sn->iterations + 1);
}

TEST(Evaluator, ReusedEvaluatorResetsStatsBetweenEvaluations) {
  // Regression: a reused evaluator must not leak the previous run's
  // exhausted/exhausted_reason (or any other stat) into the next result.
  // First run: tuple budget trips under kPartial, so exhausted_reason is
  // set. Second run: a facts-only program that never consults the guard —
  // any leaked state would survive into its stats.
  GuardLimits limits;
  limits.max_tuples = 3;
  ExecutionGuard guard(limits);
  EvalOptions options;
  options.guard = &guard;
  options.on_exhaustion = EvalOptions::OnExhaustion::kPartial;
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 5).ok());
  Evaluator ev(&db, options);

  Result<EvalStats> first =
      ev.Evaluate(ParseOrDie(dire::testing::kTransitiveClosure));
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->exhausted);
  ASSERT_FALSE(first->exhausted_reason.empty());
  ASSERT_FALSE(first->converged);

  Result<EvalStats> second = ev.Evaluate(ParseOrDie("f(a). f(b)."));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second->exhausted);
  EXPECT_TRUE(second->exhausted_reason.empty());
  EXPECT_TRUE(second->converged);
  EXPECT_EQ(second->iterations, 0);
  EXPECT_EQ(second->tuples_derived, 0u);
  EXPECT_EQ(second->rule_firings, 0u);
  EXPECT_TRUE(second->rule_stats.empty());
  EXPECT_TRUE(second->stratum_stats.empty());
}

TEST(Evaluator, RuleStatsBreakDownDerivations) {
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 5).ok());
  Evaluator ev(&db);
  Result<EvalStats> stats =
      ev.Evaluate(ParseOrDie(dire::testing::kTransitiveClosure));
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->rule_stats.size(), 2u);
  size_t inserted = 0;
  for (const RuleStats& rs : stats->rule_stats) {
    EXPECT_EQ(rs.head_predicate, "t");
    EXPECT_GE(rs.stratum, 0);
    EXPECT_GT(rs.firings, 0u);
    inserted += rs.tuples_inserted;
  }
  // Per-rule inserts partition the total.
  EXPECT_EQ(inserted, stats->tuples_derived);
  ASSERT_EQ(stats->stratum_stats.size(), 1u);
  EXPECT_TRUE(stats->stratum_stats[0].recursive);
  EXPECT_EQ(stats->stratum_stats[0].tuples_inserted, stats->tuples_derived);
  EXPECT_EQ(stats->stratum_stats[0].rounds, stats->iterations);

  // Re-running the same program derives nothing new and reports fresh
  // per-rule counts (not accumulations over both runs).
  Result<EvalStats> again =
      ev.Evaluate(ParseOrDie(dire::testing::kTransitiveClosure));
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->tuples_derived, 0u);
  ASSERT_EQ(again->rule_stats.size(), 2u);
  for (const RuleStats& rs : again->rule_stats) {
    EXPECT_EQ(rs.tuples_inserted, 0u);
  }
}

TEST(CompileRule, GreedyReorderPutsBoundAtomsFirst) {
  storage::SymbolTable symbols;
  Result<ast::Rule> rule =
      parser::ParseRule("t(Y) :- big(Z, Y), anchor(a, Z).");
  ASSERT_TRUE(rule.ok());
  Result<CompiledRule> plan = CompileRule(*rule, &symbols, {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  // anchor has a constant, so the greedy order starts with it.
  EXPECT_EQ(plan->body[0].predicate, "anchor");
  EXPECT_EQ(plan->body[1].predicate, "big");
  // big joins on Z which is then bound: probe position 0.
  EXPECT_EQ(plan->body[1].probe_position, 0);
}

TEST(CompileRule, DeltaAtomGoesFirst) {
  storage::SymbolTable symbols;
  Result<ast::Rule> rule =
      parser::ParseRule("t(X, Y) :- e(X, Z), t(Z, Y).");
  ASSERT_TRUE(rule.ok());
  CompileOptions opts;
  opts.delta_atom = 1;
  Result<CompiledRule> plan = CompileRule(*rule, &symbols, opts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->body[0].predicate, "t");
  EXPECT_EQ(plan->body[0].source, AtomSource::kDelta);
  EXPECT_EQ(plan->body[1].source, AtomSource::kFull);
}

}  // namespace
}  // namespace dire::eval
