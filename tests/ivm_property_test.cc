// Property tests for incremental view maintenance (eval/maintain.h). The
// invariant under test: a maintained database — derived tuples AND their
// in-memory derivation counts — is a pure function of the base-fact set,
// never of the path that produced it. Concretely:
//
//   * counts are order-independent: any two delta interleavings that reach
//     the same base facts leave bit-identical per-tuple counts;
//   * incremental counting matches a from-scratch recount exactly (the
//     recount is a fresh Maintainer priming its counts over a fresh
//     evaluation of the same base facts);
//   * maintained state survives snapshot and WAL-replay round trips:
//     counts never serialize (snapshots stay byte-identical to a
//     from-scratch evaluation), and maintenance keeps working after a
//     reload, re-priming lazily — including the recovery shape the server
//     uses, where the WAL tail's net effect is applied on top of a
//     checkpointed fixpoint.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/rng.h"
#include "dire.h"
#include "eval/checkpoint.h"
#include "eval/maintain.h"
#include "storage/persist.h"
#include "storage/snapshot.h"
#include "tests/test_util.h"

namespace dire {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// A two-rule non-recursive program where one tuple typically has several
// derivations (direct edge plus every length-2 path), so counting — not
// mere set membership — is what keeps deletions sound.
constexpr char kCountingProgram[] =
    "t(X, Y) :- e(X, Y).\n"
    "t(X, Y) :- e(X, Z), e(Z, Y).\n";

// A recursive program on the same EDB, for the DRed side.
constexpr char kRecursiveProgram[] =
    "r(X, Y) :- e(X, Y).\n"
    "r(X, Y) :- e(X, Z), r(Z, Y).\n";

std::string Sym(const char* prefix, uint64_t n) {
  std::string out(prefix);
  out += std::to_string(n);
  return out;
}

using BaseSet = std::set<std::vector<std::string>>;

struct Delta {
  bool insert = false;
  std::vector<std::string> values;
};

// Derivation counts of `rel` keyed by spelled-out tuple, independent of
// row order and symbol-id assignment.
std::map<std::vector<std::string>, int64_t> CountMap(
    const storage::Database& db, const std::string& rel) {
  std::map<std::vector<std::string>, int64_t> out;
  const storage::Relation* r = db.Find(rel);
  if (r == nullptr) return out;
  size_t i = 0;
  for (storage::RowRef t : r->rows()) {
    std::vector<std::string> spelled;
    for (storage::ValueId id : t) spelled.push_back(db.symbols().Name(id));
    out[spelled] = r->CountAt(i);
    ++i;
  }
  return out;
}

// Applies `deltas` one at a time through a Maintainer over `program_text`,
// starting from `initial`. Returns the database; asserts every step.
struct MaintainedRun {
  storage::Database db;
  std::unique_ptr<eval::Maintainer> maintainer;
  BaseSet base;
};

void RunMaintained(const std::string& program_text, const BaseSet& initial,
                   const std::vector<Delta>& deltas, MaintainedRun* run) {
  Result<ast::Program> program = parser::ParseProgram(program_text);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_TRUE(run->db.GetOrCreate("e", 2).ok());
  for (const std::vector<std::string>& t : initial) {
    ASSERT_TRUE(run->db.AddRow("e", t).ok());
    run->base.insert(t);
  }
  eval::Evaluator ev(&run->db, eval::EvalOptions{});
  ASSERT_TRUE(ev.Evaluate(*program).ok());
  run->maintainer = std::make_unique<eval::Maintainer>(&run->db, *program);
  ASSERT_TRUE(run->maintainer->init_status().ok())
      << run->maintainer->init_status();
  for (const Delta& d : deltas) {
    std::vector<eval::FactDelta> ins;
    std::vector<eval::FactDelta> del;
    if (d.insert) {
      if (!run->base.insert(d.values).second) continue;
      ASSERT_TRUE(run->db.AddRow("e", d.values).ok());
      ins.push_back(eval::FactDelta{"e", d.values});
    } else {
      if (run->base.erase(d.values) == 0) continue;
      Result<bool> removed = run->db.RemoveRow("e", d.values);
      ASSERT_TRUE(removed.ok() && *removed);
      del.push_back(eval::FactDelta{"e", d.values});
    }
    Result<eval::MaintainStats> applied =
        run->maintainer->ApplyDelta(ins, del);
    ASSERT_TRUE(applied.ok()) << applied.status();
  }
}

// The from-scratch recount: fresh evaluation of `base`, then a fresh
// Maintainer forced to prime its counts by a net-zero insert/delete pair
// of a sentinel tuple (counts are primed lazily on first use).
void Recount(const std::string& program_text, const BaseSet& base,
             const std::string& derived,
             std::map<std::vector<std::string>, int64_t>* counts,
             std::string* snapshot) {
  MaintainedRun fresh;
  std::vector<Delta> prime = {{true, {"prime-a", "prime-b"}},
                              {false, {"prime-a", "prime-b"}}};
  ASSERT_NO_FATAL_FAILURE(
      RunMaintained(program_text, base, prime, &fresh));
  *counts = CountMap(fresh.db, derived);
  Result<std::string> snap = storage::SaveSnapshot(fresh.db);
  ASSERT_TRUE(snap.ok()) << snap.status();
  *snapshot = *snap;
}

std::vector<std::string> RandomEdge(Rng* rng, size_t domain) {
  return {Sym("n", rng->Uniform(domain)), Sym("n", rng->Uniform(domain))};
}

TEST(IvmProperty, CountsAreOrderIndependentAndMatchRecount) {
  Rng rng(20260807);
  for (int trial = 0; trial < 20; ++trial) {
    size_t domain = 3 + rng.Uniform(5);
    BaseSet initial;
    size_t seed_edges = 4 + rng.Uniform(10);
    for (size_t i = 0; i < seed_edges; ++i) {
      initial.insert(RandomEdge(&rng, domain));
    }
    std::vector<Delta> deltas;
    size_t num_deltas = 4 + rng.Uniform(10);
    for (size_t i = 0; i < num_deltas; ++i) {
      deltas.push_back(Delta{rng.Chance(0.5), RandomEdge(&rng, domain)});
    }
    // A second interleaving: the same deltas in reverse with a cancelling
    // insert/delete pair spliced in. (Reversal changes which applications
    // are no-ops, so the two runs may take entirely different paths; they
    // must still land on base sets built from the same spellings.)
    std::vector<Delta> reversed(deltas.rbegin(), deltas.rend());
    reversed.push_back(Delta{true, {"zz", "zz"}});
    reversed.push_back(Delta{false, {"zz", "zz"}});

    MaintainedRun a;
    ASSERT_NO_FATAL_FAILURE(
        RunMaintained(kCountingProgram, initial, deltas, &a));
    MaintainedRun b;
    ASSERT_NO_FATAL_FAILURE(
        RunMaintained(kCountingProgram, initial, reversed, &b));

    if (a.base == b.base) {
      EXPECT_EQ(CountMap(a.db, "t"), CountMap(b.db, "t"))
          << "trial " << trial
          << ": counts depend on the delta interleaving";
    }
    // Either way, each run must match its own from-scratch recount.
    for (MaintainedRun* run : {&a, &b}) {
      std::map<std::vector<std::string>, int64_t> recount;
      std::string expected_snapshot;
      ASSERT_NO_FATAL_FAILURE(Recount(kCountingProgram, run->base, "t",
                                      &recount, &expected_snapshot));
      EXPECT_EQ(CountMap(run->db, "t"), recount)
          << "trial " << trial
          << ": incremental counts diverged from a recount";
      Result<std::string> snap = storage::SaveSnapshot(run->db);
      ASSERT_TRUE(snap.ok());
      EXPECT_EQ(*snap, expected_snapshot)
          << "trial " << trial << ": snapshot bytes diverged";
    }
  }
}

TEST(IvmProperty, MaintainedStateSurvivesSnapshotRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    size_t domain = 3 + rng.Uniform(4);
    BaseSet initial;
    for (size_t i = 0; i < 6 + rng.Uniform(6); ++i) {
      initial.insert(RandomEdge(&rng, domain));
    }
    std::vector<Delta> first;
    for (size_t i = 0; i < 5; ++i) {
      first.push_back(Delta{rng.Chance(0.5), RandomEdge(&rng, domain)});
    }
    MaintainedRun before;
    ASSERT_NO_FATAL_FAILURE(
        RunMaintained(kRecursiveProgram, initial, first, &before));

    // Counts are in-memory only: the snapshot must load with counting
    // disabled everywhere, and its bytes must equal a from-scratch
    // evaluation of the same base facts.
    Result<std::string> saved = storage::SaveSnapshot(before.db);
    ASSERT_TRUE(saved.ok()) << saved.status();
    storage::Database reloaded;
    ASSERT_TRUE(storage::LoadSnapshot(&reloaded, *saved).ok());
    for (const std::string& name : reloaded.RelationNames()) {
      EXPECT_FALSE(reloaded.Find(name)->counts_enabled())
          << name << ": derivation counts leaked into the snapshot";
    }

    // Maintenance continues on the reloaded database (fresh maintainer,
    // counts re-prime lazily) and still tracks the from-scratch state.
    Result<ast::Program> program = parser::ParseProgram(kRecursiveProgram);
    ASSERT_TRUE(program.ok());
    eval::Maintainer maintainer(&reloaded, *program);
    ASSERT_TRUE(maintainer.init_status().ok());
    BaseSet base = before.base;
    for (size_t i = 0; i < 5; ++i) {
      Delta d{rng.Chance(0.5), RandomEdge(&rng, domain)};
      std::vector<eval::FactDelta> ins;
      std::vector<eval::FactDelta> del;
      if (d.insert) {
        if (!base.insert(d.values).second) continue;
        ASSERT_TRUE(reloaded.AddRow("e", d.values).ok());
        ins.push_back(eval::FactDelta{"e", d.values});
      } else {
        if (base.erase(d.values) == 0) continue;
        Result<bool> removed = reloaded.RemoveRow("e", d.values);
        ASSERT_TRUE(removed.ok() && *removed);
        del.push_back(eval::FactDelta{"e", d.values});
      }
      Result<eval::MaintainStats> applied = maintainer.ApplyDelta(ins, del);
      ASSERT_TRUE(applied.ok()) << applied.status();
    }
    std::map<std::vector<std::string>, int64_t> recount;
    std::string expected_snapshot;
    ASSERT_NO_FATAL_FAILURE(Recount(kRecursiveProgram, base, "r", &recount,
                                    &expected_snapshot));
    Result<std::string> final_snap = storage::SaveSnapshot(reloaded);
    ASSERT_TRUE(final_snap.ok());
    EXPECT_EQ(*final_snap, expected_snapshot)
        << "trial " << trial
        << ": maintained state diverged after a snapshot round trip";
  }
}

// The recovery shape the server uses: evaluate, checkpoint at completion,
// take more durable writes (including ineffective ones), crash-reopen,
// then maintain the WAL tail's net effect on top of the checkpointed
// fixpoint instead of re-deriving. The result must be byte-identical to a
// from-scratch evaluation of the final base facts.
TEST(IvmProperty, MaintainedRecoveryAcrossWalReplay) {
  std::string dir = FreshDir("ivm_wal_replay");
  std::string program_text = kCountingProgram;
  Result<ast::Program> program = parser::ParseProgram(program_text);
  ASSERT_TRUE(program.ok());
  BaseSet base;
  {
    Result<std::unique_ptr<storage::DataDir>> opened =
        storage::DataDir::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status();
    storage::DataDir* dd = opened->get();
    for (const char* edge : {"a b", "b c", "c d", "a c"}) {
      std::string from(edge, 1);
      std::string to(edge + 2, 1);
      ASSERT_TRUE(dd->AppendFact("e", {from, to}).ok());
      base.insert({from, to});
    }
    eval::Evaluator ev(dd->db(), eval::EvalOptions{});
    ASSERT_TRUE(ev.Evaluate(*program).ok());
    eval::Maintainer maintainer(dd->db(), *program);
    ASSERT_TRUE(maintainer.init_status().ok());
    eval::DataDirCheckpointer checkpointer(dd,
                                           eval::ProgramCrc(program_text));
    ASSERT_TRUE(
        checkpointer.Checkpoint(maintainer.num_strata(), 0, nullptr).ok());

    // Post-checkpoint WAL tail: one effective insert, one effective
    // retract, one ineffective insert (already present), one ineffective
    // retract (absent) — the replay must tell them apart.
    ASSERT_TRUE(dd->AppendFact("e", {"d", "e"}).ok());
    base.insert({"d", "e"});
    bool removed = false;
    ASSERT_TRUE(dd->RetractFact("e", {"a", "c"}, &removed).ok());
    ASSERT_TRUE(removed);
    base.erase({"a", "c"});
    ASSERT_TRUE(dd->AppendFact("e", {"a", "b"}).ok());  // Already present.
    ASSERT_TRUE(dd->RetractFact("e", {"x", "y"}, &removed).ok());
    ASSERT_FALSE(removed);  // Was never there.
  }

  Result<std::unique_ptr<storage::DataDir>> reopened =
      storage::DataDir::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  storage::DataDir* dd = reopened->get();
  const storage::RecoveredCheckpoint& snap = dd->checkpoint_at_snapshot();
  ASSERT_TRUE(snap.has_meta);
  ASSERT_TRUE(snap.has_program_crc);
  EXPECT_EQ(snap.program_crc, eval::ProgramCrc(program_text));
  EXPECT_EQ(snap.rounds, 0);
  ASSERT_EQ(dd->wal_tail().size(), 4u);
  EXPECT_TRUE(dd->wal_tail()[0].effective);   // +e(d, e)
  EXPECT_TRUE(dd->wal_tail()[1].effective);   // -e(a, c)
  EXPECT_FALSE(dd->wal_tail()[2].effective);  // +e(a, b): duplicate
  EXPECT_FALSE(dd->wal_tail()[3].effective);  // -e(x, y): absent

  eval::Maintainer maintainer(dd->db(), *program);
  ASSERT_TRUE(maintainer.init_status().ok());
  EXPECT_EQ(snap.stratum, maintainer.num_strata())
      << "checkpoint is not a completion checkpoint";
  std::vector<eval::FactDelta> inserts;
  std::vector<eval::FactDelta> deletes;
  for (const storage::DataDir::WalTailOp& op : dd->wal_tail()) {
    if (!op.effective) continue;
    (op.insert ? inserts : deletes)
        .push_back(eval::FactDelta{op.relation, op.values});
  }
  Result<eval::MaintainStats> applied =
      maintainer.ApplyDelta(inserts, deletes);
  ASSERT_TRUE(applied.ok()) << applied.status();

  std::map<std::vector<std::string>, int64_t> recount;
  std::string expected_snapshot;
  ASSERT_NO_FATAL_FAILURE(
      Recount(program_text, base, "t", &recount, &expected_snapshot));
  EXPECT_EQ(CountMap(*dd->db(), "t"), recount);
  Result<std::string> recovered_snap = storage::SaveSnapshot(*dd->db());
  ASSERT_TRUE(recovered_snap.ok());
  EXPECT_EQ(*recovered_snap, expected_snapshot)
      << "maintained recovery diverged from a from-scratch re-evaluation";
}

}  // namespace
}  // namespace dire
