// Cross-option property suite for the evaluator: naive vs semi-naive,
// greedy reordering on/off, and projection pushdown (which engages whenever
// a rule has dead variables) must all compute the same relations on random
// programs and databases.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/string_util.h"
#include "eval/evaluator.h"
#include "storage/generators.h"
#include "tests/test_util.h"

namespace dire::eval {
namespace {

using dire::testing::ParseOrDie;

// Random programs mixing dead existential variables, repeated variables and
// recursion.
ast::Program RandomProgram(uint64_t seed) {
  Rng rng(seed);
  const char* templates[] = {
      // Dead Z in the recursive rule (projection pushdown engages).
      R"(t(X, Y) :- f(X, Y).
         t(X, Y) :- g(X, W), t(Z, Y).)",
      // Classic closure.
      R"(t(X, Y) :- f(X, Y).
         t(X, Y) :- f(X, Z), t(Z, Y).)",
      // Two dead variables and a repeated one.
      R"(t(X, Y) :- f(X, Y), g(W, W).
         t(X, Y) :- g(X, Z), t(Z, Y), f(U, V).)",
      // Mutual recursion with an existential side lookup.
      R"(p(X) :- s(X).
         p(X) :- f(Y, X), q(Y).
         q(X) :- f(Y, X), p(Y), g(W, X).
         t(X, Y) :- f(X, Y), p(X).)",
  };
  return ParseOrDie(templates[rng.Uniform(4)]);
}

void FillRandom(storage::Database* db, uint64_t seed) {
  Rng rng(seed);
  for (const char* pred : {"f", "g"}) {
    for (int i = 0; i < 18; ++i) {
      if (!db->AddRow(pred,
                      {StrFormat("c%d", static_cast<int>(rng.Uniform(6))),
                       StrFormat("c%d", static_cast<int>(rng.Uniform(6)))})
               .ok()) {
        std::abort();
      }
    }
  }
  if (!db->AddRow("s", {"c0"}).ok()) std::abort();
}

class EvalOptionAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvalOptionAgreement, AllConfigurationsAgree) {
  ast::Program program = RandomProgram(GetParam());
  SCOPED_TRACE(program.ToString());

  std::vector<EvalOptions> configs;
  for (EvalOptions::Mode mode :
       {EvalOptions::Mode::kNaive, EvalOptions::Mode::kSemiNaive}) {
    for (bool reorder : {true, false}) {
      EvalOptions o;
      o.mode = mode;
      o.reorder_atoms = reorder;
      configs.push_back(o);
    }
  }

  std::string reference;
  for (size_t i = 0; i < configs.size(); ++i) {
    storage::Database db;
    FillRandom(&db, GetParam() * 11 + 3);
    Evaluator ev(&db, configs[i]);
    Result<EvalStats> stats = ev.Evaluate(program);
    ASSERT_TRUE(stats.ok()) << stats.status();
    std::string dump = db.DumpRelation("t");
    if (i == 0) {
      reference = dump;
    } else {
      EXPECT_EQ(dump, reference) << "config " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalOptionAgreement,
                         ::testing::Range<uint64_t>(0, 40));

// The projection-pushdown metadata itself: dead bindings are detected.
TEST(ProjectionPushdown, DeadBindingDetected) {
  storage::SymbolTable symbols;
  Result<ast::Rule> rule =
      parser::ParseRule("buys(X, Y) :- trendy(X), buys(Z, Y).");
  ASSERT_TRUE(rule.ok());
  Result<CompiledRule> plan = CompileRule(*rule, &symbols, {});
  ASSERT_TRUE(plan.ok());
  bool found_dead = false;
  for (const CompiledAtom& atom : plan->body) {
    if (atom.live_bind_positions.size() != atom.bind_positions.size()) {
      found_dead = true;
    }
  }
  EXPECT_TRUE(found_dead);
}

TEST(ProjectionPushdown, AllLiveWhenEveryVariableUsed) {
  storage::SymbolTable symbols;
  Result<ast::Rule> rule =
      parser::ParseRule("t(X, Y) :- e(X, Z), t(Z, Y).");
  ASSERT_TRUE(rule.ok());
  Result<CompiledRule> plan = CompileRule(*rule, &symbols, {});
  ASSERT_TRUE(plan.ok());
  for (const CompiledAtom& atom : plan->body) {
    EXPECT_EQ(atom.live_bind_positions.size(), atom.bind_positions.size());
  }
}

// Quantified effect: the viral-purchase join must scale with the number of
// distinct products, not |trendy| * |buys|. 400 people in well under a
// second even via the naive evaluator.
TEST(ProjectionPushdown, ViralJoinStaysPolite) {
  storage::Database db;
  Rng rng(12);
  ASSERT_TRUE(storage::MakeConsumerData(&db, 400, 80, 3, 0.2, &rng).ok());
  Evaluator ev(&db);
  Result<EvalStats> stats = ev.Evaluate(ParseOrDie(dire::testing::kBuys));
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(db.Find("buys")->size(), 1000u);
}

}  // namespace
}  // namespace dire::eval
