#include <gtest/gtest.h>

#include "core/equivalence.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

using dire::testing::ParseOrDie;

TEST(Equivalence, IdenticalProgramsAgree) {
  ast::Program p = ParseOrDie(dire::testing::kTransitiveClosure);
  Result<EquivalenceCheckResult> r =
      CheckEquivalenceOnRandomDatabases(p, p, "t");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->equivalent);
}

TEST(Equivalence, DetectsRealDifference) {
  ast::Program closure = ParseOrDie(dire::testing::kTransitiveClosure);
  ast::Program one_step = ParseOrDie("t(X, Y) :- e(X, Y).");
  Result<EquivalenceCheckResult> r =
      CheckEquivalenceOnRandomDatabases(closure, one_step, "t");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->equivalent);
  EXPECT_NE(r->counterexample.find("differs"), std::string::npos);
}

TEST(Equivalence, SyntacticallyDifferentButEqualPrograms) {
  // Right-linear vs left-linear transitive closure.
  ast::Program right = ParseOrDie(dire::testing::kTransitiveClosure);
  ast::Program left = ParseOrDie(R"(
    t(X, Y) :- t(X, Z), e(Z, Y).
    t(X, Y) :- e(X, Y).
  )");
  Result<EquivalenceCheckResult> r =
      CheckEquivalenceOnRandomDatabases(right, left, "t");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->equivalent) << r->counterexample;
}

TEST(Equivalence, MixedArityEdbRejected) {
  ast::Program a = ParseOrDie("t(X) :- e(X).");
  ast::Program b = ParseOrDie("t(X) :- e(X, X).");
  Result<EquivalenceCheckResult> r =
      CheckEquivalenceOnRandomDatabases(a, b, "t");
  EXPECT_FALSE(r.ok());
}

TEST(Equivalence, DeterministicAcrossRuns) {
  ast::Program closure = ParseOrDie(dire::testing::kTransitiveClosure);
  ast::Program one_step = ParseOrDie("t(X, Y) :- e(X, Y).");
  EquivalenceCheckOptions opts;
  opts.seed = 1234;
  Result<EquivalenceCheckResult> r1 =
      CheckEquivalenceOnRandomDatabases(closure, one_step, "t", opts);
  Result<EquivalenceCheckResult> r2 =
      CheckEquivalenceOnRandomDatabases(closure, one_step, "t", opts);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->counterexample, r2->counterexample);
}

}  // namespace
}  // namespace dire::core
