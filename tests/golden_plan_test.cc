// Golden-plan tests: the explain output for the paper's worked examples,
// compiled under both planner modes against a fixed EDB, is committed
// under tests/goldens/ and compared byte for byte. A plan change —
// different join order, different cardinality estimates, different
// formatting — shows up as a readable diff in review instead of a silent
// behavior shift.
//
// Regenerate after an intentional planner change with:
//   DIRE_UPDATE_GOLDENS=1 ./golden_plan_test
//
// The EDB fact sets are small (every column under ~40 distinct values) so
// the linear-counting sketches are exact and the printed estimates are
// stable integers or short decimals.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "dire.h"
#include "eval/explain.h"
#include "tests/test_util.h"

namespace dire {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(DIRE_TEST_SRCDIR) + "/goldens/" + name + ".txt";
}

// Deterministic fact block helpers (plain loops, no randomness: the
// goldens embed the actual cardinalities these imply).
std::string Chain(const std::string& pred, const std::string& stem, int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += pred + "(" + stem + std::to_string(i) + ", " + stem +
           std::to_string(i + 1) + ").\n";
  }
  return out;
}

std::string Pairs(const std::string& pred, const std::string& a,
                  const std::string& b, int n, int bmod) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += pred + "(" + a + std::to_string(i) + ", " + b +
           std::to_string(i % bmod) + ").\n";
  }
  return out;
}

void CheckGolden(const std::string& name, const std::string& program_text) {
  ast::Program program = dire::testing::ParseOrDie(program_text);
  storage::Database db;
  eval::Evaluator ev(&db);
  Result<eval::EvalStats> stats = ev.Evaluate(program);
  ASSERT_TRUE(stats.ok()) << stats.status();

  for (eval::PlannerMode mode :
       {eval::PlannerMode::kGreedy, eval::PlannerMode::kCost}) {
    const std::string mode_name =
        mode == eval::PlannerMode::kCost ? "cost" : "greedy";
    Result<std::string> text =
        eval::ExplainProgram(program, &db, mode, /*with_actuals=*/true);
    ASSERT_TRUE(text.ok()) << text.status();
    const std::string path = GoldenPath(name + "_" + mode_name);
    if (std::getenv("DIRE_UPDATE_GOLDENS") != nullptr) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << *text;
      continue;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " — regenerate with DIRE_UPDATE_GOLDENS=1";
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), *text)
        << name << " under the " << mode_name << " planner diverged from "
        << path << " — regenerate with DIRE_UPDATE_GOLDENS=1 if intended";
  }
}

// Example 1.1: transitive closure over a chain with a few shortcut edges.
TEST(GoldenPlan, TransitiveClosure) {
  std::string text(dire::testing::kTransitiveClosure);
  text += Chain("e", "n", 12);
  text += "e(n0, n5).\ne(n3, n9).\n";
  CheckGolden("transitive_closure", text);
}

// Example 1.2: trendy consumers — `trendy` is far smaller than `likes`,
// the classic case where driving from the small relation wins.
TEST(GoldenPlan, Buys) {
  std::string text(dire::testing::kBuys);
  text += Pairs("likes", "person", "item", 24, 6);
  text += "trendy(person1).\ntrendy(person3).\n";
  CheckGolden("buys", text);
}

// Example 4.2 second rule: a two-segment chain generating path, with
// deliberately skewed segment sizes.
TEST(GoldenPlan, TwoSegment) {
  std::string text(dire::testing::kTwoSegment);
  text += Pairs("p", "a", "w", 18, 3);
  text += Pairs("q", "w", "z", 3, 3);
  text += Chain("e", "z", 4);
  CheckGolden("two_segment", text);
}

// Example 3.3: ternary recursion joined with an unconnected pair relation.
TEST(GoldenPlan, Example33) {
  std::string text(dire::testing::kExample33);
  std::string facts;
  for (int i = 0; i < 8; ++i) {
    facts += "e(u" + std::to_string(i) + ", u" + std::to_string(i) + ", u" +
             std::to_string((i + 1) % 8) + ").\n";
  }
  text += facts;
  text += Pairs("p", "y", "z", 4, 2);
  CheckGolden("example33", text);
}

// Example 6.1: the unconnected `b` predicate the paper's §6 hoist targets
// — tiny, so the cost planner pulls it forward.
TEST(GoldenPlan, Example61) {
  std::string text(dire::testing::kExample61);
  text += Chain("e", "v", 10);
  text += "b(w0, y0).\nb(w1, y0).\n";
  text += "t0(v0, y0).\nt0(v4, y0).\n";
  CheckGolden("example61", text);
}

}  // namespace
}  // namespace dire
