// Power comparison against the prior tests discussed in the paper's
// introduction: Minker–Nicolas (sufficient syntactic class) and Ioannidis
// (alpha-graph). The paper's pitch is that the A/V-graph analysis subsumes
// both; these tests check exactly that on their classes.

#include <gtest/gtest.h>

#include "core/related_work.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

using dire::testing::AnalyzeOrDie;
using dire::testing::DefOrDie;

MinkerNicolasResult Mn(std::string_view program) {
  Result<MinkerNicolasResult> r =
      TestMinkerNicolas(DefOrDie(program, "t"));
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.status().ToString());
  return r.ok() ? *r : MinkerNicolasResult{};
}

IoannidisResult Io(std::string_view program) {
  Result<IoannidisResult> r = TestIoannidis(DefOrDie(program, "t"));
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.status().ToString());
  return r.ok() ? *r : IoannidisResult{};
}

// Transitive closure: Z is shared between e and the recursive atom, so the
// rule is outside the Minker–Nicolas class — they cannot classify it.
TEST(MinkerNicolas, TransitiveClosureOutsideClass) {
  MinkerNicolasResult r = Mn(dire::testing::kTransitiveClosure);
  EXPECT_FALSE(r.in_class);
  EXPECT_NE(r.reason.find("shared"), std::string::npos);
}

// The buys rule (Example 1.2) is in their class: Z appears only in the
// recursive atom, and the recursive atom's distinguished variables are
// unpermuted.
TEST(MinkerNicolas, BuysInClass) {
  ast::RecursiveDefinition def = DefOrDie(dire::testing::kBuys, "buys");
  Result<MinkerNicolasResult> r = TestMinkerNicolas(def);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->in_class) << r->reason;
  EXPECT_TRUE(r->independent);
}

TEST(MinkerNicolas, PermutationWithNondistExcluded) {
  // The recursive atom moves Y into position 1 while carrying the
  // nondistinguished W (U stays private to p, so the sharing rule passes).
  MinkerNicolasResult r = Mn(R"(
    t(X, Y) :- p(U), t(Y, W).
    t(X, Y) :- e(X, Y).
  )");
  EXPECT_FALSE(r.in_class);
  EXPECT_NE(r.reason.find("permuted"), std::string::npos) << r.reason;
}

TEST(MinkerNicolas, PermutationWithoutNondistAllowed) {
  // Example 4.5-like swap, but the recursive atom has no nondistinguished
  // variable, which their class allows.
  MinkerNicolasResult r = Mn(R"(
    t(X, Y) :- p(W, W), t(Y, X).
    t(X, Y) :- e(X, Y).
  )");
  EXPECT_TRUE(r.in_class) << r.reason;
}

// The paper's generality claim: whenever Minker–Nicolas proves a rule
// independent, the chain test must too.
TEST(MinkerNicolas, SubsumedByChainTest) {
  const char* rules[] = {
      R"(t(X, Y) :- p(W), t(Y, X). t(X, Y) :- e(X, Y).)",
      R"(t(X, Y) :- trendy(X), t(Z, Y). t(X, Y) :- e(X, Y).)",
      R"(t(X, Y, Z) :- a(U), b(V), t(X, Y, Z). t(X, Y, Z) :- e(X, Y, Z).)",
      R"(t(X) :- p(W, W), t(V). t(X) :- e(X).)",
  };
  for (const char* text : rules) {
    ast::RecursiveDefinition def = DefOrDie(text, "t");
    Result<MinkerNicolasResult> mn = TestMinkerNicolas(def);
    ASSERT_TRUE(mn.ok());
    if (!mn->in_class) continue;
    core::RecursionAnalysis a = AnalyzeOrDie(text, "t");
    EXPECT_EQ(a.strong.verdict, Verdict::kIndependent)
        << text << "\nMN says independent, chain test disagrees";
  }
}

// Ioannidis's class excludes any rule where a recursive-atom position keeps
// its head variable (the trivial permutation) — TC is out.
TEST(Ioannidis, TransitiveClosureOutsideClass) {
  IoannidisResult r = Io(dire::testing::kTransitiveClosure);
  EXPECT_FALSE(r.in_class);  // Position 2 keeps Y.
}

TEST(Ioannidis, FullShiftInClass) {
  // Every position moves: t(X,Y) :- p(X,W), q(W,Z), t(Z,W2)? Use the
  // two-segment rule but break the Y fixpoint.
  IoannidisResult r = Io(R"(
    t(X, Y) :- p(X, W), q(Y, Z), t(Z, W).
    t(X, Y) :- e(X, Y).
  )");
  EXPECT_TRUE(r.in_class) << r.reason;
}

TEST(Ioannidis, SwapIsAPermutationSubset) {
  // {1,2} of t(Y,X) is a permutation of {X,Y}: outside the class.
  IoannidisResult r = Io(R"(
    t(X, Y) :- p(W), t(Y, X).
    t(X, Y) :- e(X, Y).
  )");
  EXPECT_FALSE(r.in_class);
}

// On his class the alpha-graph verdict must agree with the A/V-graph chain
// test (the paper reuses his Algorithm 6.1 as phase 2).
TEST(Ioannidis, AgreesWithChainTestOnItsClass) {
  const char* rules[] = {
      // Chained shift: dependent.
      R"(t(X, Y) :- p(X, W), q(Y, Z), t(Z, W). t(X, Y) :- e(X, Y).)",
      // TC-like chaining on both arguments: dependent.
      R"(t(X, Y) :- p(X, U), q(Y, V), t(U, V). t(X, Y) :- e(X, Y).)",
      // Unary side predicates, no co-occurrence to chain through:
      // independent.
      R"(t(X, Y) :- p(X), q(Y), t(U, V), b(U), c(V). t(X, Y) :- e(X, Y).)",
  };
  for (const char* text : rules) {
    IoannidisResult io = Io(text);
    if (!io.in_class) continue;
    core::RecursionAnalysis a = AnalyzeOrDie(text, "t");
    EXPECT_EQ(io.alpha_graph_independent,
              !a.chains.has_chain_generating_path)
        << text;
  }
}

TEST(Ioannidis, AlphaGraphLosesInformationOutsideClass) {
  // On rules outside his class the alpha verdict is advisory; the result
  // object must say so.
  IoannidisResult r = Io(dire::testing::kTransitiveClosure);
  EXPECT_NE(r.reason.find("advisory"), std::string::npos);
}

TEST(RelatedWork, MultiRuleDefinitionsRejected) {
  ast::RecursiveDefinition def = DefOrDie(dire::testing::kExample51, "t");
  EXPECT_FALSE(TestMinkerNicolas(def).ok());
  EXPECT_FALSE(TestIoannidis(def).ok());
}

}  // namespace
}  // namespace dire::core
