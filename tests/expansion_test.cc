#include <gtest/gtest.h>

#include "core/expansion.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

using dire::testing::DefOrDie;

std::vector<std::string> Strings(std::string_view program,
                                 const std::string& target, int levels) {
  ast::RecursiveDefinition def = DefOrDie(program, target);
  Result<std::vector<ExpansionString>> r = ExpandToDepth(def, levels);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.status().ToString());
  std::vector<std::string> out;
  for (const ExpansionString& s : *r) out.push_back(s.ToString());
  return out;
}

// Paper Example 2.1: the first four strings of the transitive closure
// expansion.
TEST(Expansion, TransitiveClosureMatchesPaper) {
  std::vector<std::string> s =
      Strings(dire::testing::kTransitiveClosure, "t", 4);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], "e(X,Y)");
  EXPECT_EQ(s[1], "e(X,Z_0)e(Z_0,Y)");
  EXPECT_EQ(s[2], "e(X,Z_0)e(Z_0,Z_1)e(Z_1,Y)");
  EXPECT_EQ(s[3], "e(X,Z_0)e(Z_0,Z_1)e(Z_1,Z_2)e(Z_2,Y)");
}

// Paper Example 3.3: note the reversed growth (new atoms prepend) and the
// W-subscript pattern.
TEST(Expansion, Example33MatchesPaper) {
  std::vector<std::string> s = Strings(dire::testing::kExample33, "t", 4);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], "e(X,Y,Z)");
  EXPECT_EQ(s[1], "e(W_0,W_0,X)p(Y,Z)");
  EXPECT_EQ(s[2], "e(W_1,W_1,W_0)p(W_0,X)p(Y,Z)");
  EXPECT_EQ(s[3], "e(W_2,W_2,W_1)p(W_1,W_0)p(W_0,X)p(Y,Z)");
}

// Paper Example 6.1 strings.
TEST(Expansion, Example61MatchesPaper) {
  std::vector<std::string> s = Strings(dire::testing::kExample61, "t", 3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], "t0(X,Y)");
  EXPECT_EQ(s[1], "e(X,Z_0)b(W_0,Y)t0(Z_0,Y)");
  EXPECT_EQ(s[2], "e(X,Z_0)b(W_0,Y)e(Z_0,Z_1)b(W_1,Y)t0(Z_1,Y)");
}

// Paper Example 4.7 (exit e(U,U)): the expansion prefix from the paper.
TEST(Expansion, Example47MatchesPaper) {
  std::string text = std::string(dire::testing::kExample47RecRule) + "\n" +
                     std::string(dire::testing::kExample47ExitC);
  std::vector<std::string> s = Strings(text, "t", 3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], "e(U,U)");
  EXPECT_EQ(s[1], "e(M_0,M_0)e(M_0,Y)");
  EXPECT_EQ(s[2], "e(M_1,M_1)e(M_1,M_0)e(M_0,Y)");
}

TEST(Expansion, DepthAndRuleSequenceMetadata) {
  ast::RecursiveDefinition def =
      DefOrDie(dire::testing::kTransitiveClosure, "t");
  Result<std::vector<ExpansionString>> r = ExpandToDepth(def, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[2].depth, 2);
  EXPECT_EQ((*r)[2].rule_sequence, (std::vector<int>{0, 0}));
  EXPECT_EQ((*r)[2].exit_rule, 0);
}

// Multi-rule expansion: level k holds |R|^k strings per exit rule.
TEST(Expansion, MultiRuleLevelGrowth) {
  ast::RecursiveDefinition def = DefOrDie(dire::testing::kExample51, "t");
  Result<ExpansionEnumerator> e = ExpansionEnumerator::Create(def);
  ASSERT_TRUE(e.ok()) << e.status();
  Result<std::vector<ExpansionString>> l0 = e->NextLevel();
  ASSERT_TRUE(l0.ok());
  EXPECT_EQ(l0->size(), 1u);
  Result<std::vector<ExpansionString>> l1 = e->NextLevel();
  ASSERT_TRUE(l1.ok());
  EXPECT_EQ(l1->size(), 2u);
  Result<std::vector<ExpansionString>> l2 = e->NextLevel();
  ASSERT_TRUE(l2.ok());
  EXPECT_EQ(l2->size(), 4u);
  EXPECT_EQ(e->num_partials(), 8u);
}

// Paper Example 5.1: the string for rule sequence r1, r2, r1 then exit.
TEST(Expansion, Example51SequenceString) {
  ast::RecursiveDefinition def = DefOrDie(dire::testing::kExample51, "t");
  Result<std::vector<ExpansionString>> r = ExpandToDepth(def, 4);
  ASSERT_TRUE(r.ok());
  std::string want_sequence;
  for (const ExpansionString& s : *r) {
    if (s.rule_sequence == std::vector<int>{0, 1, 0}) {
      want_sequence = s.ToString();
    }
  }
  // Paper: e(X,U2) p1(U2,V1) p2(V1,U0) p1(U0,Z); our subscripting writes
  // U_2 etc. and keeps the textual atom order of CurString.
  EXPECT_EQ(want_sequence, "e(X,U_2)p1(U_2,V_1)p2(V_1,U_0)p1(U_0,Z)");
}

TEST(Expansion, CapOnPartialStrings) {
  ast::RecursiveDefinition def = DefOrDie(dire::testing::kExample51, "t");
  ExpansionEnumerator::Options opts;
  opts.max_partial_strings = 4;
  Result<ExpansionEnumerator> e = ExpansionEnumerator::Create(def, opts);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e->NextLevel().ok());  // 1 -> 2 partials.
  ASSERT_TRUE(e->NextLevel().ok());  // 2 -> 4 partials.
  Result<std::vector<ExpansionString>> l = e->NextLevel();  // 4 -> 8: too many.
  ASSERT_FALSE(l.ok());
  EXPECT_EQ(l.status().code(), StatusCode::kInconclusive);
}

TEST(Expansion, CurrentRecursiveAtomCyclesForExample47) {
  // Theorem 4.3's proof observes that the t instances in CurString become
  // isomorphic with some period. For the Example 4.7 rule the instance is
  // t(X, M_i, M_i, Y)-shaped from iteration 1 on.
  std::string text = std::string(dire::testing::kExample47RecRule) + "\n" +
                     std::string(dire::testing::kExample47ExitC);
  ast::RecursiveDefinition def = DefOrDie(text, "t");
  Result<ExpansionEnumerator> e = ExpansionEnumerator::Create(def);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e->NextLevel().ok());
  Result<ast::Atom> a1 = e->CurrentRecursiveAtom();
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->ToString(), "t(X,M_0,M_0,Y)");
  ASSERT_TRUE(e->NextLevel().ok());
  Result<ast::Atom> a2 = e->CurrentRecursiveAtom();
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->ToString(), "t(X,M_1,M_1,M_0)");
}

TEST(RuleGoalTree, SingleRuleIsAChain) {
  ast::RecursiveDefinition def =
      DefOrDie(dire::testing::kTransitiveClosure, "t");
  Result<std::string> tree = RenderRuleGoalTree(def, 2);
  ASSERT_TRUE(tree.ok()) << tree.status();
  // Root, then one child per level.
  EXPECT_NE(tree->find("t(X,Y)\n"), std::string::npos) << *tree;
  EXPECT_NE(tree->find("`- [r1] e(X,Z_0) t(Z_0,Y)"), std::string::npos)
      << *tree;
  EXPECT_NE(tree->find("   `- [r1] e(X,Z_0) e(Z_0,Z_1) t(Z_1,Y)"),
            std::string::npos)
      << *tree;
}

TEST(RuleGoalTree, MultiRuleBranches) {
  ast::RecursiveDefinition def = DefOrDie(dire::testing::kExample51, "t");
  Result<std::string> tree = RenderRuleGoalTree(def, 2);
  ASSERT_TRUE(tree.ok()) << tree.status();
  // Fig 13: both rules branch at each level: 1 + 2 + 4 nodes.
  size_t r1 = 0;
  size_t r2 = 0;
  for (size_t pos = tree->find("[r1]"); pos != std::string::npos;
       pos = tree->find("[r1]", pos + 1)) {
    ++r1;
  }
  for (size_t pos = tree->find("[r2]"); pos != std::string::npos;
       pos = tree->find("[r2]", pos + 1)) {
    ++r2;
  }
  EXPECT_EQ(r1, 3u);
  EXPECT_EQ(r2, 3u);
  EXPECT_NE(tree->find("t(X,U_0,Z) p1(U_0,Z)"), std::string::npos) << *tree;
}

TEST(Expansion, PartialStringsKeyedBySequence) {
  ast::RecursiveDefinition def = DefOrDie(dire::testing::kExample51, "t");
  Result<ExpansionEnumerator> e = ExpansionEnumerator::Create(def);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e->NextLevel().ok());
  ASSERT_TRUE(e->NextLevel().ok());
  auto partials = e->PartialStrings();
  ASSERT_EQ(partials.size(), 4u);
  std::set<std::vector<int>> keys;
  for (const auto& [seq, text] : partials) {
    EXPECT_EQ(seq.size(), 2u);
    keys.insert(seq);
    EXPECT_NE(text.find("t("), std::string::npos);
  }
  EXPECT_EQ(keys.size(), 4u);
}

TEST(Expansion, RequiresLinearRules) {
  ast::RecursiveDefinition def = DefOrDie(R"(
    t(X) :- t(X), t(X), e(X).
    t(X) :- e(X).
  )", "t");
  EXPECT_FALSE(ExpansionEnumerator::Create(def).ok());
}

TEST(Expansion, RequiresExitRule) {
  ast::RecursiveDefinition def = DefOrDie("t(X) :- e(X,Z), t(Z).", "t");
  EXPECT_FALSE(ExpansionEnumerator::Create(def).ok());
}

}  // namespace
}  // namespace dire::core
