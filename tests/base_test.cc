#include <gtest/gtest.h>

#include <set>

#include "base/hash.h"
#include "base/result.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/string_util.h"

namespace dire {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(Status, EveryCodeHasAName) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kParseError, StatusCode::kInvalidArgument,
        StatusCode::kInconclusive, StatusCode::kInternal,
        StatusCode::kNotFound}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Doubler(Result<int> in) {
  DIRE_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  Result<int> err = Doubler(Status::Internal("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().message(), "boom");
}

TEST(StringUtil, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "", "bc"};
  EXPECT_EQ(Join(parts, ","), "a,,bc");
  EXPECT_EQ(Split("a,,bc", ','), parts);
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("theorem", "theo"));
  EXPECT_FALSE(StartsWith("t", "theo"));
  EXPECT_TRUE(EndsWith("theorem", "rem"));
  EXPECT_FALSE(EndsWith("m", "rem"));
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(Rng, DeterministicBySeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Hash, VectorHashDependsOnOrderAndContent) {
  std::vector<uint32_t> a = {1, 2, 3};
  std::vector<uint32_t> b = {3, 2, 1};
  std::vector<uint32_t> c = {1, 2, 3};
  EXPECT_EQ(HashVector(a), HashVector(c));
  EXPECT_NE(HashVector(a), HashVector(b));
}

TEST(Hash, SeedChangesHash) {
  std::vector<uint32_t> a = {1, 2, 3};
  EXPECT_NE(HashVector(a, 0), HashVector(a, 1));
}

TEST(Hash, EmptyVectorsHashBySize) {
  std::vector<uint32_t> a;
  std::vector<uint32_t> b = {0};
  EXPECT_NE(HashVector(a), HashVector(b));
}

}  // namespace
}  // namespace dire
