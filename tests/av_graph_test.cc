#include <gtest/gtest.h>

#include "core/av_graph.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

using dire::testing::DefOrDie;

AvGraph Build(std::string_view program, const std::string& target) {
  ast::RecursiveDefinition def = DefOrDie(program, target);
  Result<AvGraph> g = AvGraph::Build(def);
  EXPECT_TRUE(g.ok()) << (g.ok() ? "" : g.status().ToString());
  if (!g.ok()) std::abort();
  return std::move(g).value();
}

// Figure 2: the A/V graph of the transitive closure rules.
TEST(AvGraph, Figure2Structure) {
  AvGraph g = Build(dire::testing::kTransitiveClosure, "t");
  // Variables X, Y, Z + argument nodes e1 e2 t1 t2 (recursive rule) and
  // e'1 e'2 (exit rule).
  int vars = 0;
  int args = 0;
  for (const AvGraph::Node& n : g.nodes()) {
    (n.kind == AvGraph::NodeKind::kVariable ? vars : args)++;
  }
  EXPECT_EQ(vars, 3);
  EXPECT_EQ(args, 6);
  // Identity edges: one per argument node. Unification: one per recursive
  // atom position. Predicate: adjacent positions of e and e'.
  int identity = 0;
  int unification = 0;
  int predicate = 0;
  for (const AvGraph::Edge& e : g.edges()) {
    switch (e.kind) {
      case AvGraph::EdgeKind::kIdentity:
        ++identity;
        break;
      case AvGraph::EdgeKind::kUnification:
        ++unification;
        break;
      case AvGraph::EdgeKind::kPredicate:
        ++predicate;
        break;
    }
  }
  EXPECT_EQ(identity, 6);
  EXPECT_EQ(unification, 2);
  EXPECT_EQ(predicate, 2);
}

// Structural invariants from §3 of the paper.
TEST(AvGraph, Section3Properties) {
  for (std::string_view program :
       {dire::testing::kTransitiveClosure, dire::testing::kExample33,
        dire::testing::kExample43, dire::testing::kExample45,
        dire::testing::kExample51}) {
    AvGraph g = Build(program, "t");
    for (size_t i = 0; i < g.nodes().size(); ++i) {
      const AvGraph::Node& n = g.nodes()[i];
      if (n.kind != AvGraph::NodeKind::kArgument) continue;
      int identity = 0;
      int unification = 0;
      for (const AvGraph::Edge& e : g.edges()) {
        if (e.from != static_cast<int>(i)) continue;
        if (e.kind == AvGraph::EdgeKind::kIdentity) ++identity;
        if (e.kind == AvGraph::EdgeKind::kUnification) ++unification;
      }
      // Property 3: each argument node has exactly one incident identity
      // edge; recursive-atom positions also source exactly one unification
      // edge.
      EXPECT_EQ(identity, 1) << n.label;
      EXPECT_EQ(unification, n.recursive_atom ? 1 : 0) << n.label;
    }
  }
}

TEST(AvGraph, EveryEdgeTouchesArgumentNode) {
  AvGraph g = Build(dire::testing::kExample43, "t");
  for (const AvGraph::Edge& e : g.edges()) {
    // Property 1: edges join an argument node and a variable node, except
    // predicate edges which join two argument nodes.
    const AvGraph::Node& from = g.nodes()[static_cast<size_t>(e.from)];
    const AvGraph::Node& to = g.nodes()[static_cast<size_t>(e.to)];
    EXPECT_EQ(from.kind, AvGraph::NodeKind::kArgument);
    if (e.kind == AvGraph::EdgeKind::kPredicate) {
      EXPECT_EQ(to.kind, AvGraph::NodeKind::kArgument);
    } else {
      EXPECT_EQ(to.kind, AvGraph::NodeKind::kVariable);
    }
  }
}

TEST(AvGraph, LabelsDisambiguateOccurrences) {
  AvGraph g = Build(dire::testing::kTransitiveClosure, "t");
  std::set<std::string> labels;
  for (const AvGraph::Node& n : g.nodes()) labels.insert(n.label);
  // The exit-rule occurrence of e is primed, paper-style.
  EXPECT_TRUE(labels.count("e^1") == 1) << "have e^1";
  EXPECT_TRUE(labels.count("e'^1") == 1) << "have e'^1";
  EXPECT_EQ(labels.size(), g.nodes().size());  // All distinct.
}

TEST(AvGraph, NodeLookups) {
  AvGraph g = Build(dire::testing::kTransitiveClosure, "t");
  EXPECT_GE(g.VariableNode("X"), 0);
  EXPECT_GE(g.VariableNode("Z"), 0);
  EXPECT_EQ(g.VariableNode("Q"), -1);
  EXPECT_GE(g.ArgumentNode(0, 0, 1), 0);
  EXPECT_EQ(g.ArgumentNode(5, 0, 0), -1);
}

TEST(AvGraph, UnificationEdgeWeightsByDirection) {
  AvGraph g = Build(dire::testing::kTransitiveClosure, "t");
  // Find the recursive atom's position-1 node (t^1, holding Z) and check the
  // traversal weights of its unification edge (to X).
  int t1 = -1;
  for (size_t i = 0; i < g.nodes().size(); ++i) {
    const AvGraph::Node& n = g.nodes()[i];
    if (n.recursive_atom && n.position == 0) t1 = static_cast<int>(i);
  }
  ASSERT_GE(t1, 0);
  bool found_forward = false;
  for (const AvGraph::Step& s : g.Adjacent(t1, /*augmented=*/false)) {
    if (g.edges()[static_cast<size_t>(s.edge)].kind ==
        AvGraph::EdgeKind::kUnification) {
      EXPECT_EQ(s.weight, 1);
      found_forward = true;
      // And the reverse traversal from the variable side weighs -1.
      for (const AvGraph::Step& back : g.Adjacent(s.neighbor, false)) {
        if (back.edge == s.edge) {
          EXPECT_EQ(back.weight, -1);
        }
      }
    }
  }
  EXPECT_TRUE(found_forward);
}

TEST(AvGraph, AugmentedAdjacencyIncludesPredicateEdges) {
  AvGraph g = Build(dire::testing::kTransitiveClosure, "t");
  int e1 = g.ArgumentNode(0, 0, 0);
  ASSERT_GE(e1, 0);
  size_t core = g.Adjacent(e1, /*augmented=*/false).size();
  size_t aug = g.Adjacent(e1, /*augmented=*/true).size();
  EXPECT_EQ(core + 1, aug);  // Exactly the predicate edge to e^2.
}

TEST(AvGraph, RejectsConstantsInBody) {
  ast::RecursiveDefinition def = DefOrDie(R"(
    t(X) :- e(X, a), t(X).
    t(X) :- e(X, X).
  )", "t");
  EXPECT_FALSE(AvGraph::Build(def).ok());
}

TEST(AvGraph, DotExportMentionsAllNodes) {
  AvGraph g = Build(dire::testing::kTransitiveClosure, "t");
  std::string dot = g.ToDot();
  for (const AvGraph::Node& n : g.nodes()) {
    EXPECT_NE(dot.find(n.label), std::string::npos) << n.label;
  }
  EXPECT_NE(dot.find("graph av_graph"), std::string::npos);
}

}  // namespace
}  // namespace dire::core
