// Robustness fuzzing for the lexer/parser: random byte soup and random
// token soup must never crash — only parse or return a positioned error —
// and everything that parses must round-trip through ToString().
//
// Fuzz programs that do parse are additionally pushed through the evaluator
// under an injected storage failure and a small resource guard: every
// outcome must be a clean Status, never a crash or a corrupted database.

#include <gtest/gtest.h>

#include <string>

#include "base/failpoints.h"
#include "base/guard.h"
#include "base/rng.h"
#include "eval/evaluator.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "storage/database.h"

namespace dire::parser {
namespace {

std::string RandomBytes(uint64_t seed, size_t length) {
  Rng rng(seed);
  const char alphabet[] =
      "abcXYZ012(),.:-_ \t\n\"%#?!@$[]{}<>=+*/\\'";
  std::string out;
  for (size_t i = 0; i < length; ++i) {
    out += alphabet[rng.Uniform(sizeof(alphabet) - 1)];
  }
  return out;
}

std::string RandomTokenSoup(uint64_t seed, size_t length) {
  Rng rng(seed);
  const char* tokens[] = {"t",  "e",  "X",   "Y",  "Z",  "(", ")", ",",
                          ".",  ":-", "not", "42", "\"s\"", "p", "q",
                          "_W", "%c\n"};
  std::string out;
  for (size_t i = 0; i < length; ++i) {
    out += tokens[rng.Uniform(sizeof(tokens) / sizeof(tokens[0]))];
    out += ' ';
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  for (size_t length : {5, 40, 200}) {
    std::string input = RandomBytes(GetParam() * 97 + length, length);
    Result<ast::Program> p = ParseProgram(input);
    if (p.ok()) {
      // Whatever parsed must re-parse from its own rendering.
      Result<ast::Program> again = ParseProgram(p->ToString());
      EXPECT_TRUE(again.ok()) << p->ToString();
    } else {
      EXPECT_FALSE(p.status().message().empty());
    }
  }
}

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
  for (size_t length : {3, 15, 60}) {
    std::string input = RandomTokenSoup(GetParam() * 131 + length, length);
    Result<ast::Program> p = ParseProgram(input);
    if (p.ok()) {
      Result<ast::Program> again = ParseProgram(p->ToString());
      ASSERT_TRUE(again.ok()) << input << "\n->\n" << p->ToString();
      EXPECT_EQ(p->ToString(), again->ToString());
    }
  }
}

// Any program the parser accepts must evaluate to either an OK result or a
// clean error — even when every few relation inserts fail (fault injection)
// and a tight resource guard is armed. The database must stay usable.
TEST_P(ParserFuzz, ParsedProgramsSurviveFaultyEvaluation) {
  for (size_t length : {15, 60}) {
    std::string input = RandomTokenSoup(GetParam() * 131 + length, length);
    Result<ast::Program> p = ParseProgram(input);
    if (!p.ok()) continue;

    failpoints::Config insert_failure;
    insert_failure.skip = 3;
    insert_failure.fire_count = 1;
    failpoints::Scoped fp("storage.relation_insert", insert_failure);
    GuardLimits limits;
    limits.timeout_ms = 2000;
    limits.max_tuples = 500;
    ExecutionGuard guard(limits);
    eval::EvalOptions options;
    options.guard = &guard;

    storage::Database db;
    eval::Evaluator ev(&db, options);
    Result<eval::EvalStats> r = ev.Evaluate(*p);
    if (r.ok()) {
      EXPECT_GE(r->iterations, 0);
    } else {
      EXPECT_FALSE(r.status().message().empty());
    }
    // Whatever happened, the database is still coherent enough to walk.
    for (const std::string& name : db.RelationNames()) {
      const storage::Relation* rel = db.Find(name);
      ASSERT_NE(rel, nullptr);
      for (storage::RowRef t : rel->rows()) {
        EXPECT_EQ(t.size(), rel->arity());
      }
    }
  }
}

TEST_P(ParserFuzz, LexerHandlesArbitraryInput) {
  std::string input = RandomBytes(GetParam() * 7 + 1, 300);
  Result<std::vector<Token>> tokens = Tokenize(input);
  if (tokens.ok()) {
    EXPECT_FALSE(tokens->empty());
    EXPECT_EQ(tokens->back().kind, TokenKind::kEof);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace dire::parser
