#include <gtest/gtest.h>

#include "core/equivalence.h"
#include "core/optimize.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

using dire::testing::DefOrDie;
using dire::testing::ParseOrDie;

HoistResult Hoist(std::string_view program, const std::string& target) {
  ast::RecursiveDefinition def = DefOrDie(program, target);
  Result<HoistResult> h = HoistUnconnectedPredicates(def);
  EXPECT_TRUE(h.ok()) << (h.ok() ? "" : h.status().ToString());
  if (!h.ok()) std::abort();
  return std::move(h).value();
}

TEST(Hoist, Example61MovesB) {
  HoistResult h = Hoist(dire::testing::kExample61, "t");
  ASSERT_TRUE(h.changed) << h.note;
  ASSERT_EQ(h.hoisted.size(), 1u);
  EXPECT_EQ(h.hoisted[0].ToString(), "b(W,Y)");
  // Shape: 2 exit-derived t rules? No: 1 exit rule -> 1 t exit rule,
  // 1 bridge rule, 1 aux recursion, 1 aux exit = 4 rules.
  EXPECT_EQ(h.program.rules.size(), 4u);
  // The auxiliary recursion must not mention b.
  for (const ast::Rule& r : h.program.rules) {
    if (r.head.predicate == h.aux_predicate && r.BodyUses(h.aux_predicate)) {
      EXPECT_FALSE(r.BodyUses("b")) << r.ToString();
    }
  }
}

TEST(Hoist, Example61EquivalentByEvaluation) {
  HoistResult h = Hoist(dire::testing::kExample61, "t");
  ASSERT_TRUE(h.changed);
  EquivalenceCheckOptions opts;
  opts.trials = 12;
  opts.seed = 99;  // Different stream from the built-in verification.
  Result<EquivalenceCheckResult> eq = CheckEquivalenceOnRandomDatabases(
      ParseOrDie(dire::testing::kExample61), h.program, "t", opts);
  ASSERT_TRUE(eq.ok()) << eq.status();
  EXPECT_TRUE(eq->equivalent) << eq->counterexample;
}

TEST(Hoist, TransitiveClosureHasNothingToHoist) {
  HoistResult h = Hoist(dire::testing::kTransitiveClosure, "t");
  EXPECT_FALSE(h.changed);
  EXPECT_NE(h.note.find("connected"), std::string::npos) << h.note;
}

TEST(Hoist, IndependentDefinitionSkipsHoisting) {
  HoistResult h = Hoist(dire::testing::kBuys, "buys");
  EXPECT_FALSE(h.changed);
  EXPECT_NE(h.note.find("BoundedRewrite"), std::string::npos) << h.note;
}

TEST(Hoist, StableDistinguishedVariableAtom) {
  // b(Y) rides the stable head variable Y (weight-1 cycle), exactly like
  // Example 6.1's b(W,Y) without the private W.
  const char* program = R"(
    t(X, Y) :- e(X, Z), b(Y), t(Z, Y).
    t(X, Y) :- t0(X, Y).
  )";
  HoistResult h = Hoist(program, "t");
  ASSERT_TRUE(h.changed) << h.note;
  EXPECT_EQ(h.hoisted[0].ToString(), "b(Y)");
  Result<EquivalenceCheckResult> eq = CheckEquivalenceOnRandomDatabases(
      ParseOrDie(program), h.program, "t");
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq->equivalent) << eq->counterexample;
}

TEST(Hoist, SwappingVariablesBlockHoisting) {
  // The head variables swap each iteration (gcd-2 cycle), so b(Y) is NOT
  // stable: b(Y), b(X), b(Y), ... must all be evaluated.
  const char* program = R"(
    t(X, Y) :- e(X, Z), b(Y), t(Y, X).
    t(X, Y) :- t0(X, Y).
  )";
  ast::RecursiveDefinition def = DefOrDie(program, "t");
  Result<HoistResult> h = HoistUnconnectedPredicates(def);
  ASSERT_TRUE(h.ok());
  if (h->changed) {
    // If the structural filter ever admits it, the evaluation verifier must
    // have proven it equivalent — double-check independently.
    Result<EquivalenceCheckResult> eq = CheckEquivalenceOnRandomDatabases(
        ParseOrDie(program), h->program, "t",
        EquivalenceCheckOptions{16, 4, 0.5, 7});
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(eq->equivalent) << eq->counterexample;
  } else {
    EXPECT_FALSE(h->changed);
  }
}

TEST(Hoist, PrivateComponentSharedBetweenTwoHoistedAtoms) {
  // b and c share the private variable W: they must be hoisted together.
  const char* program = R"(
    t(X, Y) :- e(X, Z), b(W, Y), c(W), t(Z, Y).
    t(X, Y) :- t0(X, Y).
  )";
  HoistResult h = Hoist(program, "t");
  ASSERT_TRUE(h.changed) << h.note;
  EXPECT_EQ(h.hoisted.size(), 2u);
  Result<EquivalenceCheckResult> eq = CheckEquivalenceOnRandomDatabases(
      ParseOrDie(program), h.program, "t");
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq->equivalent) << eq->counterexample;
}

TEST(Hoist, PrivateComponentTouchingKeptAtomBlocksHoist) {
  // b's W is shared with e, which is on the chain: b is chain-connected and
  // must not move.
  const char* program = R"(
    t(X, Y) :- e(X, Z, W), b(W, Y), t(Z, Y).
    t(X, Y) :- t0(X, Y).
  )";
  HoistResult h = Hoist(program, "t");
  EXPECT_FALSE(h.changed) << h.note;
}

TEST(Hoist, AuxNameAvoidsCollisions) {
  const char* program = R"(
    t(X, Y) :- e(X, Z), b(W, Y), t(Z, Y).
    t(X, Y) :- t__core(X, Y).
  )";
  HoistResult h = Hoist(program, "t");
  ASSERT_TRUE(h.changed) << h.note;
  EXPECT_NE(h.aux_predicate, "t__core");
}

TEST(Hoist, MultiRuleDefinitionsNotSupported) {
  ast::RecursiveDefinition def = DefOrDie(dire::testing::kExample51, "t");
  Result<HoistResult> h = HoistUnconnectedPredicates(def);
  ASSERT_TRUE(h.ok());
  EXPECT_FALSE(h->changed);
}

}  // namespace
}  // namespace dire::core
