#include <gtest/gtest.h>

#include "eval/builtins.h"
#include "eval/magic.h"
#include "eval/provenance.h"
#include "eval/topdown.h"
#include "tests/test_util.h"

namespace dire::eval {
namespace {

using dire::testing::ParseOrDie;

TEST(Builtins, Recognition) {
  EXPECT_TRUE(IsBuiltinPredicate("neq"));
  EXPECT_TRUE(IsBuiltinPredicate("lt"));
  EXPECT_TRUE(IsBuiltinPredicate("leq"));
  EXPECT_FALSE(IsBuiltinPredicate("eq"));
  EXPECT_FALSE(IsBuiltinPredicate("edge"));
}

TEST(Builtins, NumericVsLexicographic) {
  storage::SymbolTable symbols;
  storage::ValueId v2 = symbols.Intern("2");
  storage::ValueId v10 = symbols.Intern("10");
  storage::ValueId apple = symbols.Intern("apple");
  storage::ValueId pear = symbols.Intern("pear");
  // Numeric: 2 < 10 although "10" < "2" lexicographically.
  EXPECT_TRUE(EvalBuiltin("lt", symbols, v2, v10));
  EXPECT_FALSE(EvalBuiltin("lt", symbols, v10, v2));
  // Lexicographic for names.
  EXPECT_TRUE(EvalBuiltin("lt", symbols, apple, pear));
  EXPECT_TRUE(EvalBuiltin("leq", symbols, apple, apple));
  EXPECT_FALSE(EvalBuiltin("lt", symbols, apple, apple));
  EXPECT_TRUE(EvalBuiltin("neq", symbols, apple, pear));
  EXPECT_FALSE(EvalBuiltin("neq", symbols, v2, v2));
}

TEST(Builtins, SiblingQuery) {
  storage::Database db;
  Evaluator ev(&db);
  Result<EvalStats> stats = ev.Evaluate(ParseOrDie(R"(
    parent(ann, bob). parent(ann, cara). parent(dan, eve).
    sibling(X, Y) :- parent(P, X), parent(P, Y), neq(X, Y).
  )"));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(db.DumpRelation("sibling"),
            "sibling(bob,cara)\nsibling(cara,bob)\n");
}

TEST(Builtins, OrderedPairsWithLt) {
  storage::Database db;
  Evaluator ev(&db);
  Result<EvalStats> stats = ev.Evaluate(ParseOrDie(R"(
    n(1). n(2). n(3).
    pair(X, Y) :- n(X), n(Y), lt(X, Y).
  )"));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(db.DumpRelation("pair"),
            "pair(1,2)\npair(1,3)\npair(2,3)\n");
}

TEST(Builtins, InsideRecursion) {
  // Strictly increasing paths.
  storage::Database db;
  Evaluator ev(&db);
  Result<EvalStats> stats = ev.Evaluate(ParseOrDie(R"(
    e(1, 3). e(3, 2). e(2, 5). e(3, 4). e(4, 5).
    up(X, Y) :- e(X, Y), lt(X, Y).
    up(X, Y) :- up(X, Z), e(Z, Y), lt(Z, Y).
  )"));
  ASSERT_TRUE(stats.ok()) << stats.status();
  // 1->3 rises; 3->2 falls. 3->4->5 rises.
  std::string dump = db.DumpRelation("up");
  EXPECT_NE(dump.find("up(1,3)"), std::string::npos);
  EXPECT_NE(dump.find("up(1,4)"), std::string::npos);
  EXPECT_NE(dump.find("up(1,5)"), std::string::npos);
  EXPECT_EQ(dump.find("up(3,2)"), std::string::npos);
}

TEST(Builtins, UnboundArgumentRejected) {
  storage::Database db;
  Evaluator ev(&db);
  Result<EvalStats> stats =
      ev.Evaluate(ParseOrDie("p(X) :- base(X), lt(X, Y)."));
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("unsafe builtin"),
            std::string::npos);
}

TEST(Builtins, CannotBeDefined) {
  storage::Database db;
  Evaluator ev(&db);
  Result<EvalStats> stats = ev.Evaluate(ParseOrDie("lt(X, Y) :- e(X, Y)."));
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("cannot be defined"),
            std::string::npos);
}

TEST(Builtins, WrongArityRejected) {
  storage::Database db;
  Evaluator ev(&db);
  EXPECT_FALSE(ev.Evaluate(ParseOrDie("p(X) :- base(X), neq(X).")).ok());
}

TEST(Builtins, TopDownAgrees) {
  ast::Program p = ParseOrDie(R"(
    parent(ann, bob). parent(ann, cara).
    sibling(X, Y) :- parent(P, X), parent(P, Y), neq(X, Y).
  )");
  storage::Database db;
  TabledTopDown engine(&db, p);
  Result<ast::Atom> q = parser::ParseAtom("sibling(bob, Y)");
  ASSERT_TRUE(q.ok());
  Result<QueryAnswer> ans = engine.Query(*q);
  ASSERT_TRUE(ans.ok()) << ans.status();
  EXPECT_EQ(ans->tuples.size(), 1u);
}

TEST(Builtins, MagicSetsHandlesBuiltins) {
  ast::Program p = ParseOrDie(R"(
    e(1, 2). e(2, 3). e(1, 3).
    up(X, Y) :- e(X, Y), lt(X, Y).
    up(X, Y) :- up(X, Z), e(Z, Y), lt(Z, Y).
  )");
  storage::Database db;
  Result<ast::Atom> q = parser::ParseAtom("up(1, Y)");
  ASSERT_TRUE(q.ok());
  Result<QueryAnswer> ans = AnswerQuery(&db, p, *q);
  ASSERT_TRUE(ans.ok()) << ans.status();
  EXPECT_EQ(ans->tuples.size(), 2u);  // 2 and 3.
}

TEST(Builtins, ProvenanceThroughBuiltins) {
  ast::Program p = ParseOrDie(R"(
    parent(ann, bob). parent(ann, cara).
    sibling(X, Y) :- parent(P, X), parent(P, Y), neq(X, Y).
  )");
  storage::Database db;
  ProvenanceTracker tracker;
  EvalOptions opts;
  opts.tracker = &tracker;
  Evaluator ev(&db, opts);
  ASSERT_TRUE(ev.Evaluate(p).ok());
  Result<ast::Atom> fact = parser::ParseAtom("sibling(bob, cara)");
  ASSERT_TRUE(fact.ok());
  Result<Derivation> d = Explain(&db, p, tracker, *fact);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_NE(d->ToString().find("[builtin]"), std::string::npos)
      << d->ToString();
}

TEST(Builtins, BoundednessAnalysisRefusesBuiltins) {
  // The dependence direction of the theorems builds witness databases and
  // cannot control a builtin's (fixed, infinite) relation, so the analysis
  // must refuse rather than misclassify.
  ast::Program p = ParseOrDie(R"(
    t(X, Y) :- e(X, Z), lt(X, Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
  )");
  Result<ast::RecursiveDefinition> def = ast::MakeDefinition(p, "t");
  ASSERT_FALSE(def.ok());
  EXPECT_NE(def.status().message().find("builtin"), std::string::npos);
}

}  // namespace
}  // namespace dire::eval
