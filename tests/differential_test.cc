// Differential testing harness for the evaluation pipeline: seeded random
// Datalog programs (linear and nonlinear recursion, constants, repeated
// variables, stratified negation, comparison builtins) are evaluated under
// every combination of {planner greedy, cost} x {threads 1, 4} x
// {semi-naive, naive}, and the resulting databases must agree byte for
// byte — same sorted snapshot, same per-relation tuple counts. Join order
// and parallel chunking may change how a fixpoint is reached, never what
// it is.
//
// A disagreement is shrunk by greedy delta debugging over the program's
// clauses to a minimal parseable .dl reproducer before the test fails, so
// the failure message is directly actionable.
//
// Fixed seeds keep CI reproducible; setting DIRE_RANDOM_SEED (CI passes
// $GITHUB_RUN_ID) adds one fresh round per run.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "base/rng.h"
#include "dire.h"
#include "storage/snapshot.h"

namespace dire {
namespace {

// ---------------------------------------------------------------------------
// Random program generation
// ---------------------------------------------------------------------------

// Small domains keep every relation under domain^arity tuples, so any
// generated program reaches fixpoint quickly in every configuration and
// no resource guard (whose partial results would be config-dependent) is
// needed.
constexpr int kMaxConstants = 8;
constexpr int kMaxVars = 5;

// Builds "prefixN" without `const char* + temporary` concatenation, which
// GCC 12's -Wrestrict misfires on under -O2.
std::string Name(const char* prefix, uint64_t n) {
  std::string out(prefix);
  out += std::to_string(n);
  return out;
}

struct Generator {
  Rng rng;
  // Arity per predicate, accumulated as predicates are introduced.
  std::map<std::string, size_t> arity;

  explicit Generator(uint64_t seed) : rng(seed) {}

  std::string Constant() { return Name("c", rng.Uniform(kMaxConstants)); }
  std::string Variable() { return Name("V", rng.Uniform(kMaxVars)); }

  // A positive body atom of `pred`: variables from the rule's pool with
  // occasional constants; repeats arise naturally from pool collisions.
  std::string Atom(const std::string& pred, std::vector<std::string>* vars) {
    std::string out = pred + "(";
    for (size_t i = 0; i < arity[pred]; ++i) {
      if (i != 0) out += ", ";
      if (rng.Chance(0.15)) {
        out += Constant();
      } else {
        std::string v = Variable();
        vars->push_back(v);
        out += v;
      }
    }
    return out + ")";
  }

  // A fully bound atom (for negation), over already-bound variables and
  // constants only.
  std::string BoundAtom(const std::string& pred,
                        const std::vector<std::string>& bound) {
    std::string out = pred + "(";
    for (size_t i = 0; i < arity[pred]; ++i) {
      if (i != 0) out += ", ";
      if (bound.empty() || rng.Chance(0.3)) {
        out += Constant();
      } else {
        out += bound[rng.Uniform(bound.size())];
      }
    }
    return out + ")";
  }

  // One rule for `head`; `usable` are the predicates its body may read
  // positively, `negatable` those it may negate (strictly lower strata).
  std::string Rule(const std::string& head,
                   const std::vector<std::string>& usable,
                   const std::vector<std::string>& negatable) {
    std::vector<std::string> body;
    std::vector<std::string> bound;
    size_t num_positive = 1 + rng.Uniform(3);
    for (size_t i = 0; i < num_positive; ++i) {
      body.push_back(Atom(usable[rng.Uniform(usable.size())], &bound));
    }
    // Safety net: a rule with no bound variables can only derive constant
    // heads, which is fine; negation/builtins then use constants.
    if (!negatable.empty() && rng.Chance(0.35)) {
      body.push_back(
          "not " + BoundAtom(negatable[rng.Uniform(negatable.size())],
                             bound));
    }
    if (bound.size() >= 2 && rng.Chance(0.35)) {
      const char* builtins[] = {"neq", "lt", "leq"};
      std::string a = bound[rng.Uniform(bound.size())];
      std::string b = bound[rng.Uniform(bound.size())];
      body.push_back(std::string(builtins[rng.Uniform(3)]) + "(" + a + ", " +
                     b + ")");
    }
    std::string out = head + "(";
    for (size_t i = 0; i < arity[head]; ++i) {
      if (i != 0) out += ", ";
      if (bound.empty() || rng.Chance(0.1)) {
        out += Constant();
      } else {
        out += bound[rng.Uniform(bound.size())];
      }
    }
    out += ") :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i != 0) out += ", ";
      out += body[i];
    }
    return out + ".";
  }

  // Generates a whole program as one clause per string (facts, then rules
  // stratum by stratum) — the unit the shrinker deletes.
  std::vector<std::string> Program() {
    std::vector<std::string> clauses;

    // EDB relations with random facts.
    size_t num_edb = 1 + rng.Uniform(3);
    std::vector<std::string> edbs;
    for (size_t e = 0; e < num_edb; ++e) {
      std::string name = Name("e", e);
      arity[name] = 1 + rng.Uniform(3);
      edbs.push_back(name);
      size_t facts = 3 + rng.Uniform(25);
      for (size_t f = 0; f < facts; ++f) {
        std::string fact = name + "(";
        for (size_t i = 0; i < arity[name]; ++i) {
          if (i != 0) fact += ", ";
          fact += Constant();
        }
        clauses.push_back(fact + ").");
      }
    }

    // IDB predicates in stratum order: p_i may read e*, p_j (j <= i)
    // positively and negate e*, p_j (j < i).
    size_t num_idb = 1 + rng.Uniform(4);
    std::vector<std::string> lower = edbs;
    for (size_t p = 0; p < num_idb; ++p) {
      std::string name = Name("p", p);
      arity[name] = 1 + rng.Uniform(2);
      std::vector<std::string> usable = lower;
      usable.push_back(name);  // Recursion through itself.
      size_t num_rules = 1 + rng.Uniform(2);
      // At least one non-recursive rule so the predicate can be nonempty.
      clauses.push_back(Rule(name, lower, lower));
      for (size_t r = 1; r < num_rules; ++r) {
        clauses.push_back(Rule(name, usable, lower));
      }
      // A dedicated recursive rule (linear when the head predicate appears
      // once in the body, nonlinear when the pool hands it out twice).
      if (rng.Chance(0.7)) {
        clauses.push_back(Rule(name, usable, lower));
      }
      lower.push_back(name);
    }
    return clauses;
  }
};

// ---------------------------------------------------------------------------
// Differential execution
// ---------------------------------------------------------------------------

struct RunOutcome {
  bool ok = false;
  std::string error;
  std::string snapshot;
  std::map<std::string, size_t> counts;
  std::string label;
};

RunOutcome RunConfig(const ast::Program& program, eval::PlannerMode planner,
                     int threads, eval::EvalOptions::Mode mode) {
  RunOutcome out;
  out.label =
      std::string(planner == eval::PlannerMode::kCost ? "cost" : "greedy") +
      "/threads=" + std::to_string(threads) + "/" +
      (mode == eval::EvalOptions::Mode::kSemiNaive ? "semi-naive" : "naive");
  storage::Database db;
  eval::EvalOptions options;
  options.planner = planner;
  options.num_threads = threads;
  options.mode = mode;
  eval::Evaluator ev(&db, options);
  Result<eval::EvalStats> stats = ev.Evaluate(program);
  if (!stats.ok()) {
    out.error = stats.status().ToString();
    return out;
  }
  Result<std::string> snapshot = storage::SaveSnapshot(db);
  if (!snapshot.ok()) {
    out.error = snapshot.status().ToString();
    return out;
  }
  out.snapshot = *snapshot;
  for (const std::string& name : db.RelationNames()) {
    out.counts[name] = db.Find(name)->size();
  }
  out.ok = true;
  return out;
}

const std::vector<std::pair<eval::PlannerMode, int>> kPlannerMatrix = {
    {eval::PlannerMode::kGreedy, 1},
    {eval::PlannerMode::kGreedy, 4},
    {eval::PlannerMode::kCost, 1},
    {eval::PlannerMode::kCost, 4},
};

// Evaluates `text` under the full configuration matrix. Returns true and
// fills `detail` when the configurations *disagree* (the property
// violation the test hunts); an unparseable or unevaluable program is not
// a disagreement (shrinking steps that break the program are rejected,
// not reported).
bool Disagrees(const std::string& text, std::string* detail) {
  Result<ast::Program> program = parser::ParseProgram(text);
  if (!program.ok()) return false;

  std::vector<RunOutcome> runs;
  for (auto mode : {eval::EvalOptions::Mode::kSemiNaive,
                    eval::EvalOptions::Mode::kNaive}) {
    for (const auto& [planner, threads] : kPlannerMatrix) {
      runs.push_back(RunConfig(*program, planner, threads, mode));
    }
  }
  const RunOutcome& base = runs.front();
  for (const RunOutcome& run : runs) {
    if (run.ok != base.ok) {
      *detail = "status diverged: " + base.label + " vs " + run.label + " (" +
                (run.ok ? base.error : run.error) + ")";
      return true;
    }
  }
  if (!base.ok) return false;  // All configs reject it identically.
  for (const RunOutcome& run : runs) {
    if (run.counts != base.counts) {
      *detail = "tuple counts diverged: " + base.label + " vs " + run.label;
      return true;
    }
    if (run.snapshot != base.snapshot) {
      *detail = "snapshot bytes diverged: " + base.label + " vs " + run.label;
      return true;
    }
  }
  return false;
}

std::string JoinClauses(const std::vector<std::string>& clauses) {
  std::string text;
  for (const std::string& c : clauses) {
    text += c;
    text += '\n';
  }
  return text;
}

// Greedy delta debugging: repeatedly drop any clause whose removal keeps
// the disagreement alive, until no single removal does. The result still
// parses (Disagrees rejects unparseable candidates) and is 1-minimal.
std::vector<std::string> Shrink(std::vector<std::string> clauses) {
  std::string detail;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < clauses.size(); ++i) {
      std::vector<std::string> candidate = clauses;
      candidate.erase(candidate.begin() + static_cast<long>(i));
      if (Disagrees(JoinClauses(candidate), &detail)) {
        clauses = std::move(candidate);
        progressed = true;
        break;
      }
    }
  }
  return clauses;
}

void CheckSeed(uint64_t seed) {
  Generator gen(seed);
  std::vector<std::string> clauses = gen.Program();
  std::string text = JoinClauses(clauses);
  // Generated programs must at least parse — a generator bug otherwise.
  Result<ast::Program> parsed = parser::ParseProgram(text);
  ASSERT_TRUE(parsed.ok()) << "seed " << seed << " generated an unparseable "
                           << "program: " << parsed.status() << "\n"
                           << text;
  // The generator is built to emit stratified, range-restricted programs;
  // if evaluation rejects one, the matrix would degenerate to comparing
  // identical errors, so treat that as a generator bug too.
  RunOutcome base = RunConfig(*parsed, eval::PlannerMode::kCost, 1,
                              eval::EvalOptions::Mode::kSemiNaive);
  ASSERT_TRUE(base.ok) << "seed " << seed << " generated a program that "
                       << "fails to evaluate: " << base.error << "\n"
                       << text;
  std::string detail;
  if (!Disagrees(text, &detail)) return;
  std::vector<std::string> minimal = Shrink(clauses);
  Disagrees(JoinClauses(minimal), &detail);
  FAIL() << "configurations disagree for seed " << seed << ": " << detail
         << "\nminimal .dl reproducer (" << minimal.size() << " of "
         << clauses.size() << " clauses):\n"
         << JoinClauses(minimal);
}

TEST(Differential, FixedSeedMatrix) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    CheckSeed(seed);
    if (::testing::Test::HasFatalFailure() || HasFailure()) return;
  }
}

TEST(Differential, RandomSeedFromEnvironment) {
  const char* raw = std::getenv("DIRE_RANDOM_SEED");
  if (raw == nullptr || *raw == '\0') {
    GTEST_SKIP() << "DIRE_RANDOM_SEED not set";
  }
  // Accept any string: numeric seeds pass through, anything else hashes.
  uint64_t seed = 0;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end != raw && *end == '\0') {
    seed = parsed;
  } else {
    for (const char* c = raw; *c != '\0'; ++c) {
      seed = seed * 131 + static_cast<unsigned char>(*c);
    }
  }
  CheckSeed(seed);
}

}  // namespace
}  // namespace dire
