// Parallel evaluation: the worker pool itself, and the determinism contract
// that --threads=N produces byte-identical results to --threads=1 — same
// tuples, same insertion order, same snapshot bytes — on every program
// shape, plus guard exhaustion and cancellation behaviour mid-parallel-run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "base/obs.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "eval/evaluator.h"
#include "eval/plan.h"
#include "storage/generators.h"
#include "storage/snapshot.h"
#include "tests/test_util.h"

namespace dire::eval {
namespace {

using dire::testing::ParseOrDie;

// ------------------------------------------------------------------------
// ThreadPool
// ------------------------------------------------------------------------

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1);
  std::vector<int> hits(64, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EveryTaskRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.parallelism(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(),
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.ParallelFor(batch + 1, [&](size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  long expect = 0;
  for (int batch = 0; batch < 50; ++batch) {
    expect += batch * (batch + 1) / 2;
  }
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "no task should run"; });
}

TEST(ThreadPool, MoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<size_t> ran{0};
  pool.ParallelFor(997, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 997u);
}

// ------------------------------------------------------------------------
// Determinism: parallel == serial, byte for byte
// ------------------------------------------------------------------------

EvalOptions Threaded(int n) {
  EvalOptions o;
  o.num_threads = n;
  return o;
}

// Loads the same pseudo-random EDB into `db` for a given seed. Sizes are
// chosen so the driving scans clear the parallel chunking threshold.
void LoadEdb(storage::Database* db, uint64_t seed) {
  Rng rng(seed);
  ASSERT_TRUE(storage::MakeRandomGraph(db, "e", 40, 400, &rng).ok());
  ASSERT_TRUE(storage::MakeRandomGraph(db, "up", 30, 200, &rng).ok());
  ASSERT_TRUE(storage::MakeRandomGraph(db, "down", 30, 200, &rng).ok());
  ASSERT_TRUE(storage::MakeRandomGraph(db, "flat", 30, 200, &rng).ok());
}

// The program shapes under test: single recursion, same-generation style
// double recursion, a wide multi-join, projection pushdown (dead bindings),
// and stratified negation over a recursive result.
const char* const kPrograms[] = {
    R"(
      t(X, Y) :- e(X, Z), t(Z, Y).
      t(X, Y) :- e(X, Y).
    )",
    R"(
      sg(X, Y) :- flat(X, Y).
      sg(X, Y) :- up(X, Z), sg(Z, W), down(W, Y).
    )",
    R"(
      p3(X, Y) :- e(X, A), e(A, B), e(B, Y).
      r(X, Y) :- p3(X, Y).
      r(X, Y) :- p3(X, Z), r(Z, Y).
    )",
    R"(
      hub(X) :- e(X, Y), e(Y, X).
      reach(X, Y) :- e(X, Y), hub(X).
      reach(X, Y) :- reach(X, Z), e(Z, Y).
    )",
    R"(
      t(X, Y) :- e(X, Z), t(Z, Y).
      t(X, Y) :- e(X, Y).
      far(X, Y) :- t(X, Y), not e(X, Y).
    )",
    // Dead binding on the chunked driving scan (Y is never read), so the
    // projection-dedup seen set runs per chunk and its cross-chunk
    // re-emissions must still dedup to the serial order.
    R"(
      src(X) :- e(X, Y).
      t2(X, Y) :- src(X), e(X, Y).
    )",
};

// Every derived relation of `db`, serialized with insertion order intact
// (snapshots sort, so they cannot see an order difference — this can).
std::vector<std::vector<storage::Tuple>> InsertionOrders(
    const storage::Database& db) {
  std::vector<std::vector<storage::Tuple>> out;
  for (const std::string& name : db.RelationNames()) {
    out.push_back(db.Find(name)->CopyTuples());
  }
  return out;
}

TEST(ParallelDeterminism, MatchesSerialByteForByteAcrossThreadCounts) {
#ifdef DIRE_OBS_ENABLED
  // Guard against the whole suite passing trivially because the parallel
  // path never engaged: the chunk counter must move across these runs.
  obs::Counter* chunks = obs::GetCounter("dire_eval_parallel_chunks_total");
  uint64_t chunks_before = chunks->value();
#endif
  for (const char* program_text : kPrograms) {
    ast::Program program = ParseOrDie(program_text);
    for (uint64_t seed : {1u, 7u, 23u}) {
      storage::Database reference;
      LoadEdb(&reference, seed);
      Evaluator serial(&reference, Threaded(1));
      Result<EvalStats> ref_stats = serial.Evaluate(program);
      ASSERT_TRUE(ref_stats.ok()) << ref_stats.status();
      Result<std::string> ref_snapshot = storage::SaveSnapshot(reference);
      ASSERT_TRUE(ref_snapshot.ok());
      std::vector<std::vector<storage::Tuple>> ref_order =
          InsertionOrders(reference);

      for (int threads : {2, 4, 8}) {
        storage::Database db;
        LoadEdb(&db, seed);
        Evaluator parallel(&db, Threaded(threads));
        Result<EvalStats> stats = parallel.Evaluate(program);
        ASSERT_TRUE(stats.ok()) << stats.status();
        // Same derivation counts, round for round.
        EXPECT_EQ(stats->tuples_derived, ref_stats->tuples_derived);
        EXPECT_EQ(stats->iterations, ref_stats->iterations);
        EXPECT_EQ(stats->rule_firings, ref_stats->rule_firings);
        // Same tuples in the same insertion order.
        EXPECT_EQ(InsertionOrders(db), ref_order)
            << "threads=" << threads << " seed=" << seed << "\n"
            << program_text;
        // Same bytes on disk.
        Result<std::string> snapshot = storage::SaveSnapshot(db);
        ASSERT_TRUE(snapshot.ok());
        EXPECT_EQ(*snapshot, *ref_snapshot)
            << "threads=" << threads << " seed=" << seed;
      }
    }
  }
#ifdef DIRE_OBS_ENABLED
  EXPECT_GT(chunks->value(), chunks_before)
      << "no firing took the chunked path; the determinism comparisons "
         "above were all trivially serial-vs-serial";
#endif
}

TEST(ParallelDeterminism, SmallInputsStaySerialAndCorrect) {
  // Below the chunking threshold the parallel evaluator must take the
  // serial path and still produce the exact closure.
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 5).ok());
  Evaluator ev(&db, Threaded(8));
  Result<EvalStats> stats =
      ev.Evaluate(ParseOrDie(dire::testing::kTransitiveClosure));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(db.Find("t")->size(), 10u);
}

TEST(ParallelDeterminism, NaiveModeAlsoMatchesSerial) {
  ast::Program program = ParseOrDie(dire::testing::kTransitiveClosure);
  storage::Database reference;
  LoadEdb(&reference, 5);
  EvalOptions serial_naive;
  serial_naive.mode = EvalOptions::Mode::kNaive;
  Evaluator s(&reference, serial_naive);
  ASSERT_TRUE(s.Evaluate(program).ok());

  storage::Database db;
  LoadEdb(&db, 5);
  EvalOptions parallel_naive = serial_naive;
  parallel_naive.num_threads = 4;
  Evaluator p(&db, parallel_naive);
  ASSERT_TRUE(p.Evaluate(program).ok());
  EXPECT_EQ(db.Find("t")->CopyTuples(), reference.Find("t")->CopyTuples());
}

// ------------------------------------------------------------------------
// Guard exhaustion and cancellation mid-parallel-run
// ------------------------------------------------------------------------

TEST(ParallelGuard, TupleBudgetYieldsSoundPrefix) {
  ast::Program program = ParseOrDie(dire::testing::kTransitiveClosure);
  storage::Database reference;
  LoadEdb(&reference, 11);
  Evaluator full(&reference, Threaded(1));
  ASSERT_TRUE(full.Evaluate(program).ok());
  const storage::Relation* complete = reference.Find("t");
  ASSERT_GT(complete->size(), 200u);

  GuardLimits limits;
  limits.max_tuples = 100;
  ExecutionGuard guard(limits);
  storage::Database db;
  LoadEdb(&db, 11);
  EvalOptions opts = Threaded(4);
  opts.guard = &guard;
  opts.on_exhaustion = EvalOptions::OnExhaustion::kPartial;
  Evaluator ev(&db, opts);
  Result<EvalStats> stats = ev.Evaluate(program);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->exhausted);
  EXPECT_FALSE(stats->converged);
  // The budget is exact and every derived tuple is a sound derivation.
  const storage::Relation* partial = db.Find("t");
  EXPECT_LE(partial->size(), 100u);
  for (storage::RowRef t : partial->rows()) {
    EXPECT_TRUE(complete->Contains(t));
  }
}

TEST(ParallelGuard, TupleBudgetErrorsUnderKError) {
  GuardLimits limits;
  limits.max_tuples = 10;
  ExecutionGuard guard(limits);
  storage::Database db;
  LoadEdb(&db, 11);
  EvalOptions opts = Threaded(4);
  opts.guard = &guard;
  Evaluator ev(&db, opts);
  Result<EvalStats> stats =
      ev.Evaluate(ParseOrDie(dire::testing::kTransitiveClosure));
  EXPECT_FALSE(stats.ok());
}

TEST(ParallelGuard, CancellationMidRunLeavesSoundState) {
  ast::Program program = ParseOrDie(dire::testing::kTransitiveClosure);
  storage::Database reference;
  ASSERT_TRUE(storage::MakeGrid(&reference, "e", 25, 25).ok());
  Evaluator full(&reference, Threaded(1));
  ASSERT_TRUE(full.Evaluate(program).ok());
  const storage::Relation* complete = reference.Find("t");

  CancellationToken token;
  ExecutionGuard guard(GuardLimits{}, token);
  storage::Database db;
  ASSERT_TRUE(storage::MakeGrid(&db, "e", 25, 25).ok());
  EvalOptions opts = Threaded(4);
  opts.guard = &guard;
  opts.on_exhaustion = EvalOptions::OnExhaustion::kPartial;
  Evaluator ev(&db, opts);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Cancel();
  });
  Result<EvalStats> stats = ev.Evaluate(program);
  canceller.join();
  ASSERT_TRUE(stats.ok()) << stats.status();
  // Whether the cancel landed mid-run or after completion, everything
  // derived must be a subset of the true closure.
  const storage::Relation* got = db.Find("t");
  ASSERT_NE(got, nullptr);
  for (storage::RowRef t : got->rows()) {
    EXPECT_TRUE(complete->Contains(t));
  }
  if (stats->exhausted) {
    EXPECT_FALSE(stats->converged);
    EXPECT_FALSE(stats->exhausted_reason.empty());
  }
}

// ------------------------------------------------------------------------
// Options and plan-level support
// ------------------------------------------------------------------------

TEST(ParallelOptions, RejectsNonPositiveThreadCount) {
  storage::Database db;
  EvalOptions opts;
  opts.num_threads = 0;
  Evaluator ev(&db, opts);
  EXPECT_FALSE(ev.Evaluate(ParseOrDie("p(X) :- q(X).")).ok());
  opts.num_threads = -3;
  Evaluator ev2(&db, opts);
  EXPECT_FALSE(ev2.Evaluate(ParseOrDie("p(X) :- q(X).")).ok());
}

TEST(RequiredIndexes, ReportsSingleColumnProbe) {
  storage::SymbolTable symbols;
  ast::Program p = ParseOrDie("t(X, Y) :- e(X, Z), t(Z, Y).");
  Result<CompiledRule> plan = CompileRule(p.rules[0], &symbols, {});
  ASSERT_TRUE(plan.ok());
  std::vector<IndexRequirement> reqs = RequiredIndexes(*plan);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].predicate, "t");
  EXPECT_EQ(reqs[0].positions, (std::vector<int>{0}));
}

TEST(RequiredIndexes, ReportsCompositeProbeAndDeduplicates) {
  storage::SymbolTable symbols;
  ast::Program p = ParseOrDie(
      "r(X, Y) :- a(X, Y), b(X, Y), b(X, Y).");
  Result<CompiledRule> plan = CompileRule(p.rules[0], &symbols, {});
  ASSERT_TRUE(plan.ok());
  std::vector<IndexRequirement> reqs = RequiredIndexes(*plan);
  // Both b atoms probe the same composite index; requirement reported once.
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].predicate, "b");
  EXPECT_EQ(reqs[0].positions, (std::vector<int>{0, 1}));
}

TEST(ParallelDeterminism, EvaluateOnceMatchesSerial) {
  ast::Program p = ParseOrDie("p3(X, Y) :- e(X, A), e(A, B), e(B, Y).");
  storage::Database reference;
  LoadEdb(&reference, 3);
  Evaluator s(&reference, Threaded(1));
  ASSERT_TRUE(s.EvaluateOnce(p.rules).ok());

  storage::Database db;
  LoadEdb(&db, 3);
  Evaluator par(&db, Threaded(4));
  ASSERT_TRUE(par.EvaluateOnce(p.rules).ok());
  EXPECT_EQ(db.Find("p3")->CopyTuples(), reference.Find("p3")->CopyTuples());
}

}  // namespace
}  // namespace dire::eval
