#include "base/backoff.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "base/failpoints.h"
#include "base/io.h"

namespace dire {
namespace {

std::vector<int64_t> Delays(const BackoffPolicy& policy, uint64_t seed) {
  Backoff backoff(policy, seed);
  std::vector<int64_t> delays;
  while (std::optional<int64_t> d = backoff.NextDelayUs()) {
    delays.push_back(*d);
  }
  return delays;
}

TEST(Backoff, GrowsExponentiallyAndStopsAtAttemptBudget) {
  BackoffPolicy policy;
  policy.max_attempts = 4;
  policy.initial_delay_us = 200;
  policy.max_delay_us = 1'000'000;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;  // Exact schedule.
  std::vector<int64_t> delays = Delays(policy, /*seed=*/7);
  // 4 attempts = the first try plus 3 retries, so exactly 3 delays.
  ASSERT_EQ(delays.size(), 3u);
  EXPECT_EQ(delays[0], 200);
  EXPECT_EQ(delays[1], 400);
  EXPECT_EQ(delays[2], 800);
}

TEST(Backoff, DelayIsCappedAtMaxDelay) {
  BackoffPolicy policy;
  policy.max_attempts = 8;
  policy.initial_delay_us = 100;
  policy.max_delay_us = 500;
  policy.multiplier = 10.0;
  policy.jitter = 0.0;
  std::vector<int64_t> delays = Delays(policy, /*seed=*/7);
  ASSERT_EQ(delays.size(), 7u);
  EXPECT_EQ(delays[0], 100);
  for (size_t i = 1; i < delays.size(); ++i) {
    EXPECT_EQ(delays[i], 500) << "retry " << i;
  }
}

TEST(Backoff, JitterStaysInBandAndUnderCap) {
  BackoffPolicy policy;
  policy.max_attempts = 64;
  policy.initial_delay_us = 1000;
  policy.max_delay_us = 8000;
  policy.multiplier = 2.0;
  policy.jitter = 0.25;
  Backoff backoff(policy, /*seed=*/42);
  int64_t base = policy.initial_delay_us;
  bool saw_non_base = false;
  while (std::optional<int64_t> d = backoff.NextDelayUs()) {
    EXPECT_GE(*d, static_cast<int64_t>(base * (1.0 - policy.jitter)));
    EXPECT_LE(*d, policy.max_delay_us);
    if (*d != base) saw_non_base = true;
    base = std::min<int64_t>(base * 2, policy.max_delay_us);
  }
  EXPECT_TRUE(saw_non_base);  // The jitter actually perturbs something.
}

TEST(Backoff, DeterministicForPolicyAndSeed) {
  BackoffPolicy policy;  // Defaults, jitter on.
  EXPECT_EQ(Delays(policy, 99), Delays(policy, 99));
  EXPECT_NE(Delays(policy, 99), Delays(policy, 100));
}

TEST(Backoff, NoRetryPolicies) {
  BackoffPolicy one;
  one.max_attempts = 1;
  EXPECT_EQ(Backoff(one).NextDelayUs(), std::nullopt);
  BackoffPolicy zero;
  zero.max_attempts = 0;  // Values < 1 behave as 1.
  EXPECT_EQ(Backoff(zero).NextDelayUs(), std::nullopt);
}

TEST(Backoff, CountsFailures) {
  BackoffPolicy policy;
  policy.max_attempts = 3;
  Backoff backoff(policy);
  EXPECT_EQ(backoff.failures(), 0);
  ASSERT_TRUE(backoff.NextDelayUs().has_value());
  ASSERT_TRUE(backoff.NextDelayUs().has_value());
  EXPECT_FALSE(backoff.NextDelayUs().has_value());
  EXPECT_EQ(backoff.failures(), 3);
}

// --- RetryTransientOp: the consumer of the policy in base/io. ---

TEST(RetryTransientOp, RetriesTransientErrnoThenSucceeds) {
  int calls = 0;
  Status s = io::RetryTransientOp("io.retry.fsync", "test op", [&] {
    if (++calls < 3) {
      errno = EINTR;
      return -1;
    }
    return 0;
  });
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_EQ(calls, 3);  // Two transient failures were retried.
}

TEST(RetryTransientOp, PermanentErrnoFailsWithoutRetry) {
  int calls = 0;
  Status s = io::RetryTransientOp("io.retry.fsync", "test op", [&] {
    ++calls;
    errno = ENOSPC;
    return -1;
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(calls, 1);  // ENOSPC is permanent: no second attempt.
}

TEST(RetryTransientOp, TransientFailureIsBoundedByAttemptBudget) {
  int calls = 0;
  Status s = io::RetryTransientOp("io.retry.fsync", "test op", [&] {
    ++calls;
    errno = EAGAIN;
    return -1;
  });
  EXPECT_FALSE(s.ok());  // Surfaced instead of looping forever.
  EXPECT_EQ(calls, 4);   // kPolicy.max_attempts in io.cc.
}

// The failpoint-driven proof for the durable-commit path: a transient
// glitch at the fsync site is retried (and absorbed), a persistent one is
// capped and surfaces as an error that leaves the destination intact.
TEST(RetryTransientOp, AtomicWriteAbsorbsTransientFsyncGlitch) {
  std::string path = ::testing::TempDir() + "/backoff_test_transient.txt";
  ASSERT_TRUE(io::AtomicWriteFile(path, "before").ok());
  {
    // First two fsync attempts fail transiently, the third succeeds.
    failpoints::Config glitch;
    glitch.fire_count = 2;
    failpoints::Scoped fp("io.retry.fsync", glitch);
    ASSERT_TRUE(io::AtomicWriteFile(path, "after").ok());
    EXPECT_EQ(failpoints::HitCount("io.retry.fsync"), 3);  // Retries ran.
  }
  EXPECT_EQ(*io::ReadFile(path), "after");
  std::remove(path.c_str());
}

TEST(RetryTransientOp, AtomicWriteCapsPersistentFsyncFailure) {
  std::string path = ::testing::TempDir() + "/backoff_test_persistent.txt";
  ASSERT_TRUE(io::AtomicWriteFile(path, "intact").ok());
  {
    failpoints::Scoped fp("io.retry.fsync");  // Fires on every attempt.
    Status s = io::AtomicWriteFile(path, "never lands");
    EXPECT_FALSE(s.ok());
    // Attempts were made, and exactly max_attempts of them: retries are
    // bounded, not infinite.
    EXPECT_EQ(failpoints::HitCount("io.retry.fsync"), 4);
  }
  EXPECT_EQ(*io::ReadFile(path), "intact");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(RetryTransientOp, RenameSiteIsRetriedToo) {
  std::string path = ::testing::TempDir() + "/backoff_test_rename.txt";
  {
    failpoints::Config glitch;
    glitch.fire_count = 1;
    failpoints::Scoped fp("io.retry.rename", glitch);
    ASSERT_TRUE(io::AtomicWriteFile(path, "renamed").ok());
    EXPECT_EQ(failpoints::HitCount("io.retry.rename"), 2);
  }
  EXPECT_EQ(*io::ReadFile(path), "renamed");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dire
