#include <gtest/gtest.h>

#include "cq/conjunctive_query.h"
#include "cq/containment.h"
#include "tests/test_util.h"

namespace dire::cq {
namespace {

// Builds a CQ from rule syntax: the head gives the distinguished terms.
ConjunctiveQuery Q(std::string_view rule_text) {
  Result<ast::Rule> r = parser::ParseRule(rule_text);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.status().ToString());
  return ConjunctiveQuery::FromRule(*r);
}

TEST(ConjunctiveQuery, RenderingAndRoundTrip) {
  ConjunctiveQuery q = Q("t(X,Y) :- e(X,Z), e(Z,Y).");
  EXPECT_EQ(q.ToString(), "e(X,Z)e(Z,Y)");
  EXPECT_EQ(q.ToRule("t").ToString(), "t(X,Y) :- e(X,Z), e(Z,Y).");
  EXPECT_EQ(q.DistinguishedVariables(),
            (std::vector<std::string>{"X", "Y"}));
}

TEST(Canonicalize, RenamesNondistinguishedOnly) {
  ConjunctiveQuery q = Q("t(X) :- e(X,Foo), e(Foo,Bar).");
  ConjunctiveQuery c = Canonicalize(q);
  EXPECT_EQ(c.ToString(), "e(X,W0)e(W0,W1)");
}

TEST(Isomorphic, UpToNondistinguishedRenaming) {
  EXPECT_TRUE(Isomorphic(Q("t(X) :- e(X,A), e(A,B)."),
                         Q("t(X) :- e(X,P), e(P,Q).")));
  EXPECT_FALSE(Isomorphic(Q("t(X) :- e(X,A), e(A,B)."),
                          Q("t(X) :- e(X,A), e(B,A).")));
  // Distinguished variables may not be renamed.
  EXPECT_FALSE(Isomorphic(Q("t(X) :- e(X,X)."), Q("t(Y) :- e(Y,Y).")));
}

TEST(Containment, PathQueryClassic) {
  // Longer paths are contained in shorter ones only via folding; a length-2
  // path maps onto a length-1 self-loop pattern but not vice versa.
  ConjunctiveQuery p1 = Q("t(X,Y) :- e(X,Y).");
  ConjunctiveQuery p2 = Q("t(X,Y) :- e(X,Z), e(Z,Y).");
  EXPECT_FALSE(MapsTo(p1, p2));  // e(X,Y) cannot appear in p2's body.
  EXPECT_FALSE(MapsTo(p2, p1));  // Z would need to be both X and Y.
}

TEST(Containment, FoldingThroughNondistinguished) {
  // q1 = exists Z: e(X,Z); q2 = e(X,X). Mapping Z -> X shows q1 maps to q2.
  ConjunctiveQuery q1 = Q("t(X) :- e(X,Z).");
  ConjunctiveQuery q2 = Q("t(X) :- e(X,X).");
  EXPECT_TRUE(MapsTo(q1, q2));
  EXPECT_FALSE(MapsTo(q2, q1));
}

TEST(Containment, MappingFixesDistinguishedVariables) {
  ConjunctiveQuery q1 = Q("t(X,Y) :- e(X,Y).");
  ConjunctiveQuery q2 = Q("t(X,Y) :- e(Y,X).");
  EXPECT_FALSE(MapsTo(q1, q2));
  EXPECT_FALSE(MapsTo(q2, q1));
}

TEST(Containment, ConstantsMustMatch) {
  EXPECT_TRUE(MapsTo(Q("t(X) :- e(X,Z)."), Q("t(X) :- e(X,a).")));
  EXPECT_FALSE(MapsTo(Q("t(X) :- e(X,a)."), Q("t(X) :- e(X,b).")));
  EXPECT_TRUE(MapsTo(Q("t(X) :- e(X,a)."), Q("t(X) :- e(X,a).")));
}

TEST(Containment, ReturnsWitnessMapping) {
  ConjunctiveQuery q1 = Q("t(X) :- e(X,Z).");
  ConjunctiveQuery q2 = Q("t(X) :- e(X,W), f(W).");
  auto m = FindContainmentMapping(q1, q2);
  ASSERT_TRUE(m.has_value());
  // Applying the mapping to q1's body must produce atoms of q2.
  ast::Atom mapped = m->Apply(q1.body[0]);
  EXPECT_EQ(mapped, q2.body[0]);
}

TEST(Containment, ExpansionStringsOfTransitiveClosure) {
  // Paper Example 2.1: no string of the TC expansion maps to a longer one
  // (that is exactly why the recursion is data dependent).
  ConjunctiveQuery s0 = Q("t(X,Y) :- e(X,Y).");
  ConjunctiveQuery s1 = Q("t(X,Y) :- e(X,Z0), e(Z0,Y).");
  ConjunctiveQuery s2 = Q("t(X,Y) :- e(X,Z0), e(Z0,Z1), e(Z1,Y).");
  EXPECT_FALSE(MapsTo(s0, s1));
  EXPECT_FALSE(MapsTo(s1, s2));
  EXPECT_FALSE(MapsTo(s0, s2));
  // And the reverse directions also fail (distinct relations).
  EXPECT_FALSE(MapsTo(s1, s0));
  EXPECT_FALSE(MapsTo(s2, s0));
}

TEST(Containment, BuysStringsCollapse) {
  // Paper Example 1.2: string 1 maps to string 2, so evaluating string 2
  // adds nothing. (The two are in fact equivalent: the extra trendy atom of
  // string 2 folds onto trendy(X).)
  ConjunctiveQuery s1 = Q("b(X,Y) :- trendy(X), likes(Z0,Y).");
  ConjunctiveQuery s2 = Q("b(X,Y) :- trendy(X), trendy(Z0), likes(Z1,Y).");
  EXPECT_TRUE(MapsTo(s1, s2));
  EXPECT_TRUE(MapsTo(s2, s1));
  EXPECT_EQ(Minimize(s2).body.size(), 2u);
}

TEST(Containment, Equivalence) {
  ConjunctiveQuery a = Q("t(X) :- e(X,Z), e(X,W).");
  ConjunctiveQuery b = Q("t(X) :- e(X,U).");
  EXPECT_TRUE(Equivalent(a, b));
  EXPECT_FALSE(Equivalent(a, Q("t(X) :- e(Z,X).")));
}

TEST(UnionContains, AnyMemberSuffices) {
  std::vector<ConjunctiveQuery> ucq = {Q("t(X) :- e(X,a)."),
                                       Q("t(X) :- e(X,Z).")};
  EXPECT_TRUE(UnionContains(ucq, Q("t(X) :- e(X,b).")));
  EXPECT_FALSE(UnionContains({Q("t(X) :- e(X,a).")}, Q("t(X) :- e(X,b).")));
  EXPECT_FALSE(UnionContains({}, Q("t(X) :- e(X,b).")));
}

TEST(Minimize, RemovesFoldableAtoms) {
  ConjunctiveQuery q = Q("t(X) :- e(X,Z), e(X,W), e(X,V).");
  ConjunctiveQuery m = Minimize(q);
  EXPECT_EQ(m.body.size(), 1u);
  EXPECT_TRUE(Equivalent(q, m));
}

TEST(Minimize, KeepsCore) {
  ConjunctiveQuery q = Q("t(X,Y) :- e(X,Z), e(Z,Y).");
  EXPECT_EQ(Minimize(q).body.size(), 2u);
}

TEST(Minimize, RespectsSafety) {
  // The only atom carrying Y cannot be removed even though it looks
  // foldable onto the first atom.
  ConjunctiveQuery q = Q("t(X,Y) :- e(X,X), e(X,Y).");
  ConjunctiveQuery m = Minimize(q);
  bool has_y = false;
  for (const ast::Atom& a : m.body) {
    for (const ast::Term& t : a.args) {
      if (t.IsVariable() && t.text() == "Y") has_y = true;
    }
  }
  EXPECT_TRUE(has_y);
}

TEST(Minimize, ExampleFromSagivTradition) {
  // exists Z,W: e(X,Z), e(Z,W) folds to exists Z: e(X,Z) only if W can map
  // into the 2-chain consistently: it can (Z->Z, W->W ... keep both). The
  // core of a genuine 2-chain with only X distinguished IS foldable:
  // map Z->Z, W->Z requires e(Z,Z) — absent. So the core keeps both atoms.
  ConjunctiveQuery q = Q("t(X) :- e(X,Z), e(Z,W).");
  EXPECT_EQ(Minimize(q).body.size(), 2u);
}

}  // namespace
}  // namespace dire::cq
