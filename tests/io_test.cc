#include "base/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "base/failpoints.h"

namespace dire::io {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Crc32c, KnownAnswers) {
  // The CRC-32C check value from RFC 3720 / the Castagnoli literature.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // Incremental computation matches one-shot.
  uint32_t partial = Crc32c("12345");
  EXPECT_EQ(Crc32c("6789", partial), Crc32c("123456789"));
}

TEST(Crc32c, HexRoundTrip) {
  EXPECT_EQ(CrcToHex(0xE3069283u), "e3069283");
  EXPECT_EQ(CrcToHex(0u), "00000000");
  Result<uint32_t> parsed = CrcFromHex("e3069283");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, 0xE3069283u);
  EXPECT_FALSE(CrcFromHex("e306928").ok());    // Too short.
  EXPECT_FALSE(CrcFromHex("e30692831").ok());  // Too long.
  EXPECT_FALSE(CrcFromHex("e306928Z").ok());   // Not hex.
  EXPECT_FALSE(CrcFromHex("E3069283").ok());   // Uppercase not emitted.
}

TEST(TsvEscape, RoundTripsControlCharacters) {
  const std::string cases[] = {
      "",         "plain",       "has\ttab",        "has\nnewline",
      "cr\rhere", "back\\slash", std::string("nul\0byte", 8),
      "\\t not a tab",
  };
  for (const std::string& raw : cases) {
    std::string escaped = EscapeTsvField(raw);
    EXPECT_EQ(escaped.find('\t'), std::string::npos);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    Result<std::string> back = UnescapeTsvField(escaped);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, raw);
  }
}

TEST(TsvEscape, RejectsMalformedEscapes) {
  EXPECT_FALSE(UnescapeTsvField("dangling\\").ok());
  EXPECT_FALSE(UnescapeTsvField("bad\\x").ok());
}

TEST(AtomicWrite, WritesAndReplaces) {
  std::string path = TempPath("io_test_atomic.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "first").ok());
  Result<std::string> read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "first");
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  EXPECT_EQ(*ReadFile(path), "second");
  std::remove(path.c_str());
}

TEST(AtomicWrite, FailureAtEverySiteLeavesDestinationIntact) {
  std::string path = TempPath("io_test_atomic_fp.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "intact").ok());
  const char* sites[] = {"io.atomic.open", "io.atomic.write",
                         "io.atomic.enospc", "io.atomic.fsync",
                         "io.atomic.rename"};
  const std::string replacement(4096, 'x');
  for (const char* site : sites) {
    failpoints::Scoped fp(site);
    Status s = AtomicWriteFile(path, replacement);
    EXPECT_FALSE(s.ok()) << site;
    Result<std::string> read = ReadFile(path);
    ASSERT_TRUE(read.ok()) << site;
    EXPECT_EQ(*read, "intact") << site;
  }
  // Once the failpoints are gone the same write goes through.
  ASSERT_TRUE(AtomicWriteFile(path, replacement).ok());
  EXPECT_EQ(ReadFile(path)->size(), replacement.size());
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(AtomicWrite, ShortWriteLeavesTornTempOnly) {
  std::string path = TempPath("io_test_atomic_torn.txt");
  std::remove(path.c_str());
  failpoints::Scoped fp("io.atomic.write");
  Status s = AtomicWriteFile(path, std::string(1000, 'y'));
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(FileExists(path));  // Never created the destination.
  // The torn temp file holds a strict prefix (the simulated crash).
  Result<std::string> torn = ReadFile(path + ".tmp");
  ASSERT_TRUE(torn.ok());
  EXPECT_EQ(torn->size(), 500u);
  std::remove((path + ".tmp").c_str());
}

TEST(MakeDirs, CreatesNestedAndToleratesExisting) {
  std::string base = TempPath("io_test_dirs");
  std::string nested = base + "/a/b/c";
  ASSERT_TRUE(MakeDirs(nested).ok());
  ASSERT_TRUE(MakeDirs(nested).ok());  // Idempotent.
  ASSERT_TRUE(AtomicWriteFile(nested + "/f", "x").ok());
  EXPECT_TRUE(FileExists(nested + "/f"));
  EXPECT_FALSE(MakeDirs("").ok());
}

TEST(ReadFile, MissingFileIsNotFound) {
  Result<std::string> r = ReadFile(TempPath("io_test_missing_file"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dire::io
