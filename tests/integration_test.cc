// End-to-end scenarios exercising the whole stack: parse -> analyze ->
// transform -> evaluate -> inspect, the way the example applications and a
// downstream query planner would.

#include <gtest/gtest.h>

#include "dire.h"
#include "eval/magic.h"
#include "tests/test_util.h"

namespace dire {
namespace {

using dire::testing::ParseOrDie;

// The marketing pipeline: analysis says independent, the rewrite evaluates
// in one pass and agrees tuple-for-tuple with the recursive fixpoint.
TEST(Integration, MarketingPipeline) {
  ast::Program rules = ParseOrDie(dire::testing::kBuys);
  core::RecursionAnalysis analysis =
      core::AnalyzeRecursion(rules, "buys").value();
  ASSERT_TRUE(analysis.strongly_data_independent());

  Result<core::RewriteResult> rewrite =
      core::BoundedRewrite(analysis.definition);
  ASSERT_TRUE(rewrite.ok());
  ASSERT_EQ(rewrite->outcome, core::RewriteResult::Outcome::kBounded);

  storage::Database db_rec;
  storage::Database db_flat;
  Rng r1(321);
  Rng r2(321);
  ASSERT_TRUE(
      storage::MakeConsumerData(&db_rec, 200, 40, 3, 0.15, &r1).ok());
  ASSERT_TRUE(
      storage::MakeConsumerData(&db_flat, 200, 40, 3, 0.15, &r2).ok());

  eval::Evaluator recursive(&db_rec);
  ASSERT_TRUE(recursive.Evaluate(rules).ok());
  eval::Evaluator flat(&db_flat);
  ASSERT_TRUE(flat.EvaluateOnce(rewrite->rewritten.rules).ok());

  EXPECT_EQ(db_rec.DumpRelation("buys"), db_flat.DumpRelation("buys"));
  EXPECT_GT(db_rec.Find("buys")->size(), 0u);
}

// The planner loop of §6 on a data dependent query: hoist, then evaluate,
// and confirm the hoisted program derives the same relation faster in terms
// of rule firings.
TEST(Integration, HoistedEvaluationAgreesAndDoesLessWork) {
  ast::Program rules = ParseOrDie(dire::testing::kExample61);
  ast::RecursiveDefinition def =
      ast::MakeDefinition(rules, "t").value();
  core::HoistResult hoisted =
      core::HoistUnconnectedPredicates(def).value();
  ASSERT_TRUE(hoisted.changed);

  storage::Database db_orig;
  storage::Database db_hoist;
  for (storage::Database* db : {&db_orig, &db_hoist}) {
    Rng rng(777);
    ASSERT_TRUE(storage::MakeHoistingData(db, 60, 150, 30, &rng).ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(db->AddRow("t0", {StrFormat("n%d", i),
                                    StrFormat("n%d", 59 - i)}).ok());
    }
  }

  eval::Evaluator orig(&db_orig);
  Result<eval::EvalStats> so = orig.Evaluate(rules);
  ASSERT_TRUE(so.ok());
  eval::Evaluator opt(&db_hoist);
  Result<eval::EvalStats> sh = opt.Evaluate(hoisted.program);
  ASSERT_TRUE(sh.ok());

  EXPECT_EQ(db_orig.DumpRelation("t"), db_hoist.DumpRelation("t"));
}

// Analyze + iteration bound: evaluating with the planned bound and no
// convergence test reaches the same fixpoint as semi-naive.
TEST(Integration, IterationBoundEvaluation) {
  ast::Program rules = ParseOrDie(dire::testing::kBuys);
  ast::RecursiveDefinition def =
      ast::MakeDefinition(rules, "buys").value();
  int rounds = core::PlanIterationBound(def).value();

  storage::Database db_fix;
  storage::Database db_bound;
  for (storage::Database* db : {&db_fix, &db_bound}) {
    Rng rng(555);
    ASSERT_TRUE(storage::MakeConsumerData(db, 120, 30, 2, 0.2, &rng).ok());
  }
  eval::Evaluator fix(&db_fix);
  ASSERT_TRUE(fix.Evaluate(rules).ok());

  eval::EvalOptions opts;
  opts.mode = eval::EvalOptions::Mode::kNaive;
  opts.max_iterations = rounds;
  opts.stop_on_fixpoint = false;
  eval::Evaluator bounded(&db_bound, opts);
  ASSERT_TRUE(bounded.Evaluate(rules).ok());

  EXPECT_EQ(db_fix.DumpRelation("buys"), db_bound.DumpRelation("buys"));
}

// CSV in, recursive query, magic-set point lookup, CSV out.
TEST(Integration, CsvToQueryRoundTrip) {
  storage::Database db;
  ASSERT_TRUE(storage::LoadCsv(&db, "e",
                               "a,b\nb,c\nc,d\nx,y\n").ok());
  ast::Program rules = ParseOrDie(dire::testing::kTransitiveClosure);
  Result<ast::Atom> query = parser::ParseAtom("t(a, Y)");
  ASSERT_TRUE(query.ok());
  Result<eval::QueryAnswer> ans = eval::AnswerQuery(&db, rules, *query);
  ASSERT_TRUE(ans.ok()) << ans.status();
  EXPECT_EQ(ans->tuples.size(), 3u);  // b, c, d — not y.

  Result<std::string> csv = storage::DumpCsv(db, "e");
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(*csv, "a,b\nb,c\nc,d\nx,y\n");
}

// A full analysis report end to end through the parser, suitable for the
// CLI's --analyze output.
TEST(Integration, ReportIsStableAcrossReparse) {
  core::RecursionAnalysis first =
      core::AnalyzeRecursion(ParseOrDie(dire::testing::kExample61), "t")
          .value();
  // Re-parse the printed rules and re-analyze: verdicts must not change.
  std::string printed;
  for (const ast::Rule& r : first.definition.recursive_rules) {
    printed += r.ToString() + "\n";
  }
  for (const ast::Rule& r : first.definition.exit_rules) {
    printed += r.ToString() + "\n";
  }
  core::RecursionAnalysis second =
      core::AnalyzeRecursion(ParseOrDie(printed), "t").value();
  EXPECT_EQ(first.strong.verdict, second.strong.verdict);
  EXPECT_EQ(first.chains.has_chain_generating_path,
            second.chains.has_chain_generating_path);
}

// DOT output for every catalog-style definition parses structurally: one
// node line per A/V node, wrapped in a graph block.
TEST(Integration, DotOutputWellFormed) {
  core::RecursionAnalysis a =
      core::AnalyzeRecursion(ParseOrDie(dire::testing::kExample51), "t")
          .value();
  std::string dot = a.graph.ToDot();
  EXPECT_EQ(dot.find("graph av_graph {"), 0u);
  EXPECT_EQ(dot.back(), '\n');
  size_t node_lines = 0;
  for (size_t pos = dot.find("shape="); pos != std::string::npos;
       pos = dot.find("shape=", pos + 1)) {
    ++node_lines;
  }
  EXPECT_EQ(node_lines, a.graph.nodes().size());
}

}  // namespace
}  // namespace dire
