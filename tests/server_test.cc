#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/obs.h"
#include "server/protocol.h"
#include "tests/prom_validator.h"
#include "tests/test_util.h"

namespace dire::server {
namespace {

constexpr std::string_view kTcProgram = R"(
  t(X, Y) :- e(X, Z), t(Z, Y).
  t(X, Y) :- e(X, Y).
)";

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// A blocking line-protocol client against 127.0.0.1:port.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }
  int fd() const { return fd_; }

  void Send(const std::string& line) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) break;  // Peer closed mid-send (e.g. oversized-line test).
      sent += static_cast<size_t>(n);
    }
  }

  // Reads one response line (without the newline).
  std::string ReadLine() {
    std::string line;
    size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return line;  // EOF mid-line: surface what we have.
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return line;
  }

  // One single-line request/response round trip.
  std::string RoundTrip(const std::string& line) {
    Send(line);
    return ReadLine();
  }

  // A QUERY/STATS round trip: status line plus body lines up to END.
  std::vector<std::string> RoundTripMulti(const std::string& line) {
    Send(line);
    std::vector<std::string> lines;
    do {
      lines.push_back(ReadLine());
    } while (lines.back() != "END" && !lines.back().empty());
    return lines;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

// Owns one in-process server: Run() on a background thread, torn down in
// the destructor.
class TestServer {
 public:
  explicit TestServer(ServerConfig config,
                      std::string_view program_text = kTcProgram) {
    config.host = "127.0.0.1";
    config.port = 0;
    Result<std::unique_ptr<Server>> created =
        Server::Create(config, dire::testing::ParseOrDie(program_text),
                       std::string(program_text));
    EXPECT_TRUE(created.ok()) << created.status();
    server_ = std::move(created).value();
    runner_ = std::thread([this] { run_status_ = server_->Run(); });
  }

  ~TestServer() {
    server_->Shutdown();
    runner_.join();
    EXPECT_TRUE(run_status_.ok()) << run_status_;
  }

  Server& server() { return *server_; }
  int port() const { return server_->port(); }

  void WaitReady() {
    while (!server_->ready()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

 private:
  std::unique_ptr<Server> server_;
  std::thread runner_;
  Status run_status_;
};

TEST(ServerProtocol, ParseRequestCoversVerbsAndRejectsGarbage) {
  EXPECT_EQ(ParseRequest("STATS")->kind, Request::Kind::kStats);
  EXPECT_EQ(ParseRequest("HEALTH")->kind, Request::Kind::kHealth);
  EXPECT_EQ(ParseRequest("QUIT")->kind, Request::Kind::kQuit);
  EXPECT_EQ(ParseRequest("SLEEP 25")->sleep_ms, 25);
  EXPECT_EQ(ParseRequest("QUERY t(a, X)")->kind, Request::Kind::kQuery);
  EXPECT_EQ(ParseRequest("ADD e(a, b)")->kind, Request::Kind::kAdd);
  EXPECT_EQ(ParseRequest("RETRACT e(a, b)")->kind, Request::Kind::kRetract);

  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("NOPE x").ok());
  EXPECT_FALSE(ParseRequest("STATS now").ok());
  EXPECT_FALSE(ParseRequest("SLEEP soon").ok());
  EXPECT_FALSE(ParseRequest("QUERY ").ok());
  EXPECT_FALSE(ParseRequest("ADD e(X, b)").ok());  // Writes must be ground.
  EXPECT_FALSE(ParseRequest("RETRACT e(X, b)").ok());
}

TEST(ServerProtocol, StatusLines) {
  EXPECT_EQ(OverloadedLine(50), "OVERLOADED retry-after-ms=50");
  EXPECT_EQ(NotReadyLine(25), "NOTREADY retry-after-ms=25");
  std::string error = ErrorLine(Status::InvalidArgument("multi\nline"));
  EXPECT_EQ(error.find('\n'), std::string::npos);
  EXPECT_EQ(error.rfind("ERROR ", 0), 0u);
}

TEST(Server, QueryAddRetractRoundTrip) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_roundtrip");
  TestServer ts(config);
  ts.WaitReady();
  Client client(ts.port());
  ASSERT_TRUE(client.connected());

  EXPECT_EQ(client.RoundTrip("ADD e(a, b)"), "OK added=1");
  EXPECT_EQ(client.RoundTrip("ADD e(b, c)"), "OK added=1");
  EXPECT_EQ(client.RoundTrip("ADD e(a, b)"), "OK added=0");  // Idempotent.

  std::vector<std::string> answer = client.RoundTripMulti("QUERY t(a, X)");
  ASSERT_EQ(answer.size(), 4u);  // Status, two tuples, END.
  EXPECT_EQ(answer[0], "OK 2");
  EXPECT_EQ(answer[1], "t(a, b)");
  EXPECT_EQ(answer[2], "t(a, c)");
  EXPECT_EQ(answer[3], "END");

  EXPECT_EQ(client.RoundTrip("RETRACT e(b, c)"), "OK removed=1");
  EXPECT_EQ(client.RoundTrip("RETRACT e(b, c)"), "OK removed=0");
  answer = client.RoundTripMulti("QUERY t(a, X)");
  ASSERT_EQ(answer.size(), 3u);
  EXPECT_EQ(answer[0], "OK 1");  // t(a, c) is gone with its support.
  EXPECT_EQ(answer[1], "t(a, b)");

  // Unknown relations answer empty rather than erroring.
  answer = client.RoundTripMulti("QUERY nothing(X)");
  EXPECT_EQ(answer[0], "OK 0");

  EXPECT_EQ(client.RoundTrip("HEALTH").rfind("OK ready=1", 0), 0u);
}

TEST(Server, WritesToDerivedPredicatesAreRejected) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_derived");
  TestServer ts(config);
  ts.WaitReady();
  Client client(ts.port());
  ASSERT_TRUE(client.connected());

  std::string response = client.RoundTrip("ADD t(a, b)");
  EXPECT_EQ(response.rfind("ERROR ", 0), 0u) << response;
  EXPECT_NE(response.find("derived by rules"), std::string::npos);
  EXPECT_EQ(client.RoundTrip("RETRACT t(a, b)").rfind("ERROR ", 0), 0u);
}

TEST(Server, NotReadyWindowDuringRecovery) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_notready");
  config.recovery_delay_ms_for_test = 500;
  config.admission.retry_after_ms = 35;
  TestServer ts(config);
  // The listener is up before recovery finishes: probes answer, work is
  // refused with a retry hint instead of blocking or failing opaquely.
  Client client(ts.port());
  ASSERT_TRUE(client.connected());
  ASSERT_FALSE(ts.server().ready());
  EXPECT_EQ(client.RoundTrip("HEALTH").rfind("OK ready=0", 0), 0u);
  // Retry hints are jittered deterministically (seed 1, one ordinal per
  // hint), so the exact values are reproducible.
  EXPECT_EQ(client.RoundTrip("QUERY t(a, X)"),
            "NOTREADY retry-after-ms=" +
                std::to_string(JitteredRetryAfterMs(35, 1, 0)));
  EXPECT_EQ(client.RoundTrip("ADD e(a, b)"),
            "NOTREADY retry-after-ms=" +
                std::to_string(JitteredRetryAfterMs(35, 1, 1)));

  ts.WaitReady();
  EXPECT_EQ(client.RoundTrip("HEALTH").rfind("OK ready=1", 0), 0u);
  EXPECT_EQ(client.RoundTripMulti("QUERY t(a, X)")[0], "OK 0");
}

TEST(Server, OverloadShedsDeterministically) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_overload");
  config.admission.max_inflight = 1;
  config.admission.max_queue = 1;
  config.admission.retry_after_ms = 40;
  TestServer ts(config);
  ts.WaitReady();

  uint64_t rejected_before =
      obs::GetCounter("dire_server_rejected_total", "",
                      {{"reason", "overloaded"}})
          ->value();

  // Saturate: one SLEEP executing, one queued. SLEEP holds its admission
  // slot exactly like a long query, without timing-dependent work.
  Client executing(ts.port()), queued(ts.port());
  ASSERT_TRUE(executing.connected());
  ASSERT_TRUE(queued.connected());
  executing.Send("SLEEP 2000");
  queued.Send("SLEEP 2000");
  // Admission outstanding is externally visible via HEALTH; wait until both
  // sleeps hold their slots so the next request is deterministically shed.
  Client prober(ts.port());
  ASSERT_TRUE(prober.connected());
  while (prober.RoundTrip("HEALTH").rfind("OK ready=1 inflight=2", 0) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Everything admitted is spoken for: shed, don't queue unboundedly.
  int observed_overloaded = 0;
  for (int i = 0; i < 3; ++i) {
    Client shed_client(ts.port());
    ASSERT_TRUE(shed_client.connected());
    std::string response = shed_client.RoundTrip("QUERY t(a, X)");
    EXPECT_EQ(response,
              "OVERLOADED retry-after-ms=" +
                  std::to_string(JitteredRetryAfterMs(
                      40, 1, static_cast<uint64_t>(observed_overloaded))));
    ++observed_overloaded;
  }

  // HEALTH and STATS stay responsive under full saturation, and the
  // rejection counters agree with what clients observed.
  std::vector<std::string> stats = prober.RoundTripMulti("STATS");
  bool saw_rejected = false;
  for (const std::string& line : stats) {
    if (line.rfind("rejected_total ", 0) == 0) {
      saw_rejected = true;
      EXPECT_EQ(line, "rejected_total " + std::to_string(observed_overloaded));
    }
  }
  EXPECT_TRUE(saw_rejected);
  if (obs::kEnabled) {
    // Counters compile to no-ops under -DDIRE_OBS=OFF; only the STATS line
    // above is load-bearing there.
    uint64_t rejected_after =
        obs::GetCounter("dire_server_rejected_total", "",
                        {{"reason", "overloaded"}})
            ->value();
    EXPECT_EQ(rejected_after - rejected_before,
              static_cast<uint64_t>(observed_overloaded));
  }

  // The sleeps complete normally; their admission slots were never stolen.
  EXPECT_EQ(executing.ReadLine(), "OK slept=2000");
  EXPECT_EQ(queued.ReadLine(), "OK slept=2000");
}

TEST(Server, RequestDeadlineTripsToTimeout) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_deadline");
  config.request_timeout_ms = 50;
  TestServer ts(config);
  ts.WaitReady();
  Client client(ts.port());
  ASSERT_TRUE(client.connected());

  std::string response = client.RoundTrip("SLEEP 5000");
  EXPECT_EQ(response.rfind("ERROR ", 0), 0u) << response;
  EXPECT_NE(response.find("deadline"), std::string::npos) << response;

  std::vector<std::string> stats = client.RoundTripMulti("STATS");
  EXPECT_NE(std::find(stats.begin(), stats.end(), "timed_out_total 1"),
            stats.end());
}

TEST(Server, TupleBudgetDegradesToPartial) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_partial");
  config.request_max_tuples = 1;
  config.partial_on_exhaustion = true;
  TestServer ts(config);
  ts.WaitReady();
  Client client(ts.port());
  ASSERT_TRUE(client.connected());

  // The writes themselves degrade to PARTIAL once re-derivation produces
  // more than the budget — the commit is durable either way.
  std::string first = client.RoundTrip("ADD e(a, b)");
  EXPECT_TRUE(first.rfind("OK added=1", 0) == 0 ||
              first.rfind("PARTIAL added=1", 0) == 0)
      << first;
  std::string second = client.RoundTrip("ADD e(b, c)");
  EXPECT_EQ(second.rfind("PARTIAL added=1 reason=", 0), 0u) << second;

  // A two-tuple relation under a one-tuple budget: a sound prefix plus the
  // PARTIAL marker, not an error and not silence.
  std::vector<std::string> answer = client.RoundTripMulti("QUERY e(X, Y)");
  ASSERT_EQ(answer.size(), 3u);
  EXPECT_EQ(answer[0].rfind("PARTIAL 1 reason=", 0), 0u) << answer[0];
  EXPECT_EQ(answer[1], "e(a, b)");
  EXPECT_EQ(answer[2], "END");

  std::vector<std::string> stats = client.RoundTripMulti("STATS");
  bool saw_partial = false;
  for (const std::string& line : stats) {
    if (line.rfind("partial_total ", 0) == 0) {
      saw_partial = true;
      EXPECT_NE(line, "partial_total 0");
    }
  }
  EXPECT_TRUE(saw_partial);
}

TEST(Server, TupleBudgetErrorsWhenPartialNotRequested) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_exhaust_error");
  config.request_max_tuples = 1;
  config.partial_on_exhaustion = false;
  TestServer ts(config);
  ts.WaitReady();
  Client client(ts.port());
  ASSERT_TRUE(client.connected());
  client.RoundTrip("ADD e(a, b)");
  client.RoundTrip("ADD e(b, c)");
  std::string response = client.RoundTrip("QUERY e(X, Y)");
  EXPECT_EQ(response.rfind("ERROR ", 0), 0u) << response;
}

TEST(Server, RetractDegradesToPartialWithoutMaintenance) {
  // Regression for the pre-maintenance write path (--no-maintain): a
  // retraction drops every derived relation and re-derives from the base
  // facts, charging the WHOLE fixpoint — not just the retraction's own
  // consequences — against the request budget. On a chain a-b-c-d-f the
  // post-retract fixpoint alone holds 6 tuples, so a 5-tuple budget
  // degrades the acknowledgement to PARTIAL even though the commit is
  // durable and exact.
  ServerConfig config;
  config.data_dir = FreshDir("server_test_retract_no_maintain");
  config.request_max_tuples = 5;
  config.partial_on_exhaustion = true;
  config.maintain = false;
  TestServer ts(config);
  ts.WaitReady();
  Client client(ts.port());
  ASSERT_TRUE(client.connected());

  for (const char* fact :
       {"ADD e(a, b)", "ADD e(b, c)", "ADD e(c, d)", "ADD e(d, f)"}) {
    client.RoundTrip(fact);
  }
  std::string response = client.RoundTrip("RETRACT e(d, f)");
  EXPECT_EQ(response.rfind("PARTIAL removed=1 reason=", 0), 0u) << response;

  std::vector<std::string> stats = client.RoundTripMulti("STATS");
  EXPECT_NE(std::find(stats.begin(), stats.end(), "maintain 0"), stats.end());
  EXPECT_NE(std::find(stats.begin(), stats.end(), "ivm_applied_total 0"),
            stats.end());
}

TEST(Server, MaintainedRetractStaysExactUnderTupleBudget) {
  // The same scenario with maintenance on (the default): only the write's
  // own consequences are derived and charged, so the retraction — which
  // deletes four unreachable t-tuples and inserts nothing — stays well
  // under the 5-tuple budget and acknowledges exactly.
  ServerConfig config;
  config.data_dir = FreshDir("server_test_retract_maintained");
  config.request_max_tuples = 5;
  config.partial_on_exhaustion = true;
  TestServer ts(config);
  ts.WaitReady();
  Client client(ts.port());
  ASSERT_TRUE(client.connected());

  for (const char* fact :
       {"ADD e(a, b)", "ADD e(b, c)", "ADD e(c, d)", "ADD e(d, f)"}) {
    EXPECT_EQ(client.RoundTrip(fact), "OK added=1");
  }
  EXPECT_EQ(client.RoundTrip("RETRACT e(d, f)"), "OK removed=1");

  // The maintained fixpoint is the chain a-b-c-d: a reaches b, c, d and —
  // after the retraction — no longer f. (The full six-tuple fixpoint would
  // trip the 5-tuple read budget, so query the bound prefix.)
  std::vector<std::string> answer = client.RoundTripMulti("QUERY t(a, Y)");
  ASSERT_EQ(answer.size(), 5u);
  EXPECT_EQ(answer[0], "OK 3");
  EXPECT_EQ(answer.back(), "END");
  for (const std::string& row : answer) {
    EXPECT_EQ(row.find("f"), std::string::npos) << row;
  }

  std::vector<std::string> stats = client.RoundTripMulti("STATS");
  EXPECT_NE(std::find(stats.begin(), stats.end(), "maintain 1"), stats.end());
  EXPECT_NE(std::find(stats.begin(), stats.end(), "ivm_applied_total 5"),
            stats.end());
  EXPECT_NE(std::find(stats.begin(), stats.end(), "ivm_fallbacks_total 0"),
            stats.end());
}

TEST(Server, ExpensiveQueriesAreRejectedPermanently) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_pricing");
  config.admission.max_query_cost = 2;
  TestServer ts(config);
  ts.WaitReady();
  Client client(ts.port());
  ASSERT_TRUE(client.connected());

  for (const char* fact :
       {"ADD e(a, b)", "ADD e(b, c)", "ADD e(c, d)", "ADD e(d, f)"}) {
    EXPECT_EQ(client.RoundTrip(fact).substr(0, 2), "OK");
  }
  // The full scan of e is now priced above the ceiling: a permanent ERROR
  // (retrying won't make the query cheaper), not OVERLOADED.
  std::string response = client.RoundTrip("QUERY e(X, Y)");
  EXPECT_EQ(response.rfind("ERROR ", 0), 0u) << response;
  EXPECT_NE(response.find("query too expensive"), std::string::npos);

  std::vector<std::string> stats = client.RoundTripMulti("STATS");
  EXPECT_NE(std::find(stats.begin(), stats.end(), "too_expensive_total 1"),
            stats.end());
}

TEST(Server, StatePersistsAcrossServerGenerations) {
  std::string dir = FreshDir("server_test_generations");
  {
    ServerConfig config;
    config.data_dir = dir;
    TestServer ts(config);
    ts.WaitReady();
    Client client(ts.port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.RoundTrip("ADD e(a, b)"), "OK added=1");
    EXPECT_EQ(client.RoundTrip("ADD e(b, c)"), "OK added=1");
  }  // Graceful shutdown: drains, folds the WAL, releases the lock.
  {
    ServerConfig config;
    config.data_dir = dir;
    TestServer ts(config);
    ts.WaitReady();
    Client client(ts.port());
    ASSERT_TRUE(client.connected());
    std::vector<std::string> answer = client.RoundTripMulti("QUERY t(a, X)");
    ASSERT_EQ(answer.size(), 4u);
    EXPECT_EQ(answer[0], "OK 2");  // Fixpoint rebuilt from recovered facts.
    EXPECT_EQ(answer[1], "t(a, b)");
    EXPECT_EQ(answer[2], "t(a, c)");
  }
}

// ---------------------------------------------------------------------------
// Protocol hardening: hostile or broken clients must never crash the server,
// leak an admission slot, or corrupt its counters.
// ---------------------------------------------------------------------------

TEST(Server, BinaryJunkAndGarbageCommandsAnswerErrors) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_junk");
  TestServer ts(config);
  ts.WaitReady();

  Client junk(ts.port());
  ASSERT_TRUE(junk.connected());
  // Binary garbage, control characters, an embedded NUL: each line is
  // answered with an ERROR, never a crash or a hang.
  junk.Send(std::string("\x01\x02\xff\xfe\x00 garbage", 13));
  EXPECT_EQ(junk.ReadLine().rfind("ERROR ", 0), 0u);
  junk.Send("ADD");
  EXPECT_EQ(junk.ReadLine().rfind("ERROR ", 0), 0u);
  junk.Send("QUERY");
  EXPECT_EQ(junk.ReadLine().rfind("ERROR ", 0), 0u);
  junk.Send("QUERY t(a, X) trailing tokens everywhere");
  EXPECT_EQ(junk.ReadLine().rfind("ERROR ", 0), 0u);
  junk.Send("ADD e(unclosed");
  EXPECT_EQ(junk.ReadLine().rfind("ERROR ", 0), 0u);
  // The connection survives the abuse and still answers real requests.
  EXPECT_EQ(junk.RoundTrip("ADD e(a, b)"), "OK added=1");

  // The server as a whole is unharmed. (Admission slots release just after
  // the response is written, so poll briefly for inflight to settle.)
  Client checker(ts.port());
  ASSERT_TRUE(checker.connected());
  while (checker.RoundTrip("HEALTH").rfind("OK ready=1 inflight=0", 0) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Server, OversizedAndUnterminatedLinesAreBounded) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_oversize");
  TestServer ts(config);
  ts.WaitReady();

  // An unterminated line larger than the 1 MiB request bound: the server
  // answers one ERROR and closes, rather than buffering without limit.
  Client flooder(ts.port());
  ASSERT_TRUE(flooder.connected());
  std::string flood(2 * 1024 * 1024, 'a');
  flooder.Send(flood);  // Send appends '\n', but the bound trips first.
  std::string response = flooder.ReadLine();
  EXPECT_EQ(response.rfind("ERROR ", 0), 0u) << response;
  EXPECT_NE(response.find("1 MiB"), std::string::npos) << response;
  EXPECT_EQ(flooder.ReadLine(), "");  // Closed.

  // Mid-request disconnects (partial line, then EOF) are shrugged off.
  for (int i = 0; i < 3; ++i) {
    Client aborter(ts.port());
    ASSERT_TRUE(aborter.connected());
    ASSERT_EQ(::send(aborter.fd(), "QUE", 3, 0), 3);
  }  // Destructor closes mid-request.

  // No slot leaked, no counter corrupted, writes still work. (Admission
  // slots release just after the response is written; poll to settle.)
  Client checker(ts.port());
  ASSERT_TRUE(checker.connected());
  EXPECT_EQ(checker.RoundTrip("ADD e(a, b)"), "OK added=1");
  while (checker.RoundTrip("HEALTH").rfind("OK ready=1 inflight=0", 0) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Server, MismatchedArityWriteIsRejectedBeforeTheWal) {
  std::string dir = FreshDir("server_test_arity");
  {
    ServerConfig config;
    config.data_dir = dir;
    TestServer ts(config);
    ts.WaitReady();
    Client client(ts.port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.RoundTrip("ADD e(a, b)"), "OK added=1");
    // Same relation, wrong arity: refused before anything is appended, so
    // no poison record can break every later replay.
    std::string response = client.RoundTrip("ADD e(a, b, c)");
    EXPECT_EQ(response.rfind("ERROR ", 0), 0u) << response;
    EXPECT_NE(response.find("arity"), std::string::npos) << response;
    EXPECT_EQ(client.RoundTrip("RETRACT e(x)").rfind("ERROR ", 0), 0u);
  }
  {
    // The directory recovers cleanly: the rejected writes left no trace.
    ServerConfig config;
    config.data_dir = dir;
    TestServer ts(config);
    ts.WaitReady();
    Client client(ts.port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.RoundTripMulti("QUERY e(X, Y)")[0], "OK 1");
  }
}

TEST(Server, IdleConnectionsAreReaped) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_idle");
  config.idle_timeout_ms = 200;
  TestServer ts(config);
  ts.WaitReady();

  Client idler(ts.port());
  ASSERT_TRUE(idler.connected());
  EXPECT_EQ(idler.RoundTrip("HEALTH").rfind("OK ready=1", 0), 0u);
  // Say nothing; the server hangs up on us.
  EXPECT_EQ(idler.ReadLine(), "");

  Client checker(ts.port());
  ASSERT_TRUE(checker.connected());
  std::vector<std::string> stats = checker.RoundTripMulti("STATS");
  bool saw = false;
  for (const std::string& line : stats) {
    if (line.rfind("idle_disconnects_total ", 0) == 0) {
      saw = true;
      EXPECT_NE(line, "idle_disconnects_total 0");
    }
  }
  EXPECT_TRUE(saw);
}

// --- Observability: HTTP endpoints, access log, slow-query log -----------

struct HttpResult {
  int status = 0;
  std::string body;
};

// Minimal HTTP/1.1 GET against the observability listener; reads to EOF
// (the server answers Connection: close).
HttpResult HttpGet(int port, const std::string& target,
                   const std::string& method = "GET") {
  HttpResult result;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return result;
  }
  std::string request = method + " " + target +
                        " HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  if (raw.rfind("HTTP/1.1 ", 0) == 0) {
    result.status = std::atoi(raw.c_str() + 9);
  }
  size_t body = raw.find("\r\n\r\n");
  if (body != std::string::npos) result.body = raw.substr(body + 4);
  return result;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ServerHttp, EndpointsServeMetricsHealthStatusAndTraces) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_http");
  config.http_port = 0;
  TestServer ts(config);
  ts.WaitReady();
  ASSERT_GT(ts.server().http_port(), 0);
  Client client(ts.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.RoundTrip("ADD e(a, b)"), "OK added=1");
  EXPECT_EQ(client.RoundTripMulti("QUERY t(a, X)")[0], "OK 1");

  int http = ts.server().http_port();
  HttpResult metrics = HttpGet(http, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  std::string error = test::ValidatePrometheusText(metrics.body);
  EXPECT_EQ(error, "");
  if (obs::kEnabled) {
    EXPECT_NE(metrics.body.find("dire_server_request_exec_us"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("dire_build_info"), std::string::npos);
  }

  HttpResult healthz = HttpGet(http, "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"ready\":true"), std::string::npos);
  EXPECT_NE(healthz.body.find("\"live\":true"), std::string::npos);
  EXPECT_NE(healthz.body.find("\"version\":\""), std::string::npos);
  EXPECT_NE(healthz.body.find("\"uptime_s\":"), std::string::npos);

  HttpResult statusz = HttpGet(http, "/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(statusz.body.find("\"series\":{"), std::string::npos);
  EXPECT_NE(statusz.body.find("\"qps\":["), std::string::npos);
  EXPECT_NE(statusz.body.find("\"writes_total\":1"), std::string::npos);

  HttpResult tracez = HttpGet(http, "/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("\"spans\":["), std::string::npos);
  EXPECT_NE(tracez.body.find("\"verb\":\"QUERY\""), std::string::npos);
  EXPECT_NE(tracez.body.find("\"verb\":\"ADD\""), std::string::npos);

  EXPECT_EQ(HttpGet(http, "/nope").status, 404);
  EXPECT_EQ(HttpGet(http, "/metrics", "POST").status, 405);

  // The wire protocol carries the same version/uptime (satellite of the
  // single-source-of-truth build version).
  std::string health = client.RoundTrip("HEALTH");
  EXPECT_NE(health.find(" version="), std::string::npos) << health;
  EXPECT_NE(health.find(" uptime_s="), std::string::npos) << health;
  std::vector<std::string> stats = client.RoundTripMulti("STATS");
  bool saw_version = false;
  for (const std::string& line : stats) {
    if (line.rfind("version ", 0) == 0) saw_version = true;
  }
  EXPECT_TRUE(saw_version);
}

TEST(ServerHttp, MetricsAnswerWhileSaturatedAndHealthzMapsReadiness) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_http_saturated");
  config.http_port = 0;
  config.admission.max_inflight = 1;
  config.admission.max_queue = 1;
  config.recovery_delay_ms_for_test = 800;
  TestServer ts(config);
  int http = ts.server().http_port();
  ASSERT_GT(http, 0);

  // During the NOTREADY recovery window the listener already answers;
  // readiness maps to the status code. Guard against the (slow-machine)
  // case where recovery finishes mid-fetch.
  bool ready_before = ts.server().ready();
  HttpResult early = HttpGet(http, "/healthz");
  if (!ready_before && !ts.server().ready()) {
    EXPECT_EQ(early.status, 503);
    EXPECT_NE(early.body.find("\"ready\":false"), std::string::npos);
    EXPECT_NE(early.body.find("\"live\":true"), std::string::npos);
  }
  ts.WaitReady();

  // Saturate every admission slot with held SLEEPs; the observability
  // plane must keep answering because it never competes for those slots.
  Client executing(ts.port()), queued(ts.port());
  ASSERT_TRUE(executing.connected());
  ASSERT_TRUE(queued.connected());
  executing.Send("SLEEP 2000");
  queued.Send("SLEEP 2000");
  Client prober(ts.port());
  ASSERT_TRUE(prober.connected());
  while (prober.RoundTrip("HEALTH").rfind("OK ready=1 inflight=2", 0) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  HttpResult metrics = HttpGet(http, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(test::ValidatePrometheusText(metrics.body), "");
  EXPECT_EQ(HttpGet(http, "/healthz").status, 200);
  EXPECT_EQ(HttpGet(http, "/statusz").status, 200);

  EXPECT_EQ(executing.ReadLine(), "OK slept=2000");
  EXPECT_EQ(queued.ReadLine(), "OK slept=2000");
}

TEST(ServerHttp, AccessLogRecordsEveryTrackedRequest) {
  std::string log_path =
      FreshDir("server_test_access_log_dir") + "_access.log";
  std::filesystem::remove(log_path);
  {
    ServerConfig config;
    config.data_dir = FreshDir("server_test_access_log");
    config.access_log = log_path;
    TestServer ts(config);
    ts.WaitReady();
    Client client(ts.port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.RoundTrip("ADD e(a, b)"), "OK added=1");
    EXPECT_EQ(client.RoundTrip("ADD e(b, c)"), "OK added=1");
    EXPECT_EQ(client.RoundTripMulti("QUERY t(a, X)")[0], "OK 2");
    EXPECT_EQ(client.RoundTrip("SLEEP 5"), "OK slept=5");
    // Probes are deliberately unlogged.
    EXPECT_EQ(client.RoundTrip("HEALTH").rfind("OK ready=1", 0), 0u);
  }  // Graceful shutdown: every admitted request's log line is flushed.

  std::string log = ReadFileOrDie(log_path);
  size_t lines = 0;
  for (char c : log) lines += c == '\n';
  EXPECT_EQ(lines, 4u) << log;
  EXPECT_NE(log.find("\"type\":\"request\""), std::string::npos);
  EXPECT_NE(log.find("\"verb\":\"QUERY\""), std::string::npos);
  EXPECT_NE(log.find("\"verb\":\"ADD\""), std::string::npos);
  EXPECT_NE(log.find("\"verb\":\"SLEEP\""), std::string::npos);
  EXPECT_NE(log.find("\"relation\":\"t\""), std::string::npos);
  EXPECT_NE(log.find("\"status\":\"OK\""), std::string::npos);
  EXPECT_NE(log.find("\"request_id\":1,"), std::string::npos);
  EXPECT_NE(log.find("\"request_id\":4,"), std::string::npos);
  EXPECT_EQ(log.find("HEALTH"), std::string::npos);
}

TEST(ServerHttp, SlowQueryLogCapturesJoinOrderWithCardinalities) {
  // A 150-node cycle makes t hold 22500 tuples, so QUERY t(X, Y) reliably
  // runs for more than the 1 ms threshold.
  std::string program(kTcProgram);
  for (int i = 0; i < 150; ++i) {
    program += "e(n" + std::to_string(i) + ", n" +
               std::to_string((i + 1) % 150) + ").\n";
  }
  std::string log_path =
      FreshDir("server_test_slow_log_dir") + "_access.log";
  std::filesystem::remove(log_path);
  {
    ServerConfig config;
    config.data_dir = FreshDir("server_test_slow");
    config.access_log = log_path;
    config.slow_query_ms = 1;
    TestServer ts(config, program);
    ts.WaitReady();
    Client client(ts.port());
    ASSERT_TRUE(client.connected());
    std::vector<std::string> answer = client.RoundTripMulti("QUERY t(X, Y)");
    EXPECT_EQ(answer[0], "OK 22500");
  }

  std::string log = ReadFileOrDie(log_path);
  size_t slow = log.find("\"type\":\"slow_query\"");
  ASSERT_NE(slow, std::string::npos) << log.substr(0, 2000);
  std::string entry = log.substr(slow, log.find('\n', slow) - slow);
  EXPECT_NE(entry.find("\"verb\":\"QUERY\""), std::string::npos);
  EXPECT_NE(entry.find("\"threshold_ms\":1"), std::string::npos);
  // The captured plan names the chosen join order and carries the cost
  // model's estimates next to the observed cardinalities.
  EXPECT_NE(entry.find("join order"), std::string::npos);
  EXPECT_NE(entry.find("est="), std::string::npos);
  EXPECT_NE(entry.find("actual="), std::string::npos);
}

TEST(TimeSeriesRing, SealsSlotsAndSerializesOldestFirst) {
  TimeSeriesRing ring;
  EXPECT_NE(ring.ToJson().find("\"samples\":0"), std::string::npos);
  ring.RecordRequest(100);
  ring.RecordRequest(200);
  ring.RecordShed();
  ring.Tick(/*queue_depth=*/3, /*repl_lag=*/7);
  ring.RecordRequest(50);
  ring.Tick(/*queue_depth=*/0, /*repl_lag=*/0);
  std::string json = ring.ToJson();
  EXPECT_NE(json.find("\"resolution_s\":1"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":2"), std::string::npos);
  EXPECT_NE(json.find("\"qps\":[2,1]"), std::string::npos);
  // 100 us lands in the log2 bucket whose upper bound is 127.
  EXPECT_NE(json.find("\"p50_us\":[127,63]"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\":[3,0]"), std::string::npos);
  EXPECT_NE(json.find("\"shed\":[1,0]"), std::string::npos);
  EXPECT_NE(json.find("\"repl_lag\":[7,0]"), std::string::npos);
}

TEST(Server, QuitClosesOnlyThatConnection) {
  ServerConfig config;
  config.data_dir = FreshDir("server_test_quit");
  TestServer ts(config);
  ts.WaitReady();
  Client quitter(ts.port());
  ASSERT_TRUE(quitter.connected());
  quitter.Send("QUIT");
  EXPECT_EQ(quitter.ReadLine(), "");  // Server closed the connection.

  Client survivor(ts.port());
  ASSERT_TRUE(survivor.connected());
  EXPECT_EQ(survivor.RoundTrip("HEALTH").rfind("OK ready=1", 0), 0u);
}

}  // namespace
}  // namespace dire::server
