// Observability subsystem: metrics registry semantics, log2 histogram
// bucket edges, concurrent counter increments, span nesting/ordering via
// parse-back of the Chrome trace JSON, exporter well-formedness (a real
// JSON parser, not substring checks), structured logging, and the no-op
// contract under -DDIRE_OBS=OFF.

#include <gtest/gtest.h>

#include <climits>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/log.h"
#include "base/obs.h"
#include "tests/prom_validator.h"

namespace dire {
namespace {

// --- Minimal JSON parser (tests only) ------------------------------------
//
// Parses the exporters' output back into a tree so the tests check real
// structure: balanced braces, legal escapes, and field types. Strict enough
// for well-formedness: throws std::runtime_error (caught by the ASSERT
// wrappers) on any syntax error.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = Value();
    SkipSpace();
    if (pos_ != text_.size()) throw std::runtime_error("trailing bytes");
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char Peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected eof");
    return text_[pos_];
  }
  void Expect(char c) {
    if (Peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' got '" +
                               Peek() + "'");
    }
    ++pos_;
  }

  JsonValue Value() {
    SkipSpace();
    char c = Peek();
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't' || c == 'f') return Bool();
    if (c == 'n') return Null();
    return Number();
  }

  JsonValue Object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    Expect('{');
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipSpace();
      JsonValue key = String();
      SkipSpace();
      Expect(':');
      v.object[key.string_value] = Value();
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  JsonValue Array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    Expect('[');
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(Value());
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  JsonValue String() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    Expect('"');
    while (true) {
      char c = Peek();
      ++pos_;
      if (c == '"') return v;
      if (static_cast<unsigned char>(c) < 0x20) {
        throw std::runtime_error("raw control character in string");
      }
      if (c != '\\') {
        v.string_value += c;
        continue;
      }
      char e = Peek();
      ++pos_;
      switch (e) {
        case '"': v.string_value += '"'; break;
        case '\\': v.string_value += '\\'; break;
        case '/': v.string_value += '/'; break;
        case 'b': v.string_value += '\b'; break;
        case 'f': v.string_value += '\f'; break;
        case 'n': v.string_value += '\n'; break;
        case 'r': v.string_value += '\r'; break;
        case 't': v.string_value += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else throw std::runtime_error("bad \\u digit");
          }
          // The exporters only \u-escape control characters; keep it simple.
          v.string_value += static_cast<char>(code & 0x7f);
          break;
        }
        default: throw std::runtime_error("illegal escape");
      }
    }
  }

  JsonValue Bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.bool_value = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.bool_value = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  JsonValue Null() {
    if (text_.compare(pos_, 4, "null") != 0) {
      throw std::runtime_error("bad literal");
    }
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue Number() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            (text_[pos_] >= '0' && text_[pos_] <= '9'))) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

JsonValue ParseJsonOrDie(const std::string& text) {
  try {
    return JsonParser(text).Parse();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "malformed JSON: " << e.what() << "\n" << text;
    return JsonValue{};
  }
}

// --- Histogram bucket edges ----------------------------------------------

TEST(Histogram, BucketIndexEdges) {
  using obs::Histogram;
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex((uint64_t{1} << 63) - 1), 63);
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 63), 64);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64);
}

TEST(Histogram, BucketUpperBounds) {
  using obs::Histogram;
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(63), (uint64_t{1} << 63) - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
  // Every value belongs to the bucket whose bound it does not exceed.
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{5}, uint64_t{1024},
                     UINT64_MAX - 1, UINT64_MAX}) {
    int i = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(i)) << v;
    if (i > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(i - 1)) << v;
    }
  }
}

TEST(Histogram, ObserveZeroMaxAndOverflowBuckets) {
  obs::Histogram h;
  h.Observe(0);
  h.Observe(UINT64_MAX);
  h.Observe(uint64_t{1} << 63);  // Overflow bucket's lower edge.
  if (!obs::kEnabled) {
    EXPECT_EQ(h.count(), 0u);
    return;
  }
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(64), 2u);
  // Sum wraps modulo 2^64; this documents the (accepted) wraparound.
  EXPECT_EQ(h.sum(), UINT64_MAX + (uint64_t{1} << 63));
}

// --- Counters and registry -----------------------------------------------

TEST(Metrics, CounterGaugeBasics) {
  obs::Counter c;
  c.Add();
  c.Add(41);
  obs::Gauge g;
  g.Set(-7);
  if (obs::kEnabled) {
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(g.value(), -7);
  } else {
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
  }
}

TEST(Metrics, RegistryReturnsStablePointers) {
  obs::Counter* a = obs::GetCounter("dire_test_stable_total", "help");
  obs::Counter* b = obs::GetCounter("dire_test_stable_total");
  EXPECT_EQ(a, b);
  obs::Counter* labeled = obs::GetCounter("dire_test_stable_total", nullptr,
                                          {{"shard", "1"}});
  if (obs::kEnabled) {
    EXPECT_NE(a, labeled);  // Distinct series of the same family.
  }
}

TEST(Metrics, KindMismatchYieldsInertDummy) {
  obs::GetCounter("dire_test_kind_total", "a counter");
  obs::Gauge* wrong = obs::GetGauge("dire_test_kind_total");
  ASSERT_NE(wrong, nullptr);  // Never null — safe to use, goes nowhere.
  wrong->Set(5);
  obs::Counter* still = obs::GetCounter("dire_test_kind_total");
  EXPECT_EQ(still->value(), 0u);
}

TEST(Metrics, ConcurrentCounterIncrementsAreExact) {
  obs::Counter* c = obs::GetCounter("dire_test_concurrent_total");
  const uint64_t before = c->value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  if (obs::kEnabled) {
    EXPECT_EQ(c->value() - before,
              static_cast<uint64_t>(kThreads) * kPerThread);
  } else {
    EXPECT_EQ(c->value(), 0u);
  }
}

TEST(Metrics, PrometheusTextShape) {
  obs::GetCounter("dire_test_prom_total", "counter help", {{"k", "v\"q"}})
      ->Add(3);
  obs::GetGauge("dire_test_prom_gauge", "gauge help")->Set(-5);
  obs::Histogram* h = obs::GetHistogram("dire_test_prom_hist", "hist help");
  h->Observe(0);
  h->Observe(5);
  std::string text = obs::PrometheusText();
  if (!obs::kEnabled) {
    EXPECT_TRUE(text.empty());
    return;
  }
  EXPECT_NE(text.find("# HELP dire_test_prom_total counter help"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dire_test_prom_total counter"),
            std::string::npos);
  // Prometheus label escaping: the quote inside the value is backslashed.
  EXPECT_NE(text.find("dire_test_prom_total{k=\"v\\\"q\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("dire_test_prom_gauge -5"), std::string::npos);
  // Histogram: cumulative buckets, +Inf, _sum, _count.
  EXPECT_NE(text.find("dire_test_prom_hist_bucket{le=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dire_test_prom_hist_bucket{le=\"7\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("dire_test_prom_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("dire_test_prom_hist_sum 5"), std::string::npos);
  EXPECT_NE(text.find("dire_test_prom_hist_count 2"), std::string::npos);
}

TEST(Metrics, PrometheusExpositionValidatesStrictly) {
  // A label value exercising all three legal escapes (quote, backslash,
  // newline) and a help text with backslash + newline: the validator must
  // accept the exposition and unescape the value back to these bytes.
  const std::string nasty = "we\"ird\\rel\nation";
  obs::GetCounter("dire_test_strict_total",
                  "help with \\ backslash\nand newline", {{"rel", nasty}})
      ->Add(2);
  obs::Histogram* h =
      obs::GetHistogram("dire_test_strict_hist", "labeled histogram",
                        {{"verb", "QUERY"}});
  h->Observe(1);
  h->Observe(100);
  h->Observe(12345);
  std::string text = obs::PrometheusText();
  test::PromExposition parsed;
  std::string error = test::ValidatePrometheusText(text, &parsed);
  EXPECT_EQ(error, "");
  if (!obs::kEnabled) {
    EXPECT_TRUE(text.empty());
    return;
  }
  bool found = false;
  for (const test::PromSample& sample : parsed.samples) {
    if (sample.name != "dire_test_strict_total") continue;
    found = true;
    EXPECT_EQ(sample.labels.at("rel"), nasty);
    EXPECT_GE(sample.value, 2.0);
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(parsed.types.at("dire_test_strict_hist"), "histogram");
  EXPECT_EQ(parsed.types.at("dire_test_strict_total"), "counter");
}

TEST(Metrics, ExpositionValidatorCatchesViolations) {
  using test::ValidatePrometheusText;
  EXPECT_EQ(ValidatePrometheusText(""), "");  // OBS OFF emits this.
  EXPECT_EQ(ValidatePrometheusText("dire_x{a=\"b\"} 1\n"), "");
  // Duplicate # TYPE for one family.
  EXPECT_NE(ValidatePrometheusText("# TYPE dire_x counter\n"
                                   "# TYPE dire_x counter\n"
                                   "dire_x 1\n"),
            "");
  // # TYPE must precede the family's samples.
  EXPECT_NE(ValidatePrometheusText("dire_x 1\n# TYPE dire_x counter\n"), "");
  // Only \\ \" \n are legal label-value escapes.
  EXPECT_NE(ValidatePrometheusText("dire_x{a=\"b\\t\"} 1\n"), "");
  // Duplicate series.
  EXPECT_NE(ValidatePrometheusText("dire_x 1\ndire_x 1\n"), "");
  // Missing trailing newline.
  EXPECT_NE(ValidatePrometheusText("dire_x 1"), "");
  // Bad metric name.
  EXPECT_NE(ValidatePrometheusText("9dire 1\n"), "");

  const std::string good_hist =
      "# TYPE dire_h histogram\n"
      "dire_h_bucket{le=\"1\"} 2\n"
      "dire_h_bucket{le=\"8\"} 5\n"
      "dire_h_bucket{le=\"+Inf\"} 6\n"
      "dire_h_sum 40\n"
      "dire_h_count 6\n";
  EXPECT_EQ(ValidatePrometheusText(good_hist), "");
  // Cumulative bucket counts may not decrease.
  EXPECT_NE(ValidatePrometheusText("# TYPE dire_h histogram\n"
                                   "dire_h_bucket{le=\"1\"} 5\n"
                                   "dire_h_bucket{le=\"8\"} 3\n"
                                   "dire_h_bucket{le=\"+Inf\"} 5\n"
                                   "dire_h_sum 9\n"
                                   "dire_h_count 5\n"),
            "");
  // le bounds must strictly increase.
  EXPECT_NE(ValidatePrometheusText("# TYPE dire_h histogram\n"
                                   "dire_h_bucket{le=\"8\"} 2\n"
                                   "dire_h_bucket{le=\"1\"} 2\n"
                                   "dire_h_bucket{le=\"+Inf\"} 2\n"
                                   "dire_h_sum 9\n"
                                   "dire_h_count 2\n"),
            "");
  // The +Inf bucket is mandatory and must equal _count.
  EXPECT_NE(ValidatePrometheusText("# TYPE dire_h histogram\n"
                                   "dire_h_bucket{le=\"1\"} 2\n"
                                   "dire_h_sum 2\n"
                                   "dire_h_count 2\n"),
            "");
  EXPECT_NE(ValidatePrometheusText("# TYPE dire_h histogram\n"
                                   "dire_h_bucket{le=\"+Inf\"} 3\n"
                                   "dire_h_sum 2\n"
                                   "dire_h_count 2\n"),
            "");
}

TEST(Metrics, MetricsJsonParsesBack) {
  obs::GetCounter("dire_test_json_total")->Add(7);
  obs::GetHistogram("dire_test_json_hist")->Observe(9);
  JsonValue root = ParseJsonOrDie(obs::MetricsJson());
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  if (!obs::kEnabled) return;  // Empty {} object is fine.
  ASSERT_TRUE(root.has("counters"));
  EXPECT_GE(root.at("counters").at("dire_test_json_total").number, 7.0);
  const JsonValue& hist =
      root.at("histograms").at("dire_test_json_hist");
  EXPECT_GE(hist.at("count").number, 1.0);
  EXPECT_GE(hist.at("sum").number, 9.0);
}

// --- Spans and trace export ----------------------------------------------

TEST(Tracing, SpanNestingAndOrdering) {
  obs::StartTracing();
  {
    obs::Span outer("test.outer", "test");
    outer.Attr("level", 1);
    {
      obs::Span inner("test.inner", "test");
      inner.Attr("level", 2);
      inner.Attr("nasty", std::string("quote\" slash\\ newline\n tab\t"));
    }
    {
      obs::Span second("test.second", "test");
      second.Attr("answer", int64_t{42});
    }
  }
  obs::StopTracing();

  if (!obs::kEnabled) {
    EXPECT_EQ(obs::TraceEventCount(), 0u);
    JsonValue empty = ParseJsonOrDie(obs::ChromeTraceJson());
    EXPECT_TRUE(empty.at("traceEvents").array.empty());
    return;
  }

  ASSERT_EQ(obs::TraceEventCount(), 3u);
  JsonValue root = ParseJsonOrDie(obs::ChromeTraceJson());
  const std::vector<JsonValue>& events = root.at("traceEvents").array;

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  const JsonValue* second = nullptr;
  size_t inner_pos = 0, outer_pos = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events[i];
    if (e.at("ph").string_value != "X") continue;  // Skip metadata events.
    EXPECT_TRUE(e.has("name"));
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("dur"));
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    const std::string& name = e.at("name").string_value;
    if (name == "test.outer") { outer = &e; outer_pos = i; }
    if (name == "test.inner") { inner = &e; inner_pos = i; }
    if (name == "test.second") second = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(second, nullptr);

  // "X" events are emitted at span destruction: inner closes before outer.
  EXPECT_LT(inner_pos, outer_pos);

  // Containment: the inner interval lies within the outer one, and the
  // depth attribute reflects one extra level of nesting.
  double o_ts = outer->at("ts").number, o_dur = outer->at("dur").number;
  double i_ts = inner->at("ts").number, i_dur = inner->at("dur").number;
  EXPECT_GE(i_ts, o_ts);
  EXPECT_LE(i_ts + i_dur, o_ts + o_dur);
  EXPECT_EQ(inner->at("args").at("depth").number,
            outer->at("args").at("depth").number + 1);
  EXPECT_EQ(second->at("args").at("depth").number,
            inner->at("args").at("depth").number);

  // Attributes survived, including the string that needed escaping.
  EXPECT_EQ(inner->at("args").at("nasty").string_value,
            "quote\" slash\\ newline\n tab\t");
  EXPECT_EQ(second->at("args").at("answer").number, 42.0);

  // Sibling ordering within a thread: second starts after inner ends.
  EXPECT_GE(second->at("ts").number, i_ts + i_dur);
}

TEST(Tracing, StartClearsPreviousBuffer) {
  obs::StartTracing();
  { obs::Span s("test.first", "test"); }
  obs::StopTracing();
  obs::StartTracing();
  { obs::Span s("test.second_run", "test"); }
  obs::StopTracing();
  if (!obs::kEnabled) return;
  EXPECT_EQ(obs::TraceEventCount(), 1u);
  EXPECT_EQ(obs::ChromeTraceJson().find("test.first"), std::string::npos);
}

TEST(Tracing, SpansOutsideTracingAreNotRecorded) {
  obs::StartTracing();
  obs::StopTracing();
  { obs::Span s("test.untraced", "test"); }
  EXPECT_EQ(obs::TraceEventCount(), 0u);
}

TEST(Tracing, AttrAfterStopDoesNotCrash) {
  obs::StartTracing();
  auto span = std::make_unique<obs::Span>("test.straddle", "test");
  obs::StopTracing();
  span->Attr("late", 1);  // Span no longer records; must be safe.
  span.reset();
  JsonValue root = ParseJsonOrDie(obs::ChromeTraceJson());
  (void)root;
}

// --- Structured logging ---------------------------------------------------

class LogCapture {
 public:
  LogCapture() {
    log::SetSink([this](const std::string& line) { lines_.push_back(line); });
  }
  ~LogCapture() {
    log::SetSink(nullptr);
    log::SetJsonOutput(false);
    log::SetLevel(log::Level::kWarn);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST(Log, LevelFiltering) {
  LogCapture capture;
  log::SetLevel(log::Level::kWarn);
  log::Info("test", "filtered out");
  log::Warn("test", "kept");
  log::Error("test", "also kept");
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_NE(capture.lines()[0].find("kept"), std::string::npos);
  EXPECT_NE(capture.lines()[0].find("[warn]"), std::string::npos);
}

TEST(Log, HumanFormatCarriesFields) {
  LogCapture capture;
  log::SetLevel(log::Level::kDebug);
  log::Debug("eval", "round done", {{"round", "3"}, {"tuples", "11"}});
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_NE(line.find("[debug] eval: round done"), std::string::npos);
  EXPECT_NE(line.find("round=3"), std::string::npos);
  EXPECT_NE(line.find("tuples=11"), std::string::npos);
}

TEST(Log, JsonFormatParsesBack) {
  LogCapture capture;
  log::SetLevel(log::Level::kInfo);
  log::SetJsonOutput(true);
  log::Info("wal", "torn \"tail\"", {{"bytes", "12"}});
  ASSERT_EQ(capture.lines().size(), 1u);
  JsonValue root = ParseJsonOrDie(capture.lines()[0]);
  EXPECT_EQ(root.at("level").string_value, "info");
  EXPECT_EQ(root.at("component").string_value, "wal");
  EXPECT_EQ(root.at("msg").string_value, "torn \"tail\"");
  EXPECT_EQ(root.at("bytes").string_value, "12");
  EXPECT_GT(root.at("ts_ms").number, 0.0);
}

TEST(Log, ParseLevelAcceptsAliases) {
  EXPECT_TRUE(log::ParseLevel("debug").ok());
  EXPECT_TRUE(log::ParseLevel("warning").ok());
  EXPECT_TRUE(log::ParseLevel("none").ok());
  ASSERT_TRUE(log::ParseLevel("off").ok());
  EXPECT_EQ(*log::ParseLevel("off"), log::Level::kOff);
  EXPECT_FALSE(log::ParseLevel("loud").ok());
}

// --- JsonEscape (shared by all exporters) ---------------------------------

TEST(JsonEscape, EscapesEverythingRisky) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(obs::JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace dire
