#include <gtest/gtest.h>

#include "ast/ast.h"
#include "ast/classify.h"
#include "ast/dependency.h"
#include "ast/substitution.h"
#include "ast/unify.h"
#include "tests/test_util.h"

namespace dire::ast {
namespace {

using dire::testing::ParseOrDie;

Rule R(std::string_view text) {
  Result<Rule> r = parser::ParseRule(text);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.status().ToString());
  return std::move(r).value();
}

Atom A(std::string_view text) {
  Result<Atom> a = parser::ParseAtom(text);
  EXPECT_TRUE(a.ok()) << (a.ok() ? "" : a.status().ToString());
  return std::move(a).value();
}

TEST(Term, KindsAndEquality) {
  Term v = Term::Var("X");
  Term c = Term::Const("x");
  EXPECT_TRUE(v.IsVariable());
  EXPECT_TRUE(c.IsConstant());
  EXPECT_NE(v, Term::Const("X"));
  EXPECT_EQ(v, Term::Var("X"));
}

TEST(Atom, VariablesInFirstOccurrenceOrder) {
  Atom a = A("p(Y, a, X, Y)");
  EXPECT_EQ(a.Variables(), (std::vector<std::string>{"Y", "X"}));
  EXPECT_EQ(a.ToString(), "p(Y,a,X,Y)");
}

TEST(Rule, DistinguishedAndNondistinguished) {
  Rule r = R("t(X, Y) :- e(X, Z), t(Z, Y).");
  EXPECT_EQ(r.DistinguishedVariables(), (std::set<std::string>{"X", "Y"}));
  EXPECT_EQ(r.NondistinguishedVariables(), (std::set<std::string>{"Z"}));
  EXPECT_EQ(r.AllVariables(), (std::set<std::string>{"X", "Y", "Z"}));
}

TEST(Rule, BodyCountsAndToString) {
  Rule r = R("t(X,Y) :- e(X,Z), e(Z,Y), t(Z,Y).");
  EXPECT_EQ(r.BodyCount("e"), 2);
  EXPECT_EQ(r.BodyCount("t"), 1);
  EXPECT_TRUE(r.BodyUses("t"));
  EXPECT_FALSE(r.BodyUses("q"));
  EXPECT_EQ(r.ToString(), "t(X,Y) :- e(X,Z), e(Z,Y), t(Z,Y).");
}

TEST(Rule, FactRendering) {
  Rule f = R("e(a, b).");
  EXPECT_TRUE(f.IsFact());
  EXPECT_EQ(f.ToString(), "e(a,b).");
}

TEST(Program, PredicatePartition) {
  Program p = ParseOrDie(R"(
    t(X,Y) :- e(X,Z), t(Z,Y).
    t(X,Y) :- e(X,Y).
    e(a,b).
  )");
  EXPECT_EQ(p.HeadPredicates(), (std::set<std::string>{"t", "e"}));
  // e appears as a fact head, so it is not body-only.
  EXPECT_TRUE(p.EdbPredicates().empty());
  EXPECT_EQ(p.AllPredicates(), (std::set<std::string>{"t", "e"}));
  EXPECT_EQ(p.RulesFor("t").size(), 2u);
}

TEST(Substitution, ApplyIsNonRecursive) {
  Substitution s;
  s.Bind("X", Term::Var("Y"));
  s.Bind("Y", Term::Const("a"));
  Atom a = s.Apply(A("p(X, Y)"));
  // X -> Y, not X -> Y -> a.
  EXPECT_EQ(a.ToString(), "p(Y,a)");
}

TEST(Substitution, RenameVariablesLeavesConstants) {
  Rule r = RenameVariables(R("t(X) :- e(X, a)."), "_3");
  EXPECT_EQ(r.ToString(), "t(X_3) :- e(X_3,a).");
}

TEST(Unify, BasicMgu) {
  auto s = Unify(A("p(X, b)"), A("p(a, Y)"));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->Apply(A("p(X, b)")), s->Apply(A("p(a, Y)")));
}

TEST(Unify, ClashFails) {
  EXPECT_FALSE(Unify(A("p(a)"), A("p(b)")).has_value());
  EXPECT_FALSE(Unify(A("p(X)"), A("q(X)")).has_value());
  EXPECT_FALSE(Unify(A("p(X)"), A("p(X, Y)")).has_value());
}

TEST(Unify, ChainedVariables) {
  // p(X, X) with p(Y, a): X and Y both become a.
  auto s = Unify(A("p(X, X)"), A("p(Y, a)"));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->Apply(Term::Var("X")), Term::Const("a"));
  EXPECT_EQ(s->Apply(Term::Var("Y")), Term::Const("a"));
}

TEST(Match, OneWayOnly) {
  EXPECT_TRUE(Match(A("p(X, X)"), A("p(a, a)")).has_value());
  EXPECT_FALSE(Match(A("p(X, X)"), A("p(a, b)")).has_value());
  // Variables of the target are constants for Match.
  EXPECT_FALSE(Match(A("p(a)"), A("p(X)")).has_value());
}

TEST(Classify, LinearAndRegular) {
  EXPECT_TRUE(IsLinearRecursive(R("t(X) :- e(X,Z), t(Z)."), "t"));
  EXPECT_FALSE(IsLinearRecursive(R("t(X) :- t(X), t(X)."), "t"));
  EXPECT_TRUE(IsRegularRecursive(R("t(X) :- e(X,Z), t(Z)."), "t"));
  EXPECT_FALSE(IsRegularRecursive(R("t(X) :- e(X,Z), f(Z,W), t(W)."), "t"));
}

TEST(Classify, HeadRestrictions) {
  EXPECT_TRUE(HeadHasNoRepeatsOrConstants(R("t(X,Y) :- e(X,Y).")));
  EXPECT_FALSE(HeadHasNoRepeatsOrConstants(R("t(X,X) :- e(X).")));
  EXPECT_FALSE(HeadHasNoRepeatsOrConstants(R("t(X,a) :- e(X).")));
}

TEST(Classify, RepeatedNonrecursivePredicates) {
  EXPECT_TRUE(HasRepeatedNonrecursivePredicate(
      R("t(X) :- e(X,Z), e(Z,W), t(W)."), "t"));
  EXPECT_FALSE(HasRepeatedNonrecursivePredicate(
      R("t(X) :- e(X,Z), f(Z,W), t(W)."), "t"));
}

TEST(Classify, Typedness) {
  // Every variable stays in a single column (Sagiv's typed class).
  EXPECT_TRUE(IsTyped(R("t(X,Y) :- t(X,Z).")));
  EXPECT_TRUE(IsTyped(R("t(X,Y) :- t(X,W), t(X,Y).")));
  // Z crosses from column 2 to column 1 — untyped.
  EXPECT_FALSE(IsTyped(R("t(X,Y) :- t(X,Z), t(Z,Y).")));
  // X appears in both columns.
  EXPECT_FALSE(IsTyped(R("t(X,Y) :- t(Y,X).")));
}

TEST(MakeDefinition, SplitsAndStandardizes) {
  Program p = ParseOrDie(R"(
    t(A, B) :- e(A, C), t(C, B).
    t(U, V) :- e(U, V).
  )");
  Result<RecursiveDefinition> d = MakeDefinition(p, "t");
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->head_vars, (std::vector<std::string>{"A", "B"}));
  ASSERT_EQ(d->recursive_rules.size(), 1u);
  ASSERT_EQ(d->exit_rules.size(), 1u);
  // The exit rule's head is renamed onto the common head variables.
  EXPECT_EQ(d->exit_rules[0].ToString(), "t(A,B) :- e(A,B).");
}

TEST(MakeDefinition, DisjointNondistinguishedVariables) {
  Program p = ParseOrDie(R"(
    t(X) :- a(X, W), t(W).
    t(X) :- b(X, W).
  )");
  Result<RecursiveDefinition> d = MakeDefinition(p, "t");
  ASSERT_TRUE(d.ok()) << d.status();
  std::set<std::string> rec = d->recursive_rules[0].NondistinguishedVariables();
  std::set<std::string> exit = d->exit_rules[0].NondistinguishedVariables();
  for (const std::string& w : rec) EXPECT_EQ(exit.count(w), 0u) << w;
}

TEST(MakeDefinition, RejectsRepeatedHeadVariables) {
  Program p = ParseOrDie("t(X, X) :- e(X), t(X, X).");
  EXPECT_FALSE(MakeDefinition(p, "t").ok());
}

TEST(MakeDefinition, RejectsIdbBodyPredicateByDefault) {
  Program p = ParseOrDie(R"(
    t(X) :- e(X, Z), t(Z).
    e(X, Y) :- a(X), b(Y).
  )");
  Result<RecursiveDefinition> d = MakeDefinition(p, "t");
  EXPECT_FALSE(d.ok());
  DefinitionOptions opts;
  opts.require_edb_body = false;
  EXPECT_TRUE(MakeDefinition(p, "t", opts).ok());
}

TEST(MakeDefinition, MissingPredicate) {
  Program p = ParseOrDie("t(X) :- e(X).");
  EXPECT_EQ(MakeDefinition(p, "zzz").status().code(), StatusCode::kNotFound);
}

TEST(DependencyGraph, StrataAreDependencyOrdered) {
  Program p = ParseOrDie(R"(
    a(X) :- b(X).
    b(X) :- c(X).
    c(X) :- base(X).
  )");
  DependencyGraph g(p);
  EXPECT_LT(g.StratumOf("base"), g.StratumOf("c"));
  EXPECT_LT(g.StratumOf("c"), g.StratumOf("b"));
  EXPECT_LT(g.StratumOf("b"), g.StratumOf("a"));
  EXPECT_FALSE(g.IsRecursive("a"));
}

TEST(DependencyGraph, MutualRecursionSharesStratum) {
  Program p = ParseOrDie(R"(
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
  )");
  DependencyGraph g(p);
  EXPECT_EQ(g.StratumOf("even"), g.StratumOf("odd"));
  EXPECT_TRUE(g.IsRecursive("even"));
  EXPECT_TRUE(g.IsRecursive("odd"));
  EXPECT_FALSE(g.IsRecursive("succ"));
}

TEST(DependencyGraph, SelfLoopIsRecursive) {
  Program p = ParseOrDie("t(X,Y) :- e(X,Z), t(Z,Y).");
  DependencyGraph g(p);
  EXPECT_TRUE(g.IsRecursive("t"));
  EXPECT_FALSE(g.IsRecursive("e"));
}

}  // namespace
}  // namespace dire::ast
