#!/usr/bin/env bash
# End-to-end crash-recovery test: runs dire_cli against a durable data
# directory with per-round checkpointing, SIGKILLs it mid-evaluation (no
# cleanup handlers run, exactly like a power loss), then recovers and
# checks the final state is byte-identical to an uninterrupted run.
#
# Usage: crash_recovery.sh /path/to/dire_cli
set -u

CLI="${1:?usage: crash_recovery.sh /path/to/dire_cli}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/dire_crash.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# A long-chain transitive closure: one semi-naive round per chain hop, so
# with --checkpoint-every-rounds 1 the process spends essentially all its
# time inside the checkpoint path and a kill lands mid-run.
PROG="$WORK/chain.dl"
{
  echo 't(X, Y) :- e(X, Y).'
  echo 't(X, Y) :- e(X, Z), t(Z, Y).'
  for ((i = 0; i < 220; ++i)); do
    printf 'e(n%03d, n%03d).\n' "$i" "$((i + 1))"
  done
} > "$PROG"

# Reference: the same program run to completion without interruption.
"$CLI" "$PROG" --data-dir "$WORK/clean" --checkpoint-every-rounds 1 --eval \
    --dump t > "$WORK/clean.out" || fail "clean run exited non-zero"
grep '^t(' "$WORK/clean.out" | sort > "$WORK/clean.tuples"
[ -s "$WORK/clean.tuples" ] || fail "clean run produced no t tuples"

# Crash run: start evaluation, wait until the first checkpoint snapshot
# lands on disk, then SIGKILL the process.
"$CLI" "$PROG" --data-dir "$WORK/crash" --checkpoint-every-rounds 1 --eval \
    > "$WORK/crash.out" 2>&1 &
pid=$!

for _ in $(seq 1 2000); do
  [ -f "$WORK/crash/snapshot.dire" ] && break
  kill -0 "$pid" 2> /dev/null || break
  sleep 0.005
done
[ -f "$WORK/crash/snapshot.dire" ] || fail "no checkpoint snapshot appeared"

if kill -9 "$pid" 2> /dev/null; then
  echo "killed pid $pid mid-evaluation"
else
  # The run finished before the signal landed; recovery below must then be
  # an idempotent no-op that still matches the clean run.
  echo "note: evaluation finished before SIGKILL; testing idempotent recovery"
fi
wait "$pid" 2> /dev/null

# Recover: replay the log over the snapshot and resume evaluation.
"$CLI" recover "$PROG" --data-dir "$WORK/crash" --checkpoint-every-rounds 1 \
    --dump t > "$WORK/recover.out" || fail "recover exited non-zero"
grep '^recovered:' "$WORK/recover.out" || fail "recover printed no summary"
grep '^t(' "$WORK/recover.out" | sort > "$WORK/recover.tuples"

diff -u "$WORK/clean.tuples" "$WORK/recover.tuples" \
    || fail "recovered tuples differ from the uninterrupted run"

# Snapshots are canonical (sorted sections and rows), so the recovered
# database file must be byte-identical to the clean run's.
cmp "$WORK/clean/snapshot.dire" "$WORK/crash/snapshot.dire" \
    || fail "recovered snapshot is not byte-identical to the clean run's"

# A second recovery must derive nothing new and leave the snapshot alone.
before="$(cksum < "$WORK/crash/snapshot.dire")"
"$CLI" recover "$PROG" --data-dir "$WORK/crash" > /dev/null \
    || fail "second recover exited non-zero"
after="$(cksum < "$WORK/crash/snapshot.dire")"
[ "$before" = "$after" ] || fail "second recovery rewrote the snapshot"

echo "PASS: crash recovery matches uninterrupted run ($(wc -l < "$WORK/clean.tuples") tuples)"
