// Property suite for the conjunctive-query machinery: canonicalization,
// isomorphism, minimization and containment obey their algebraic laws on
// random queries.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/string_util.h"
#include "cq/conjunctive_query.h"
#include "cq/containment.h"
#include "tests/test_util.h"

namespace dire::cq {
namespace {

ConjunctiveQuery RandomQuery(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> pool = {"X", "Y", "A", "B", "C"};
  ConjunctiveQuery q;
  q.head = {ast::Term::Var("X"), ast::Term::Var("Y")};
  int atoms = 1 + static_cast<int>(rng.Uniform(4));
  for (int i = 0; i < atoms; ++i) {
    std::vector<ast::Term> args;
    int arity = 1 + static_cast<int>(rng.Uniform(2));
    for (int k = 0; k < arity; ++k) {
      args.push_back(ast::Term::Var(pool[rng.Uniform(pool.size())]));
    }
    q.body.emplace_back(StrFormat("r%d", static_cast<int>(rng.Uniform(3))),
                        std::move(args));
  }
  // Keep the query safe.
  q.body.emplace_back("anchor", std::vector<ast::Term>{ast::Term::Var("X"),
                                                       ast::Term::Var("Y")});
  return q;
}

// Renames the nondistinguished variables with an arbitrary suffix: an
// isomorphic variant.
ConjunctiveQuery RenameVariant(const ConjunctiveQuery& q) {
  ConjunctiveQuery out;
  out.head = q.head;
  for (const ast::Atom& a : q.body) {
    ast::Atom b = a;
    for (ast::Term& t : b.args) {
      if (t.IsVariable() && t.text() != "X" && t.text() != "Y") {
        t = ast::Term::Var(t.text() + "_renamed");
      }
    }
    out.body.push_back(std::move(b));
  }
  return out;
}

class CqLaws : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqLaws, CanonicalizeIsIdempotent) {
  ConjunctiveQuery q = RandomQuery(GetParam());
  ConjunctiveQuery once = Canonicalize(q);
  ConjunctiveQuery twice = Canonicalize(once);
  EXPECT_EQ(once, twice);
}

TEST_P(CqLaws, RenamedVariantIsIsomorphic) {
  ConjunctiveQuery q = RandomQuery(GetParam());
  ConjunctiveQuery variant = RenameVariant(q);
  EXPECT_TRUE(Isomorphic(q, variant));
  // Isomorphic queries map both ways.
  EXPECT_TRUE(MapsTo(q, variant));
  EXPECT_TRUE(MapsTo(variant, q));
}

TEST_P(CqLaws, ContainmentIsReflexiveAndTransitiveOnSamples) {
  ConjunctiveQuery a = RandomQuery(GetParam());
  ConjunctiveQuery b = RandomQuery(GetParam() + 7777);
  ConjunctiveQuery c = RandomQuery(GetParam() + 15555);
  EXPECT_TRUE(MapsTo(a, a));
  if (MapsTo(a, b) && MapsTo(b, c)) {
    EXPECT_TRUE(MapsTo(a, c)) << a.ToString() << " / " << b.ToString()
                              << " / " << c.ToString();
  }
}

TEST_P(CqLaws, MinimizeIsEquivalentAndMinimal) {
  ConjunctiveQuery q = RandomQuery(GetParam());
  ConjunctiveQuery m = Minimize(q);
  EXPECT_LE(m.body.size(), q.body.size());
  EXPECT_TRUE(Equivalent(q, m)) << q.ToString() << " vs " << m.ToString();
  // Minimization is a fixpoint.
  EXPECT_EQ(Minimize(m).body.size(), m.body.size());
}

TEST_P(CqLaws, UnionContainmentConsistentWithMemberContainment) {
  ConjunctiveQuery a = RandomQuery(GetParam() + 1);
  ConjunctiveQuery b = RandomQuery(GetParam() + 2);
  ConjunctiveQuery probe = RandomQuery(GetParam() + 3);
  bool member = MapsTo(a, probe) || MapsTo(b, probe);
  EXPECT_EQ(UnionContains({a, b}, probe), member);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqLaws, ::testing::Range<uint64_t>(0, 60));

}  // namespace
}  // namespace dire::cq
