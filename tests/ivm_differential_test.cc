// Differential testing harness for incremental view maintenance: seeded
// random stratified Datalog programs (linear and nonlinear recursion,
// constants, repeated variables, stratified negation, comparison builtins)
// run against random interleavings of base-fact inserts and deletes. After
// every applied delta, the maintained database (eval::Maintainer: counting
// for non-recursive strata, DRed for recursive ones) must agree byte for
// byte with a from-scratch re-evaluation over the same base facts — same
// sorted snapshot, same per-relation tuple counts. Maintenance may change
// how the fixpoint is reached, never what it is.
//
// A disagreement is shrunk by greedy delta debugging, first over the
// delta operations and then over the program's clauses, to a minimal
// reproducer (a parseable .dl program plus the surviving op sequence)
// before the test fails, so the failure message is directly actionable.
//
// Unlike tests/differential_test.cc, base facts are runtime inserts (not
// program clauses): program facts are pinned by maintenance (a full
// evaluation would re-load them), so only runtime facts can be retracted.
//
// Fixed seeds keep CI reproducible; setting DIRE_RANDOM_SEED (CI passes
// $GITHUB_RUN_ID) adds one fresh round per run.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/rng.h"
#include "dire.h"
#include "eval/maintain.h"
#include "storage/snapshot.h"

namespace dire {
namespace {

constexpr int kMaxConstants = 8;
constexpr int kMaxVars = 5;

std::string Name(const char* prefix, uint64_t n) {
  std::string out(prefix);
  out += std::to_string(n);
  return out;
}

// One base-fact mutation. Applying an insert of a present tuple or a
// delete of an absent one is a no-op (skipped), so any op subsequence is
// well-defined — which is what lets the shrinker drop ops freely.
struct Op {
  bool insert = false;
  std::string rel;
  std::vector<std::string> values;

  std::string ToString() const {
    std::string out = insert ? "+" : "-";
    out += rel + "(";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i != 0) out += ", ";
      out += values[i];
    }
    return out + ")";
  }
};

// The logical base-fact state: the single source of truth both the
// maintained database and the from-scratch reference are held to.
using BaseState = std::map<std::string, std::set<std::vector<std::string>>>;

struct Scenario {
  std::vector<std::string> clauses;  // Rules only; no base-fact clauses.
  std::map<std::string, size_t> edb_arity;
  std::vector<Op> initial;  // Inserts applied before the first evaluation.
  std::vector<Op> ops;      // Maintained one at a time afterwards.
};

struct Generator {
  Rng rng;
  std::map<std::string, size_t> arity;

  explicit Generator(uint64_t seed) : rng(seed) {}

  std::string Constant() { return Name("c", rng.Uniform(kMaxConstants)); }
  std::string Variable() { return Name("V", rng.Uniform(kMaxVars)); }

  std::string Atom(const std::string& pred, std::vector<std::string>* vars) {
    std::string out = pred + "(";
    for (size_t i = 0; i < arity[pred]; ++i) {
      if (i != 0) out += ", ";
      if (rng.Chance(0.15)) {
        out += Constant();
      } else {
        std::string v = Variable();
        vars->push_back(v);
        out += v;
      }
    }
    return out + ")";
  }

  std::string BoundAtom(const std::string& pred,
                        const std::vector<std::string>& bound) {
    std::string out = pred + "(";
    for (size_t i = 0; i < arity[pred]; ++i) {
      if (i != 0) out += ", ";
      if (bound.empty() || rng.Chance(0.3)) {
        out += Constant();
      } else {
        out += bound[rng.Uniform(bound.size())];
      }
    }
    return out + ")";
  }

  std::string Rule(const std::string& head,
                   const std::vector<std::string>& usable,
                   const std::vector<std::string>& negatable) {
    std::vector<std::string> body;
    std::vector<std::string> bound;
    size_t num_positive = 1 + rng.Uniform(3);
    for (size_t i = 0; i < num_positive; ++i) {
      body.push_back(Atom(usable[rng.Uniform(usable.size())], &bound));
    }
    if (!negatable.empty() && rng.Chance(0.35)) {
      body.push_back(
          "not " + BoundAtom(negatable[rng.Uniform(negatable.size())],
                             bound));
    }
    if (bound.size() >= 2 && rng.Chance(0.35)) {
      const char* builtins[] = {"neq", "lt", "leq"};
      std::string a = bound[rng.Uniform(bound.size())];
      std::string b = bound[rng.Uniform(bound.size())];
      body.push_back(std::string(builtins[rng.Uniform(3)]) + "(" + a + ", " +
                     b + ")");
    }
    std::string out = head + "(";
    for (size_t i = 0; i < arity[head]; ++i) {
      if (i != 0) out += ", ";
      if (bound.empty() || rng.Chance(0.1)) {
        out += Constant();
      } else {
        out += bound[rng.Uniform(bound.size())];
      }
    }
    out += ") :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i != 0) out += ", ";
      out += body[i];
    }
    return out + ".";
  }

  Op RandomOp(const std::vector<std::string>& edbs, bool insert) {
    Op op;
    op.insert = insert;
    op.rel = edbs[rng.Uniform(edbs.size())];
    for (size_t i = 0; i < arity[op.rel]; ++i) {
      op.values.push_back(Constant());
    }
    return op;
  }

  Scenario Make() {
    Scenario s;

    size_t num_edb = 1 + rng.Uniform(3);
    std::vector<std::string> edbs;
    for (size_t e = 0; e < num_edb; ++e) {
      std::string name = Name("e", e);
      arity[name] = 1 + rng.Uniform(3);
      edbs.push_back(name);
      s.edb_arity[name] = arity[name];
      size_t facts = 3 + rng.Uniform(20);
      for (size_t f = 0; f < facts; ++f) {
        s.initial.push_back(RandomOp(edbs, /*insert=*/true));
      }
    }

    size_t num_idb = 1 + rng.Uniform(4);
    std::vector<std::string> lower = edbs;
    for (size_t p = 0; p < num_idb; ++p) {
      std::string name = Name("p", p);
      arity[name] = 1 + rng.Uniform(2);
      std::vector<std::string> usable = lower;
      usable.push_back(name);
      size_t num_rules = 1 + rng.Uniform(2);
      s.clauses.push_back(Rule(name, lower, lower));
      for (size_t r = 1; r < num_rules; ++r) {
        s.clauses.push_back(Rule(name, usable, lower));
      }
      if (rng.Chance(0.7)) {
        s.clauses.push_back(Rule(name, usable, lower));
      }
      lower.push_back(name);
    }

    // The delta interleaving: inserts of fresh or repeated tuples, deletes
    // that mostly target live tuples (drawn from the same small constant
    // pool, so collisions with the current state are common).
    size_t num_ops = 6 + rng.Uniform(8);
    for (size_t o = 0; o < num_ops; ++o) {
      s.ops.push_back(RandomOp(edbs, /*insert=*/rng.Chance(0.5)));
    }
    return s;
  }
};

std::string JoinClauses(const std::vector<std::string>& clauses) {
  std::string text;
  for (const std::string& c : clauses) {
    text += c;
    text += '\n';
  }
  return text;
}

std::string RenderOps(const std::vector<Op>& ops) {
  std::string out;
  for (const Op& op : ops) {
    out += "  ";
    out += op.ToString();
    out += '\n';
  }
  return out;
}

struct Outcome {
  bool ok = false;
  std::string error;
  std::string snapshot;
  std::map<std::string, size_t> counts;
};

Outcome Capture(storage::Database* db) {
  Outcome out;
  Result<std::string> snapshot = storage::SaveSnapshot(*db);
  if (!snapshot.ok()) {
    out.error = snapshot.status().ToString();
    return out;
  }
  out.snapshot = *snapshot;
  for (const std::string& name : db->RelationNames()) {
    out.counts[name] = db->Find(name)->size();
  }
  out.ok = true;
  return out;
}

// From-scratch reference: a fresh database holding exactly `base`,
// evaluated to fixpoint.
Outcome RunReference(const ast::Program& program,
                     const std::map<std::string, size_t>& edb_arity,
                     const BaseState& base) {
  Outcome out;
  storage::Database db;
  for (const auto& [rel, ar] : edb_arity) {
    Result<storage::Relation*> r = db.GetOrCreate(rel, ar);
    if (!r.ok()) {
      out.error = r.status().ToString();
      return out;
    }
  }
  for (const auto& [rel, tuples] : base) {
    for (const std::vector<std::string>& t : tuples) {
      Status added = db.AddRow(rel, t);
      if (!added.ok()) {
        out.error = added.ToString();
        return out;
      }
    }
  }
  eval::Evaluator ev(&db, eval::EvalOptions{});
  Result<eval::EvalStats> stats = ev.Evaluate(program);
  if (!stats.ok()) {
    out.error = stats.status().ToString();
    return out;
  }
  return Capture(&db);
}

// Runs the maintained side against the reference after every op. Returns
// true and fills `detail` when they disagree (or maintenance errors out on
// a valid delta); an unparseable / unevaluable / unmaintainable program is
// not a disagreement — shrinking steps that break the program are
// rejected, not reported.
bool Disagrees(const std::vector<std::string>& clauses,
               const std::map<std::string, size_t>& edb_arity,
               const std::vector<Op>& initial, const std::vector<Op>& ops,
               std::string* detail) {
  Result<ast::Program> program = parser::ParseProgram(JoinClauses(clauses));
  if (!program.ok()) return false;

  storage::Database db;
  BaseState base;
  for (const auto& [rel, ar] : edb_arity) {
    if (!db.GetOrCreate(rel, ar).ok()) return false;
  }
  for (const Op& op : initial) {
    if (!base[op.rel].insert(op.values).second) continue;
    if (!db.AddRow(op.rel, op.values).ok()) return false;
  }
  eval::Evaluator ev(&db, eval::EvalOptions{});
  if (!ev.Evaluate(*program).ok()) return false;

  eval::Maintainer maintainer(&db, *program);
  if (!maintainer.init_status().ok()) return false;

  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    // Net effect against the logical state; no-ops are skipped entirely.
    if (op.insert) {
      if (!base[op.rel].insert(op.values).second) continue;
      if (!db.AddRow(op.rel, op.values).ok()) return false;
    } else {
      auto it = base.find(op.rel);
      if (it == base.end() || it->second.erase(op.values) == 0) continue;
      Result<bool> removed = db.RemoveRow(op.rel, op.values);
      if (!removed.ok() || !*removed) return false;
    }
    std::vector<eval::FactDelta> ins;
    std::vector<eval::FactDelta> del;
    (op.insert ? ins : del)
        .push_back(eval::FactDelta{op.rel, op.values});
    Result<eval::MaintainStats> applied = maintainer.ApplyDelta(ins, del);
    if (!applied.ok()) {
      *detail = "maintenance failed at op " + std::to_string(i) + " " +
                op.ToString() + ": " + applied.status().ToString();
      return true;
    }
    Outcome maintained = Capture(&db);
    Outcome reference = RunReference(*program, edb_arity, base);
    if (!maintained.ok || !reference.ok) {
      *detail = "capture failed at op " + std::to_string(i) + ": " +
                (maintained.ok ? reference.error : maintained.error);
      return true;
    }
    if (maintained.counts != reference.counts) {
      *detail = "tuple counts diverged after op " + std::to_string(i) +
                " " + op.ToString();
      return true;
    }
    if (maintained.snapshot != reference.snapshot) {
      *detail = "snapshot bytes diverged after op " + std::to_string(i) +
                " " + op.ToString();
      return true;
    }
  }
  return false;
}

// Greedy delta debugging over ops first (usually the cheaper axis), then
// initial facts, then clauses; repeated until 1-minimal across all three.
Scenario Shrink(Scenario s) {
  std::string detail;
  bool progressed = true;
  auto try_without = [&](std::vector<Op>* list, size_t i) {
    Op saved = (*list)[i];
    list->erase(list->begin() + static_cast<long>(i));
    if (Disagrees(s.clauses, s.edb_arity, s.initial, s.ops, &detail)) {
      return true;
    }
    list->insert(list->begin() + static_cast<long>(i), saved);
    return false;
  };
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < s.ops.size(); ++i) {
      if (try_without(&s.ops, i)) {
        progressed = true;
        break;
      }
    }
    if (progressed) continue;
    for (size_t i = 0; i < s.initial.size(); ++i) {
      if (try_without(&s.initial, i)) {
        progressed = true;
        break;
      }
    }
    if (progressed) continue;
    for (size_t i = 0; i < s.clauses.size(); ++i) {
      std::vector<std::string> candidate = s.clauses;
      candidate.erase(candidate.begin() + static_cast<long>(i));
      if (Disagrees(candidate, s.edb_arity, s.initial, s.ops, &detail)) {
        s.clauses = std::move(candidate);
        progressed = true;
        break;
      }
    }
  }
  return s;
}

void CheckSeed(uint64_t seed) {
  Generator gen(seed);
  Scenario s = gen.Make();
  Result<ast::Program> parsed = parser::ParseProgram(JoinClauses(s.clauses));
  ASSERT_TRUE(parsed.ok()) << "seed " << seed << " generated an unparseable "
                           << "program: " << parsed.status() << "\n"
                           << JoinClauses(s.clauses);
  std::string detail;
  if (!Disagrees(s.clauses, s.edb_arity, s.initial, s.ops, &detail)) return;
  Scenario minimal = Shrink(s);
  Disagrees(minimal.clauses, minimal.edb_arity, minimal.initial, minimal.ops,
            &detail);
  FAIL() << "maintained and from-scratch evaluation disagree for seed "
         << seed << ": " << detail << "\nminimal .dl reproducer ("
         << minimal.clauses.size() << " clause(s)):\n"
         << JoinClauses(minimal.clauses) << "initial facts:\n"
         << RenderOps(minimal.initial) << "ops:\n"
         << RenderOps(minimal.ops);
}

TEST(IvmDifferential, FixedSeedMatrix) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    CheckSeed(seed);
    if (::testing::Test::HasFatalFailure() || HasFailure()) return;
  }
}

TEST(IvmDifferential, RandomSeedFromEnvironment) {
  const char* raw = std::getenv("DIRE_RANDOM_SEED");
  if (raw == nullptr || *raw == '\0') {
    GTEST_SKIP() << "DIRE_RANDOM_SEED not set";
  }
  uint64_t seed = 0;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end != raw && *end == '\0') {
    seed = parsed;
  } else {
    for (const char* c = raw; *c != '\0'; ++c) {
      seed = seed * 131 + static_cast<unsigned char>(*c);
    }
  }
  CheckSeed(seed);
}

}  // namespace
}  // namespace dire
