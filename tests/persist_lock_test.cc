#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "base/io.h"
#include "storage/persist.h"

namespace dire::storage {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// A PID that is certainly not alive: fork a child, let it exit, reap it.
// (Immediate recycling of a just-reaped PID is not a realistic hazard for
// the duration of one test.)
pid_t DeadPid() {
  pid_t pid = ::fork();
  if (pid == 0) ::_exit(0);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return pid;
}

TEST(DataDirLock, SecondOpenFailsClosedWhileOwnerLives) {
  std::string dir = FreshDir("persist_lock_live");
  Result<std::unique_ptr<DataDir>> first = DataDir::Open(dir);
  ASSERT_TRUE(first.ok()) << first.status();

  Result<std::unique_ptr<DataDir>> second = DataDir::Open(dir);
  ASSERT_FALSE(second.ok());
  // The diagnostic names the owner and the remedy.
  EXPECT_NE(second.status().message().find("is locked by running process"),
            std::string::npos)
      << second.status();
  EXPECT_NE(second.status().message().find(std::to_string(::getpid())),
            std::string::npos)
      << second.status();
  // Fail-closed: the owner's lock is untouched.
  EXPECT_TRUE(io::FileExists((*first)->lock_path()));
}

TEST(DataDirLock, ReleasedOnCleanClose) {
  std::string dir = FreshDir("persist_lock_release");
  std::string lock_path;
  {
    Result<std::unique_ptr<DataDir>> d = DataDir::Open(dir);
    ASSERT_TRUE(d.ok()) << d.status();
    lock_path = (*d)->lock_path();
    EXPECT_TRUE(io::FileExists(lock_path));
  }
  EXPECT_FALSE(io::FileExists(lock_path));
  // And the directory opens again.
  EXPECT_TRUE(DataDir::Open(dir).ok());
}

TEST(DataDirLock, StaleDeadPidLockIsBroken) {
  std::string dir = FreshDir("persist_lock_stale");
  ASSERT_TRUE(io::MakeDirs(dir).ok());
  // Simulate a SIGKILLed previous owner: its LOCK file survives, its PID
  // does not.
  {
    std::ofstream lock(dir + "/LOCK");
    lock << DeadPid() << "\n";
  }
  Result<std::unique_ptr<DataDir>> d = DataDir::Open(dir);
  ASSERT_TRUE(d.ok()) << d.status();  // Recovery succeeded, no manual step.
  EXPECT_TRUE(io::FileExists((*d)->lock_path()));
}

TEST(DataDirLock, GarbledLockIsTreatedAsStale) {
  std::string dir = FreshDir("persist_lock_garbled");
  ASSERT_TRUE(io::MakeDirs(dir).ok());
  {
    std::ofstream lock(dir + "/LOCK");
    lock << "not-a-pid";
  }
  EXPECT_TRUE(DataDir::Open(dir).ok());
}

TEST(DataDirRetract, RetractIsDurableAcrossReopen) {
  std::string dir = FreshDir("persist_retract_durable");
  {
    Result<std::unique_ptr<DataDir>> d = DataDir::Open(dir);
    ASSERT_TRUE(d.ok()) << d.status();
    ASSERT_TRUE((*d)->AppendFact("e", {"a", "b"}).ok());
    ASSERT_TRUE((*d)->AppendFact("e", {"b", "c"}).ok());
    bool removed = false;
    ASSERT_TRUE((*d)->RetractFact("e", {"a", "b"}, &removed).ok());
    EXPECT_TRUE(removed);
    // Retracting again reports absence without failing.
    ASSERT_TRUE((*d)->RetractFact("e", {"a", "b"}, &removed).ok());
    EXPECT_FALSE(removed);
    // No checkpoint: durability must come from the WAL's R record alone.
  }
  Result<std::unique_ptr<DataDir>> reopened = DataDir::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->db()->DumpRelation("e"), "e(b,c)\n");
}

TEST(DataDirRetract, RetractAfterCheckpointReplaysOverSnapshot) {
  std::string dir = FreshDir("persist_retract_snapshot");
  {
    Result<std::unique_ptr<DataDir>> d = DataDir::Open(dir);
    ASSERT_TRUE(d.ok()) << d.status();
    ASSERT_TRUE((*d)->AppendFact("e", {"a", "b"}).ok());
    ASSERT_TRUE((*d)->Checkpoint().ok());  // Fact is in the snapshot now.
    bool removed = false;
    ASSERT_TRUE((*d)->RetractFact("e", {"a", "b"}, &removed).ok());
    EXPECT_TRUE(removed);
  }
  Result<std::unique_ptr<DataDir>> reopened = DataDir::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  // The snapshot said present; the WAL's R record wins on replay.
  EXPECT_EQ((*reopened)->db()->DumpRelation("e"), "");
}

}  // namespace
}  // namespace dire::storage
