// ExecutionGuard + failpoint coverage: every trip point (deadline, tuple
// budget, memory budget, cancellation) across the evaluator, magic sets,
// tabled top-down, the expansion enumeration, and the independence tests —
// plus the deterministic fault-injection registry that exercises the
// engine's error paths.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <climits>
#include <set>
#include <thread>

#include "base/failpoints.h"
#include "base/guard.h"
#include "base/obs.h"
#include "core/rewrite.h"
#include "core/strong.h"
#include "core/weak.h"
#include "eval/evaluator.h"
#include "eval/magic.h"
#include "eval/topdown.h"
#include "storage/database.h"
#include "tests/test_util.h"

namespace dire {
namespace {

using dire::testing::ParseOrDie;
using eval::EvalOptions;
using eval::EvalStats;
using eval::Evaluator;

// A transitive closure over a chain of `n` nodes: n*(n+1)/2 derived tuples.
ast::Program ChainClosure(int n) {
  std::string text = "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, Z), t(Z, Y).\n";
  for (int i = 0; i < n; ++i) {
    text += "e(c" + std::to_string(i) + ", c" + std::to_string(i + 1) + ").\n";
  }
  return ParseOrDie(text);
}

// The evaluator configuration that "loops forever" absent a guard: the §6
// iteration-bound mode re-runs rounds with no convergence test.
EvalOptions ForeverOptions() {
  EvalOptions options;
  options.stop_on_fixpoint = false;
  options.max_iterations = INT_MAX;
  return options;
}

std::set<storage::Tuple> FullClosureTuples(const ast::Program& program) {
  storage::Database db;
  Evaluator ev(&db);
  EXPECT_TRUE(ev.Evaluate(program).ok());
  const storage::Relation* t = db.Find("t");
  EXPECT_NE(t, nullptr);
  std::vector<storage::Tuple> tuples = t->CopyTuples();
  return std::set<storage::Tuple>(tuples.begin(), tuples.end());
}

class GuardTest : public ::testing::Test {
 protected:
  ~GuardTest() override { failpoints::DisableAll(); }
};

TEST_F(GuardTest, StatusFactoriesAndNames) {
  Status re = Status::ResourceExhausted("out of budget");
  EXPECT_EQ(re.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(re.ToString(), "ResourceExhausted: out of budget");
  Status c = Status::Cancelled("stop");
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_EQ(c.ToString(), "Cancelled: stop");
}

TEST_F(GuardTest, UnlimitedGuardNeverTrips) {
  ExecutionGuard guard;
  guard.AddTuples(1u << 20);
  guard.SetMemoryUsage(1ull << 40);
  EXPECT_TRUE(guard.Check().ok());
  EXPECT_FALSE(guard.Tripped());
  EXPECT_EQ(guard.trip_reason(), "");
}

TEST_F(GuardTest, TripIsStickyAndFirstReasonWins) {
  GuardLimits limits;
  limits.max_tuples = 5;
  limits.max_memory_bytes = 100;
  ExecutionGuard guard(limits);
  guard.AddTuples(5);
  EXPECT_TRUE(guard.Tripped());
  Status first = guard.Check();
  EXPECT_EQ(first.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(first.message().find("tuple budget"), std::string::npos);
  // A later memory trip does not overwrite the recorded reason.
  guard.SetMemoryUsage(1000);
  EXPECT_NE(guard.Check().message().find("tuple budget"), std::string::npos);
}

TEST_F(GuardTest, CancellationTokenCopiesShareOneFlag) {
  CancellationToken token;
  CancellationToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.Cancel();
  EXPECT_TRUE(copy.cancelled());
}

// --- EvalOptions validation (documented-invalid combinations) ------------

TEST_F(GuardTest, ValidateRejectsUnboundedNonConvergentMode) {
  EvalOptions options;
  options.stop_on_fixpoint = false;
  options.max_iterations = 0;
  Status s = options.Validate();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  storage::Database db;
  Evaluator ev(&db, options);
  Result<EvalStats> r = ev.Evaluate(ChainClosure(3));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GuardTest, ValidateRejectsNegativeMaxIterations) {
  EvalOptions options;
  options.max_iterations = -2;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);

  storage::Database db;
  Evaluator ev(&db, options);
  Result<EvalStats> r = ev.Evaluate(ChainClosure(3));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --- Deadline ------------------------------------------------------------

TEST_F(GuardTest, DeadlineStopsAProgramThatWouldRunForever) {
  GuardLimits limits;
  limits.timeout_ms = 100;
  ExecutionGuard guard(limits);
  EvalOptions options = ForeverOptions();
  options.guard = &guard;

  storage::Database db;
  Evaluator ev(&db, options);
  auto start = std::chrono::steady_clock::now();
  Result<EvalStats> r = ev.Evaluate(ChainClosure(10));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("deadline"), std::string::npos);
  // Generous margin: the point is "minutes become milliseconds".
  EXPECT_LT(elapsed.count(), 5000);
}

TEST_F(GuardTest, DeadlinePartialModeReturnsWellFormedStats) {
  GuardLimits limits;
  limits.timeout_ms = 100;
  ExecutionGuard guard(limits);
  EvalOptions options = ForeverOptions();
  options.guard = &guard;
  options.on_exhaustion = EvalOptions::OnExhaustion::kPartial;

  storage::Database db;
  Evaluator ev(&db, options);
  Result<EvalStats> r = ev.Evaluate(ChainClosure(10));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->exhausted);
  EXPECT_FALSE(r->converged);
  EXPECT_NE(r->exhausted_reason.find("deadline"), std::string::npos);
}

TEST_F(GuardTest, ExpiredDeadlineMidStratumLeavesDatabaseConsistent) {
  ast::Program program = ChainClosure(40);
  std::set<storage::Tuple> closure = FullClosureTuples(program);

  GuardLimits limits;
  limits.timeout_ms = 1;
  ExecutionGuard guard(limits);
  // Burn the whole budget before evaluation starts, so the trip lands at
  // the first in-stratum check deterministically.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  EvalOptions options;
  options.guard = &guard;
  options.on_exhaustion = EvalOptions::OnExhaustion::kPartial;
  storage::Database db;
  Evaluator ev(&db, options);
  Result<EvalStats> r = ev.Evaluate(program);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->exhausted);

  // Consistent partial state: the EDB is fully loaded and every derived
  // tuple is a member of the true closure (sound prefix).
  const storage::Relation* e = db.Find("e");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->size(), 40u);
  const storage::Relation* t = db.Find("t");
  if (t != nullptr) {
    for (storage::RowRef tuple : t->rows()) {
      EXPECT_EQ(closure.count(storage::Tuple(tuple.begin(), tuple.end())), 1u);
    }
  }
}

// --- Tuple budget --------------------------------------------------------

TEST_F(GuardTest, TupleBudgetTripsExactlyAtTheLimit) {
  ast::Program program = ChainClosure(30);
  std::set<storage::Tuple> closure = FullClosureTuples(program);
  ASSERT_GT(closure.size(), 10u);

  GuardLimits limits;
  limits.max_tuples = 10;
  ExecutionGuard guard(limits);
  EvalOptions options;
  options.guard = &guard;
  options.on_exhaustion = EvalOptions::OnExhaustion::kPartial;

  storage::Database db;
  Evaluator ev(&db, options);
  Result<EvalStats> r = ev.Evaluate(program);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->exhausted);
  EXPECT_NE(r->exhausted_reason.find("tuple budget"), std::string::npos);
  // Exactly at the limit, in the stats, the guard, and the database.
  EXPECT_EQ(r->tuples_derived, 10u);
  EXPECT_EQ(guard.tuples_charged(), 10u);
  const storage::Relation* t = db.Find("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->size(), 10u);
  for (storage::RowRef tuple : t->rows()) {
    EXPECT_EQ(closure.count(storage::Tuple(tuple.begin(), tuple.end())), 1u);  // Sound prefix.
  }
}

TEST_F(GuardTest, TupleBudgetErrorModeReturnsResourceExhausted) {
  GuardLimits limits;
  limits.max_tuples = 4;
  ExecutionGuard guard(limits);
  EvalOptions options;
  options.guard = &guard;

  storage::Database db;
  Evaluator ev(&db, options);
  Result<EvalStats> r = ev.Evaluate(ChainClosure(30));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// --- Memory budget -------------------------------------------------------

TEST_F(GuardTest, MemoryBudgetTrips) {
  GuardLimits limits;
  limits.max_memory_bytes = 4 * 1024;  // Far below 100 chain nodes + closure.
  ExecutionGuard guard(limits);
  EvalOptions options;
  options.guard = &guard;
  options.on_exhaustion = EvalOptions::OnExhaustion::kPartial;

  storage::Database db;
  Evaluator ev(&db, options);
  Result<EvalStats> r = ev.Evaluate(ChainClosure(100));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->exhausted);
  EXPECT_NE(r->exhausted_reason.find("memory budget"), std::string::npos);
  EXPECT_GT(guard.memory_usage(), limits.max_memory_bytes);
}

TEST_F(GuardTest, RelationApproxBytesGrowsWithContents) {
  storage::Relation rel("r", 2);
  size_t empty = rel.ApproxBytes();
  for (storage::ValueId i = 0; i < 100; ++i) rel.Insert({i, i + 1});
  size_t filled = rel.ApproxBytes();
  EXPECT_GT(filled, empty);
  rel.Probe(0, 1);  // Builds a column index, which costs memory too.
  EXPECT_GT(rel.ApproxBytes(), filled);
}

// --- Cancellation --------------------------------------------------------

TEST_F(GuardTest, CancellationFromAnotherThreadStopsEvaluation) {
  CancellationToken token;
  GuardLimits limits;
  limits.timeout_ms = 30000;  // Fallback so a regression cannot hang CI.
  ExecutionGuard guard(limits, token);
  EvalOptions options = ForeverOptions();
  options.guard = &guard;

  storage::Database db;
  Evaluator ev(&db, options);
  Result<EvalStats> result = EvalStats{};
  std::thread worker([&] { result = ev.Evaluate(ChainClosure(10)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  token.Cancel();
  worker.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(GuardTest, PreCancelledTokenStopsBeforeAnyStratum) {
  CancellationToken token;
  token.Cancel();
  ExecutionGuard guard(GuardLimits{}, token);
  EvalOptions options;
  options.guard = &guard;

  storage::Database db;
  Evaluator ev(&db, options);
  Result<EvalStats> r = ev.Evaluate(ChainClosure(5));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  // Facts were loaded, nothing was derived.
  const storage::Relation* t = db.Find("t");
  EXPECT_TRUE(t == nullptr || t->empty());
}

// --- Guard through magic sets and top-down -------------------------------

TEST_F(GuardTest, MagicQueryHonoursGuard) {
  CancellationToken token;
  token.Cancel();
  ExecutionGuard guard(GuardLimits{}, token);
  EvalOptions options;
  options.guard = &guard;

  storage::Database db;
  ast::Program program = ChainClosure(10);
  ast::Atom query = ParseOrDie("q(X) :- t(c0, X).").rules.front().body.front();
  Result<eval::QueryAnswer> ans =
      eval::AnswerQuery(&db, program, query, options);
  ASSERT_FALSE(ans.ok());
  EXPECT_EQ(ans.status().code(), StatusCode::kCancelled);
}

TEST_F(GuardTest, MagicQueryPartialModeReportsExhaustion) {
  GuardLimits limits;
  limits.max_tuples = 3;
  ExecutionGuard guard(limits);
  EvalOptions options;
  options.guard = &guard;
  options.on_exhaustion = EvalOptions::OnExhaustion::kPartial;

  storage::Database db;
  ast::Program program = ChainClosure(30);
  ast::Atom query = ParseOrDie("q(X) :- t(c0, X).").rules.front().body.front();
  Result<eval::QueryAnswer> ans =
      eval::AnswerQuery(&db, program, query, options);
  ASSERT_TRUE(ans.ok()) << ans.status();
  EXPECT_TRUE(ans->stats.exhausted);
}

TEST_F(GuardTest, TopDownHonoursGuard) {
  GuardLimits limits;
  limits.max_tuples = 3;
  ExecutionGuard guard(limits);

  storage::Database db;
  ast::Program program = ChainClosure(30);
  eval::TabledTopDown topdown(&db, program);
  topdown.set_guard(&guard);
  ast::Atom query = ParseOrDie("q(X) :- t(c0, X).").rules.front().body.front();
  Result<eval::QueryAnswer> ans = topdown.Query(query);
  ASSERT_FALSE(ans.ok());
  EXPECT_EQ(ans.status().code(), StatusCode::kResourceExhausted);
}

// --- Guard through the §2 expansion and the analyses ---------------------

TEST_F(GuardTest, ExpansionEnumerationHonoursGuard) {
  ast::RecursiveDefinition def = dire::testing::DefOrDie(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n",
      "t");

  CancellationToken token;
  token.Cancel();
  ExecutionGuard guard(GuardLimits{}, token);
  core::ExpansionEnumerator::Options options;
  options.guard = &guard;
  Result<std::vector<core::ExpansionString>> strings =
      core::ExpandToDepth(def, 4, options);
  ASSERT_FALSE(strings.ok());
  EXPECT_EQ(strings.status().code(), StatusCode::kCancelled);
}

TEST_F(GuardTest, BoundedRewriteHonoursGuard) {
  ast::RecursiveDefinition def = dire::testing::DefOrDie(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n",
      "t");

  CancellationToken token;
  token.Cancel();
  ExecutionGuard guard(GuardLimits{}, token);
  core::RewriteOptions options;
  options.guard = &guard;
  Result<core::RewriteResult> r = core::BoundedRewrite(def, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST_F(GuardTest, IndependenceTestsHonourGuard) {
  ast::RecursiveDefinition def = dire::testing::DefOrDie(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n",
      "t");

  CancellationToken token;
  token.Cancel();
  ExecutionGuard guard(GuardLimits{}, token);
  Result<core::StrongIndependenceResult> strong =
      core::TestStrongIndependence(def, &guard);
  ASSERT_FALSE(strong.ok());
  EXPECT_EQ(strong.status().code(), StatusCode::kCancelled);
  Result<core::WeakIndependenceResult> weak =
      core::TestWeakIndependence(def, &guard);
  ASSERT_FALSE(weak.ok());
  EXPECT_EQ(weak.status().code(), StatusCode::kCancelled);
}

// --- Failpoints ----------------------------------------------------------

TEST_F(GuardTest, FailpointFiresDeterministicallyInItsWindow) {
  // Assert the hit/fire accounting through the metrics registry
  // (dire_failpoint_{hits,fires}_total{site=...}): per-site series are
  // cumulative across the process, so compare against a baseline.
  obs::Counter* hits =
      obs::GetCounter("dire_failpoint_hits_total", nullptr,
                      {{"site", "test.window"}});
  obs::Counter* fires =
      obs::GetCounter("dire_failpoint_fires_total", nullptr,
                      {{"site", "test.window"}});
  const uint64_t hits0 = hits->value();
  const uint64_t fires0 = fires->value();

  failpoints::Config window;
  window.skip = 2;
  window.fire_count = 2;
  failpoints::Enable("test.window", window);
  EXPECT_TRUE(failpoints::Check("test.window").ok());   // hit 0
  EXPECT_TRUE(failpoints::Check("test.window").ok());   // hit 1
  EXPECT_FALSE(failpoints::Check("test.window").ok());  // hit 2: fires
  EXPECT_FALSE(failpoints::Check("test.window").ok());  // hit 3: fires
  EXPECT_TRUE(failpoints::Check("test.window").ok());   // hit 4: window over
  if (obs::kEnabled) {
    EXPECT_EQ(hits->value() - hits0, 5u);
    EXPECT_EQ(fires->value() - fires0, 2u);
  } else {
    EXPECT_EQ(failpoints::HitCount("test.window"), 5);
  }
  failpoints::Disable("test.window");
  EXPECT_TRUE(failpoints::Check("test.window").ok());
  // Disarming clears the registry's per-site state but not the cumulative
  // metrics; a disarmed site's checks do not count as hits.
  EXPECT_EQ(failpoints::HitCount("test.window"), 0);
  if (obs::kEnabled) {
    EXPECT_EQ(hits->value() - hits0, 5u);
  }
}

TEST_F(GuardTest, InsertFailpointSurfacesCleanErrorAndConsistentDatabase) {
  ast::Program program = ChainClosure(20);
  std::set<storage::Tuple> closure = FullClosureTuples(program);

  // Let the 20 EDB fact inserts pass, then fail mid-stratum on a derived
  // insert.
  failpoints::Config config;
  config.skip = 25;
  failpoints::Scoped fp("storage.relation_insert", config);
  storage::Database db;
  Evaluator ev(&db);
  Result<EvalStats> r = ev.Evaluate(program);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("failpoint"), std::string::npos);
  EXPECT_GT(failpoints::HitCount("storage.relation_insert"), 25);

  // The database holds the EDB plus a sound prefix of the closure.
  const storage::Relation* e = db.Find("e");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->size(), 20u);
  const storage::Relation* t = db.Find("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->size(), 5u);  // Exactly the inserts that passed the window.
  for (storage::RowRef tuple : t->rows()) {
    EXPECT_EQ(closure.count(storage::Tuple(tuple.begin(), tuple.end())), 1u);
  }
}

TEST_F(GuardTest, AllocationFailpointFailsRelationCreation) {
  failpoints::Config config;
  config.code = StatusCode::kInternal;
  config.message = "injected allocation failure";
  failpoints::Scoped fp("storage.allocate_relation", config);
  storage::Database db;
  Evaluator ev(&db);
  Result<EvalStats> r = ev.Evaluate(ChainClosure(3));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "injected allocation failure");
}

TEST_F(GuardTest, StratumFailpointStopsBetweenStrata) {
  // Two strata: t's closure, then s reading t.
  ast::Program program = ParseOrDie(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n"
      "s(X) :- t(X, Y).\n"
      "e(a, b).\n"
      "e(b, c).\n");
  failpoints::Config config;
  config.skip = 1;
  failpoints::Scoped fp("eval.stratum", config);
  storage::Database db;
  Evaluator ev(&db);
  Result<EvalStats> r = ev.Evaluate(program);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  // The first stratum completed; the second never started.
  const storage::Relation* t = db.Find("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->size(), 3u);
  const storage::Relation* s = db.Find("s");
  EXPECT_TRUE(s == nullptr || s->empty());
}

}  // namespace
}  // namespace dire
