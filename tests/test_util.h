#ifndef DIRE_TESTS_TEST_UTIL_H_
#define DIRE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "dire.h"

namespace dire::testing {

// gtest-friendly unwrap helpers: fail the test with the Status message.
inline ast::Program ParseOrDie(std::string_view text) {
  Result<ast::Program> p = parser::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.status().ToString());
  return p.ok() ? std::move(p).value() : ast::Program{};
}

inline ast::RecursiveDefinition DefOrDie(std::string_view text,
                                         const std::string& target) {
  ast::Program p = ParseOrDie(text);
  Result<ast::RecursiveDefinition> d = ast::MakeDefinition(p, target);
  EXPECT_TRUE(d.ok()) << (d.ok() ? "" : d.status().ToString());
  return d.ok() ? std::move(d).value() : ast::RecursiveDefinition{};
}

inline core::RecursionAnalysis AnalyzeOrDie(std::string_view text,
                                            const std::string& target) {
  ast::Program p = ParseOrDie(text);
  Result<core::RecursionAnalysis> a = core::AnalyzeRecursion(p, target);
  EXPECT_TRUE(a.ok()) << (a.ok() ? "" : a.status().ToString());
  if (!a.ok()) std::abort();
  return std::move(a).value();
}

// --------------------------------------------------------------------------
// The paper's example rule sets, verbatim.
// --------------------------------------------------------------------------

// Example 1.1 / 2.1 / 4.2 / Figure 2/5: transitive closure.
inline constexpr std::string_view kTransitiveClosure = R"(
  t(X, Y) :- e(X, Z), t(Z, Y).
  t(X, Y) :- e(X, Y).
)";

// Example 1.2: trendy consumers ("buys").
inline constexpr std::string_view kBuys = R"(
  buys(X, Y) :- likes(X, Y).
  buys(X, Y) :- trendy(X), buys(Z, Y).
)";

// Example 3.3 / Figure 4.
inline constexpr std::string_view kExample33 = R"(
  t(X, Y, Z) :- t(W, W, X), p(Y, Z).
  t(X, Y, Z) :- e(X, Y, Z).
)";

// Example 4.2 second rule / Figure 6: a two-segment chain generating path.
inline constexpr std::string_view kTwoSegment = R"(
  t(X, Y) :- p(X, W), q(W, Z), t(Z, Y).
  t(X, Y) :- e(X, Y).
)";

// Example 4.3 / Figure 7.
inline constexpr std::string_view kExample43 = R"(
  t(X, Y, Z) :- p(X, Z), t(Y, M, N), q(M, N).
  t(X, Y, Z) :- e(X, Y, Z).
)";

// Example 4.4: strongly data independent despite a chain generating path
// (repeated nonrecursive predicate e).
inline constexpr std::string_view kExample44 = R"(
  t(X, Y, Z) :- t(X, W, Z), e(W, Y), e(W, Z), e(Z, Z), e(Z, Y).
  t(X, Y, Z) :- t0(X, Y, Z).
)";

// Example 4.5 / Figure 8: no chain generating path.
inline constexpr std::string_view kExample45 = R"(
  t(X, Y, Z) :- t(Y, X, W), e(X, W).
  t(X, Y, Z) :- t0(X, Y, Z).
)";

// Example 4.6, second pair (r3/r4): weakly data independent although the
// recursive rule is not strongly data independent.
inline constexpr std::string_view kExample46 = R"(
  t(X, Y) :- t(X, Z), e(Z, Y), e(X, W), e(W, Y).
  t(X, Y) :- e(X, Y).
)";

// Example 4.6 variant: transitive-closure rule with the exit rule
// t(X,Y) :- e(W,Y), which makes the pair data independent.
inline constexpr std::string_view kTcLooseExit = R"(
  t(X, Y) :- e(X, Z), t(Z, Y).
  t(X, Y) :- e(W, Y).
)";

// Example 4.7 / Figures 9-11: three exit rules for one recursive rule.
inline constexpr std::string_view kExample47RecRule =
    "t(X, Y, U, W) :- t(X, M, M, Y), e(M, Y).";
inline constexpr std::string_view kExample47ExitA =
    "t(X, Y, U, W) :- e(X, X).";  // Not connected.
inline constexpr std::string_view kExample47ExitB =
    "t(X, Y, U, W) :- e(U, W).";  // Connected but redundant.
inline constexpr std::string_view kExample47ExitC =
    "t(X, Y, U, W) :- e(U, U).";  // Connected and irredundant: dependent.

// Example 5.1 / Figures 12-15: two individually-independent rules whose
// combination has a chain generating path.
inline constexpr std::string_view kExample51 = R"(
  t(X, Y, Z) :- t(X, U, Z), p1(U, Z).
  t(X, Y, Z) :- t(X, Y, V), p2(V, Y).
  t(X, Y, Z) :- e(X, Y).
)";
inline constexpr std::string_view kExample51R1Only = R"(
  t(X, Y, Z) :- t(X, U, Z), p1(U, Z).
  t(X, Y, Z) :- e(X, Y).
)";
inline constexpr std::string_view kExample51R2Only = R"(
  t(X, Y, Z) :- t(X, Y, V), p2(V, Y).
  t(X, Y, Z) :- e(X, Y).
)";

// Example 6.1: the b predicate is not connected to the unbounded chain.
inline constexpr std::string_view kExample61 = R"(
  t(X, Y) :- e(X, Z), b(W, Y), t(Z, Y).
  t(X, Y) :- t0(X, Y).
)";

}  // namespace dire::testing

#endif  // DIRE_TESTS_TEST_UTIL_H_
