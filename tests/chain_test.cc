#include <gtest/gtest.h>

#include "core/chain.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

using dire::testing::AnalyzeOrDie;
using dire::testing::DefOrDie;

ChainAnalysis Detect(std::string_view program, const std::string& target,
                     AvGraph* graph_out = nullptr) {
  ast::RecursiveDefinition def = DefOrDie(program, target);
  Result<AvGraph> g = AvGraph::Build(def);
  EXPECT_TRUE(g.ok());
  if (!g.ok()) std::abort();
  Result<ChainAnalysis> c = DetectChains(*g);
  EXPECT_TRUE(c.ok()) << (c.ok() ? "" : c.status().ToString());
  if (graph_out != nullptr) *graph_out = *g;
  if (!c.ok()) std::abort();
  return std::move(c).value();
}

// Validates a witness: edges really connect consecutive nodes and the
// declared weight is the traversal sum.
void CheckWitness(const AvGraph& g, const ChainWitness& w) {
  ASSERT_EQ(w.nodes.size(), w.edges.size());
  int64_t total = 0;
  for (size_t i = 0; i < w.edges.size(); ++i) {
    const AvGraph::Edge& e = g.edges()[static_cast<size_t>(w.edges[i])];
    int a = w.nodes[i];
    int b = w.nodes[(i + 1) % w.nodes.size()];
    EXPECT_TRUE((e.from == a && e.to == b) || (e.from == b && e.to == a))
        << "edge " << i << " does not join nodes";
    if (e.kind == AvGraph::EdgeKind::kUnification) {
      total += e.from == a ? 1 : -1;
    }
  }
  EXPECT_EQ(total, w.weight);
  EXPECT_NE(w.weight, 0);
  // Simple cycle: no repeated nodes.
  std::set<int> distinct(w.nodes.begin(), w.nodes.end());
  EXPECT_EQ(distinct.size(), w.nodes.size());
}

TEST(Chain, TransitiveClosureWitnessIsValidCycle) {
  AvGraph g;
  ChainAnalysis c = Detect(dire::testing::kTransitiveClosure, "t", &g);
  ASSERT_TRUE(c.has_chain_generating_path);
  ASSERT_TRUE(c.witness.has_value());
  CheckWitness(g, *c.witness);
  // Example 4.2's path visits e1, e2, Z, t1, X: five nodes, weight 1.
  EXPECT_EQ(c.witness->nodes.size(), 5u);
  EXPECT_EQ(std::abs(c.witness->weight), 1);
}

TEST(Chain, TwoSegmentWitness) {
  AvGraph g;
  ChainAnalysis c = Detect(dire::testing::kTwoSegment, "t", &g);
  ASSERT_TRUE(c.has_chain_generating_path);
  ASSERT_TRUE(c.witness.has_value());
  CheckWitness(g, *c.witness);
}

TEST(Chain, MultiRuleWitnessExample51) {
  AvGraph g;
  ChainAnalysis c = Detect(dire::testing::kExample51, "t", &g);
  ASSERT_TRUE(c.has_chain_generating_path);
  ASSERT_TRUE(c.witness.has_value());
  CheckWitness(g, *c.witness);
  // The paper's chain alternates the two rules: period 2.
  EXPECT_EQ(std::abs(c.witness->weight), 2);
}

TEST(Chain, SurvivingNodesOfPhase1) {
  AvGraph g;
  ChainAnalysis c = Detect(dire::testing::kTransitiveClosure, "t", &g);
  // Y's cyclic component is removed; Z's tree survives.
  EXPECT_FALSE(c.surviving[static_cast<size_t>(g.VariableNode("Y"))]);
  EXPECT_TRUE(c.surviving[static_cast<size_t>(g.VariableNode("Z"))]);
  EXPECT_TRUE(c.surviving[static_cast<size_t>(g.VariableNode("X"))]);
}

// A rule whose only "cycle" has weight zero must NOT be reported: the chain
// generating path needs nonzero weight. t's body shares W between p and q
// at the same iteration — bounded repetition, no growing chain.
TEST(Chain, ZeroWeightCycleIsNotAChain) {
  ChainAnalysis c = Detect(R"(
    t(X, Y) :- p(X, W), q(X, W), t(X, Y).
    t(X, Y) :- e(X, Y).
  )", "t");
  EXPECT_FALSE(c.has_chain_generating_path);
}

// Hereditarily bounded pattern: the recursive atom repeats the head
// variables, so nothing can chain.
TEST(Chain, StaticRecursiveAtom) {
  ChainAnalysis c = Detect(R"(
    t(X, Y) :- e(X, W), t(X, Y).
    t(X, Y) :- e(X, Y).
  )", "t");
  EXPECT_FALSE(c.has_chain_generating_path);
}

// Example 6.1 chain-connectivity sets.
TEST(Chain, Example61Connectivity) {
  ChainAnalysis c = Detect(dire::testing::kExample61, "t");
  ASSERT_TRUE(c.has_chain_generating_path);
  EXPECT_EQ(c.atoms_on_chains, (std::set<AtomRef>{{0, 0}}));       // e only.
  EXPECT_EQ(c.chain_connected_atoms, (std::set<AtomRef>{{0, 0}}));
}

// Transitive connectivity: c shares a variable with e (on the chain), and d
// shares one with c — both are connected, none hoistable.
TEST(Chain, TransitiveConnectivityClosure) {
  ChainAnalysis c = Detect(R"(
    t(X, Y) :- e(X, Z), c(Z, V), d(V), t(Z, Y).
    t(X, Y) :- e(X, Y).
  )", "t");
  ASSERT_TRUE(c.has_chain_generating_path);
  EXPECT_TRUE(c.chain_connected_atoms.count({0, 1}) == 1);
  EXPECT_TRUE(c.chain_connected_atoms.count({0, 2}) == 1);
}

// Nonlinear rules: the A/V graph is still buildable and detection runs on
// every recursive atom's unification edges.
TEST(Chain, NonlinearRuleDetects) {
  ChainAnalysis c = Detect(R"(
    t(X, Y) :- t(X, Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
  )", "t");
  // Same-generation-style doubling: Z chains through the two t atoms.
  EXPECT_TRUE(c.has_chain_generating_path);
}

TEST(Chain, MultiRuleConsistencyRejectsMixedCycles) {
  // Two rules whose graphs only close a cycle by demanding both rules at
  // the same iteration parity everywhere; the classic TC split into two
  // alternating-only rules still chains (period 2), so detection must find
  // it; but a pair with genuinely incompatible assignments must not.
  ChainAnalysis alternating = Detect(R"(
    t(X, Y) :- a(X, Z), t(Z, Y).
    t(X, Y) :- b(X, Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
  )", "t");
  EXPECT_TRUE(alternating.has_chain_generating_path);
  EXPECT_TRUE(alternating.exact);
}

// Regression: a two-rule definition whose unbounded chain corresponds to a
// closed walk that is simple only in the weight-modular covering graph (it
// pumps a weight-1 rule cycle through the other rule's parallel
// identity/unification pair). The expansion keeps producing non-redundant
// strings forever along the alternating rule sequence, so the detector must
// NOT report "no chain" (which Theorem 5.1 would turn into a wrong
// independence claim). Found by the MultiRuleTheorem51 property suite.
TEST(Chain, CoveringGraphOnlyChainIsNotMissed) {
  ChainAnalysis c = Detect(R"(
    t(X, Y) :- p0(U0, Y), p1(Y, X), t(X, X).
    t(X, Y) :- q0(U1, U1), q1(V1, U1), t(V1, Y).
    t(X, Y) :- t0(X, Y).
  )", "t");
  EXPECT_TRUE(c.has_chain_generating_path);
  // No consistent simple-cycle witness exists in the base graph, so the
  // verdict is conservative.
  EXPECT_FALSE(c.exact);
}

TEST(Chain, RequiresRecursiveRule) {
  ast::Program p = dire::testing::ParseOrDie("t(X) :- e(X).");
  Result<ast::RecursiveDefinition> def = ast::MakeDefinition(p, "t");
  ASSERT_TRUE(def.ok());
  Result<AvGraph> g = AvGraph::Build(*def);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(DetectChains(*g).ok());
}

TEST(Chain, WitnessToStringNamesNodes) {
  AvGraph g;
  ChainAnalysis c = Detect(dire::testing::kTransitiveClosure, "t", &g);
  ASSERT_TRUE(c.witness.has_value());
  std::string s = c.witness->ToString(g);
  EXPECT_NE(s.find("weight"), std::string::npos);
  EXPECT_NE(s.find("cycle ["), std::string::npos);
}

}  // namespace
}  // namespace dire::core
