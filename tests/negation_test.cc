// Stratified negation-as-failure: a substrate feature of the evaluator.
// The paper's boundedness analysis covers definite rules only, so the
// analysis entry points must reject negated literals (also tested here).

#include <gtest/gtest.h>

#include "eval/magic.h"
#include "storage/generators.h"
#include "tests/test_util.h"

namespace dire {
namespace {

using dire::testing::ParseOrDie;

TEST(Negation, ParserAcceptsNotLiterals) {
  Result<ast::Rule> r =
      parser::ParseRule("alone(X) :- person(X), not likes(X, Y).");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->body[0].negated);
  EXPECT_TRUE(r->body[1].negated);
  EXPECT_EQ(r->ToString(), "alone(X) :- person(X), not likes(X,Y).");
  // Round trip.
  Result<ast::Rule> again = parser::ParseRule(r->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*r, *again);
}

TEST(Negation, NotAsPredicateNameStillWorks) {
  Result<ast::Rule> r = parser::ParseRule("q(X) :- not(X).");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->body[0].predicate, "not");
  EXPECT_FALSE(r->body[0].negated);
}

TEST(Negation, SetDifferenceEvaluation) {
  storage::Database db;
  eval::Evaluator ev(&db);
  Result<eval::EvalStats> stats = ev.Evaluate(ParseOrDie(R"(
    node(a). node(b). node(c).
    covered(a). covered(c).
    uncovered(X) :- node(X), not covered(X).
  )"));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(db.DumpRelation("uncovered"), "uncovered(b)\n");
}

TEST(Negation, NegationOverDerivedPredicate) {
  // Nodes that cannot reach d: negation over the transitive closure, a
  // lower stratum.
  storage::Database db;
  eval::Evaluator ev(&db);
  Result<eval::EvalStats> stats = ev.Evaluate(ParseOrDie(R"(
    e(a, b). e(b, c). e(c, d). e(x, y).
    node(a). node(b). node(c). node(d). node(x). node(y).
    t(X, Y) :- e(X, Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
    stuck(X) :- node(X), not t(X, d).
  )"));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(db.DumpRelation("stuck"), "stuck(d)\nstuck(x)\nstuck(y)\n");
}

TEST(Negation, UnstratifiableProgramRejected) {
  storage::Database db;
  eval::Evaluator ev(&db);
  Result<eval::EvalStats> stats = ev.Evaluate(ParseOrDie(R"(
    p(X) :- base(X), not q(X).
    q(X) :- base(X), not p(X).
  )"));
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("stratifiable"), std::string::npos);
}

TEST(Negation, SelfNegationRejected) {
  storage::Database db;
  eval::Evaluator ev(&db);
  Result<eval::EvalStats> stats =
      ev.Evaluate(ParseOrDie("p(X) :- base(X), not p(X)."));
  ASSERT_FALSE(stats.ok());
}

TEST(Negation, UnsafeNegationRejected) {
  storage::Database db;
  eval::Evaluator ev(&db);
  // Y occurs only under the negation: unsafe.
  Result<eval::EvalStats> stats =
      ev.Evaluate(ParseOrDie("p(X) :- base(X), not e(X, Y), anchor(X)."));
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("unsafe negation"),
            std::string::npos);
}

TEST(Negation, NegatedAtomNeverBindsOrProbes) {
  storage::SymbolTable symbols;
  Result<ast::Rule> rule =
      parser::ParseRule("p(X) :- base(X), not e(X, X).");
  ASSERT_TRUE(rule.ok());
  Result<eval::CompiledRule> plan = eval::CompileRule(*rule, &symbols, {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  const eval::CompiledAtom& last = plan->body.back();
  EXPECT_TRUE(last.negated);
  EXPECT_TRUE(last.bind_positions.empty());
  EXPECT_EQ(last.probe_position, -1);
}

TEST(Negation, MissingNegatedRelationMeansAlwaysTrue) {
  storage::Database db;
  eval::Evaluator ev(&db);
  Result<eval::EvalStats> stats = ev.Evaluate(ParseOrDie(R"(
    base(a). base(b).
    p(X) :- base(X), not ghost(X).
  )"));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(db.Find("p")->size(), 2u);
}

TEST(Negation, SemiNaiveAndNaiveAgreeWithNegation) {
  const char* program = R"(
    e(n0, n1). e(n1, n2). e(n2, n3). e(n0, n3). blocked(n2).
    path(X, Y) :- e(X, Y), not blocked(Y).
    path(X, Y) :- path(X, Z), e(Z, Y), not blocked(Y).
  )";
  storage::Database a;
  storage::Database b;
  eval::EvalOptions naive;
  naive.mode = eval::EvalOptions::Mode::kNaive;
  eval::Evaluator ea(&a, naive);
  eval::Evaluator eb(&b);
  ASSERT_TRUE(ea.Evaluate(ParseOrDie(program)).ok());
  ASSERT_TRUE(eb.Evaluate(ParseOrDie(program)).ok());
  EXPECT_EQ(a.DumpRelation("path"), b.DumpRelation("path"));
  EXPECT_NE(a.DumpRelation("path").find("path(n0,n3)"), std::string::npos);
  EXPECT_EQ(a.DumpRelation("path").find("path(n0,n2)"), std::string::npos);
}

TEST(Negation, AnalysisRejectsNegatedDefinitions) {
  ast::Program p = ParseOrDie(R"(
    t(X, Y) :- e(X, Z), not bad(Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
  )");
  Result<ast::RecursiveDefinition> def = ast::MakeDefinition(p, "t");
  ASSERT_FALSE(def.ok());
  EXPECT_NE(def.status().message().find("definite"), std::string::npos);
}

TEST(Negation, MagicSetsRejectsNegation) {
  ast::Program p = ParseOrDie(R"(
    t(X) :- base(X), not bad(X).
  )");
  Result<ast::Atom> q = parser::ParseAtom("t(a)");
  ASSERT_TRUE(q.ok());
  storage::Database db;
  Result<eval::QueryAnswer> ans = eval::AnswerQuery(&db, p, *q);
  ASSERT_FALSE(ans.ok());
}

TEST(Negation, StratificationReportedInDependencyGraph) {
  ast::Program good = ParseOrDie("p(X) :- base(X), not q(X). q(X) :- r(X).");
  ast::DependencyGraph g1(good);
  EXPECT_TRUE(g1.IsStratified());

  ast::Program bad = ParseOrDie("p(X) :- base(X), not p(X).");
  ast::DependencyGraph g2(bad);
  EXPECT_FALSE(g2.IsStratified());
  EXPECT_FALSE(g2.StratificationViolation().empty());
}

}  // namespace
}  // namespace dire
