#!/usr/bin/env bash
# Deterministic overload end-to-end for `dire serve`:
#
#   Phase 1: saturate a --max-inflight=1 --max-queue=1 server with two SLEEP
#   requests (one executing, one queued — observed via HEALTH, not timing),
#   then assert further work is shed with OVERLOADED and that STATS'
#   rejected_total matches the rejections the clients saw.
#
#   Phase 2: a server with a request deadline and a one-tuple budget answers
#   an over-budget QUERY with a sound PARTIAL prefix and a too-slow request
#   with a deadline ERROR, and counts both.
#
# Usage: serve_overload.sh /path/to/dire_cli
set -u

CLI="${1:?usage: serve_overload.sh /path/to/dire_cli}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/dire_serve_ovl.XXXXXX")"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

PROG="$WORK/tc.dl"
cat > "$PROG" << 'EOF'
t(X, Y) :- e(X, Z), t(Z, Y).
t(X, Y) :- e(X, Y).
EOF

start_server() { # data_dir log [extra flags...]
  local dir="$1" log="$2"
  shift 2
  rm -f "$WORK/port"
  "$CLI" serve "$PROG" --data-dir "$dir" --port-file "$WORK/port" "$@" \
      > "$log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 2000); do
    [ -s "$WORK/port" ] && { PORT="$(cat "$WORK/port")"; break; }
    kill -0 "$SERVER_PID" 2> /dev/null || fail "server died at startup: $(cat "$log")"
    sleep 0.005
  done
  [ -n "$PORT" ] || fail "server never wrote its port file"
}

stop_server() {
  kill -TERM "$SERVER_PID" 2> /dev/null
  wait "$SERVER_PID" 2> /dev/null
  SERVER_PID=""
}

request() { # line -> one response line
  local line="$1" response
  exec 3<> "/dev/tcp/127.0.0.1/$PORT" || return 1
  printf '%s\n' "$line" >&3 || { exec 3>&-; return 1; }
  IFS= read -r -t 15 response <&3 || { exec 3>&-; return 1; }
  exec 3>&-
  printf '%s\n' "$response"
}

# Full STATS body into a file.
stats_into() { # file
  exec 3<> "/dev/tcp/127.0.0.1/$PORT" || return 1
  printf 'STATS\n' >&3
  local line
  : > "$1"
  while IFS= read -r -t 15 line <&3; do
    [ "$line" = "END" ] && break
    printf '%s\n' "$line" >> "$1"
  done
  exec 3>&-
}

wait_ready() {
  for _ in $(seq 1 2000); do
    case "$(request HEALTH 2> /dev/null)" in "OK ready=1"*) return 0 ;; esac
    kill -0 "$SERVER_PID" 2> /dev/null || return 1
    sleep 0.005
  done
  return 1
}

# --- Phase 1: admission control sheds deterministically. ---------------------
echo "--- phase 1: saturation and shedding"
start_server "$WORK/shed" "$WORK/shed.log" \
    --max-inflight 1 --max-queue 1 --retry-after-ms 40
wait_ready || fail "shed server never became ready"

# One SLEEP executes, one waits in the queue; their connections block until
# the server answers, so run them in the background.
(request "SLEEP 3000" > "$WORK/sleep1.out") &
SLEEP1=$!
(request "SLEEP 3000" > "$WORK/sleep2.out") &
SLEEP2=$!

# HEALTH is answered inline even at saturation; wait until both SLEEPs hold
# their admission slots so the shed below is deterministic, not a race.
saturated=0
for _ in $(seq 1 2000); do
  case "$(request HEALTH)" in
    "OK ready=1 inflight=2"*) saturated=1; break ;;
  esac
  sleep 0.005
done
[ "$saturated" = 1 ] || fail "server never reached inflight=2"

shed=0
for _ in 1 2 3; do
  response="$(request "QUERY t(a, X)")" || fail "shed request got no answer"
  # The hint is deterministically jittered around the configured base (40):
  # any value in [base/2, 3*base/2] is legitimate, an exact repeat is not
  # guaranteed (that is the point of the jitter).
  case "$response" in
    "OVERLOADED retry-after-ms="*) ;;
    *) fail "expected OVERLOADED, got: $response" ;;
  esac
  hint="${response#OVERLOADED retry-after-ms=}"
  case "$hint" in
    '' | *[!0-9]*) fail "malformed retry hint: $response" ;;
  esac
  [ "$hint" -ge 20 ] && [ "$hint" -le 60 ] \
      || fail "retry hint $hint outside the jitter window [20, 60]"
  shed=$((shed + 1))
done

stats_into "$WORK/shed.stats"
grep -qx "rejected_total $shed" "$WORK/shed.stats" \
    || fail "rejected_total does not match $shed observed rejections: $(cat "$WORK/shed.stats")"
grep -qx "outstanding 2" "$WORK/shed.stats" \
    || fail "expected 2 outstanding during saturation"

wait "$SLEEP1" "$SLEEP2"
grep -qx "OK slept=3000" "$WORK/sleep1.out" || fail "first SLEEP was disturbed"
grep -qx "OK slept=3000" "$WORK/sleep2.out" || fail "queued SLEEP was disturbed"
stop_server
[ -e "$WORK/shed/LOCK" ] && fail "shed server leaked its LOCK"
echo "    $shed requests shed; counters agree; sleeps finished untouched"

# --- Phase 2: deadlines and tuple budgets degrade, gracefully. ---------------
echo "--- phase 2: deadlines and partial results"
start_server "$WORK/budget" "$WORK/budget.log" \
    --request-timeout-ms 150 --request-max-tuples 1 --on-exhaustion=partial
wait_ready || fail "budget server never became ready"

first="$(request "ADD e(a, b)")"
case "$first" in
  "OK added=1" | "PARTIAL added=1"*) ;;
  *) fail "unexpected first ADD response: $first" ;;
esac
second="$(request "ADD e(b, c)")"
case "$second" in
  "PARTIAL added=1 reason="*) ;;
  *) fail "expected PARTIAL on over-budget re-derivation, got: $second" ;;
esac

# Two tuples under a one-tuple budget: a sound prefix, tagged PARTIAL.
response="$(request "QUERY e(X, Y)")"
case "$response" in
  "PARTIAL 1 reason="*) ;;
  *) fail "expected PARTIAL 1 on over-budget QUERY, got: $response" ;;
esac

# A request that cannot finish inside the deadline errors out and is counted.
response="$(request "SLEEP 5000")"
case "$response" in
  "ERROR "*deadline*) ;;
  *) fail "expected a deadline ERROR from SLEEP, got: $response" ;;
esac

stats_into "$WORK/budget.stats"
grep -qx "timed_out_total 1" "$WORK/budget.stats" \
    || fail "timed_out_total did not count the deadline trip"
grep -Eqx "partial_total [1-9][0-9]*" "$WORK/budget.stats" \
    || fail "partial_total did not count the degraded answers"
stop_server
[ -e "$WORK/budget/LOCK" ] && fail "budget server leaked its LOCK"
echo "    deadline tripped and counted; partial prefix served and counted"

echo "PASS: overload shed deterministically; degradation counted and bounded"
