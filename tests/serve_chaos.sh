#!/usr/bin/env bash
# Chaos end-to-end for `dire serve`: run a live server under client traffic,
# SIGKILL it at failpoint-chosen moments inside the durable-commit protocol
# (WAL fsync, snapshot fsync, snapshot rename, fold entry) and inside
# incremental view maintenance (ivm.* sites), restart it over the stale
# lock, and verify
#
#   1. every acknowledged write's outcome survived the crash (acked ADDs
#      present, acked RETRACTs absent), and
#   2. the recovered database is byte-identical to a reference built by
#      replaying the recovered base facts serially into a fresh directory.
#
# Usage: serve_chaos.sh /path/to/dire_cli
set -u

CLI="${1:?usage: serve_chaos.sh /path/to/dire_cli}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/dire_serve_chaos.XXXXXX")"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

PROG="$WORK/tc.dl"
cat > "$PROG" << 'EOF'
t(X, Y) :- e(X, Z), t(Z, Y).
t(X, Y) :- e(X, Y).
EOF

# The failpoints fire only in -DDIRE_FAILPOINTS=ON builds (the default).
# The trailing unknown flag makes the probe exit fast either way: a
# failpoints-off build dies at --crash-at, a failpoints-on build at the
# unknown flag — before it ever starts serving.
if "$CLI" serve "$PROG" --data-dir "$WORK/probe" --crash-at probe.site \
    --chaos-probe-unknown-flag 2>&1 | grep -q "DIRE_FAILPOINTS=ON"; then
  echo "SKIP: failpoints are compiled out; chaos test needs them"
  exit 0
fi
rm -rf "$WORK/probe"

# Starts a server on an ephemeral port; sets SERVER_PID and PORT.
start_server() { # data_dir log [extra flags...]
  local dir="$1" log="$2"
  shift 2
  rm -f "$WORK/port"
  "$CLI" serve "$PROG" --data-dir "$dir" --port-file "$WORK/port" \
      --checkpoint-every-writes 3 "$@" > "$log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 2000); do
    if [ -s "$WORK/port" ]; then
      PORT="$(cat "$WORK/port")"
      break
    fi
    kill -0 "$SERVER_PID" 2> /dev/null || fail "server died at startup: $(cat "$log")"
    sleep 0.005
  done
  [ -n "$PORT" ] || fail "server never wrote its port file: $(cat "$log")"
}

# Waits until HEALTH answers ready=1 (recovery done).
wait_ready() {
  for _ in $(seq 1 2000); do
    local health
    health="$(request "HEALTH" 2> /dev/null)" || health=""
    case "$health" in "OK ready=1"*) return 0 ;; esac
    kill -0 "$SERVER_PID" 2> /dev/null || return 1
    sleep 0.005
  done
  return 1
}

# One single-line request/response against the current PORT.
request() { # line
  local line="$1" response
  exec 3<> "/dev/tcp/127.0.0.1/$PORT" || return 1
  printf '%s\n' "$line" >&3 || { exec 3>&-; return 1; }
  IFS= read -r -t 10 response <&3 || { exec 3>&-; return 1; }
  exec 3>&-
  printf '%s\n' "$response"
}

# STATS: prints every line up to END.
stats_lines() {
  exec 3<> "/dev/tcp/127.0.0.1/$PORT" || return 1
  printf 'STATS\n' >&3 || { exec 3>&-; return 1; }
  local line
  while IFS= read -r -t 10 line <&3; do
    [ "$line" = "END" ] && break
    printf '%s\n' "$line"
  done
  exec 3>&-
}

# A QUERY: prints the body tuples (between the status line and END).
query_tuples() { # atom
  exec 3<> "/dev/tcp/127.0.0.1/$PORT" || return 1
  printf 'QUERY %s\n' "$1" >&3 || { exec 3>&-; return 1; }
  local line first=1
  while IFS= read -r -t 10 line <&3; do
    [ "$line" = "END" ] && break
    if [ "$first" = 1 ]; then
      first=0 # Status line.
      case "$line" in OK* | PARTIAL*) continue ;; *) exec 3>&-; return 1 ;; esac
    fi
    printf '%s\n' "$line"
  done
  exec 3>&-
}

round=0
# Skip counts step over the hits of the startup recovery fold so the crash
# lands mid-traffic, not mid-startup. The fold checkpoints at the stratum
# boundary and again at completion, and each checkpoint atomically replaces
# the snapshot AND the replstate file — so one fold = four io.atomic.* hits.
for crash in "wal.sync:2" "io.atomic.fsync:4" "io.atomic.rename:4" \
    "server.checkpoint:1"; do
  round=$((round + 1))
  DIR="$WORK/round$round"
  echo "--- round $round: SIGKILL at $crash"

  start_server "$DIR" "$WORK/round$round.serve1.log" --crash-at "$crash"
  wait_ready || fail "round $round: server never became ready"

  # Client traffic: a chain of ADDs (monotone, so partial re-derivation at
  # the crash moment can never make a recovered answer wrong). Record every
  # fact the server acknowledged before it was killed.
  : > "$WORK/acked"
  for i in 0 1 2 3 4 5; do
    fact="e(n$i, n$((i + 1)))"
    response="$(request "ADD $fact")" || break
    case "$response" in
      "OK added="* | "PARTIAL added="*) echo "$fact" >> "$WORK/acked" ;;
      *) fail "round $round: unexpected ADD response: $response" ;;
    esac
  done

  # The crash site must actually have fired (the traffic above hits every
  # armed site within 6 writes at fold cadence 3).
  for _ in $(seq 1 2000); do
    kill -0 "$SERVER_PID" 2> /dev/null || break
    sleep 0.005
  done
  kill -0 "$SERVER_PID" 2> /dev/null \
      && fail "round $round: server survived traffic armed with $crash"
  wait "$SERVER_PID" 2> /dev/null
  SERVER_PID=""
  [ -s "$WORK/acked" ] || fail "round $round: no ADD was acknowledged"
  echo "    acked $(wc -l < "$WORK/acked") facts before the kill"

  # Offline scrub of the crashed directory: a SIGKILL may legitimately tear
  # the WAL tail, but every other checksum must still verify.
  "$CLI" verify --data-dir "$DIR" --allow-torn-tail > /dev/null \
      || fail "round $round: offline verify found damage beyond a torn tail"

  # Restart over the stale LOCK left by the SIGKILL. Recovery must succeed
  # without manual intervention and serve the acknowledged facts.
  start_server "$DIR" "$WORK/round$round.serve2.log"
  wait_ready || fail "round $round: restarted server never became ready: $(cat "$WORK/round$round.serve2.log")"
  grep -q "breaking stale data-dir lock" "$WORK/round$round.serve2.log" \
      || fail "round $round: restart did not report breaking the stale lock"

  query_tuples "e(X, Y)" | tr -d ' ' | sort > "$WORK/recovered"
  while IFS= read -r fact; do
    grep -qxF "$(printf '%s' "$fact" | tr -d ' ')" "$WORK/recovered" \
        || fail "round $round: acknowledged fact $fact lost after recovery"
  done < "$WORK/acked"

  # Graceful shutdown: drain, fold, release the lock.
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" 2> /dev/null
  SERVER_PID=""
  [ -e "$DIR/LOCK" ] && fail "round $round: graceful shutdown leaked the LOCK"

  # Byte-compare against a serially replayed reference: the same base facts
  # --add-ed one by one into a fresh directory must converge to a snapshot
  # byte-identical to the crashed-and-recovered server's.
  "$CLI" "$PROG" --data-dir "$DIR" --eval > /dev/null \
      || fail "round $round: post-recovery eval failed"
  REF="$WORK/ref$round"
  add_flags=()
  while IFS= read -r tuple; do
    add_flags+=(--add "$tuple")
  done < "$WORK/recovered"
  "$CLI" "$PROG" --data-dir "$REF" "${add_flags[@]}" --eval > /dev/null \
      || fail "round $round: reference replay failed"
  cmp "$DIR/snapshot.dire" "$REF/snapshot.dire" \
      || fail "round $round: recovered snapshot differs from serial replay"
  echo "    recovered snapshot byte-identical to serial replay"

  # After a graceful shutdown nothing may be torn: strict verify, both dirs.
  "$CLI" verify --data-dir "$DIR" > /dev/null \
      || fail "round $round: strict verify failed after graceful shutdown"
  "$CLI" verify --data-dir "$REF" > /dev/null \
      || fail "round $round: strict verify failed on the reference replay"
done

# --- SIGKILL inside incremental maintenance. The base fact is durably
# committed before ApplyDelta runs, so a crash at an ivm.* site tears only
# the in-memory derived state; recovery (itself maintenance over the
# checkpointed fixpoint when the WAL tail allows) must converge to the same
# bytes as a serial replay. Mixed ADD/RETRACT traffic is needed to reach
# the DRed delete sites, which fire only when a deletion overestimate is
# non-empty.
for crash in "ivm.apply:3" "ivm.insert_merge:2" "ivm.dred_delete" \
    "ivm.dred_rederive"; do
  round=$((round + 1))
  DIR="$WORK/round$round"
  echo "--- round $round: SIGKILL at $crash"

  start_server "$DIR" "$WORK/round$round.serve1.log" --crash-at "$crash"
  wait_ready || fail "round $round: server never became ready"

  # Six chain ADDs then two RETRACTs, recording every acknowledged op. The
  # single in-flight op at the kill is uncertain (its commit may or may not
  # have landed before the SIGKILL), so its fact is exempt from the state
  # check below; everything acknowledged is not.
  : > "$WORK/acked_ops"
  failed_fact=""
  for op in "ADD e(n0, n1)" "ADD e(n1, n2)" "ADD e(n2, n3)" \
      "ADD e(n3, n4)" "ADD e(n4, n5)" "ADD e(n5, n6)" \
      "RETRACT e(n0, n1)" "RETRACT e(n3, n4)"; do
    response="$(request "$op")" || { failed_fact="${op#* }"; break; }
    case "$response" in
      "OK "* | "PARTIAL "*) echo "$op" >> "$WORK/acked_ops" ;;
      *) fail "round $round: unexpected response to $op: $response" ;;
    esac
  done

  for _ in $(seq 1 2000); do
    kill -0 "$SERVER_PID" 2> /dev/null || break
    sleep 0.005
  done
  kill -0 "$SERVER_PID" 2> /dev/null \
      && fail "round $round: server survived traffic armed with $crash"
  wait "$SERVER_PID" 2> /dev/null
  SERVER_PID=""
  [ -s "$WORK/acked_ops" ] || fail "round $round: no write was acknowledged"
  echo "    acked $(wc -l < "$WORK/acked_ops") writes before the kill"

  "$CLI" verify --data-dir "$DIR" --allow-torn-tail > /dev/null \
      || fail "round $round: offline verify found damage beyond a torn tail"

  start_server "$DIR" "$WORK/round$round.serve2.log"
  wait_ready || fail "round $round: restarted server never became ready: $(cat "$WORK/round$round.serve2.log")"
  grep -q "breaking stale data-dir lock" "$WORK/round$round.serve2.log" \
      || fail "round $round: restart did not report breaking the stale lock"
  # Fold cadence 3 guarantees a completion checkpoint behind a short WAL
  # tail at every ivm.* crash moment, so the restart must have recovered by
  # maintaining that tail, not by re-deriving from the base facts.
  stats_lines | grep -qx "recovered_maintained 1" \
      || fail "round $round: restart did not recover by incremental maintenance"
  echo "    restart recovered by incremental maintenance"

  # The last acknowledged op on a fact decides its expected final state.
  query_tuples "e(X, Y)" | tr -d ' ' | sort > "$WORK/recovered"
  declare -A expect=()
  while IFS= read -r op; do
    expect["$(printf '%s' "${op#* }" | tr -d ' ')"]="${op%% *}"
  done < "$WORK/acked_ops"
  skip_fact="$(printf '%s' "$failed_fact" | tr -d ' ')"
  for fact in "${!expect[@]}"; do
    [ "$fact" = "$skip_fact" ] && continue
    if [ "${expect[$fact]}" = "ADD" ]; then
      grep -qxF "$fact" "$WORK/recovered" \
          || fail "round $round: acknowledged fact $fact lost after recovery"
    else
      grep -qxF "$fact" "$WORK/recovered" \
          && fail "round $round: retracted fact $fact resurrected by recovery"
    fi
  done
  unset expect

  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" 2> /dev/null
  SERVER_PID=""
  [ -e "$DIR/LOCK" ] && fail "round $round: graceful shutdown leaked the LOCK"

  "$CLI" "$PROG" --data-dir "$DIR" --eval > /dev/null \
      || fail "round $round: post-recovery eval failed"
  REF="$WORK/ref$round"
  add_flags=()
  while IFS= read -r tuple; do
    add_flags+=(--add "$tuple")
  done < "$WORK/recovered"
  "$CLI" "$PROG" --data-dir "$REF" "${add_flags[@]}" --eval > /dev/null \
      || fail "round $round: reference replay failed"
  cmp "$DIR/snapshot.dire" "$REF/snapshot.dire" \
      || fail "round $round: recovered snapshot differs from serial replay"
  echo "    recovered snapshot byte-identical to serial replay"

  "$CLI" verify --data-dir "$DIR" > /dev/null \
      || fail "round $round: strict verify failed after graceful shutdown"
  "$CLI" verify --data-dir "$REF" > /dev/null \
      || fail "round $round: strict verify failed on the reference replay"
done

echo "PASS: $round chaos rounds (acked writes survived; snapshots byte-identical)"
