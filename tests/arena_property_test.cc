// Property tests for the columnar arena behind storage::Relation
// (storage/relation.h): after any interleaving of Insert / Reserve /
// Clear, row ids must stay dense insertion-order indexes, the dedup table
// must agree with a reference set, duplicate-only candidate streams must
// not allocate (alloc_events), and the hash-index and sorted-run probe
// paths must return identical row ids — byte-for-byte interchangeable, as
// the per-probe planner choice requires. The frozen const surface (row(),
// ContainsHashed, ProbeFrozen, ProbeSortedFrozen) is also exercised from
// several threads at once so the TSan build checks the freeze contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "storage/relation.h"
#include "storage/value.h"

namespace dire::storage {
namespace {

Tuple RandomTuple(Rng* rng, size_t arity, uint64_t domain) {
  Tuple t;
  t.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    t.push_back(static_cast<ValueId>(rng->Uniform(domain)));
  }
  return t;
}

// Reference model: insertion-ordered distinct tuples plus a membership set.
struct Model {
  std::vector<Tuple> rows;
  std::set<Tuple> seen;

  bool Insert(const Tuple& t) {
    if (!seen.insert(t).second) return false;
    rows.push_back(t);
    return true;
  }
  void Clear() {
    rows.clear();
    seen.clear();
  }
};

void ExpectMatchesModel(const Relation& rel, const Model& model) {
  ASSERT_EQ(rel.size(), model.rows.size());
  for (size_t i = 0; i < model.rows.size(); ++i) {
    EXPECT_TRUE(RowEquals(rel.row(i), model.rows[i])) << "row " << i;
  }
  size_t i = 0;
  for (RowRef r : rel.rows()) {
    ASSERT_LT(i, model.rows.size());
    EXPECT_TRUE(RowEquals(r, model.rows[i])) << "rows() row " << i;
    ++i;
  }
  EXPECT_EQ(i, model.rows.size());
}

// Any interleaving of Insert / Reserve / Clear must leave the relation
// equal to the reference model: same distinct rows, in insertion order,
// with Insert's return value reporting newness exactly.
TEST(ArenaProperty, RandomInterleavingsMatchModel) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    size_t arity = 1 + rng.Uniform(4);
    Relation rel("r", arity);
    Model model;
    size_t last_bytes = rel.ApproxBytes();
    for (int step = 0; step < 600; ++step) {
      uint64_t op = rng.Uniform(100);
      if (op < 88) {
        Tuple t = RandomTuple(&rng, arity, /*domain=*/12);
        bool fresh = model.Insert(t);
        EXPECT_EQ(rel.Insert(t), fresh);
      } else if (op < 94) {
        rel.Reserve(rng.Uniform(64));
      } else if (op < 97) {
        // Duplicate-only burst: membership checks and re-inserts of rows
        // already present must not grow anything.
        if (!model.rows.empty()) {
          uint64_t before = rel.alloc_events();
          for (int k = 0; k < 10; ++k) {
            const Tuple& t =
                model.rows[rng.Uniform(model.rows.size())];
            EXPECT_TRUE(rel.Contains(t));
            EXPECT_FALSE(rel.Insert(t));
          }
          EXPECT_EQ(rel.alloc_events(), before);
        }
      } else {
        rel.Clear();
        model.Clear();
        last_bytes = 0;
      }
      // Capacity never shrinks between clears.
      EXPECT_GE(rel.ApproxBytes(), last_bytes);
      last_bytes = rel.ApproxBytes();
    }
    ExpectMatchesModel(rel, model);
    EXPECT_LE(rel.ArenaUtilization(), 1.0);
    if (!rel.empty()) {
      EXPECT_GT(rel.ArenaUtilization(), 0.0);
    }
  }
}

// HashRow is the canonical hash: the *Hashed entry points must agree with
// their hashing counterparts on every call.
TEST(ArenaProperty, HashedEntryPointsAgree) {
  Rng rng(7);
  Relation rel("r", 3);
  for (int step = 0; step < 500; ++step) {
    Tuple t = RandomTuple(&rng, 3, /*domain=*/9);
    uint64_t h = Relation::HashRow(t);
    bool contained = rel.Contains(t);
    EXPECT_EQ(rel.ContainsHashed(t, h), contained);
    EXPECT_EQ(rel.InsertHashed(t, h), !contained);
    EXPECT_TRUE(rel.Contains(t));
  }
}

// A duplicate-only candidate stream — the semi-naive head-dedup hot path —
// must be rejected with zero heap growth, however large the relation.
TEST(ArenaProperty, DuplicateStreamDoesNotAllocate) {
  Rng rng(11);
  Relation rel("r", 2);
  std::vector<Tuple> inserted;
  for (int i = 0; i < 5000; ++i) {
    Tuple t = RandomTuple(&rng, 2, /*domain=*/200);
    if (rel.Insert(t)) inserted.push_back(t);
  }
  ASSERT_FALSE(inserted.empty());
  uint64_t before = rel.alloc_events();
  for (int round = 0; round < 20; ++round) {
    for (const Tuple& t : inserted) {
      uint64_t h = Relation::HashRow(t);
      EXPECT_TRUE(rel.ContainsHashed(t, h));
      EXPECT_FALSE(rel.InsertHashed(t, h));
    }
  }
  EXPECT_EQ(rel.alloc_events(), before);
}

// Reserve pre-pays growth: inserts within the reservation must not trigger
// further growth events.
TEST(ArenaProperty, ReservePrePaysGrowth) {
  Rng rng(13);
  Relation rel("r", 2);
  rel.Reserve(4096);
  uint64_t after_reserve = rel.alloc_events();
  std::set<Tuple> seen;
  while (seen.size() < 3000) {
    Tuple t = RandomTuple(&rng, 2, /*domain=*/1000);
    if (seen.insert(t).second) {
      EXPECT_TRUE(rel.Insert(t));
    }
  }
  EXPECT_EQ(rel.alloc_events(), after_reserve);
}

// The hash index and the sorted-run index are interchangeable: for every
// probed value they return the same row ids in the same (ascending) order.
// Runs are created by interleaving inserts with EnsureSortedIndex, the way
// fixpoint rounds do.
TEST(ArenaProperty, SortedProbeMatchesHashProbe) {
  for (uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    size_t arity = 1 + rng.Uniform(3);
    Relation rel("r", arity);
    uint64_t domain = 1 + rng.Uniform(30);
    int batches = 1 + static_cast<int>(rng.Uniform(12));
    for (int b = 0; b < batches; ++b) {
      int n = static_cast<int>(rng.Uniform(80));
      for (int i = 0; i < n; ++i) {
        rel.Insert(RandomTuple(&rng, arity, domain));
      }
      for (size_t col = 0; col < arity; ++col) rel.EnsureSortedIndex(col);
    }
    for (size_t col = 0; col < arity; ++col) {
      rel.EnsureIndex(col);
      ASSERT_TRUE(rel.HasSortedIndex(col));
      std::vector<uint32_t> sorted_rows;
      for (ValueId v = 0; v < domain; ++v) {
        const std::vector<uint32_t>& hash_rows = rel.ProbeFrozen(col, v);
        sorted_rows.clear();
        rel.ProbeSortedFrozen(col, v, &sorted_rows);
        EXPECT_EQ(sorted_rows, hash_rows)
            << "seed=" << seed << " col=" << col << " value=" << v;
      }
    }
  }
}

// Range probes return exactly the brute-force row set, and runs collapse
// to at most kMaxSortedRuns (compaction to exactly one).
TEST(ArenaProperty, SortedRangeAndCompaction) {
  Rng rng(17);
  Relation rel("r", 2);
  // More Ensure calls than the run cap, to force at least one merge.
  for (int b = 0; b < 20; ++b) {
    for (int i = 0; i < 25; ++i) {
      rel.Insert(RandomTuple(&rng, 2, /*domain=*/40));
    }
    rel.EnsureSortedIndex(0);
    EXPECT_LE(rel.SortedRunCount(0), 9u);  // kMaxSortedRuns + the new run.
  }
  auto brute = [&rel](ValueId lo, ValueId hi) {
    std::set<uint32_t> out;
    for (uint32_t i = 0; i < rel.size(); ++i) {
      ValueId v = rel.row(i)[0];
      if (lo <= v && v <= hi) out.insert(i);
    }
    return out;
  };
  std::vector<uint32_t> got;
  for (int trial = 0; trial < 50; ++trial) {
    ValueId lo = static_cast<ValueId>(rng.Uniform(40));
    ValueId hi = lo + static_cast<ValueId>(rng.Uniform(10));
    got.clear();
    rel.ProbeSortedRange(0, lo, hi, &got);
    std::set<uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set.size(), got.size()) << "duplicate row ids";
    EXPECT_EQ(got_set, brute(lo, hi)) << "lo=" << lo << " hi=" << hi;
  }
  rel.CompactSortedIndex(0);
  EXPECT_EQ(rel.SortedRunCount(0), 1u);
  got.clear();
  rel.ProbeSortedRange(0, 0, 39, &got);
  EXPECT_EQ(got.size(), rel.size());
}

// MergeJoinSorted equals the nested-loop join, pair for pair.
TEST(ArenaProperty, MergeJoinMatchesNestedLoop) {
  for (uint64_t seed = 200; seed < 206; ++seed) {
    Rng rng(seed);
    Relation a("a", 2);
    Relation b("b", 2);
    uint64_t domain = 1 + rng.Uniform(25);
    int na = static_cast<int>(rng.Uniform(200));
    int nb = static_cast<int>(rng.Uniform(200));
    for (int i = 0; i < na; ++i) {
      a.Insert(RandomTuple(&rng, 2, domain));
    }
    for (int i = 0; i < nb; ++i) {
      b.Insert(RandomTuple(&rng, 2, domain));
    }
    a.CompactSortedIndex(1);
    b.CompactSortedIndex(0);
    std::set<std::pair<uint32_t, uint32_t>> expected;
    for (uint32_t i = 0; i < a.size(); ++i) {
      for (uint32_t j = 0; j < b.size(); ++j) {
        if (a.row(i)[1] == b.row(j)[0]) expected.emplace(i, j);
      }
    }
    std::set<std::pair<uint32_t, uint32_t>> got;
    MergeJoinSorted(a, 1, b, 0, [&got](uint32_t ra, uint32_t rb) {
      EXPECT_TRUE(got.emplace(ra, rb).second) << "pair yielded twice";
    });
    EXPECT_EQ(got, expected) << "seed=" << seed;
  }
}

// Frozen-view thread safety: after EnsureIndex / EnsureSortedIndex, the
// const surface must be callable from many threads at once. Run under the
// TSan build, this is the regression test for the freeze contract the
// parallel evaluator relies on.
TEST(ArenaProperty, FrozenConstSurfaceIsThreadSafe) {
  Rng rng(23);
  Relation rel("r", 2);
  for (int i = 0; i < 2000; ++i) {
    rel.Insert(RandomTuple(&rng, 2, /*domain=*/64));
  }
  rel.EnsureIndex(0);
  rel.EnsureIndex(1);
  rel.EnsureSortedIndex(0);
  rel.EnsureSortedIndex(1);
  ASSERT_TRUE(rel.HasSortedIndex(0));
  const Relation& frozen = rel;

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&frozen, t] {
      Rng local(static_cast<uint64_t>(t) + 31);
      std::vector<uint32_t> scratch;
      size_t checksum = 0;
      for (int step = 0; step < 4000; ++step) {
        ValueId v = static_cast<ValueId>(local.Uniform(64));
        size_t col = local.Uniform(2);
        checksum += frozen.ProbeFrozen(col, v).size();
        scratch.clear();
        frozen.ProbeSortedFrozen(col, v, &scratch);
        checksum += scratch.size();
        RowRef row = frozen.row(local.Uniform(frozen.size()));
        Tuple copy(row.begin(), row.end());
        checksum += frozen.Contains(copy) ? 1 : 0;
      }
      EXPECT_GT(checksum, 0u);
    });
  }
  for (std::thread& th : threads) th.join();
}

// ToString (the snapshot text form) is a pure function of the inserted
// tuple sequence: rebuilding through a different Reserve/duplicate
// interleaving yields byte-identical output.
TEST(ArenaProperty, ToStringIndependentOfGrowthPath) {
  Rng rng(29);
  SymbolTable symbols;
  for (int i = 0; i < 50; ++i) {
    // Built without `const char* + temporary` concatenation, which GCC
    // 12's -Wrestrict misfires on under -O2.
    std::string sym("v");
    sym += std::to_string(i);
    symbols.Intern(sym);
  }
  std::vector<Tuple> tuples;
  for (int i = 0; i < 400; ++i) {
    tuples.push_back(RandomTuple(&rng, 3, /*domain=*/50));
  }
  Relation plain("r", 3);
  for (const Tuple& t : tuples) plain.Insert(t);

  Relation reserved("r", 3);
  reserved.Reserve(tuples.size());
  for (const Tuple& t : tuples) {
    reserved.Insert(t);
    reserved.Insert(t);  // Immediate duplicate; must be invisible.
  }
  EXPECT_EQ(plain.ToString(symbols), reserved.ToString(symbols));
  EXPECT_EQ(plain.CopyTuples(), reserved.CopyTuples());
}

}  // namespace
}  // namespace dire::storage
