#include <gtest/gtest.h>

#include "eval/provenance.h"
#include "storage/generators.h"
#include "tests/test_util.h"

namespace dire::eval {
namespace {

using dire::testing::ParseOrDie;

ast::Atom Fact(std::string_view text) {
  Result<ast::Atom> a = parser::ParseAtom(text);
  EXPECT_TRUE(a.ok());
  return std::move(a).value();
}

// Validates well-foundedness: premise rounds strictly below conclusion
// rounds, recursively.
void CheckWellFounded(const Derivation& node, storage::Database* db,
                      const ProvenanceTracker& tracker) {
  if (node.rule_index < 0) {
    EXPECT_TRUE(node.premises.empty());
    return;
  }
  storage::Tuple tuple;
  for (const ast::Term& t : node.fact.args) {
    tuple.push_back(db->symbols().Intern(t.text()));
  }
  int my_round = tracker.RoundOf(node.fact.predicate, tuple);
  EXPECT_GT(my_round, 0);
  for (const Derivation& premise : node.premises) {
    if (premise.fact.negated) continue;
    storage::Tuple pt;
    for (const ast::Term& t : premise.fact.args) {
      pt.push_back(db->symbols().Intern(t.text()));
    }
    EXPECT_LT(tracker.RoundOf(premise.fact.predicate, pt), my_round);
    CheckWellFounded(premise, db, tracker);
  }
}

TEST(Provenance, ExplainsTransitiveClosureFact) {
  ast::Program p = ParseOrDie(R"(
    e(a, b). e(b, c). e(c, d).
    t(X, Y) :- e(X, Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
  )");
  storage::Database db;
  ProvenanceTracker tracker;
  EvalOptions opts;
  opts.tracker = &tracker;
  Evaluator ev(&db, opts);
  ASSERT_TRUE(ev.Evaluate(p).ok());

  Result<Derivation> d = Explain(&db, p, tracker, Fact("t(a, d)"));
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->fact.ToString(), "t(a,d)");
  EXPECT_GE(d->rule_index, 0);
  CheckWellFounded(*d, &db, tracker);

  std::string text = d->ToString();
  EXPECT_NE(text.find("t(a,d)"), std::string::npos);
  EXPECT_NE(text.find("[edb]"), std::string::npos);
  EXPECT_NE(text.find("[rule"), std::string::npos);
}

TEST(Provenance, EdbFactIsALeaf) {
  ast::Program p = ParseOrDie(R"(
    e(a, b).
    t(X, Y) :- e(X, Y).
  )");
  storage::Database db;
  ProvenanceTracker tracker;
  EvalOptions opts;
  opts.tracker = &tracker;
  Evaluator ev(&db, opts);
  ASSERT_TRUE(ev.Evaluate(p).ok());
  Result<Derivation> d = Explain(&db, p, tracker, Fact("e(a, b)"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->rule_index, -1);
  EXPECT_TRUE(d->premises.empty());
}

TEST(Provenance, MissingFactReported) {
  ast::Program p = ParseOrDie("e(a, b). t(X, Y) :- e(X, Y).");
  storage::Database db;
  ProvenanceTracker tracker;
  EvalOptions opts;
  opts.tracker = &tracker;
  Evaluator ev(&db, opts);
  ASSERT_TRUE(ev.Evaluate(p).ok());
  Result<Derivation> d = Explain(&db, p, tracker, Fact("t(b, a)"));
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST(Provenance, RequiresTracker) {
  ast::Program p = ParseOrDie("e(a, b). t(X, Y) :- e(X, Y).");
  storage::Database db;
  Evaluator ev(&db);  // No tracker attached.
  ASSERT_TRUE(ev.Evaluate(p).ok());
  ProvenanceTracker empty;
  Result<Derivation> d = Explain(&db, p, empty, Fact("t(a, b)"));
  ASSERT_FALSE(d.ok());
  EXPECT_NE(d.status().message().find("ProvenanceTracker"),
            std::string::npos);
}

TEST(Provenance, RequiresGroundFact) {
  ast::Program p = ParseOrDie("e(a, b). t(X, Y) :- e(X, Y).");
  storage::Database db;
  ProvenanceTracker tracker;
  EvalOptions opts;
  opts.tracker = &tracker;
  Evaluator ev(&db, opts);
  ASSERT_TRUE(ev.Evaluate(p).ok());
  EXPECT_FALSE(Explain(&db, p, tracker, Fact("t(a, Y)")).ok());
}

TEST(Provenance, NegatedPremiseRendered) {
  ast::Program p = ParseOrDie(R"(
    node(a). node(b). covered(b).
    free(X) :- node(X), not covered(X).
  )");
  storage::Database db;
  ProvenanceTracker tracker;
  EvalOptions opts;
  opts.tracker = &tracker;
  Evaluator ev(&db, opts);
  ASSERT_TRUE(ev.Evaluate(p).ok());
  Result<Derivation> d = Explain(&db, p, tracker, Fact("free(a)"));
  ASSERT_TRUE(d.ok()) << d.status();
  ASSERT_EQ(d->premises.size(), 2u);
  EXPECT_TRUE(d->premises[1].fact.negated);
  EXPECT_NE(d->ToString().find("[absent]"), std::string::npos);
}

TEST(Provenance, DeepChainExplainsEveryHop) {
  ast::Program rules = ParseOrDie(dire::testing::kTransitiveClosure);
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 12).ok());
  ProvenanceTracker tracker;
  EvalOptions opts;
  opts.tracker = &tracker;
  Evaluator ev(&db, opts);
  ASSERT_TRUE(ev.Evaluate(rules).ok());
  Result<Derivation> d = Explain(&db, rules, tracker, Fact("t(n0, n11)"));
  ASSERT_TRUE(d.ok()) << d.status();
  // The derivation tree must bottom out in e facts; count leaves.
  int leaves = 0;
  std::vector<const Derivation*> stack = {&*d};
  while (!stack.empty()) {
    const Derivation* n = stack.back();
    stack.pop_back();
    if (n->premises.empty()) ++leaves;
    for (const Derivation& c : n->premises) stack.push_back(&c);
  }
  EXPECT_EQ(leaves, 11);  // Eleven edges justify the 11-hop path.
  CheckWellFounded(*d, &db, tracker);
}

TEST(Provenance, EveryDerivedTupleIsExplainable) {
  ast::Program p = ParseOrDie(R"(
    e(n0, n1). e(n1, n2). e(n2, n0). e(n2, n3).
    t(X, Y) :- e(X, Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
  )");
  storage::Database db;
  ProvenanceTracker tracker;
  EvalOptions opts;
  opts.tracker = &tracker;
  Evaluator ev(&db, opts);
  ASSERT_TRUE(ev.Evaluate(p).ok());
  const storage::Relation* t = db.Find("t");
  ASSERT_NE(t, nullptr);
  for (storage::RowRef tuple : t->rows()) {
    ast::Atom fact("t", {ast::Term::Const(db.symbols().Name(tuple[0])),
                         ast::Term::Const(db.symbols().Name(tuple[1]))});
    Result<Derivation> d = Explain(&db, p, tracker, fact);
    EXPECT_TRUE(d.ok()) << fact.ToString() << ": " << d.status().ToString();
  }
}

}  // namespace
}  // namespace dire::eval
