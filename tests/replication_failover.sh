#!/usr/bin/env bash
# Failover chaos end-to-end for WAL-shipped replication: a primary under
# client traffic streams every committed record to a live follower; SIGKILL
# the primary at failpoint-chosen moments inside the durable-commit protocol,
# promote the follower (fencing the deposed directory), and verify
#
#   1. every ADD the primary acknowledged is present on the new primary
#      (synchronous shipping: ack implies the follower durably applied it),
#   2. the promoted database converges to a snapshot byte-identical to a
#      serial replay of the same base facts into a fresh directory,
#   3. the deposed primary fails closed: a restart on the fenced directory
#      refuses to serve instead of split-braining, and
#   4. the offline verify scrub passes on every directory it should (and
#      the crashed one only with --allow-torn-tail).
#
# Usage: replication_failover.sh /path/to/dire_cli
set -u

CLI="${1:?usage: replication_failover.sh /path/to/dire_cli}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/dire_repl_failover.XXXXXX")"
PRIMARY_PID=""
FOLLOWER_PID=""

cleanup() {
  [ -n "$PRIMARY_PID" ] && kill -9 "$PRIMARY_PID" 2> /dev/null
  [ -n "$FOLLOWER_PID" ] && kill -9 "$FOLLOWER_PID" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

PROG="$WORK/tc.dl"
cat > "$PROG" << 'EOF'
t(X, Y) :- e(X, Z), t(Z, Y).
t(X, Y) :- e(X, Y).
EOF

# Failpoints fire only in -DDIRE_FAILPOINTS=ON builds (the default); skip
# cleanly when compiled out (same probe as serve_chaos.sh).
if "$CLI" serve "$PROG" --data-dir "$WORK/probe" --crash-at probe.site \
    --chaos-probe-unknown-flag 2>&1 | grep -q "DIRE_FAILPOINTS=ON"; then
  echo "SKIP: failpoints are compiled out; failover chaos needs them"
  exit 0
fi
rm -rf "$WORK/probe"

# Starts a server in the background and sets LAST_PID. Must run in this
# shell (not a command substitution) so the script can later `wait` the pid —
# fencing a SIGKILLed primary requires its zombie to be reaped first.
start_server() { # data_dir log port_file [extra flags...]
  local dir="$1" log="$2" port_file="$3"
  shift 3
  rm -f "$port_file"
  "$CLI" serve "$PROG" --data-dir "$dir" --port-file "$port_file" \
      --checkpoint-every-writes 3 "$@" > "$log" 2>&1 &
  LAST_PID=$!
}

wait_port() { # pid port_file log -> prints port
  local pid="$1" port_file="$2" log="$3"
  for _ in $(seq 1 2000); do
    if [ -s "$port_file" ]; then
      cat "$port_file"
      return 0
    fi
    kill -0 "$pid" 2> /dev/null || fail "server died at startup: $(cat "$log")"
    sleep 0.005
  done
  fail "server never wrote its port file: $(cat "$log")"
}

request() { # port line
  local port="$1" line="$2" response
  exec 3<> "/dev/tcp/127.0.0.1/$port" || return 1
  printf '%s\n' "$line" >&3 || { exec 3>&-; return 1; }
  IFS= read -r -t 10 response <&3 || { exec 3>&-; return 1; }
  exec 3>&-
  printf '%s\n' "$response"
}

wait_health() { # port pattern
  local port="$1" pattern="$2"
  for _ in $(seq 1 2000); do
    case "$(request "$port" HEALTH 2> /dev/null)" in
      $pattern) return 0 ;;
    esac
    sleep 0.005
  done
  return 1
}

query_tuples() { # port atom
  local port="$1"
  exec 3<> "/dev/tcp/127.0.0.1/$port" || return 1
  printf 'QUERY %s\n' "$2" >&3 || { exec 3>&-; return 1; }
  local line first=1
  while IFS= read -r -t 10 line <&3; do
    [ "$line" = "END" ] && break
    if [ "$first" = 1 ]; then
      first=0
      case "$line" in OK* | PARTIAL*) continue ;; *) exec 3>&-; return 1 ;; esac
    fi
    printf '%s\n' "$line"
  done
  exec 3>&-
}

round=0
# Kill sites inside the primary's commit protocol. Skip counts step over the
# startup recovery fold (two checkpoints, each replacing snapshot AND
# replstate: four io.atomic.* hits, one server.checkpoint; WAL appends only
# start with traffic). wal.append.short kills mid-append — an unacknowledged
# torn record the failover must shrug off.
for crash in "wal.sync:2" "io.atomic.fsync:4" "io.atomic.rename:4" \
    "server.checkpoint:1" "wal.append.short:3"; do
  round=$((round + 1))
  PRIM="$WORK/round$round.primary"
  FOLL="$WORK/round$round.follower"
  echo "--- round $round: SIGKILL primary at $crash"

  start_server "$PRIM" "$WORK/r$round.prim.log" "$WORK/prim.port" \
      --crash-at "$crash"
  PRIMARY_PID="$LAST_PID"
  PPORT="$(wait_port "$PRIMARY_PID" "$WORK/prim.port" "$WORK/r$round.prim.log")"
  start_server "$FOLL" "$WORK/r$round.foll.log" "$WORK/foll.port" \
      --replicate-from "127.0.0.1:$PPORT"
  FOLLOWER_PID="$LAST_PID"
  FPORT="$(wait_port "$FOLLOWER_PID" "$WORK/foll.port" "$WORK/r$round.foll.log")"

  wait_health "$PPORT" "OK ready=1*" || fail "round $round: primary not ready"
  wait_health "$FPORT" "OK ready=1*connected=1*" \
      || fail "round $round: follower never connected: $(cat "$WORK/r$round.foll.log")"

  # Traffic until the armed failpoint kills the primary. Every acknowledged
  # fact is recorded; with synchronous shipping the ack also means the
  # follower applied it durably.
  : > "$WORK/acked"
  for i in 0 1 2 3 4 5 6 7; do
    fact="e(n$i, n$((i + 1)))"
    response="$(request "$PPORT" "ADD $fact")" || break
    case "$response" in
      "OK added="* | "PARTIAL added="*) echo "$fact" >> "$WORK/acked" ;;
      *) fail "round $round: unexpected ADD response: $response" ;;
    esac
  done

  for _ in $(seq 1 2000); do
    kill -0 "$PRIMARY_PID" 2> /dev/null || break
    sleep 0.005
  done
  kill -0 "$PRIMARY_PID" 2> /dev/null \
      && fail "round $round: primary survived traffic armed with $crash"
  wait "$PRIMARY_PID" 2> /dev/null  # Reap: the fence needs the pid gone.
  PRIMARY_PID=""
  [ -s "$WORK/acked" ] || fail "round $round: no ADD was acknowledged"
  echo "    acked $(wc -l < "$WORK/acked") facts before the kill"

  # The crashed directory: everything but a torn WAL tail must verify.
  "$CLI" verify --data-dir "$PRIM" --allow-torn-tail > /dev/null \
      || fail "round $round: crashed primary dir has damage beyond a torn tail"

  # Promote the follower and fence the deposed directory in one step.
  "$CLI" promote "127.0.0.1:$FPORT" --fence-dir "$PRIM" \
      > "$WORK/r$round.promote.log" 2>&1 \
      || fail "round $round: promote failed: $(cat "$WORK/r$round.promote.log")"
  grep -q "^OK promoted epoch=" "$WORK/r$round.promote.log" \
      || fail "round $round: promote answered oddly: $(cat "$WORK/r$round.promote.log")"
  grep -q "^fenced " "$WORK/r$round.promote.log" \
      || fail "round $round: promote did not fence the deposed dir"

  # 1. Acked survival: every acknowledged fact answers on the new primary.
  query_tuples "$FPORT" "e(X, Y)" | tr -d ' ' | sort > "$WORK/recovered"
  while IFS= read -r fact; do
    grep -qxF "$(printf '%s' "$fact" | tr -d ' ')" "$WORK/recovered" \
        || fail "round $round: acked fact $fact lost across the failover"
  done < "$WORK/acked"
  # Re-adding an acked fact must be a no-op: it is already there.
  first_acked="$(head -n 1 "$WORK/acked")"
  [ "$(request "$FPORT" "ADD $first_acked")" = "OK added=0" ] \
      || fail "round $round: new primary did not already hold $first_acked"

  # The new primary accepts fresh writes and reports its role.
  [ "$(request "$FPORT" "ADD e(extra$round, n0)")" = "OK added=1" ] \
      || fail "round $round: promoted follower refused a write"
  case "$(request "$FPORT" HEALTH)" in
    *"role=primary"*) ;;
    *) fail "round $round: promoted follower does not report role=primary" ;;
  esac

  # 3. The deposed primary fails closed: restart refuses the fenced dir.
  if timeout 30 "$CLI" serve "$PROG" --data-dir "$PRIM" \
      > "$WORK/r$round.deposed.log" 2>&1; then
    fail "round $round: deposed primary restarted despite the fence"
  fi
  grep -q "fenced" "$WORK/r$round.deposed.log" \
      || fail "round $round: deposed restart failed for the wrong reason: $(cat "$WORK/r$round.deposed.log")"

  # Graceful shutdown of the new primary, then strict offline verify: a
  # clean stop leaves nothing torn anywhere — including the fenced dir,
  # whose tail was truncated and sealed by the fence.
  query_tuples "$FPORT" "e(X, Y)" | tr -d ' ' | sort > "$WORK/final_facts"
  kill -TERM "$FOLLOWER_PID"
  wait "$FOLLOWER_PID" 2> /dev/null
  FOLLOWER_PID=""
  "$CLI" verify --data-dir "$FOLL" > /dev/null \
      || fail "round $round: strict verify failed on the promoted dir"
  "$CLI" verify --data-dir "$PRIM" > /dev/null \
      || fail "round $round: strict verify failed on the fenced dir"

  # 2. Determinism: the promoted snapshot is byte-identical to a serial
  # replay of the same base facts into a fresh directory.
  "$CLI" "$PROG" --data-dir "$FOLL" --eval > /dev/null \
      || fail "round $round: post-failover eval failed"
  REF="$WORK/ref$round"
  add_flags=()
  while IFS= read -r tuple; do
    add_flags+=(--add "$tuple")
  done < "$WORK/final_facts"
  "$CLI" "$PROG" --data-dir "$REF" "${add_flags[@]}" --eval > /dev/null \
      || fail "round $round: reference replay failed"
  cmp "$FOLL/snapshot.dire" "$REF/snapshot.dire" \
      || fail "round $round: promoted snapshot differs from serial replay"
  echo "    promoted snapshot byte-identical to serial replay"
done

echo "PASS: $round failover rounds (acked facts survived promotion; deposed primaries fenced; snapshots byte-identical)"
