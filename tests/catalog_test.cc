// A catalog of recursive definitions with expected analysis outcomes —
// a regression corpus spanning the classes the paper distinguishes. Each
// entry records whether a chain generating path exists and the strong/weak
// verdicts; TEST_P runs the full analysis on every entry.

#include <gtest/gtest.h>

#include <string>

#include "tests/test_util.h"

namespace dire {
namespace {

using core::Verdict;

struct CatalogEntry {
  const char* name;
  const char* target;
  const char* rules;
  bool chain;
  Verdict strong;
  Verdict weak;
};

const CatalogEntry kCatalog[] = {
    // --- classic data dependent recursions -------------------------------
    {"transitive_closure", "t",
     "t(X,Y) :- e(X,Z), t(Z,Y). t(X,Y) :- e(X,Y).", true,
     Verdict::kDependent, Verdict::kDependent},
    {"left_linear_closure", "t",
     "t(X,Y) :- t(X,Z), e(Z,Y). t(X,Y) :- e(X,Y).", true,
     Verdict::kDependent, Verdict::kDependent},
    {"ancestor_with_names", "anc",
     "anc(X,Y) :- par(X,Z), anc(Z,Y). anc(X,Y) :- par(X,Y).", true,
     Verdict::kDependent, Verdict::kDependent},
    {"two_hop_chain", "t",  // Not regular: weak test abstains.
     "t(X,Y) :- p(X,W), q(W,Z), t(Z,Y). t(X,Y) :- e(X,Y).", true,
     Verdict::kDependent, Verdict::kUnknown},
    {"backward_chain", "t",
     "t(X,Y) :- e(Z,X), t(Z,Y). t(X,Y) :- e(X,Y).", true,
     Verdict::kDependent, Verdict::kDependent},
    {"both_args_chain", "t",  // Not regular: weak test abstains.
     "t(X,Y) :- p(X,U), q(Y,V), t(U,V). t(X,Y) :- e(X,Y).", true,
     Verdict::kDependent, Verdict::kUnknown},
    {"cross_shift", "t",  // Not regular: weak test abstains.
     "t(X,Y) :- p(X,W), q(Y,Z), t(Z,W). t(X,Y) :- e(X,Y).", true,
     Verdict::kDependent, Verdict::kUnknown},
    {"unary_growth", "t",
     "t(X) :- e(X,Z), t(Z). t(X) :- base(X).", true, Verdict::kDependent,
     Verdict::kDependent},

    // --- data independent recursions --------------------------------------
    {"buys", "buys",
     "buys(X,Y) :- likes(X,Y). buys(X,Y) :- trendy(X), buys(Z,Y).", false,
     Verdict::kIndependent, Verdict::kIndependent},
    {"static_recursive_atom", "t",
     "t(X,Y) :- e(X,W), t(X,Y). t(X,Y) :- e(X,Y).", false,
     Verdict::kIndependent, Verdict::kIndependent},
    {"swap_no_chain", "t",
     "t(X,Y,Z) :- t(Y,X,W), e(X,W). t(X,Y,Z) :- t0(X,Y,Z).", false,
     Verdict::kIndependent, Verdict::kIndependent},
    {"fresh_private_vars", "t",
     "t(X,Y) :- p(X), q(Y), t(U,V), b(U), c(V). t(X,Y) :- e(X,Y).", false,
     Verdict::kIndependent, Verdict::kIndependent},
    {"zero_weight_cycle_only", "t",
     "t(X,Y) :- p(X,W), q(X,W), t(X,Y). t(X,Y) :- e(X,Y).", false,
     Verdict::kIndependent, Verdict::kIndependent},
    {"unary_viral", "d",
     "d(X) :- famous(X). d(X) :- noble(X), d(Z).", false,
     Verdict::kIndependent, Verdict::kIndependent},
    {"three_arg_rotation_free", "t",
     "t(X,Y,Z) :- a(U), b(V), t(X,Y,Z). t(X,Y,Z) :- e(X,Y,Z).", false,
     Verdict::kIndependent, Verdict::kIndependent},

    {"filtered_chain", "t",  // Chain plus a unary filter riding it.
     "t(X,Y) :- e(X,Z), f(Z), t(Z,Y). t(X,Y) :- e(X,Y).", true,
     Verdict::kDependent, Verdict::kUnknown},
    {"left_linear_second_arg", "t",
     "t(X,Y) :- e(Y,Z), t(X,Z). t(X,Y) :- e(X,Y).", true,
     Verdict::kDependent, Verdict::kDependent},
    {"rotation_all_distinguished", "t",  // Period-3 rotation, no chain.
     "t(X,Y,Z) :- e(W), t(Y,Z,X). t(X,Y,Z) :- t0(X,Y,Z).", false,
     Verdict::kIndependent, Verdict::kIndependent},

    // --- chains present but the test abstains -----------------------------
    {"example_4_4_repeated_preds", "t",
     "t(X,Y,Z) :- t(X,W,Z), e(W,Y), e(W,Z), e(Z,Z), e(Z,Y). "
     "t(X,Y,Z) :- t0(X,Y,Z).",
     true, Verdict::kUnknown, Verdict::kUnknown},
    {"example_4_6_weak_only", "t",
     "t(X,Y) :- t(X,Z), e(Z,Y), e(X,W), e(W,Y). t(X,Y) :- e(X,Y).", true,
     Verdict::kUnknown, Verdict::kUnknown},

    // --- weak independence via Theorem 4.3 --------------------------------
    {"tc_loose_exit", "t",
     "t(X,Y) :- e(X,Z), t(Z,Y). t(X,Y) :- e(W,Y).", true,
     Verdict::kDependent, Verdict::kIndependent},
    {"example_4_7_unconnected", "t",
     "t(X,Y,U,W) :- t(X,M,M,Y), e(M,Y). t(X,Y,U,W) :- e(X,X).", true,
     Verdict::kDependent, Verdict::kIndependent},
    {"example_4_7_redundant", "t",
     "t(X,Y,U,W) :- t(X,M,M,Y), e(M,Y). t(X,Y,U,W) :- e(U,W).", true,
     Verdict::kDependent, Verdict::kIndependent},
    {"example_4_7_dependent", "t",
     "t(X,Y,U,W) :- t(X,M,M,Y), e(M,Y). t(X,Y,U,W) :- e(U,U).", true,
     Verdict::kDependent, Verdict::kDependent},

    // --- multiple recursive rules (§5) -------------------------------------
    {"example_5_1_pair", "t",
     "t(X,Y,Z) :- t(X,U,Z), p1(U,Z). t(X,Y,Z) :- t(X,Y,V), p2(V,Y). "
     "t(X,Y,Z) :- e(X,Y).",
     true, Verdict::kUnknown, Verdict::kUnknown},
    {"two_rules_both_static", "t",
     "t(X,Y) :- a(X), t(X,Y). t(X,Y) :- b(Y), t(X,Y). t(X,Y) :- e(X,Y).",
     false, Verdict::kIndependent, Verdict::kIndependent},
    {"alternating_tc", "t",
     "t(X,Y) :- a(X,Z), t(Z,Y). t(X,Y) :- b(X,Z), t(Z,Y). "
     "t(X,Y) :- e(X,Y).",
     true, Verdict::kUnknown, Verdict::kUnknown},

    // --- hoisting shapes ----------------------------------------------------
    {"example_6_1", "t",
     "t(X,Y) :- e(X,Z), b(W,Y), t(Z,Y). t(X,Y) :- t0(X,Y).", true,
     Verdict::kDependent, Verdict::kUnknown},
    {"hoist_on_stable_var", "t",
     "t(X,Y) :- e(X,Z), b(Y), t(Z,Y). t(X,Y) :- t0(X,Y).", true,
     Verdict::kDependent, Verdict::kUnknown},

    // --- nonlinear ---------------------------------------------------------
    {"same_generation_doubling", "t",
     "t(X,Y) :- t(X,Z), t(Z,Y). t(X,Y) :- e(X,Y).", true,
     Verdict::kUnknown, Verdict::kUnknown},
};

class Catalog : public ::testing::TestWithParam<CatalogEntry> {};

TEST_P(Catalog, VerdictsMatch) {
  const CatalogEntry& entry = GetParam();
  SCOPED_TRACE(entry.name);
  core::RecursionAnalysis a =
      dire::testing::AnalyzeOrDie(entry.rules, entry.target);
  EXPECT_EQ(a.chains.has_chain_generating_path, entry.chain);
  EXPECT_EQ(a.strong.verdict, entry.strong) << a.strong.explanation;
  ASSERT_TRUE(a.weak.has_value());
  EXPECT_EQ(a.weak->verdict, entry.weak) << a.weak->explanation;
}

// A verdict of kIndependent must always be backed by a theorem citation.
TEST_P(Catalog, IndependentVerdictsCiteTheorems) {
  const CatalogEntry& entry = GetParam();
  core::RecursionAnalysis a =
      dire::testing::AnalyzeOrDie(entry.rules, entry.target);
  if (a.strong.verdict != Verdict::kUnknown) {
    EXPECT_FALSE(a.strong.theorem.empty());
  }
}

std::string EntryName(const ::testing::TestParamInfo<CatalogEntry>& info) {
  return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(Rules, Catalog, ::testing::ValuesIn(kCatalog),
                         EntryName);

}  // namespace
}  // namespace dire
