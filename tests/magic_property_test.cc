// Property suite for the magic-sets rewriting: on random programs, random
// databases and random query patterns, the magic evaluation must return
// exactly the tuples the full fixpoint evaluation returns for the query.

#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.h"
#include "base/string_util.h"
#include "eval/magic.h"
#include "eval/topdown.h"
#include "storage/generators.h"
#include "tests/test_util.h"

namespace dire::eval {
namespace {

using dire::testing::ParseOrDie;

struct Scenario {
  ast::Program program;
  ast::Atom query;
};

// Random linear-rule program over an edge relation plus a random query with
// a random bound/free pattern.
Scenario MakeScenario(uint64_t seed) {
  Rng rng(seed);
  const char* programs[] = {
      R"(t(X, Y) :- e(X, Z), t(Z, Y). t(X, Y) :- e(X, Y).)",
      R"(t(X, Y) :- t(X, Z), e(Z, Y). t(X, Y) :- e(X, Y).)",
      R"(t(X, Y) :- e(X, Z), t(Z, Y). t(X, Y) :- f(X, Y).)",
      R"(t(X, Y) :- t(X, Z), t(Z, Y). t(X, Y) :- e(X, Y).)",
      R"(p(X) :- start(X). p(X) :- e(Y, X), p(Y). t(X, Y) :- e(X, Y), p(X).)",
  };
  Scenario s;
  s.program = ParseOrDie(programs[rng.Uniform(5)]);

  // Query pattern over t/2: each argument bound to a random node constant
  // with probability 1/2.
  std::vector<ast::Term> args;
  const char* vars[] = {"Qx", "Qy"};
  for (int i = 0; i < 2; ++i) {
    if (rng.Chance(0.5)) {
      args.push_back(ast::Term::Const(
          StrFormat("n%d", static_cast<int>(rng.Uniform(12)))));
    } else {
      args.push_back(ast::Term::Var(vars[i]));
    }
  }
  s.query = ast::Atom("t", std::move(args));
  return s;
}

Status FillEdges(storage::Database* db, uint64_t seed) {
  Rng rng(seed);
  DIRE_RETURN_IF_ERROR(storage::MakeRandomGraph(db, "e", 12, 24, &rng));
  // Some scenarios also read f/start.
  for (int i = 0; i < 4; ++i) {
    DIRE_RETURN_IF_ERROR(db->AddRow(
        "f", {StrFormat("n%d", static_cast<int>(rng.Uniform(12))),
              StrFormat("n%d", static_cast<int>(rng.Uniform(12)))}));
  }
  DIRE_RETURN_IF_ERROR(db->AddRow("start", {"n0"}));
  return Status::Ok();
}

std::vector<std::string> Render(const std::vector<storage::Tuple>& tuples,
                                const storage::Database& db) {
  std::vector<std::string> out;
  for (const storage::Tuple& t : tuples) {
    std::string row;
    for (storage::ValueId v : t) row += db.symbols().Name(v) + ",";
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class MagicAgreesWithFull : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MagicAgreesWithFull, SameAnswers) {
  Scenario s = MakeScenario(GetParam());
  storage::Database db_magic;
  storage::Database db_full;
  ASSERT_TRUE(FillEdges(&db_magic, GetParam() * 3 + 1).ok());
  ASSERT_TRUE(FillEdges(&db_full, GetParam() * 3 + 1).ok());

  Result<QueryAnswer> magic = AnswerQuery(&db_magic, s.program, s.query);
  Result<QueryAnswer> full =
      AnswerQueryByFullEvaluation(&db_full, s.program, s.query);
  ASSERT_TRUE(magic.ok()) << magic.status();
  ASSERT_TRUE(full.ok()) << full.status();

  EXPECT_EQ(Render(magic->tuples, db_magic), Render(full->tuples, db_full))
      << "query " << s.query.ToString() << "\n"
      << s.program.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MagicAgreesWithFull,
                         ::testing::Range<uint64_t>(0, 40));

// Magic evaluation never derives MORE answer-predicate tuples than the full
// closure of the query predicate (relevance).
class MagicRelevance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MagicRelevance, NoIrrelevantAnswers) {
  Scenario s = MakeScenario(GetParam() + 500);
  storage::Database db_magic;
  storage::Database db_full;
  ASSERT_TRUE(FillEdges(&db_magic, GetParam() * 7 + 3).ok());
  ASSERT_TRUE(FillEdges(&db_full, GetParam() * 7 + 3).ok());

  Result<MagicRewrite> rewrite = MagicSetTransform(s.program, s.query);
  ASSERT_TRUE(rewrite.ok());
  Result<QueryAnswer> magic = AnswerQuery(&db_magic, s.program, s.query);
  ASSERT_TRUE(magic.ok());
  Result<QueryAnswer> full = AnswerQueryByFullEvaluation(
      &db_full, s.program, ast::Atom("t", {ast::Term::Var("A"),
                                           ast::Term::Var("B")}));
  ASSERT_TRUE(full.ok());
  storage::Relation* answers = db_magic.Find(rewrite->answer_predicate);
  size_t derived = answers == nullptr ? 0 : answers->size();
  EXPECT_LE(derived, db_full.Find("t")->size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MagicRelevance,
                         ::testing::Range<uint64_t>(0, 30));

// Third opinion: the tabled top-down engine must agree with both bottom-up
// strategies on the same scenarios.
class TopDownAgreesWithMagic : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopDownAgreesWithMagic, SameAnswers) {
  Scenario s = MakeScenario(GetParam() + 900);
  storage::Database db_td;
  storage::Database db_magic;
  ASSERT_TRUE(FillEdges(&db_td, GetParam() * 13 + 5).ok());
  ASSERT_TRUE(FillEdges(&db_magic, GetParam() * 13 + 5).ok());

  TabledTopDown engine(&db_td, s.program);
  Result<QueryAnswer> td = engine.Query(s.query);
  Result<QueryAnswer> mg = AnswerQuery(&db_magic, s.program, s.query);
  ASSERT_TRUE(td.ok()) << td.status();
  ASSERT_TRUE(mg.ok()) << mg.status();
  EXPECT_EQ(Render(td->tuples, db_td), Render(mg->tuples, db_magic))
      << "query " << s.query.ToString() << "\n"
      << s.program.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopDownAgreesWithMagic,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace dire::eval
