#include "eval/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "base/failpoints.h"
#include "base/io.h"
#include "eval/evaluator.h"
#include "storage/persist.h"
#include "tests/test_util.h"

namespace dire::eval {
namespace {

// Transitive closure over a 8-node chain: the t stratum takes several
// semi-naive rounds, so every-round checkpointing exercises mid-stratum
// resumption.
constexpr std::string_view kChainTc = R"(
  e(a0, a1). e(a1, a2). e(a2, a3). e(a3, a4).
  e(a4, a5). e(a5, a6). e(a6, a7).
  t(X, Y) :- e(X, Y).
  t(X, Y) :- t(X, Z), e(Z, Y).
)";

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Runs `program` to completion in `dir` with durable checkpointing armed.
Result<EvalStats> RunWithCheckpoints(const std::string& dir,
                                     const ast::Program& program,
                                     std::string_view program_text,
                                     int every_rounds) {
  DIRE_ASSIGN_OR_RETURN(std::unique_ptr<storage::DataDir> data_dir,
                        storage::DataDir::Open(dir));
  DataDirCheckpointer checkpointer(data_dir.get(), ProgramCrc(program_text));
  EvalOptions opts;
  opts.checkpointer = &checkpointer;
  opts.checkpoint_every_rounds = every_rounds;
  Evaluator evaluator(data_dir->db(), opts);
  return evaluator.Evaluate(program);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoints::DisableAll(); }
};

TEST_F(CheckpointTest, KillAtEveryFaultSiteThenRecoverMatchesCleanRun) {
  ast::Program program = dire::testing::ParseOrDie(kChainTc);

  // Reference: an uninterrupted checkpointing run.
  std::string ref_dir = FreshDir("ckpt_ref");
  Result<EvalStats> ref_stats =
      RunWithCheckpoints(ref_dir, program, kChainTc, 1);
  ASSERT_TRUE(ref_stats.ok()) << ref_stats.status();
  Result<std::string> ref_snapshot =
      io::ReadFile(ref_dir + "/snapshot.dire");
  ASSERT_TRUE(ref_snapshot.ok());

  // Count how many checkpoints the clean run takes (fire_count = 0 counts
  // hits without ever firing).
  int checkpoints = 0;
  {
    std::string count_dir = FreshDir("ckpt_count");
    failpoints::Config count_only;
    count_only.fire_count = 0;
    failpoints::Enable("eval.checkpoint", count_only);
    ASSERT_TRUE(RunWithCheckpoints(count_dir, program, kChainTc, 1).ok());
    checkpoints = failpoints::HitCount("eval.checkpoint");
    failpoints::Disable("eval.checkpoint");
  }
  ASSERT_GT(checkpoints, 3) << "test program too small to be interesting";

  // Kill the run at every checkpoint attempt and at every injected I/O
  // fault inside the snapshot commit, then recover and finish. Every single
  // cycle must converge to the byte-identical final snapshot.
  const char* sites[] = {"eval.checkpoint",  "io.atomic.open",
                         "io.atomic.write",  "io.atomic.enospc",
                         "io.atomic.fsync",  "io.atomic.rename"};
  int cycle = 0;
  for (const char* site : sites) {
    for (int skip = 0; skip < checkpoints; ++skip) {
      std::string dir =
          FreshDir("ckpt_cycle_" + std::to_string(cycle++));
      {
        failpoints::Config once;
        once.skip = skip;
        once.fire_count = 1;
        failpoints::Scoped fp(site, once);
        Result<EvalStats> crashed =
            RunWithCheckpoints(dir, program, kChainTc, 1);
        ASSERT_FALSE(crashed.ok())
            << site << " skip " << skip << " did not fire";
      }
      Result<RecoverResult> recovered =
          RecoverDatabase(dir, program, kChainTc);
      ASSERT_TRUE(recovered.ok())
          << site << " skip " << skip << ": " << recovered.status();
      Result<std::string> snapshot = io::ReadFile(dir + "/snapshot.dire");
      ASSERT_TRUE(snapshot.ok()) << site << " skip " << skip;
      EXPECT_EQ(*snapshot, *ref_snapshot) << site << " skip " << skip;
    }
  }
}

TEST_F(CheckpointTest, MidStratumResumeSkipsCompletedRounds) {
  ast::Program program = dire::testing::ParseOrDie(kChainTc);
  std::string ref_dir = FreshDir("ckpt_mid_ref");
  Result<EvalStats> ref_stats =
      RunWithCheckpoints(ref_dir, program, kChainTc, 1);
  ASSERT_TRUE(ref_stats.ok());

  // Crash at the fourth checkpoint: three delta-bearing round checkpoints
  // are on disk, so recovery must pick the stratum up mid-flight.
  std::string dir = FreshDir("ckpt_mid");
  {
    failpoints::Config once;
    once.skip = 3;
    once.fire_count = 1;
    failpoints::Scoped fp("eval.checkpoint", once);
    ASSERT_FALSE(RunWithCheckpoints(dir, program, kChainTc, 1).ok());
  }
  Result<RecoverResult> recovered = RecoverDatabase(dir, program, kChainTc);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  // The resumed run derives strictly less than the whole fixpoint: the
  // checkpointed rounds are not re-derived.
  EXPECT_LT(recovered->stats.tuples_derived, ref_stats->tuples_derived);
  EXPECT_GT(recovered->stats.tuples_derived, 0u);
  EXPECT_EQ(*io::ReadFile(dir + "/snapshot.dire"),
            *io::ReadFile(ref_dir + "/snapshot.dire"));
}

TEST_F(CheckpointTest, RecoveryIsIdempotent) {
  ast::Program program = dire::testing::ParseOrDie(kChainTc);
  std::string dir = FreshDir("ckpt_idem");
  {
    failpoints::Config once;
    once.skip = 2;
    once.fire_count = 1;
    failpoints::Scoped fp("io.atomic.rename", once);
    ASSERT_FALSE(RunWithCheckpoints(dir, program, kChainTc, 1).ok());
  }
  Result<RecoverResult> first = RecoverDatabase(dir, program, kChainTc);
  ASSERT_TRUE(first.ok());
  std::string after_first = *io::ReadFile(dir + "/snapshot.dire");
  // Release the single-writer LOCK: a data directory admits one live
  // handle at a time, and recovery opens its own.
  first->data_dir.reset();
  // A second recovery finds a completed checkpoint and re-derives nothing.
  Result<RecoverResult> second = RecoverDatabase(dir, program, kChainTc);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.tuples_derived, 0u);
  EXPECT_EQ(*io::ReadFile(dir + "/snapshot.dire"), after_first);
}

TEST_F(CheckpointTest, RecoveryRefusesDifferentProgram) {
  ast::Program program = dire::testing::ParseOrDie(kChainTc);
  std::string dir = FreshDir("ckpt_wrong_prog");
  {
    failpoints::Config once;
    once.skip = 2;
    once.fire_count = 1;
    failpoints::Scoped fp("eval.checkpoint", once);
    ASSERT_FALSE(RunWithCheckpoints(dir, program, kChainTc, 1).ok());
  }
  constexpr std::string_view kOther = R"(
    e(a0, a1).
    t(X, Y) :- e(X, Y).
  )";
  ast::Program other = dire::testing::ParseOrDie(kOther);
  Result<RecoverResult> recovered = RecoverDatabase(dir, other, kOther);
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.status().message().find("different program"),
            std::string::npos)
      << recovered.status();
}

TEST_F(CheckpointTest, GuardExhaustionCheckpointsThenRecoveryFinishes) {
  ast::Program program = dire::testing::ParseOrDie(kChainTc);

  std::string dir = FreshDir("ckpt_exhausted");
  {
    Result<std::unique_ptr<storage::DataDir>> data_dir =
        storage::DataDir::Open(dir);
    ASSERT_TRUE(data_dir.ok());
    DataDirCheckpointer checkpointer((*data_dir).get(), ProgramCrc(kChainTc));
    GuardLimits limits;
    limits.max_tuples = 10;  // Trips mid-closure (full closure is 28).
    ExecutionGuard guard(limits);
    EvalOptions opts;
    opts.checkpointer = &checkpointer;
    opts.guard = &guard;
    opts.on_exhaustion = EvalOptions::OnExhaustion::kPartial;
    Evaluator evaluator((*data_dir)->db(), opts);
    Result<EvalStats> stats = evaluator.Evaluate(program);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_TRUE(stats->exhausted);
  }

  // The partial prefix was checkpointed on exhaustion; recovery (without the
  // guard) completes the closure.
  Result<RecoverResult> recovered = RecoverDatabase(dir, program, kChainTc);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  const storage::Relation* t = recovered->data_dir->db()->Find("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->size(), 28u);  // 8-node chain closure: 7+6+...+1.
}

TEST_F(CheckpointTest, FreshDirectoryEvaluatesFromScratch) {
  ast::Program program = dire::testing::ParseOrDie(kChainTc);
  std::string dir = FreshDir("ckpt_fresh");
  Result<RecoverResult> recovered = RecoverDatabase(dir, program, kChainTc);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->data_dir->db()->Find("t")->size(), 28u);
}

TEST_F(CheckpointTest, WalAppendsAfterCheckpointForceReevaluation) {
  ast::Program program = dire::testing::ParseOrDie(kChainTc);
  std::string dir = FreshDir("ckpt_wal_append");
  ASSERT_TRUE(RunWithCheckpoints(dir, program, kChainTc, 1).ok());
  {
    Result<std::unique_ptr<storage::DataDir>> data_dir =
        storage::DataDir::Open(dir);
    ASSERT_TRUE(data_dir.ok());
    ASSERT_TRUE((*data_dir)->AppendFact("e", {"a7", "a8"}).ok());
  }
  Result<RecoverResult> recovered = RecoverDatabase(dir, program, kChainTc);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  // 9-node chain closure.
  EXPECT_EQ(recovered->data_dir->db()->Find("t")->size(), 36u);
  EXPECT_GT(recovered->stats.tuples_derived, 0u);
}

// In-memory checkpointer observing the cadence contract.
class RecordingCheckpointer : public Checkpointer {
 public:
  struct Call {
    int stratum;
    int rounds;
    bool with_deltas;
  };
  std::vector<Call> calls;

  Status Checkpoint(int stratum_index, int rounds_done,
                    const DeltaMap* deltas) override {
    calls.push_back({stratum_index, rounds_done, deltas != nullptr});
    return Status::Ok();
  }
};

TEST_F(CheckpointTest, CheckpointCadence) {
  ast::Program program = dire::testing::ParseOrDie(kChainTc);
  storage::Database db;
  RecordingCheckpointer recording;
  EvalOptions opts;
  opts.checkpointer = &recording;
  opts.checkpoint_every_rounds = 2;
  Evaluator evaluator(&db, opts);
  ASSERT_TRUE(evaluator.Evaluate(program).ok());

  ASSERT_FALSE(recording.calls.empty());
  // Mid-stratum checkpoints carry deltas at even round numbers; boundary
  // and final checkpoints carry none.
  bool saw_delta_checkpoint = false;
  for (const RecordingCheckpointer::Call& c : recording.calls) {
    if (c.with_deltas) {
      saw_delta_checkpoint = true;
      EXPECT_GT(c.rounds, 0);
      EXPECT_EQ(c.rounds % 2, 0);
    } else {
      EXPECT_EQ(c.rounds, 0);
    }
  }
  EXPECT_TRUE(saw_delta_checkpoint);
  // The final call marks everything complete and stratum indices never
  // decrease.
  EXPECT_FALSE(recording.calls.back().with_deltas);
  for (size_t i = 1; i < recording.calls.size(); ++i) {
    EXPECT_GE(recording.calls[i].stratum, recording.calls[i - 1].stratum);
  }
}

TEST_F(CheckpointTest, CheckpointEveryRoundsRequiresCheckpointer) {
  ast::Program program = dire::testing::ParseOrDie(kChainTc);
  storage::Database db;
  EvalOptions opts;
  opts.checkpoint_every_rounds = 2;  // No checkpointer.
  Evaluator evaluator(&db, opts);
  EXPECT_FALSE(evaluator.Evaluate(program).ok());
}

}  // namespace
}  // namespace dire::eval
