// Property tests for the live relation statistics behind the cost-based
// planner (storage/stats.h): the incrementally maintained row counts and
// per-column distinct sketches must equal a from-scratch recount of the
// same tuple set after any interleaving of inserts, bulk loads, and
// merges; must survive snapshot save/load and WAL replay; and must not
// double-count under the parallel evaluator's staged chunk merges.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "dire.h"
#include "storage/persist.h"
#include "storage/snapshot.h"
#include "storage/stats.h"
#include "tests/test_util.h"

namespace dire::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Builds "prefixN" without `const char* + temporary` concatenation, which
// GCC 12's -Wrestrict misfires on under -O2.
std::string Sym(const char* prefix, uint64_t n) {
  std::string out(prefix);
  out += std::to_string(n);
  return out;
}

// Rebuilds the statistics of `rel` from scratch and checks the live
// sketches match bit for bit (the sketch is a pure function of the tuple
// set, so any divergence means some path counted twice or not at all).
void ExpectStatsMatchRecount(const Relation& rel) {
  Relation fresh(rel.name(), rel.arity());
  for (RowRef t : rel.rows()) fresh.Insert(t);
  ASSERT_EQ(rel.size(), fresh.size());
  for (size_t col = 0; col < rel.arity(); ++col) {
    EXPECT_TRUE(rel.ColumnStats(col) == fresh.ColumnStats(col))
        << rel.name() << " column " << col
        << ": live sketch diverged from a from-scratch recount";
    EXPECT_EQ(rel.DistinctEstimate(col), fresh.DistinctEstimate(col));
  }
}

TEST(StatsProperty, IncrementalMatchesRecountAfterRandomOps) {
  Rng rng(20260807);
  for (int trial = 0; trial < 40; ++trial) {
    size_t arity = 1 + rng.Uniform(3);
    size_t domain = 1 + rng.Uniform(200);
    Relation rel("r", arity);
    int ops = 1 + static_cast<int>(rng.Uniform(8));
    for (int op = 0; op < ops; ++op) {
      switch (rng.Uniform(3)) {
        case 0: {  // Single inserts (duplicates included).
          size_t n = rng.Uniform(100);
          for (size_t i = 0; i < n; ++i) {
            Tuple t;
            for (size_t c = 0; c < arity; ++c) {
              t.push_back(static_cast<ValueId>(rng.Uniform(domain)));
            }
            rel.Insert(t);
          }
          break;
        }
        case 1: {  // Bulk load through Reserve, like snapshot sections.
          size_t n = rng.Uniform(300);
          rel.Reserve(n);
          for (size_t i = 0; i < n; ++i) {
            Tuple t;
            for (size_t c = 0; c < arity; ++c) {
              t.push_back(static_cast<ValueId>(rng.Uniform(domain)));
            }
            rel.Insert(t);
          }
          break;
        }
        default: {  // Merge from a staging relation, like MergeStaging.
          Relation staging("$staging", arity);
          size_t n = rng.Uniform(150);
          for (size_t i = 0; i < n; ++i) {
            Tuple t;
            for (size_t c = 0; c < arity; ++c) {
              t.push_back(static_cast<ValueId>(rng.Uniform(domain)));
            }
            staging.Insert(t);
          }
          rel.Reserve(staging.size());
          for (RowRef t : staging.rows()) rel.Insert(t);
          break;
        }
      }
    }
    ExpectStatsMatchRecount(rel);
  }
}

TEST(StatsProperty, SketchIsOrderIndependent) {
  Rng rng(7);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 500; ++i) {
    tuples.push_back({static_cast<ValueId>(rng.Uniform(40)),
                      static_cast<ValueId>(rng.Uniform(900))});
  }
  Relation forward("r", 2);
  for (const Tuple& t : tuples) forward.Insert(t);
  std::reverse(tuples.begin(), tuples.end());
  Relation backward("r", 2);
  for (const Tuple& t : tuples) backward.Insert(t);
  for (size_t col = 0; col < 2; ++col) {
    EXPECT_TRUE(forward.ColumnStats(col) == backward.ColumnStats(col));
  }
}

TEST(StatsProperty, EstimateTracksTrueDistinctCount) {
  // Linear counting is exact while the bitmap is sparse and within a small
  // factor up to a few thousand distinct values.
  Rng rng(99);
  for (size_t truth : {1u, 10u, 100u, 1000u, 3000u}) {
    Relation rel("r", 1);
    for (size_t v = 0; v < truth; ++v) {
      rel.Insert({static_cast<ValueId>(v)});
      // Duplicates must not move the estimate.
      if (rng.Chance(0.5)) rel.Insert({static_cast<ValueId>(v)});
    }
    double est = static_cast<double>(rel.DistinctEstimate(0));
    double target = static_cast<double>(truth);
    EXPECT_GE(est, target * 0.7) << "distinct=" << truth;
    EXPECT_LE(est, target * 1.3) << "distinct=" << truth;
  }
}

TEST(StatsProperty, SaturatedSketchStillOrdersBySize) {
  // Past the bitmap's range the estimate pins at a saturation constant —
  // it must stay monotone enough that "huge" never looks smaller than
  // "modest".
  Relation big("big", 1);
  for (ValueId v = 0; v < 200000; ++v) big.Insert({v});
  Relation small("small", 1);
  for (ValueId v = 0; v < 100; ++v) small.Insert({v});
  EXPECT_GT(big.DistinctEstimate(0), small.DistinctEstimate(0));
  ExpectStatsMatchRecount(big);
}

TEST(StatsProperty, StatsSurviveSnapshotRoundTrip) {
  Rng rng(424242);
  Database db;
  Result<Relation*> rel = db.GetOrCreate("edge", 2);
  ASSERT_TRUE(rel.ok());
  for (int i = 0; i < 400; ++i) {
    (*rel)->Insert({db.symbols().Intern(Sym("n", rng.Uniform(37))),
                    db.symbols().Intern(Sym("n", rng.Uniform(91)))});
  }
  Result<std::string> text = SaveSnapshot(db);
  ASSERT_TRUE(text.ok()) << text.status();

  Database loaded;
  Result<SnapshotLoadStats> stats = LoadSnapshot(&loaded, *text);
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Relation* round_tripped = loaded.Find("edge");
  ASSERT_NE(round_tripped, nullptr);
  ASSERT_EQ(round_tripped->size(), (*rel)->size());
  // ValueIds may differ across symbol tables, but the value *sets* per
  // column are equal, so the estimates must agree with a recount either
  // way.
  ExpectStatsMatchRecount(*round_tripped);
  for (size_t col = 0; col < 2; ++col) {
    EXPECT_EQ(round_tripped->DistinctEstimate(col),
              (*rel)->DistinctEstimate(col));
  }
}

TEST(StatsProperty, StatsSurviveWalReplay) {
  std::string dir = TempPath("stats_wal_replay");
  std::string expected_name;
  std::vector<std::pair<std::string, std::string>> facts;
  Rng rng(5150);
  for (int i = 0; i < 120; ++i) {
    facts.emplace_back(Sym("a", rng.Uniform(11)), Sym("b", rng.Uniform(53)));
  }
  {
    Result<std::unique_ptr<DataDir>> data = DataDir::Open(dir);
    ASSERT_TRUE(data.ok()) << data.status();
    for (const auto& [x, y] : facts) {
      ASSERT_TRUE((*data)->AppendFact("edge", {x, y}).ok());
    }
    // No Checkpoint: everything must come back through WAL replay alone.
  }
  Result<std::unique_ptr<DataDir>> reopened = DataDir::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const Relation* rel = (*reopened)->db()->Find("edge");
  ASSERT_NE(rel, nullptr);
  ExpectStatsMatchRecount(*rel);

  // And the replayed statistics equal those of a database that saw the
  // facts directly.
  Database direct;
  Result<Relation*> fresh = direct.GetOrCreate("edge", 2);
  ASSERT_TRUE(fresh.ok());
  for (const auto& [x, y] : facts) {
    (*fresh)->Insert(
        {direct.symbols().Intern(x), direct.symbols().Intern(y)});
  }
  for (size_t col = 0; col < 2; ++col) {
    EXPECT_EQ(rel->DistinctEstimate(col), (*fresh)->DistinctEstimate(col));
  }
}

// Regression for the exactly-once contract under parallel evaluation: a
// firing big enough to split into chunks stages per-chunk results and
// merges them serially; the head relation's statistics must still equal a
// from-scratch recount (no tuple counted once per chunk that emitted it).
TEST(StatsProperty, ParallelChunkMergeCountsStatsExactlyOnce) {
  std::string text;
  // A dense bipartite-ish edge set (>= several chunks of driving rows)
  // where many (X, Z) pairs emit the same (X, Y) head tuple, so chunk
  // outputs overlap heavily.
  for (int i = 0; i < 60; ++i) {
    for (int j = 0; j < 20; ++j) {
      text += "e(x" + std::to_string(i) + ", m" + std::to_string(j) + ").\n";
      text += "f(m" + std::to_string(j) + ", y" + std::to_string(i % 7) +
              ").\n";
    }
  }
  text += "join(X, Y) :- e(X, Z), f(Z, Y).\n";
  ast::Program program = dire::testing::ParseOrDie(text);

  for (int threads : {1, 4}) {
    Database db;
    eval::EvalOptions options;
    options.num_threads = threads;
    eval::Evaluator ev(&db, options);
    Result<eval::EvalStats> stats = ev.Evaluate(program);
    ASSERT_TRUE(stats.ok()) << stats.status();
    const Relation* join = db.Find("join");
    ASSERT_NE(join, nullptr);
    EXPECT_EQ(join->size(), 60u * 7u);
    ExpectStatsMatchRecount(*join);
  }
}

}  // namespace
}  // namespace dire::storage
