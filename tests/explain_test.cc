#include <gtest/gtest.h>

#include "eval/explain.h"
#include "tests/test_util.h"

namespace dire::eval {
namespace {

using dire::testing::ParseOrDie;

TEST(Explain, ShowsJoinOrderAndProbes) {
  ast::Program p = ParseOrDie("t(Y) :- big(Z, Y), anchor(a, Z).");
  Result<std::string> text = ExplainProgram(p);
  ASSERT_TRUE(text.ok()) << text.status();
  // The anchored atom comes first, then big probes on the bound Z.
  size_t anchor_pos = text->find("anchor");
  size_t big_pos = text->find("big", text->find("plan for"));
  ASSERT_NE(anchor_pos, std::string::npos);
  ASSERT_NE(big_pos, std::string::npos);
  EXPECT_LT(anchor_pos, big_pos);
  EXPECT_NE(text->find("probe #1=Z"), std::string::npos) << *text;
}

TEST(Explain, UsesVariableNames) {
  ast::Program p = ParseOrDie(dire::testing::kTransitiveClosure);
  Result<std::string> text = ExplainProgram(p);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("bind"), std::string::npos);
  EXPECT_NE(text->find("head: X Y"), std::string::npos) << *text;
}

TEST(Explain, ShowsConstants) {
  ast::Program p = ParseOrDie("q(Y) :- e(alice, Y).");
  Result<std::string> text = ExplainProgram(p);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("'alice'"), std::string::npos) << *text;
}

TEST(Explain, DeltaMarkerOnDifferentiatedPlans) {
  storage::SymbolTable symbols;
  Result<ast::Rule> rule =
      parser::ParseRule("t(X, Y) :- e(X, Z), t(Z, Y).");
  ASSERT_TRUE(rule.ok());
  CompileOptions opts;
  opts.delta_atom = 1;
  Result<CompiledRule> plan = CompileRule(*rule, &symbols, opts);
  ASSERT_TRUE(plan.ok());
  std::string text = ExplainPlan(*plan, symbols);
  EXPECT_NE(text.find("[delta]"), std::string::npos) << text;
}

TEST(Explain, SkipsFacts) {
  ast::Program p = ParseOrDie("e(a, b). t(X) :- e(X, Y).");
  Result<std::string> text = ExplainProgram(p);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->find("e(a,b)"), std::string::npos);
  EXPECT_NE(text->find("plan for t/1"), std::string::npos);
}

}  // namespace
}  // namespace dire::eval
