#include <gtest/gtest.h>

#include "eval/magic.h"
#include "storage/generators.h"
#include "tests/test_util.h"

namespace dire::eval {
namespace {

using dire::testing::ParseOrDie;

ast::Atom QueryAtom(std::string_view text) {
  Result<ast::Atom> a = parser::ParseAtom(text);
  EXPECT_TRUE(a.ok()) << (a.ok() ? "" : a.status().ToString());
  return std::move(a).value();
}

TEST(MagicSets, TransformShapeForTc) {
  ast::Program p = ParseOrDie(dire::testing::kTransitiveClosure);
  Result<MagicRewrite> r = MagicSetTransform(p, QueryAtom("t(a, Y)"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->adornment, "bf");
  EXPECT_EQ(r->answer_predicate, "t@bf");
  // Seed fact + 2 adorned rules + 1 magic rule for the recursive subgoal.
  EXPECT_EQ(r->program.rules.size(), 4u);
  bool found_seed = false;
  for (const ast::Rule& rule : r->program.rules) {
    if (rule.IsFact() && rule.head.predicate == "m_t@bf") {
      found_seed = true;
      EXPECT_EQ(rule.head.ToString(), "m_t@bf(a)");
    }
  }
  EXPECT_TRUE(found_seed);
}

TEST(MagicSets, AnswersMatchFullEvaluationOnChain) {
  ast::Program p = ParseOrDie(dire::testing::kTransitiveClosure);
  storage::Database db_magic;
  storage::Database db_full;
  ASSERT_TRUE(storage::MakeChain(&db_magic, "e", 20).ok());
  ASSERT_TRUE(storage::MakeChain(&db_full, "e", 20).ok());

  Result<QueryAnswer> magic = AnswerQuery(&db_magic, p, QueryAtom("t(n5, Y)"));
  Result<QueryAnswer> full =
      AnswerQueryByFullEvaluation(&db_full, p, QueryAtom("t(n5, Y)"));
  ASSERT_TRUE(magic.ok()) << magic.status();
  ASSERT_TRUE(full.ok()) << full.status();
  // n5 reaches n6..n19: 14 nodes. Value ids differ across databases only if
  // interning order differs; compare through rendered constants.
  EXPECT_EQ(magic->tuples.size(), 14u);
  EXPECT_EQ(full->tuples.size(), 14u);
}

TEST(MagicSets, MagicTouchesLessData) {
  // Two disconnected chains; a query about the first must not derive
  // reachability facts inside the second.
  ast::Program p = ParseOrDie(R"(
    t(X, Y) :- e(X, Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
  )");
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 10).ok());
  for (int i = 100; i < 140; ++i) {
    ASSERT_TRUE(db.AddRow("e", {StrFormat("n%d", i),
                                StrFormat("n%d", i + 1)}).ok());
  }
  Result<QueryAnswer> magic = AnswerQuery(&db, p, QueryAtom("t(n0, Y)"));
  ASSERT_TRUE(magic.ok()) << magic.status();
  EXPECT_EQ(magic->tuples.size(), 9u);
  // The adorned relation holds the answers of every magic-reachable
  // subquery — the closure of the 10-node chain (45 pairs) — but nothing
  // from the disconnected 41-node chain (whose closure alone is 820 pairs).
  EXPECT_EQ(db.Find("t@bf")->size(), 45u);
}

TEST(MagicSets, AllFreeQueryDegeneratesToFullEvaluation) {
  ast::Program p = ParseOrDie(dire::testing::kTransitiveClosure);
  storage::Database db_magic;
  storage::Database db_full;
  ASSERT_TRUE(storage::MakeCycle(&db_magic, "e", 5).ok());
  ASSERT_TRUE(storage::MakeCycle(&db_full, "e", 5).ok());
  Result<QueryAnswer> magic = AnswerQuery(&db_magic, p, QueryAtom("t(X, Y)"));
  Result<QueryAnswer> full =
      AnswerQueryByFullEvaluation(&db_full, p, QueryAtom("t(X, Y)"));
  ASSERT_TRUE(magic.ok()) << magic.status();
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(magic->tuples.size(), full->tuples.size());
  EXPECT_EQ(magic->tuples.size(), 25u);
}

TEST(MagicSets, BoundSecondArgument) {
  ast::Program p = ParseOrDie(dire::testing::kTransitiveClosure);
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 8).ok());
  Result<QueryAnswer> ans = AnswerQuery(&db, p, QueryAtom("t(X, n7)"));
  ASSERT_TRUE(ans.ok()) << ans.status();
  EXPECT_EQ(ans->tuples.size(), 7u);  // n0..n6 all reach n7.
}

TEST(MagicSets, FullyBoundQuery) {
  ast::Program p = ParseOrDie(dire::testing::kTransitiveClosure);
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 8).ok());
  Result<QueryAnswer> yes = AnswerQuery(&db, p, QueryAtom("t(n1, n5)"));
  ASSERT_TRUE(yes.ok());
  EXPECT_EQ(yes->tuples.size(), 1u);
  storage::Database db2;
  ASSERT_TRUE(storage::MakeChain(&db2, "e", 8).ok());
  Result<QueryAnswer> no = AnswerQuery(&db2, p, QueryAtom("t(n5, n1)"));
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(no->tuples.empty());
}

TEST(MagicSets, RepeatedVariableInQuery) {
  ast::Program p = ParseOrDie(dire::testing::kTransitiveClosure);
  storage::Database db;
  ASSERT_TRUE(storage::MakeCycle(&db, "e", 4).ok());
  // t(X, X): nodes on cycles reaching themselves — all 4.
  Result<QueryAnswer> ans = AnswerQuery(&db, p, QueryAtom("t(X, X)"));
  ASSERT_TRUE(ans.ok()) << ans.status();
  EXPECT_EQ(ans->tuples.size(), 4u);
}

TEST(MagicSets, EdbQueryIsPlainSelection) {
  ast::Program p = ParseOrDie("e(a,b). e(a,c). e(b,c).");
  storage::Database db;
  Result<QueryAnswer> ans = AnswerQuery(&db, p, QueryAtom("e(a, Y)"));
  ASSERT_TRUE(ans.ok()) << ans.status();
  EXPECT_EQ(ans->tuples.size(), 2u);
}

TEST(MagicSets, UnknownIdbPredicateRejectedByTransform) {
  ast::Program p = ParseOrDie("t(X) :- e(X).");
  EXPECT_FALSE(MagicSetTransform(p, QueryAtom("zzz(a)")).ok());
}

TEST(MagicSets, NonlinearRules) {
  // Same-generation-style doubling recursion.
  ast::Program p = ParseOrDie(R"(
    t(X, Y) :- t(X, Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
  )");
  storage::Database db_magic;
  storage::Database db_full;
  ASSERT_TRUE(storage::MakeChain(&db_magic, "e", 12).ok());
  ASSERT_TRUE(storage::MakeChain(&db_full, "e", 12).ok());
  Result<QueryAnswer> magic = AnswerQuery(&db_magic, p, QueryAtom("t(n0, Y)"));
  Result<QueryAnswer> full =
      AnswerQueryByFullEvaluation(&db_full, p, QueryAtom("t(n0, Y)"));
  ASSERT_TRUE(magic.ok()) << magic.status();
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(magic->tuples.size(), full->tuples.size());
}

TEST(MagicSets, MutuallyRecursivePredicates) {
  ast::Program p = ParseOrDie(R"(
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
    zero(n0).
    succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4).
  )");
  storage::Database db;
  Result<QueryAnswer> ans = AnswerQuery(&db, p, QueryAtom("even(n4)"));
  ASSERT_TRUE(ans.ok()) << ans.status();
  EXPECT_EQ(ans->tuples.size(), 1u);
  storage::Database db2;
  Result<QueryAnswer> none = AnswerQuery(&db2, p, QueryAtom("even(n3)"));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->tuples.empty());
}

}  // namespace
}  // namespace dire::eval
