#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/generators.h"
#include "storage/snapshot.h"
#include "tests/test_util.h"

namespace dire::storage {
namespace {

TEST(Snapshot, RoundTripPreservesContents) {
  Database original;
  Rng rng(4);
  ASSERT_TRUE(MakeRandomGraph(&original, "e", 10, 20, &rng).ok());
  ASSERT_TRUE(original.AddRow("label", {"x", "some text"}).ok());

  Result<std::string> text = SaveSnapshot(original);
  ASSERT_TRUE(text.ok()) << text.status();

  Database loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, *text).ok());
  EXPECT_EQ(original.DumpRelation("e"), loaded.DumpRelation("e"));
  EXPECT_EQ(original.DumpRelation("label"), loaded.DumpRelation("label"));
}

TEST(Snapshot, Deterministic) {
  Database a;
  Database b;
  // Same tuples inserted in the same order but interned differently.
  ASSERT_TRUE(a.AddRow("r", {"p", "q"}).ok());
  ASSERT_TRUE(a.AddRow("s", {"z"}).ok());
  ASSERT_TRUE(b.symbols().Intern("unrelated") !=
              SymbolTable::kMissing);  // Shift intern ids.
  ASSERT_TRUE(b.AddRow("r", {"p", "q"}).ok());
  ASSERT_TRUE(b.AddRow("s", {"z"}).ok());
  EXPECT_EQ(*SaveSnapshot(a), *SaveSnapshot(b));
}

TEST(Snapshot, ZeroArityRelations) {
  Database db;
  Result<Relation*> rel = db.GetOrCreate("flag", 0);
  ASSERT_TRUE(rel.ok());
  (*rel)->Insert({});
  Result<std::string> text = SaveSnapshot(db);
  ASSERT_TRUE(text.ok());
  Database loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, *text).ok());
  ASSERT_NE(loaded.Find("flag"), nullptr);
  EXPECT_EQ(loaded.Find("flag")->size(), 1u);
}

TEST(Snapshot, RejectsTabbedValues) {
  Database db;
  ASSERT_TRUE(db.AddRow("r", {"has\ttab"}).ok());
  EXPECT_FALSE(SaveSnapshot(db).ok());
}

TEST(Snapshot, RejectsMissingHeader) {
  Database db;
  EXPECT_FALSE(LoadSnapshot(&db, "@relation r 1\nx\n").ok());
}

TEST(Snapshot, RejectsFieldCountMismatch) {
  Database db;
  Status s = LoadSnapshot(&db,
                          "# dire snapshot v1\n@relation r 2\nonlyone\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("expected 2 fields"), std::string::npos);
}

TEST(Snapshot, RejectsTupleBeforeRelation) {
  Database db;
  EXPECT_FALSE(LoadSnapshot(&db, "# dire snapshot v1\na\tb\n").ok());
}

TEST(Snapshot, FileRoundTrip) {
  Database db;
  ASSERT_TRUE(MakeChain(&db, "e", 5).ok());
  std::string path = ::testing::TempDir() + "/dire_snapshot_test.snap";
  ASSERT_TRUE(SaveSnapshotFile(db, path).ok());
  Database loaded;
  ASSERT_TRUE(LoadSnapshotFile(&loaded, path).ok());
  EXPECT_EQ(db.DumpRelation("e"), loaded.DumpRelation("e"));
  std::remove(path.c_str());
  EXPECT_FALSE(LoadSnapshotFile(&loaded, path + ".missing").ok());
}

TEST(Snapshot, LoadIntoNonEmptyDatabaseMerges) {
  Database db;
  ASSERT_TRUE(db.AddRow("e", {"a", "b"}).ok());
  ASSERT_TRUE(LoadSnapshot(&db,
                           "# dire snapshot v1\n@relation e 2\nb\tc\n")
                  .ok());
  EXPECT_EQ(db.Find("e")->size(), 2u);
  // Arity conflicts are rejected.
  EXPECT_FALSE(LoadSnapshot(&db,
                            "# dire snapshot v1\n@relation e 3\na\tb\tc\n")
                   .ok());
}

}  // namespace
}  // namespace dire::storage
