#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/generators.h"
#include "storage/snapshot.h"
#include "tests/test_util.h"

namespace dire::storage {
namespace {

TEST(Snapshot, RoundTripPreservesContents) {
  Database original;
  Rng rng(4);
  ASSERT_TRUE(MakeRandomGraph(&original, "e", 10, 20, &rng).ok());
  ASSERT_TRUE(original.AddRow("label", {"x", "some text"}).ok());

  Result<std::string> text = SaveSnapshot(original);
  ASSERT_TRUE(text.ok()) << text.status();

  Database loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, *text).ok());
  EXPECT_EQ(original.DumpRelation("e"), loaded.DumpRelation("e"));
  EXPECT_EQ(original.DumpRelation("label"), loaded.DumpRelation("label"));
}

TEST(Snapshot, Deterministic) {
  Database a;
  Database b;
  // Same tuples inserted in the same order but interned differently.
  ASSERT_TRUE(a.AddRow("r", {"p", "q"}).ok());
  ASSERT_TRUE(a.AddRow("s", {"z"}).ok());
  ASSERT_TRUE(b.symbols().Intern("unrelated") !=
              SymbolTable::kMissing);  // Shift intern ids.
  ASSERT_TRUE(b.AddRow("r", {"p", "q"}).ok());
  ASSERT_TRUE(b.AddRow("s", {"z"}).ok());
  EXPECT_EQ(*SaveSnapshot(a), *SaveSnapshot(b));
}

TEST(Snapshot, DeterministicAcrossInsertionOrder) {
  // The byte-compare in crash-recovery tests depends on this: a resumed
  // evaluation derives the same tuples in a different order, and the two
  // snapshots must still be byte-identical.
  Database a;
  Database b;
  ASSERT_TRUE(a.AddRow("r", {"p", "q"}).ok());
  ASSERT_TRUE(a.AddRow("r", {"a", "b"}).ok());
  ASSERT_TRUE(b.AddRow("r", {"a", "b"}).ok());
  ASSERT_TRUE(b.AddRow("r", {"p", "q"}).ok());
  EXPECT_EQ(*SaveSnapshot(a), *SaveSnapshot(b));
}

TEST(Snapshot, ZeroArityRelations) {
  Database db;
  Result<Relation*> rel = db.GetOrCreate("flag", 0);
  ASSERT_TRUE(rel.ok());
  (*rel)->Insert({});
  Result<std::string> text = SaveSnapshot(db);
  ASSERT_TRUE(text.ok());
  Database loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, *text).ok());
  ASSERT_NE(loaded.Find("flag"), nullptr);
  EXPECT_EQ(loaded.Find("flag")->size(), 1u);
}

TEST(Snapshot, EscapedValuesRoundTrip) {
  Database db;
  ASSERT_TRUE(db.AddRow("r", {"has\ttab", "has\nnewline"}).ok());
  ASSERT_TRUE(db.AddRow("r", {"back\\slash", "cr\rhere"}).ok());
  ASSERT_TRUE(db.AddRow("r", {std::string("nul\0byte", 8), ""}).ok());
  Result<std::string> text = SaveSnapshot(db);
  ASSERT_TRUE(text.ok()) << text.status();
  Database loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, *text).ok());
  EXPECT_EQ(db.DumpRelation("r"), loaded.DumpRelation("r"));
  EXPECT_EQ(loaded.Find("r")->size(), 3u);
}

TEST(Snapshot, RoundTripPropertyRandomValues) {
  // Any byte string a Value can hold must survive save/load unchanged.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Database db;
    int rows = 1 + static_cast<int>(rng.Next() % 8);
    for (int r = 0; r < rows; ++r) {
      std::string a;
      std::string b;
      int len = static_cast<int>(rng.Next() % 12);
      for (int k = 0; k < len; ++k) {
        a += static_cast<char>(rng.Next() % 256);
        b += static_cast<char>(rng.Next() % 256);
      }
      ASSERT_TRUE(db.AddRow("r", {a, b}).ok());
    }
    Result<std::string> text = SaveSnapshot(db);
    ASSERT_TRUE(text.ok()) << text.status();
    Database loaded;
    Result<SnapshotLoadStats> stats = LoadSnapshot(&loaded, *text);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(db.DumpRelation("r"), loaded.DumpRelation("r"))
        << "trial " << trial;
    // And determinism: saving the reloaded database is byte-identical.
    EXPECT_EQ(*text, *SaveSnapshot(loaded)) << "trial " << trial;
  }
}

TEST(Snapshot, MetaAndExtraRelationsRoundTrip) {
  Database db;
  ASSERT_TRUE(db.AddRow("e", {"a", "b"}).ok());
  Relation extra("$delta:t", 2);
  extra.Insert({db.symbols().Intern("a"), db.symbols().Intern("b")});
  SnapshotWriteOptions opts;
  opts.meta["stratum"] = "1";
  opts.meta["note"] = "with\ttab";
  opts.extra_relations.emplace_back("$delta:t", &extra);

  Result<std::string> text = SaveSnapshot(db, opts);
  ASSERT_TRUE(text.ok()) << text.status();

  Database loaded;
  Result<SnapshotLoadStats> stats = LoadSnapshot(&loaded, *text);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->meta.at("stratum"), "1");
  EXPECT_EQ(stats->meta.at("note"), "with\ttab");
  ASSERT_NE(loaded.Find("$delta:t"), nullptr);
  EXPECT_EQ(loaded.Find("$delta:t")->size(), 1u);
}

TEST(Snapshot, RejectsSpacedMetaKeyAndRelationName) {
  Database db;
  ASSERT_TRUE(db.AddRow("e", {"a"}).ok());
  SnapshotWriteOptions opts;
  opts.meta["bad key"] = "v";
  EXPECT_FALSE(SaveSnapshot(db, opts).ok());

  Database db2;
  ASSERT_TRUE(db2.AddRow("bad name", {"a"}).ok());
  EXPECT_FALSE(SaveSnapshot(db2).ok());
}

TEST(Snapshot, TornTailRecoversCommittedPrefix) {
  Database db;
  ASSERT_TRUE(db.AddRow("e", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddRow("e", {"b", "c"}).ok());
  ASSERT_TRUE(db.AddRow("t", {"a", "c"}).ok());
  Result<std::string> text = SaveSnapshot(db);
  ASSERT_TRUE(text.ok());

  // Cut the file at every point past the header line (a torn header is
  // indistinguishable from a non-snapshot and is rejected by design). In
  // recovery mode each prefix either loads some verified sections or loads
  // nothing, and never reports corruption; the strict mode refuses every
  // incomplete prefix.
  SnapshotLoadOptions recover;
  recover.recover_tail = true;
  const size_t header_end = text->find('\n') + 1;
  for (size_t cut = text->size(); cut-- > header_end;) {
    std::string torn = text->substr(0, cut);
    Database strict_db;
    Result<SnapshotLoadStats> strict = LoadSnapshot(&strict_db, torn);
    EXPECT_FALSE(strict.ok()) << "cut at " << cut;

    Database rec_db;
    Result<SnapshotLoadStats> rec = LoadSnapshot(&rec_db, torn, recover);
    ASSERT_TRUE(rec.ok()) << "cut at " << cut << ": " << rec.status();
    EXPECT_TRUE(rec->recovered_prefix) << "cut at " << cut;
    // Whatever loaded is a prefix of the real data, never an invention.
    const Relation* e = rec_db.Find("e");
    if (e != nullptr) {
      EXPECT_LE(e->size(), 2u);
    }
  }

  // The complete file loads identically in both modes.
  Database full;
  Result<SnapshotLoadStats> stats = LoadSnapshot(&full, *text, recover);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->recovered_prefix);
  EXPECT_EQ(full.DumpRelation("e"), db.DumpRelation("e"));
  EXPECT_EQ(full.DumpRelation("t"), db.DumpRelation("t"));
}

TEST(Snapshot, BitFlipInBodyIsCorruptionEvenInRecoveryMode) {
  Database db;
  ASSERT_TRUE(db.AddRow("e", {"aa", "bb"}).ok());
  Result<std::string> text = SaveSnapshot(db);
  ASSERT_TRUE(text.ok());
  size_t body_pos = text->find("aa\tbb");
  ASSERT_NE(body_pos, std::string::npos);
  std::string damaged = *text;
  damaged[body_pos] = 'z';

  SnapshotLoadOptions recover;
  recover.recover_tail = true;
  Database loaded;
  Result<SnapshotLoadStats> r = LoadSnapshot(&loaded, damaged, recover);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(loaded.RelationNames().size(), 0u);  // No partial mutation.
}

TEST(Snapshot, TrailingGarbageAfterCommitIsCorruption) {
  Database db;
  ASSERT_TRUE(db.AddRow("e", {"a", "b"}).ok());
  Result<std::string> text = SaveSnapshot(db);
  ASSERT_TRUE(text.ok());
  std::string damaged = *text + "extra\n";
  SnapshotLoadOptions recover;
  recover.recover_tail = true;
  Database loaded;
  Result<SnapshotLoadStats> r = LoadSnapshot(&loaded, damaged, recover);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(Snapshot, DuplicateRelationHeaderIsParseError) {
  std::string text =
      "# dire snapshot v2\n"
      "@relation e 1 0 00000000\n"
      "@relation e 1 0 00000000\n";
  Database db;
  Result<SnapshotLoadStats> r = LoadSnapshot(&db, text);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status();
}

TEST(Snapshot, OversizedArityIsParseError) {
  std::string text =
      "# dire snapshot v2\n"
      "@relation e 5000 0 00000000\n";
  Database db;
  Result<SnapshotLoadStats> r = LoadSnapshot(&db, text);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(Snapshot, DuplicateMetaKeyIsParseError) {
  std::string text =
      "# dire snapshot v2\n"
      "@meta k 1\n"
      "@meta k 2\n";
  Database db;
  EXPECT_FALSE(LoadSnapshot(&db, text).ok());
}

TEST(Snapshot, RejectsMissingHeader) {
  Database db;
  EXPECT_FALSE(LoadSnapshot(&db, "@relation r 1\nx\n").ok());
}

TEST(Snapshot, V1RejectsFieldCountMismatch) {
  Database db;
  Result<SnapshotLoadStats> r =
      LoadSnapshot(&db, "# dire snapshot v1\n@relation r 2\nonlyone\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("expected 2 fields"),
            std::string::npos);
}

TEST(Snapshot, V1RejectsTupleBeforeRelation) {
  Database db;
  EXPECT_FALSE(LoadSnapshot(&db, "# dire snapshot v1\na\tb\n").ok());
}

TEST(Snapshot, V1RejectsDuplicateHeader) {
  Database db;
  EXPECT_FALSE(LoadSnapshot(&db,
                            "# dire snapshot v1\n@relation r 1\nx\n"
                            "@relation r 1\ny\n")
                   .ok());
}

TEST(Snapshot, V1StillLoads) {
  Database db;
  Result<SnapshotLoadStats> r =
      LoadSnapshot(&db, "# dire snapshot v1\n@relation e 2\na\tb\nb\tc\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->version, 1);
  EXPECT_EQ(db.Find("e")->size(), 2u);
}

TEST(Snapshot, FileRoundTrip) {
  Database db;
  ASSERT_TRUE(MakeChain(&db, "e", 5).ok());
  std::string path = ::testing::TempDir() + "/dire_snapshot_test.snap";
  ASSERT_TRUE(SaveSnapshotFile(db, path).ok());
  Database loaded;
  ASSERT_TRUE(LoadSnapshotFile(&loaded, path).ok());
  EXPECT_EQ(db.DumpRelation("e"), loaded.DumpRelation("e"));
  std::remove(path.c_str());
  EXPECT_FALSE(LoadSnapshotFile(&loaded, path + ".missing").ok());
}

TEST(Snapshot, LoadIntoNonEmptyDatabaseMerges) {
  Database db;
  ASSERT_TRUE(db.AddRow("e", {"a", "b"}).ok());
  ASSERT_TRUE(
      LoadSnapshot(&db, "# dire snapshot v1\n@relation e 2\nb\tc\n").ok());
  EXPECT_EQ(db.Find("e")->size(), 2u);
  // Arity conflicts are rejected, and leave the database untouched.
  EXPECT_FALSE(
      LoadSnapshot(&db, "# dire snapshot v1\n@relation e 3\na\tb\tc\n").ok());
  EXPECT_EQ(db.Find("e")->size(), 2u);
}

TEST(Snapshot, FailedLoadLeavesDatabaseUntouched) {
  Database db;
  ASSERT_TRUE(db.AddRow("keep", {"x"}).ok());
  // First section is fine, second has a checksum mismatch: nothing (not even
  // the fine section) may land in `db`.
  Database src;
  ASSERT_TRUE(src.AddRow("a", {"1"}).ok());
  ASSERT_TRUE(src.AddRow("zz", {"2"}).ok());
  Result<std::string> text = SaveSnapshot(src);
  ASSERT_TRUE(text.ok());
  size_t pos = text->find("2\n");
  ASSERT_NE(pos, std::string::npos);
  std::string damaged = *text;
  damaged[pos] = '3';
  ASSERT_FALSE(LoadSnapshot(&db, damaged).ok());
  EXPECT_EQ(db.RelationNames().size(), 1u);
  EXPECT_EQ(db.Find("keep")->size(), 1u);
}

}  // namespace
}  // namespace dire::storage
