// Focused tests for the Theorem 4.3 machinery (Defs 4.2/4.3), beyond the
// paper's own Example 4.7 cases covered in paper_examples_test.cc.

#include <gtest/gtest.h>

#include "core/rewrite.h"
#include "core/weak.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

using dire::testing::AnalyzeOrDie;
using dire::testing::DefOrDie;

// Example 4.7's recursive rule with exit e(W,U): the exit predicate shares
// the chain variables, but their weights to the corresponding positions of
// the recursive e atom differ (-2 vs 0), so no single k satisfies clause 4
// of Def 4.2 — irredundant, hence data dependent.
TEST(WeakIndependence, Clause4Fires) {
  core::RecursionAnalysis a = AnalyzeOrDie(R"(
    t(X, Y, U, W) :- t(X, M, M, Y), e(M, Y).
    t(X, Y, U, W) :- e(W, U).
  )", "t");
  ASSERT_TRUE(a.weak.has_value());
  EXPECT_TRUE(a.weak->regular_pair_test_applied);
  EXPECT_TRUE(a.weak->exit_connected);
  EXPECT_TRUE(a.weak->exit_irredundant);
  EXPECT_EQ(a.weak->irredundance_condition, 4);
  EXPECT_EQ(a.weak->verdict, Verdict::kDependent);

  // Cross-check with the semi-decision: no bound should appear.
  ast::RecursiveDefinition def = DefOrDie(R"(
    t(X, Y, U, W) :- t(X, M, M, Y), e(M, Y).
    t(X, Y, U, W) :- e(W, U).
  )", "t");
  Result<RewriteResult> r = BoundedRewrite(def);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->outcome, RewriteResult::Outcome::kInconclusive);
}

// Clause 1: a distinct exit predicate is always irredundant.
TEST(WeakIndependence, Clause1DistinctPredicate) {
  core::RecursionAnalysis a = AnalyzeOrDie(R"(
    t(X, Y) :- e(X, Z), t(Z, Y).
    t(X, Y) :- base(X, Y).
  )", "t");
  ASSERT_TRUE(a.weak.has_value());
  EXPECT_EQ(a.weak->irredundance_condition, 1);
  EXPECT_EQ(a.weak->verdict, Verdict::kDependent);
}

// Clause 2 fired for the standard transitive-closure pairing (checked in
// the catalog); here verify the recorded clause index.
TEST(WeakIndependence, Clause2StableVariableSeparation) {
  core::RecursionAnalysis a =
      AnalyzeOrDie(dire::testing::kTransitiveClosure, "t");
  ASSERT_TRUE(a.weak.has_value());
  EXPECT_EQ(a.weak->irredundance_condition, 2);
}

// The weak test result must agree with the rewrite semi-decision on every
// Theorem 4.3-class pairing in this file.
TEST(WeakIndependence, AgreesWithRewriteOnRegularPairs) {
  const char* pairs[] = {
      "t(X, Y) :- e(X, Z), t(Z, Y). t(X, Y) :- e(X, Y).",
      "t(X, Y) :- e(X, Z), t(Z, Y). t(X, Y) :- e(W, Y).",
      "t(X, Y, U, W) :- t(X, M, M, Y), e(M, Y). t(X, Y, U, W) :- e(U, W).",
      "t(X, Y, U, W) :- t(X, M, M, Y), e(M, Y). t(X, Y, U, W) :- e(U, U).",
      "t(X, Y) :- trendy(X), t(Z, Y). t(X, Y) :- likes(X, Y).",
  };
  for (const char* text : pairs) {
    SCOPED_TRACE(text);
    ast::RecursiveDefinition def = DefOrDie(text, "t");
    Result<WeakIndependenceResult> weak = TestWeakIndependence(def);
    ASSERT_TRUE(weak.ok());
    ASSERT_NE(weak->verdict, Verdict::kUnknown);
    Result<RewriteResult> rewrite = BoundedRewrite(def);
    ASSERT_TRUE(rewrite.ok());
    if (weak->verdict == Verdict::kIndependent) {
      EXPECT_EQ(rewrite->outcome, RewriteResult::Outcome::kBounded);
    } else {
      EXPECT_EQ(rewrite->outcome, RewriteResult::Outcome::kInconclusive);
    }
  }
}

TEST(WeakIndependence, RequiresExitRule) {
  ast::RecursiveDefinition def =
      DefOrDie("t(X,Y) :- e(X,Z), t(Z,Y).", "t");
  EXPECT_FALSE(TestWeakIndependence(def).ok());
}

// Multiple exit rules: outside Theorem 4.3's class, but strong independence
// still settles the question when available.
TEST(WeakIndependence, MultipleExitRules) {
  core::RecursionAnalysis a = AnalyzeOrDie(R"(
    buys(X, Y) :- trendy(X), buys(Z, Y).
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- owns(X, Y).
  )", "buys");
  ASSERT_TRUE(a.weak.has_value());
  EXPECT_EQ(a.weak->verdict, Verdict::kIndependent);
  EXPECT_FALSE(a.weak->regular_pair_test_applied);
}

TEST(WeakIndependence, MultipleExitRulesDependentStaysUnknown) {
  core::RecursionAnalysis a = AnalyzeOrDie(R"(
    t(X, Y) :- e(X, Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
    t(X, Y) :- base(X, Y).
  )", "t");
  ASSERT_TRUE(a.weak.has_value());
  EXPECT_EQ(a.weak->verdict, Verdict::kUnknown);
}

}  // namespace
}  // namespace dire::core
