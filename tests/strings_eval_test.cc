#include <gtest/gtest.h>

#include "core/strings_eval.h"
#include "eval/evaluator.h"
#include "storage/generators.h"
#include "tests/test_util.h"

namespace dire::core {
namespace {

using dire::testing::DefOrDie;
using dire::testing::ParseOrDie;

TEST(StringsEval, MatchesFixpointOnTransitiveClosure) {
  ast::RecursiveDefinition def =
      DefOrDie(dire::testing::kTransitiveClosure, "t");
  storage::Database via_strings;
  storage::Database via_fixpoint;
  ASSERT_TRUE(storage::MakeChain(&via_strings, "e", 9).ok());
  ASSERT_TRUE(storage::MakeChain(&via_fixpoint, "e", 9).ok());

  Result<StringEvalStats> stats = EvaluateViaExpansion(def, &via_strings);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->converged);
  // A 9-node chain needs strings up to depth 7 (8 edges) plus quiet levels.
  EXPECT_GE(stats->levels, 8);

  eval::Evaluator ev(&via_fixpoint);
  ASSERT_TRUE(ev.Evaluate(ParseOrDie(dire::testing::kTransitiveClosure)).ok());
  EXPECT_EQ(via_strings.DumpRelation("t"), via_fixpoint.DumpRelation("t"));
}

TEST(StringsEval, BoundedDefinitionConvergesEarly) {
  ast::RecursiveDefinition def = DefOrDie(dire::testing::kBuys, "buys");
  storage::Database db;
  Rng rng(3);
  ASSERT_TRUE(storage::MakeConsumerData(&db, 40, 12, 2, 0.3, &rng).ok());
  Result<StringEvalStats> stats = EvaluateViaExpansion(def, &db);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->converged);
  // Strings beyond depth 1 add nothing; with the default 2 quiet levels the
  // evaluation stops after ~4 levels.
  EXPECT_LE(stats->levels, 5);
}

TEST(StringsEval, MaxLevelsCapStopsEvaluation) {
  ast::RecursiveDefinition def =
      DefOrDie(dire::testing::kTransitiveClosure, "t");
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 30).ok());
  StringEvalOptions opts;
  opts.max_levels = 3;
  Result<StringEvalStats> stats = EvaluateViaExpansion(def, &db, opts);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->converged);
  EXPECT_EQ(stats->levels, 3);
  // Only paths up to length 3 were derived.
  EXPECT_EQ(db.Find("t")->size(), 29u + 28u + 27u);
}

TEST(StringsEval, CountsStringsAndTuples) {
  ast::RecursiveDefinition def =
      DefOrDie(dire::testing::kTransitiveClosure, "t");
  storage::Database db;
  ASSERT_TRUE(storage::MakeChain(&db, "e", 4).ok());
  Result<StringEvalStats> stats = EvaluateViaExpansion(def, &db);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(static_cast<size_t>(stats->levels), stats->strings);  // 1/level.
  EXPECT_EQ(stats->tuples, 6u);
}

}  // namespace
}  // namespace dire::core
