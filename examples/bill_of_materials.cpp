// Bill-of-materials scenario: the classic deductive-database part-explosion
// query. Shows the substrate features a downstream user leans on once the
// paper's analysis has classified the recursion as genuinely data dependent:
// semi-naive evaluation, magic-set point queries ("what goes into a gearbox?")
// and provenance ("why does a bicycle contain a ball bearing?").
//
//   $ ./bill_of_materials

#include <cstdio>

#include "dire.h"
#include "eval/magic.h"
#include "eval/provenance.h"

namespace {

constexpr const char* kProgram = R"(
  % part(Assembly, Component): direct composition.
  part(bicycle, frame).     part(bicycle, wheel).
  part(bicycle, gearbox).   part(wheel, rim).
  part(wheel, spoke).       part(wheel, hub).
  part(hub, axle).          part(hub, bearing).
  part(gearbox, gear).      part(gearbox, bearing).
  part(gear, tooth).
  part(lamp, bulb).         part(lamp, socket).

  % contains: transitive part-of.
  contains(A, P) :- part(A, P).
  contains(A, P) :- part(A, S), contains(S, P).
)";

}  // namespace

int main() {
  dire::ast::Program program = dire::parser::ParseProgram(kProgram).value();

  // 1. The analysis classifies `contains` as data dependent — the recursion
  //    is real and must be evaluated.
  dire::core::RecursionAnalysis analysis =
      dire::core::AnalyzeRecursion(program, "contains").value();
  std::printf("analysis: %s (%s)\n\n",
              dire::core::VerdictName(analysis.strong.verdict),
              analysis.strong.theorem.c_str());

  // 2. Full evaluation with provenance tracking.
  dire::storage::Database db;
  dire::eval::ProvenanceTracker tracker;
  dire::eval::EvalOptions options;
  options.tracker = &tracker;
  dire::eval::Evaluator evaluator(&db, options);
  dire::eval::EvalStats stats = evaluator.Evaluate(program).value();
  std::printf("part explosion: %zu contains-tuples in %d rounds\n\n",
              db.Find("contains")->size(), stats.iterations);

  // 3. Magic-sets point query: only the gearbox subtree is explored.
  dire::storage::Database qdb;
  dire::ast::Atom query =
      dire::parser::ParseAtom("contains(gearbox, P)").value();
  dire::eval::QueryAnswer answer =
      dire::eval::AnswerQuery(&qdb, program, query).value();
  std::printf("contains(gearbox, P): %zu answers\n", answer.tuples.size());
  for (const dire::storage::Tuple& t : answer.tuples) {
    std::printf("  gearbox -> %s\n", qdb.symbols().Name(t[1]).c_str());
  }

  // 4. Provenance: why does the bicycle contain a bearing?
  dire::ast::Atom fact =
      dire::parser::ParseAtom("contains(bicycle, bearing)").value();
  dire::eval::Derivation why =
      dire::eval::Explain(&db, program, tracker, fact).value();
  std::printf("\nwhy contains(bicycle, bearing)?\n%s", why.ToString().c_str());
  return 0;
}
