// Genealogy scenario: a knowledge base of parent/2 facts with several
// recursive queries. Shows how the analysis separates genuinely recursive
// queries (ancestor — data dependent, evaluate with semi-naive) from
// disguised-nonrecursive ones (notable descendants — data independent),
// and how the §6 optimizer hoists loop-invariant predicates.
//
//   $ ./genealogy

#include <cstdio>

#include "dire.h"

namespace {

// ancestor is the transitive closure of parent: provably NOT expressible
// without recursion (paper Example 1.1, citing Aho–Ullman).
constexpr const char* kAncestor = R"(
  ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
  ancestor(X, Y) :- parent(X, Y).
)";

// "A person is distinguished if they are famous, or if they are noble and
// someone is distinguished" — viral definition like Example 1.2; the
// recursion is bounded.
constexpr const char* kDistinguished = R"(
  distinguished(X) :- famous(X).
  distinguished(X) :- noble(X), distinguished(Z).
)";

// heir chains through parent, but also consults the house emblem of the
// *destination* person Y — a predicate that never touches the chain
// (paper Example 6.1's shape): hoistable.
constexpr const char* kHeir = R"(
  heir(X, Y) :- parent(X, Z), emblem(W, Y), heir(Z, Y).
  heir(X, Y) :- crowned(X, Y).
)";

void Show(const char* title, const char* rules, const char* target) {
  std::printf("=== %s ===\n", title);
  dire::ast::Program program = dire::parser::ParseProgram(rules).value();
  dire::core::RecursionAnalysis analysis =
      dire::core::AnalyzeRecursion(program, target).value();
  std::printf("%s\n", analysis.Report().c_str());
}

}  // namespace

int main() {
  Show("ancestor (transitive closure)", kAncestor, "ancestor");
  Show("distinguished (bounded recursion)", kDistinguished, "distinguished");
  Show("heir (hoistable emblem lookup)", kHeir, "heir");

  // Rewrite the bounded query.
  {
    dire::ast::Program program =
        dire::parser::ParseProgram(kDistinguished).value();
    dire::ast::RecursiveDefinition def =
        dire::ast::MakeDefinition(program, "distinguished").value();
    dire::core::RewriteResult r = dire::core::BoundedRewrite(def).value();
    std::printf("distinguished, rewritten without recursion:\n%s\n",
                r.rewritten.ToString().c_str());
  }

  // Hoist the emblem lookup out of the heir recursion.
  {
    dire::ast::Program program = dire::parser::ParseProgram(kHeir).value();
    dire::ast::RecursiveDefinition def =
        dire::ast::MakeDefinition(program, "heir").value();
    dire::Result<dire::core::HoistResult> h =
        dire::core::HoistUnconnectedPredicates(def);
    if (h.ok() && h->changed) {
      std::printf("heir, with emblem hoisted out of the recursion:\n%s\n",
                  h->program.ToString().c_str());
    }
  }

  // Evaluate ancestor on a concrete family tree.
  {
    dire::storage::Database db;
    dire::ast::Program program = dire::parser::ParseProgram(R"(
      parent(alice, bella). parent(bella, carol). parent(carol, dora).
      parent(alice, ben).   parent(ben, cora).
      ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
      ancestor(X, Y) :- parent(X, Y).
    )").value();
    dire::eval::Evaluator evaluator(&db);
    dire::eval::EvalStats stats = evaluator.Evaluate(program).value();
    std::printf("ancestor relation (%d fixpoint rounds):\n%s",
                stats.iterations, db.DumpRelation("ancestor").c_str());
  }
  return 0;
}
