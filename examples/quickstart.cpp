// Quickstart: parse a recursive Datalog program, run the paper's
// boundedness analysis, replace the recursion by its nonrecursive
// equivalent when possible, and evaluate.
//
//   $ ./quickstart
//
// exercises Example 1.2 of the paper (the "buys" rules) end to end.

#include <cstdio>

#include "dire.h"

namespace {

constexpr const char* kProgram = R"(
  % A person buys a product if they like it, or if they are trendy and
  % someone else has bought it (paper Example 1.2).
  buys(X, Y) :- likes(X, Y).
  buys(X, Y) :- trendy(X), buys(Z, Y).

  likes(ann, vase).
  likes(bob, lamp).
  trendy(cara).
  trendy(bob).
)";

}  // namespace

int main() {
  // 1. Parse.
  dire::Result<dire::ast::Program> program =
      dire::parser::ParseProgram(kProgram);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  // 2. Analyze the recursion (A/V graph, chain generating paths,
  //    Theorems 4.1-4.3).
  dire::Result<dire::core::RecursionAnalysis> analysis =
      dire::core::AnalyzeRecursion(*program, "buys");
  if (!analysis.ok()) {
    std::fprintf(stderr, "analysis error: %s\n",
                 analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", analysis->Report().c_str());

  // 3. If data independent, construct the equivalent nonrecursive rules
  //    (Theorem 2.1).
  if (analysis->strongly_data_independent()) {
    dire::Result<dire::core::RewriteResult> rewrite =
        dire::core::BoundedRewrite(analysis->definition);
    if (rewrite.ok() &&
        rewrite->outcome == dire::core::RewriteResult::Outcome::kBounded) {
      std::printf("equivalent nonrecursive definition (bound %d):\n%s\n",
                  rewrite->bound, rewrite->rewritten.ToString().c_str());
    }
  }

  // 4. Evaluate bottom-up (semi-naive) and print the result.
  dire::storage::Database db;
  dire::eval::Evaluator evaluator(&db);
  dire::Result<dire::eval::EvalStats> stats = evaluator.Evaluate(*program);
  if (!stats.ok()) {
    std::fprintf(stderr, "evaluation error: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("evaluated in %d iteration(s), %zu tuple(s) derived:\n%s",
              stats->iterations, stats->tuples_derived,
              db.DumpRelation("buys").c_str());
  return 0;
}
