// Optimizer tour: the query-planning loop sketched at the end of the
// paper's §6, run over a mixed workload of recursive definitions. For each
// definition the planner:
//
//   1. builds the A/V graph and runs chain-generating-path detection;
//   2. if (strongly or weakly) data independent, replaces the recursion by
//      the nonrecursive rewrite and plans a single-pass evaluation;
//   3. otherwise hoists chain-unconnected predicates (Theorem 6.1) and
//      falls back to semi-naive fixpoint evaluation — with an iteration
//      bound instead of a termination test when one is known.
//
//   $ ./optimizer_tour

#include <cstdio>
#include <string>
#include <vector>

#include "dire.h"

namespace {

struct Workload {
  const char* name;
  const char* target;
  const char* rules;
};

const std::vector<Workload>& Workloads() {
  static const std::vector<Workload>* kWorkloads = new std::vector<Workload>{
      {"reachability", "t", R"(
        t(X, Y) :- e(X, Z), t(Z, Y).
        t(X, Y) :- e(X, Y).
      )"},
      {"viral-purchases", "buys", R"(
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- trendy(X), buys(Z, Y).
      )"},
      {"annotated-reachability", "t", R"(
        t(X, Y) :- e(X, Z), b(W, Y), t(Z, Y).
        t(X, Y) :- t0(X, Y).
      )"},
      {"swap-and-check", "t", R"(
        t(X, Y, Z) :- t(Y, X, W), e(X, W).
        t(X, Y, Z) :- t0(X, Y, Z).
      )"},
      {"loose-exit", "t", R"(
        t(X, Y) :- e(X, Z), t(Z, Y).
        t(X, Y) :- e(W, Y).
      )"},
  };
  return *kWorkloads;
}

void Plan(const Workload& w) {
  std::printf("---- %s ----\n", w.name);
  dire::ast::Program program = dire::parser::ParseProgram(w.rules).value();
  dire::Result<dire::core::RecursionAnalysis> analysis =
      dire::core::AnalyzeRecursion(program, w.target);
  if (!analysis.ok()) {
    std::printf("  analysis failed: %s\n",
                analysis.status().ToString().c_str());
    return;
  }

  bool independent = analysis->strongly_data_independent() ||
                     analysis->weakly_data_independent();
  if (independent) {
    dire::Result<dire::core::RewriteResult> r =
        dire::core::BoundedRewrite(analysis->definition);
    if (r.ok() && r->outcome == dire::core::RewriteResult::Outcome::kBounded) {
      std::printf(
          "  plan: NONRECURSIVE — %zu conjunctive queries, one pass\n",
          r->rewritten.rules.size());
      for (const dire::ast::Rule& rule : r->rewritten.rules) {
        std::printf("        %s\n", rule.ToString().c_str());
      }
      dire::Result<int> rounds =
          dire::core::PlanIterationBound(analysis->definition);
      if (rounds.ok()) {
        std::printf(
            "        (or: keep the recursion, run exactly %d rounds, no "
            "termination test)\n",
            *rounds);
      }
      return;
    }
    std::printf("  plan: independent but rewrite inconclusive (%s)\n",
                r.ok() ? r->note.c_str() : r.status().ToString().c_str());
    return;
  }

  // Data dependent: try Theorem 6.1 hoisting before settling on the
  // fixpoint plan.
  dire::Result<dire::core::HoistResult> h =
      dire::core::HoistUnconnectedPredicates(analysis->definition);
  if (h.ok() && h->changed) {
    std::printf("  plan: SEMI-NAIVE on hoisted program (moved out:");
    for (const dire::ast::Atom& a : h->hoisted) {
      std::printf(" %s", a.ToString().c_str());
    }
    std::printf(")\n");
    for (const dire::ast::Rule& rule : h->program.rules) {
      std::printf("        %s\n", rule.ToString().c_str());
    }
  } else {
    std::printf("  plan: SEMI-NAIVE fixpoint (%s)\n",
                analysis->strong.explanation.c_str());
  }
}

}  // namespace

int main() {
  for (const Workload& w : Workloads()) Plan(w);
  return 0;
}
