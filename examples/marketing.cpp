// Marketing analytics scenario (paper Example 1.2 at scale).
//
// A consumer-behaviour team stores likes(person, product) and
// trendy(person) and asks for all (person, product) purchase predictions
// under the viral rule "trendy people buy what anyone else bought".
//
// The recursion is data independent: the paper's analysis replaces it by
// two nonrecursive rules. This example measures what that buys us:
// semi-naive fixpoint evaluation of the recursive program vs one-pass
// evaluation of the rewrite, across growing databases.
//
//   $ ./marketing [num_people]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "dire.h"

namespace {

constexpr const char* kRules = R"(
  buys(X, Y) :- likes(X, Y).
  buys(X, Y) :- trendy(X), buys(Z, Y).
)";

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  int max_people = argc > 1 ? std::atoi(argv[1]) : 2000;

  dire::ast::Program rules = dire::parser::ParseProgram(kRules).value();
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(rules, "buys").value();

  // Analysis + rewrite happen once, independent of the data — that is the
  // point of *data independent* recursion.
  dire::core::RecursionAnalysis analysis =
      dire::core::AnalyzeRecursion(rules, "buys").value();
  std::printf("analysis verdict: %s (%s)\n",
              dire::core::VerdictName(analysis.strong.verdict),
              analysis.strong.theorem.c_str());
  dire::core::RewriteResult rewrite =
      dire::core::BoundedRewrite(def).value();
  std::printf("rewrite: %zu nonrecursive rules, bound %d\n\n",
              rewrite.rewritten.rules.size(), rewrite.bound);

  std::printf("%10s %12s %14s %16s %10s\n", "people", "buys-tuples",
              "recursive(ms)", "nonrecursive(ms)", "speedup");
  for (int people = 500; people <= max_people; people *= 2) {
    dire::storage::Database db_rec;
    dire::storage::Database db_flat;
    dire::Rng rng(2026);
    int products = people / 5 + 1;
    for (dire::storage::Database* db : {&db_rec, &db_flat}) {
      dire::Rng local = rng;  // Same data in both databases.
      if (!dire::storage::MakeConsumerData(db, people, products, 3, 0.1,
                                           &local)
               .ok()) {
        return 1;
      }
    }

    auto t0 = std::chrono::steady_clock::now();
    dire::eval::Evaluator recursive(&db_rec);
    if (!recursive.Evaluate(rules).ok()) return 1;
    double rec_ms = MillisSince(t0);

    auto t1 = std::chrono::steady_clock::now();
    dire::eval::Evaluator flat(&db_flat);
    if (!flat.EvaluateOnce(rewrite.rewritten.rules).ok()) return 1;
    double flat_ms = MillisSince(t1);

    size_t rec_tuples = db_rec.Find("buys")->size();
    size_t flat_tuples = db_flat.Find("buys")->size();
    if (rec_tuples != flat_tuples) {
      std::fprintf(stderr, "MISMATCH: %zu vs %zu tuples\n", rec_tuples,
                   flat_tuples);
      return 1;
    }
    std::printf("%10d %12zu %14.2f %16.2f %9.2fx\n", people, rec_tuples,
                rec_ms, flat_ms, rec_ms / flat_ms);
  }
  std::printf(
      "\nBoth strategies agree on every database; the nonrecursive rewrite\n"
      "needs one pass where the fixpoint needs several.\n");
  return 0;
}
