#ifndef DIRE_BENCH_BENCH_JSON_H_
#define DIRE_BENCH_BENCH_JSON_H_

// Shared driver for the bench_* binaries. DIRE_BENCH_MAIN("name") replaces
// BENCHMARK_MAIN(): it runs Google Benchmark with the usual console output
// and additionally writes BENCH_<name>.json into the working directory —
// one record per benchmark run (full run name with its parameters,
// iterations, wall/cpu nanoseconds per iteration, user counters) plus a
// snapshot of the dire metrics registry — so CI and the repro scripts
// consume results structurally instead of scraping stdout.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "base/io.h"
#include "base/obs.h"
#include "base/string_util.h"

namespace dire::benchjson {

// Console output as usual, but every per-iteration run is also kept for the
// JSON file (aggregates like mean/stddev are console-only).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Record {
    std::string name;
    int64_t iterations = 0;
    double real_ns = 0;  // Per iteration.
    double cpu_ns = 0;   // Per iteration.
    bool error = false;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      Record r;
      r.name = run.benchmark_name();
      r.iterations = static_cast<int64_t>(run.iterations);
      double iters = run.iterations > 0
                         ? static_cast<double>(run.iterations)
                         : 1.0;
      r.real_ns = run.real_accumulated_time * 1e9 / iters;
      r.cpu_ns = run.cpu_accumulated_time * 1e9 / iters;
      r.error = run.error_occurred;
      for (const auto& [cname, counter] : run.counters) {
        r.counters.emplace_back(cname, static_cast<double>(counter.value));
      }
      records_.push_back(std::move(r));
    }
  }

  const std::vector<Record>& records() const { return records_; }

 private:
  std::vector<Record> records_;
};

inline std::string RenderJson(const char* bench_name,
                              const std::vector<CollectingReporter::Record>&
                                  records) {
  std::string out = "{\n  \"bench\": \"";
  out += obs::JsonEscape(bench_name);
  out += "\",\n  \"runs\": [";
  for (size_t i = 0; i < records.size(); ++i) {
    const CollectingReporter::Record& r = records[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    out += obs::JsonEscape(r.name);
    out += StrFormat(
        "\", \"iterations\": %lld, \"real_ns\": %.1f, \"cpu_ns\": %.1f",
        static_cast<long long>(r.iterations), r.real_ns, r.cpu_ns);
    if (r.error) out += ", \"error\": true";
    if (!r.counters.empty()) {
      out += ", \"counters\": {";
      for (size_t c = 0; c < r.counters.size(); ++c) {
        if (c != 0) out += ", ";
        out += '"';
        out += obs::JsonEscape(r.counters[c].first);
        out += StrFormat("\": %g", r.counters[c].second);
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n  ],\n  \"metrics\": ";
  out += obs::MetricsJson();
  out += "\n}\n";
  return out;
}

inline int RunAndEmit(const char* bench_name, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  std::string path = StrFormat("BENCH_%s.json", bench_name);
  std::string json = RenderJson(bench_name, reporter.records());
  Status written = io::AtomicWriteFile(path, json);
  if (written.ok()) {
    std::fprintf(stderr, "wrote %s (%zu runs)\n", path.c_str(),
                 reporter.records().size());
  } else {
    std::fprintf(stderr, "error writing %s: %s\n", path.c_str(),
                 written.ToString().c_str());
  }
  benchmark::Shutdown();
  return written.ok() ? 0 : 1;
}

}  // namespace dire::benchjson

// Drop-in replacement for BENCHMARK_MAIN(); `name` lands in the emitted
// file name (BENCH_<name>.json) and its "bench" field.
#define DIRE_BENCH_MAIN(name)                                      \
  int main(int argc, char** argv) {                                \
    return dire::benchjson::RunAndEmit(name, argc, argv);          \
  }                                                                \
  static_assert(true, "require a trailing semicolon")

#endif  // DIRE_BENCH_BENCH_JSON_H_
