// Incremental view maintenance vs full re-derivation on one-tuple writes.
// The maintained runs time exactly what the server's write fast path does:
// the base fact is already applied, and Maintainer::ApplyDelta derives only
// the write's consequences (DRed for the recursive strata, counting for the
// non-recursive ones). The Reeval runs time the classic path they replace —
// re-deriving the whole fixpoint from the post-write base facts. The
// interesting number is the ratio at a fixed scale, which CI gates at 20x
// on TransitiveClosure/400.
//
// Every maintained run also checks equivalence once, outside the timed
// loop: the maintained database must serialize to the same snapshot bytes
// as a from-scratch evaluation of the same base facts (snapshots are
// canonical, so byte equality is tuple-set equality). The `identical`
// counter records the outcome and CI asserts it is 1.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_json.h"

#include "base/rng.h"
#include "base/string_util.h"
#include "eval/evaluator.h"
#include "eval/maintain.h"
#include "parser/parser.h"
#include "storage/generators.h"
#include "storage/snapshot.h"

namespace {

constexpr const char* kTc = R"(
  t(X, Y) :- e(X, Z), t(Z, Y).
  t(X, Y) :- e(X, Y).
)";

// The skewed workload mixes stratum kinds: `out` is non-recursive
// (counting maintenance), `r` recursive (DRed). The delta toggles a tiny()
// membership, which fans out through both.
constexpr const char* kSkewedReach = R"(
  out(X, Y) :- big(X, Z), big(Z, Y), tiny(X).
  r(X, Y) :- out(X, Y).
  r(X, Y) :- out(X, Z), r(Z, Y).
)";

void LoadTcEdb(dire::storage::Database* db, int n) {
  dire::Rng rng(42);
  if (!dire::storage::MakeRandomGraph(db, "e", n, 8 * n, &rng).ok()) {
    std::abort();
  }
}

void LoadSkewedEdb(dire::storage::Database* db, int n) {
  dire::Rng rng(19);
  if (!dire::storage::MakeRandomGraph(db, "big", n, 16 * n, &rng).ok()) {
    std::abort();
  }
  dire::Result<dire::storage::Relation*> tiny = db->GetOrCreate("tiny", 1);
  if (!tiny.ok()) std::abort();
  for (int i = 0; i < 4; ++i) {
    (*tiny)->Insert(
        {db->symbols().Intern(dire::StrFormat("n%d", i * (n / 4)))});
  }
}

// Serializes a from-scratch evaluation of (load EDB + the extra tuple).
std::string ScratchSnapshot(const dire::ast::Program& program,
                            void (*load)(dire::storage::Database*, int),
                            int scale, const std::string& rel,
                            const std::vector<std::string>& tuple) {
  dire::storage::Database db;
  load(&db, scale);
  if (!db.AddRow(rel, tuple).ok()) std::abort();
  dire::eval::Evaluator ev(&db, dire::eval::EvalOptions{});
  if (!ev.Evaluate(program).ok()) std::abort();
  dire::Result<std::string> snap = dire::storage::SaveSnapshot(db);
  if (!snap.ok()) std::abort();
  return *snap;
}

// One maintained write per timed iteration; the opposite write restores the
// baseline under PauseTiming, so every iteration maintains the same delta.
void RunMaintained(benchmark::State& state, const char* program_text,
                   void (*load)(dire::storage::Database*, int),
                   const char* rel, std::vector<std::string> tuple,
                   bool time_insert) {
  dire::ast::Program program =
      dire::parser::ParseProgram(program_text).value();
  int scale = static_cast<int>(state.range(0));
  dire::storage::Database db;
  load(&db, scale);
  dire::eval::Evaluator ev(&db, dire::eval::EvalOptions{});
  if (!ev.Evaluate(program).ok()) {
    state.SkipWithError("evaluation failed");
    return;
  }
  dire::eval::Maintainer m(&db, program);
  if (!m.init_status().ok()) {
    state.SkipWithError("maintainer init failed");
    return;
  }
  const std::vector<dire::eval::FactDelta> ins{{rel, tuple}};
  const std::vector<dire::eval::FactDelta> del{{rel, tuple}};
  auto add = [&]() -> bool {
    return db.AddRow(rel, tuple).ok() && m.ApplyDelta(ins, {}).ok();
  };
  auto remove = [&]() -> bool {
    dire::Result<bool> removed = db.RemoveRow(rel, tuple);
    return removed.ok() && *removed && m.ApplyDelta({}, del).ok();
  };
  // Derivation counts prime lazily on the first delta that touches a
  // counting stratum; the server pays that once per process, not per
  // write, so warm it outside the timed loop.
  if (!add() || !remove()) {
    state.SkipWithError("maintenance warm-up failed");
    return;
  }
  for (auto _ : state) {
    if (time_insert) {
      if (!add()) {
        state.SkipWithError("maintained insert failed");
        return;
      }
      state.PauseTiming();
      if (!remove()) std::abort();
      state.ResumeTiming();
    } else {
      state.PauseTiming();
      if (!add()) std::abort();
      state.ResumeTiming();
      if (!remove()) {
        state.SkipWithError("maintained delete failed");
        return;
      }
    }
  }
  // Equivalence check, once: maintain the insert, then byte-compare
  // against a from-scratch evaluation over the same base facts.
  if (!add()) std::abort();
  dire::Result<std::string> maintained = dire::storage::SaveSnapshot(db);
  if (!maintained.ok()) std::abort();
  std::string expected = ScratchSnapshot(program, load, scale, rel, tuple);
  state.counters["identical"] = (*maintained == expected) ? 1 : 0;
  if (!remove()) std::abort();
}

// The classic path: the whole fixpoint re-derived from the post-write base
// facts (what ADD/RETRACT cost before maintenance, and what recovery cost
// without a usable checkpoint).
void RunReeval(benchmark::State& state, const char* program_text,
               void (*load)(dire::storage::Database*, int), const char* rel,
               std::vector<std::string> tuple) {
  dire::ast::Program program =
      dire::parser::ParseProgram(program_text).value();
  int scale = static_cast<int>(state.range(0));
  size_t derived = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    load(&db, scale);
    if (!db.AddRow(rel, tuple).ok()) std::abort();
    state.ResumeTiming();
    dire::eval::Evaluator ev(&db, dire::eval::EvalOptions{});
    dire::Result<dire::eval::EvalStats> stats = ev.Evaluate(program);
    if (!stats.ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    derived = stats->tuples_derived;
  }
  state.counters["derived"] = static_cast<double>(derived);
}

// The delta for TC is a fresh source node: one edge x0 -> n0 whose
// consequences are the whole forward closure of n0 (hundreds of tuples at
// scale 400) — a small write with real derived work, not a no-op.
const std::vector<std::string> kTcDelta = {"x0", "n0"};

void BM_Ivm_TcMaintainAdd(benchmark::State& state) {
  RunMaintained(state, kTc, LoadTcEdb, "e", kTcDelta, /*time_insert=*/true);
}
BENCHMARK(BM_Ivm_TcMaintainAdd)
    ->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMicrosecond);

void BM_Ivm_TcMaintainRetract(benchmark::State& state) {
  RunMaintained(state, kTc, LoadTcEdb, "e", kTcDelta, /*time_insert=*/false);
}
BENCHMARK(BM_Ivm_TcMaintainRetract)
    ->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMicrosecond);

void BM_Ivm_TcReeval(benchmark::State& state) {
  RunReeval(state, kTc, LoadTcEdb, "e", kTcDelta);
}
BENCHMARK(BM_Ivm_TcReeval)
    ->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// The skewed delta adds a new tiny() source, activating out(n1, *) and its
// r-closure through both a counting and a DRed stratum.
const std::vector<std::string> kSkewedDelta = {"n1"};

void BM_Ivm_SkewedMaintainAdd(benchmark::State& state) {
  RunMaintained(state, kSkewedReach, LoadSkewedEdb, "tiny", kSkewedDelta,
                /*time_insert=*/true);
}
BENCHMARK(BM_Ivm_SkewedMaintainAdd)
    ->Arg(200)
    ->Unit(benchmark::kMicrosecond);

void BM_Ivm_SkewedMaintainRetract(benchmark::State& state) {
  RunMaintained(state, kSkewedReach, LoadSkewedEdb, "tiny", kSkewedDelta,
                /*time_insert=*/false);
}
BENCHMARK(BM_Ivm_SkewedMaintainRetract)
    ->Arg(200)
    ->Unit(benchmark::kMicrosecond);

void BM_Ivm_SkewedReeval(benchmark::State& state) {
  RunReeval(state, kSkewedReach, LoadSkewedEdb, "tiny", kSkewedDelta);
}
BENCHMARK(BM_Ivm_SkewedReeval)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DIRE_BENCH_MAIN("ivm");
