// CLM-STRWISE: §6 — "A relation defined by a linear recursive rule can be
// constructed by evaluating successive strings in the expansion ... This
// method would be hopelessly inefficient." This bench quantifies
// "hopelessly": transitive closure on a path graph evaluated (a) by
// string-at-a-time expansion evaluation, (b) by naive fixpoint, (c) by
// semi-naive fixpoint (the compiled-evaluation technique the paper cites).

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "core/strings_eval.h"
#include "eval/evaluator.h"
#include "parser/parser.h"
#include "storage/generators.h"

namespace {

constexpr const char* kTc = R"(
  t(X, Y) :- e(X, Z), t(Z, Y).
  t(X, Y) :- e(X, Y).
)";

void BM_Tc_StringAtATime(benchmark::State& state) {
  dire::ast::Program program = dire::parser::ParseProgram(kTc).value();
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(program, "t").value();
  int n = static_cast<int>(state.range(0));
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    if (!dire::storage::MakeChain(&db, "e", n).ok()) std::abort();
    state.ResumeTiming();
    dire::core::StringEvalOptions opts;
    opts.max_levels = n + 4;
    dire::Result<dire::core::StringEvalStats> stats =
        dire::core::EvaluateViaExpansion(def, &db, opts);
    if (!stats.ok() || !stats->converged) {
      state.SkipWithError("string evaluation did not converge");
      return;
    }
    tuples = db.Find("t")->size();
  }
  state.counters["t_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_Tc_StringAtATime)->RangeMultiplier(2)->Range(16, 128)
    ->Unit(benchmark::kMillisecond);

void RunFixpoint(benchmark::State& state, dire::eval::EvalOptions opts) {
  dire::ast::Program program = dire::parser::ParseProgram(kTc).value();
  int n = static_cast<int>(state.range(0));
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    if (!dire::storage::MakeChain(&db, "e", n).ok()) std::abort();
    state.ResumeTiming();
    dire::eval::Evaluator ev(&db, opts);
    if (!ev.Evaluate(program).ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    tuples = db.Find("t")->size();
  }
  state.counters["t_tuples"] = static_cast<double>(tuples);
}

void BM_Tc_NaiveFixpoint(benchmark::State& state) {
  dire::eval::EvalOptions opts;
  opts.mode = dire::eval::EvalOptions::Mode::kNaive;
  RunFixpoint(state, opts);
}
BENCHMARK(BM_Tc_NaiveFixpoint)->RangeMultiplier(2)->Range(16, 128)
    ->Unit(benchmark::kMillisecond);

void BM_Tc_SemiNaiveFixpoint(benchmark::State& state) {
  RunFixpoint(state, dire::eval::EvalOptions{});
}
BENCHMARK(BM_Tc_SemiNaiveFixpoint)->RangeMultiplier(2)->Range(16, 128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DIRE_BENCH_MAIN("seminaive_vs_strings");
