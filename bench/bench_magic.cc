// ABL-MAGIC: query-directed evaluation. The paper's §6 credits the
// compiled-evaluation algorithms with "using constants from the queries ...
// to restrict lookups during evaluation"; this bench measures that effect:
// answering t(src, Y) over a forest of disjoint components by (a) full
// fixpoint + selection vs (b) the magic-sets rewrite that only explores the
// queried component.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "base/rng.h"
#include "base/string_util.h"
#include "eval/magic.h"
#include "eval/topdown.h"
#include "parser/parser.h"
#include "storage/generators.h"

namespace {

constexpr const char* kTc = R"(
  t(X, Y) :- e(X, Z), t(Z, Y).
  t(X, Y) :- e(X, Y).
)";

// `components` disjoint chains of 32 nodes each.
void FillForest(dire::storage::Database* db, int components) {
  for (int c = 0; c < components; ++c) {
    for (int i = 0; i + 1 < 32; ++i) {
      int base = c * 1000;
      if (!db->AddRow("e", {dire::StrFormat("n%d", base + i),
                            dire::StrFormat("n%d", base + i + 1)})
               .ok()) {
        std::abort();
      }
    }
  }
}

void BM_Query_FullEvaluation(benchmark::State& state) {
  dire::ast::Program program = dire::parser::ParseProgram(kTc).value();
  dire::ast::Atom query = dire::parser::ParseAtom("t(n0, Y)").value();
  size_t answers = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    FillForest(&db, static_cast<int>(state.range(0)));
    state.ResumeTiming();
    dire::Result<dire::eval::QueryAnswer> ans =
        dire::eval::AnswerQueryByFullEvaluation(&db, program, query);
    if (!ans.ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    answers = ans->tuples.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Query_FullEvaluation)->RangeMultiplier(2)->Range(1, 32)
    ->Unit(benchmark::kMillisecond);

void BM_Query_MagicSets(benchmark::State& state) {
  dire::ast::Program program = dire::parser::ParseProgram(kTc).value();
  dire::ast::Atom query = dire::parser::ParseAtom("t(n0, Y)").value();
  size_t answers = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    FillForest(&db, static_cast<int>(state.range(0)));
    state.ResumeTiming();
    dire::Result<dire::eval::QueryAnswer> ans =
        dire::eval::AnswerQuery(&db, program, query);
    if (!ans.ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    answers = ans->tuples.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Query_MagicSets)->RangeMultiplier(2)->Range(1, 32)
    ->Unit(benchmark::kMillisecond);

// Third strategy: tabled top-down resolution explores the same relevant
// subset as magic sets.
void BM_Query_TabledTopDown(benchmark::State& state) {
  dire::ast::Program program = dire::parser::ParseProgram(kTc).value();
  dire::ast::Atom query = dire::parser::ParseAtom("t(n0, Y)").value();
  size_t answers = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    FillForest(&db, static_cast<int>(state.range(0)));
    dire::eval::TabledTopDown engine(&db, program);
    state.ResumeTiming();
    dire::Result<dire::eval::QueryAnswer> ans = engine.Query(query);
    if (!ans.ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    answers = ans->tuples.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Query_TabledTopDown)->RangeMultiplier(2)->Range(1, 32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DIRE_BENCH_MAIN("magic");
