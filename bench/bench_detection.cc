// CLM-LIN: §4.2 claims "chain generating paths can be detected in time
// linear in the length of the rule". This bench sweeps rule length (number
// of nonrecursive body atoms) and reports detection time; the items/second
// counter (atoms processed per second) should stay flat if the claim holds.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <string>

#include "base/string_util.h"
#include "core/analysis.h"
#include "core/av_graph.h"
#include "core/chain.h"
#include "parser/parser.h"

namespace {

// A chain-shaped rule with `atoms` nonrecursive atoms:
//   t(X,Y) :- p0(X,Z0), p1(Z0,Z1), ..., t(Z<k-1>, Y).   (data dependent)
std::string ChainRule(int atoms) {
  std::string body;
  std::string prev = "X";
  for (int i = 0; i < atoms; ++i) {
    std::string next = dire::StrFormat("Z%d", i);
    body += dire::StrFormat("p%d(%s, %s), ", i, prev.c_str(), next.c_str());
    prev = next;
  }
  return dire::StrFormat("t(X, Y) :- %st(%s, Y).\nt(X, Y) :- e(X, Y).\n",
                         body.c_str(), prev.c_str());
}

// A star-shaped rule where every atom hangs off stable head variables:
//   t(X,Y) :- p0(X,W0), p1(X,W1), ..., t(X, Y).          (independent)
std::string StarRule(int atoms) {
  std::string body;
  for (int i = 0; i < atoms; ++i) {
    body += dire::StrFormat("p%d(X, W%d), ", i, i);
  }
  return dire::StrFormat("t(X, Y) :- %st(X, Y).\nt(X, Y) :- e(X, Y).\n",
                         body.c_str());
}

void RunDetection(benchmark::State& state, const std::string& text,
                  bool expect_chain) {
  dire::Result<dire::ast::Program> program =
      dire::parser::ParseProgram(text);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  dire::Result<dire::ast::RecursiveDefinition> def =
      dire::ast::MakeDefinition(*program, "t");
  if (!def.ok()) {
    state.SkipWithError(def.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    dire::Result<dire::core::AvGraph> graph =
        dire::core::AvGraph::Build(*def);
    dire::Result<dire::core::ChainAnalysis> chains =
        dire::core::DetectChains(*graph);
    if (chains->has_chain_generating_path != expect_chain) {
      state.SkipWithError("unexpected detection verdict");
      return;
    }
    benchmark::DoNotOptimize(chains->has_chain_generating_path);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["atoms"] = static_cast<double>(state.range(0));
}

void BM_DetectChain_Dependent(benchmark::State& state) {
  RunDetection(state, ChainRule(static_cast<int>(state.range(0))),
               /*expect_chain=*/true);
}
BENCHMARK(BM_DetectChain_Dependent)->RangeMultiplier(4)->Range(2, 2048);

void BM_DetectChain_Independent(benchmark::State& state) {
  RunDetection(state, StarRule(static_cast<int>(state.range(0))),
               /*expect_chain=*/false);
}
BENCHMARK(BM_DetectChain_Independent)->RangeMultiplier(4)->Range(2, 2048);

// Full front-end cost (standardization + graph + detection + verdicts).
void BM_AnalyzeRecursion(benchmark::State& state) {
  dire::Result<dire::ast::Program> program = dire::parser::ParseProgram(
      ChainRule(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    dire::Result<dire::core::RecursionAnalysis> a =
        dire::core::AnalyzeRecursion(*program, "t");
    benchmark::DoNotOptimize(a.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnalyzeRecursion)->RangeMultiplier(4)->Range(2, 512);

}  // namespace

DIRE_BENCH_MAIN("detection");
