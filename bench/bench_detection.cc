// CLM-LIN: §4.2 claims "chain generating paths can be detected in time
// linear in the length of the rule". This bench sweeps rule length (number
// of nonrecursive body atoms) and reports detection time; the items/second
// counter (atoms processed per second) should stay flat if the claim holds.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <string>

#include "base/rng.h"
#include "base/string_util.h"
#include "core/analysis.h"
#include "core/av_graph.h"
#include "core/chain.h"
#include "eval/cost.h"
#include "eval/plan.h"
#include "parser/parser.h"
#include "storage/generators.h"

namespace {

// A chain-shaped rule with `atoms` nonrecursive atoms:
//   t(X,Y) :- p0(X,Z0), p1(Z0,Z1), ..., t(Z<k-1>, Y).   (data dependent)
std::string ChainRule(int atoms) {
  std::string body;
  std::string prev = "X";
  for (int i = 0; i < atoms; ++i) {
    std::string next = dire::StrFormat("Z%d", i);
    body += dire::StrFormat("p%d(%s, %s), ", i, prev.c_str(), next.c_str());
    prev = next;
  }
  return dire::StrFormat("t(X, Y) :- %st(%s, Y).\nt(X, Y) :- e(X, Y).\n",
                         body.c_str(), prev.c_str());
}

// A star-shaped rule where every atom hangs off stable head variables:
//   t(X,Y) :- p0(X,W0), p1(X,W1), ..., t(X, Y).          (independent)
std::string StarRule(int atoms) {
  std::string body;
  for (int i = 0; i < atoms; ++i) {
    body += dire::StrFormat("p%d(X, W%d), ", i, i);
  }
  return dire::StrFormat("t(X, Y) :- %st(X, Y).\nt(X, Y) :- e(X, Y).\n",
                         body.c_str());
}

void RunDetection(benchmark::State& state, const std::string& text,
                  bool expect_chain) {
  dire::Result<dire::ast::Program> program =
      dire::parser::ParseProgram(text);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  dire::Result<dire::ast::RecursiveDefinition> def =
      dire::ast::MakeDefinition(*program, "t");
  if (!def.ok()) {
    state.SkipWithError(def.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    dire::Result<dire::core::AvGraph> graph =
        dire::core::AvGraph::Build(*def);
    dire::Result<dire::core::ChainAnalysis> chains =
        dire::core::DetectChains(*graph);
    if (chains->has_chain_generating_path != expect_chain) {
      state.SkipWithError("unexpected detection verdict");
      return;
    }
    benchmark::DoNotOptimize(chains->has_chain_generating_path);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["atoms"] = static_cast<double>(state.range(0));
}

void BM_DetectChain_Dependent(benchmark::State& state) {
  RunDetection(state, ChainRule(static_cast<int>(state.range(0))),
               /*expect_chain=*/true);
}
BENCHMARK(BM_DetectChain_Dependent)->RangeMultiplier(4)->Range(2, 2048);

void BM_DetectChain_Independent(benchmark::State& state) {
  RunDetection(state, StarRule(static_cast<int>(state.range(0))),
               /*expect_chain=*/false);
}
BENCHMARK(BM_DetectChain_Independent)->RangeMultiplier(4)->Range(2, 2048);

// Plan-compile cost per planner mode: how much CompileRule pays to order a
// k-atom chain body under the greedy bound-count proxy vs the cost model
// (which consults per-relation statistics for every candidate atom). The
// _Greedy/_Cost suffixes label the planner mode in BENCH_detection.json.
void RunCompile(benchmark::State& state, dire::eval::PlannerMode planner) {
  int atoms = static_cast<int>(state.range(0));
  dire::Result<dire::ast::Program> program =
      dire::parser::ParseProgram(ChainRule(atoms));
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  // Populate every predicate the rule reads so the cost model has real
  // statistics to consult (sizes skewed so orders actually differ).
  dire::storage::Database db;
  dire::Rng rng(23);
  for (int i = 0; i < atoms; ++i) {
    std::string rel = dire::StrFormat("p%d", i);
    if (!dire::storage::MakeRandomGraph(&db, rel, 50, 40 + 40 * (i % 5),
                                        &rng)
             .ok()) {
      state.SkipWithError("EDB generation failed");
      return;
    }
  }
  if (!dire::storage::MakeChain(&db, "e", 50).ok() ||
      !dire::storage::MakeChain(&db, "t", 50).ok()) {
    state.SkipWithError("EDB generation failed");
    return;
  }
  dire::eval::DatabaseStatsProvider stats(&db);
  dire::eval::CompileOptions options;
  options.planner = planner;
  options.stats = &stats;
  const dire::ast::Rule& rule = program->rules.front();
  for (auto _ : state) {
    dire::Result<dire::eval::CompiledRule> compiled =
        dire::eval::CompileRule(rule, &db.symbols(), options);
    if (!compiled.ok()) {
      state.SkipWithError("compile failed");
      return;
    }
    benchmark::DoNotOptimize(compiled->body.size());
  }
  state.SetItemsProcessed(state.iterations() * atoms);
  state.counters["planner_cost"] =
      planner == dire::eval::PlannerMode::kCost ? 1 : 0;
}

void BM_CompileRule_Greedy(benchmark::State& state) {
  RunCompile(state, dire::eval::PlannerMode::kGreedy);
}
BENCHMARK(BM_CompileRule_Greedy)->RangeMultiplier(4)->Range(2, 128);

void BM_CompileRule_Cost(benchmark::State& state) {
  RunCompile(state, dire::eval::PlannerMode::kCost);
}
BENCHMARK(BM_CompileRule_Cost)->RangeMultiplier(4)->Range(2, 128);

// Full front-end cost (standardization + graph + detection + verdicts).
void BM_AnalyzeRecursion(benchmark::State& state) {
  dire::Result<dire::ast::Program> program = dire::parser::ParseProgram(
      ChainRule(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    dire::Result<dire::core::RecursionAnalysis> a =
        dire::core::AnalyzeRecursion(*program, "t");
    benchmark::DoNotOptimize(a.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnalyzeRecursion)->RangeMultiplier(4)->Range(2, 512);

}  // namespace

DIRE_BENCH_MAIN("detection");
