// CLM-ITER: §6, first application — "complex termination conditions can be
// replaced by iteration bounds". For a data independent definition the
// planner knows the exact number of bottom-up rounds, so evaluation can run
// a fixed count of naive rounds with no convergence test, instead of
// semi-naive bookkeeping plus a final empty round.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "base/rng.h"
#include "core/rewrite.h"
#include "eval/evaluator.h"
#include "parser/parser.h"
#include "storage/generators.h"

namespace {

constexpr const char* kBuys = R"(
  buys(X, Y) :- likes(X, Y).
  buys(X, Y) :- trendy(X), buys(Z, Y).
)";

void FillData(dire::storage::Database* db, int people) {
  dire::Rng rng(13);
  if (!dire::storage::MakeConsumerData(db, people, people / 5 + 1, 3, 0.1,
                                       &rng)
           .ok()) {
    std::abort();
  }
}

void BM_TerminationByFixpoint(benchmark::State& state) {
  dire::ast::Program program = dire::parser::ParseProgram(kBuys).value();
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    FillData(&db, static_cast<int>(state.range(0)));
    state.ResumeTiming();
    dire::eval::Evaluator ev(&db);
    if (!ev.Evaluate(program).ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    tuples = db.Find("buys")->size();
  }
  state.counters["buys_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_TerminationByFixpoint)->RangeMultiplier(4)->Range(500, 4000)
    ->Unit(benchmark::kMillisecond);

void BM_TerminationByIterationBound(benchmark::State& state) {
  dire::ast::Program program = dire::parser::ParseProgram(kBuys).value();
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(program, "buys").value();
  // Planned once: the recursion completes in exactly this many rounds, so
  // the evaluator runs them and stops — no convergence detection, no final
  // empty delta round.
  int rounds = dire::core::PlanIterationBound(def).value();
  dire::eval::EvalOptions opts;
  opts.max_iterations = rounds;
  opts.stop_on_fixpoint = false;
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    FillData(&db, static_cast<int>(state.range(0)));
    state.ResumeTiming();
    dire::eval::Evaluator ev(&db, opts);
    if (!ev.Evaluate(program).ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    tuples = db.Find("buys")->size();
  }
  state.counters["buys_tuples"] = static_cast<double>(tuples);
  state.counters["rounds"] = rounds;
}
BENCHMARK(BM_TerminationByIterationBound)
    ->RangeMultiplier(4)
    ->Range(500, 4000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DIRE_BENCH_MAIN("iteration_bound");
