// CLM-EXP: cost of Procedure ExpandRule (§2) and of the containment
// machinery behind Theorem 2.1 — the building blocks of the rewrite
// semi-decision.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "core/expansion.h"
#include "core/rewrite.h"
#include "cq/containment.h"
#include "parser/parser.h"

namespace {

dire::ast::RecursiveDefinition Def(const char* text, const char* target) {
  dire::ast::Program p = dire::parser::ParseProgram(text).value();
  return dire::ast::MakeDefinition(p, target).value();
}

constexpr const char* kTc = R"(
  t(X, Y) :- e(X, Z), t(Z, Y).
  t(X, Y) :- e(X, Y).
)";

constexpr const char* kExample43 = R"(
  t(X, Y, Z) :- p(X, Z), t(Y, M, N), q(M, N).
  t(X, Y, Z) :- e(X, Y, Z).
)";

void BM_ExpandRule_Tc(benchmark::State& state) {
  dire::ast::RecursiveDefinition def = Def(kTc, "t");
  int depth = static_cast<int>(state.range(0));
  size_t atoms = 0;
  for (auto _ : state) {
    dire::Result<std::vector<dire::core::ExpansionString>> strings =
        dire::core::ExpandToDepth(def, depth);
    if (!strings.ok()) {
      state.SkipWithError("expansion failed");
      return;
    }
    atoms = 0;
    for (const dire::core::ExpansionString& s : *strings) {
      atoms += s.query.body.size();
    }
    benchmark::DoNotOptimize(atoms);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(atoms));
}
BENCHMARK(BM_ExpandRule_Tc)->RangeMultiplier(2)->Range(8, 256);

void BM_ExpandRule_Example43(benchmark::State& state) {
  dire::ast::RecursiveDefinition def = Def(kExample43, "t");
  int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    dire::Result<std::vector<dire::core::ExpansionString>> strings =
        dire::core::ExpandToDepth(def, depth);
    benchmark::DoNotOptimize(strings.ok());
  }
}
BENCHMARK(BM_ExpandRule_Example43)->RangeMultiplier(2)->Range(8, 128);

// Containment-mapping search between expansion strings of growing length:
// the inner loop of Theorem 2.1.
void BM_ContainmentMapping_TcStrings(benchmark::State& state) {
  dire::ast::RecursiveDefinition def = Def(kTc, "t");
  int depth = static_cast<int>(state.range(0));
  std::vector<dire::core::ExpansionString> strings =
      dire::core::ExpandToDepth(def, depth + 1).value();
  const dire::cq::ConjunctiveQuery& shorter =
      strings[strings.size() - 2].query;
  const dire::cq::ConjunctiveQuery& longer = strings.back().query;
  for (auto _ : state) {
    bool maps = dire::cq::MapsTo(shorter, longer);
    if (maps) {
      state.SkipWithError("TC strings must not map forward");
      return;
    }
  }
  state.counters["string_atoms"] = static_cast<double>(longer.body.size());
}
BENCHMARK(BM_ContainmentMapping_TcStrings)->RangeMultiplier(2)->Range(4, 64);

// The full semi-decision on a bounded definition (Example 4.4 has five
// atoms per level and repeated predicates — the hard case for containment).
void BM_BoundedRewrite_Example44(benchmark::State& state) {
  dire::ast::RecursiveDefinition def = Def(R"(
    t(X, Y, Z) :- t(X, W, Z), e(W, Y), e(W, Z), e(Z, Z), e(Z, Y).
    t(X, Y, Z) :- t0(X, Y, Z).
  )", "t");
  for (auto _ : state) {
    dire::Result<dire::core::RewriteResult> r = dire::core::BoundedRewrite(def);
    if (!r.ok() ||
        r->outcome != dire::core::RewriteResult::Outcome::kBounded) {
      state.SkipWithError("expected bounded");
      return;
    }
  }
}
BENCHMARK(BM_BoundedRewrite_Example44)->Unit(benchmark::kMillisecond);

}  // namespace

DIRE_BENCH_MAIN("expansion");
