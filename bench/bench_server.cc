// Serving-path benchmarks: what a `dire serve` round trip costs once the
// admission controller, the per-request guard, the shared database lock,
// and the loopback socket are all in the path — and what the durable WAL
// commit adds on the write path. The admission micro-benchmark isolates
// the per-request bookkeeping every admitted request pays.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <unistd.h>

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"

#include "base/string_util.h"
#include "parser/parser.h"
#include "server/admission.h"
#include "server/server.h"

namespace {

constexpr const char* kTc = R"(
  t(X, Y) :- e(X, Z), t(Z, Y).
  t(X, Y) :- e(X, Y).
)";

// An in-process server on an ephemeral loopback port plus one connected
// client speaking the line protocol.
class ServerHarness {
 public:
  explicit ServerHarness(int chain_nodes) {
    char tmpl[] = "/tmp/dire_bench_server.XXXXXX";
    dir_ = ::mkdtemp(tmpl);
    dire::server::ServerConfig config;
    config.data_dir = dir_ + "/d";
    dire::ast::Program program = dire::parser::ParseProgram(kTc).value();
    server_ = std::move(dire::server::Server::Create(config, program, kTc))
                  .value();
    runner_ = std::thread([this] { (void)server_->Run(); });
    while (!server_->ready()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Connect();
    for (int i = 0; i + 1 < chain_nodes; ++i) {
      RoundTrip(dire::StrFormat("ADD e(n%d, n%d)", i, i + 1));
    }
  }

  ~ServerHarness() {
    if (fd_ >= 0) ::close(fd_);
    server_->Shutdown();
    runner_.join();
    std::filesystem::remove_all(dir_);
  }

  // One request, one status line back (body lines drained through END for
  // QUERY/STATS).
  std::string RoundTrip(const std::string& line) {
    std::string framed = line + "\n";
    if (::send(fd_, framed.data(), framed.size(), 0) < 0) return "";
    const bool multi =
        line.rfind("QUERY", 0) == 0 || line.rfind("STATS", 0) == 0;
    std::string status;
    while (true) {
      std::string got = ReadLine();
      if (status.empty()) status = got;
      if (!multi || got == "END" || got.empty()) return status;
    }
  }

 private:
  void Connect() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }

  std::string ReadLine() {
    size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return line;
  }

  std::string dir_;
  std::unique_ptr<dire::server::Server> server_;
  std::thread runner_;
  int fd_ = -1;
  std::string buffer_;
};

// Nearest-rank percentile over observed per-request latencies. Mean
// round-trip time hides tail stalls (a WAL fsync hiccup, a lock convoy);
// the percentiles land in BENCH_server.json next to the mean.
void ReportLatencyPercentiles(benchmark::State& state,
                              std::vector<int64_t>* latencies_us) {
  if (latencies_us->empty()) return;
  std::sort(latencies_us->begin(), latencies_us->end());
  auto percentile = [&](double q) {
    size_t n = latencies_us->size();
    size_t index = static_cast<size_t>(q * static_cast<double>(n));
    if (index >= n) index = n - 1;
    return static_cast<double>((*latencies_us)[index]);
  };
  state.counters["p50_us"] = percentile(0.50);
  state.counters["p95_us"] = percentile(0.95);
  state.counters["p99_us"] = percentile(0.99);
}

// Point query over the materialized fixpoint: admission + guard + shared
// lock + scan + socket, per request.
void BM_ServeQueryRoundTrip(benchmark::State& state) {
  ServerHarness harness(static_cast<int>(state.range(0)));
  size_t ok = 0;
  std::vector<int64_t> latencies_us;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    std::string status = harness.RoundTrip("QUERY t(n0, X)");
    latencies_us.push_back(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (status.rfind("OK", 0) == 0) ++ok;
  }
  state.counters["ok"] = static_cast<double>(ok);
  ReportLatencyPercentiles(state, &latencies_us);
}
BENCHMARK(BM_ServeQueryRoundTrip)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// Durable write path: WAL append + fsync per request. Re-adding a present
// fact keeps the database size constant across iterations (added=0 skips
// re-derivation but still commits durably), so this isolates the commit.
void BM_ServeDurableWriteRoundTrip(benchmark::State& state) {
  ServerHarness harness(/*chain_nodes=*/2);
  size_t ok = 0;
  std::vector<int64_t> latencies_us;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    std::string status = harness.RoundTrip("ADD e(n0, n1)");
    latencies_us.push_back(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (status.rfind("OK", 0) == 0) ++ok;
  }
  state.counters["ok"] = static_cast<double>(ok);
  ReportLatencyPercentiles(state, &latencies_us);
}
BENCHMARK(BM_ServeDurableWriteRoundTrip)->Unit(benchmark::kMicrosecond);

// The admission controller alone: the mutex + counter + gauge bookkeeping
// every admitted request pays, without any socket or evaluation.
void BM_AdmissionAdmitRelease(benchmark::State& state) {
  dire::server::AdmissionConfig config;
  config.max_inflight = 8;
  config.max_queue = 64;
  dire::server::AdmissionController admission(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(admission.Admit(0));
    admission.Release();
  }
}
BENCHMARK(BM_AdmissionAdmitRelease);

}  // namespace

DIRE_BENCH_MAIN("server");
