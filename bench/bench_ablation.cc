// ABL-PLAN: ablations of the evaluation substrate's design choices, the
// engineering decisions DESIGN.md calls out: greedy join reordering and
// semi-naive differentiation. These matter because the paper's analyses are
// only worth running if the underlying evaluator is a credible baseline.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "base/rng.h"
#include "eval/evaluator.h"
#include "parser/parser.h"
#include "storage/generators.h"

namespace {

// A rule whose written order is adversarial: big1 and big2 share no
// variable, so evaluating them in the written order enumerates their cross
// product before the selective anchor atom constrains anything. Greedy
// reordering runs anchor first and probes both big relations.
constexpr const char* kBadOrder = R"(
  r(Y) :- big1(X, W), big2(Y, Z), anchor(X, Y).
)";

void FillAblation(dire::storage::Database* db, int n, uint64_t seed) {
  dire::Rng rng(seed);
  if (!dire::storage::MakeRandomGraph(db, "big1", n, 4 * n, &rng).ok() ||
      !dire::storage::MakeRandomGraph(db, "big2", n, 4 * n, &rng).ok()) {
    std::abort();
  }
  if (!db->AddRow("anchor", {"n0", "n1"}).ok()) std::abort();
}

void RunReorder(benchmark::State& state, bool reorder) {
  dire::ast::Program program =
      dire::parser::ParseProgram(kBadOrder).value();
  dire::eval::EvalOptions opts;
  opts.reorder_atoms = reorder;
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    FillAblation(&db, static_cast<int>(state.range(0)), 5);
    state.ResumeTiming();
    dire::eval::Evaluator ev(&db, opts);
    if (!ev.Evaluate(program).ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    tuples = db.Find("r")->size();
  }
  state.counters["r_tuples"] = static_cast<double>(tuples);
}

void BM_JoinOrder_Greedy(benchmark::State& state) {
  RunReorder(state, /*reorder=*/true);
}
BENCHMARK(BM_JoinOrder_Greedy)->RangeMultiplier(2)->Range(64, 512)
    ->Unit(benchmark::kMillisecond);

void BM_JoinOrder_AsWritten(benchmark::State& state) {
  RunReorder(state, /*reorder=*/false);
}
BENCHMARK(BM_JoinOrder_AsWritten)->RangeMultiplier(2)->Range(64, 512)
    ->Unit(benchmark::kMillisecond);

// Semi-naive vs naive on transitive closure over random graphs (the delta
// optimization the paper's cited evaluation algorithms rely on).
constexpr const char* kTc = R"(
  t(X, Y) :- e(X, Z), t(Z, Y).
  t(X, Y) :- e(X, Y).
)";

void RunTc(benchmark::State& state, dire::eval::EvalOptions::Mode mode) {
  dire::ast::Program program = dire::parser::ParseProgram(kTc).value();
  dire::eval::EvalOptions opts;
  opts.mode = mode;
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    dire::Rng rng(9);
    int n = static_cast<int>(state.range(0));
    if (!dire::storage::MakeRandomGraph(&db, "e", n, 2 * n, &rng).ok()) {
      std::abort();
    }
    state.ResumeTiming();
    dire::eval::Evaluator ev(&db, opts);
    if (!ev.Evaluate(program).ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    tuples = db.Find("t")->size();
  }
  state.counters["t_tuples"] = static_cast<double>(tuples);
}

void BM_Fixpoint_SemiNaive(benchmark::State& state) {
  RunTc(state, dire::eval::EvalOptions::Mode::kSemiNaive);
}
BENCHMARK(BM_Fixpoint_SemiNaive)->RangeMultiplier(2)->Range(32, 256)
    ->Unit(benchmark::kMillisecond);

void BM_Fixpoint_Naive(benchmark::State& state) {
  RunTc(state, dire::eval::EvalOptions::Mode::kNaive);
}
BENCHMARK(BM_Fixpoint_Naive)->RangeMultiplier(2)->Range(32, 256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DIRE_BENCH_MAIN("ablation");
