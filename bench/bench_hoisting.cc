// EX-6.1 / CLM-HOIST: Theorem 6.1's loop-invariant motion. The b(W,Y)
// atom of Example 6.1 "need only be evaluated once per string"; hoisting it
// out of the recursion avoids re-joining b at every fixpoint round. The
// paper: "the avoided redundancy during evaluation should more than pay for
// the added complexity during planning."

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "base/rng.h"
#include "base/string_util.h"
#include "core/optimize.h"
#include "core/strings_eval.h"
#include "eval/evaluator.h"
#include "parser/parser.h"
#include "storage/generators.h"

namespace {

constexpr const char* kExample61 = R"(
  t(X, Y) :- e(X, Z), b(W, Y), t(Z, Y).
  t(X, Y) :- t0(X, Y).
)";

void FillData(dire::storage::Database* db, int n) {
  dire::Rng rng(7);
  if (!dire::storage::MakeHoistingData(db, n, 3 * n, n / 2 + 1, &rng).ok()) {
    std::abort();
  }
  // Seed t0 with a few tuples so the recursion has work to do.
  for (int i = 0; i < n / 10 + 1; ++i) {
    if (!db->AddRow("t0", {dire::StrFormat("n%d", i),
                           dire::StrFormat("n%d", (i * 7) % n)})
             .ok()) {
      std::abort();
    }
  }
}

void Run(benchmark::State& state, const dire::ast::Program& program) {
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    FillData(&db, static_cast<int>(state.range(0)));
    state.ResumeTiming();
    dire::eval::Evaluator ev(&db);
    if (!ev.Evaluate(program).ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    tuples = db.Find("t")->size();
  }
  state.counters["t_tuples"] = static_cast<double>(tuples);
}

void BM_Hoisting_Original(benchmark::State& state) {
  dire::ast::Program program = dire::parser::ParseProgram(kExample61).value();
  Run(state, program);
}
BENCHMARK(BM_Hoisting_Original)->RangeMultiplier(2)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_Hoisting_Optimized(benchmark::State& state) {
  dire::ast::Program program = dire::parser::ParseProgram(kExample61).value();
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(program, "t").value();
  dire::core::HoistResult hoisted =
      dire::core::HoistUnconnectedPredicates(def).value();
  if (!hoisted.changed) std::abort();
  Run(state, hoisted.program);
}
BENCHMARK(BM_Hoisting_Optimized)->RangeMultiplier(2)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

// Planning cost of the hoisting analysis + verification.
void BM_Hoisting_PlanningCost(benchmark::State& state) {
  dire::ast::Program program = dire::parser::ParseProgram(kExample61).value();
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(program, "t").value();
  for (auto _ : state) {
    dire::Result<dire::core::HoistResult> h =
        dire::core::HoistUnconnectedPredicates(def);
    benchmark::DoNotOptimize(h.ok());
  }
  state.SetLabel("includes random-database equivalence verification");
}
BENCHMARK(BM_Hoisting_PlanningCost)->Unit(benchmark::kMillisecond);

// The paper frames §6 against string-at-a-time evaluation ("the b
// predicates need only be evaluated once per string"): measure Theorem 6.1
// in that model by evaluating the expansion strings raw (k copies of b per
// string) vs minimized (one copy — exactly what hoisting promises).
void RunStringEval(benchmark::State& state, bool minimize) {
  dire::ast::Program program = dire::parser::ParseProgram(kExample61).value();
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(program, "t").value();
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    FillData(&db, static_cast<int>(state.range(0)));
    state.ResumeTiming();
    dire::core::StringEvalOptions opts;
    opts.minimize_strings = minimize;
    dire::Result<dire::core::StringEvalStats> stats =
        dire::core::EvaluateViaExpansion(def, &db, opts);
    if (!stats.ok() || !stats->converged) {
      state.SkipWithError("string evaluation did not converge");
      return;
    }
    tuples = db.Find("t")->size();
  }
  state.counters["t_tuples"] = static_cast<double>(tuples);
}

void BM_Hoisting_StringEval_Raw(benchmark::State& state) {
  RunStringEval(state, /*minimize=*/false);
}
BENCHMARK(BM_Hoisting_StringEval_Raw)->RangeMultiplier(2)->Range(32, 128)
    ->Unit(benchmark::kMillisecond);

void BM_Hoisting_StringEval_Minimized(benchmark::State& state) {
  RunStringEval(state, /*minimize=*/true);
}
BENCHMARK(BM_Hoisting_StringEval_Minimized)
    ->RangeMultiplier(2)
    ->Range(32, 128)
    ->Unit(benchmark::kMillisecond);

// The transform-based variant: hoist ONCE (planning), then string-evaluate
// the stripped auxiliary recursion (pure e-chain strings, no b copies) and
// finish with the two bridge rules.
void BM_Hoisting_StringEval_Hoisted(benchmark::State& state) {
  dire::ast::Program program = dire::parser::ParseProgram(kExample61).value();
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(program, "t").value();
  dire::core::HoistResult hoisted =
      dire::core::HoistUnconnectedPredicates(def).value();
  if (!hoisted.changed) std::abort();
  // Split the transformed program: the aux recursion (string-evaluated) and
  // the nonrecursive t rules (one pass at the end).
  dire::ast::Program aux_rules;
  std::vector<dire::ast::Rule> t_rules;
  for (const dire::ast::Rule& r : hoisted.program.rules) {
    if (r.head.predicate == hoisted.aux_predicate) {
      aux_rules.rules.push_back(r);
    } else {
      t_rules.push_back(r);
    }
  }
  dire::ast::RecursiveDefinition aux_def =
      dire::ast::MakeDefinition(aux_rules, hoisted.aux_predicate).value();

  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    FillData(&db, static_cast<int>(state.range(0)));
    state.ResumeTiming();
    dire::Result<dire::core::StringEvalStats> stats =
        dire::core::EvaluateViaExpansion(aux_def, &db, {});
    if (!stats.ok() || !stats->converged) {
      state.SkipWithError("string evaluation did not converge");
      return;
    }
    dire::eval::Evaluator finish(&db);
    if (!finish.EvaluateOnce(t_rules).ok()) {
      state.SkipWithError("bridge evaluation failed");
      return;
    }
    tuples = db.Find("t")->size();
  }
  state.counters["t_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_Hoisting_StringEval_Hoisted)
    ->RangeMultiplier(2)
    ->Range(32, 128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DIRE_BENCH_MAIN("hoisting");
