// Parallel evaluation scaling: the same semi-naive fixpoints at 1/2/4/8
// worker threads, over the workloads whose driving scans are large enough
// to chunk — transitive closure on dense random graphs, same-generation,
// and a wide multi-join — at several EDB sizes. Since the parallel result
// is byte-identical to the serial one, the only question this bench answers
// is wall-clock: how much of the read phase the worker pool recovers.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "base/rng.h"
#include "base/string_util.h"
#include "eval/evaluator.h"
#include "parser/parser.h"
#include "storage/generators.h"

namespace {

constexpr const char* kTc = R"(
  t(X, Y) :- e(X, Z), t(Z, Y).
  t(X, Y) :- e(X, Y).
)";

constexpr const char* kSameGeneration = R"(
  sg(X, Y) :- flat(X, Y).
  sg(X, Y) :- up(X, Z), sg(Z, W), down(W, Y).
)";

constexpr const char* kMultiJoin = R"(
  p3(X, Y) :- e(X, A), e(A, B), e(B, Y).
  r(X, Y) :- p3(X, Y).
  r(X, Y) :- p3(X, Z), r(Z, Y).
)";

// Benchmark axes: state.range(0) = EDB scale, state.range(1) = threads.
void RunScaling(benchmark::State& state, const char* program_text,
                void (*load)(dire::storage::Database*, int)) {
  dire::ast::Program program =
      dire::parser::ParseProgram(program_text).value();
  int scale = static_cast<int>(state.range(0));
  dire::eval::EvalOptions opts;
  opts.num_threads = static_cast<int>(state.range(1));
  size_t tuples = 0;
  size_t emitted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    load(&db, scale);
    state.ResumeTiming();
    dire::eval::Evaluator ev(&db, opts);
    dire::Result<dire::eval::EvalStats> stats = ev.Evaluate(program);
    if (!stats.ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    tuples = stats->tuples_derived;
    emitted = stats->tuples_emitted;
  }
  // emitted counts every rule-head candidate; inserted the ones that were
  // new; deduped the gap the hash-first existence check rejects. CI
  // asserts derived/inserted are identical across thread counts and
  // against the committed baseline (duplicate *work* may shift with
  // chunking, the derived set may not).
  state.counters["derived"] = static_cast<double>(tuples);
  state.counters["emitted"] = static_cast<double>(emitted);
  state.counters["inserted"] = static_cast<double>(tuples);
  state.counters["deduped"] = static_cast<double>(emitted - tuples);
  state.counters["threads"] = static_cast<double>(opts.num_threads);
}

void LoadTcEdb(dire::storage::Database* db, int n) {
  // Dense enough that the closure is large and every delta round carries a
  // chunkable frontier: m = 8n random edges over n nodes.
  dire::Rng rng(42);
  if (!dire::storage::MakeRandomGraph(db, "e", n, 8 * n, &rng).ok()) {
    std::abort();
  }
}

void LoadSgEdb(dire::storage::Database* db, int n) {
  dire::Rng rng(7);
  if (!dire::storage::MakeRandomGraph(db, "up", n, 4 * n, &rng).ok() ||
      !dire::storage::MakeRandomGraph(db, "down", n, 4 * n, &rng).ok() ||
      !dire::storage::MakeRandomGraph(db, "flat", n, 4 * n, &rng).ok()) {
    std::abort();
  }
}

void BM_Scaling_TransitiveClosure(benchmark::State& state) {
  RunScaling(state, kTc, LoadTcEdb);
}
BENCHMARK(BM_Scaling_TransitiveClosure)
    ->ArgsProduct({{100, 200, 400}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_Scaling_SameGeneration(benchmark::State& state) {
  RunScaling(state, kSameGeneration, LoadSgEdb);
}
BENCHMARK(BM_Scaling_SameGeneration)
    ->ArgsProduct({{100, 200}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_Scaling_MultiJoin(benchmark::State& state) {
  RunScaling(state, kMultiJoin, LoadTcEdb);
}
BENCHMARK(BM_Scaling_MultiJoin)
    ->ArgsProduct({{60, 120}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

// Skewed-cardinality workload where join order decides the cost: `big` has
// 16n edges, `tiny` a handful of sources, and the rule is written big-first
// so the greedy bound-count planner (which breaks the initial all-unbound
// tie by written order) scans big x big before filtering by tiny, while the
// cost planner drives from tiny. Byte-identical results either way; the
// _Greedy/_Cost run names label the planner mode in BENCH_scaling.json and
// CI asserts cost-mode median <= greedy-mode median over these runs.
constexpr const char* kSkewedReach = R"(
  out(X, Y) :- big(X, Z), big(Z, Y), tiny(X).
  r(X, Y) :- out(X, Y).
  r(X, Y) :- out(X, Z), r(Z, Y).
)";

void LoadSkewedEdb(dire::storage::Database* db, int n) {
  dire::Rng rng(19);
  if (!dire::storage::MakeRandomGraph(db, "big", n, 16 * n, &rng).ok()) {
    std::abort();
  }
  dire::Result<dire::storage::Relation*> tiny = db->GetOrCreate("tiny", 1);
  if (!tiny.ok()) std::abort();
  for (int i = 0; i < 4; ++i) {
    (*tiny)->Insert(
        {db->symbols().Intern(dire::StrFormat("n%d", i * (n / 4)))});
  }
}

void RunSkewed(benchmark::State& state, dire::eval::PlannerMode planner) {
  dire::ast::Program program =
      dire::parser::ParseProgram(kSkewedReach).value();
  int scale = static_cast<int>(state.range(0));
  dire::eval::EvalOptions opts;
  opts.planner = planner;
  size_t tuples = 0;
  dire::eval::EvalStats last;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    LoadSkewedEdb(&db, scale);
    state.ResumeTiming();
    dire::eval::Evaluator ev(&db, opts);
    dire::Result<dire::eval::EvalStats> stats = ev.Evaluate(program);
    if (!stats.ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    tuples = stats->tuples_derived;
    last = *stats;
  }
  state.counters["derived"] = static_cast<double>(tuples);
  state.counters["planner_cost"] =
      planner == dire::eval::PlannerMode::kCost ? 1 : 0;
  state.counters["replans"] = static_cast<double>(last.replans);
  state.counters["plan_cache_hits"] =
      static_cast<double>(last.plan_cache_hits);
}

void BM_Scaling_SkewedReach_Greedy(benchmark::State& state) {
  RunSkewed(state, dire::eval::PlannerMode::kGreedy);
}
BENCHMARK(BM_Scaling_SkewedReach_Greedy)
    ->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_Scaling_SkewedReach_Cost(benchmark::State& state) {
  RunSkewed(state, dire::eval::PlannerMode::kCost);
}
BENCHMARK(BM_Scaling_SkewedReach_Cost)
    ->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DIRE_BENCH_MAIN("scaling");
