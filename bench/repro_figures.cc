// repro_figures: regenerates every figure and worked example of the paper
// as text (and Graphviz DOT under ./figures/ when writable):
//
//   FIG-2       A/V graph of Example 2.1 (transitive closure)
//   FIG-4       A/V graph of Example 3.3, weight-1 path p^1 -> p^2
//   FIG-5/6     chain generating paths of Example 4.2 (1- and 2-segment)
//   FIG-7       Example 4.3 two-segment chain
//   FIG-8       Example 4.5, no chain generating path
//   FIG-9/10/11 Example 4.7's three exit rules (Theorem 4.3 inputs)
//   FIG-12..15  Example 5.1 multi-rule graph + chain
//   EX-2.1/3.3/4.7/6.1 expansion string prefixes, verbatim
//
// Every section prints the paper's claim and the library's computed result
// side by side; a FAIL line is printed (and the exit code set) on any
// mismatch, so this binary doubles as an executable experiment record.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dire.h"

namespace {

int failures = 0;

void Check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) ++failures;
}

dire::core::RecursionAnalysis Analyze(const std::string& rules,
                                      const std::string& target) {
  dire::ast::Program p = dire::parser::ParseProgram(rules).value();
  return dire::core::AnalyzeRecursion(p, target).value();
}

void DumpDot(const std::string& name, const dire::core::AvGraph& g) {
  std::error_code ec;
  std::filesystem::create_directories("figures", ec);
  if (ec) return;
  std::ofstream out("figures/" + name + ".dot");
  if (out) out << g.ToDot();
}

void Header(const char* id, const char* title) {
  std::printf("\n=== %s — %s ===\n", id, title);
}

void PrintExpansion(const std::string& rules, const std::string& target,
                    int levels) {
  dire::ast::Program p = dire::parser::ParseProgram(rules).value();
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(p, target).value();
  std::vector<dire::core::ExpansionString> strings =
      dire::core::ExpandToDepth(def, levels).value();
  for (const dire::core::ExpansionString& s : strings) {
    std::printf("    %s\n", s.ToString().c_str());
  }
}

constexpr const char* kTc = R"(
  t(X, Y) :- e(X, Z), t(Z, Y).
  t(X, Y) :- e(X, Y).
)";

void Figure2() {
  Header("FIG-2 / EX-2.1", "A/V graph and expansion of transitive closure");
  dire::core::RecursionAnalysis a = Analyze(kTc, "t");
  DumpDot("fig2_transitive_closure", a.graph);
  std::printf("  graph: %zu nodes, %zu edges\n", a.graph.nodes().size(),
              a.graph.edges().size());
  Check(a.graph.nodes().size() == 9, "9 nodes (X Y Z, e^1 e^2 t^1 t^2, e'^1 e'^2)");
  std::printf("  paper: first strings e(X,Z0)e'(Z0,Y), ...\n");
  PrintExpansion(kTc, "t", 4);
  Check(a.chains.has_chain_generating_path,
        "chain generating path exists (Example 4.1/4.2)");
  if (a.chains.witness.has_value()) {
    std::printf("  witness: %s\n",
                a.chains.witness->ToString(a.graph).c_str());
    Check(a.chains.witness->nodes.size() == 5,
          "paper's path visits e^1, e^2, Z, t^1, X (5 nodes)");
  }
  Check(a.strong.verdict == dire::core::Verdict::kDependent,
        "not strongly data independent (Theorem 4.2; Aho-Ullman)");
}

void Figure4() {
  Header("FIG-4 / EX-3.3", "weights: p^1 reaches p^2 with weight 1");
  constexpr const char* kRules = R"(
    t(X, Y, Z) :- t(W, W, X), p(Y, Z).
    t(X, Y, Z) :- e(X, Y, Z).
  )";
  dire::core::RecursionAnalysis a = Analyze(kRules, "t");
  DumpDot("fig4_example33", a.graph);
  PrintExpansion(kRules, "t", 4);
  dire::core::GraphView view =
      dire::core::GraphView::All(a.graph, /*augmented=*/false);
  int p1 = a.graph.ArgumentNode(0, 1, 0);
  int p2 = a.graph.ArgumentNode(0, 1, 1);
  dire::core::WalkWeights w = view.Weights(p1, p2);
  Check(w.connected && w.ContainsValue(1),
        "path of weight (-1) + 2 = 1 from p^1 to p^2 (Lemma 3.3)");
}

void Figures5and6() {
  Header("FIG-5/6 / EX-4.2", "one- and two-segment chain generating paths");
  dire::core::RecursionAnalysis one = Analyze(kTc, "t");
  Check(one.chains.has_chain_generating_path, "TC: single-segment chain");
  constexpr const char* kTwoSeg = R"(
    t(X, Y) :- p(X, W), q(W, Z), t(Z, Y).
    t(X, Y) :- e(X, Y).
  )";
  dire::core::RecursionAnalysis two = Analyze(kTwoSeg, "t");
  DumpDot("fig6_two_segment", two.graph);
  Check(two.chains.has_chain_generating_path, "p/q rule: chain exists");
  Check(two.chains.atoms_on_chains.size() == 2,
        "both p and q lie on the chain (paper's two segments)");
  if (two.chains.witness.has_value()) {
    std::printf("  witness: %s\n",
                two.chains.witness->ToString(two.graph).c_str());
  }
}

void Figure7() {
  Header("FIG-7 / EX-4.3", "two-segment chain with Fact 4.2's distinguished "
         "variable");
  constexpr const char* kRules = R"(
    t(X, Y, Z) :- p(X, Z), t(Y, M, N), q(M, N).
    t(X, Y, Z) :- e(X, Y, Z).
  )";
  dire::core::RecursionAnalysis a = Analyze(kRules, "t");
  DumpDot("fig7_example43", a.graph);
  Check(a.chains.has_chain_generating_path, "chain generating path exists");
  Check(a.strong.verdict == dire::core::Verdict::kDependent,
        "data dependent by Theorem 4.2");
  PrintExpansion(kRules, "t", 4);
}

void Figure8() {
  Header("FIG-8 / EX-4.5", "no chain generating path -> strongly independent");
  constexpr const char* kRules = R"(
    t(X, Y, Z) :- t(Y, X, W), e(X, W).
    t(X, Y, Z) :- t0(X, Y, Z).
  )";
  dire::core::RecursionAnalysis a = Analyze(kRules, "t");
  DumpDot("fig8_example45", a.graph);
  Check(!a.chains.has_chain_generating_path, "no chain generating path");
  Check(a.strong.verdict == dire::core::Verdict::kIndependent,
        "strongly data independent (Theorem 4.1)");
}

void Example44() {
  Header("EX-4.4", "incompleteness witness: independent rule with a chain");
  constexpr const char* kRules = R"(
    t(X, Y, Z) :- t(X, W, Z), e(W, Y), e(W, Z), e(Z, Z), e(Z, Y).
    t(X, Y, Z) :- t0(X, Y, Z).
  )";
  dire::core::RecursionAnalysis a = Analyze(kRules, "t");
  Check(a.chains.has_chain_generating_path, "chain generating path exists");
  Check(a.strong.verdict == dire::core::Verdict::kUnknown,
        "test correctly abstains (repeated nonrecursive predicates)");
  dire::ast::Program p = dire::parser::ParseProgram(kRules).value();
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(p, "t").value();
  dire::core::RewriteResult r = dire::core::BoundedRewrite(def).value();
  Check(r.outcome == dire::core::RewriteResult::Outcome::kBounded,
        "semi-decision confirms the rule is in fact bounded");
}

void Figures9to11() {
  Header("FIG-9/10/11 / EX-4.7", "Theorem 4.3 on the three exit rules");
  constexpr const char* kRec = "t(X, Y, U, W) :- t(X, M, M, Y), e(M, Y).";
  struct Case {
    const char* exit;
    const char* expect;
    bool connected;
    // -1: the paper makes no irredundance claim (Fig 9's verdict already
    // follows from non-connectedness).
    int irredundant;
    dire::core::Verdict verdict;
  };
  const Case cases[] = {
      {"t(X, Y, U, W) :- e(X, X).", "not connected (Fig 9)", false, -1,
       dire::core::Verdict::kIndependent},
      {"t(X, Y, U, W) :- e(U, W).", "connected but redundant (Fig 10)", true,
       0, dire::core::Verdict::kIndependent},
      {"t(X, Y, U, W) :- e(U, U).", "connected and irredundant (Fig 11)",
       true, 1, dire::core::Verdict::kDependent},
  };
  int fig = 9;
  for (const Case& c : cases) {
    std::string rules = std::string(kRec) + "\n" + c.exit;
    dire::core::RecursionAnalysis a = Analyze(rules, "t");
    DumpDot(dire::StrFormat("fig%d_example47", fig++), a.graph);
    std::printf("  exit %s -> connected=%s irredundant=%s verdict=%s\n",
                c.exit, a.weak->exit_connected ? "yes" : "no",
                a.weak->exit_irredundant ? "yes" : "no",
                dire::core::VerdictName(a.weak->verdict));
    bool irredundance_ok =
        c.irredundant < 0 ||
        a.weak->exit_irredundant == (c.irredundant == 1);
    Check(a.weak->exit_connected == c.connected && irredundance_ok &&
              a.weak->verdict == c.verdict,
          c.expect);
    if (c.verdict == dire::core::Verdict::kDependent) {
      std::printf("  paper's expansion prefix for this pair:\n");
      PrintExpansion(rules, "t", 4);
    }
  }
}

void Figures12to15() {
  Header("FIG-12..15 / EX-5.1/5.2", "multiple rules: consistency and the "
         "combined chain");
  constexpr const char* kPair = R"(
    t(X, Y, Z) :- t(X, U, Z), p1(U, Z).
    t(X, Y, Z) :- t(X, Y, V), p2(V, Y).
    t(X, Y, Z) :- e(X, Y).
  )";
  dire::core::RecursionAnalysis pair = Analyze(kPair, "t");
  DumpDot("fig12_example51", pair.graph);
  for (const char* solo : {R"(
    t(X, Y, Z) :- t(X, U, Z), p1(U, Z).
    t(X, Y, Z) :- e(X, Y).
  )", R"(
    t(X, Y, Z) :- t(X, Y, V), p2(V, Y).
    t(X, Y, Z) :- e(X, Y).
  )"}) {
    dire::core::RecursionAnalysis a = Analyze(solo, "t");
    Check(a.strong.verdict == dire::core::Verdict::kIndependent,
          "each rule alone is strongly data independent");
  }
  Check(pair.chains.has_chain_generating_path,
        "the pair has a chain generating path (Fig 15)");
  if (pair.chains.witness.has_value()) {
    std::printf("  witness: %s\n",
                pair.chains.witness->ToString(pair.graph).c_str());
    Check(std::abs(pair.chains.witness->weight) == 2,
          "the chain alternates the two rules (period 2, Fig 13's r1,r2,r1)");
  }
  std::printf("  rule/goal tree (Fig 13), first three levels:\n");
  {
    dire::ast::Program tree_p = dire::parser::ParseProgram(kPair).value();
    dire::ast::RecursiveDefinition tree_def =
        dire::ast::MakeDefinition(tree_p, "t").value();
    std::string tree = dire::core::RenderRuleGoalTree(tree_def, 3).value();
    for (const std::string& line : dire::Split(tree, '\n')) {
      if (!line.empty()) std::printf("    %s\n", line.c_str());
    }
  }
  std::printf("  string for sequence r1,r2,r1 closed by the exit rule:\n");
  dire::ast::Program p = dire::parser::ParseProgram(kPair).value();
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(p, "t").value();
  std::vector<dire::core::ExpansionString> strings =
      dire::core::ExpandToDepth(def, 4).value();
  for (const dire::core::ExpansionString& s : strings) {
    if (s.rule_sequence == std::vector<int>{0, 1, 0}) {
      std::printf("    %s\n", s.ToString().c_str());
      Check(s.ToString() == "e(X,U_2)p1(U_2,V_1)p2(V_1,U_0)p1(U_0,Z)",
            "matches the paper's e(X,U2)p1(U2,V1)p2(V1,U0)p1(U0,Z)");
    }
  }
}

void Example61() {
  Header("EX-6.1", "loop-invariant predicates (Theorem 6.1)");
  constexpr const char* kRules = R"(
    t(X, Y) :- e(X, Z), b(W, Y), t(Z, Y).
    t(X, Y) :- t0(X, Y).
  )";
  std::printf("  paper's first strings:\n");
  PrintExpansion(kRules, "t", 4);
  dire::core::RecursionAnalysis a = Analyze(kRules, "t");
  Check(a.chains.chain_connected_atoms.count({0, 0}) == 1,
        "e(X,Z) is connected to the unbounded chain");
  Check(a.chains.chain_connected_atoms.count({0, 1}) == 0,
        "b(W,Y) is NOT connected: evaluated once per string");
  dire::ast::Program p = dire::parser::ParseProgram(kRules).value();
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(p, "t").value();
  dire::core::HoistResult h =
      dire::core::HoistUnconnectedPredicates(def).value();
  Check(h.changed && h.hoisted.size() == 1 && h.hoisted[0].predicate == "b",
        "hoisting moves b out of the recursion (verified equivalent)");
  std::printf("  transformed program:\n");
  for (const dire::ast::Rule& r : h.program.rules) {
    std::printf("    %s\n", r.ToString().c_str());
  }
}

void Example12() {
  Header("EX-1.2", "the buys rules and their nonrecursive replacement");
  constexpr const char* kRules = R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), buys(Z, Y).
  )";
  dire::core::RecursionAnalysis a = Analyze(kRules, "buys");
  Check(a.strong.verdict == dire::core::Verdict::kIndependent,
        "data independent (Theorem 4.1)");
  dire::ast::Program p = dire::parser::ParseProgram(kRules).value();
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(p, "buys").value();
  dire::core::RewriteResult r = dire::core::BoundedRewrite(def).value();
  std::printf("  rewrite:\n");
  for (const dire::ast::Rule& rule : r.rewritten.rules) {
    std::printf("    %s\n", rule.ToString().c_str());
  }
  Check(r.rewritten.rules.size() == 2 &&
            r.rewritten.rules[1].ToString() ==
                "buys(X,Y) :- trendy(X), likes(Z_0,Y).",
        "matches the paper's two-rule replacement");
}

}  // namespace

int main() {
  std::printf("Reproduction of the figures and examples of:\n"
              "  J. Naughton, \"Data Independent Recursion in Deductive "
              "Databases\", PODS 1986\n");
  Example12();
  Figure2();
  Figure4();
  Figures5and6();
  Figure7();
  Figure8();
  Example44();
  Figures9to11();
  Figures12to15();
  Example61();
  std::printf("\n%s (%d failure(s))\n",
              failures == 0 ? "ALL FIGURES REPRODUCED" : "MISMATCHES FOUND",
              failures);
  return failures == 0 ? 0 : 1;
}
