// EX-1.2 / CLM-REWRITE: evaluating the paper's Example 1.2 ("buys") as a
// recursive definition (semi-naive fixpoint) versus as the nonrecursive
// rewrite produced by Theorem 2.1 (one pass over two conjunctive queries).
// The paper's claim: a data independent recursion "can be replaced by the
// equivalent set of conjunctive relational queries, and can be optimized by
// standard techniques" (§6). Expectation: the rewrite wins, and the gap
// grows with database size.

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "base/rng.h"
#include "core/rewrite.h"
#include "eval/evaluator.h"
#include "parser/parser.h"
#include "storage/generators.h"

namespace {

constexpr const char* kBuys = R"(
  buys(X, Y) :- likes(X, Y).
  buys(X, Y) :- trendy(X), buys(Z, Y).
)";

dire::ast::Program BuysProgram() {
  return dire::parser::ParseProgram(kBuys).value();
}

void FillData(dire::storage::Database* db, int people) {
  dire::Rng rng(42);
  int products = people / 5 + 1;
  if (!dire::storage::MakeConsumerData(db, people, products, 3, 0.1, &rng)
           .ok()) {
    std::abort();
  }
}

void BM_Buys_RecursiveFixpoint(benchmark::State& state) {
  dire::ast::Program program = BuysProgram();
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    FillData(&db, static_cast<int>(state.range(0)));
    state.ResumeTiming();
    dire::eval::Evaluator ev(&db);
    if (!ev.Evaluate(program).ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    tuples = db.Find("buys")->size();
  }
  state.counters["buys_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_Buys_RecursiveFixpoint)->RangeMultiplier(4)->Range(500, 4000)
    ->Unit(benchmark::kMillisecond);

void BM_Buys_BoundedRewrite(benchmark::State& state) {
  dire::ast::Program program = BuysProgram();
  // The rewrite is computed once, independent of the data.
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(program, "buys").value();
  dire::core::RewriteResult rewrite =
      dire::core::BoundedRewrite(def).value();
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    dire::storage::Database db;
    FillData(&db, static_cast<int>(state.range(0)));
    state.ResumeTiming();
    dire::eval::Evaluator ev(&db);
    if (!ev.EvaluateOnce(rewrite.rewritten.rules).ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    tuples = db.Find("buys")->size();
  }
  state.counters["buys_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_Buys_BoundedRewrite)->RangeMultiplier(4)->Range(500, 4000)
    ->Unit(benchmark::kMillisecond);

// Analysis + rewrite cost itself: the "added complexity during planning"
// that §6 argues is paid back at evaluation time.
void BM_Buys_PlanningCost(benchmark::State& state) {
  dire::ast::Program program = BuysProgram();
  dire::ast::RecursiveDefinition def =
      dire::ast::MakeDefinition(program, "buys").value();
  for (auto _ : state) {
    dire::Result<dire::core::RewriteResult> r = dire::core::BoundedRewrite(def);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_Buys_PlanningCost);

}  // namespace

DIRE_BENCH_MAIN("bounded_vs_recursive");
