#ifndef DIRE_PARSER_LEXER_H_
#define DIRE_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace dire::parser {

enum class TokenKind {
  kVariable,    // Leading upper-case or '_': X, Z1, _tmp
  kConstant,    // Leading lower-case identifier: alice, e2
  kNumber,      // 42, -7
  kString,      // "free text" (stored without quotes)
  kLParen,      // (
  kRParen,      // )
  kComma,       // ,
  kPeriod,      // .
  kImplies,     // :-
  kQuery,       // ?-
  kEof,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind;
  std::string text;  // Spelling (for identifiers/numbers/strings).
  int line = 1;      // 1-based position of the first character.
  int column = 1;
};

// Tokenizes Datalog text. Comments run from '%' or '#' to end of line.
// Fails on unrecognized characters or unterminated strings, reporting
// line:column.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace dire::parser

#endif  // DIRE_PARSER_LEXER_H_
