#include "parser/lexer.h"

#include <cctype>

#include "base/string_util.h"

namespace dire::parser {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kVariable:
      return "variable";
    case TokenKind::kConstant:
      return "constant";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kPeriod:
      return "'.'";
    case TokenKind::kImplies:
      return "':-'";
    case TokenKind::kQuery:
      return "'?-'";
    case TokenKind::kEof:
      return "end of input";
  }
  return "unknown";
}

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAhead() const {
    return pos_ + 1 < input_.size() ? input_[pos_ + 1] : '\0';
  }

  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  Cursor cur(input);

  while (!cur.AtEnd()) {
    char c = cur.Peek();
    int line = cur.line();
    int column = cur.column();

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      cur.Advance();
      continue;
    }
    if (c == '%' || c == '#') {
      while (!cur.AtEnd() && cur.Peek() != '\n') cur.Advance();
      continue;
    }

    auto push = [&](TokenKind kind, std::string text) {
      tokens.push_back(Token{kind, std::move(text), line, column});
    };

    if (c == '(') {
      cur.Advance();
      push(TokenKind::kLParen, "(");
    } else if (c == ')') {
      cur.Advance();
      push(TokenKind::kRParen, ")");
    } else if (c == ',') {
      cur.Advance();
      push(TokenKind::kComma, ",");
    } else if (c == '.') {
      cur.Advance();
      push(TokenKind::kPeriod, ".");
    } else if (c == ':' && cur.PeekAhead() == '-') {
      cur.Advance();
      cur.Advance();
      push(TokenKind::kImplies, ":-");
    } else if (c == '?' && cur.PeekAhead() == '-') {
      cur.Advance();
      cur.Advance();
      push(TokenKind::kQuery, "?-");
    } else if (c == '"') {
      cur.Advance();
      std::string text;
      bool closed = false;
      while (!cur.AtEnd()) {
        char d = cur.Advance();
        if (d == '"') {
          closed = true;
          break;
        }
        if (d == '\n') break;  // Strings may not span lines.
        text += d;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("%d:%d: unterminated string literal", line, column));
      }
      push(TokenKind::kString, std::move(text));
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && std::isdigit(
                                static_cast<unsigned char>(cur.PeekAhead())))) {
      std::string text;
      text += cur.Advance();
      while (!cur.AtEnd() &&
             std::isdigit(static_cast<unsigned char>(cur.Peek()))) {
        text += cur.Advance();
      }
      push(TokenKind::kNumber, std::move(text));
    } else if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (!cur.AtEnd() && IsIdentBody(cur.Peek())) text += cur.Advance();
      push(TokenKind::kVariable, std::move(text));
    } else if (std::islower(static_cast<unsigned char>(c))) {
      std::string text;
      while (!cur.AtEnd() && IsIdentBody(cur.Peek())) text += cur.Advance();
      push(TokenKind::kConstant, std::move(text));
    } else {
      return Status::ParseError(
          StrFormat("%d:%d: unexpected character '%c'", line, column, c));
    }
  }

  tokens.push_back(Token{TokenKind::kEof, "", cur.line(), cur.column()});
  return tokens;
}

}  // namespace dire::parser
