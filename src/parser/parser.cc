#include "parser/parser.h"

#include <algorithm>
#include <map>

#include "base/obs.h"
#include "base/string_util.h"
#include "parser/lexer.h"

namespace dire::parser {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ast::Program> Program() {
    ast::Program program;
    while (!Check(TokenKind::kEof)) {
      DIRE_ASSIGN_OR_RETURN(ast::Rule rule, RuleClause());
      DIRE_RETURN_IF_ERROR(CheckArities(rule));
      program.rules.push_back(std::move(rule));
    }
    return program;
  }

  Result<ast::Rule> SingleRule() {
    DIRE_ASSIGN_OR_RETURN(ast::Rule rule, RuleClause());
    DIRE_RETURN_IF_ERROR(Expect(TokenKind::kEof));
    return rule;
  }

  Result<ast::Atom> SingleAtom() {
    DIRE_ASSIGN_OR_RETURN(ast::Atom atom, AtomClause());
    DIRE_RETURN_IF_ERROR(Expect(TokenKind::kEof));
    return atom;
  }

 private:
  Result<ast::Rule> RuleClause() {
    DIRE_ASSIGN_OR_RETURN(ast::Atom head, AtomClause());
    ast::Rule rule;
    rule.head = std::move(head);
    if (Check(TokenKind::kImplies)) {
      Advance();
      while (true) {
        // `not p(...)`: negation-as-failure literal (stratified programs).
        // `not` followed by '(' is the predicate named "not" instead.
        bool negated = false;
        if (Check(TokenKind::kConstant) && Peek().text == "not" &&
            PeekNext().kind == TokenKind::kConstant) {
          Advance();
          negated = true;
        }
        DIRE_ASSIGN_OR_RETURN(ast::Atom atom, AtomClause());
        atom.negated = negated;
        rule.body.push_back(std::move(atom));
        if (!Check(TokenKind::kComma)) break;
        Advance();
      }
    }
    DIRE_RETURN_IF_ERROR(Expect(TokenKind::kPeriod));
    return rule;
  }

  Result<ast::Atom> AtomClause() {
    const Token& name = Peek();
    if (name.kind != TokenKind::kConstant) {
      return Error(name, "predicate name (lower-case identifier)");
    }
    Advance();
    ast::Atom atom;
    atom.predicate = name.text;
    if (!Check(TokenKind::kLParen)) return atom;  // 0-ary predicate.
    Advance();
    if (Check(TokenKind::kRParen)) {
      Advance();
      return atom;
    }
    while (true) {
      DIRE_ASSIGN_OR_RETURN(ast::Term term, TermClause());
      atom.args.push_back(std::move(term));
      if (Check(TokenKind::kComma)) {
        Advance();
        continue;
      }
      DIRE_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return atom;
    }
  }

  Result<ast::Term> TermClause() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kVariable:
        Advance();
        return ast::Term::Var(tok.text);
      case TokenKind::kConstant:
      case TokenKind::kNumber:
      case TokenKind::kString:
        Advance();
        return ast::Term::Const(tok.text);
      default:
        return Error(tok, "term (variable or constant)");
    }
  }

  Status CheckArities(const ast::Rule& rule) {
    DIRE_RETURN_IF_ERROR(CheckArity(rule.head));
    for (const ast::Atom& a : rule.body) DIRE_RETURN_IF_ERROR(CheckArity(a));
    return Status::Ok();
  }

  Status CheckArity(const ast::Atom& atom) {
    auto [it, inserted] = arity_.emplace(atom.predicate, atom.arity());
    if (!inserted && it->second != atom.arity()) {
      return Status::ParseError(
          StrFormat("predicate '%s' used with arity %zu after arity %zu",
                    atom.predicate.c_str(), atom.arity(), it->second));
    }
    return Status::Ok();
  }

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekNext() const {
    return tokens_[std::min(pos_ + 1, tokens_.size() - 1)];
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Expect(TokenKind kind) {
    if (!Check(kind)) {
      return Error(Peek(), TokenKindName(kind));
    }
    Advance();
    return Status::Ok();
  }

  Status Error(const Token& got, const std::string& wanted) const {
    return Status::ParseError(StrFormat(
        "%d:%d: expected %s but found %s%s%s", got.line, got.column,
        wanted.c_str(), TokenKindName(got.kind), got.text.empty() ? "" : " ",
        got.text.c_str()));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::map<std::string, size_t> arity_;
};

}  // namespace

Result<ast::Program> ParseProgram(std::string_view text) {
  obs::Span span("parser.program", "parse");
  span.Attr("bytes", text.size());
  obs::GetCounter("dire_parser_programs_total", "Programs parsed")->Add(1);
  DIRE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  Result<ast::Program> program = parser.Program();
  if (program.ok()) span.Attr("rules", program.value().rules.size());
  return program;
}

Result<ast::Rule> ParseRule(std::string_view text) {
  DIRE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.SingleRule();
}

Result<ast::Atom> ParseAtom(std::string_view text) {
  DIRE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.SingleAtom();
}

}  // namespace dire::parser
