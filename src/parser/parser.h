#ifndef DIRE_PARSER_PARSER_H_
#define DIRE_PARSER_PARSER_H_

#include <string_view>

#include "ast/ast.h"
#include "base/result.h"

namespace dire::parser {

// Parses a Datalog program:
//
//   % transitive closure (paper Example 2.1)
//   t(X, Y) :- e(X, Z), t(Z, Y).
//   t(X, Y) :- e(X, Y).
//   e(a, b).
//
// Variables start upper-case or '_', constants lower-case (numbers and
// "quoted strings" are also constants). Enforces one arity per predicate
// name. Errors carry line:column positions.
Result<ast::Program> ParseProgram(std::string_view text);

// Parses a single rule or fact (must consume all input up to one final '.').
Result<ast::Rule> ParseRule(std::string_view text);

// Parses a single atom, e.g. "t(X, Y)".
Result<ast::Atom> ParseAtom(std::string_view text);

}  // namespace dire::parser

#endif  // DIRE_PARSER_PARSER_H_
