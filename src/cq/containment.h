#ifndef DIRE_CQ_CONTAINMENT_H_
#define DIRE_CQ_CONTAINMENT_H_

#include <optional>
#include <vector>

#include "ast/substitution.h"
#include "cq/conjunctive_query.h"

namespace dire::cq {

// Searches for a containment mapping (paper Def 2.3) from `from` to `to`:
// a variable mapping fixing distinguished variables (and constants) such
// that every atom of `from`, after mapping, appears in `to`. Backtracking
// homomorphism search; worst-case exponential (the problem is NP-complete,
// Chandra–Merlin), fast on expansion-shaped queries.
//
// Requires from.head == to.head (the paper standardizes heads; callers built
// both queries from the same standardized definition).
std::optional<ast::Substitution> FindContainmentMapping(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to);

// Lemma 2.1 orientation helper: MapsTo(s1, s2) means a containment mapping
// s1 -> s2 exists, hence rel(s2) is contained in rel(s1) for every EDB.
bool MapsTo(const ConjunctiveQuery& s1, const ConjunctiveQuery& s2);

// rel(q2) subset-of rel(q1) on every database (Chandra–Merlin: iff q1 maps
// to q2).
bool Contains(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

bool Equivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

// True if rel(q) is contained in the union of the rels of `ucq` on every
// database. For unions of CQs this is the Sagiv–Yannakakis criterion the
// paper cites in Theorem 2.1's proof: q is contained in the union iff some
// member alone contains q.
bool UnionContains(const std::vector<ConjunctiveQuery>& ucq,
                   const ConjunctiveQuery& q);

// Computes the core of `q`: a minimal equivalent subquery, found by
// repeatedly folding removable atoms (Chandra–Merlin minimization).
ConjunctiveQuery Minimize(const ConjunctiveQuery& q);

}  // namespace dire::cq

#endif  // DIRE_CQ_CONTAINMENT_H_
