#include "cq/conjunctive_query.h"

#include <map>
#include <set>

#include "base/string_util.h"

namespace dire::cq {

std::vector<std::string> ConjunctiveQuery::DistinguishedVariables() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const ast::Term& t : head) {
    if (t.IsVariable() && seen.insert(t.text()).second) {
      out.push_back(t.text());
    }
  }
  return out;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out;
  for (const ast::Atom& a : body) out += a.ToString();
  return out;
}

ConjunctiveQuery Canonicalize(const ConjunctiveQuery& q) {
  std::set<std::string> distinguished;
  for (const ast::Term& t : q.head) {
    if (t.IsVariable()) distinguished.insert(t.text());
  }
  std::map<std::string, std::string> rename;
  int counter = 0;
  ConjunctiveQuery out;
  out.head = q.head;
  out.body.reserve(q.body.size());
  for (const ast::Atom& a : q.body) {
    ast::Atom b;
    b.predicate = a.predicate;
    b.args.reserve(a.args.size());
    for (const ast::Term& t : a.args) {
      if (!t.IsVariable() || distinguished.count(t.text()) != 0) {
        b.args.push_back(t);
        continue;
      }
      auto [it, inserted] =
          rename.emplace(t.text(), StrFormat("W%d", counter));
      if (inserted) ++counter;
      b.args.push_back(ast::Term::Var(it->second));
    }
    out.body.push_back(std::move(b));
  }
  return out;
}

bool Isomorphic(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  if (a.head != b.head || a.body.size() != b.body.size()) return false;
  return Canonicalize(a) == Canonicalize(b);
}

}  // namespace dire::cq
