#ifndef DIRE_CQ_CONJUNCTIVE_QUERY_H_
#define DIRE_CQ_CONJUNCTIVE_QUERY_H_

#include <string>
#include <vector>

#include "ast/ast.h"

namespace dire::cq {

// A conjunctive query: the "strings" of the paper's Section 2. `head` holds
// the distinguished terms in output order; `body` is the ordered conjunction
// of EDB atoms. The relation specified by the query is
//   { head | exists(nondistinguished vars) body }   (paper, Section 2).
struct ConjunctiveQuery {
  std::vector<ast::Term> head;
  std::vector<ast::Atom> body;

  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::vector<ast::Term> h, std::vector<ast::Atom> b)
      : head(std::move(h)), body(std::move(b)) {}

  // Builds the CQ for a nonrecursive rule: head terms from the rule head,
  // body from the rule body.
  static ConjunctiveQuery FromRule(const ast::Rule& rule) {
    return ConjunctiveQuery(rule.head.args, rule.body);
  }

  // Renders as a rule with the given head predicate:
  // "t(X,Y) :- e(X,Z), e(Z,Y)."
  ast::Rule ToRule(const std::string& head_predicate) const {
    return ast::Rule(ast::Atom(head_predicate, head), body);
  }

  // Distinguished variable names (variables of `head`).
  std::vector<std::string> DistinguishedVariables() const;

  // Paper-style string rendering: "e(X,Z_0)e(Z_0,Y)".
  std::string ToString() const;

  friend bool operator==(const ConjunctiveQuery& a,
                         const ConjunctiveQuery& b) {
    return a.head == b.head && a.body == b.body;
  }
};

// Renames nondistinguished variables to W0, W1, ... in first-occurrence
// order. Two queries are isomorphic (paper Def 2.4: identical up to renaming
// of nondistinguished variables) iff their canonical forms are equal.
ConjunctiveQuery Canonicalize(const ConjunctiveQuery& q);

// Def 2.4 isomorphism test.
bool Isomorphic(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

}  // namespace dire::cq

#endif  // DIRE_CQ_CONJUNCTIVE_QUERY_H_
