#include "cq/containment.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace dire::cq {
namespace {

// Backtracking homomorphism search with static candidate filtering and a
// work budget. Containment of conjunctive queries is NP-complete
// (Chandra–Merlin); the filters keep expansion-shaped queries polynomial in
// practice, and the budget turns the rare adversarial case into a
// conservative "no mapping found" answer (callers treat that as "not
// contained", which only ever costs precision, never soundness).
class MappingSearch {
 public:
  MappingSearch(const ConjunctiveQuery& from, const ConjunctiveQuery& to,
                size_t budget)
      : from_(from), to_(to), budget_(budget) {
    // Distinguished variables map to themselves (Def 2.3).
    for (const ast::Term& t : from_.head) {
      if (t.IsVariable()) {
        rigid_.insert(t.text());
        binding_[t.text()] = t;
      }
    }
    BuildCandidates();
    // Most-constrained-first: atoms with the fewest candidates early.
    order_.resize(from_.body.size());
    for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    std::stable_sort(order_.begin(), order_.end(), [this](size_t a, size_t b) {
      return candidates_[a].size() < candidates_[b].size();
    });
  }

  std::optional<ast::Substitution> Run() {
    if (from_.head != to_.head) return std::nullopt;
    for (const std::vector<size_t>& c : candidates_) {
      if (c.empty()) return std::nullopt;
    }
    if (!Extend(0)) return std::nullopt;
    ast::Substitution s;
    for (const auto& [var, term] : binding_) s.Bind(var, term);
    return s;
  }

 private:
  // A from-position is rigid when its image is known up front: a constant,
  // or a distinguished variable (which must map to itself).
  bool IsRigid(const ast::Term& t) const {
    return t.IsConstant() || rigid_.count(t.text()) != 0;
  }

  // Static compatibility of `target` as an image of `atom`: predicate,
  // arity, rigid positions, and equality patterns of repeated variables.
  bool Compatible(const ast::Atom& atom, const ast::Atom& target) const {
    if (atom.predicate != target.predicate || atom.arity() != target.arity()) {
      return false;
    }
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const ast::Term& src = atom.args[i];
      const ast::Term& dst = target.args[i];
      if (IsRigid(src) && src != dst) return false;
      if (dst.IsConstant() && src.IsConstant() && src != dst) return false;
      // Repeated variable within the atom: images must agree.
      if (src.IsVariable()) {
        for (size_t j = i + 1; j < atom.args.size(); ++j) {
          if (atom.args[j] == src && target.args[j] != dst) return false;
        }
      }
    }
    return true;
  }

  void BuildCandidates() {
    candidates_.resize(from_.body.size());
    for (size_t i = 0; i < from_.body.size(); ++i) {
      for (size_t j = 0; j < to_.body.size(); ++j) {
        if (Compatible(from_.body[i], to_.body[j])) {
          candidates_[i].push_back(j);
        }
      }
    }
  }

  bool Extend(size_t depth) {
    if (depth == order_.size()) return true;
    const size_t atom_index = order_[depth];
    const ast::Atom& atom = from_.body[atom_index];
    for (size_t target_index : candidates_[atom_index]) {
      if (work_++ > budget_) return false;  // Conservative give-up.
      const ast::Atom& target = to_.body[target_index];
      std::vector<std::string> trail;
      if (TryMatch(atom, target, &trail)) {
        if (Extend(depth + 1)) return true;
      }
      for (const std::string& var : trail) binding_.erase(var);
    }
    return false;
  }

  // Extends binding_ so that binding_(atom) == target; records newly bound
  // variables in `trail` for rollback.
  bool TryMatch(const ast::Atom& atom, const ast::Atom& target,
                std::vector<std::string>* trail) {
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const ast::Term& src = atom.args[i];
      const ast::Term& dst = target.args[i];
      if (src.IsConstant()) {
        if (src != dst) return false;
        continue;
      }
      auto it = binding_.find(src.text());
      if (it != binding_.end()) {
        if (it->second != dst) return false;
        continue;
      }
      binding_.emplace(src.text(), dst);
      trail->push_back(src.text());
    }
    return true;
  }

  const ConjunctiveQuery& from_;
  const ConjunctiveQuery& to_;
  size_t budget_;
  size_t work_ = 0;
  std::set<std::string> rigid_;
  std::vector<std::vector<size_t>> candidates_;
  std::map<std::string, ast::Term> binding_;
  std::vector<size_t> order_;
};

// Generous default: far beyond anything the expansion strings of realistic
// rules need, small enough to bound adversarial inputs to well under a
// second.
constexpr size_t kDefaultBudget = 2'000'000;

}  // namespace

std::optional<ast::Substitution> FindContainmentMapping(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to) {
  return MappingSearch(from, to, kDefaultBudget).Run();
}

bool MapsTo(const ConjunctiveQuery& s1, const ConjunctiveQuery& s2) {
  return FindContainmentMapping(s1, s2).has_value();
}

bool Contains(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return MapsTo(q1, q2);
}

bool Equivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return MapsTo(a, b) && MapsTo(b, a);
}

bool UnionContains(const std::vector<ConjunctiveQuery>& ucq,
                   const ConjunctiveQuery& q) {
  for (const ConjunctiveQuery& member : ucq) {
    if (MapsTo(member, q)) return true;
  }
  return false;
}

ConjunctiveQuery Minimize(const ConjunctiveQuery& q) {
  ConjunctiveQuery current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t k = 0; k < current.body.size(); ++k) {
      ConjunctiveQuery candidate = current;
      candidate.body.erase(candidate.body.begin() + static_cast<long>(k));
      // Safety: every distinguished variable must still occur in the body.
      std::set<std::string> body_vars;
      for (const ast::Atom& a : candidate.body) {
        for (const ast::Term& t : a.args) {
          if (t.IsVariable()) body_vars.insert(t.text());
        }
      }
      bool safe = true;
      for (const ast::Term& t : candidate.head) {
        if (t.IsVariable() && body_vars.count(t.text()) == 0) safe = false;
      }
      if (!safe) continue;
      // Dropping a conjunct can only enlarge the result, so candidate
      // contains current for free; equivalence needs the other direction:
      // a mapping current -> candidate.
      if (MapsTo(current, candidate)) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace dire::cq
