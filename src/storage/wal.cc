#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>

#include "base/failpoints.h"
#include "base/io.h"
#include "base/log.h"
#include "base/obs.h"
#include "base/string_util.h"

namespace dire::storage {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc.
// Ceiling on a single record. Far above any real fact, and bounds the
// allocation a corrupt length field can demand during replay.
constexpr uint32_t kMaxRecordBytes = 64u << 20;

void PutU32Le(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32Le(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("cannot open WAL " + path);
  return std::unique_ptr<Wal>(new Wal(path, fd));
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Status Wal::Append(std::string_view payload) {
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument(
        StrFormat("WAL record of %zu bytes exceeds the %u-byte limit",
                  payload.size(), kMaxRecordBytes));
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32Le(static_cast<uint32_t>(payload.size()), &frame);
  PutU32Le(io::Crc32c(payload), &frame);
  frame.append(payload.data(), payload.size());

#ifdef DIRE_FAILPOINTS_ENABLED
  // Simulated crash mid-append: a prefix of the frame lands on disk. Replay
  // must drop exactly this torn tail.
  {
    Status torn = failpoints::Check("wal.append.short");
    if (!torn.ok()) {
      WriteAll(fd_, frame.data(), frame.size() / 2);
      return torn;
    }
  }
#endif
  DIRE_FAILPOINT("wal.append.enospc");
  if (!WriteAll(fd_, frame.data(), frame.size())) {
    return Errno("WAL append to " + path_ + " failed");
  }
  DIRE_FAILPOINT("wal.sync");
  DIRE_RETURN_IF_ERROR(io::RetryTransientOp(
      "wal.retry.sync", "WAL fsync of " + path_ + " failed",
      [&] { return ::fsync(fd_); }));
  if (obs::kEnabled) {
    // Series pointers resolved once: Append is the hot path of every
    // durable fact insert.
    static obs::Counter* appends = obs::GetCounter(
        "dire_wal_appends_total", "WAL records appended and fsynced");
    static obs::Counter* bytes = obs::GetCounter(
        "dire_wal_bytes_total", "WAL bytes written (frame headers included)");
    appends->Add(1);
    bytes->Add(frame.size());
  }
  return Status::Ok();
}

Status Wal::Reset() { return TruncateTo(0); }

Status Wal::TruncateTo(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Errno("WAL truncate of " + path_ + " failed");
  }
  if (::fsync(fd_) != 0) return Errno("WAL fsync of " + path_ + " failed");
  return Status::Ok();
}

Result<WalReplayStats> ReplayWal(
    const std::string& path,
    const std::function<Status(std::string_view payload)>& apply) {
  obs::Span span("wal.replay", "persist");
  WalReplayStats stats;
  if (!io::FileExists(path)) return stats;  // Absent log == empty log.
  DIRE_ASSIGN_OR_RETURN(std::string data, io::ReadFile(path));

  size_t pos = 0;
  // Set when a record fails to verify; whether that is a recoverable torn
  // tail or hard corruption depends on whether anything follows it.
  std::string bad;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeaderBytes) {
      bad = StrFormat("short frame header at offset %zu", pos);
      break;
    }
    uint32_t length = GetU32Le(data.data() + pos);
    uint32_t want_crc = GetU32Le(data.data() + pos + 4);
    if (length > kMaxRecordBytes) {
      bad = StrFormat("implausible record length %u at offset %zu", length,
                      pos);
      break;
    }
    if (data.size() - pos - kFrameHeaderBytes < length) {
      bad = StrFormat("short payload at offset %zu (need %u bytes, have %zu)",
                      pos, length, data.size() - pos - kFrameHeaderBytes);
      break;
    }
    std::string_view payload(data.data() + pos + kFrameHeaderBytes, length);
    if (io::Crc32c(payload) != want_crc) {
      bad = StrFormat("record checksum mismatch at offset %zu", pos);
      break;
    }
    DIRE_RETURN_IF_ERROR(apply(payload));
    pos += kFrameHeaderBytes + length;
    ++stats.records;
    stats.valid_bytes = pos;
  }

  if (!bad.empty()) {
    // A bad record is a droppable torn tail only if the damage plausibly
    // came from a crashed append, i.e. nothing but the damaged bytes follow.
    // "Followed by more bytes" can only be judged for a checksum failure or
    // an implausible length, where the frame told us how far the record was
    // supposed to extend; short frames/payloads reach EOF by definition.
    bool reaches_eof = true;
    if (data.size() - pos >= kFrameHeaderBytes) {
      uint32_t length = GetU32Le(data.data() + pos);
      if (length <= kMaxRecordBytes &&
          data.size() - pos - kFrameHeaderBytes > length) {
        reaches_eof = false;  // Intact bytes continue past the bad record.
      }
    }
    if (!reaches_eof) {
      return Status::Corruption("WAL " + path + ": " + bad +
                                ", with further data after it");
    }
    stats.dropped_torn_tail = true;
    stats.dropped_bytes = data.size() - stats.valid_bytes;
    obs::GetCounter("dire_wal_torn_tails_total",
                    "WAL replays that dropped a torn tail")
        ->Add(1);
    log::Warn("wal", "dropped torn tail during replay",
              {{"path", path},
               {"reason", bad},
               {"dropped_bytes", std::to_string(stats.dropped_bytes)}});
  }
  span.Attr("records", stats.records);
  span.Attr("valid_bytes", stats.valid_bytes);
  obs::GetCounter("dire_wal_replayed_records_total",
                  "WAL records replayed on recovery")
      ->Add(stats.records);
  return stats;
}

namespace {

std::string EncodeOpRecord(char op, const std::string& relation,
                           const std::vector<std::string>& values) {
  std::string payload(1, op);
  payload += '\t';
  payload += io::EscapeTsvField(relation);
  for (const std::string& v : values) {
    payload += '\t';
    payload += io::EscapeTsvField(v);
  }
  return payload;
}

std::string StampPrefix(uint64_t epoch, uint64_t lsn) {
  return StrFormat("S\t%llu\t%llu\t", static_cast<unsigned long long>(epoch),
                   static_cast<unsigned long long>(lsn));
}

// Parses a decimal uint64 stamp field; nullopt on garbage or overflow risk.
std::optional<uint64_t> ParseStamp(const std::string& text) {
  if (text.empty() || text.size() > 19) return std::nullopt;
  uint64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    out = out * 10 + static_cast<uint64_t>(c - '0');
  }
  return out;
}

}  // namespace

std::string EncodeFactRecord(const std::string& relation,
                             const std::vector<std::string>& values) {
  return EncodeOpRecord('F', relation, values);
}

std::string EncodeRetractRecord(const std::string& relation,
                                const std::vector<std::string>& values) {
  return EncodeOpRecord('R', relation, values);
}

std::string EncodeStampedFactRecord(uint64_t epoch, uint64_t lsn,
                                    const std::string& relation,
                                    const std::vector<std::string>& values) {
  return StampPrefix(epoch, lsn) + EncodeOpRecord('F', relation, values);
}

std::string EncodeStampedRetractRecord(
    uint64_t epoch, uint64_t lsn, const std::string& relation,
    const std::vector<std::string>& values) {
  return StampPrefix(epoch, lsn) + EncodeOpRecord('R', relation, values);
}

std::string EncodeEpochRecord(uint64_t epoch, uint64_t lsn, bool fenced) {
  return StampPrefix(epoch, lsn) + "E\t" + (fenced ? "fenced" : "promoted");
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  std::vector<std::string> fields = Split(payload, '\t');
  WalRecord record;
  size_t op_at = 0;
  if (!fields.empty() && fields[0] == "S") {
    if (fields.size() < 4) {
      return Status::Corruption("malformed stamped WAL record");
    }
    std::optional<uint64_t> epoch = ParseStamp(fields[1]);
    std::optional<uint64_t> lsn = ParseStamp(fields[2]);
    if (!epoch || !lsn) {
      return Status::Corruption(
          "WAL record carries a non-numeric epoch/lsn stamp");
    }
    record.stamped = true;
    record.epoch = *epoch;
    record.lsn = *lsn;
    op_at = 3;
  }
  if (fields.size() <= op_at) {
    return Status::Corruption("malformed WAL record");
  }
  const std::string& op = fields[op_at];
  if (op == "E") {
    // Epoch control records only exist stamped: without an (epoch, lsn)
    // identity a fence/promotion marker is meaningless.
    if (!record.stamped || fields.size() != op_at + 2) {
      return Status::Corruption("malformed WAL epoch control record");
    }
    record.op = WalRecord::Op::kEpoch;
    if (fields[op_at + 1] == "fenced") {
      record.fenced = true;
    } else if (fields[op_at + 1] != "promoted") {
      return Status::Corruption("unknown WAL epoch control marker '" +
                                fields[op_at + 1] + "'");
    }
    return record;
  }
  if ((op != "F" && op != "R") || fields.size() < op_at + 2) {
    return Status::Corruption("malformed WAL record");
  }
  record.op = op == "F" ? WalRecord::Op::kInsert : WalRecord::Op::kRetract;
  DIRE_ASSIGN_OR_RETURN(record.relation,
                        io::UnescapeTsvField(fields[op_at + 1]));
  if (record.relation.empty()) {
    return Status::Corruption("WAL record names an empty relation");
  }
  record.values.reserve(fields.size() - op_at - 2);
  for (size_t i = op_at + 2; i < fields.size(); ++i) {
    DIRE_ASSIGN_OR_RETURN(std::string value, io::UnescapeTsvField(fields[i]));
    record.values.push_back(std::move(value));
  }
  return record;
}

Result<FactRecord> DecodeFactRecord(std::string_view payload) {
  DIRE_ASSIGN_OR_RETURN(WalRecord record, DecodeWalRecord(payload));
  if (record.op != WalRecord::Op::kInsert) {
    return Status::Corruption("malformed WAL fact record");
  }
  return FactRecord{std::move(record.relation), std::move(record.values)};
}

}  // namespace dire::storage
