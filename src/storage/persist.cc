#include "storage/persist.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

#include "base/io.h"
#include "base/log.h"
#include "base/obs.h"
#include "base/string_util.h"

namespace dire::storage {

namespace {

// Parses a nonnegative integer meta value; nullopt on garbage.
std::optional<int64_t> ParseMetaInt(const std::string& value) {
  if (value.empty() || value.size() > 18) return std::nullopt;
  int64_t out = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return std::nullopt;
    out = out * 10 + (c - '0');
  }
  return out;
}

// True if `pid` names a process that exists right now (signal-0 probe;
// EPERM means "exists but not ours", which still counts as alive).
bool PidAlive(int64_t pid) {
  if (pid <= 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

}  // namespace

Status DataDir::AcquireLock() {
  for (int attempt = 0; attempt < 2; ++attempt) {
    int fd = ::open(lock_path_.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd >= 0) {
      std::string body = std::to_string(::getpid()) + "\n";
      bool ok = ::write(fd, body.data(), body.size()) ==
                static_cast<ssize_t>(body.size());
      ok = (::fsync(fd) == 0) && ok;
      ::close(fd);
      if (!ok) {
        ::unlink(lock_path_.c_str());
        return Status::Internal("cannot stamp lock file " + lock_path_);
      }
      owns_lock_ = true;
      return Status::Ok();
    }
    if (errno != EEXIST) {
      return Status::Internal("cannot create lock file " + lock_path_ +
                              ": " + std::strerror(errno));
    }
    // Somebody holds (or held) the lock. A live owner is fail-closed; a
    // dead owner's lock is stale — a SIGKILLed server cannot clean up — and
    // is broken so recovery can proceed. An unreadable/garbled lock file is
    // treated as stale too: our own writer stamps it in one small write, so
    // garbage can only be torn crash debris.
    Result<std::string> body = io::ReadFile(lock_path_);
    std::optional<int64_t> pid;
    if (body.ok()) pid = ParseMetaInt(std::string(StripWhitespace(*body)));
    if (pid && PidAlive(*pid)) {
      return Status::InvalidArgument(
          StrFormat("data dir %s is locked by running process %lld "
                    "(lock file %s); stop that process, or delete the lock "
                    "file if the PID is stale",
                    dir_.c_str(), static_cast<long long>(*pid),
                    lock_path_.c_str()));
    }
    log::Warn("persist", "breaking stale data-dir lock",
              {{"lock", lock_path_},
               {"owner_pid", pid ? std::to_string(*pid) : "unparsable"}});
    ::unlink(lock_path_.c_str());
    // Loop once more; a concurrent acquirer winning the O_EXCL race makes
    // the retry fail with the live-owner diagnostic.
  }
  return Status::InvalidArgument("data dir " + dir_ +
                                 " lock contended; try again");
}

DataDir::~DataDir() {
  if (owns_lock_) ::unlink(lock_path_.c_str());
}

Result<std::unique_ptr<DataDir>> DataDir::Open(const std::string& dir,
                                               bool recover_tail) {
  DIRE_RETURN_IF_ERROR(io::MakeDirs(dir));
  std::unique_ptr<DataDir> self(new DataDir(dir));
  DIRE_RETURN_IF_ERROR(self->AcquireLock());

  // 1. Snapshot. Our own writer replaces it atomically, so a committed file
  //    is the only state it leaves; `recover_tail` additionally accepts an
  //    EOF-truncated file from a foreign writer.
  if (io::FileExists(self->snapshot_path_)) {
    SnapshotLoadOptions load_opts;
    load_opts.recover_tail = recover_tail;
    DIRE_ASSIGN_OR_RETURN(
        SnapshotLoadStats stats,
        LoadSnapshotFile(&self->db_, self->snapshot_path_, load_opts));

    // Extract checkpoint metadata and delta sections out of the database:
    // they describe evaluation progress, they are not relations.
    RecoveredCheckpoint& rec = self->recovered_;
    auto stratum = stats.meta.find(kMetaStratum);
    auto rounds = stats.meta.find(kMetaRounds);
    if (stratum != stats.meta.end()) {
      std::optional<int64_t> s = ParseMetaInt(stratum->second);
      if (!s) {
        return Status::Corruption("snapshot meta '" +
                                  std::string(kMetaStratum) +
                                  "' is not a number: " + stratum->second);
      }
      rec.has_meta = true;
      rec.stratum = static_cast<int>(*s);
    }
    if (rounds != stats.meta.end()) {
      std::optional<int64_t> r = ParseMetaInt(rounds->second);
      if (!r) {
        return Status::Corruption("snapshot meta '" +
                                  std::string(kMetaRounds) +
                                  "' is not a number: " + rounds->second);
      }
      rec.rounds = static_cast<int>(*r);
    }
    auto crc = stats.meta.find(kMetaProgramCrc);
    if (crc != stats.meta.end()) {
      DIRE_ASSIGN_OR_RETURN(rec.program_crc, io::CrcFromHex(crc->second));
      rec.has_program_crc = true;
    }
    for (const std::string& name : self->db_.RelationNames()) {
      if (!StartsWith(name, kDeltaSectionPrefix)) continue;
      std::string predicate = name.substr(sizeof(kDeltaSectionPrefix) - 1);
      const Relation* rel = self->db_.Find(name);
      std::vector<std::vector<std::string>> rows;
      rows.reserve(rel->size());
      for (const Tuple& t : rel->tuples()) {
        std::vector<std::string> row;
        row.reserve(t.size());
        for (ValueId v : t) row.push_back(self->db_.symbols().Name(v));
        rows.push_back(std::move(row));
      }
      rec.deltas.emplace(std::move(predicate), std::move(rows));
      self->db_.Drop(name);
    }
    // Deltas are trusted only when the meta that locates them survived too.
    if (!rec.has_meta) rec.deltas.clear();
  }

  // 2. WAL replay over the snapshot. Inserts are set-semantics and
  //    retractions of absent facts are no-ops, so records already folded
  //    into the snapshot re-apply harmlessly, in WAL order.
  DIRE_ASSIGN_OR_RETURN(
      WalReplayStats replay,
      ReplayWal(self->wal_path_, [&self](std::string_view payload) -> Status {
        DIRE_ASSIGN_OR_RETURN(WalRecord record, DecodeWalRecord(payload));
        if (record.op == WalRecord::Op::kRetract) {
          Result<bool> removed =
              self->db_.RemoveRow(record.relation, record.values);
          return removed.ok() ? Status::Ok() : removed.status();
        }
        return self->db_.AddRow(record.relation, record.values);
      }));

  // Any replayed record postdates the checkpointed snapshot (checkpointing
  // resets the log), so the checkpoint's notion of evaluation progress is
  // stale: the new facts' consequences were never derived. Restarting from
  // stratum 0 over the merged state is sound and re-derives them.
  if (replay.records > 0) self->recovered_ = RecoveredCheckpoint{};

  // 3. Open for appending, dropping any torn tail first so new records
  //    never land after garbage.
  DIRE_ASSIGN_OR_RETURN(self->wal_, Wal::Open(self->wal_path_));
  if (replay.dropped_torn_tail) {
    DIRE_RETURN_IF_ERROR(self->wal_->TruncateTo(replay.valid_bytes));
  }
  return self;
}

Status DataDir::AppendFact(const std::string& relation,
                           const std::vector<std::string>& values) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  // Durability order: the record must be on disk before the in-memory state
  // reflects it, otherwise an acknowledged fact could vanish in a crash.
  DIRE_RETURN_IF_ERROR(wal_->Append(EncodeFactRecord(relation, values)));
  return db_.AddRow(relation, values);
}

Status DataDir::RetractFact(const std::string& relation,
                            const std::vector<std::string>& values,
                            bool* removed) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  // Same order as AppendFact: a crash after the WAL record but before the
  // in-memory removal replays the retraction on recovery.
  DIRE_RETURN_IF_ERROR(wal_->Append(EncodeRetractRecord(relation, values)));
  DIRE_ASSIGN_OR_RETURN(bool was_present, db_.RemoveRow(relation, values));
  if (removed != nullptr) *removed = was_present;
  return Status::Ok();
}

Status DataDir::Checkpoint(const SnapshotWriteOptions& opts) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  obs::Span span("persist.checkpoint", "persist");
  auto t0 = std::chrono::steady_clock::now();
  DIRE_RETURN_IF_ERROR(SaveSnapshotFile(db_, snapshot_path_, opts));
  // Only reached once the new snapshot is durable; a crash before this line
  // leaves the old snapshot plus a WAL that replays over it.
  Status reset = wal_->Reset();
  if (reset.ok()) {
    uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    obs::GetCounter("dire_checkpoints_total", "Checkpoints taken")->Add(1);
    obs::GetHistogram("dire_checkpoint_latency_us",
                      "Checkpoint wall time (snapshot write + WAL reset), "
                      "microseconds")
        ->Observe(us);
    span.Attr("latency_us", us);
  }
  return reset;
}

}  // namespace dire::storage
