#include "storage/persist.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

#include "base/io.h"
#include "base/log.h"
#include "base/obs.h"
#include "base/string_util.h"

namespace dire::storage {

namespace {

// Parses a nonnegative integer meta value; nullopt on garbage.
std::optional<int64_t> ParseMetaInt(const std::string& value) {
  if (value.empty() || value.size() > 18) return std::nullopt;
  int64_t out = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return std::nullopt;
    out = out * 10 + (c - '0');
  }
  return out;
}

// True if `pid` names a process that exists right now (signal-0 probe;
// EPERM means "exists but not ours", which still counts as alive).
bool PidAlive(int64_t pid) {
  if (pid <= 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

// Parses a decimal uint64; nullopt on garbage or overflow risk.
std::optional<uint64_t> ParseU64(std::string_view text) {
  if (text.empty() || text.size() > 19) return std::nullopt;
  uint64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    out = out * 10 + static_cast<uint64_t>(c - '0');
  }
  return out;
}

}  // namespace

std::string FormatReplState(const ReplState& state) {
  return StrFormat("epoch %llu\nlsn %llu\nfenced %d\n",
                   static_cast<unsigned long long>(state.epoch),
                   static_cast<unsigned long long>(state.lsn),
                   state.fenced ? 1 : 0);
}

Result<ReplState> ParseReplState(std::string_view body) {
  // Written in one AtomicWriteFile, so anything unparsable is tampering or
  // disk damage, not a crash artifact: fail closed.
  ReplState state;
  bool have_epoch = false;
  bool have_lsn = false;
  for (const std::string& line : Split(body, '\n')) {
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty()) continue;
    size_t space = trimmed.find(' ');
    if (space == std::string_view::npos) {
      return Status::Corruption("malformed replstate line: " + line);
    }
    std::string_view key = trimmed.substr(0, space);
    std::optional<uint64_t> value = ParseU64(trimmed.substr(space + 1));
    if (!value) {
      return Status::Corruption("non-numeric replstate value: " + line);
    }
    if (key == "epoch") {
      state.epoch = *value;
      have_epoch = true;
    } else if (key == "lsn") {
      state.lsn = *value;
      have_lsn = true;
    } else if (key == "fenced") {
      if (*value > 1) {
        return Status::Corruption("replstate fenced flag must be 0 or 1");
      }
      state.fenced = *value == 1;
    } else {
      return Status::Corruption("unknown replstate key: " + line);
    }
  }
  if (!have_epoch || !have_lsn) {
    return Status::Corruption("replstate is missing epoch or lsn");
  }
  return state;
}

Status DataDir::AcquireLock() {
  for (int attempt = 0; attempt < 2; ++attempt) {
    int fd = ::open(lock_path_.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd >= 0) {
      std::string body = std::to_string(::getpid()) + "\n";
      bool ok = ::write(fd, body.data(), body.size()) ==
                static_cast<ssize_t>(body.size());
      ok = (::fsync(fd) == 0) && ok;
      ::close(fd);
      if (!ok) {
        ::unlink(lock_path_.c_str());
        return Status::Internal("cannot stamp lock file " + lock_path_);
      }
      owns_lock_ = true;
      return Status::Ok();
    }
    if (errno != EEXIST) {
      return Status::Internal("cannot create lock file " + lock_path_ +
                              ": " + std::strerror(errno));
    }
    // Somebody holds (or held) the lock. A live owner is fail-closed; a
    // dead owner's lock is stale — a SIGKILLed server cannot clean up — and
    // is broken so recovery can proceed. An unreadable/garbled lock file is
    // treated as stale too: our own writer stamps it in one small write, so
    // garbage can only be torn crash debris. Line 1 is the owner's PID;
    // line 2 (when present) the epoch the owner last stamped, remembered so
    // recovery can cross-check it against the directory's durable epoch.
    Result<std::string> body = io::ReadFile(lock_path_);
    std::optional<int64_t> pid;
    if (body.ok()) {
      std::vector<std::string> lines = Split(*body, '\n');
      if (!lines.empty()) {
        pid = ParseMetaInt(std::string(StripWhitespace(lines[0])));
      }
      if (lines.size() > 1) {
        std::optional<uint64_t> epoch =
            ParseU64(StripWhitespace(lines[1]));
        if (epoch) stale_lock_epoch_ = *epoch;
      }
    }
    if (pid && PidAlive(*pid)) {
      return Status::InvalidArgument(
          StrFormat("data dir %s is locked by running process %lld "
                    "(lock file %s); stop that process, or delete the lock "
                    "file if the PID is stale",
                    dir_.c_str(), static_cast<long long>(*pid),
                    lock_path_.c_str()));
    }
    log::Warn("persist", "breaking stale data-dir lock",
              {{"lock", lock_path_},
               {"owner_pid", pid ? std::to_string(*pid) : "unparsable"}});
    ::unlink(lock_path_.c_str());
    // Loop once more; a concurrent acquirer winning the O_EXCL race makes
    // the retry fail with the live-owner diagnostic.
  }
  return Status::InvalidArgument("data dir " + dir_ +
                                 " lock contended; try again");
}

DataDir::~DataDir() {
  if (owns_lock_) ::unlink(lock_path_.c_str());
}

Result<std::unique_ptr<DataDir>> DataDir::Open(const std::string& dir,
                                               bool recover_tail) {
  DIRE_RETURN_IF_ERROR(io::MakeDirs(dir));
  std::unique_ptr<DataDir> self(new DataDir(dir));
  DIRE_RETURN_IF_ERROR(self->AcquireLock());

  // 1. Snapshot. Our own writer replaces it atomically, so a committed file
  //    is the only state it leaves; `recover_tail` additionally accepts an
  //    EOF-truncated file from a foreign writer.
  if (io::FileExists(self->snapshot_path_)) {
    SnapshotLoadOptions load_opts;
    load_opts.recover_tail = recover_tail;
    DIRE_ASSIGN_OR_RETURN(
        SnapshotLoadStats stats,
        LoadSnapshotFile(&self->db_, self->snapshot_path_, load_opts));

    // Extract checkpoint metadata and delta sections out of the database:
    // they describe evaluation progress, they are not relations.
    RecoveredCheckpoint& rec = self->recovered_;
    auto stratum = stats.meta.find(kMetaStratum);
    auto rounds = stats.meta.find(kMetaRounds);
    if (stratum != stats.meta.end()) {
      std::optional<int64_t> s = ParseMetaInt(stratum->second);
      if (!s) {
        return Status::Corruption("snapshot meta '" +
                                  std::string(kMetaStratum) +
                                  "' is not a number: " + stratum->second);
      }
      rec.has_meta = true;
      rec.stratum = static_cast<int>(*s);
    }
    if (rounds != stats.meta.end()) {
      std::optional<int64_t> r = ParseMetaInt(rounds->second);
      if (!r) {
        return Status::Corruption("snapshot meta '" +
                                  std::string(kMetaRounds) +
                                  "' is not a number: " + rounds->second);
      }
      rec.rounds = static_cast<int>(*r);
    }
    auto crc = stats.meta.find(kMetaProgramCrc);
    if (crc != stats.meta.end()) {
      DIRE_ASSIGN_OR_RETURN(rec.program_crc, io::CrcFromHex(crc->second));
      rec.has_program_crc = true;
    }
    for (const std::string& name : self->db_.RelationNames()) {
      if (!StartsWith(name, kDeltaSectionPrefix)) continue;
      std::string predicate = name.substr(sizeof(kDeltaSectionPrefix) - 1);
      const Relation* rel = self->db_.Find(name);
      std::vector<std::vector<std::string>> rows;
      rows.reserve(rel->size());
      for (RowRef t : rel->rows()) {
        std::vector<std::string> row;
        row.reserve(t.size());
        for (ValueId v : t) row.push_back(self->db_.symbols().Name(v));
        rows.push_back(std::move(row));
      }
      rec.deltas.emplace(std::move(predicate), std::move(rows));
      self->db_.Drop(name);
    }
    // Deltas are trusted only when the meta that locates them survived too.
    if (!rec.has_meta) rec.deltas.clear();
  }
  // Keep the pre-replay view: WAL replay below invalidates recovered_, but
  // maintenance-based recovery still wants to know where the snapshot's
  // checkpoint stood (see checkpoint_at_snapshot()).
  self->checkpoint_at_snapshot_ = self->recovered_;

  // 2. Replication base: the durable (epoch, lsn, fenced) identity as of
  //    the last checkpoint or control record. WAL records stamped after it
  //    advance the recovered values below.
  uint64_t epoch = 1;
  uint64_t lsn = 0;
  bool fenced = false;
  if (io::FileExists(self->replstate_path_)) {
    DIRE_ASSIGN_OR_RETURN(std::string body,
                          io::ReadFile(self->replstate_path_));
    DIRE_ASSIGN_OR_RETURN(ReplState state, ParseReplState(body));
    epoch = state.epoch;
    lsn = state.lsn;
    fenced = state.fenced;
  }

  // 3. WAL replay over the snapshot. Inserts are set-semantics and
  //    retractions of absent facts are no-ops, so records already folded
  //    into the snapshot re-apply harmlessly, in WAL order. Stamps advance
  //    the replication identity past the replstate base; epoch control
  //    records carry fence/promotion state in-band.
  DIRE_ASSIGN_OR_RETURN(
      WalReplayStats replay,
      ReplayWal(self->wal_path_,
                [&](std::string_view payload) -> Status {
        DIRE_ASSIGN_OR_RETURN(WalRecord record, DecodeWalRecord(payload));
        if (record.stamped) {
          lsn = std::max(lsn, record.lsn);
          epoch = std::max(epoch, record.epoch);
        }
        if (record.op == WalRecord::Op::kEpoch) {
          fenced = record.fenced;
          return Status::Ok();
        }
        // Was the tuple present before this record applied? Decides the
        // record's effectiveness for wal_tail() (the journal holds
        // ineffective records: appends are journaled before the set-semantic
        // insert, retractions before the presence check).
        auto present_now = [&]() -> bool {
          const Relation* rel = self->db_.Find(record.relation);
          if (rel == nullptr || rel->arity() != record.values.size()) {
            return false;
          }
          Tuple t;
          t.reserve(record.values.size());
          for (const std::string& v : record.values) {
            ValueId id = self->db_.symbols().Find(v);
            if (id == SymbolTable::kMissing) return false;
            t.push_back(id);
          }
          return rel->Contains(t);
        };
        WalTailOp op;
        op.insert = record.op != WalRecord::Op::kRetract;
        op.relation = record.relation;
        op.values = record.values;
        if (record.op == WalRecord::Op::kRetract) {
          Result<bool> removed =
              self->db_.RemoveRow(record.relation, record.values);
          if (!removed.ok()) return removed.status();
          op.effective = removed.value();
          self->wal_tail_.push_back(std::move(op));
          return Status::Ok();
        }
        op.effective = !present_now();
        self->wal_tail_.push_back(std::move(op));
        return self->db_.AddRow(record.relation, record.values);
      }));

  // A stale lock stamped with a later epoch than anything durable means a
  // fence crashed between restamping the lock and committing the control
  // record. Fail closed: honor the fence.
  if (self->stale_lock_epoch_ > epoch) {
    log::Warn("persist", "stale lock carries a later epoch; honoring it as "
                         "a fence",
              {{"dir", dir},
               {"lock_epoch", std::to_string(self->stale_lock_epoch_)},
               {"recovered_epoch", std::to_string(epoch)}});
    epoch = self->stale_lock_epoch_;
    fenced = true;
  }
  self->epoch_.store(epoch, std::memory_order_release);
  self->lsn_.store(lsn, std::memory_order_release);
  self->fenced_.store(fenced, std::memory_order_release);

  // Any replayed record postdates the checkpointed snapshot (checkpointing
  // resets the log), so the checkpoint's notion of evaluation progress is
  // stale: the new facts' consequences were never derived. Restarting from
  // stratum 0 over the merged state is sound and re-derives them.
  if (replay.records > 0) self->recovered_ = RecoveredCheckpoint{};

  // 4. Open for appending, dropping any torn tail first so new records
  //    never land after garbage, and advertise the recovered epoch in the
  //    lock file.
  DIRE_ASSIGN_OR_RETURN(self->wal_, Wal::Open(self->wal_path_));
  if (replay.dropped_torn_tail) {
    DIRE_RETURN_IF_ERROR(self->wal_->TruncateTo(replay.valid_bytes));
  }
  DIRE_RETURN_IF_ERROR(self->StampLockLocked());
  return self;
}

Status DataDir::CheckWritable(const std::string& relation,
                              size_t arity) const {
  if (relation.empty()) {
    return Status::InvalidArgument("fact names an empty relation");
  }
  const Relation* rel = db_.Find(relation);
  if (rel != nullptr && rel->arity() != arity) {
    return Status::InvalidArgument(
        StrFormat("relation %s has arity %zu, got %zu values",
                  relation.c_str(), rel->arity(), arity));
  }
  return Status::Ok();
}

Status DataDir::WriteReplStateLocked() {
  ReplState state;
  state.epoch = epoch_.load(std::memory_order_relaxed);
  state.lsn = lsn_.load(std::memory_order_relaxed);
  state.fenced = fenced_.load(std::memory_order_relaxed);
  return io::AtomicWriteFile(replstate_path_, FormatReplState(state));
}

Status DataDir::StampLockLocked() {
  std::string body = StrFormat(
      "%lld\n%llu\n", static_cast<long long>(::getpid()),
      static_cast<unsigned long long>(epoch_.load(std::memory_order_relaxed)));
  int fd = ::open(lock_path_.c_str(), O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot restamp lock file " + lock_path_ + ": " +
                            std::strerror(errno));
  }
  bool ok = ::write(fd, body.data(), body.size()) ==
            static_cast<ssize_t>(body.size());
  ok = (::fsync(fd) == 0) && ok;
  ::close(fd);
  if (!ok) return Status::Internal("cannot restamp lock file " + lock_path_);
  return Status::Ok();
}

Status DataDir::ControlRecordLocked(uint64_t new_epoch, bool fenced) {
  // The WAL record is the commit point; the lock is restamped FIRST so that
  // a crash between the two leaves a lock epoch ahead of the durable state,
  // which recovery fail-closes into a fence (never an un-fence).
  if (fenced) {
    uint64_t saved = epoch_.exchange(new_epoch, std::memory_order_release);
    Status stamped = StampLockLocked();
    if (!stamped.ok()) {
      epoch_.store(saved, std::memory_order_release);
      return stamped;
    }
    epoch_.store(saved, std::memory_order_release);
  }
  uint64_t next = lsn_.load(std::memory_order_relaxed) + 1;
  DIRE_RETURN_IF_ERROR(wal_->Append(EncodeEpochRecord(new_epoch, next,
                                                      fenced)));
  epoch_.store(new_epoch, std::memory_order_release);
  lsn_.store(next, std::memory_order_release);
  fenced_.store(fenced, std::memory_order_release);
  DIRE_RETURN_IF_ERROR(WriteReplStateLocked());
  return StampLockLocked();
}

Status DataDir::AppendFact(const std::string& relation,
                           const std::vector<std::string>& values,
                           AppendedRecord* appended) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (fenced_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("data dir " + dir_ +
                                   " is fenced (deposed by a failover); "
                                   "writes refused");
  }
  // Validated against the live schema BEFORE the WAL write, so a mismatched
  // append can never leave a poison record that breaks every later replay.
  DIRE_RETURN_IF_ERROR(CheckWritable(relation, values.size()));
  uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  uint64_t next = lsn_.load(std::memory_order_relaxed) + 1;
  std::string payload = EncodeStampedFactRecord(epoch, next, relation, values);
  // Durability order: the record must be on disk before the in-memory state
  // reflects it, otherwise an acknowledged fact could vanish in a crash.
  DIRE_RETURN_IF_ERROR(wal_->Append(payload));
  lsn_.store(next, std::memory_order_release);
  DIRE_RETURN_IF_ERROR(db_.AddRow(relation, values));
  if (appended != nullptr) {
    appended->epoch = epoch;
    appended->lsn = next;
    appended->payload = std::move(payload);
  }
  return Status::Ok();
}

Status DataDir::RetractFact(const std::string& relation,
                            const std::vector<std::string>& values,
                            bool* removed, AppendedRecord* appended) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (fenced_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("data dir " + dir_ +
                                   " is fenced (deposed by a failover); "
                                   "writes refused");
  }
  DIRE_RETURN_IF_ERROR(CheckWritable(relation, values.size()));
  uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  uint64_t next = lsn_.load(std::memory_order_relaxed) + 1;
  std::string payload =
      EncodeStampedRetractRecord(epoch, next, relation, values);
  // Same order as AppendFact: a crash after the WAL record but before the
  // in-memory removal replays the retraction on recovery.
  DIRE_RETURN_IF_ERROR(wal_->Append(payload));
  lsn_.store(next, std::memory_order_release);
  DIRE_ASSIGN_OR_RETURN(bool was_present, db_.RemoveRow(relation, values));
  if (removed != nullptr) *removed = was_present;
  if (appended != nullptr) {
    appended->epoch = epoch;
    appended->lsn = next;
    appended->payload = std::move(payload);
  }
  return Status::Ok();
}

Status DataDir::AppendReplicated(std::string_view payload,
                                 const WalRecord& record, bool* mutated) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (mutated != nullptr) *mutated = false;
  if (!record.stamped) {
    return Status::Corruption(
        "replicated record carries no (epoch, lsn) stamp");
  }
  uint64_t have = lsn_.load(std::memory_order_relaxed);
  if (record.lsn != have + 1) {
    return Status::Corruption(
        StrFormat("replication stream gap: have lsn %llu, record is %llu",
                  static_cast<unsigned long long>(have),
                  static_cast<unsigned long long>(record.lsn)));
  }
  uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (record.epoch < epoch) {
    return Status::Corruption(
        StrFormat("replicated record from stale epoch %llu (directory is at "
                  "%llu)",
                  static_cast<unsigned long long>(record.epoch),
                  static_cast<unsigned long long>(epoch)));
  }
  if (record.op != WalRecord::Op::kEpoch) {
    DIRE_RETURN_IF_ERROR(CheckWritable(record.relation,
                                       record.values.size()));
  }
  // The payload is appended verbatim, so the follower's WAL is a byte-level
  // suffix copy of the primary's and re-ships identically downstream.
  DIRE_RETURN_IF_ERROR(wal_->Append(payload));
  lsn_.store(record.lsn, std::memory_order_release);
  bool epoch_changed = record.epoch > epoch;
  if (epoch_changed) epoch_.store(record.epoch, std::memory_order_release);
  switch (record.op) {
    case WalRecord::Op::kEpoch:
      fenced_.store(record.fenced, std::memory_order_release);
      epoch_changed = true;
      break;
    case WalRecord::Op::kInsert:
      DIRE_RETURN_IF_ERROR(db_.AddRow(record.relation, record.values));
      if (mutated != nullptr) *mutated = true;
      break;
    case WalRecord::Op::kRetract: {
      DIRE_ASSIGN_OR_RETURN(bool was_present,
                            db_.RemoveRow(record.relation, record.values));
      if (mutated != nullptr) *mutated = was_present;
      break;
    }
  }
  if (epoch_changed) {
    DIRE_RETURN_IF_ERROR(WriteReplStateLocked());
    DIRE_RETURN_IF_ERROR(StampLockLocked());
  }
  return Status::Ok();
}

Status DataDir::Promote(uint64_t new_epoch) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (fenced_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument(
        "data dir " + dir_ +
        " is fenced; it must re-sync from the current primary before it can "
        "be promoted");
  }
  uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (epoch == 0) {
    return Status::InvalidArgument(
        "data dir " + dir_ +
        " is mid-resync (epoch 0); its state cannot be trusted for "
        "promotion");
  }
  if (new_epoch <= epoch) {
    return Status::InvalidArgument(
        StrFormat("promotion epoch %llu must exceed the current epoch %llu",
                  static_cast<unsigned long long>(new_epoch),
                  static_cast<unsigned long long>(epoch)));
  }
  DIRE_RETURN_IF_ERROR(ControlRecordLocked(new_epoch, /*fenced=*/false));
  log::Info("persist", "promoted to primary",
            {{"dir", dir_},
             {"epoch", std::to_string(new_epoch)},
             {"lsn", std::to_string(lsn_.load(std::memory_order_relaxed))}});
  return Status::Ok();
}

Status DataDir::Fence(uint64_t new_epoch) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (fenced_.load(std::memory_order_relaxed) && epoch >= new_epoch) {
    return Status::Ok();  // Already sealed at least this tightly.
  }
  if (new_epoch < epoch) {
    return Status::InvalidArgument(
        StrFormat("cannot fence at epoch %llu below the current epoch %llu",
                  static_cast<unsigned long long>(new_epoch),
                  static_cast<unsigned long long>(epoch)));
  }
  DIRE_RETURN_IF_ERROR(ControlRecordLocked(new_epoch, /*fenced=*/true));
  log::Warn("persist", "directory fenced",
            {{"dir", dir_}, {"epoch", std::to_string(new_epoch)}});
  return Status::Ok();
}

Result<std::vector<DataDir::TailEntry>> DataDir::TailSince(
    uint64_t after_lsn) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  uint64_t lsn = lsn_.load(std::memory_order_relaxed);
  if (after_lsn > lsn) {
    return Status::NotFound(
        StrFormat("follower lsn %llu is ahead of this directory (lsn %llu)",
                  static_cast<unsigned long long>(after_lsn),
                  static_cast<unsigned long long>(lsn)));
  }
  std::vector<TailEntry> entries;
  bool unstamped = false;
  Result<WalReplayStats> replayed =
      ReplayWal(wal_path_, [&](std::string_view payload) -> Status {
        DIRE_ASSIGN_OR_RETURN(WalRecord record, DecodeWalRecord(payload));
        if (!record.stamped) {
          unstamped = true;
          return Status::Ok();
        }
        entries.push_back(
            TailEntry{record.epoch, record.lsn, std::string(payload)});
        return Status::Ok();
      });
  if (!replayed.ok()) return replayed.status();
  if (unstamped) {
    return Status::NotFound(
        "WAL holds unstamped pre-replication records; snapshot transfer "
        "required");
  }
  // The live WAL covers (base, lsn], where base is where the last checkpoint
  // folded records away. A follower below base needs a snapshot.
  uint64_t base = entries.empty() ? lsn : entries.front().lsn - 1;
  if (after_lsn < base) {
    return Status::NotFound(
        StrFormat("WAL no longer covers lsn %llu (oldest live record is "
                  "%llu)",
                  static_cast<unsigned long long>(after_lsn),
                  static_cast<unsigned long long>(base + 1)));
  }
  std::vector<TailEntry> out;
  for (TailEntry& entry : entries) {
    if (entry.lsn > after_lsn) out.push_back(std::move(entry));
  }
  return out;
}

Status DataDir::InstallSnapshot(std::string_view snapshot_bytes,
                                uint64_t epoch, uint64_t lsn) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  // Validate the transfer into scratch space first: a corrupt image must not
  // destroy the (possibly still useful) local state.
  {
    Database scratch;
    Result<SnapshotLoadStats> probe =
        LoadSnapshot(&scratch, snapshot_bytes, SnapshotLoadOptions{});
    if (!probe.ok()) return probe.status();
  }
  // Install order is crash-safe by construction:
  //   1. Sentinel replstate (epoch 0): a crash anywhere past this point
  //      leaves a directory that declares its own state untrustworthy, so
  //      the next handshake forces another full resync.
  epoch_.store(0, std::memory_order_release);
  lsn_.store(0, std::memory_order_release);
  fenced_.store(false, std::memory_order_release);
  DIRE_RETURN_IF_ERROR(WriteReplStateLocked());
  //   2. The old WAL describes the discarded history.
  DIRE_RETURN_IF_ERROR(wal_->Reset());
  //   3. The image itself, atomically.
  DIRE_RETURN_IF_ERROR(io::AtomicWriteFile(snapshot_path_,
                                           snapshot_bytes));
  for (const std::string& name : db_.RelationNames()) db_.Drop(name);
  Result<SnapshotLoadStats> loaded =
      LoadSnapshot(&db_, snapshot_bytes, SnapshotLoadOptions{});
  if (!loaded.ok()) return loaded.status();
  recovered_ = RecoveredCheckpoint{};
  //   4. Adopt the primary's identity; only now does the directory vouch
  //      for itself again.
  epoch_.store(epoch, std::memory_order_release);
  lsn_.store(lsn, std::memory_order_release);
  DIRE_RETURN_IF_ERROR(WriteReplStateLocked());
  return StampLockLocked();
}

Status DataDir::Checkpoint(const SnapshotWriteOptions& opts) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  obs::Span span("persist.checkpoint", "persist");
  auto t0 = std::chrono::steady_clock::now();
  DIRE_RETURN_IF_ERROR(SaveSnapshotFile(db_, snapshot_path_, opts));
  // Replication identity must be durable before the WAL (whose stamps carry
  // it) is reset; written unconditionally so the failpoint hit counts of a
  // checkpoint stay deterministic.
  DIRE_RETURN_IF_ERROR(WriteReplStateLocked());
  // Only reached once the new snapshot is durable; a crash before this line
  // leaves the old snapshot plus a WAL that replays over it.
  Status reset = wal_->Reset();
  if (reset.ok()) {
    uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    obs::GetCounter("dire_checkpoints_total", "Checkpoints taken")->Add(1);
    obs::GetHistogram("dire_checkpoint_latency_us",
                      "Checkpoint wall time (snapshot write + WAL reset), "
                      "microseconds")
        ->Observe(us);
    span.Attr("latency_us", us);
  }
  return reset;
}

}  // namespace dire::storage
