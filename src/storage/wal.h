#ifndef DIRE_STORAGE_WAL_H_
#define DIRE_STORAGE_WAL_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace dire::storage {

// A per-database write-ahead log. EDB mutations between snapshots are
// appended here (and fsynced) before they are acknowledged, so a crash loses
// nothing that was confirmed durable; a checkpoint folds the log into the
// snapshot and resets it.
//
// On-disk framing, one record after another:
//
//   [u32 payload length, little endian][u32 CRC32C of payload][payload]
//
// A crash can only damage the *tail* of an append-only file, so replay
// accepts every record whose frame and checksum verify and stops at the
// first bad one — but only if the damage extends to the end of the file
// (short frame, short payload, or a checksum-failing final record). A bad
// record *followed by further bytes* is mid-file damage and replay refuses
// the log with kCorruption rather than silently dropping acknowledged
// records.
//
// Replay is idempotent: payloads describe set-semantics fact insertions, so
// records that were already folded into the snapshot re-apply harmlessly.
//
// Record payloads are text, tab-separated with io::EscapeTsvField fields
// (escaping makes payloads newline-free, which is what lets the replication
// layer ship them verbatim over the line protocol):
//   F<TAB>relation<TAB>value...   insert one fact (legacy, unstamped)
//   R<TAB>relation<TAB>value...   retract one fact (legacy, unstamped)
//   S<TAB>epoch<TAB>lsn<TAB>F|R<TAB>relation<TAB>value...
//                                 a stamped insert/retract: `epoch` is the
//                                 primary's failover generation and `lsn`
//                                 the per-directory log sequence number,
//                                 both decimal
//   S<TAB>epoch<TAB>lsn<TAB>E<TAB>promoted|fenced
//                                 an epoch control record: the directory
//                                 entered `epoch` by being promoted to
//                                 primary, or was fenced (sealed against
//                                 ever serving as primary at an older
//                                 epoch) by a failover
// Legacy records still decode (epoch/lsn report 0, `stamped` false), so
// data directories written before replication existed replay unchanged.
class Wal {
 public:
  // Opens (creating if needed) the log at `path` for appending.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path);
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Appends one framed record and fsyncs. On failure the tail may hold a
  // torn record; replay will drop it.
  Status Append(std::string_view payload);

  // Truncates the log to empty (after its contents were checkpointed).
  Status Reset();

  // Truncates the log to `size` bytes — used after a replay that found a
  // torn tail, so later appends don't land after garbage.
  Status TruncateTo(uint64_t size);

  const std::string& path() const { return path_; }

 private:
  Wal(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_;
};

struct WalReplayStats {
  // Records whose frame and checksum verified and were applied.
  size_t records = 0;
  // Byte offset of the end of the last good record; the file is valid up to
  // here.
  uint64_t valid_bytes = 0;
  // True if a torn tail (crash damage reaching EOF) was dropped.
  bool dropped_torn_tail = false;
  // Bytes dropped with the torn tail.
  uint64_t dropped_bytes = 0;
};

// Replays every intact record of the log at `path` through `apply`, in
// order. A missing file is an empty log (OK, zero records). See the class
// comment for the torn-tail / corruption distinction. An `apply` error
// aborts the replay and is returned as-is.
Result<WalReplayStats> ReplayWal(
    const std::string& path,
    const std::function<Status(std::string_view payload)>& apply);

// Helpers for the fact-insertion payload (used by DataDir and tests).
std::string EncodeFactRecord(const std::string& relation,
                             const std::vector<std::string>& values);
// Same framing with an R op: durably retract one base fact.
std::string EncodeRetractRecord(const std::string& relation,
                                const std::vector<std::string>& values);
// Stamped variants carrying the replication (epoch, lsn) identity.
std::string EncodeStampedFactRecord(uint64_t epoch, uint64_t lsn,
                                    const std::string& relation,
                                    const std::vector<std::string>& values);
std::string EncodeStampedRetractRecord(
    uint64_t epoch, uint64_t lsn, const std::string& relation,
    const std::vector<std::string>& values);
// An epoch control record: `fenced` seals the directory against serving as
// primary; otherwise it records a promotion into `epoch`.
std::string EncodeEpochRecord(uint64_t epoch, uint64_t lsn, bool fenced);

struct FactRecord {
  std::string relation;
  std::vector<std::string> values;
};

// Op-aware record view for replay: inserts, retractions, and epoch control
// records in WAL order.
struct WalRecord {
  enum class Op { kInsert, kRetract, kEpoch };
  Op op = Op::kInsert;
  std::string relation;
  std::vector<std::string> values;
  // Replication stamp; 0/0 with `stamped` false on legacy records.
  bool stamped = false;
  uint64_t epoch = 0;
  uint64_t lsn = 0;
  // Op::kEpoch only: the record seals (fences) the directory rather than
  // promoting it.
  bool fenced = false;
};
Result<WalRecord> DecodeWalRecord(std::string_view payload);
Result<FactRecord> DecodeFactRecord(std::string_view payload);

}  // namespace dire::storage

#endif  // DIRE_STORAGE_WAL_H_
