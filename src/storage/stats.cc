#include "storage/stats.h"

#include <cmath>

namespace dire::storage {

size_t ColumnSketch::DistinctEstimate() const {
  if (set_bits_ == 0) return 0;
  if (set_bits_ >= kBits) return kSaturatedEstimate;
  // Linear counting: with m slots and e of them empty, the maximum-
  // likelihood distinct count is m * ln(m / e).
  double m = static_cast<double>(kBits);
  double empty = static_cast<double>(kBits - set_bits_);
  double estimate = m * std::log(m / empty);
  // Never report fewer distinct values than occupied slots: each set bit
  // proves at least one distinct value, and for small counts (where every
  // value lands in its own slot) this makes the estimate exact.
  if (estimate < static_cast<double>(set_bits_)) {
    return set_bits_;
  }
  return static_cast<size_t>(estimate + 0.5);
}

}  // namespace dire::storage
