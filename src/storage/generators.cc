#include "storage/generators.h"

#include <set>
#include <utility>

#include "base/string_util.h"

namespace dire::storage {
namespace {

std::string Node(int i) { return StrFormat("n%d", i); }

Status AddEdge(Database* db, const std::string& rel, int a, int b) {
  return db->AddRow(rel, {Node(a), Node(b)});
}

// Creates an empty relation if absent, so generators that may emit zero rows
// still leave a queryable relation behind.
Status EnsureRelation(Database* db, const std::string& rel, size_t arity) {
  Result<Relation*> r = db->GetOrCreate(rel, arity);
  return r.ok() ? Status::Ok() : r.status();
}

}  // namespace

Status MakeChain(Database* db, const std::string& rel, int n) {
  DIRE_RETURN_IF_ERROR(EnsureRelation(db, rel, 2));
  for (int i = 0; i + 1 < n; ++i) {
    DIRE_RETURN_IF_ERROR(AddEdge(db, rel, i, i + 1));
  }
  return Status::Ok();
}

Status MakeCycle(Database* db, const std::string& rel, int n) {
  DIRE_RETURN_IF_ERROR(MakeChain(db, rel, n));
  if (n > 1) DIRE_RETURN_IF_ERROR(AddEdge(db, rel, n - 1, 0));
  return Status::Ok();
}

Status MakeTree(Database* db, const std::string& rel, int branching,
                int depth) {
  if (branching < 1) {
    return Status::InvalidArgument("branching must be >= 1");
  }
  // Nodes are numbered breadth-first; node i's children are
  // i*branching+1 ... i*branching+branching.
  int level_start = 0;
  int level_size = 1;
  for (int d = 0; d < depth; ++d) {
    for (int i = level_start; i < level_start + level_size; ++i) {
      for (int c = 1; c <= branching; ++c) {
        DIRE_RETURN_IF_ERROR(AddEdge(db, rel, i, i * branching + c));
      }
    }
    level_start = level_start * branching + 1;
    level_size *= branching;
  }
  return Status::Ok();
}

Status MakeRandomGraph(Database* db, const std::string& rel, int n, int m,
                       Rng* rng) {
  if (n < 2) return Status::InvalidArgument("need at least 2 nodes");
  int64_t max_edges = static_cast<int64_t>(n) * (n - 1);
  if (m > max_edges) {
    return Status::InvalidArgument("more edges requested than possible");
  }
  std::set<std::pair<int, int>> edges;
  while (static_cast<int>(edges.size()) < m) {
    int a = static_cast<int>(rng->Uniform(static_cast<uint64_t>(n)));
    int b = static_cast<int>(rng->Uniform(static_cast<uint64_t>(n)));
    if (a == b) continue;
    edges.emplace(a, b);
  }
  for (const auto& [a, b] : edges) {
    DIRE_RETURN_IF_ERROR(AddEdge(db, rel, a, b));
  }
  return Status::Ok();
}

Status MakeGrid(Database* db, const std::string& rel, int w, int h) {
  auto id = [w](int x, int y) { return y * w + x; };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) {
        DIRE_RETURN_IF_ERROR(AddEdge(db, rel, id(x, y), id(x + 1, y)));
      }
      if (y + 1 < h) {
        DIRE_RETURN_IF_ERROR(AddEdge(db, rel, id(x, y), id(x, y + 1)));
      }
    }
  }
  return Status::Ok();
}

Status MakeConsumerData(Database* db, int num_people, int num_products,
                        int likes_per_person, double trendy_fraction,
                        Rng* rng) {
  if (num_products < 1) {
    return Status::InvalidArgument("need at least one product");
  }
  for (int p = 0; p < num_people; ++p) {
    std::string person = StrFormat("p%d", p);
    std::set<int> chosen;
    int want = std::min(likes_per_person, num_products);
    while (static_cast<int>(chosen.size()) < want) {
      chosen.insert(
          static_cast<int>(rng->Uniform(static_cast<uint64_t>(num_products))));
    }
    for (int item : chosen) {
      DIRE_RETURN_IF_ERROR(
          db->AddRow("likes", {person, StrFormat("item%d", item)}));
    }
    if (rng->Chance(trendy_fraction)) {
      DIRE_RETURN_IF_ERROR(db->AddRow("trendy", {person}));
    }
  }
  // Ensure both relations exist even when empty (e.g. trendy_fraction == 0).
  DIRE_RETURN_IF_ERROR(EnsureRelation(db, "likes", 2));
  DIRE_RETURN_IF_ERROR(EnsureRelation(db, "trendy", 1));
  return Status::Ok();
}

Status MakeHoistingData(Database* db, int n, int m, int num_b, Rng* rng) {
  DIRE_RETURN_IF_ERROR(MakeRandomGraph(db, "e", n, m, rng));
  for (int i = 0; i < num_b; ++i) {
    int a = static_cast<int>(rng->Uniform(static_cast<uint64_t>(n)));
    int b = static_cast<int>(rng->Uniform(static_cast<uint64_t>(n)));
    DIRE_RETURN_IF_ERROR(db->AddRow("b", {Node(a), Node(b)}));
  }
  return Status::Ok();
}

}  // namespace dire::storage
