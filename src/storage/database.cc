#include "storage/database.h"

#include <algorithm>

#include "base/failpoints.h"
#include "base/obs.h"
#include "base/string_util.h"

namespace dire::storage {

Result<Relation*> Database::GetOrCreate(const std::string& name,
                                        size_t arity) {
  auto it = relations_.find(name);
  if (it != relations_.end()) {
    if (it->second->arity() != arity) {
      return Status::InvalidArgument(
          StrFormat("relation '%s' exists with arity %zu, requested %zu",
                    name.c_str(), it->second->arity(), arity));
    }
    return it->second.get();
  }
  DIRE_FAILPOINT("storage.allocate_relation");
  auto rel = std::make_unique<Relation>(name, arity);
  Relation* ptr = rel.get();
  relations_.emplace(name, std::move(rel));
  return ptr;
}

Relation* Database::Find(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Status Database::AddFact(const ast::Atom& atom) {
  Tuple t;
  t.reserve(atom.args.size());
  for (const ast::Term& term : atom.args) {
    if (term.IsVariable()) {
      return Status::InvalidArgument("fact contains a variable: " +
                                     atom.ToString());
    }
    t.push_back(symbols_.Intern(term.text()));
  }
  DIRE_ASSIGN_OR_RETURN(Relation * rel,
                        GetOrCreate(atom.predicate, atom.arity()));
  DIRE_FAILPOINT("storage.relation_insert");
  if (rel->Insert(t) && obs::kEnabled) {
    static obs::Counter* facts = obs::GetCounter(
        "dire_storage_facts_total", "Base facts loaded into EDB relations");
    facts->Add(1);
  }
  return Status::Ok();
}

Status Database::LoadFacts(const ast::Program& program) {
  for (const ast::Rule& r : program.rules) {
    if (r.IsFact()) DIRE_RETURN_IF_ERROR(AddFact(r.head));
  }
  return Status::Ok();
}

Status Database::AddRow(const std::string& name,
                        const std::vector<std::string>& values) {
  Tuple t;
  t.reserve(values.size());
  for (const std::string& v : values) t.push_back(symbols_.Intern(v));
  DIRE_ASSIGN_OR_RETURN(Relation * rel, GetOrCreate(name, values.size()));
  rel->Insert(t);
  return Status::Ok();
}

Result<bool> Database::RemoveRow(const std::string& name,
                                 const std::vector<std::string>& values) {
  Relation* rel = Find(name);
  if (rel == nullptr) return false;
  if (rel->arity() != values.size()) {
    return Status::InvalidArgument(
        StrFormat("relation '%s' has arity %zu, retraction has %zu values",
                  name.c_str(), rel->arity(), values.size()));
  }
  Tuple target;
  target.reserve(values.size());
  for (const std::string& v : values) {
    ValueId id = symbols_.Find(v);
    if (id == SymbolTable::kMissing) return false;  // Never interned.
    target.push_back(id);
  }
  return rel->EraseRow(target);
}

size_t Database::RemoveMatching(const std::string& name,
                                const Relation& drop) {
  Relation* rel = Find(name);
  if (rel == nullptr || drop.empty()) return 0;
  return rel->EraseMatching(drop);
}

bool Database::Drop(const std::string& name) {
  return relations_.erase(name) != 0;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel->size();
  return n;
}

size_t Database::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& [name, rel] : relations_) bytes += rel->ApproxBytes();
  return bytes;
}

size_t Database::ArenaBytes() const {
  size_t bytes = 0;
  for (const auto& [name, rel] : relations_) bytes += rel->ArenaBytes();
  return bytes;
}

std::string Database::DumpRelation(const std::string& name) const {
  const Relation* rel = Find(name);
  if (rel == nullptr) return "";
  std::vector<std::string> lines;
  lines.reserve(rel->size());
  for (RowRef t : rel->rows()) {
    std::string line = name;
    line += '(';
    for (size_t i = 0; i < t.size(); ++i) {
      if (i != 0) line += ',';
      line += symbols_.Name(t[i]);
    }
    line += ')';
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace dire::storage
