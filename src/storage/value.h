#ifndef DIRE_STORAGE_VALUE_H_
#define DIRE_STORAGE_VALUE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/hash.h"

namespace dire::storage {

// Interned constant identifier. Tuples store ValueIds, never strings, so
// joins and hashing are integer operations.
using ValueId = uint32_t;

// A database tuple: a fixed-arity vector of interned values. Owning form,
// used where a tuple outlives the storage it came from (query answers,
// provenance records, test fixtures).
using Tuple = std::vector<ValueId>;

// Non-owning view of one stored row (or any contiguous tuple). The arena
// row store hands these out; a Tuple converts implicitly, so call sites
// that still materialize are source-compatible with span-based ones.
using RowRef = std::span<const ValueId>;

inline bool RowEquals(RowRef a, RowRef b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin());
}

// Transparent hash/equality over tuples, so unordered containers keyed by
// Tuple can be probed with a RowRef without materializing a key — the
// probe-side allocation the old per-lookup `Tuple key` paid.
struct TupleViewHash {
  using is_transparent = void;
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(HashSpan(t.data(), t.size()));
  }
  size_t operator()(RowRef r) const {
    return static_cast<size_t>(HashSpan(r.data(), r.size()));
  }
};
struct TupleViewEq {
  using is_transparent = void;
  bool operator()(const Tuple& a, const Tuple& b) const { return a == b; }
  bool operator()(RowRef a, const Tuple& b) const {
    return RowEquals(a, RowRef(b));
  }
  bool operator()(const Tuple& a, RowRef b) const {
    return RowEquals(RowRef(a), b);
  }
  bool operator()(RowRef a, RowRef b) const { return RowEquals(a, b); }
};

// Bidirectional string <-> ValueId interning table. One per Database.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the id for `text`, interning it on first use. Lookups are
  // heterogeneous (transparent string_view hashing): only an intern miss
  // materializes a std::string.
  ValueId Intern(std::string_view text) {
    auto it = ids_.find(text);
    if (it != ids_.end()) return it->second;
    ValueId id = static_cast<ValueId>(names_.size());
    names_.emplace_back(text);
    ids_.emplace(names_.back(), id);
    return id;
  }

  // Returns the id for `text` if already interned, or kMissing. Never
  // allocates.
  static constexpr ValueId kMissing = UINT32_MAX;
  ValueId Find(std::string_view text) const {
    auto it = ids_.find(text);
    return it == ids_.end() ? kMissing : it->second;
  }

  // Requires: id was returned by Intern.
  const std::string& Name(ValueId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, ValueId, StringHash, std::equal_to<>> ids_;
  std::vector<std::string> names_;
};

}  // namespace dire::storage

#endif  // DIRE_STORAGE_VALUE_H_
