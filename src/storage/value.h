#ifndef DIRE_STORAGE_VALUE_H_
#define DIRE_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dire::storage {

// Interned constant identifier. Tuples store ValueIds, never strings, so
// joins and hashing are integer operations.
using ValueId = uint32_t;

// Bidirectional string <-> ValueId interning table. One per Database.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the id for `text`, interning it on first use.
  ValueId Intern(std::string_view text) {
    auto it = ids_.find(std::string(text));
    if (it != ids_.end()) return it->second;
    ValueId id = static_cast<ValueId>(names_.size());
    names_.emplace_back(text);
    ids_.emplace(names_.back(), id);
    return id;
  }

  // Returns the id for `text` if already interned, or kMissing.
  static constexpr ValueId kMissing = UINT32_MAX;
  ValueId Find(std::string_view text) const {
    auto it = ids_.find(std::string(text));
    return it == ids_.end() ? kMissing : it->second;
  }

  // Requires: id was returned by Intern.
  const std::string& Name(ValueId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, ValueId> ids_;
  std::vector<std::string> names_;
};

// A database tuple: a fixed-arity vector of interned values.
using Tuple = std::vector<ValueId>;

}  // namespace dire::storage

#endif  // DIRE_STORAGE_VALUE_H_
