#ifndef DIRE_STORAGE_PERSIST_H_
#define DIRE_STORAGE_PERSIST_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "storage/database.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace dire::storage {

// Checkpoint state recovered from a snapshot's @meta section: where a
// crashed evaluation stood when it last checkpointed. Empty/default when the
// directory holds no checkpoint metadata (fresh directory or plain EDB
// snapshot) — evaluation then starts from stratum 0 over whatever facts were
// recovered, which is always sound (Datalog is monotone; any recovered
// prefix only skips re-derivation work).
struct RecoveredCheckpoint {
  bool has_meta = false;
  // Index of the stratum to (re)start; strata before it are complete and
  // their derived relations are part of the recovered database.
  int stratum = 0;
  // Completed semi-naive rounds within that stratum (0 when the stratum
  // should restart from its merged full state).
  int rounds = 0;
  // CRC32C of the program text the checkpoint belongs to; recovery refuses
  // to resume under a different program.
  bool has_program_crc = false;
  uint32_t program_crc = 0;
  // The checkpointed semi-naive delta relations of the current stratum,
  // keyed by predicate, as value strings. Present only for checkpoints taken
  // at a clean round boundary; without them the stratum restarts from the
  // merged state (still correct, just re-derives one round's frontier).
  std::map<std::string, std::vector<std::vector<std::string>>> deltas;
};

// A durable home for one database: `<dir>/snapshot.dire` (v2 checksummed
// snapshot, atomically replaced) plus `<dir>/wal.log` (fact appends since
// the snapshot). Opening replays log over snapshot; `Checkpoint` folds
// everything back into a fresh snapshot and resets the log.
//
// Commit protocol and why it is crash-safe at every step:
//   1. snapshot.dire is replaced atomically (temp + fsync + rename), so a
//      crash leaves either the old or the new snapshot, never a torn one.
//   2. wal.log is truncated only after the new snapshot is durable. A crash
//      between (1) and (2) leaves WAL records that are already folded into
//      the snapshot; replay re-applies them idempotently (set semantics).
//   3. WAL appends are fsynced before being acknowledged; a crash mid-append
//      leaves a torn tail that replay drops (it was never acknowledged).
//
// Single-writer exclusion: Open acquires `<dir>/LOCK`, a file holding the
// owner's PID (line 1) and the directory's replication epoch (line 2), and
// the destructor releases it. A second Open while the owner is alive fails
// with a clear diagnostic and touches nothing (fail-closed); a lock left
// behind by a SIGKILLed process is detected by PID liveness, logged, and
// broken — so `recover` after a crash, or run twice, always either succeeds
// or explains itself. A stale lock whose epoch exceeds the directory's
// durable epoch marks the directory fenced (a torn fence is fail-closed).
//
// Replication identity: every directory carries a monotone (epoch, lsn)
// pair. `epoch` is the failover generation (bumped by Promote, sealed by
// Fence); `lsn` numbers every WAL record ever appended here. The durable
// base lives in `<dir>/replstate` (atomically replaced; deliberately NOT in
// the snapshot, so snapshots stay a pure function of the data and remain
// byte-identical across primaries and replicas); WAL records carry their
// own stamps, so recovery takes max(replstate, stamps) and no crash window
// can regress the lsn.
class DataDir {
 public:
  // Opens `dir` (creating it, an empty snapshot state, and the WAL when
  // absent), acquires the directory lock, loads the snapshot, replays the
  // log, and truncates any torn WAL tail. `recover_tail` additionally
  // tolerates an EOF-truncated snapshot (for snapshots produced by foreign,
  // non-atomic writers); the default accepts only committed snapshots,
  // which is the only thing our own writer can leave behind.
  static Result<std::unique_ptr<DataDir>> Open(const std::string& dir,
                                               bool recover_tail = true);
  ~DataDir();

  Database* db() { return &db_; }
  const std::string& dir() const { return dir_; }
  const std::string& snapshot_path() const { return snapshot_path_; }
  const std::string& lock_path() const { return lock_path_; }
  const std::string& replstate_path() const { return replstate_path_; }
  const RecoveredCheckpoint& recovered() const { return recovered_; }

  // One data record replayed from the WAL during Open, with whether it
  // actually changed the database (AppendFact/RetractFact journal
  // unconditionally, so the log may hold inserts of already-present tuples
  // and retractions of absent ones; `effective` is computed against the
  // database state at replay time). Epoch control records are not listed.
  struct WalTailOp {
    bool insert = false;
    bool effective = false;
    std::string relation;
    std::vector<std::string> values;
  };

  // The data records replayed over the snapshot, in WAL order. Bounded by
  // the checkpoint cadence (checkpointing resets the log).
  const std::vector<WalTailOp>& wal_tail() const { return wal_tail_; }

  // The checkpoint state as the snapshot recorded it, BEFORE WAL replay.
  // recovered() is cleared whenever any record replays (the checkpoint's
  // notion of evaluation progress is stale for the merged state); recovery
  // by incremental maintenance instead starts from this checkpointed
  // fixpoint and applies the net effect of wal_tail() to the derived
  // relations, which is why the pre-replay copy is kept.
  const RecoveredCheckpoint& checkpoint_at_snapshot() const {
    return checkpoint_at_snapshot_;
  }

  // Replication identity, readable without the commit mutex (writers update
  // under it). epoch() == 0 marks a directory mid-resync: its local state
  // must not be trusted for resumable streaming.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  uint64_t lsn() const { return lsn_.load(std::memory_order_acquire); }
  bool fenced() const { return fenced_.load(std::memory_order_acquire); }

  // The durable record a local write produced, for shipping to followers.
  struct AppendedRecord {
    uint64_t epoch = 0;
    uint64_t lsn = 0;
    std::string payload;
  };

  // Durably inserts one fact: WAL append (fsync) first, then the in-memory
  // insert. On a WAL error the database is not mutated. Thread-safe against
  // concurrent Append/Retract/Checkpoint calls (one internal commit mutex);
  // the caller must still serialize against readers of db(). Refused on a
  // fenced directory (a deposed primary must not take writes).
  Status AppendFact(const std::string& relation,
                    const std::vector<std::string>& values,
                    AppendedRecord* appended = nullptr);

  // Durably retracts one base fact (WAL `R` record first, then the
  // in-memory removal). Sets *removed to whether the fact was present.
  // Same thread-safety contract as AppendFact.
  Status RetractFact(const std::string& relation,
                     const std::vector<std::string>& values, bool* removed,
                     AppendedRecord* appended = nullptr);

  // Follower side: appends an already-stamped record received from the
  // primary (payload verbatim, `record` its decoding) and applies it.
  // Enforces stream contiguity (record.lsn == lsn()+1) and rejects records
  // from an epoch older than the directory's — a gap or stale record means
  // the stream diverged and the caller must full-resync. *mutated reports
  // whether the database may have changed (false for no-op retractions and
  // epoch control records).
  Status AppendReplicated(std::string_view payload, const WalRecord& record,
                          bool* mutated);

  // Bumps the directory into `new_epoch` as the new primary: appends a
  // durable `promoted` control record, persists replstate, restamps LOCK.
  // Refused if new_epoch <= epoch() or the directory is fenced (a fenced
  // replica's state may have diverged; it must re-sync first).
  Status Promote(uint64_t new_epoch);

  // Seals the directory at `new_epoch`: after this, a primary-mode open
  // fails closed and writes are refused, so a deposed primary that wakes up
  // cannot split-brain. Idempotent for an already-fenced directory at the
  // same or lower epoch.
  Status Fence(uint64_t new_epoch);

  // Primary side: the stamped records with lsn > after_lsn still present in
  // the live WAL, for resuming a follower without a snapshot transfer.
  // Fails (NotFound) when the WAL no longer covers after_lsn — records were
  // folded by a checkpoint, or predate stamping — in which case the caller
  // falls back to shipping a full snapshot.
  struct TailEntry {
    uint64_t epoch = 0;
    uint64_t lsn = 0;
    std::string payload;
  };
  Result<std::vector<TailEntry>> TailSince(uint64_t after_lsn);

  // Follower side, full resync: replaces the database and snapshot with
  // `snapshot_bytes` (a SaveSnapshot image from the primary), resets the
  // WAL, and adopts (epoch, lsn). Crash-safe: a sentinel replstate (epoch
  // 0) is committed first, so a crash mid-install forces the next handshake
  // into another full resync instead of trusting half-installed state.
  // Clears a fence (the adopted state is the new primary's, not the
  // diverged local history).
  Status InstallSnapshot(std::string_view snapshot_bytes, uint64_t epoch,
                         uint64_t lsn);

  // Atomically replaces the snapshot with the current database contents plus
  // `opts` (checkpoint meta and delta sections), persists replstate, then
  // resets the WAL. On failure the previous snapshot+WAL state is still
  // recoverable.
  Status Checkpoint(const SnapshotWriteOptions& opts = {});

 private:
  explicit DataDir(std::string dir)
      : dir_(std::move(dir)),
        snapshot_path_(dir_ + "/snapshot.dire"),
        wal_path_(dir_ + "/wal.log"),
        lock_path_(dir_ + "/LOCK"),
        replstate_path_(dir_ + "/replstate") {}

  // Creates lock_path_ with O_EXCL, breaking a stale (dead-PID) lock.
  Status AcquireLock();
  // Checks a relation/arity pair against the live schema BEFORE the WAL
  // write, so a mismatched append can never leave a poison record that
  // breaks every later replay.
  Status CheckWritable(const std::string& relation, size_t arity) const;
  // Persists (epoch, lsn, fenced) to replstate_path_; caller holds
  // commit_mu_.
  Status WriteReplStateLocked();
  // Rewrites the owned LOCK file as "<pid>\n<epoch>\n".
  Status StampLockLocked();
  // Appends an epoch control record and persists it everywhere (WAL,
  // replstate, LOCK); caller holds commit_mu_.
  Status ControlRecordLocked(uint64_t new_epoch, bool fenced);

  std::string dir_;
  std::string snapshot_path_;
  std::string wal_path_;
  std::string lock_path_;
  std::string replstate_path_;
  bool owns_lock_ = false;
  // Epoch found in a stale lock we broke during AcquireLock; cross-checked
  // against the recovered epoch to detect a torn fence.
  uint64_t stale_lock_epoch_ = 0;
  // Serializes the durable commit protocol (WAL appends and snapshot/WAL
  // swaps) across threads. Readers of db_ are NOT covered; the server
  // layers a shared_mutex above this.
  std::mutex commit_mu_;
  Database db_;
  std::unique_ptr<Wal> wal_;
  RecoveredCheckpoint recovered_;
  RecoveredCheckpoint checkpoint_at_snapshot_;
  std::vector<WalTailOp> wal_tail_;
  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> lsn_{0};
  std::atomic<bool> fenced_{false};
};

// The durable replication base of a data directory (see DataDir): what the
// directory's (epoch, lsn, fenced) identity was at the last checkpoint or
// control-record append. Exposed for the offline `verify` scrub.
struct ReplState {
  uint64_t epoch = 1;
  uint64_t lsn = 0;
  bool fenced = false;
};
Result<ReplState> ParseReplState(std::string_view body);
std::string FormatReplState(const ReplState& state);

// Name prefix of snapshot sections that hold checkpointed semi-naive deltas
// rather than real relations ("$delta:" + predicate). '$' cannot appear in a
// parsed predicate name, so these never collide with program relations.
inline constexpr char kDeltaSectionPrefix[] = "$delta:";

// @meta keys used by checkpoints.
inline constexpr char kMetaStratum[] = "stratum";
inline constexpr char kMetaRounds[] = "rounds";
inline constexpr char kMetaProgramCrc[] = "program_crc";

// Basename of the replication-state file inside a data directory.
inline constexpr char kReplStateFile[] = "replstate";

}  // namespace dire::storage

#endif  // DIRE_STORAGE_PERSIST_H_
