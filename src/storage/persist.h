#ifndef DIRE_STORAGE_PERSIST_H_
#define DIRE_STORAGE_PERSIST_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/result.h"
#include "storage/database.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace dire::storage {

// Checkpoint state recovered from a snapshot's @meta section: where a
// crashed evaluation stood when it last checkpointed. Empty/default when the
// directory holds no checkpoint metadata (fresh directory or plain EDB
// snapshot) — evaluation then starts from stratum 0 over whatever facts were
// recovered, which is always sound (Datalog is monotone; any recovered
// prefix only skips re-derivation work).
struct RecoveredCheckpoint {
  bool has_meta = false;
  // Index of the stratum to (re)start; strata before it are complete and
  // their derived relations are part of the recovered database.
  int stratum = 0;
  // Completed semi-naive rounds within that stratum (0 when the stratum
  // should restart from its merged full state).
  int rounds = 0;
  // CRC32C of the program text the checkpoint belongs to; recovery refuses
  // to resume under a different program.
  bool has_program_crc = false;
  uint32_t program_crc = 0;
  // The checkpointed semi-naive delta relations of the current stratum,
  // keyed by predicate, as value strings. Present only for checkpoints taken
  // at a clean round boundary; without them the stratum restarts from the
  // merged state (still correct, just re-derives one round's frontier).
  std::map<std::string, std::vector<std::vector<std::string>>> deltas;
};

// A durable home for one database: `<dir>/snapshot.dire` (v2 checksummed
// snapshot, atomically replaced) plus `<dir>/wal.log` (fact appends since
// the snapshot). Opening replays log over snapshot; `Checkpoint` folds
// everything back into a fresh snapshot and resets the log.
//
// Commit protocol and why it is crash-safe at every step:
//   1. snapshot.dire is replaced atomically (temp + fsync + rename), so a
//      crash leaves either the old or the new snapshot, never a torn one.
//   2. wal.log is truncated only after the new snapshot is durable. A crash
//      between (1) and (2) leaves WAL records that are already folded into
//      the snapshot; replay re-applies them idempotently (set semantics).
//   3. WAL appends are fsynced before being acknowledged; a crash mid-append
//      leaves a torn tail that replay drops (it was never acknowledged).
//
// Single-writer exclusion: Open acquires `<dir>/LOCK`, a file holding the
// owner's PID, and the destructor releases it. A second Open while the
// owner is alive fails with a clear diagnostic and touches nothing
// (fail-closed); a lock left behind by a SIGKILLed process is detected by
// PID liveness, logged, and broken — so `recover` after a crash, or run
// twice, always either succeeds or explains itself.
class DataDir {
 public:
  // Opens `dir` (creating it, an empty snapshot state, and the WAL when
  // absent), acquires the directory lock, loads the snapshot, replays the
  // log, and truncates any torn WAL tail. `recover_tail` additionally
  // tolerates an EOF-truncated snapshot (for snapshots produced by foreign,
  // non-atomic writers); the default accepts only committed snapshots,
  // which is the only thing our own writer can leave behind.
  static Result<std::unique_ptr<DataDir>> Open(const std::string& dir,
                                               bool recover_tail = true);
  ~DataDir();

  Database* db() { return &db_; }
  const std::string& dir() const { return dir_; }
  const std::string& snapshot_path() const { return snapshot_path_; }
  const std::string& lock_path() const { return lock_path_; }
  const RecoveredCheckpoint& recovered() const { return recovered_; }

  // Durably inserts one fact: WAL append (fsync) first, then the in-memory
  // insert. On a WAL error the database is not mutated. Thread-safe against
  // concurrent Append/Retract/Checkpoint calls (one internal commit mutex);
  // the caller must still serialize against readers of db().
  Status AppendFact(const std::string& relation,
                    const std::vector<std::string>& values);

  // Durably retracts one base fact (WAL `R` record first, then the
  // in-memory removal). Sets *removed to whether the fact was present.
  // Same thread-safety contract as AppendFact.
  Status RetractFact(const std::string& relation,
                     const std::vector<std::string>& values, bool* removed);

  // Atomically replaces the snapshot with the current database contents plus
  // `opts` (checkpoint meta and delta sections), then resets the WAL. On
  // failure the previous snapshot+WAL state is still recoverable.
  Status Checkpoint(const SnapshotWriteOptions& opts = {});

 private:
  explicit DataDir(std::string dir)
      : dir_(std::move(dir)),
        snapshot_path_(dir_ + "/snapshot.dire"),
        wal_path_(dir_ + "/wal.log"),
        lock_path_(dir_ + "/LOCK") {}

  // Creates lock_path_ with O_EXCL, breaking a stale (dead-PID) lock.
  Status AcquireLock();

  std::string dir_;
  std::string snapshot_path_;
  std::string wal_path_;
  std::string lock_path_;
  bool owns_lock_ = false;
  // Serializes the durable commit protocol (WAL appends and snapshot/WAL
  // swaps) across threads. Readers of db_ are NOT covered; the server
  // layers a shared_mutex above this.
  std::mutex commit_mu_;
  Database db_;
  std::unique_ptr<Wal> wal_;
  RecoveredCheckpoint recovered_;
};

// Name prefix of snapshot sections that hold checkpointed semi-naive deltas
// rather than real relations ("$delta:" + predicate). '$' cannot appear in a
// parsed predicate name, so these never collide with program relations.
inline constexpr char kDeltaSectionPrefix[] = "$delta:";

// @meta keys used by checkpoints.
inline constexpr char kMetaStratum[] = "stratum";
inline constexpr char kMetaRounds[] = "rounds";
inline constexpr char kMetaProgramCrc[] = "program_crc";

}  // namespace dire::storage

#endif  // DIRE_STORAGE_PERSIST_H_
