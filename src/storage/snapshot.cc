#include "storage/snapshot.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <set>

#include "base/io.h"
#include "base/obs.h"
#include "base/string_util.h"

namespace dire::storage {

namespace {

constexpr std::string_view kHeaderV1 = "# dire snapshot v1";
constexpr std::string_view kHeaderV2 = "# dire snapshot v2";

// Ceiling on a declared section arity. Real programs have single-digit
// arities; anything near this limit in a snapshot is damage, and bounding it
// keeps a corrupt directive from driving huge allocations.
constexpr size_t kMaxArity = 4096;

// Walks `text` line by line, tracking the byte offset and 1-based line
// number. Distinguishes a complete line (terminated by '\n') from a partial
// final line, which is how an EOF-truncated tail manifests.
class LineCursor {
 public:
  explicit LineCursor(std::string_view text) : text_(text) {}

  bool Next(std::string_view* line, bool* complete) {
    if (pos_ >= text_.size()) return false;
    ++line_no_;
    size_t nl = text_.find('\n', pos_);
    if (nl == std::string_view::npos) {
      *line = text_.substr(pos_);
      pos_ = text_.size();
      *complete = false;
    } else {
      *line = text_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
      *complete = true;
    }
    return true;
  }

  size_t pos() const { return pos_; }
  size_t line_no() const { return line_no_; }
  bool AtEof() const { return pos_ >= text_.size(); }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  size_t line_no_ = 0;
};

// Parses a nonnegative integer field of a directive; nullopt on garbage.
std::optional<size_t> ParseSize(std::string_view field) {
  if (field.empty() || field.size() > 18) return std::nullopt;
  size_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  return value;
}

// One parsed-and-verified relation section, staged before insertion.
struct Section {
  std::string name;
  size_t arity = 0;
  std::vector<Tuple> tuples;  // Interned in the staging database.
};

Status ParseSectionBody(Database* staging, std::string_view body,
                        size_t first_line_no, Section* section) {
  size_t line_no = first_line_no;
  LineCursor cur(body);
  std::string_view line;
  bool complete = false;
  while (cur.Next(&line, &complete)) {
    if (section->arity == 0) {
      if (line != "()") {
        return Status::Corruption(
            StrFormat("line %zu: expected '()' for zero-arity tuple in "
                      "relation '%s'",
                      line_no, section->name.c_str()));
      }
      section->tuples.push_back({});
      ++line_no;
      continue;
    }
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != section->arity) {
      return Status::Corruption(
          StrFormat("line %zu: relation '%s' expects %zu fields, found %zu",
                    line_no, section->name.c_str(), section->arity,
                    fields.size()));
    }
    Tuple t;
    t.reserve(fields.size());
    for (const std::string& f : fields) {
      Result<std::string> raw = io::UnescapeTsvField(f);
      if (!raw.ok()) {
        return Status::Corruption(StrFormat(
            "line %zu: relation '%s': %s", line_no, section->name.c_str(),
            raw.status().message().c_str()));
      }
      t.push_back(staging->symbols().Intern(*raw));
    }
    section->tuples.push_back(std::move(t));
    ++line_no;
  }
  return Status::Ok();
}

// Inserts the verified sections into `staging`.
Status CommitSections(Database* staging, std::vector<Section> sections,
                      SnapshotLoadStats* stats) {
  for (Section& section : sections) {
    DIRE_ASSIGN_OR_RETURN(Relation * rel,
                          staging->GetOrCreate(section.name, section.arity));
    rel->Reserve(section.tuples.size());
    for (Tuple& t : section.tuples) {
      if (rel->Insert(t)) ++stats->tuples;
    }
    ++stats->relations;
  }
  return Status::Ok();
}

Result<SnapshotLoadStats> ParseV2(Database* staging, std::string_view text,
                                  const SnapshotLoadOptions& opts) {
  SnapshotLoadStats stats;
  stats.version = 2;
  LineCursor cur(text);
  std::string_view line;
  bool complete = false;
  cur.Next(&line, &complete);  // Header, validated by the caller.

  std::set<std::string> seen_names;
  std::vector<Section> committed_sections;
  // Set when the file ends before a valid commit record: the torn tail a
  // crashed writer leaves. Anything else wrong is a hard error.
  std::optional<std::string> torn;
  bool committed = false;

  while (!committed) {
    size_t directive_start = cur.pos();
    if (!cur.Next(&line, &complete)) {
      torn = "file ends before the commit record";
      break;
    }
    if (!complete) {
      torn = StrFormat("partial final line %zu", cur.line_no());
      break;
    }
    size_t directive_line = cur.line_no();

    if (StartsWith(line, "@meta ")) {
      std::string_view rest = line.substr(6);
      size_t space = rest.find(' ');
      if (space == 0 || space == std::string_view::npos) {
        return Status::ParseError(
            StrFormat("line %zu: malformed @meta directive", directive_line));
      }
      std::string key(rest.substr(0, space));
      Result<std::string> value = io::UnescapeTsvField(rest.substr(space + 1));
      if (!value.ok()) {
        return Status::Corruption(StrFormat("line %zu: @meta %s: %s",
                                            directive_line, key.c_str(),
                                            value.status().message().c_str()));
      }
      if (!stats.meta.emplace(key, *value).second) {
        return Status::ParseError(
            StrFormat("line %zu: duplicate @meta key '%s'", directive_line,
                      key.c_str()));
      }
      continue;
    }

    if (StartsWith(line, "@relation ")) {
      std::vector<std::string> parts = Split(line, ' ');
      if (parts.size() != 5) {
        return Status::ParseError(StrFormat(
            "line %zu: malformed @relation directive (expected "
            "'@relation NAME ARITY COUNT CRC')",
            directive_line));
      }
      Result<std::string> name = io::UnescapeTsvField(parts[1]);
      if (!name.ok() || name->empty()) {
        return Status::ParseError(StrFormat("line %zu: bad relation name '%s'",
                                            directive_line, parts[1].c_str()));
      }
      std::optional<size_t> arity = ParseSize(parts[2]);
      std::optional<size_t> count = ParseSize(parts[3]);
      if (!arity || !count) {
        return Status::ParseError(
            StrFormat("line %zu: bad arity or tuple count in @relation '%s'",
                      directive_line, name->c_str()));
      }
      if (*arity > kMaxArity) {
        return Status::ParseError(StrFormat(
            "line %zu: declared arity %zu of relation '%s' exceeds the "
            "limit of %zu",
            directive_line, *arity, name->c_str(), kMaxArity));
      }
      if (!seen_names.insert(*name).second) {
        return Status::ParseError(
            StrFormat("line %zu: duplicate @relation header for '%s'",
                      directive_line, name->c_str()));
      }
      Result<uint32_t> want_crc = io::CrcFromHex(parts[4]);
      if (!want_crc.ok()) {
        return Status::Corruption(StrFormat(
            "line %zu: @relation '%s': %s", directive_line, name->c_str(),
            want_crc.status().message().c_str()));
      }

      // Stage the body: read exactly `count` lines, then verify the section
      // checksum before parsing a single tuple out of it.
      size_t body_start = cur.pos();
      size_t body_first_line = cur.line_no() + 1;
      bool body_torn = false;
      for (size_t k = 0; k < *count; ++k) {
        if (!cur.Next(&line, &complete)) {
          torn = StrFormat(
              "relation '%s' section truncated after %zu of %zu tuples",
              name->c_str(), k, *count);
          body_torn = true;
          break;
        }
        if (!complete) {
          torn = StrFormat("partial tuple line %zu in relation '%s'",
                           cur.line_no(), name->c_str());
          body_torn = true;
          break;
        }
      }
      if (body_torn) break;
      std::string_view body =
          text.substr(body_start, cur.pos() - body_start);
      uint32_t got_crc = io::Crc32c(body);
      if (got_crc != *want_crc) {
        // A complete section whose bytes do not checksum is damage, not a
        // torn tail; refuse it in every mode.
        return Status::Corruption(StrFormat(
            "line %zu: relation '%s' section checksum mismatch "
            "(stored %s, computed %s)",
            directive_line, name->c_str(), parts[4].c_str(),
            io::CrcToHex(got_crc).c_str()));
      }
      Section section;
      section.name = *name;
      section.arity = *arity;
      DIRE_RETURN_IF_ERROR(
          ParseSectionBody(staging, body, body_first_line, &section));
      committed_sections.push_back(std::move(section));
      continue;
    }

    if (StartsWith(line, "@commit ")) {
      Result<uint32_t> want_crc = io::CrcFromHex(line.substr(8));
      if (!want_crc.ok()) {
        return Status::Corruption(
            StrFormat("line %zu: bad commit record: %s", directive_line,
                      want_crc.status().message().c_str()));
      }
      uint32_t got_crc = io::Crc32c(text.substr(0, directive_start));
      if (got_crc != *want_crc) {
        return Status::Corruption(StrFormat(
            "line %zu: commit checksum mismatch (stored %s, computed %s)",
            directive_line, std::string(line.substr(8)).c_str(),
            io::CrcToHex(got_crc).c_str()));
      }
      if (!cur.AtEof()) {
        return Status::Corruption(StrFormat(
            "line %zu: trailing garbage after the commit record",
            directive_line + 1));
      }
      committed = true;
      continue;
    }

    return Status::ParseError(
        StrFormat("line %zu: unrecognized snapshot directive", directive_line));
  }

  if (!committed) {
    if (!opts.recover_tail) {
      return Status::Corruption("truncated snapshot: " + *torn);
    }
    stats.recovered_prefix = true;
  }
  DIRE_RETURN_IF_ERROR(
      CommitSections(staging, std::move(committed_sections), &stats));
  return stats;
}

Result<SnapshotLoadStats> ParseV1(Database* staging, std::string_view text) {
  SnapshotLoadStats stats;
  stats.version = 1;
  std::vector<std::string> lines = Split(text, '\n');
  std::set<std::string> seen_names;
  Relation* current = nullptr;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    if (StartsWith(line, "@relation ")) {
      std::vector<std::string> parts = Split(line, ' ');
      if (parts.size() != 3) {
        return Status::ParseError(
            StrFormat("line %zu: malformed @relation directive", i + 1));
      }
      std::optional<size_t> arity = ParseSize(parts[2]);
      if (!arity) {
        return Status::ParseError(
            StrFormat("line %zu: bad arity '%s'", i + 1, parts[2].c_str()));
      }
      if (*arity > kMaxArity) {
        return Status::ParseError(StrFormat(
            "line %zu: declared arity %zu of relation '%s' exceeds the "
            "limit of %zu",
            i + 1, *arity, parts[1].c_str(), kMaxArity));
      }
      if (!seen_names.insert(parts[1]).second) {
        return Status::ParseError(
            StrFormat("line %zu: duplicate @relation header for '%s'", i + 1,
                      parts[1].c_str()));
      }
      DIRE_ASSIGN_OR_RETURN(current, staging->GetOrCreate(parts[1], *arity));
      ++stats.relations;
      continue;
    }
    if (current == nullptr) {
      return Status::ParseError(
          StrFormat("line %zu: tuple before any @relation", i + 1));
    }
    if (current->arity() == 0) {
      if (line != "()") {
        return Status::ParseError(
            StrFormat("line %zu: expected '()' for zero-arity tuple", i + 1));
      }
      if (current->Insert({})) ++stats.tuples;
      continue;
    }
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != current->arity()) {
      return Status::ParseError(
          StrFormat("line %zu: expected %zu fields, found %zu", i + 1,
                    current->arity(), fields.size()));
    }
    Tuple t;
    t.reserve(fields.size());
    for (const std::string& f : fields) {
      t.push_back(staging->symbols().Intern(f));
    }
    if (current->Insert(t)) ++stats.tuples;
  }
  return stats;
}

// Merges every relation of `staging` into `dst`, re-interning values. Arity
// conflicts are detected before any mutation of `dst`.
Status MergeStagingInto(Database* dst, const Database& staging) {
  for (const std::string& name : staging.RelationNames()) {
    const Relation* srel = staging.Find(name);
    const Relation* existing = static_cast<const Database*>(dst)->Find(name);
    if (existing != nullptr && existing->arity() != srel->arity()) {
      return Status::InvalidArgument(StrFormat(
          "relation '%s' exists with arity %zu, snapshot declares %zu",
          name.c_str(), existing->arity(), srel->arity()));
    }
  }
  for (const std::string& name : staging.RelationNames()) {
    const Relation* srel = staging.Find(name);
    DIRE_ASSIGN_OR_RETURN(Relation * drel,
                          dst->GetOrCreate(name, srel->arity()));
    drel->Reserve(srel->size());
    Tuple mapped;
    for (RowRef t : srel->rows()) {
      mapped.clear();
      mapped.reserve(t.size());
      for (ValueId v : t) {
        mapped.push_back(dst->symbols().Intern(staging.symbols().Name(v)));
      }
      drel->Insert(mapped);
    }
  }
  return Status::Ok();
}

// True if `s` contains a character that would break a space-separated
// directive line even after escaping.
bool HasSpace(std::string_view s) {
  return s.find(' ') != std::string_view::npos;
}

}  // namespace

Result<std::string> SaveSnapshot(const Database& db,
                                 const SnapshotWriteOptions& opts) {
  obs::Span span("snapshot.save", "persist");
  // Collect (section name, relation) pairs in name order so equal databases
  // serialize byte-identically.
  std::vector<std::pair<std::string, const Relation*>> sections;
  for (const std::string& name : db.RelationNames()) {
    sections.emplace_back(name, db.Find(name));
  }
  for (const auto& [name, rel] : opts.extra_relations) {
    sections.emplace_back(name, rel);
  }
  std::sort(sections.begin(), sections.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < sections.size(); ++i) {
    if (sections[i].first == sections[i - 1].first) {
      return Status::InvalidArgument("duplicate snapshot section name '" +
                                     sections[i].first + "'");
    }
  }

  std::string out(kHeaderV2);
  out += '\n';
  for (const auto& [key, value] : opts.meta) {
    if (key.empty() || HasSpace(key) ||
        key != io::EscapeTsvField(key)) {
      return Status::InvalidArgument("meta key is empty or contains "
                                     "space/control characters: '" +
                                     key + "'");
    }
    out += "@meta ";
    out += key;
    out += ' ';
    out += io::EscapeTsvField(value);
    out += '\n';
  }
  for (const auto& [name, rel] : sections) {
    if (name.empty() || HasSpace(name)) {
      return Status::InvalidArgument(
          "relation name is empty or contains a space and cannot be "
          "snapshotted: '" +
          name + "'");
    }
    std::vector<std::string> lines;
    lines.reserve(rel->size());
    for (RowRef t : rel->rows()) {
      if (t.empty()) {
        lines.emplace_back("()");
        continue;
      }
      std::string line;
      for (size_t i = 0; i < t.size(); ++i) {
        if (i != 0) line += '\t';
        line += io::EscapeTsvField(db.symbols().Name(t[i]));
      }
      lines.push_back(std::move(line));
    }
    std::sort(lines.begin(), lines.end());
    std::string body;
    for (const std::string& line : lines) {
      body += line;
      body += '\n';
    }
    out += StrFormat("@relation %s %zu %zu %s\n",
                     io::EscapeTsvField(name).c_str(), rel->arity(),
                     rel->size(), io::CrcToHex(io::Crc32c(body)).c_str());
    out += body;
  }
  // The commit checksum covers every byte before the "@commit " line itself.
  const uint32_t commit_crc = io::Crc32c(out);
  out += "@commit ";
  out += io::CrcToHex(commit_crc);
  out += '\n';
  span.Attr("sections", sections.size());
  span.Attr("bytes", out.size());
  obs::GetCounter("dire_snapshot_saves_total", "Snapshots rendered")->Add(1);
  obs::GetCounter("dire_snapshot_bytes_total",
                  "Bytes of rendered snapshot text")
      ->Add(out.size());
  return out;
}

Status SaveSnapshotFile(const Database& db, const std::string& path,
                        const SnapshotWriteOptions& opts) {
  DIRE_ASSIGN_OR_RETURN(std::string text, SaveSnapshot(db, opts));
  return io::AtomicWriteFile(path, text);
}

Result<SnapshotLoadStats> LoadSnapshot(Database* db, std::string_view text,
                                       const SnapshotLoadOptions& opts) {
  obs::Span span("snapshot.load", "persist");
  span.Attr("bytes", text.size());
  obs::GetCounter("dire_snapshot_loads_total", "Snapshot load attempts")
      ->Add(1);
  size_t nl = text.find('\n');
  std::string_view header =
      StripWhitespace(nl == std::string_view::npos ? text : text.substr(0, nl));
  Database staging;
  Result<SnapshotLoadStats> stats = Status::ParseError("unreachable");
  if (header == kHeaderV2) {
    stats = ParseV2(&staging, text, opts);
  } else if (header == kHeaderV1) {
    stats = ParseV1(&staging, text);
  } else {
    return Status::ParseError(StrFormat(
        "missing snapshot header ('%.*s' or '%.*s')",
        static_cast<int>(kHeaderV2.size()), kHeaderV2.data(),
        static_cast<int>(kHeaderV1.size()), kHeaderV1.data()));
  }
  if (!stats.ok()) return stats.status();
  DIRE_RETURN_IF_ERROR(MergeStagingInto(db, staging));
  return stats;
}

Result<SnapshotLoadStats> LoadSnapshotFile(Database* db,
                                           const std::string& path,
                                           const SnapshotLoadOptions& opts) {
  DIRE_ASSIGN_OR_RETURN(std::string text, io::ReadFile(path));
  return LoadSnapshot(db, text, opts);
}

}  // namespace dire::storage
