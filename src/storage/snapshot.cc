#include "storage/snapshot.h"

#include <fstream>
#include <sstream>

#include "base/string_util.h"

namespace dire::storage {

namespace {
constexpr const char* kHeader = "# dire snapshot v1";
}  // namespace

Result<std::string> SaveSnapshot(const Database& db) {
  std::string out = kHeader;
  out += '\n';
  for (const std::string& name : db.RelationNames()) {
    const Relation* rel = db.Find(name);
    out += StrFormat("@relation %s %zu\n", name.c_str(), rel->arity());
    for (const Tuple& t : rel->tuples()) {
      if (t.empty()) {
        out += "()\n";  // Zero-arity tuple marker.
        continue;
      }
      for (size_t i = 0; i < t.size(); ++i) {
        const std::string& value = db.symbols().Name(t[i]);
        if (value.find('\t') != std::string::npos ||
            value.find('\n') != std::string::npos) {
          return Status::InvalidArgument(
              "value contains a tab or newline and cannot be snapshotted: " +
              value);
        }
        if (i != 0) out += '\t';
        out += value;
      }
      out += '\n';
    }
  }
  return out;
}

Status SaveSnapshotFile(const Database& db, const std::string& path) {
  DIRE_ASSIGN_OR_RETURN(std::string text, SaveSnapshot(db));
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  out << text;
  return Status::Ok();
}

Status LoadSnapshot(Database* db, std::string_view text) {
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || StripWhitespace(lines[0]) != kHeader) {
    return Status::ParseError("missing snapshot header '" +
                              std::string(kHeader) + "'");
  }
  Relation* current = nullptr;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    if (StartsWith(line, "@relation ")) {
      std::vector<std::string> parts = Split(line, ' ');
      if (parts.size() != 3) {
        return Status::ParseError(
            StrFormat("line %zu: malformed @relation directive", i + 1));
      }
      int arity = std::atoi(parts[2].c_str());
      if (arity < 0 || (arity == 0 && parts[2] != "0")) {
        return Status::ParseError(
            StrFormat("line %zu: bad arity '%s'", i + 1, parts[2].c_str()));
      }
      DIRE_ASSIGN_OR_RETURN(current, db->GetOrCreate(parts[1],
                                                     static_cast<size_t>(
                                                         arity)));
      continue;
    }
    if (current == nullptr) {
      return Status::ParseError(
          StrFormat("line %zu: tuple before any @relation", i + 1));
    }
    if (current->arity() == 0) {
      if (line != "()") {
        return Status::ParseError(
            StrFormat("line %zu: expected '()' for zero-arity tuple", i + 1));
      }
      current->Insert({});
      continue;
    }
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != current->arity()) {
      return Status::ParseError(
          StrFormat("line %zu: expected %zu fields, found %zu", i + 1,
                    current->arity(), fields.size()));
    }
    Tuple t;
    t.reserve(fields.size());
    for (const std::string& f : fields) t.push_back(db->symbols().Intern(f));
    current->Insert(t);
  }
  return Status::Ok();
}

Status LoadSnapshotFile(Database* db, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return LoadSnapshot(db, buffer.str());
}

}  // namespace dire::storage
