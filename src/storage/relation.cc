#include "storage/relation.h"

#include <cassert>

namespace dire::storage {

const std::vector<uint32_t> Relation::kEmptyRows;

bool Relation::Insert(const Tuple& t) {
  assert(t.size() == arity_);
  // Stage the candidate at the end of the row store so the hash set (which
  // compares rows by index) can probe it, then undo if it was a duplicate.
  tuples_.push_back(t);
  uint32_t row = static_cast<uint32_t>(tuples_.size() - 1);
  auto [it, inserted] = dedup_.insert(row);
  if (!inserted) {
    tuples_.pop_back();
    return false;
  }
  for (size_t col = 0; col < indexes_.size(); ++col) {
    if (indexes_[col].built) {
      indexes_[col].buckets[t[col]].push_back(row);
    }
  }
  return true;
}

bool Relation::Contains(const Tuple& t) const {
  assert(t.size() == arity_);
  // Stage-and-probe as in Insert, but restore the store unconditionally.
  // Safe because find() does not keep references past the call.
  auto* self = const_cast<Relation*>(this);
  self->tuples_.push_back(t);
  uint32_t row = static_cast<uint32_t>(tuples_.size() - 1);
  bool found = dedup_.find(row) != dedup_.end();
  self->tuples_.pop_back();
  return found;
}

const std::vector<uint32_t>& Relation::Probe(size_t col, ValueId value) {
  assert(col < arity_);
  if (indexes_.size() < arity_) indexes_.resize(arity_);
  if (!indexes_[col].built) BuildIndex(col);
  auto it = indexes_[col].buckets.find(value);
  return it == indexes_[col].buckets.end() ? kEmptyRows : it->second;
}

void Relation::BuildIndex(size_t col) {
  ColumnIndex& index = indexes_[col];
  index.built = true;
  index.buckets.reserve(tuples_.size());
  for (uint32_t row = 0; row < tuples_.size(); ++row) {
    index.buckets[tuples_[row][col]].push_back(row);
  }
}

size_t Relation::ApproxBytes() const {
  // Per-tuple: the inline vector header + arity values, one dedup-set slot,
  // and a flat constant for allocator/node overhead.
  constexpr size_t kPerTupleOverhead = 32;
  size_t per_tuple = sizeof(Tuple) + arity_ * sizeof(ValueId) +
                     sizeof(uint32_t) + kPerTupleOverhead;
  size_t bytes = sizeof(Relation) + tuples_.size() * per_tuple;
  for (const ColumnIndex& index : indexes_) {
    if (!index.built) continue;
    // Each bucket holds row ids plus map-node overhead; each row appears in
    // exactly one bucket per built column.
    bytes += index.buckets.size() * kPerTupleOverhead +
             tuples_.size() * sizeof(uint32_t);
  }
  return bytes;
}

void Relation::Clear() {
  dedup_.clear();
  tuples_.clear();
  indexes_.clear();
}

std::string Relation::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (const Tuple& t : tuples_) {
    out += name_;
    out += '(';
    for (size_t i = 0; i < t.size(); ++i) {
      if (i != 0) out += ',';
      out += symbols.Name(t[i]);
    }
    out += ")\n";
  }
  return out;
}

}  // namespace dire::storage
