#include "storage/relation.h"

#include <algorithm>
#include <cassert>

namespace dire::storage {

const std::vector<uint32_t> Relation::kEmptyRows;

namespace {

// Exponential (galloping) search: first index in sorted [lo, hi) whose
// projected value is >= target, starting with 1, 2, 4, ... steps from
// `lo` before binary-searching the bracketed window. O(log distance)
// instead of O(log size) when matches cluster — the merge-join advances
// each cursor by the distance to the next match, not the run length.
template <typename Less>
size_t GallopLowerBound(const std::vector<uint32_t>& run, size_t lo,
                        size_t hi, ValueId target, const Less& value_less) {
  size_t step = 1;
  size_t prev = lo;
  size_t probe = lo;
  while (probe < hi && value_less(run[probe], target)) {
    prev = probe + 1;
    probe += step;
    step *= 2;
  }
  size_t end = std::min(probe, hi);
  // Invariant: everything before `prev` is < target, run[end] (if in
  // range) is >= target.
  auto it = std::lower_bound(run.begin() + static_cast<ptrdiff_t>(prev),
                             run.begin() + static_cast<ptrdiff_t>(end),
                             target,
                             [&](uint32_t r, ValueId v) {
                               return value_less(r, v);
                             });
  return static_cast<size_t>(it - run.begin());
}

}  // namespace

bool Relation::InsertHashed(RowRef t, uint64_t hash) {
  assert(t.size() == arity_);
  assert(hash == HashRow(t));
  // Probe first: nothing is staged unless the tuple is new, so the arena
  // never holds a duplicate even transiently and a duplicate candidate
  // costs zero allocations.
  size_t idx;
  if (FindSlot(t, hash, &idx)) return false;

  uint32_t row_id = static_cast<uint32_t>(num_rows_);
  if (arena_.size() + arity_ > arena_.capacity()) {
    ++alloc_events_;
    arena_.reserve(std::max<size_t>(arena_.capacity() * 2,
                                    arena_.size() + std::max<size_t>(arity_, 1)));
  }
  arena_.insert(arena_.end(), t.begin(), t.end());
  ++num_rows_;
  if (counts_enabled_) counts_.push_back(0);
  slots_[idx] = Slot{hash, row_id};
  ++used_slots_;
  if (used_slots_ * 8 >= slots_.size() * 7) GrowTable();

  // Statistics ride the dedup check: only a genuinely new tuple reaches
  // here, and every insertion path (bulk load, staging merge, WAL replay)
  // funnels through InsertHashed — so each tuple is counted exactly once.
  for (size_t col = 0; col < arity_; ++col) {
    sketches_[col].Add(t[col]);
  }
  for (size_t col = 0; col < indexes_.size(); ++col) {
    if (indexes_[col].built) {
      indexes_[col].buckets[t[col]].push_back(row_id);
    }
  }
  for (auto& [cols, index] : composite_indexes_) {
    index.buckets[ProjectRow(t, cols)].push_back(row_id);
  }
  // Sorted indexes absorb new rows lazily: the next EnsureSortedIndex call
  // sorts everything past covered_rows into a fresh run.
  return true;
}

bool Relation::EraseRow(RowRef t) {
  assert(t.size() == arity_);
  uint32_t r = FindRow(t);
  if (r == kNoRow) return false;
  EraseRows({r});
  return true;
}

size_t Relation::EraseMatching(const Relation& drop) {
  std::vector<uint32_t> dropped;
  for (RowRef t : drop.rows()) {
    uint32_t r = FindRow(t);
    if (r != kNoRow) dropped.push_back(r);
  }
  if (dropped.empty()) return 0;
  // drop iterates in its own insertion order; compaction wants ours.
  std::sort(dropped.begin(), dropped.end());
  EraseRows(dropped);
  return dropped.size();
}

void Relation::EraseRows(const std::vector<uint32_t>& dropped) {
  assert(!dropped.empty());
  // Survivor remap: new id = old id minus the dropped rows before it.
  // kEmptySlot (an impossible row id) marks a dropped row.
  std::vector<uint32_t> remap(num_rows_);
  {
    size_t d = 0;
    for (uint32_t r = 0; r < num_rows_; ++r) {
      if (d < dropped.size() && dropped[d] == r) {
        remap[r] = kEmptySlot;
        ++d;
      } else {
        remap[r] = r - static_cast<uint32_t>(d);
      }
    }
    assert(d == dropped.size());
  }
  // Dedup table, before the arena moves (the probes below hash row data).
  // Two steps, both in place: delete each dropped row's slot with backward
  // shifting, so linear-probe chains stay intact, then remap the surviving
  // slots' row ids in one sequential pass. (Re-placing the whole table
  // into a fresh allocation costs a cache-hostile random write per row —
  // measurably the bulk of a one-tuple retraction at scale.)
  {
    const size_t mask = slots_.size() - 1;
    for (uint32_t r : dropped) {
      size_t i;
      bool found = FindSlot(row(r), HashRow(row(r)), &i);
      assert(found);
      (void)found;
      // Backward-shift deletion: close the hole at `i` by pulling forward
      // the next cluster entry that is allowed to live at or before `i`
      // (its home position is cyclically outside (i, j]), repeating from
      // the moved entry's old position until the cluster ends.
      size_t j = i;
      while (true) {
        slots_[i].row = kEmptySlot;
        while (true) {
          j = (j + 1) & mask;
          if (slots_[j].row == kEmptySlot) goto next_dropped;
          size_t home = static_cast<size_t>(slots_[j].hash) & mask;
          if (((j - home) & mask) >= ((j - i) & mask)) break;
        }
        slots_[i] = slots_[j];
        i = j;
      }
    next_dropped:;
    }
    for (Slot& s : slots_) {
      if (s.row != kEmptySlot) s.row = remap[s.row];
    }
    used_slots_ -= dropped.size();
  }
  // Arena and counts: shift survivors down, preserving their order.
  {
    size_t w = 0;
    for (uint32_t r = 0; r < num_rows_; ++r) {
      if (remap[r] == kEmptySlot) continue;
      if (w != r) {
        std::copy_n(arena_.begin() + static_cast<ptrdiff_t>(r * arity_),
                    arity_,
                    arena_.begin() + static_cast<ptrdiff_t>(w * arity_));
        if (counts_enabled_) counts_[w] = counts_[r];
      }
      ++w;
    }
    num_rows_ = w;
    arena_.resize(w * arity_);
    if (counts_enabled_) counts_.resize(w);
  }
  // Built indexes: filter and remap each bucket / run in place. The remap
  // is monotone on survivors, so ascending-row buckets stay ascending and
  // (value, row) runs stay sorted; emptied buckets just probe to nothing.
  for (ColumnIndex& index : indexes_) {
    if (!index.built) continue;
    for (auto& [value, rows] : index.buckets) {
      size_t w = 0;
      for (uint32_t r : rows) {
        if (remap[r] != kEmptySlot) rows[w++] = remap[r];
      }
      rows.resize(w);
    }
  }
  for (auto& [cols, index] : composite_indexes_) {
    for (auto& [key, rows] : index.buckets) {
      size_t w = 0;
      for (uint32_t r : rows) {
        if (remap[r] != kEmptySlot) rows[w++] = remap[r];
      }
      rows.resize(w);
    }
  }
  for (SortedIndex& index : sorted_indexes_) {
    if (!index.built) continue;
    size_t covered_dropped = 0;
    for (std::vector<uint32_t>& run : index.runs) {
      size_t w = 0;
      for (uint32_t r : run) {
        if (remap[r] != kEmptySlot) run[w++] = remap[r];
      }
      covered_dropped += run.size() - w;
      run.resize(w);
    }
    // Rows in [0, covered_rows) were distributed over the runs, so the
    // dropped-but-covered count is exactly what the runs lost.
    index.covered_rows -= covered_dropped;
  }
  // Sketches are insert-only approximations; erased values stay absorbed
  // (DistinctEstimate becomes an upper bound -- see the header comment).
}

void Relation::GrowTable() {
  ++alloc_events_;
  std::vector<Slot> grown(slots_.size() * 2, Slot{0, kEmptySlot});
  size_t mask = grown.size() - 1;
  for (const Slot& s : slots_) {
    if (s.row == kEmptySlot) continue;
    size_t i = static_cast<size_t>(s.hash) & mask;
    while (grown[i].row != kEmptySlot) i = (i + 1) & mask;
    grown[i] = s;
  }
  slots_ = std::move(grown);
}

void Relation::Reserve(size_t additional) {
  size_t total_rows = num_rows_ + additional;
  if (total_rows * arity_ > arena_.capacity()) {
    ++alloc_events_;
    arena_.reserve(total_rows * arity_);
  }
  if (counts_enabled_) counts_.reserve(total_rows);
  // Size the table so `total_rows` occupied slots stay under the 7/8 load
  // cap without another rehash.
  size_t want = kInitialSlots;
  while (total_rows * 8 >= want * 7) want *= 2;
  if (want > slots_.size()) {
    std::vector<Slot> grown(want, Slot{0, kEmptySlot});
    std::swap(slots_, grown);
    ++alloc_events_;
    size_t mask = slots_.size() - 1;
    for (const Slot& s : grown) {
      if (s.row == kEmptySlot) continue;
      size_t i = static_cast<size_t>(s.hash) & mask;
      while (slots_[i].row != kEmptySlot) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }
}

std::vector<Tuple> Relation::CopyTuples() const {
  std::vector<Tuple> out;
  out.reserve(num_rows_);
  for (RowRef r : rows()) out.emplace_back(r.begin(), r.end());
  return out;
}

const std::vector<uint32_t>& Relation::Probe(size_t col, ValueId value) {
  assert(col < arity_);
  EnsureIndex(col);
  auto it = indexes_[col].buckets.find(value);
  return it == indexes_[col].buckets.end() ? kEmptyRows : it->second;
}

const std::vector<uint32_t>& Relation::ProbeFrozen(size_t col,
                                                   ValueId value) const {
  assert(HasIndex(col));
  if (col >= indexes_.size() || !indexes_[col].built) return kEmptyRows;
  auto it = indexes_[col].buckets.find(value);
  return it == indexes_[col].buckets.end() ? kEmptyRows : it->second;
}

const std::vector<uint32_t>& Relation::ProbeComposite(
    const std::vector<int>& cols, RowRef key) {
  CompositeIndex& index = BuildCompositeIndex(cols);
  auto it = index.buckets.find(key);
  return it == index.buckets.end() ? kEmptyRows : it->second;
}

const std::vector<uint32_t>& Relation::ProbeCompositeFrozen(
    const std::vector<int>& cols, RowRef key) const {
  auto found = composite_indexes_.find(cols);
  assert(found != composite_indexes_.end());
  if (found == composite_indexes_.end()) return kEmptyRows;
  auto it = found->second.buckets.find(key);
  return it == found->second.buckets.end() ? kEmptyRows : it->second;
}

void Relation::EnsureIndex(size_t col) {
  assert(col < arity_);
  if (indexes_.size() < arity_) indexes_.resize(arity_);
  if (!indexes_[col].built) BuildIndex(col);
}

void Relation::EnsureCompositeIndex(const std::vector<int>& cols) {
  BuildCompositeIndex(cols);
}

void Relation::BuildIndex(size_t col) {
  ColumnIndex& index = indexes_[col];
  index.built = true;
  index.buckets.reserve(num_rows_);
  for (uint32_t r = 0; r < num_rows_; ++r) {
    index.buckets[row(r)[col]].push_back(r);
  }
}

Relation::CompositeIndex& Relation::BuildCompositeIndex(
    const std::vector<int>& cols) {
  assert(cols.size() >= 2);
  auto [it, inserted] = composite_indexes_.try_emplace(cols);
  if (inserted) {
    CompositeIndex& index = it->second;
    index.buckets.reserve(num_rows_);
    for (uint32_t r = 0; r < num_rows_; ++r) {
      index.buckets[ProjectRow(row(r), cols)].push_back(r);
    }
  }
  return it->second;
}

Tuple Relation::ProjectRow(RowRef row, const std::vector<int>& cols) {
  Tuple key;
  key.reserve(cols.size());
  for (int col : cols) key.push_back(row[static_cast<size_t>(col)]);
  return key;
}

void Relation::EnsureSortedIndex(size_t col) {
  assert(col < arity_);
  if (sorted_indexes_.size() < arity_) sorted_indexes_.resize(arity_);
  SortedIndex& index = sorted_indexes_[col];
  index.built = true;
  if (index.covered_rows == num_rows_) return;
  // The rows appended since the last freeze become one new run — per
  // semi-naive round that is the delta's worth of rows, not the relation.
  std::vector<uint32_t> run(num_rows_ - index.covered_rows);
  for (size_t i = 0; i < run.size(); ++i) {
    run[i] = static_cast<uint32_t>(index.covered_rows + i);
  }
  std::sort(run.begin(), run.end(), [&](uint32_t a, uint32_t b) {
    ValueId va = row(a)[col];
    ValueId vb = row(b)[col];
    return va != vb ? va < vb : a < b;
  });
  index.runs.push_back(std::move(run));
  index.covered_rows = num_rows_;
  if (index.runs.size() > kMaxSortedRuns) MergeSortedRuns(col, &index);
}

void Relation::MergeSortedRuns(size_t col, SortedIndex* index) {
  // Periodic full merge: concatenate and re-sort into a single run. The
  // sort key (value, row) makes the result independent of the previous run
  // structure, and restores the single-run invariant MergeJoinSorted wants.
  std::vector<uint32_t> merged;
  size_t total = 0;
  for (const std::vector<uint32_t>& run : index->runs) total += run.size();
  merged.reserve(total);
  for (const std::vector<uint32_t>& run : index->runs) {
    merged.insert(merged.end(), run.begin(), run.end());
  }
  std::sort(merged.begin(), merged.end(), [&](uint32_t a, uint32_t b) {
    ValueId va = row(a)[col];
    ValueId vb = row(b)[col];
    return va != vb ? va < vb : a < b;
  });
  index->runs.clear();
  index->runs.push_back(std::move(merged));
}

void Relation::CompactSortedIndex(size_t col) {
  EnsureSortedIndex(col);
  SortedIndex& index = sorted_indexes_[col];
  if (index.runs.size() > 1) MergeSortedRuns(col, &index);
}

void Relation::ProbeSortedFrozen(size_t col, ValueId value,
                                 std::vector<uint32_t>* out) const {
  assert(HasSortedIndex(col));
  if (!HasSortedIndex(col)) return;
  const SortedIndex& index = sorted_indexes_[col];
  auto value_less = [&](uint32_t r, ValueId v) { return row(r)[col] < v; };
  for (const std::vector<uint32_t>& run : index.runs) {
    // Equality window via two galloping lower bounds; ties are sorted by
    // row id, and runs cover increasing row ranges, so appending run by
    // run yields globally ascending row ids.
    size_t lo = GallopLowerBound(run, 0, run.size(), value, value_less);
    size_t hi = lo;
    while (hi < run.size() && row(run[hi])[col] == value) ++hi;
    out->insert(out->end(), run.begin() + static_cast<ptrdiff_t>(lo),
                run.begin() + static_cast<ptrdiff_t>(hi));
  }
}

void Relation::ProbeSortedRange(size_t col, ValueId lo_value, ValueId hi_value,
                                std::vector<uint32_t>* out) const {
  assert(HasSortedIndex(col));
  if (!HasSortedIndex(col) || lo_value > hi_value) return;
  const SortedIndex& index = sorted_indexes_[col];
  auto value_less = [&](uint32_t r, ValueId v) { return row(r)[col] < v; };
  for (const std::vector<uint32_t>& run : index.runs) {
    size_t lo = GallopLowerBound(run, 0, run.size(), lo_value, value_less);
    size_t hi = lo;
    while (hi < run.size() && row(run[hi])[col] <= hi_value) ++hi;
    out->insert(out->end(), run.begin() + static_cast<ptrdiff_t>(lo),
                run.begin() + static_cast<ptrdiff_t>(hi));
  }
}

void MergeJoinSorted(const Relation& a, size_t col_a, const Relation& b,
                     size_t col_b,
                     const std::function<void(uint32_t, uint32_t)>& yield) {
  assert(a.HasSortedIndex(col_a) && a.SortedRunCount(col_a) <= 1);
  assert(b.HasSortedIndex(col_b) && b.SortedRunCount(col_b) <= 1);
  if (!a.HasSortedIndex(col_a) || !b.HasSortedIndex(col_b) ||
      a.SortedRunCount(col_a) > 1 || b.SortedRunCount(col_b) > 1) {
    return;
  }
  // Materialize the single runs through the public probe surface: a full
  // range probe returns the run in (value, row) order.
  std::vector<uint32_t> run_a;
  std::vector<uint32_t> run_b;
  if (!a.empty()) a.ProbeSortedRange(col_a, 0, UINT32_MAX, &run_a);
  if (!b.empty()) b.ProbeSortedRange(col_b, 0, UINT32_MAX, &run_b);
  auto less_a = [&](uint32_t r, ValueId v) { return a.row(r)[col_a] < v; };
  auto less_b = [&](uint32_t r, ValueId v) { return b.row(r)[col_b] < v; };
  size_t ia = 0;
  size_t ib = 0;
  while (ia < run_a.size() && ib < run_b.size()) {
    ValueId va = a.row(run_a[ia])[col_a];
    ValueId vb = b.row(run_b[ib])[col_b];
    if (va < vb) {
      // Gallop a's cursor forward to the first value >= vb.
      ia = GallopLowerBound(run_a, ia + 1, run_a.size(), vb, less_a);
    } else if (vb < va) {
      ib = GallopLowerBound(run_b, ib + 1, run_b.size(), va, less_b);
    } else {
      size_t ea = ia;
      while (ea < run_a.size() && a.row(run_a[ea])[col_a] == va) ++ea;
      size_t eb = ib;
      while (eb < run_b.size() && b.row(run_b[eb])[col_b] == va) ++eb;
      for (size_t x = ia; x < ea; ++x) {
        for (size_t y = ib; y < eb; ++y) {
          yield(run_a[x], run_b[y]);
        }
      }
      ia = ea;
      ib = eb;
    }
  }
}

size_t Relation::ApproxBytes() const {
  // Fixed costs per row: its arena cells and one dedup slot (amortized at
  // the 7/8 load cap). kPerBucketOverhead models hash-map node/allocator
  // overhead per bucket of the lazy indexes.
  constexpr size_t kPerBucketOverhead = 32;
  size_t bytes = sizeof(Relation) + arena_.capacity() * sizeof(ValueId) +
                 slots_.capacity() * sizeof(Slot) +
                 counts_.capacity() * sizeof(int64_t) +
                 sketches_.size() * ColumnSketch::ApproxBytes();
  for (const ColumnIndex& index : indexes_) {
    if (!index.built) continue;
    // Each bucket holds row ids plus map-node overhead; each row appears in
    // exactly one bucket per built column.
    bytes += index.buckets.size() * kPerBucketOverhead +
             num_rows_ * sizeof(uint32_t);
  }
  for (const auto& [cols, index] : composite_indexes_) {
    // Like a column index, plus each bucket's key tuple (cols values and a
    // vector header).
    bytes += index.buckets.size() *
                 (kPerBucketOverhead + sizeof(Tuple) +
                  cols.size() * sizeof(ValueId)) +
             num_rows_ * sizeof(uint32_t);
  }
  for (const SortedIndex& index : sorted_indexes_) {
    if (!index.built) continue;
    // Flat row-id runs: 4 bytes per covered row plus a vector header each.
    bytes += index.covered_rows * sizeof(uint32_t) +
             index.runs.size() * sizeof(std::vector<uint32_t>);
  }
  return bytes;
}

void Relation::Clear() {
  arena_.clear();
  arena_.shrink_to_fit();
  num_rows_ = 0;
  counts_.clear();
  counts_.shrink_to_fit();
  slots_.assign(kInitialSlots, Slot{0, kEmptySlot});
  slots_.shrink_to_fit();
  used_slots_ = 0;
  alloc_events_ = 0;
  indexes_.clear();
  sorted_indexes_.clear();
  composite_indexes_.clear();
  for (ColumnSketch& sketch : sketches_) sketch.Clear();
}

std::string Relation::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (RowRef t : rows()) {
    out += name_;
    out += '(';
    for (size_t i = 0; i < t.size(); ++i) {
      if (i != 0) out += ',';
      out += symbols.Name(t[i]);
    }
    out += ")\n";
  }
  return out;
}

}  // namespace dire::storage
