#include "storage/relation.h"

#include <cassert>

namespace dire::storage {

const std::vector<uint32_t> Relation::kEmptyRows;

bool Relation::Insert(const Tuple& t) {
  assert(t.size() == arity_);
  // Transparent probe first: no row is staged unless the tuple is new, so
  // the row store never holds a duplicate even transiently.
  if (dedup_.find(t) != dedup_.end()) return false;
  tuples_.push_back(t);
  uint32_t row = static_cast<uint32_t>(tuples_.size() - 1);
  dedup_.insert(row);
  // Statistics ride the dedup check: only a genuinely new tuple reaches
  // here, and every insertion path (bulk load, staging merge, WAL replay)
  // funnels through Insert — so each tuple is counted exactly once.
  for (size_t col = 0; col < arity_; ++col) {
    sketches_[col].Add(t[col]);
  }
  for (size_t col = 0; col < indexes_.size(); ++col) {
    if (indexes_[col].built) {
      indexes_[col].buckets[t[col]].push_back(row);
    }
  }
  for (auto& [cols, index] : composite_indexes_) {
    index.buckets[ProjectRow(t, cols)].push_back(row);
  }
  return true;
}

void Relation::Reserve(size_t additional) {
  size_t total = tuples_.size() + additional;
  tuples_.reserve(total);
  dedup_.reserve(total);
}

bool Relation::Contains(const Tuple& t) const {
  assert(t.size() == arity_);
  return dedup_.find(t) != dedup_.end();
}

const std::vector<uint32_t>& Relation::Probe(size_t col, ValueId value) {
  assert(col < arity_);
  EnsureIndex(col);
  auto it = indexes_[col].buckets.find(value);
  return it == indexes_[col].buckets.end() ? kEmptyRows : it->second;
}

const std::vector<uint32_t>& Relation::ProbeFrozen(size_t col,
                                                   ValueId value) const {
  assert(HasIndex(col));
  if (col >= indexes_.size() || !indexes_[col].built) return kEmptyRows;
  auto it = indexes_[col].buckets.find(value);
  return it == indexes_[col].buckets.end() ? kEmptyRows : it->second;
}

const std::vector<uint32_t>& Relation::ProbeComposite(
    const std::vector<int>& cols, const Tuple& key) {
  CompositeIndex& index = BuildCompositeIndex(cols);
  auto it = index.buckets.find(key);
  return it == index.buckets.end() ? kEmptyRows : it->second;
}

const std::vector<uint32_t>& Relation::ProbeCompositeFrozen(
    const std::vector<int>& cols, const Tuple& key) const {
  auto found = composite_indexes_.find(cols);
  assert(found != composite_indexes_.end());
  if (found == composite_indexes_.end()) return kEmptyRows;
  auto it = found->second.buckets.find(key);
  return it == found->second.buckets.end() ? kEmptyRows : it->second;
}

void Relation::EnsureIndex(size_t col) {
  assert(col < arity_);
  if (indexes_.size() < arity_) indexes_.resize(arity_);
  if (!indexes_[col].built) BuildIndex(col);
}

void Relation::EnsureCompositeIndex(const std::vector<int>& cols) {
  BuildCompositeIndex(cols);
}

void Relation::BuildIndex(size_t col) {
  ColumnIndex& index = indexes_[col];
  index.built = true;
  index.buckets.reserve(tuples_.size());
  for (uint32_t row = 0; row < tuples_.size(); ++row) {
    index.buckets[tuples_[row][col]].push_back(row);
  }
}

Relation::CompositeIndex& Relation::BuildCompositeIndex(
    const std::vector<int>& cols) {
  assert(cols.size() >= 2);
  auto [it, inserted] = composite_indexes_.try_emplace(cols);
  if (inserted) {
    CompositeIndex& index = it->second;
    index.buckets.reserve(tuples_.size());
    for (uint32_t row = 0; row < tuples_.size(); ++row) {
      index.buckets[ProjectRow(tuples_[row], cols)].push_back(row);
    }
  }
  return it->second;
}

Tuple Relation::ProjectRow(const Tuple& row, const std::vector<int>& cols) {
  Tuple key;
  key.reserve(cols.size());
  for (int col : cols) key.push_back(row[static_cast<size_t>(col)]);
  return key;
}

size_t Relation::ApproxBytes() const {
  // Per-tuple: the inline vector header + arity values, one dedup-set slot,
  // and a flat constant for allocator/node overhead.
  constexpr size_t kPerTupleOverhead = 32;
  size_t per_tuple = sizeof(Tuple) + arity_ * sizeof(ValueId) +
                     sizeof(uint32_t) + kPerTupleOverhead;
  size_t bytes = sizeof(Relation) + tuples_.size() * per_tuple +
                 sketches_.size() * ColumnSketch::ApproxBytes();
  for (const ColumnIndex& index : indexes_) {
    if (!index.built) continue;
    // Each bucket holds row ids plus map-node overhead; each row appears in
    // exactly one bucket per built column.
    bytes += index.buckets.size() * kPerTupleOverhead +
             tuples_.size() * sizeof(uint32_t);
  }
  for (const auto& [cols, index] : composite_indexes_) {
    // Like a column index, plus each bucket's key tuple (cols values and a
    // vector header).
    bytes += index.buckets.size() *
                 (kPerTupleOverhead + sizeof(Tuple) +
                  cols.size() * sizeof(ValueId)) +
             tuples_.size() * sizeof(uint32_t);
  }
  return bytes;
}

void Relation::Clear() {
  dedup_.clear();
  tuples_.clear();
  indexes_.clear();
  composite_indexes_.clear();
  for (ColumnSketch& sketch : sketches_) sketch.Clear();
}

std::string Relation::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (const Tuple& t : tuples_) {
    out += name_;
    out += '(';
    for (size_t i = 0; i < t.size(); ++i) {
      if (i != 0) out += ',';
      out += symbols.Name(t[i]);
    }
    out += ")\n";
  }
  return out;
}

}  // namespace dire::storage
