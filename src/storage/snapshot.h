#ifndef DIRE_STORAGE_SNAPSHOT_H_
#define DIRE_STORAGE_SNAPSHOT_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/result.h"
#include "storage/database.h"

namespace dire::storage {

// Whole-database snapshots in a checksummed, line-oriented text format:
//
//   # dire snapshot v2
//   @meta stratum 1
//   @relation e 2 3 1c7e90b1
//   a	b
//   b	c
//   c	has\ttab
//   @relation flag 0 1 5752b053
//   ()
//   @commit 8f2d1ac4
//
// Sections appear in relation-name order and tuples in sorted order, so
// snapshots of equal databases are byte-identical no matter how the tuples
// were derived or inserted. Every value is escaped (backslash, tab, newline,
// CR, NUL), so all Value strings round-trip. The `@relation` directive is
//   @relation <name> <arity> <tuple-count> <crc32c-of-section-body>
// and the final `@commit` line carries a CRC32C over every preceding byte;
// it is the commit record: a snapshot without a valid footer was never
// completely written.
//
// Crash-consistency contract:
//  * SaveSnapshotFile writes via io::AtomicWriteFile, so the previous
//    snapshot survives any mid-write crash.
//  * A load with `recover_tail` tolerates an EOF-truncated file (the torn
//    tail a crashed non-atomic writer could leave): every fully verified
//    section before the truncation is recovered and `recovered_prefix` is
//    reported. Damage that is not a pure truncation — checksum mismatch on
//    a complete section, bytes after the commit record, malformed
//    directives — is never silently accepted: the load fails with a
//    line-numbered kCorruption / kParseError and `db` is left untouched
//    (loading stages into a scratch database and merges only on success).
//  * The legacy v1 format ("# dire snapshot v1", unchecksummed, unescaped
//    tab-separated values) is still read, with the same no-partial-mutation
//    guarantee.

// Extra payload for checkpoint snapshots.
struct SnapshotWriteOptions {
  // Rendered as `@meta <key> <value>` lines (value escaped); covered by the
  // commit checksum. Keys must be nonempty and space/control free.
  std::map<std::string, std::string> meta;
  // Additional relations serialized alongside the database's own (used for
  // checkpointed semi-naive deltas, e.g. "$delta:t"). Tuples must be interned
  // in `db.symbols()`. Not owned.
  std::vector<std::pair<std::string, const Relation*>> extra_relations;
};

struct SnapshotLoadOptions {
  // When true, an EOF-truncated tail is dropped and the committed prefix is
  // loaded (recovery mode). When false, any incomplete snapshot is a
  // kCorruption error.
  bool recover_tail = false;
};

struct SnapshotLoadStats {
  // Format version of the file that was read (1 or 2).
  int version = 0;
  // True iff a torn tail was dropped in recovery mode.
  bool recovered_prefix = false;
  // Sections and tuples actually loaded.
  size_t relations = 0;
  size_t tuples = 0;
  // The `@meta` key/value pairs (v2 only).
  std::map<std::string, std::string> meta;
};

// Serializes every relation of `db` (plus `opts.extra_relations`) in v2
// format. Fails only on unsnapshotable relation names or meta keys (spaces /
// control characters); all value strings are escapable.
Result<std::string> SaveSnapshot(const Database& db,
                                 const SnapshotWriteOptions& opts = {});

// Writes SaveSnapshot output to `path` atomically (temp + fsync + rename).
Status SaveSnapshotFile(const Database& db, const std::string& path,
                        const SnapshotWriteOptions& opts = {});

// Loads a v1 or v2 snapshot into `db`, which may already hold data: tuples
// are merged in and arities must match. On any error `db` is unchanged.
Result<SnapshotLoadStats> LoadSnapshot(Database* db, std::string_view text,
                                       const SnapshotLoadOptions& opts = {});

Result<SnapshotLoadStats> LoadSnapshotFile(Database* db,
                                           const std::string& path,
                                           const SnapshotLoadOptions& opts = {});

}  // namespace dire::storage

#endif  // DIRE_STORAGE_SNAPSHOT_H_
