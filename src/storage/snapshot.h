#ifndef DIRE_STORAGE_SNAPSHOT_H_
#define DIRE_STORAGE_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "base/result.h"
#include "storage/database.h"

namespace dire::storage {

// Whole-database snapshots in a line-oriented text format:
//
//   # dire snapshot v1
//   @relation e 2
//   a	b
//   b	c
//   @relation trendy 1
//   bob
//
// Fields are tab-separated (values therefore must not contain tabs or
// newlines; Save rejects them). Relations appear in name order, tuples in
// insertion order, so snapshots of equal databases are byte-identical.

// Serializes every relation of `db`.
Result<std::string> SaveSnapshot(const Database& db);

// Writes SaveSnapshot output to `path`.
Status SaveSnapshotFile(const Database& db, const std::string& path);

// Loads a snapshot produced by SaveSnapshot into `db` (which may already
// hold data; tuples are inserted, arities must match).
Status LoadSnapshot(Database* db, std::string_view text);

Status LoadSnapshotFile(Database* db, const std::string& path);

}  // namespace dire::storage

#endif  // DIRE_STORAGE_SNAPSHOT_H_
