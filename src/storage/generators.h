#ifndef DIRE_STORAGE_GENERATORS_H_
#define DIRE_STORAGE_GENERATORS_H_

#include <cstdint>
#include <string>

#include "base/result.h"
#include "base/rng.h"
#include "storage/database.h"

namespace dire::storage {

// Synthetic workload generators. The paper (1986) ships no datasets; these
// deterministic generators produce the graph shapes its examples assume
// (edge relations for transitive closure) and the consumer data of
// Example 1.2. All node constants are rendered as "n<index>".

// Path graph: edges n0->n1->...->n<n-1> in relation `rel` (arity 2).
Status MakeChain(Database* db, const std::string& rel, int n);

// Cycle: chain plus a closing edge n<n-1>->n0.
Status MakeCycle(Database* db, const std::string& rel, int n);

// Complete k-ary tree with `depth` levels of edges, parent->child.
Status MakeTree(Database* db, const std::string& rel, int branching,
                int depth);

// G(n, m): m distinct random directed edges (no self loops) over n nodes.
Status MakeRandomGraph(Database* db, const std::string& rel, int n, int m,
                       Rng* rng);

// w x h grid digraph with right and down edges.
Status MakeGrid(Database* db, const std::string& rel, int w, int h);

// Consumer data for paper Example 1.2:
//   likes(person, product)  — `likes_per_person` random products per person
//   trendy(person)          — each person trendy with prob `trendy_fraction`
// Persons are "p<i>", products "item<j>".
Status MakeConsumerData(Database* db, int num_people, int num_products,
                        int likes_per_person, double trendy_fraction,
                        Rng* rng);

// Data for paper Example 6.1:
//   e(X, Z): random digraph with n nodes and m edges
//   b(W, Y): num_b random pairs over the same node universe
Status MakeHoistingData(Database* db, int n, int m, int num_b, Rng* rng);

}  // namespace dire::storage

#endif  // DIRE_STORAGE_GENERATORS_H_
