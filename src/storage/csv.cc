#include "storage/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "base/string_util.h"

namespace dire::storage {

Status LoadCsv(Database* db, const std::string& name, std::string_view text) {
  Relation* rel = nullptr;
  // Line count bounds the row count (comments and blanks only overshoot),
  // so one Reserve on the first data line covers the whole load.
  size_t estimated_rows =
      static_cast<size_t>(std::count(text.begin(), text.end(), '\n')) + 1;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    if (raw_line.find('\0') != std::string::npos) {
      // NUL never appears in well-formed CSV text; it is the classic symptom
      // of loading a binary or truncated-and-reused file.
      return Status::ParseError(
          StrFormat("%s line %zu: embedded NUL byte (binary data is not "
                    "valid CSV)",
                    name.c_str(), line_no));
    }
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string> fields = Split(line, ',');
    Tuple t;
    t.reserve(fields.size());
    for (const std::string& f : fields) {
      t.push_back(db->symbols().Intern(StripWhitespace(f)));
    }
    if (rel == nullptr) {
      Result<Relation*> created = db->GetOrCreate(name, t.size());
      if (!created.ok()) {
        return Status::ParseError(StrFormat(
            "%s line %zu: %s", name.c_str(), line_no,
            created.status().message().c_str()));
      }
      rel = *created;
      rel->Reserve(estimated_rows);
    }
    if (t.size() != rel->arity()) {
      return Status::ParseError(
          StrFormat("%s line %zu: expected %zu fields, found %zu",
                    name.c_str(), line_no, rel->arity(), t.size()));
    }
    rel->Insert(t);
  }
  return Status::Ok();
}

Status LoadCsvFile(Database* db, const std::string& name,
                   const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return LoadCsv(db, name, buffer.str());
}

Result<std::string> DumpCsv(const Database& db, const std::string& name) {
  const Relation* rel = db.Find(name);
  if (rel == nullptr) return Status::NotFound("no relation " + name);
  std::string out;
  for (RowRef t : rel->rows()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i != 0) out += ',';
      out += db.symbols().Name(t[i]);
    }
    out += '\n';
  }
  return out;
}

Status DumpCsvFile(const Database& db, const std::string& name,
                   const std::string& path) {
  DIRE_ASSIGN_OR_RETURN(std::string text, DumpCsv(db, name));
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  out << text;
  return Status::Ok();
}

}  // namespace dire::storage
