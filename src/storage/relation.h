#ifndef DIRE_STORAGE_RELATION_H_
#define DIRE_STORAGE_RELATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/hash.h"
#include "storage/value.h"

namespace dire::storage {

// A set of fixed-arity tuples with O(1) duplicate detection and lazily built
// per-column hash indexes for join probes. Insert-only (evaluation never
// deletes); Clear() resets everything.
class Relation {
 public:
  Relation(std::string name, size_t arity)
      : name_(std::move(name)), arity_(arity) {}

  // Not copyable or movable: the duplicate-detection set holds pointers into
  // this object's tuple storage. Databases hold relations by unique_ptr.
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  // Inserts `t`; returns true if it was new. Requires t.size() == arity().
  bool Insert(const Tuple& t);

  bool Contains(const Tuple& t) const;

  // All tuples, in insertion order. Stable across Insert calls (indexes into
  // this vector are used as row ids).
  const std::vector<Tuple>& tuples() const { return tuples_; }

  // Row ids of tuples whose column `col` equals `value`. Builds the column
  // index on first use; subsequent inserts maintain it.
  const std::vector<uint32_t>& Probe(size_t col, ValueId value);

  // True if a hash index exists for `col`.
  bool HasIndex(size_t col) const {
    return col < indexes_.size() && !indexes_[col].buckets.empty();
  }

  void Clear();

  // Approximate heap bytes held by this relation: row storage, the dedup
  // set, and any built column indexes. Used by ExecutionGuard memory
  // accounting; an estimate (allocator overhead is modeled with a flat
  // per-node constant), not a measurement.
  size_t ApproxBytes() const;

  // Multi-line dump "name(a,b)" per row, using `symbols` to render values.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  struct ColumnIndex {
    bool built = false;
    std::unordered_map<ValueId, std::vector<uint32_t>> buckets;
  };

  struct RowHash {
    const std::vector<Tuple>* rows;
    size_t operator()(uint32_t i) const {
      return static_cast<size_t>(HashVector((*rows)[i]));
    }
  };
  struct RowEq {
    const std::vector<Tuple>* rows;
    bool operator()(uint32_t a, uint32_t b) const {
      return (*rows)[a] == (*rows)[b];
    }
  };

  void BuildIndex(size_t col);

  std::string name_;
  size_t arity_;
  std::vector<Tuple> tuples_;
  std::unordered_set<uint32_t, RowHash, RowEq> dedup_{
      16, RowHash{&tuples_}, RowEq{&tuples_}};
  std::vector<ColumnIndex> indexes_;
  static const std::vector<uint32_t> kEmptyRows;
};

}  // namespace dire::storage

#endif  // DIRE_STORAGE_RELATION_H_
