#ifndef DIRE_STORAGE_RELATION_H_
#define DIRE_STORAGE_RELATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/hash.h"
#include "storage/stats.h"
#include "storage/value.h"

namespace dire::storage {

// A set of fixed-arity tuples with O(1) duplicate detection and lazily built
// hash indexes for join probes: per-column indexes plus composite indexes
// over a set of columns (so a multi-bound probe hits exactly its matching
// rows instead of over-scanning one column's bucket). Insert-only
// (evaluation never deletes); Clear() resets everything.
//
// Thread-safety: none of the mutating members may race, but every const
// member is safe to call concurrently with other const members. The
// parallel evaluator relies on this split: it freezes a relation by
// pre-building every index its plans probe (EnsureIndex /
// EnsureCompositeIndex) before the parallel region, after which workers use
// only the const surface (tuples(), ProbeFrozen, ProbeCompositeFrozen,
// Contains).
class Relation {
 public:
  Relation(std::string name, size_t arity)
      : name_(std::move(name)), arity_(arity), sketches_(arity) {}

  // Not copyable or movable: the duplicate-detection set holds pointers into
  // this object's tuple storage. Databases hold relations by unique_ptr.
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  // Inserts `t`; returns true if it was new. Requires t.size() == arity().
  bool Insert(const Tuple& t);

  // Pre-sizes the row store and the dedup set for `additional` further
  // inserts, so bulk loads (snapshot sections, CSV files, staging merges)
  // pay one rehash instead of a rehash storm.
  void Reserve(size_t additional);

  bool Contains(const Tuple& t) const;

  // All tuples, in insertion order. Stable across Insert calls (indexes into
  // this vector are used as row ids).
  const std::vector<Tuple>& tuples() const { return tuples_; }

  // Row ids of tuples whose column `col` equals `value`, in increasing row
  // order. Builds the column index on first use; subsequent inserts
  // maintain it.
  const std::vector<uint32_t>& Probe(size_t col, ValueId value);

  // Row ids of tuples matching `key[i]` at column `cols[i]` for every i, in
  // increasing row order. `cols` must be sorted, unique, with at least two
  // entries (use Probe for one). Builds the composite index on first use.
  const std::vector<uint32_t>& ProbeComposite(const std::vector<int>& cols,
                                              const Tuple& key);

  // Builds the single-column / composite index now (no-ops when already
  // built). The parallel evaluator calls these for every index its compiled
  // plans probe before entering a parallel region.
  void EnsureIndex(size_t col);
  void EnsureCompositeIndex(const std::vector<int>& cols);

  // Const probes for frozen (index-complete) relations: exactly Probe /
  // ProbeComposite, but require the index to have been built (they return
  // no rows — never a silent scan — if it was not; debug builds assert).
  const std::vector<uint32_t>& ProbeFrozen(size_t col, ValueId value) const;
  const std::vector<uint32_t>& ProbeCompositeFrozen(
      const std::vector<int>& cols, const Tuple& key) const;

  // True if a hash index exists for `col`.
  bool HasIndex(size_t col) const {
    return col < indexes_.size() && indexes_[col].built;
  }
  bool HasCompositeIndex(const std::vector<int>& cols) const {
    return composite_indexes_.find(cols) != composite_indexes_.end();
  }

  void Clear();

  // Live statistics for the cost-based planner: approximate number of
  // distinct values in column `col`, maintained incrementally on every
  // insert (bulk loads and staging merges funnel through Insert, so the
  // sketch absorbs each path exactly once; duplicates are idempotent).
  // Equals a from-scratch recount of the same tuple set by construction.
  size_t DistinctEstimate(size_t col) const {
    return col < sketches_.size() ? sketches_[col].DistinctEstimate() : 0;
  }
  const ColumnSketch& ColumnStats(size_t col) const {
    return sketches_[col];
  }

  // Approximate heap bytes held by this relation: row storage, the dedup
  // set, per-column statistics sketches, and any built column or composite
  // indexes. Used by ExecutionGuard memory accounting; an estimate
  // (allocator overhead is modeled with a flat per-node constant), not a
  // measurement.
  size_t ApproxBytes() const;

  // Multi-line dump "name(a,b)" per row, using `symbols` to render values.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  struct ColumnIndex {
    bool built = false;
    std::unordered_map<ValueId, std::vector<uint32_t>> buckets;
  };
  // Buckets keyed by the projection of a row onto the index's columns.
  struct CompositeIndex {
    std::unordered_map<Tuple, std::vector<uint32_t>, VectorHash<ValueId>>
        buckets;
  };

  // Transparent hashing: the dedup set stores row ids but can be probed
  // directly with a Tuple, so Contains never has to stage a candidate row.
  struct RowHash {
    using is_transparent = void;
    const std::vector<Tuple>* rows;
    size_t operator()(uint32_t i) const {
      return static_cast<size_t>(HashVector((*rows)[i]));
    }
    size_t operator()(const Tuple& t) const {
      return static_cast<size_t>(HashVector(t));
    }
  };
  struct RowEq {
    using is_transparent = void;
    const std::vector<Tuple>* rows;
    bool operator()(uint32_t a, uint32_t b) const {
      return (*rows)[a] == (*rows)[b];
    }
    bool operator()(const Tuple& t, uint32_t b) const {
      return t == (*rows)[b];
    }
    bool operator()(uint32_t a, const Tuple& t) const {
      return (*rows)[a] == t;
    }
  };

  void BuildIndex(size_t col);
  CompositeIndex& BuildCompositeIndex(const std::vector<int>& cols);
  static Tuple ProjectRow(const Tuple& row, const std::vector<int>& cols);

  std::string name_;
  size_t arity_;
  std::vector<Tuple> tuples_;
  // Per-column distinct sketches, sized on construction (arity is fixed).
  std::vector<ColumnSketch> sketches_;
  std::unordered_set<uint32_t, RowHash, RowEq> dedup_{
      16, RowHash{&tuples_}, RowEq{&tuples_}};
  std::vector<ColumnIndex> indexes_;
  // Keyed by the sorted column set; std::map keeps iterators and mapped
  // references stable across insertion of further composite indexes.
  std::map<std::vector<int>, CompositeIndex> composite_indexes_;
  static const std::vector<uint32_t> kEmptyRows;
};

}  // namespace dire::storage

#endif  // DIRE_STORAGE_RELATION_H_
