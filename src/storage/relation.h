#ifndef DIRE_STORAGE_RELATION_H_
#define DIRE_STORAGE_RELATION_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "storage/stats.h"
#include "storage/value.h"

namespace dire::storage {

// A set of fixed-arity tuples with O(1) duplicate detection and lazily
// built join indexes.
//
// Storage layout: one flat arena of ValueIds holding rows back to back —
// row i occupies arena[i*arity .. i*arity+arity). Rows are identified by
// their insertion-order index (row ids are stable and dense), accessed as
// non-owning spans (RowRef), and never individually heap-allocated: an
// insert appends `arity` values to the arena and one (hash, row) slot to
// an open-addressing dedup table. Duplicate candidates are rejected with
// zero allocations — hash, table probe, arena compare — which is what the
// evaluator's 20:1 emitted-to-inserted workloads spend their time on.
// Hashes are computed once per candidate: callers that already hashed a
// row pass it through InsertHashed/ContainsHashed (the hash-first dedup
// fast path).
//
// Join probes come in two index flavors, chosen per probe by the cost
// planner:
//  * hash indexes (per column, plus composite over a column set): O(1)
//    equality probes, buckets list row ids in insertion order;
//  * sorted-run indexes (per column): row ids sorted by (value, row) in
//    LSM-style runs — rows appended since the last freeze form a new run,
//    runs merge once there are more than kMaxSortedRuns — supporting
//    equality probes, value-range probes, and galloping merge-joins over
//    flat memory instead of per-distinct-value bucket vectors.
// Both return matching row ids in ascending row order, so results are
// identical (byte for byte) whichever index a plan picked.
//
// Evaluation never deletes, but incremental maintenance does: EraseRow /
// EraseMatching compact the arena in place (surviving rows keep their
// relative order, so iteration matches a from-scratch rebuild) and patch
// the dedup table and every built index instead of dropping them — a
// one-tuple retraction must not cost a relation-sized index rebuild on the
// next probe. Clear() resets everything.
//
// Thread-safety: none of the mutating members may race, but every const
// member is safe to call concurrently with other const members. The
// parallel evaluator relies on this split: it freezes a relation by
// pre-building every index its plans probe (EnsureIndex /
// EnsureCompositeIndex / EnsureSortedIndex) before the parallel region,
// after which workers use only the const surface (row(), ProbeFrozen,
// ProbeCompositeFrozen, ProbeSortedFrozen, Contains).
class Relation {
 public:
  Relation(std::string name, size_t arity)
      : name_(std::move(name)),
        arity_(arity),
        sketches_(arity),
        slots_(kInitialSlots, Slot{0, kEmptySlot}) {}

  // Not copyable or movable: the dedup table indexes into this object's
  // arena. Databases hold relations by unique_ptr.
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  // The canonical row hash; InsertHashed/ContainsHashed require exactly
  // this function over the row's values.
  static uint64_t HashRow(RowRef t) { return HashSpan(t.data(), t.size()); }

  // Inserts `t`; returns true if it was new. Requires t.size() == arity().
  bool Insert(RowRef t) { return InsertHashed(t, HashRow(t)); }
  bool Insert(std::initializer_list<ValueId> t) {
    return Insert(RowRef(t.begin(), t.size()));
  }
  // Hash-first insert: `hash` must equal HashRow(t). Lets a caller that
  // already hashed the candidate (to reject it against another relation)
  // reuse the work.
  bool InsertHashed(RowRef t, uint64_t hash);

  bool Contains(RowRef t) const { return ContainsHashed(t, HashRow(t)); }
  bool Contains(std::initializer_list<ValueId> t) const {
    return Contains(RowRef(t.begin(), t.size()));
  }
  bool ContainsHashed(RowRef t, uint64_t hash) const {
    size_t idx;
    return FindSlot(t, hash, &idx);
  }

  // Removes `t` if present; returns whether a row was erased. In-place:
  // later rows shift down by one id, built indexes are patched, and
  // surviving rows keep their relative (insertion) order.
  bool EraseRow(RowRef t);

  // Removes every row present in `drop`; returns how many were erased.
  // One compaction pass regardless of how many rows match.
  size_t EraseMatching(const Relation& drop);

  // Pre-sizes the arena and the dedup table for `additional` further
  // inserts, so bulk loads (snapshot sections, CSV files, staging merges)
  // pay one growth instead of a doubling cascade.
  void Reserve(size_t additional);

  // Row `i` (insertion order), as a span into the arena. Valid until the
  // next mutating call.
  RowRef row(size_t i) const {
    return RowRef(arena_.data() + i * arity_, arity_);
  }

  // Iterable view over all rows in insertion order:
  //   for (RowRef r : rel.rows()) ...
  // Spans are invalidated by any mutating call, like row().
  class RowsView {
   public:
    class iterator {
     public:
      iterator(const Relation* rel, size_t i) : rel_(rel), i_(i) {}
      RowRef operator*() const { return rel_->row(i_); }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      bool operator!=(const iterator& o) const { return i_ != o.i_; }

     private:
      const Relation* rel_;
      size_t i_;
    };
    explicit RowsView(const Relation* rel) : rel_(rel) {}
    iterator begin() const { return iterator(rel_, 0); }
    iterator end() const { return iterator(rel_, rel_->size()); }

   private:
    const Relation* rel_;
  };
  RowsView rows() const { return RowsView(this); }

  // Materializes every row as an owning Tuple (tests, relation rebuilds —
  // never a hot path).
  std::vector<Tuple> CopyTuples() const;

  // Row ids of tuples whose column `col` equals `value`, in increasing row
  // order. Builds the column hash index on first use; subsequent inserts
  // maintain it.
  const std::vector<uint32_t>& Probe(size_t col, ValueId value);

  // Row ids of tuples matching `key[i]` at column `cols[i]` for every i, in
  // increasing row order. `cols` must be sorted, unique, with at least two
  // entries (use Probe for one). Builds the composite index on first use.
  const std::vector<uint32_t>& ProbeComposite(const std::vector<int>& cols,
                                              RowRef key);
  const std::vector<uint32_t>& ProbeComposite(
      const std::vector<int>& cols, std::initializer_list<ValueId> key) {
    return ProbeComposite(cols, RowRef(key.begin(), key.size()));
  }

  // Builds the single-column / composite hash index now (no-ops when
  // already built). The evaluator calls these for every hash index its
  // compiled plans probe before entering a (possibly parallel) read phase.
  void EnsureIndex(size_t col);
  void EnsureCompositeIndex(const std::vector<int>& cols);

  // Const probes for frozen (index-complete) relations: exactly Probe /
  // ProbeComposite, but require the index to have been built (they return
  // no rows — never a silent scan — if it was not; debug builds assert).
  const std::vector<uint32_t>& ProbeFrozen(size_t col, ValueId value) const;
  const std::vector<uint32_t>& ProbeCompositeFrozen(
      const std::vector<int>& cols, RowRef key) const;
  const std::vector<uint32_t>& ProbeCompositeFrozen(
      const std::vector<int>& cols, std::initializer_list<ValueId> key) const {
    return ProbeCompositeFrozen(cols, RowRef(key.begin(), key.size()));
  }

  // True if a hash index exists for `col`.
  bool HasIndex(size_t col) const {
    return col < indexes_.size() && indexes_[col].built;
  }
  bool HasCompositeIndex(const std::vector<int>& cols) const {
    return composite_indexes_.find(cols) != composite_indexes_.end();
  }

  // --- Sorted-run index ------------------------------------------------
  // Row ids ordered by (value at `col`, row id), kept as runs: each
  // EnsureSortedIndex call sorts the rows inserted since the last call
  // into a fresh run (cheap per fixpoint round — only the delta's worth of
  // rows), and merges all runs into one once there are more than
  // kMaxSortedRuns. Runs cover strictly increasing row ranges, so
  // concatenating per-run matches yields ascending row ids — the same
  // order a hash-index probe produces.

  // Brings the sorted index for `col` up to date with every inserted row
  // (builds it on first use). Mutating; call before freezing.
  void EnsureSortedIndex(size_t col);

  // True when a sorted index for `col` exists AND covers every row; the
  // frozen probes below require it.
  bool HasSortedIndex(size_t col) const {
    return col < sorted_indexes_.size() && sorted_indexes_[col].built &&
           sorted_indexes_[col].covered_rows == num_rows_;
  }

  // Appends the row ids whose column `col` equals `value`, ascending, to
  // *out (which the caller clears and reuses — the probe itself allocates
  // only when out's capacity grows). Requires HasSortedIndex(col); returns
  // nothing otherwise (never a silent scan; debug builds assert).
  void ProbeSortedFrozen(size_t col, ValueId value,
                         std::vector<uint32_t>* out) const;

  // Range probe: row ids with lo <= value(col) <= hi. Ordered by (value,
  // row) within each run — ascending by row id only per distinct value.
  void ProbeSortedRange(size_t col, ValueId lo, ValueId hi,
                        std::vector<uint32_t>* out) const;

  // Number of runs currently backing `col`'s sorted index (0 when unbuilt).
  size_t SortedRunCount(size_t col) const {
    return col < sorted_indexes_.size() ? sorted_indexes_[col].runs.size()
                                        : 0;
  }

  // Merges `col`'s sorted index down to a single run covering every row
  // (building it first if needed). MergeJoinSorted requires this.
  void CompactSortedIndex(size_t col);

  void Clear();

  // Live statistics for the cost-based planner: approximate number of
  // distinct values in column `col`, maintained incrementally on every
  // insert (bulk loads and staging merges funnel through Insert, so the
  // sketch absorbs each path exactly once; duplicates are idempotent).
  // Equals a from-scratch recount for insert-only relations; erased rows
  // are not forgotten, so after deletions it is an upper bound — fine for
  // the planner, which only needs relative magnitudes.
  size_t DistinctEstimate(size_t col) const {
    return col < sketches_.size() ? sketches_[col].DistinctEstimate() : 0;
  }
  const ColumnSketch& ColumnStats(size_t col) const {
    return sketches_[col];
  }

  // Approximate heap bytes held by this relation: the arena, the dedup
  // table, per-column statistics sketches, and any built hash or sorted
  // indexes. Used by ExecutionGuard memory accounting; an estimate
  // (allocator overhead is modeled with a flat per-node constant), not a
  // measurement.
  size_t ApproxBytes() const;

  // Bytes reserved by the tuple arena and dedup table (capacity, not
  // size), and the used fraction of that reservation. Exposed as the
  // dire_storage_arena_bytes gauge and per-relation /statusz utilization.
  size_t ArenaBytes() const {
    return arena_.capacity() * sizeof(ValueId) +
           slots_.capacity() * sizeof(Slot);
  }
  double ArenaUtilization() const {
    size_t cap = ArenaBytes();
    if (cap == 0) return 1.0;
    return static_cast<double>(arena_.size() * sizeof(ValueId) +
                               used_slots_ * sizeof(Slot)) /
           static_cast<double>(cap);
  }

  // Number of heap-growth events (arena regrowth, dedup-table rehash,
  // dedup-table regrowth) since construction or the last Clear. The join
  // inner loop's no-allocation contract is asserted against this counter:
  // a candidate stream that only hits duplicates must not move it.
  uint64_t alloc_events() const { return alloc_events_; }

  // --- Derivation counts -----------------------------------------------
  // Opt-in per-row multiplicity storage for incremental view maintenance:
  // count[row] = number of distinct rule-body derivations of the tuple in
  // row `row`. Counting maintenance adjusts these as signed deltas flow
  // through a stratum and deletes a tuple exactly when its count reaches
  // zero (DESIGN.md §13). Counts are in-memory bookkeeping only: they are
  // never serialized, so snapshots remain a pure function of the tuple
  // set, and they are recomputed lazily after recovery. New rows start at
  // count 0; the maintainer adds derivations explicitly.

  // Allocates the per-row count vector (all zero). Idempotent: a second
  // call keeps existing counts. Survives Clear() as an empty vector.
  void EnableCounts() {
    if (!counts_enabled_) {
      counts_enabled_ = true;
      counts_.assign(num_rows_, 0);
    }
  }
  bool counts_enabled() const { return counts_enabled_; }
  int64_t CountAt(size_t row) const {
    return counts_enabled_ && row < counts_.size() ? counts_[row] : 0;
  }
  void AdjustCount(size_t row, int64_t delta) {
    if (counts_enabled_ && row < counts_.size()) counts_[row] += delta;
  }
  void SetCount(size_t row, int64_t value) {
    if (counts_enabled_ && row < counts_.size()) counts_[row] = value;
  }

  // Row id holding tuple `t`, or kNoRow when absent. Lets the maintainer
  // adjust the count of an existing tuple without a second hash.
  static constexpr uint32_t kNoRow = UINT32_MAX;
  uint32_t FindRow(RowRef t) const { return FindRowHashed(t, HashRow(t)); }
  uint32_t FindRowHashed(RowRef t, uint64_t hash) const {
    size_t idx;
    if (!FindSlot(t, hash, &idx)) return kNoRow;
    return slots_[idx].row;
  }

  // Multi-line dump "name(a,b)" per row, using `symbols` to render values.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  // Open-addressing dedup slot. `hash` is the full 64-bit row hash (checked
  // before touching the arena, and reused verbatim on rehash); row ==
  // kEmptySlot marks a free slot.
  struct Slot {
    uint64_t hash;
    uint32_t row;
  };
  static constexpr uint32_t kEmptySlot = UINT32_MAX;
  static constexpr size_t kInitialSlots = 16;
  static constexpr size_t kMaxSortedRuns = 8;

  struct ColumnIndex {
    bool built = false;
    std::unordered_map<ValueId, std::vector<uint32_t>> buckets;
  };
  // Buckets keyed by the projection of a row onto the index's columns.
  // Transparent hashing: probes look up a borrowed key span without
  // materializing a Tuple.
  struct CompositeIndex {
    std::unordered_map<Tuple, std::vector<uint32_t>, TupleViewHash,
                       TupleViewEq>
        buckets;
  };
  struct SortedIndex {
    bool built = false;
    // Each run: row ids sorted by (value at col, row id). Runs cover
    // strictly increasing row ranges: runs[k] holds exactly the rows
    // appended between the k-th and (k+1)-th EnsureSortedIndex calls
    // (collapsing to one run after a merge).
    std::vector<std::vector<uint32_t>> runs;
    // Rows [0, covered_rows) are distributed over the runs.
    size_t covered_rows = 0;
  };

  // Linear probe for `t` (with hash `hash`) in the dedup table. Returns
  // true and the slot index when present; false and the insertion slot
  // when absent.
  bool FindSlot(RowRef t, uint64_t hash, size_t* idx) const {
    size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (true) {
      const Slot& s = slots_[i];
      if (s.row == kEmptySlot) {
        *idx = i;
        return false;
      }
      if (s.hash == hash && RowEquals(row(s.row), t)) {
        *idx = i;
        return true;
      }
      i = (i + 1) & mask;
    }
  }

  // Doubles the dedup table and re-places every occupied slot by its
  // stored hash (rows are never re-hashed).
  void GrowTable();

  void BuildIndex(size_t col);
  // Compacts away `dropped` (sorted, unique row ids): shifts the arena and
  // counts, re-places the dedup table from stored hashes, and remaps every
  // built index's row ids. The remap is monotone on survivors, so all
  // index orderings (ascending buckets, (value, row) runs) are preserved.
  void EraseRows(const std::vector<uint32_t>& dropped);
  CompositeIndex& BuildCompositeIndex(const std::vector<int>& cols);
  static Tuple ProjectRow(RowRef row, const std::vector<int>& cols);
  void MergeSortedRuns(size_t col, SortedIndex* index);

  std::string name_;
  size_t arity_;
  // Row store: rows back to back, row i at [i*arity_, (i+1)*arity_).
  std::vector<ValueId> arena_;
  size_t num_rows_ = 0;
  // Per-column distinct sketches, sized on construction (arity is fixed).
  std::vector<ColumnSketch> sketches_;
  std::vector<Slot> slots_;  // Power-of-two sized; see FindSlot.
  size_t used_slots_ = 0;
  uint64_t alloc_events_ = 0;
  // Per-row derivation counts, parallel to rows; empty unless EnableCounts.
  bool counts_enabled_ = false;
  std::vector<int64_t> counts_;
  std::vector<ColumnIndex> indexes_;
  std::vector<SortedIndex> sorted_indexes_;
  // Keyed by the sorted column set; std::map keeps iterators and mapped
  // references stable across insertion of further composite indexes.
  std::map<std::vector<int>, CompositeIndex> composite_indexes_;
  static const std::vector<uint32_t> kEmptyRows;
};

// Galloping merge-join over two compacted sorted-run indexes: invokes
// `yield(row_a, row_b)` for every pair with a.row(row_a)[col_a] ==
// b.row(row_b)[col_b], in ascending (value, row_a, row_b) order. Advances
// through the larger side by exponential (galloping) search, so a small
// relation joined against a huge one costs O(small * log(huge)) instead of
// a full merge scan. Requires CompactSortedIndex(col) on both sides (a
// single run covering every row); yields nothing otherwise (debug builds
// assert).
void MergeJoinSorted(const Relation& a, size_t col_a, const Relation& b,
                     size_t col_b,
                     const std::function<void(uint32_t, uint32_t)>& yield);

}  // namespace dire::storage

#endif  // DIRE_STORAGE_RELATION_H_
