#ifndef DIRE_STORAGE_CSV_H_
#define DIRE_STORAGE_CSV_H_

#include <string>
#include <string_view>

#include "base/result.h"
#include "storage/database.h"

namespace dire::storage {

// Loads comma-separated rows from `text` into relation `name`. Every line is
// one tuple; fields are trimmed; blank lines and lines starting with '#' are
// skipped. All rows must have the same field count (which fixes the arity).
Status LoadCsv(Database* db, const std::string& name, std::string_view text);

// Reads `path` and calls LoadCsv.
Status LoadCsvFile(Database* db, const std::string& name,
                   const std::string& path);

// Serializes a relation as CSV (insertion order).
Result<std::string> DumpCsv(const Database& db, const std::string& name);

// Writes DumpCsv output to `path`.
Status DumpCsvFile(const Database& db, const std::string& name,
                   const std::string& path);

}  // namespace dire::storage

#endif  // DIRE_STORAGE_CSV_H_
