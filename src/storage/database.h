#ifndef DIRE_STORAGE_DATABASE_H_
#define DIRE_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "base/result.h"
#include "storage/relation.h"
#include "storage/value.h"

namespace dire::storage {

// A main-memory database: a symbol table plus named relations. Serves as
// both the EDB (loaded facts) and the store for derived IDB relations.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  // Returns the relation named `name`, creating it with `arity` if absent.
  // Fails if it exists with a different arity.
  Result<Relation*> GetOrCreate(const std::string& name, size_t arity);

  // Returns the relation or nullptr.
  Relation* Find(const std::string& name);
  const Relation* Find(const std::string& name) const;

  // Interns the constants of a ground atom and inserts the tuple.
  // Fails if the atom contains variables.
  Status AddFact(const ast::Atom& atom);

  // Inserts every fact (empty-body rule) of `program`.
  Status LoadFacts(const ast::Program& program);

  // Convenience: add tuple of constant spellings to relation `name`.
  Status AddRow(const std::string& name,
                const std::vector<std::string>& values);

  // Removes one tuple of constant spellings from relation `name`; returns
  // true if it was present. In-place compaction (Relation::EraseRow):
  // surviving rows keep their order, built indexes and the dedup set are
  // patched rather than dropped, and column sketches become upper bounds
  // (they are add-only and cannot unlearn a value). Used by durable
  // retraction and incremental maintenance, never by evaluation.
  Result<bool> RemoveRow(const std::string& name,
                         const std::vector<std::string>& values);

  // Removes from relation `name` every row present in `drop` (matched by
  // tuple value; `drop` must have the same arity). Surviving rows keep
  // their derivation counts when counting is enabled. Same in-place
  // compaction as RemoveRow, one pass for the whole batch — a one-tuple
  // maintenance delta must not pay a relation-sized index rebuild on the
  // next probe. Returns the number of rows removed.
  size_t RemoveMatching(const std::string& name, const Relation& drop);

  // Removes the relation named `name`; returns true if it existed. Used by
  // recovery to strip checkpoint-internal sections ("$delta:...") after a
  // snapshot load; evaluation itself never deletes.
  bool Drop(const std::string& name);

  // Names of all relations, sorted.
  std::vector<std::string> RelationNames() const;

  // Total tuple count across all relations.
  size_t TotalTuples() const;

  // Approximate heap bytes across all relations (see Relation::ApproxBytes).
  size_t ApproxBytes() const;

  // Bytes reserved by tuple arenas and dedup tables across all relations
  // (see Relation::ArenaBytes). Exported as dire_storage_arena_bytes.
  size_t ArenaBytes() const;

  // Renders `rel`'s tuples as sorted "name(a,b)" lines (deterministic, for
  // tests and golden output).
  std::string DumpRelation(const std::string& name) const;

 private:
  SymbolTable symbols_;
  std::map<std::string, std::unique_ptr<Relation>> relations_;
};

}  // namespace dire::storage

#endif  // DIRE_STORAGE_DATABASE_H_
