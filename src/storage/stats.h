#ifndef DIRE_STORAGE_STATS_H_
#define DIRE_STORAGE_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "storage/value.h"

namespace dire::storage {

// Approximate distinct-value counter for one relation column, used by the
// cost-based join planner (eval/cost.h). Linear counting over a fixed
// bitmap: Add hashes the value to one of kBits slots; the estimate is
// -m*ln(empty/m), which is within a few percent while the bitmap is under
// ~half full (kBits = 4096 covers the cardinalities the planner has to
// rank — beyond saturation every column reads as "huge", which is all the
// ordering needs).
//
// Properties the statistics-maintenance contract relies on:
//  * Add is idempotent: re-adding a value never moves the estimate, so
//    bulk merges that funnel duplicates through Relation::Insert cannot
//    double count.
//  * The bitmap is a pure function of the value *set* (order independent),
//    so an incrementally maintained sketch is bit-identical to one rebuilt
//    from scratch — and estimates survive any save/load path that replays
//    inserts (snapshot load, WAL replay, CSV load).
class ColumnSketch {
 public:
  static constexpr size_t kBits = 4096;

  // Marks `v` present. O(1), idempotent.
  void Add(ValueId v) {
    size_t bit = static_cast<size_t>(Mix(v)) & (kBits - 1);
    uint64_t& word = words_[bit >> 6];
    uint64_t mask = uint64_t{1} << (bit & 63);
    if ((word & mask) == 0) {
      word |= mask;
      ++set_bits_;
    }
  }

  // Linear-counting estimate of the number of distinct values added.
  // Exact 0 for an empty sketch; capped at kSaturatedEstimate when every
  // slot is occupied.
  size_t DistinctEstimate() const;

  // Estimate for a saturated sketch (all kBits slots hit).
  static constexpr size_t kSaturatedEstimate = kBits * 16;

  size_t set_bits() const { return set_bits_; }

  void Clear() {
    words_.fill(0);
    set_bits_ = 0;
  }

  // Bit-level equality: two sketches that absorbed the same value set are
  // equal regardless of insertion order or duplication.
  bool operator==(const ColumnSketch& other) const {
    return words_ == other.words_;
  }

  static constexpr size_t ApproxBytes() { return sizeof(ColumnSketch); }

 private:
  // SplitMix64 finalizer: decorrelates the dense ValueIds the symbol table
  // hands out (0, 1, 2, ...) before slot selection.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::array<uint64_t, kBits / 64> words_{};
  size_t set_bits_ = 0;
};

}  // namespace dire::storage

#endif  // DIRE_STORAGE_STATS_H_
