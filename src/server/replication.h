#ifndef DIRE_SERVER_REPLICATION_H_
#define DIRE_SERVER_REPLICATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

// WAL shipping between a primary and its followers, carried over the same
// line protocol as client traffic (a follower's connection *becomes* a
// replication stream after its REPLICATE handshake; see protocol.h).
//
// Stream lines, all '\n'-terminated:
//   STREAM epoch=<E> lsn=<L>               resume: records after L follow
//   SNAPSHOT epoch=<E> lsn=<L> bytes=<K>   full resync: K raw snapshot
//                                          bytes follow the line, then
//                                          records after L
//   REC <epoch> <lsn> <crc32c-hex> <payload>
//                                          one committed WAL record,
//                                          payload byte-for-byte as it was
//                                          framed on the primary (WAL
//                                          payloads are TSV-escaped and
//                                          newline-free). The CRC covers
//                                          the payload, end-to-end: a
//                                          record damaged in flight is
//                                          detected before it can be
//                                          applied.
//   PING epoch=<E> lsn=<L>                 heartbeat while idle; carries
//                                          the primary's position so the
//                                          follower can report lag
//   ACK lsn=<L>                            follower -> primary: everything
//                                          through L is durably applied
namespace dire::server {

// "REC <epoch> <lsn> <crc32c-hex> <payload>" — parsing verifies the CRC.
std::string FormatRecLine(uint64_t epoch, uint64_t lsn,
                          std::string_view payload);
struct RecLine {
  uint64_t epoch = 0;
  uint64_t lsn = 0;
  std::string payload;
};
Result<RecLine> ParseRecLine(std::string_view line);

std::string FormatAckLine(uint64_t lsn);
Result<uint64_t> ParseAckLine(std::string_view line);

std::string FormatPingLine(uint64_t epoch, uint64_t lsn);
struct PingLine {
  uint64_t epoch = 0;
  uint64_t lsn = 0;
};
Result<PingLine> ParsePingLine(std::string_view line);

// The handshake response: STREAM (resume) or SNAPSHOT (full resync).
struct StreamHeader {
  bool snapshot = false;
  uint64_t epoch = 0;
  uint64_t lsn = 0;
  uint64_t snapshot_bytes = 0;
};
std::string FormatStreamLine(uint64_t epoch, uint64_t lsn);
std::string FormatSnapshotLine(uint64_t epoch, uint64_t lsn, uint64_t bytes);
Result<StreamHeader> ParseStreamHeader(std::string_view line);

// Connects to "host:port" (numeric IPv4). Returns the connected fd; the
// caller owns it.
Result<int> DialTcp(const std::string& target);

// Buffered line/byte reader over a socket, with poll-based timeouts, used
// by both ends of a replication stream.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  // Waits up to `timeout_ms` for one complete line (stripped of '\n').
  // Ok(true): *line produced. Ok(false): timed out with no complete line.
  // Error: peer closed or socket failure.
  Result<bool> ReadLine(int timeout_ms, std::string* line);

  // Reads exactly `n` raw bytes (buffered data first), polling in
  // `timeout_ms` slices; `keep_waiting` is consulted at each slice so a
  // shutdown can abort a long transfer.
  Status ReadBytes(size_t n, int timeout_ms,
                   const std::function<bool()>& keep_waiting,
                   std::string* out);

 private:
  int fd_;
  std::string buffer_;
};

// The primary's fan-out hub: every committed write is published once and
// drained to each attached follower by that follower's connection thread.
//
// Synchronization contract: Attach() and Publish() must be serialized by
// the caller (the server holds its database lock exclusively for both), so
// a session's preload plus its published records form a gapless stream.
// Everything else is internally synchronized.
class ReplicationHub {
 public:
  explicit ReplicationHub(int heartbeat_ms);
  ~ReplicationHub();

  // Registers a follower whose outbox starts with `preload` (handshake
  // line, optional raw snapshot bytes, backlog REC lines — written
  // verbatim, in order). Returns the session id for RunSession.
  uint64_t Attach(std::vector<std::string> preload);

  // Current stream position, carried by heartbeats; Publish advances it.
  void Advance(uint64_t epoch, uint64_t lsn);

  // Queues one committed record for every attached session.
  void Publish(uint64_t epoch, uint64_t lsn, std::string_view payload);

  // Runs session `id` on the calling (connection) thread: drains the
  // outbox to `fd`, reads ACK lines back, emits heartbeats when idle.
  // Returns when the peer disconnects, the session is killed as a laggard,
  // or Stop() is called. Closes nothing: the caller owns fd.
  void RunSession(uint64_t id, int fd);

  // Blocks until every session attached right now has acked >= lsn, up to
  // `timeout_ms`; sessions still behind at the deadline are killed (they
  // re-handshake and resync when the follower reconnects). Returns false
  // if any session was killed or died while waiting.
  bool AwaitAcks(uint64_t lsn, int timeout_ms);

  // Kills every session and makes current and future RunSession calls
  // return immediately.
  void Stop();

  int follower_count() const;
  // Smallest acked lsn across live sessions; 0 with no followers.
  uint64_t min_acked() const;
  uint64_t shipped_total() const {
    return shipped_total_.load(std::memory_order_relaxed);
  }
  uint64_t acks_total() const {
    return acks_total_.load(std::memory_order_relaxed);
  }

 private:
  struct Session {
    std::deque<std::string> outbox;
    int fd = -1;
    uint64_t acked = 0;
    bool dead = false;
  };

  const int heartbeat_ms_;
  mutable std::mutex mu_;
  // Wakes session senders (new outbox data, kill, stop).
  std::condition_variable work_cv_;
  // Wakes AwaitAcks (ack progress, session death).
  std::condition_variable ack_cv_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_id_ = 1;
  bool stopping_ = false;
  uint64_t epoch_ = 0;
  uint64_t lsn_ = 0;
  std::atomic<uint64_t> shipped_total_{0};
  std::atomic<uint64_t> acks_total_{0};
};

}  // namespace dire::server

#endif  // DIRE_SERVER_REPLICATION_H_
