#include "server/protocol.h"

#include <optional>

#include "base/string_util.h"
#include "parser/parser.h"

namespace dire::server {

namespace {

// Parses a nonnegative integer argument; nullopt on garbage or overflow.
std::optional<int64_t> ParseNonNegative(std::string_view text) {
  if (text.empty() || text.size() > 18) return std::nullopt;
  int64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    out = out * 10 + (c - '0');
  }
  return out;
}

Status RequireGround(const ast::Atom& atom, const char* verb) {
  for (const ast::Term& t : atom.args) {
    if (!t.IsConstant()) {
      return Status::InvalidArgument(std::string(verb) +
                                     " needs a ground fact, got variable '" +
                                     t.text() + "' in " + atom.ToString());
    }
  }
  return Status::Ok();
}

// Parses a "key=<u64>" token; nullopt unless the key matches and the value
// is a clean decimal.
std::optional<uint64_t> ParseKeyU64(std::string_view token,
                                    std::string_view key) {
  if (token.size() <= key.size() + 1 || token.substr(0, key.size()) != key ||
      token[key.size()] != '=') {
    return std::nullopt;
  }
  std::string_view digits = token.substr(key.size() + 1);
  if (digits.empty() || digits.size() > 19) return std::nullopt;
  uint64_t out = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    out = out * 10 + static_cast<uint64_t>(c - '0');
  }
  return out;
}

}  // namespace

Result<Request> ParseRequest(std::string_view line) {
  std::string_view trimmed = StripWhitespace(line);
  if (trimmed.empty()) return Status::InvalidArgument("empty request");
  size_t space = trimmed.find_first_of(" \t");
  std::string verb(trimmed.substr(0, space));
  std::string_view rest =
      space == std::string_view::npos
          ? std::string_view()
          : StripWhitespace(trimmed.substr(space + 1));

  Request req;
  if (verb == "STATS" || verb == "HEALTH" || verb == "QUIT") {
    if (!rest.empty()) {
      return Status::InvalidArgument(verb + " takes no arguments");
    }
    req.kind = verb == "STATS"    ? Request::Kind::kStats
               : verb == "HEALTH" ? Request::Kind::kHealth
                                  : Request::Kind::kQuit;
    return req;
  }
  if (verb == "SLEEP") {
    std::optional<int64_t> ms = ParseNonNegative(rest);
    if (!ms) {
      return Status::InvalidArgument(
          "SLEEP needs a nonnegative millisecond count");
    }
    req.kind = Request::Kind::kSleep;
    req.sleep_ms = *ms;
    return req;
  }
  if (verb == "REPLICATE") {
    std::vector<std::string> tokens = Split(rest, ' ');
    std::optional<uint64_t> lsn;
    std::optional<uint64_t> epoch;
    if (tokens.size() == 2) {
      lsn = ParseKeyU64(tokens[0], "lsn");
      epoch = ParseKeyU64(tokens[1], "epoch");
    }
    if (!lsn || !epoch) {
      return Status::InvalidArgument(
          "REPLICATE needs 'lsn=<n> epoch=<n>' arguments");
    }
    req.kind = Request::Kind::kReplicate;
    req.repl_lsn = *lsn;
    req.repl_epoch = *epoch;
    return req;
  }
  if (verb == "PROMOTE") {
    req.kind = Request::Kind::kPromote;
    if (!rest.empty()) {
      std::optional<uint64_t> epoch = ParseKeyU64(rest, "epoch");
      if (!epoch || *epoch == 0) {
        return Status::InvalidArgument(
            "PROMOTE takes an optional 'epoch=<n>' argument (n > 0)");
      }
      req.promote_epoch = *epoch;
    }
    return req;
  }
  if (verb == "QUERY" || verb == "ADD" || verb == "RETRACT") {
    if (rest.empty()) {
      return Status::InvalidArgument(verb + " needs an atom argument");
    }
    DIRE_ASSIGN_OR_RETURN(req.atom, parser::ParseAtom(rest));
    if (verb == "QUERY") {
      req.kind = Request::Kind::kQuery;
    } else {
      req.kind =
          verb == "ADD" ? Request::Kind::kAdd : Request::Kind::kRetract;
      DIRE_RETURN_IF_ERROR(RequireGround(req.atom, verb.c_str()));
    }
    return req;
  }
  return Status::InvalidArgument("unknown request verb '" + verb + "'");
}

std::string RenderTuple(const storage::Database& db,
                        const std::string& predicate,
                        const storage::Tuple& tuple) {
  std::string out = predicate;
  out += '(';
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i != 0) out += ", ";
    out += db.symbols().Name(tuple[i]);
  }
  out += ')';
  return out;
}

std::string OverloadedLine(int retry_after_ms) {
  return "OVERLOADED retry-after-ms=" + std::to_string(retry_after_ms);
}

std::string NotReadyLine(int retry_after_ms) {
  return "NOTREADY retry-after-ms=" + std::to_string(retry_after_ms);
}

std::string ReadonlyLine(const std::string& leader) {
  return "READONLY leader=" + (leader.empty() ? "unknown" : leader);
}

int JitteredRetryAfterMs(int base_ms, uint64_t seed, uint64_t sequence) {
  if (base_ms <= 0) return base_ms;
  // splitmix64: cheap, stateless, and well mixed even for tiny inputs.
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (sequence + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  // Spread over [base/2, 3*base/2]; width is base_ms+1 so both ends land.
  int64_t lo = base_ms - base_ms / 2;
  int64_t width = static_cast<int64_t>(base_ms) + 1;
  return static_cast<int>(lo + static_cast<int64_t>(z % width));
}

std::string ErrorLine(const Status& status) {
  // Responses are line-framed: fold any newlines in the diagnostic.
  std::string message = status.ToString();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERROR " + message;
}

}  // namespace dire::server
