#ifndef DIRE_SERVER_HTTP_H_
#define DIRE_SERVER_HTTP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "base/obs.h"
#include "base/result.h"

// The serving observability surface: a minimal embedded HTTP/1.1 listener
// (GET only, one request per connection) plus the rolling time-series ring
// it serves from /statusz. The listener runs its own acceptor thread and is
// entirely off the admission path, so /metrics and /healthz answer even
// while every worker slot is held and every queue position is taken — the
// whole point of a scrape endpoint on an overload-safe server.
namespace dire::server {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // Request target with any "?query" stripped.
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

// One-request-per-connection HTTP/1.1 server. Create() binds and starts the
// acceptor thread immediately; Stop() (idempotent, also run by the
// destructor) stops accepting and waits for in-flight connection threads.
// The handler runs on a per-connection thread and must be thread-safe; it
// is never invoked after Stop() returns.
class HttpServer {
 public:
  static Result<std::unique_ptr<HttpServer>> Create(const std::string& host,
                                                    int port,
                                                    HttpHandler handler);
  ~HttpServer();

  // The bound TCP port (the kernel-chosen one when created with port 0).
  int port() const { return port_; }

  void Stop();

 private:
  explicit HttpServer(HttpHandler handler);

  void AcceptLoop();
  void ServeConnection(int fd);

  const HttpHandler handler_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  int active_connections_ = 0;
  bool stopped_ = false;
};

// Rolling in-memory time series behind /statusz: ~5 minutes of per-second
// slots. Request threads record latencies and sheds into the open slot; a
// 1 Hz sampler thread seals it with Tick(), attaching the instantaneous
// gauges (queue depth, replication lag). ToJson() renders the sealed slots
// oldest-first as parallel arrays. Latency percentiles use the same log2
// bucketing as obs::Histogram, so p50/p99 are bucket upper bounds, not
// exact order statistics. Self-contained (no registry) so /statusz keeps
// working under -DDIRE_OBS=OFF.
class TimeSeriesRing {
 public:
  static constexpr int kSlots = 300;  // 5 minutes at 1 s resolution.

  // Any thread: accounts one completed request with its total server-side
  // latency (queue wait + execution).
  void RecordRequest(uint64_t latency_us);
  // Any thread: accounts one request shed at admission.
  void RecordShed();

  // Seals the open slot with the sampled gauges and opens the next one.
  // Called once per second by the owner's sampler thread.
  void Tick(int64_t queue_depth, int64_t repl_lag);

  // {"resolution_s":1,"samples":N,"qps":[...],"p50_us":[...],
  //  "p99_us":[...],"queue_depth":[...],"shed":[...],"repl_lag":[...]}
  // Arrays are oldest..newest over the sealed slots.
  std::string ToJson() const;

 private:
  struct Slot {
    uint32_t requests = 0;
    uint32_t shed = 0;
    uint32_t lat_buckets[obs::Histogram::kNumBuckets] = {};
    int64_t queue_depth = 0;
    int64_t repl_lag = 0;
  };

  // Smallest bucket upper bound covering quantile `q` of the slot's
  // latencies; 0 when the slot saw no requests.
  static uint64_t SlotQuantile(const Slot& slot, double q);

  mutable std::mutex mu_;
  Slot current_;
  Slot ring_[kSlots];
  int size_ = 0;   // Sealed slots, up to kSlots.
  int next_ = 0;   // Ring position the next sealed slot lands in.
};

}  // namespace dire::server

#endif  // DIRE_SERVER_HTTP_H_
