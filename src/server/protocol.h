#ifndef DIRE_SERVER_PROTOCOL_H_
#define DIRE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ast/ast.h"
#include "base/result.h"
#include "storage/database.h"

// The `dire serve` wire protocol: line-framed text over TCP. Every request
// is one '\n'-terminated line; every response is one status line, plus —
// for QUERY and STATS — payload lines closed by a final "END" line, so a
// client always knows where a response stops without length prefixes.
//
// Requests:
//   QUERY <atom>      select tuples matching the atom's constant/variable
//                     pattern against the materialized fixpoint, e.g.
//                     "QUERY t(a, X)"
//   ADD <fact>        durably append a ground fact (WAL fsync before the
//                     acknowledgement) and re-derive its consequences
//   RETRACT <fact>    durably retract a ground base fact and re-derive the
//                     fixpoint from the remaining base facts
//   STATS             server counters, one "key value" line each
//   HEALTH            one-line readiness + liveness report
//   SLEEP <ms>        hold a worker slot for <ms>, bounded by the request
//                     deadline (load-testing aid: makes saturation and
//                     timeout behavior deterministic to drive externally)
//   QUIT              close this connection
//   REPLICATE lsn=<L> epoch=<E>
//                     turn this connection into a replication stream: the
//                     server answers "STREAM epoch=<E> lsn=<L>" (resuming
//                     after the follower's lsn) or "SNAPSHOT epoch=<E>
//                     lsn=<L> bytes=<K>" followed by K raw snapshot bytes,
//                     then ships "REC <epoch> <lsn> <crc32c-hex> <payload>"
//                     lines as writes commit, with "PING epoch=<E> lsn=<L>"
//                     heartbeats when idle; the follower sends "ACK lsn=<L>"
//                     lines back after each durable apply
//   PROMOTE [epoch=<N>]
//                     promote this (follower) server to primary at epoch N
//                     (default: its current epoch + 1); answers
//                     "OK promoted epoch=<E> lsn=<L>"
//
// Response status lines:
//   OK ...                         request succeeded ("OK <n>" for QUERY:
//                                  n payload rows follow, then "END")
//   PARTIAL <n> reason=<limit>     the request's resource guard tripped;
//                                  the n rows that follow are a sound
//                                  prefix of the full answer
//   OVERLOADED retry-after-ms=<n>  admission control shed this request;
//                                  retry after the hinted backoff
//   NOTREADY retry-after-ms=<n>    recovery/startup has not finished
//   READONLY leader=<addr>         this server is a follower; writes must
//                                  go to the primary at <addr>
//   ERROR <message>                malformed request or execution failure
//
// The retry-after-ms hints of OVERLOADED and NOTREADY carry deterministic
// per-response jitter (seeded, so tests can predict it): a thundering herd
// of shed clients that all obey the hint would otherwise return in
// lockstep and be shed again together.
namespace dire::server {

struct Request {
  enum class Kind {
    kQuery,
    kAdd,
    kRetract,
    kStats,
    kHealth,
    kSleep,
    kQuit,
    kReplicate,
    kPromote,
  };
  Kind kind = Kind::kHealth;
  // The query pattern (kQuery) or ground fact (kAdd / kRetract).
  ast::Atom atom;
  // kSleep only: how long to hold the worker slot.
  int64_t sleep_ms = 0;
  // kReplicate only: where the follower's durable state stands. epoch 0
  // declares "my state is untrustworthy; send a snapshot".
  uint64_t repl_lsn = 0;
  uint64_t repl_epoch = 0;
  // kPromote only: the epoch to promote into; 0 picks current epoch + 1.
  uint64_t promote_epoch = 0;
};

// Parses one request line (without its trailing newline). ADD and RETRACT
// additionally require the atom to be ground (constants only).
Result<Request> ParseRequest(std::string_view line);

// Renders one result tuple as "pred(a, b)" using the database's symbol
// table. Rows of a QUERY response are rendered with this and sorted, so
// equal answers are byte-identical across runs and restarts.
std::string RenderTuple(const storage::Database& db,
                        const std::string& predicate,
                        const storage::Tuple& tuple);

// Response-line builders (the '\n' is appended by the connection writer).
std::string OverloadedLine(int retry_after_ms);
std::string NotReadyLine(int retry_after_ms);
std::string ReadonlyLine(const std::string& leader);
std::string ErrorLine(const Status& status);

// Deterministic retry-after jitter: maps (seed, sequence) to a value in
// [base_ms/2, 3*base_ms/2] via a splitmix64 hash. Pure, so a test that
// knows the server's seed and response ordinal can predict the hint
// exactly, while distinct shed clients still spread out.
int JitteredRetryAfterMs(int base_ms, uint64_t seed, uint64_t sequence);

}  // namespace dire::server

#endif  // DIRE_SERVER_PROTOCOL_H_
