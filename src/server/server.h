#ifndef DIRE_SERVER_SERVER_H_
#define DIRE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>

#include "ast/ast.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "eval/checkpoint.h"
#include "eval/evaluator.h"
#include "eval/maintain.h"
#include "server/admission.h"
#include "server/http.h"
#include "server/protocol.h"
#include "server/replication.h"
#include "storage/persist.h"

namespace dire::server {

// Configuration of one `dire serve` process (see tools/dire_cli.cc for the
// flags that populate it).
struct ServerConfig {
  // The durable home of the database; locked for the server's lifetime.
  std::string data_dir;
  // IPv4 listen address; "0.0.0.0" for all interfaces.
  std::string host = "127.0.0.1";
  // TCP port; 0 asks the kernel for a free one (see Server::port()).
  int port = 0;

  AdmissionConfig admission;

  // Per-request ExecutionGuard budgets; 0 = unlimited.
  int64_t request_timeout_ms = 0;
  uint64_t request_max_tuples = 0;
  // How a tripped guard surfaces on the QUERY path: false returns an ERROR
  // line, true returns PARTIAL plus the sound prefix scanned so far. Write
  // re-derivation always degrades to PARTIAL: by the time the guard can
  // trip, the fact is already durably committed, so ERROR would misreport.
  bool partial_on_exhaustion = false;

  // Maintain the derived fixpoint incrementally on writes (counting for
  // non-recursive strata, delete-and-rederive for recursive ones; see
  // eval/maintain.h) instead of re-deriving everything from the base
  // facts. Only the write's own consequences are derived and charged
  // against the request budget, so small writes get exact (non-PARTIAL)
  // acknowledgements. When maintenance cannot apply (unstratifiable
  // program, mid-maintenance failure, derived state not at fixpoint) the
  // server transparently falls back to the full re-derivation path.
  // Recovery also maintains: when the snapshot carries a completed
  // checkpoint of this program, the WAL tail's net effect is applied to
  // the checkpointed fixpoint instead of re-deriving from scratch.
  bool maintain = true;

  // Fold the WAL into a fresh snapshot after this many durable writes
  // (plus once at shutdown); 0 folds only at shutdown. Between folds a
  // crash replays the WAL tail, so this bounds recovery time, not safety.
  int checkpoint_every_writes = 32;

  // Worker threads inside each evaluation (EvalOptions::num_threads).
  int eval_threads = 1;

  // Replication. When `replicate_from` is set ("host:port" of the
  // primary), this server starts as a read-only follower of that primary:
  // it streams committed WAL records, applies them, answers QUERY / STATS
  // / HEALTH, rejects writes with READONLY, and can be turned into the
  // primary with PROMOTE.
  std::string replicate_from;
  // Primary side: how long a write waits for every follower's durable ACK
  // before the laggard is disconnected and the write acknowledged anyway
  // (the primary's own WAL fsync is the base durability guarantee).
  // 0 ships records asynchronously — the write never waits.
  int replication_ack_timeout_ms = 2000;
  // Heartbeat cadence of an idle replication stream, and the follower's
  // reconnect pacing.
  int replication_heartbeat_ms = 500;

  // Seed of the deterministic retry-after jitter on OVERLOADED / NOTREADY
  // hints (see JitteredRetryAfterMs).
  uint64_t retry_jitter_seed = 1;

  // Close client connections that stay idle (no bytes, no pending
  // request) for this long; 0 = never. Replication streams are exempt.
  int idle_timeout_ms = 0;

  // Embedded HTTP observability listener (see server/http.h): /metrics,
  // /healthz, /statusz, /tracez, bound on `host`. It has its own acceptor
  // thread off the admission path, so it answers even while every worker
  // slot is held (and during the NOTREADY recovery window). -1 disables;
  // 0 asks the kernel for a free port (see Server::http_port()).
  int http_port = -1;

  // Structured JSON access log: one line per served request (see
  // DESIGN.md §9 for the schema). Empty disables; "-" writes to stderr.
  // HEALTH / STATS probes are deliberately not logged — monitoring chatter
  // would drown the requests the log exists to explain.
  std::string access_log;

  // Requests whose execution time exceeds this many milliseconds
  // additionally log the program's join orders with estimated vs actual
  // cardinalities (the PR 5 ExplainProgram path), so a live cost-model
  // misestimate is diagnosable from logs alone. 0 disables. The capture
  // re-executes the plans in counting mode under the exclusive database
  // lock, after the response has been sent but while the request still
  // holds its admission slot — slow and rare by construction.
  int64_t slow_query_ms = 0;

  // Test-only: stretches recovery by this many milliseconds so tests can
  // deterministically observe the NOTREADY window. Never set in production.
  int recovery_delay_ms_for_test = 0;
};

// Everything observable about one served request: the unit of the access
// log, the /tracez ring, the per-verb latency histograms, and slow-query
// capture. Assigned its ID when the request enters the admission path.
struct RequestRecord {
  uint64_t id = 0;
  std::string verb;      // "QUERY", "ADD", ...
  std::string relation;  // Target predicate; empty for SLEEP.
  double cost_est = 0;   // Admission cost estimate (QUERY only).
  bool admitted = false;
  int64_t queue_us = 0;  // Admission to worker pickup.
  int64_t exec_us = 0;   // Worker execution time.
  uint64_t tuples = 0;   // Tuples returned (QUERY) or applied (writes).
  std::string status;    // First token of the response line ("OK", ...).
  std::string guard;     // Guard trip reason; empty when nothing tripped.
  int64_t ts_ms = 0;     // Wall-clock completion time.
};

// A long-lived, overload-safe `dire serve` process:
//
//   - Create() binds and listens, so clients can connect immediately; until
//     recovery finishes they get HEALTH `ready=0` and NOTREADY for
//     everything else.
//   - Run() recovers the database (snapshot load + WAL replay + re-derived
//     fixpoint — derived relations are cleared and rebuilt from the base
//     facts, which also repairs any stale derivations a crashed retraction
//     left behind), marks the server ready, and serves until Shutdown().
//   - Requests run on a bounded WorkerPool behind an AdmissionController:
//     at most max_inflight execute concurrently, at most max_queue wait,
//     everything beyond is shed with OVERLOADED instead of queueing without
//     bound. Each admitted request runs under its own ExecutionGuard.
//   - Reads (QUERY) hold the database's shared lock and scan the
//     materialized fixpoint; writes (ADD / RETRACT) hold it exclusively,
//     commit through the WAL (fsync before the acknowledgement), then
//     re-derive consequences. Writes are accepted only for base (EDB)
//     predicates: a predicate derived by rules cannot be written, which is
//     what keeps "derived state is a pure function of the base facts" true
//     and retraction sound.
//   - Shutdown() (or SIGTERM via signals::InstallShutdownHandlers) drains
//     admitted requests, folds the WAL into a final checkpoint, and
//     releases the data-dir lock. SIGKILL at any moment instead leaves a
//     state DataDir::Open recovers exactly (snapshot + WAL tail).
//   - Replication (see replication.h and DESIGN.md): a primary ships every
//     committed WAL record to attached followers before acknowledging the
//     write; a follower (config.replicate_from) applies the stream,
//     answers reads, rejects writes with READONLY, and takes over on
//     PROMOTE — which durably fences the old epoch so a deposed primary
//     that restarts fails closed instead of split-braining.
class Server {
 public:
  // Parses nothing and touches no data: binds `config.host:config.port`
  // and listens. Fails fast on an unusable address.
  static Result<std::unique_ptr<Server>> Create(ServerConfig config,
                                                ast::Program program,
                                                std::string program_text);
  ~Server();

  // The full lifecycle, on the calling thread: recovery, serving, drain,
  // final checkpoint. Returns when Shutdown() was called (from another
  // thread or a signal watcher) or recovery failed.
  Status Run();

  // Asks Run() to wind down gracefully. Safe from any thread, idempotent.
  void Shutdown();

  // The bound TCP port — the ephemeral one the kernel chose when
  // config.port was 0.
  int port() const { return port_; }
  // The observability HTTP port; -1 when config.http_port disabled it.
  int http_port() const { return http_ != nullptr ? http_->port() : -1; }
  bool ready() const { return ready_.load(std::memory_order_acquire); }

  // This server's place in a replication pair. A follower becomes
  // kPromoting for the duration of a PROMOTE and kPrimary on success;
  // there is no transition back to follower within one process lifetime.
  enum class Role { kPrimary, kFollower, kPromoting };

 private:
  Server(ServerConfig config, ast::Program program, std::string program_text);

  // Opens the data dir (lock + snapshot + WAL replay), rebuilds the
  // derived fixpoint, and takes the initial checkpoint. With maintenance
  // enabled and a matching completed checkpoint in the snapshot, the
  // rebuild applies the WAL tail's net effect to the checkpointed
  // fixpoint (TryMaintainedRecovery); otherwise derived relations are
  // cleared and re-derived from the base facts. Refuses to start as
  // primary on a fenced directory (a deposed primary fails closed).
  Status Recover();

  // The maintenance-based recovery fast path. Returns true when the
  // derived state has been brought to the fixpoint and checkpointed;
  // false means the caller must fall back to clear + full re-derivation
  // (never an error: recovery by re-derivation is always possible).
  bool TryMaintainedRecovery();

  // Accept loop (own thread): polls the listen socket, spawns one detached
  // connection thread per client.
  void AcceptLoop();
  // One client connection: reads request lines, answers them in order.
  void ServeConnection(int fd);

  // Turns a client connection into a replication stream (primary side):
  // decides resume vs snapshot under the exclusive database lock, then
  // drains records to the follower until it disconnects.
  void HandleReplicate(int fd, const Request& request);

  // Follower side, own thread: dial the primary, handshake, apply records
  // and evaluate their consequences, ACK, reconnect on failure. Exits once
  // promoted (or at shutdown).
  void FollowerLoop();
  // One connected stretch of FollowerLoop; returns to reconnect.
  // `force_resync` requests a snapshot handshake regardless of local
  // state (set after a stream divergence).
  void FollowerSession(int fd, bool* force_resync);
  // Applies one drained batch of replicated records under the exclusive
  // database lock, re-derives, folds at the checkpoint cadence. Returns
  // the response status; on error the stream must resync.
  Status ApplyReplicatedBatch(const std::vector<std::string>& lines);

  // PROMOTE: fence off the follower link, bump the epoch durably, rebuild
  // the fixpoint, start accepting writes.
  std::string HandlePromote(const Request& request);

  // The jittered retry hint for the next OVERLOADED / NOTREADY response.
  int NextRetryAfterMs();

  // Dispatch of one parsed request from a connection thread. HEALTH and
  // STATS are answered inline (they must stay responsive under overload);
  // everything else is priced, admitted, and executed on the worker pool.
  std::string HandleRequest(const Request& request);
  // Runs on a worker-pool thread, under admission.
  std::string ExecuteAdmitted(const Request& request, RequestRecord* rec);

  std::string HandleQuery(const Request& request, const ExecutionGuard* g,
                          RequestRecord* rec);
  std::string HandleWrite(const Request& request, const ExecutionGuard* g,
                          RequestRecord* rec);
  std::string HandleSleep(const Request& request, const ExecutionGuard* g,
                          RequestRecord* rec);
  std::string HandleStats();
  std::string HandleHealth();

  // Terminal accounting for one tracked request: stamps status/time,
  // observes the per-verb latency histograms and the /statusz ring, writes
  // the access-log line, files the record into the /tracez ring, and —
  // past the slow-query threshold — captures the live plans.
  void FinishRequest(RequestRecord rec, const std::string& response);
  void WriteAccessLogLine(const std::string& line);
  void LogSlowQuery(const RequestRecord& rec);

  // The observability HTTP endpoints (served on http_ threads).
  HttpResponse HandleHttp(const HttpRequest& request);
  std::string HealthzJson();
  std::string StatuszJson();
  std::string TracezJson();

  // Seals one /statusz ring slot per second until shutdown.
  void SamplerLoop();
  // Follower's LSN distance behind the primary right now (0 off-replica
  // or before recovery).
  int64_t CurrentReplLag() const;
  int64_t UptimeSeconds() const;

  // Accounts a guard trip: deadline trips count toward timed_out_total.
  void CountTrip(const std::string& reason);

  // Durably folds the WAL into a fresh snapshot (caller holds db_mu_
  // exclusively or is single-threaded at shutdown).
  Status FoldCheckpoint();

  // Drops every relation a rule head derives into. Base facts are not
  // touched (writes to derived predicates are rejected at the protocol
  // level, and program-file facts are re-loaded by the next Evaluate).
  // Also resets the maintainer (its derivation counts lived inside the
  // dropped relations) and marks the derived state incomplete until the
  // next full evaluation converges.
  void ClearDerivedRelations();

  // EvalOptions shared by every re-derivation.
  eval::EvalOptions BaseEvalOptions() const;

  const ServerConfig config_;
  const ast::Program program_;
  const std::string program_text_;
  // Head predicates of non-fact rules: the derived (IDB) relations.
  std::set<std::string> derived_;

  int listen_fd_ = -1;
  int port_ = 0;

  std::unique_ptr<storage::DataDir> data_dir_;
  std::unique_ptr<eval::DataDirCheckpointer> checkpointer_;
  // Incremental view maintenance over data_dir_->db() (created in Recover,
  // used only under the exclusive db_mu_). Null until recovery.
  std::unique_ptr<eval::Maintainer> maintainer_;
  // Whether the derived relations currently hold the complete fixpoint
  // (maintenance requires it; a guard-tripped PARTIAL re-derivation clears
  // it until a full evaluation converges). Guarded by db_mu_.
  bool derived_complete_ = false;
  // Whether startup recovery maintained the WAL tail onto a checkpointed
  // fixpoint instead of re-deriving from the base facts (surfaced as the
  // `recovered_maintained` STATS line; chaos tests assert on it). Set once
  // in Recover, read-only afterwards.
  bool recovered_maintained_ = false;
  // Readers (QUERY, STATS) shared; writers (ADD, RETRACT, recovery,
  // shutdown checkpoint, replicated batches) exclusive. Sits above
  // DataDir's commit mutex.
  std::shared_mutex db_mu_;

  std::atomic<Role> role_{Role::kPrimary};
  // Primary side: fan-out of committed records to attached followers.
  // Created in Recover (primary) or HandlePromote; guarded by being set
  // before ready_ / read on request threads afterwards.
  std::unique_ptr<ReplicationHub> hub_;
  // Follower side.
  std::thread follower_thread_;
  std::atomic<int> repl_fd_{-1};
  std::atomic<bool> repl_connected_{false};
  // The primary's position from the last REC/PING, for lag reporting.
  std::atomic<uint64_t> leader_lsn_{0};
  // Serializes PROMOTE handling.
  std::mutex promote_mu_;

  AdmissionController admission_;
  std::unique_ptr<WorkerPool> pool_;

  std::atomic<bool> ready_{false};
  std::atomic<bool> stopping_{false};
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;

  std::thread accept_thread_;
  // Detached connection threads still running; Run() waits for zero.
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  int active_connections_ = 0;

  // Server-side counters surfaced by STATS (kept independently of the obs
  // registry so they work under -DDIRE_OBS=OFF too).
  std::atomic<uint64_t> timed_out_total_{0};
  std::atomic<uint64_t> partial_total_{0};
  std::atomic<uint64_t> writes_total_{0};
  std::atomic<uint64_t> folds_total_{0};
  std::atomic<uint64_t> ivm_applied_total_{0};
  std::atomic<uint64_t> ivm_fallbacks_total_{0};
  std::atomic<uint64_t> readonly_rejected_total_{0};
  std::atomic<uint64_t> idle_disconnects_total_{0};
  std::atomic<uint64_t> repl_records_applied_total_{0};
  std::atomic<uint64_t> repl_resyncs_total_{0};
  std::atomic<uint64_t> repl_acks_missed_total_{0};
  // Ordinal of the next jittered retry-after hint.
  std::atomic<uint64_t> retry_seq_{0};
  // Durable writes since the last WAL fold, gated by db_mu_.
  int writes_since_fold_ = 0;

  // --- Serving observability (PR 8) ---------------------------------------
  // The embedded HTTP listener; created in Create() so scrapes are answered
  // from the first moment of the NOTREADY window, stopped in Run()'s
  // wind-down before data_dir_ is released.
  std::unique_ptr<HttpServer> http_;
  // /statusz rolling time series, sealed at 1 Hz by sampler_thread_.
  TimeSeriesRing ring_;
  std::thread sampler_thread_;
  // Access log sink; nullptr when disabled, stderr for "-".
  std::FILE* access_log_file_ = nullptr;
  bool access_log_owned_ = false;
  std::mutex access_log_mu_;
  // /tracez: the most recent completed request records, newest at back.
  std::mutex recent_mu_;
  std::deque<RequestRecord> recent_requests_;
  std::atomic<uint64_t> next_request_id_{0};
  std::atomic<uint64_t> slow_queries_total_{0};
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
};

}  // namespace dire::server

#endif  // DIRE_SERVER_SERVER_H_
