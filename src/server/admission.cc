#include "server/admission.h"

#include <algorithm>

#include "base/obs.h"
#include "eval/cost.h"

namespace dire::server {

namespace {

obs::Counter* AcceptedCounter() {
  static obs::Counter* c = obs::GetCounter(
      "dire_server_accepted_total", "Requests admitted for execution");
  return c;
}

obs::Counter* RejectedCounter(const char* reason) {
  // Two stable series; resolved once each.
  static obs::Counter* shed =
      obs::GetCounter("dire_server_rejected_total",
                      "Requests rejected at admission",
                      {{"reason", "overloaded"}});
  static obs::Counter* priced =
      obs::GetCounter("dire_server_rejected_total",
                      "Requests rejected at admission",
                      {{"reason", "too_expensive"}});
  return reason[0] == 'o' ? shed : priced;
}

obs::Gauge* InflightGauge() {
  static obs::Gauge* g =
      obs::GetGauge("dire_server_inflight",
                    "Requests currently admitted (executing or queued)");
  return g;
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {}

Admission AdmissionController::Admit(double cost) {
  if (config_.max_query_cost > 0 && cost > config_.max_query_cost) {
    std::lock_guard<std::mutex> lock(mu_);
    ++too_expensive_;
    RejectedCounter("too_expensive")->Add(1);
    return Admission::kTooExpensive;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const int capacity =
      std::max(config_.max_inflight, 1) + std::max(config_.max_queue, 0);
  if (outstanding_ >= capacity) {
    ++shed_;
    RejectedCounter("overloaded")->Add(1);
    return Admission::kShed;
  }
  ++outstanding_;
  ++admitted_;
  AcceptedCounter()->Add(1);
  InflightGauge()->Set(outstanding_);
  return Admission::kAdmitted;
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  --outstanding_;
  InflightGauge()->Set(outstanding_);
}

int AdmissionController::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

uint64_t AdmissionController::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t AdmissionController::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

uint64_t AdmissionController::too_expensive_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return too_expensive_;
}

double EstimateQueryCost(const storage::Database& db,
                         const ast::Atom& query) {
  // The QUERY path is a scan of the full relation (SelectMatching), so the
  // honest price of admitting it is the relation's estimated row count —
  // the same statistic the join planner reads.
  eval::DatabaseStatsProvider stats(&db);
  eval::RelationEstimate est;
  if (!stats.Lookup(query.predicate, eval::AtomSource::kFull, &est)) {
    return 0;
  }
  return est.rows;
}

}  // namespace dire::server
