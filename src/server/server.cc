#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <optional>

#include "base/failpoints.h"
#include "base/log.h"
#include "base/obs.h"
#include "base/signal.h"
#include "base/string_util.h"
#include "base/version.h"
#include "eval/explain.h"
#include "eval/magic.h"

namespace dire::server {

namespace {

// Ceiling on one buffered request line; a client exceeding it is cut off
// rather than growing the buffer without bound.
constexpr size_t kMaxRequestBytes = 1 << 20;

obs::Counter* TimedOutCounter() {
  static obs::Counter* c =
      obs::GetCounter("dire_server_timed_out_total",
                      "Requests whose deadline guard tripped");
  return c;
}

obs::Counter* PartialCounter() {
  static obs::Counter* c = obs::GetCounter(
      "dire_server_partial_total",
      "Requests answered with a PARTIAL (guard-bounded) result");
  return c;
}

obs::Counter* WritesCounter() {
  static obs::Counter* c = obs::GetCounter(
      "dire_server_writes_total", "Durable ADD/RETRACT commits");
  return c;
}

obs::Counter* FoldsCounter() {
  static obs::Counter* c =
      obs::GetCounter("dire_server_checkpoints_total",
                      "WAL folds into a fresh snapshot taken by the server");
  return c;
}

obs::Counter* IvmAppliedCounter() {
  static obs::Counter* c = obs::GetCounter(
      "dire_server_ivm_applied_total",
      "Writes whose consequences were maintained incrementally");
  return c;
}

obs::Counter* IvmFallbacksCounter() {
  static obs::Counter* c = obs::GetCounter(
      "dire_server_ivm_fallbacks_total",
      "Writes that fell back from maintenance to a full re-derivation");
  return c;
}

obs::Counter* SlowQueriesCounter() {
  static obs::Counter* c =
      obs::GetCounter("dire_server_slow_queries_total",
                      "Requests whose execution exceeded --slow-query-ms");
  return c;
}

obs::Gauge* ReplLagGauge() {
  static obs::Gauge* g = obs::GetGauge(
      "dire_server_repl_lag",
      "Follower: LSN distance behind the primary, updated on every "
      "heartbeat and applied record");
  return g;
}

obs::Gauge* ReplConnectedGauge() {
  static obs::Gauge* g = obs::GetGauge(
      "dire_server_repl_connected",
      "Follower: 1 while the replication stream is attached");
  return g;
}

obs::Gauge* ArenaBytesGauge() {
  static obs::Gauge* g = obs::GetGauge(
      "dire_storage_arena_bytes",
      "Bytes reserved by tuple arenas and dedup tables across all "
      "relations (capacity, not live size)");
  return g;
}

// Per-verb latency histograms (queue wait and execution separately), in
// microseconds. The registry lookup is a mutex-guarded map find — fine off
// the per-tuple hot path; requests already take the admission mutex.
obs::Histogram* QueueWaitHistogram(const std::string& verb) {
  return obs::GetHistogram("dire_server_request_queue_us",
                           "Admission-to-worker-pickup wait per request",
                           {{"verb", verb}});
}

obs::Histogram* ExecHistogram(const std::string& verb) {
  return obs::GetHistogram("dire_server_request_exec_us",
                           "Worker execution time per request",
                           {{"verb", verb}});
}

int64_t NowWallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

int64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// A quoted, escaped JSON string literal.
std::string JsonStr(const std::string& s) {
  std::string out = "\"";
  out += obs::JsonEscape(s);
  out += '"';
  return out;
}

bool WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

// Whether the ground tuple `values` is already present in `db`.
bool RowPresent(const storage::Database& db, const std::string& predicate,
                const std::vector<std::string>& values) {
  const storage::Relation* rel = db.Find(predicate);
  if (rel == nullptr || rel->arity() != values.size()) return false;
  storage::Tuple t;
  t.reserve(values.size());
  for (const std::string& v : values) {
    storage::ValueId id = db.symbols().Find(v);
    if (id == storage::SymbolTable::kMissing) return false;
    t.push_back(id);
  }
  return rel->Contains(t);
}

std::vector<std::string> GroundValues(const ast::Atom& atom) {
  std::vector<std::string> values;
  values.reserve(atom.args.size());
  for (const ast::Term& t : atom.args) values.push_back(t.text());
  return values;
}

const char* VerbName(Request::Kind kind) {
  switch (kind) {
    case Request::Kind::kQuery:
      return "QUERY";
    case Request::Kind::kAdd:
      return "ADD";
    case Request::Kind::kRetract:
      return "RETRACT";
    case Request::Kind::kStats:
      return "STATS";
    case Request::Kind::kHealth:
      return "HEALTH";
    case Request::Kind::kSleep:
      return "SLEEP";
    case Request::Kind::kQuit:
      return "QUIT";
    case Request::Kind::kReplicate:
      return "REPLICATE";
    case Request::Kind::kPromote:
      return "PROMOTE";
  }
  return "?";
}

}  // namespace

Server::Server(ServerConfig config, ast::Program program,
               std::string program_text)
    : config_(std::move(config)),
      program_(std::move(program)),
      program_text_(std::move(program_text)),
      admission_(config_.admission),
      pool_(std::make_unique<WorkerPool>(config_.admission.max_inflight)) {
  for (const ast::Rule& r : program_.rules) {
    if (!r.IsFact()) derived_.insert(r.head.predicate);
  }
  if (!config_.replicate_from.empty()) role_ = Role::kFollower;
}

int Server::NextRetryAfterMs() {
  return JitteredRetryAfterMs(
      config_.admission.retry_after_ms, config_.retry_jitter_seed,
      retry_seq_.fetch_add(1, std::memory_order_relaxed));
}

Result<std::unique_ptr<Server>> Server::Create(ServerConfig config,
                                               ast::Program program,
                                               std::string program_text) {
  if (config.data_dir.empty()) {
    return Status::InvalidArgument("serve requires a data directory");
  }
  std::unique_ptr<Server> self(new Server(
      std::move(config), std::move(program), std::move(program_text)));

  self->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (self->listen_fd_ < 0) {
    return Status::Internal(std::string("cannot create listen socket: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(self->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port =
      htons(static_cast<uint16_t>(self->config_.port));
  if (::inet_pton(AF_INET, self->config_.host.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("not an IPv4 listen address: " +
                                   self->config_.host);
  }
  if (::bind(self->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Internal(StrFormat("cannot bind %s:%d: %s",
                                      self->config_.host.c_str(),
                                      self->config_.port,
                                      std::strerror(errno)));
  }
  if (::listen(self->listen_fd_, 128) != 0) {
    return Status::Internal(std::string("cannot listen: ") +
                            std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(self->listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0) {
    self->port_ = ntohs(bound.sin_port);
  }
  if (!self->config_.access_log.empty()) {
    if (self->config_.access_log == "-") {
      self->access_log_file_ = stderr;
    } else {
      self->access_log_file_ =
          std::fopen(self->config_.access_log.c_str(), "a");
      if (self->access_log_file_ == nullptr) {
        return Status::InvalidArgument("cannot open access log " +
                                       self->config_.access_log);
      }
      self->access_log_owned_ = true;
    }
  }
  if (self->config_.http_port >= 0) {
    // Bound here, before any recovery work, so /metrics and /healthz
    // answer from the first moment of the NOTREADY window.
    DIRE_ASSIGN_OR_RETURN(
        self->http_,
        HttpServer::Create(self->config_.host, self->config_.http_port,
                           [s = self.get()](const HttpRequest& request) {
                             return s->HandleHttp(request);
                           }));
  }
  obs::GetGauge("dire_build_info",
                "Build metadata as labels; the value is always 1",
                {{"version", dire::kVersion}})
      ->Set(1);
  return self;
}

Server::~Server() {
  // Handler threads capture `this`: make sure none run past destruction.
  if (http_ != nullptr) http_->Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (access_log_owned_ && access_log_file_ != nullptr) {
    std::fclose(access_log_file_);
  }
}

void Server::Shutdown() {
  stopping_.store(true, std::memory_order_release);
  shutdown_cv_.notify_all();
}

Status Server::Recover() {
  obs::Span span("server.recover", "server");
  if (config_.recovery_delay_ms_for_test > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.recovery_delay_ms_for_test));
  }
  DIRE_ASSIGN_OR_RETURN(data_dir_,
                        storage::DataDir::Open(config_.data_dir));
  if (config_.replicate_from.empty() && data_dir_->fenced()) {
    // Fail closed: a fenced directory belonged to a deposed primary whose
    // epoch has been superseded. Serving writes from it would split-brain.
    return Status::InvalidArgument(StrFormat(
        "data dir %s is fenced at epoch %llu (deposed by a failover); "
        "restart with --replicate-from pointing at the current primary to "
        "re-sync it",
        config_.data_dir.c_str(),
        static_cast<unsigned long long>(data_dir_->epoch())));
  }
  checkpointer_ = std::make_unique<eval::DataDirCheckpointer>(
      data_dir_.get(), eval::ProgramCrc(program_text_));
  const storage::RecoveredCheckpoint& rec = data_dir_->recovered();
  if (rec.has_program_crc &&
      rec.program_crc != eval::ProgramCrc(program_text_)) {
    log::Warn("server", "data dir was checkpointed under a different "
                        "program; re-deriving everything from base facts",
              {{"dir", config_.data_dir}});
  }
  maintainer_ = std::make_unique<eval::Maintainer>(data_dir_->db(),
                                                   program_);
  if (!maintainer_->init_status().ok()) {
    log::Warn("server", "incremental maintenance unavailable; every write "
                        "will re-derive",
              {{"reason", maintainer_->init_status().ToString()}});
  }
  if (config_.maintain && TryMaintainedRecovery()) {
    recovered_maintained_ = true;
    log::Info("server", "recovered by incremental maintenance",
              {{"wal_records",
                std::to_string(data_dir_->wal_tail().size())}});
  } else {
    // Derived state is a pure function of the base facts: drop it and
    // rebuild the fixpoint. This also repairs stale derivations a crash
    // between a retraction's WAL commit and its re-derivation left behind,
    // and ignores any checkpoint metadata from another program.
    ClearDerivedRelations();
    DIRE_RETURN_IF_ERROR(FoldCheckpoint());
  }
  if (role_.load(std::memory_order_acquire) == Role::kPrimary) {
    hub_ = std::make_unique<ReplicationHub>(config_.replication_heartbeat_ms);
    hub_->Advance(data_dir_->epoch(), data_dir_->lsn());
  }
  return Status::Ok();
}

bool Server::TryMaintainedRecovery() {
  if (maintainer_ == nullptr || !maintainer_->usable()) return false;
  // The snapshot must carry a COMPLETED checkpoint of exactly this program:
  // its derived relations are then the fixpoint over the snapshot's base
  // facts, and the replayed WAL tail is the delta to the current base
  // facts. (recovered() is cleared once any record replays, which is why
  // the pre-replay view is consulted; see DataDir::checkpoint_at_snapshot.)
  const storage::RecoveredCheckpoint& snap = data_dir_->checkpoint_at_snapshot();
  if (!snap.has_meta || !snap.has_program_crc ||
      snap.program_crc != eval::ProgramCrc(program_text_)) {
    return false;
  }
  if (snap.stratum != maintainer_->num_strata() || snap.rounds != 0) {
    // Mid-evaluation checkpoint: the derived relations are a partial
    // fixpoint, which maintenance cannot start from.
    return false;
  }
  for (const std::string& name : data_dir_->db()->RelationNames()) {
    // Magic-set artifacts from an earlier CLI session would survive a
    // maintained recovery (nothing clears them on this path) and leak into
    // future snapshots; let the classic path drop them.
    if (name.find('@') != std::string::npos) return false;
  }
  // Net effect of the WAL tail per tuple: effective operations on one
  // tuple strictly alternate insert/retract, so an even count cancels out
  // and an odd count nets to the direction of the last operation.
  std::map<std::pair<std::string, std::vector<std::string>>,
           std::pair<size_t, bool>>
      net;
  for (const storage::DataDir::WalTailOp& op : data_dir_->wal_tail()) {
    if (!op.effective) continue;
    auto& entry = net[{op.relation, op.values}];
    ++entry.first;
    entry.second = op.insert;
  }
  std::vector<eval::FactDelta> inserts;
  std::vector<eval::FactDelta> deletes;
  for (auto& [key, entry] : net) {
    if (entry.first % 2 == 0) continue;
    (entry.second ? inserts : deletes)
        .push_back(eval::FactDelta{key.first, key.second});
  }
  if (!inserts.empty() || !deletes.empty()) {
    Result<eval::MaintainStats> applied =
        maintainer_->ApplyDelta(inserts, deletes);
    if (!applied.ok()) {
      log::Warn("server", "maintained recovery failed; re-deriving from "
                          "base facts",
                {{"error", applied.status().ToString()}});
      ivm_fallbacks_total_.fetch_add(1, std::memory_order_relaxed);
      return false;  // Caller clears derived state and re-derives.
    }
    ivm_applied_total_.fetch_add(1, std::memory_order_relaxed);
  }
  // Seal the maintained fixpoint into a fresh completion checkpoint so the
  // directory looks exactly like a re-derived recovery left it (snapshots
  // are a pure function of the tuple set; derivation counts never
  // serialize).
  Status sealed = checkpointer_->Checkpoint(maintainer_->num_strata(), 0,
                                            nullptr);
  if (!sealed.ok()) {
    // The fixpoint itself is correct; only the fold failed. Checkpointing
    // retries at the write cadence, same as any failed fold.
    log::Warn("server", "post-recovery checkpoint failed; will retry at "
                        "the next cadence",
              {{"error", sealed.ToString()}});
  } else {
    writes_since_fold_ = 0;
    folds_total_.fetch_add(1, std::memory_order_relaxed);
    FoldsCounter()->Add(1);
  }
  derived_complete_ = true;
  return true;
}

void Server::ClearDerivedRelations() {
  for (const std::string& name : data_dir_->db()->RelationNames()) {
    // '@' never appears in parsed predicate names; relations carrying it
    // are magic-set artifacts from an earlier CLI session on this dir.
    if (derived_.count(name) != 0 || name.find('@') != std::string::npos) {
      data_dir_->db()->Drop(name);
    }
  }
  // The maintainer's derivation counts lived inside the dropped relations;
  // they re-prime lazily once a full evaluation converges again.
  if (maintainer_ != nullptr) maintainer_->Reset();
  derived_complete_ = false;
}

eval::EvalOptions Server::BaseEvalOptions() const {
  eval::EvalOptions options;
  options.num_threads = config_.eval_threads;
  return options;
}

Status Server::FoldCheckpoint() {
  DIRE_FAILPOINT("server.checkpoint");
  // Re-running the (already converged) evaluation with the checkpointer
  // armed reuses the evaluator's completion-checkpoint path, so a
  // server-folded snapshot is byte-identical to what a CLI `--eval` of the
  // same database would write.
  eval::EvalOptions options = BaseEvalOptions();
  options.checkpointer = checkpointer_.get();
  eval::Evaluator evaluator(data_dir_->db(), options);
  Result<eval::EvalStats> stats = evaluator.Evaluate(program_);
  if (!stats.ok()) return stats.status();
  // An unguarded full evaluation always converges, so whatever partial
  // state a tripped write left behind is complete again (and maintenance
  // may resume). Over an already-complete fixpoint it inserts nothing and
  // leaves the maintainer's derivation counts valid.
  derived_complete_ = true;
  writes_since_fold_ = 0;
  folds_total_.fetch_add(1, std::memory_order_relaxed);
  FoldsCounter()->Add(1);
  ArenaBytesGauge()->Set(
      static_cast<int64_t>(data_dir_->db()->ArenaBytes()));
  return Status::Ok();
}

Status Server::Run() {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  sampler_thread_ = std::thread([this] { SamplerLoop(); });
  Status recovered = Recover();
  if (recovered.ok()) {
    if (role_.load(std::memory_order_acquire) == Role::kFollower) {
      follower_thread_ = std::thread([this] { FollowerLoop(); });
    }
    ArenaBytesGauge()->Set(
        static_cast<int64_t>(data_dir_->db()->ArenaBytes()));
    ready_.store(true, std::memory_order_release);
    log::Info("server", "ready",
              {{"port", std::to_string(port_)},
               {"data_dir", config_.data_dir},
               {"role", config_.replicate_from.empty()
                            ? "primary"
                            : "follower of " + config_.replicate_from}});
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    while (!stopping_.load(std::memory_order_acquire)) {
      shutdown_cv_.wait_for(lock, std::chrono::milliseconds(100));
      if (signals::ShutdownRequested()) break;
    }
  }
  // Wind-down: stop accepting, let in-flight requests finish, then fold.
  stopping_.store(true, std::memory_order_release);
  ready_.store(false, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Kick the follower link and attached replication streams so their
  // connection threads can drain.
  {
    int fd = repl_fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  if (hub_) hub_->Stop();
  if (follower_thread_.joinable()) follower_thread_.join();
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  pool_->Drain();
  pool_->Stop();
  // The HTTP handlers and the sampler read data_dir_; both must be quiet
  // before the final fold releases it.
  if (http_ != nullptr) http_->Stop();
  if (sampler_thread_.joinable()) sampler_thread_.join();
  Status final_fold = Status::Ok();
  if (recovered.ok()) {
    final_fold = FoldCheckpoint();
    log::Info("server", "drained and checkpointed; exiting",
              {{"writes", std::to_string(
                    writes_total_.load(std::memory_order_relaxed))}});
  }
  data_dir_.reset();  // Releases the data-dir lock.
  return recovered.ok() ? final_fold : recovered;
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd p{listen_fd_, POLLIN, 0};
    int r = ::poll(&p, 1, 100);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ++active_connections_;
    }
    std::thread([this, fd] {
      ServeConnection(fd);
      {
        // Notify while still holding conn_mu_: the wind-down waiter may
        // destroy this Server the moment it observes zero connections, so
        // the notify must complete before the waiter can re-acquire the
        // mutex and see the decrement.
        std::lock_guard<std::mutex> lock(conn_mu_);
        --active_connections_;
        conn_cv_.notify_all();
      }
    }).detach();
  }
}

void Server::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  int idle_ms = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (StripWhitespace(line).empty()) continue;
      Result<Request> request = ParseRequest(line);
      if (request.ok() && request->kind == Request::Kind::kQuit) {
        ::close(fd);
        return;
      }
      if (request.ok() && request->kind == Request::Kind::kReplicate) {
        // The connection stops being request/response and becomes a
        // record stream; it never returns to this loop.
        HandleReplicate(fd, *request);
        ::close(fd);
        return;
      }
      std::string response = request.ok() ? HandleRequest(*request)
                                          : ErrorLine(request.status());
      response += '\n';
      if (!WriteAll(fd, response)) {
        ::close(fd);
        return;
      }
    }
    if (buffer.size() > kMaxRequestBytes) {
      WriteAll(fd, ErrorLine(Status::InvalidArgument(
                       "request line exceeds 1 MiB")) +
                       "\n");
      break;
    }
    pollfd p{fd, POLLIN, 0};
    int r = ::poll(&p, 1, 100);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0) {
      idle_ms += 100;
      if (config_.idle_timeout_ms > 0 &&
          idle_ms >= config_.idle_timeout_ms) {
        // A half-open or abandoned client must not hold a connection (and
        // its thread) forever.
        idle_disconnects_total_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      continue;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF or error.
    buffer.append(chunk, static_cast<size_t>(n));
    idle_ms = 0;
  }
  ::close(fd);
}

std::string Server::HandleRequest(const Request& request) {
  // HEALTH is the liveness probe: answered inline, never admitted, so it
  // responds even when every worker slot and queue position is taken.
  if (request.kind == Request::Kind::kHealth) return HandleHealth();
  // The verbs the access log and /tracez track: everything that enters the
  // admission path (or bounces off it). HEALTH/STATS probes and the
  // connection-level verbs stay out.
  const bool tracked = request.kind == Request::Kind::kQuery ||
                       request.kind == Request::Kind::kAdd ||
                       request.kind == Request::Kind::kRetract ||
                       request.kind == Request::Kind::kSleep;
  RequestRecord rec;
  if (tracked) {
    rec.id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    rec.verb = VerbName(request.kind);
    if (request.kind != Request::Kind::kSleep) {
      rec.relation = request.atom.predicate;
    }
  }
  auto finish = [&](std::string response) {
    if (tracked) FinishRequest(std::move(rec), response);
    return response;
  };
  if (!ready_.load(std::memory_order_acquire)) {
    return finish(NotReadyLine(NextRetryAfterMs()));
  }
  if (request.kind == Request::Kind::kStats) return HandleStats();
  if (stopping_.load(std::memory_order_acquire)) {
    return finish(ErrorLine(Status::Internal("server is shutting down")));
  }
  // Writes belong on the primary; a follower redirects rather than
  // accepting state it would have to reconcile later.
  if ((request.kind == Request::Kind::kAdd ||
       request.kind == Request::Kind::kRetract) &&
      role_.load(std::memory_order_acquire) != Role::kPrimary) {
    readonly_rejected_total_.fetch_add(1, std::memory_order_relaxed);
    return finish(ReadonlyLine(config_.replicate_from));
  }
  // PROMOTE is a role change, not a request: answered inline so it cannot
  // deadlock behind pooled writes it is about to start accepting.
  if (request.kind == Request::Kind::kPromote) return HandlePromote(request);
  if (request.kind == Request::Kind::kReplicate) {
    return ErrorLine(
        Status::InvalidArgument("REPLICATE must be the first request on a "
                                "dedicated connection"));
  }

  double cost = 0;
  if (request.kind == Request::Kind::kQuery) {
    std::shared_lock<std::shared_mutex> lock(db_mu_);
    cost = EstimateQueryCost(*data_dir_->db(), request.atom);
  }
  rec.cost_est = cost;
  switch (admission_.Admit(cost)) {
    case Admission::kShed:
      ring_.RecordShed();
      return finish(OverloadedLine(NextRetryAfterMs()));
    case Admission::kTooExpensive:
      return finish(ErrorLine(Status::ResourceExhausted(StrFormat(
          "query too expensive: estimated %.0f rows scanned, limit %.0f",
          cost, config_.admission.max_query_cost))));
    case Admission::kAdmitted:
      break;
  }
  rec.admitted = true;

  auto admitted_at = std::chrono::steady_clock::now();
  auto done = std::make_shared<std::promise<std::string>>();
  std::future<std::string> response = done->get_future();
  bool submitted =
      pool_->Submit([this, request, done, rec, admitted_at]() mutable {
        auto exec_start = std::chrono::steady_clock::now();
        rec.queue_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           exec_start - admitted_at)
                           .count();
        std::string answer = ExecuteAdmitted(request, &rec);
        rec.exec_us = ElapsedUs(exec_start);
        // Unblock the connection thread first: accounting (and a possible
        // slow-query plan capture) must not delay the response.
        done->set_value(answer);
        FinishRequest(std::move(rec), answer);
        admission_.Release();
      });
  if (!submitted) {
    admission_.Release();
    return ErrorLine(Status::Internal("server is shutting down"));
  }
  return response.get();
}

std::string Server::ExecuteAdmitted(const Request& request,
                                    RequestRecord* rec) {
  obs::Span span("server.request", "server");
  span.Attr("verb", VerbName(request.kind));
  span.Attr("request_id", static_cast<int64_t>(rec->id));
#ifdef DIRE_FAILPOINTS_ENABLED
  {
    Status injected = failpoints::Check("server.request");
    if (!injected.ok()) return ErrorLine(injected);
  }
#endif
  std::optional<ExecutionGuard> guard;
  if (config_.request_timeout_ms != 0 || config_.request_max_tuples != 0) {
    guard.emplace(GuardLimits{config_.request_timeout_ms,
                              config_.request_max_tuples, 0});
    // The tag rides along so a trip deep inside the evaluator can be tied
    // back to this request in logs and /tracez.
    guard->set_tag(rec->id);
  }
  const ExecutionGuard* g = guard ? &*guard : nullptr;
  switch (request.kind) {
    case Request::Kind::kQuery:
      return HandleQuery(request, g, rec);
    case Request::Kind::kAdd:
    case Request::Kind::kRetract:
      return HandleWrite(request, g, rec);
    case Request::Kind::kSleep:
      return HandleSleep(request, g, rec);
    default:
      return ErrorLine(Status::Internal("unadmittable request kind"));
  }
}

void Server::CountTrip(const std::string& reason) {
  if (StartsWith(reason, "deadline")) {
    timed_out_total_.fetch_add(1, std::memory_order_relaxed);
    TimedOutCounter()->Add(1);
  }
}

std::string Server::HandleQuery(const Request& request,
                                const ExecutionGuard* g,
                                RequestRecord* rec) {
  Result<eval::SelectResult> selected = [&] {
    std::shared_lock<std::shared_mutex> lock(db_mu_);
    return eval::SelectMatching(*data_dir_->db(), request.atom, g);
  }();
  if (!selected.ok()) return ErrorLine(selected.status());

  std::vector<std::string> rows;
  rows.reserve(selected->tuples.size());
  {
    std::shared_lock<std::shared_mutex> lock(db_mu_);
    for (const storage::Tuple& t : selected->tuples) {
      rows.push_back(
          RenderTuple(*data_dir_->db(), request.atom.predicate, t));
    }
  }
  std::sort(rows.begin(), rows.end());
  rec->tuples = rows.size();

  if (selected->exhausted) {
    rec->guard = selected->exhausted_reason;
    CountTrip(selected->exhausted_reason);
    if (!config_.partial_on_exhaustion) {
      return ErrorLine(
          Status::ResourceExhausted(selected->exhausted_reason));
    }
    partial_total_.fetch_add(1, std::memory_order_relaxed);
    PartialCounter()->Add(1);
  }
  std::string response =
      selected->exhausted
          ? StrFormat("PARTIAL %zu reason=%s", rows.size(),
                      selected->exhausted_reason.c_str())
          : StrFormat("OK %zu", rows.size());
  for (const std::string& row : rows) {
    response += '\n';
    response += row;
  }
  response += "\nEND";
  return response;
}

std::string Server::HandleWrite(const Request& request,
                                const ExecutionGuard* g,
                                RequestRecord* rec) {
  const bool is_add = request.kind == Request::Kind::kAdd;
  const std::string& predicate = request.atom.predicate;
  if (derived_.count(predicate) != 0) {
    return ErrorLine(Status::InvalidArgument(
        "predicate '" + predicate +
        "' is derived by rules; ADD/RETRACT apply to base facts only"));
  }
  std::vector<std::string> values = GroundValues(request.atom);

  std::unique_lock<std::shared_mutex> lock(db_mu_);
  bool changed = false;
  storage::DataDir::AppendedRecord record;
  if (is_add) {
    changed = !RowPresent(*data_dir_->db(), predicate, values);
    Status committed = data_dir_->AppendFact(predicate, values, &record);
    if (!committed.ok()) return ErrorLine(committed);
  } else {
    Status committed =
        data_dir_->RetractFact(predicate, values, &changed, &record);
    if (!committed.ok()) return ErrorLine(committed);
  }
  // Published under the exclusive lock, so followers see records in commit
  // order with no interleaving gaps.
  if (hub_) hub_->Publish(record.epoch, record.lsn, record.payload);
  writes_total_.fetch_add(1, std::memory_order_relaxed);
  WritesCounter()->Add(1);
  ++writes_since_fold_;

  // Derive the write's consequences. The fast path maintains the fixpoint
  // in place (only the delta's consequences are computed and charged
  // against the request budget, so the acknowledgement stays exact); it
  // requires the derived state to be a complete fixpoint and falls back to
  // the classic full re-derivation otherwise. The fact is already durably
  // committed either way, so a guard trip degrades the response to PARTIAL
  // (the derived state is a sound prefix; a later write, fold, or restart
  // completes it) instead of misreporting the commit as failed.
  bool exhausted = false;
  std::string reason;
  if (changed) {
    bool maintained = false;
    if (config_.maintain && derived_complete_ && maintainer_ != nullptr &&
        maintainer_->usable()) {
      std::vector<eval::FactDelta> ins;
      std::vector<eval::FactDelta> del;
      (is_add ? ins : del).push_back(eval::FactDelta{predicate, values});
      Result<eval::MaintainStats> ms = maintainer_->ApplyDelta(ins, del, g);
      if (ms.ok()) {
        maintained = true;
        ivm_applied_total_.fetch_add(1, std::memory_order_relaxed);
        IvmAppliedCounter()->Add(1);
      } else {
        // The derived state may be mid-maintenance: rebuild it from the
        // base facts below. ClearDerivedRelations also resets the
        // maintainer, whose counts re-prime lazily after the rebuild.
        ivm_fallbacks_total_.fetch_add(1, std::memory_order_relaxed);
        IvmFallbacksCounter()->Add(1);
        log::Warn("server", "incremental maintenance failed; re-deriving "
                            "from base facts",
                  {{"error", ms.status().ToString()}});
        ClearDerivedRelations();
      }
    }
    if (!maintained) {
      if (!is_add) ClearDerivedRelations();
      eval::EvalOptions options = BaseEvalOptions();
      options.guard = g;
      options.on_exhaustion = eval::EvalOptions::OnExhaustion::kPartial;
      eval::Evaluator evaluator(data_dir_->db(), options);
      Result<eval::EvalStats> stats = evaluator.Evaluate(program_);
      if (!stats.ok()) return ErrorLine(stats.status());
      exhausted = stats->exhausted;
      reason = stats->exhausted_reason;
      derived_complete_ = !exhausted;
    }
  }

  if (config_.checkpoint_every_writes > 0 &&
      writes_since_fold_ >= config_.checkpoint_every_writes) {
    Status folded = FoldCheckpoint();
    if (!folded.ok()) {
      // The WAL still holds every committed record; only the fold (a
      // recovery-time optimization) failed. Keep serving.
      log::Warn("server", "WAL fold failed; will retry at the next cadence",
                {{"error", folded.ToString()}});
    }
  }

  // Still under the exclusive lock: the arena footprint is stable here.
  ArenaBytesGauge()->Set(
      static_cast<int64_t>(data_dir_->db()->ArenaBytes()));

  // Ship-then-ack: with a positive ack timeout the response waits (outside
  // the database lock, so reads and other writes proceed) until every
  // attached follower has durably applied this record. A follower that
  // cannot keep up is disconnected rather than holding writes hostage; the
  // primary's own WAL fsync above remains the base durability guarantee.
  lock.unlock();
  if (hub_ && config_.replication_ack_timeout_ms > 0) {
    if (!hub_->AwaitAcks(record.lsn, config_.replication_ack_timeout_ms)) {
      repl_acks_missed_total_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::string tag = is_add ? (changed ? "added=1" : "added=0")
                           : (changed ? "removed=1" : "removed=0");
  rec->tuples = changed ? 1 : 0;
  if (exhausted) {
    rec->guard = reason;
    CountTrip(reason);
    partial_total_.fetch_add(1, std::memory_order_relaxed);
    PartialCounter()->Add(1);
    return "PARTIAL " + tag + " reason=" + reason;
  }
  return "OK " + tag;
}

std::string Server::HandleSleep(const Request& request,
                                const ExecutionGuard* g,
                                RequestRecord* rec) {
  int64_t slept = 0;
  while (slept < request.sleep_ms) {
    if (g != nullptr) {
      Status checked = g->Check();
      if (!checked.ok()) {
        rec->guard = g->trip_reason();
        CountTrip(g->trip_reason());
        return ErrorLine(checked);
      }
    }
    int64_t step = std::min<int64_t>(10, request.sleep_ms - slept);
    std::this_thread::sleep_for(std::chrono::milliseconds(step));
    slept += step;
  }
  return "OK slept=" + std::to_string(slept);
}

void Server::HandleReplicate(int fd, const Request& request) {
  if (!ready_.load(std::memory_order_acquire)) {
    WriteAll(fd, NotReadyLine(NextRetryAfterMs()) + "\n");
    return;
  }
  if (role_.load(std::memory_order_acquire) != Role::kPrimary || !hub_) {
    WriteAll(fd, ErrorLine(Status::InvalidArgument(
                     "REPLICATE targets a primary; this server is not "
                     "one")) +
                     "\n");
    return;
  }
  uint64_t id;
  uint64_t epoch;
  uint64_t lsn;
  bool resumed = false;
  {
    // The handshake decision and the hub registration happen under the
    // same exclusive lock that serializes write publication, so the
    // preload plus later published records form a gapless stream.
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    epoch = data_dir_->epoch();
    lsn = data_dir_->lsn();
    std::vector<std::string> preload;
    if (request.repl_epoch == epoch && request.repl_lsn <= lsn) {
      Result<std::vector<storage::DataDir::TailEntry>> tail =
          data_dir_->TailSince(request.repl_lsn);
      if (tail.ok()) {
        preload.push_back(FormatStreamLine(epoch, request.repl_lsn) + "\n");
        for (const storage::DataDir::TailEntry& entry : *tail) {
          preload.push_back(
              FormatRecLine(entry.epoch, entry.lsn, entry.payload) + "\n");
        }
        resumed = true;
      }
    }
    if (!resumed) {
      // Epoch mismatch (including the follower's "epoch 0, don't trust my
      // state" sentinel) or a WAL that no longer covers the follower's
      // position: ship the whole database.
      Result<std::string> snapshot =
          storage::SaveSnapshot(*data_dir_->db(), {});
      if (!snapshot.ok()) {
        lock.unlock();
        WriteAll(fd, ErrorLine(snapshot.status()) + "\n");
        return;
      }
      preload.push_back(
          FormatSnapshotLine(epoch, lsn, snapshot->size()) + "\n");
      preload.push_back(std::move(*snapshot));
    }
    id = hub_->Attach(std::move(preload));
  }
  log::Info("replication", "follower attached",
            {{"mode", resumed ? "resume" : "snapshot"},
             {"follower_lsn", std::to_string(request.repl_lsn)},
             {"epoch", std::to_string(epoch)},
             {"lsn", std::to_string(lsn)}});
  hub_->RunSession(id, fd);
  log::Info("replication", "follower detached", {});
}

void Server::FollowerLoop() {
  bool force_resync = false;
  while (!stopping_.load(std::memory_order_acquire)) {
    Role role = role_.load(std::memory_order_acquire);
    if (role == Role::kPrimary) return;
    if (role == Role::kPromoting) {
      // Hold position: if the promotion fails we go back to following; if
      // it succeeds the next role load ends the thread.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    Result<int> dialed = DialTcp(config_.replicate_from);
    if (dialed.ok()) {
      repl_fd_.store(*dialed, std::memory_order_release);
      FollowerSession(*dialed, &force_resync);
      repl_connected_.store(false, std::memory_order_release);
      ReplConnectedGauge()->Set(0);
      repl_fd_.store(-1, std::memory_order_release);
      ::close(*dialed);
    }
    // Pace reconnects (and dial failures) without blocking shutdown.
    int waited = 0;
    while (waited < config_.replication_heartbeat_ms &&
           !stopping_.load(std::memory_order_acquire) &&
           role_.load(std::memory_order_acquire) == Role::kFollower) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      waited += 20;
    }
  }
}

void Server::FollowerSession(int fd, bool* force_resync) {
  uint64_t local_epoch = data_dir_->epoch();
  uint64_t local_lsn = data_dir_->lsn();
  if (*force_resync || data_dir_->fenced() || local_epoch == 0) {
    // Epoch 0 tells the primary "do not trust my state": a fenced or
    // half-resynced directory must not resume mid-stream.
    local_epoch = 0;
    local_lsn = 0;
  }
  if (!WriteAll(fd, StrFormat("REPLICATE lsn=%llu epoch=%llu\n",
                              static_cast<unsigned long long>(local_lsn),
                              static_cast<unsigned long long>(local_epoch)))) {
    return;
  }
  LineReader reader(fd);
  auto following = [this] {
    return !stopping_.load(std::memory_order_acquire) &&
           role_.load(std::memory_order_acquire) == Role::kFollower;
  };
  std::string line;
  for (;;) {
    if (!following()) return;
    Result<bool> got = reader.ReadLine(100, &line);
    if (!got.ok()) return;
    if (*got) break;
  }
  Result<StreamHeader> header = ParseStreamHeader(line);
  if (!header.ok()) {
    // A NOTREADY / ERROR line from a primary that is still recovering (or
    // is itself a follower); back off and retry.
    log::Warn("replication", "handshake refused",
              {{"response", line}});
    return;
  }
  if (header->snapshot) {
    std::string bytes;
    Status read =
        reader.ReadBytes(header->snapshot_bytes, 100, following, &bytes);
    if (!read.ok()) {
      log::Warn("replication", "snapshot transfer failed",
                {{"error", read.ToString()}});
      return;
    }
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    Status installed =
        data_dir_->InstallSnapshot(bytes, header->epoch, header->lsn);
    if (!installed.ok()) {
      log::Warn("replication", "snapshot install failed",
                {{"error", installed.ToString()}});
      *force_resync = true;
      return;
    }
    ClearDerivedRelations();
    Status folded = FoldCheckpoint();
    if (!folded.ok()) {
      log::Warn("replication", "post-resync fold failed; will retry at the "
                               "next cadence",
                {{"error", folded.ToString()}});
    }
    repl_resyncs_total_.fetch_add(1, std::memory_order_relaxed);
    log::Info("replication", "resynced from snapshot",
              {{"epoch", std::to_string(header->epoch)},
               {"lsn", std::to_string(header->lsn)}});
  }
  *force_resync = false;
  leader_lsn_.store(header->lsn, std::memory_order_relaxed);
  repl_connected_.store(true, std::memory_order_release);
  ReplConnectedGauge()->Set(1);
  ReplLagGauge()->Set(CurrentReplLag());
  WriteAll(fd, FormatAckLine(data_dir_->lsn()) + "\n");

  std::vector<std::string> batch;
  for (;;) {
    if (!following()) return;
    Result<bool> got = reader.ReadLine(100, &line);
    if (!got.ok()) return;
    if (!*got) continue;
    if (StartsWith(line, "PING")) {
      Result<PingLine> ping = ParsePingLine(line);
      if (ping.ok()) {
        leader_lsn_.store(ping->lsn, std::memory_order_relaxed);
        // The lag gauge moves on every heartbeat, not only when records
        // apply: an idle follower of a busy primary shows its true lag
        // instead of a stale zero.
        ReplLagGauge()->Set(CurrentReplLag());
      }
      // Heartbeat-ack our position so the primary sees a live link.
      if (!WriteAll(fd, FormatAckLine(data_dir_->lsn()) + "\n")) return;
      continue;
    }
    // Batch whatever is already buffered: one evaluate round per drained
    // burst instead of one per record.
    batch.clear();
    batch.push_back(line);
    while (batch.size() < 256) {
      Result<bool> more = reader.ReadLine(0, &line);
      if (!more.ok() || !*more) break;
      if (StartsWith(line, "PING")) continue;
      batch.push_back(line);
    }
    ReplLagGauge()->Set(CurrentReplLag());
    Status applied = ApplyReplicatedBatch(batch);
    if (!applied.ok()) {
      // Gap, stale epoch, or damage: this stream cannot be trusted any
      // further. Reconnect and ask for a snapshot.
      log::Warn("replication", "record apply failed; forcing full resync",
                {{"error", applied.ToString()}});
      *force_resync = true;
      return;
    }
    ReplLagGauge()->Set(CurrentReplLag());
    if (!WriteAll(fd, FormatAckLine(data_dir_->lsn()) + "\n")) return;
  }
}

Status Server::ApplyReplicatedBatch(const std::vector<std::string>& lines) {
  std::unique_lock<std::shared_mutex> lock(db_mu_);
  bool mutated_any = false;
  bool retracted = false;
  for (const std::string& line : lines) {
    DIRE_ASSIGN_OR_RETURN(RecLine rec, ParseRecLine(line));
    DIRE_ASSIGN_OR_RETURN(storage::WalRecord record,
                          storage::DecodeWalRecord(rec.payload));
    if (record.stamped &&
        (record.lsn != rec.lsn || record.epoch != rec.epoch)) {
      return Status::Corruption(
          "REC header disagrees with its payload stamp");
    }
    bool mutated = false;
    DIRE_RETURN_IF_ERROR(
        data_dir_->AppendReplicated(rec.payload, record, &mutated));
    if (mutated) {
      mutated_any = true;
      if (record.op == storage::WalRecord::Op::kRetract) retracted = true;
    }
    repl_records_applied_total_.fetch_add(1, std::memory_order_relaxed);
    leader_lsn_.store(
        std::max(leader_lsn_.load(std::memory_order_relaxed), rec.lsn),
        std::memory_order_relaxed);
  }
  writes_since_fold_ += static_cast<int>(lines.size());
  if (mutated_any) {
    // Same rule as HandleWrite: a retraction invalidates derived state, an
    // insert only extends it.
    if (retracted) ClearDerivedRelations();
    eval::Evaluator evaluator(data_dir_->db(), BaseEvalOptions());
    Result<eval::EvalStats> stats = evaluator.Evaluate(program_);
    if (!stats.ok()) return stats.status();
  }
  if (config_.checkpoint_every_writes > 0 &&
      writes_since_fold_ >= config_.checkpoint_every_writes) {
    Status folded = FoldCheckpoint();
    if (!folded.ok()) {
      log::Warn("replication", "WAL fold failed; will retry at the next "
                               "cadence",
                {{"error", folded.ToString()}});
    }
  }
  return Status::Ok();
}

std::string Server::HandlePromote(const Request& request) {
  std::lock_guard<std::mutex> guard(promote_mu_);
  if (role_.load(std::memory_order_acquire) == Role::kPrimary) {
    // Promoting a primary is an idempotent report, not an error: the
    // failover driver may retry after a lost response.
    return StrFormat("OK promoted epoch=%llu lsn=%llu",
                     static_cast<unsigned long long>(data_dir_->epoch()),
                     static_cast<unsigned long long>(data_dir_->lsn()));
  }
  role_.store(Role::kPromoting, std::memory_order_release);
  // Cut the stream first: no replicated record may land once the epoch
  // starts moving.
  {
    int fd = repl_fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  std::string response;
  {
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    uint64_t target = request.promote_epoch != 0 ? request.promote_epoch
                                                 : data_dir_->epoch() + 1;
    Status promoted = data_dir_->Promote(target);
    if (!promoted.ok()) {
      // Nothing durable changed; resume following.
      role_.store(Role::kFollower, std::memory_order_release);
      return ErrorLine(promoted);
    }
    // The adopted base facts are authoritative now: rebuild the fixpoint
    // and seal it into a checkpoint before the first write is accepted.
    ClearDerivedRelations();
    Status folded = FoldCheckpoint();
    if (!folded.ok()) {
      // The promotion itself is durable; folding is a recovery-time
      // optimization. Keep going.
      log::Warn("server", "post-promotion fold failed",
                {{"error", folded.ToString()}});
    }
    hub_ =
        std::make_unique<ReplicationHub>(config_.replication_heartbeat_ms);
    hub_->Advance(data_dir_->epoch(), data_dir_->lsn());
    response = StrFormat("OK promoted epoch=%llu lsn=%llu",
                         static_cast<unsigned long long>(data_dir_->epoch()),
                         static_cast<unsigned long long>(data_dir_->lsn()));
    role_.store(Role::kPrimary, std::memory_order_release);
  }
  repl_connected_.store(false, std::memory_order_release);
  ReplConnectedGauge()->Set(0);
  ReplLagGauge()->Set(0);
  log::Info("server", "promoted to primary",
            {{"epoch", std::to_string(data_dir_->epoch())},
             {"lsn", std::to_string(data_dir_->lsn())}});
  return response;
}

std::string Server::HandleHealth() {
  std::string line =
      StrFormat("OK ready=%d inflight=%d accepted=%llu rejected=%llu",
                ready_.load(std::memory_order_acquire) ? 1 : 0,
                admission_.outstanding(),
                static_cast<unsigned long long>(admission_.admitted_total()),
                static_cast<unsigned long long>(admission_.shed_total()));
  if (!config_.replicate_from.empty()) {
    // Replication fields are appended (never inserted) so clients that
    // prefix-match the classic health line keep working.
    Role role = role_.load(std::memory_order_acquire);
    const char* role_name = role == Role::kPrimary     ? "primary"
                            : role == Role::kPromoting ? "promoting"
                                                       : "follower";
    uint64_t epoch = 0;
    uint64_t lsn = 0;
    if (ready_.load(std::memory_order_acquire) && data_dir_ != nullptr) {
      epoch = data_dir_->epoch();
      lsn = data_dir_->lsn();
    }
    uint64_t leader = leader_lsn_.load(std::memory_order_relaxed);
    uint64_t lag = leader > lsn ? leader - lsn : 0;
    line += StrFormat(
        " role=%s epoch=%llu lsn=%llu leader=%s lag=%llu connected=%d",
        role_name, static_cast<unsigned long long>(epoch),
        static_cast<unsigned long long>(lsn),
        config_.replicate_from.c_str(),
        static_cast<unsigned long long>(lag),
        repl_connected_.load(std::memory_order_acquire) ? 1 : 0);
  }
  // Appended last for the same prefix-match reason as the replication
  // fields above.
  line += StrFormat(" maintain=%d version=%s uptime_s=%lld",
                    config_.maintain ? 1 : 0, dire::kVersion,
                    static_cast<long long>(UptimeSeconds()));
  return line;
}

std::string Server::HandleStats() {
  size_t relations = 0;
  size_t tuples = 0;
  {
    std::shared_lock<std::shared_mutex> lock(db_mu_);
    relations = data_dir_->db()->RelationNames().size();
    tuples = data_dir_->db()->TotalTuples();
  }
  std::string out = "OK";
  auto line = [&out](const char* key, uint64_t value) {
    out += '\n';
    out += key;
    out += ' ';
    out += std::to_string(value);
  };
  line("ready", ready_.load(std::memory_order_acquire) ? 1 : 0);
  line("outstanding", static_cast<uint64_t>(admission_.outstanding()));
  line("accepted_total", admission_.admitted_total());
  line("rejected_total", admission_.shed_total());
  line("too_expensive_total", admission_.too_expensive_total());
  line("timed_out_total", timed_out_total_.load(std::memory_order_relaxed));
  line("partial_total", partial_total_.load(std::memory_order_relaxed));
  line("writes_total", writes_total_.load(std::memory_order_relaxed));
  line("checkpoints_total", folds_total_.load(std::memory_order_relaxed));
  line("maintain", config_.maintain ? 1 : 0);
  line("ivm_applied_total",
       ivm_applied_total_.load(std::memory_order_relaxed));
  line("ivm_fallbacks_total",
       ivm_fallbacks_total_.load(std::memory_order_relaxed));
  line("recovered_maintained", recovered_maintained_ ? 1 : 0);
  line("relations", relations);
  line("tuples", tuples);
  // Replication and connection-hygiene counters (appended after the
  // classic keys so existing STATS consumers are untouched).
  Role role = role_.load(std::memory_order_acquire);
  ReplicationHub* hub = role == Role::kPrimary ? hub_.get() : nullptr;
  uint64_t epoch = 0;
  uint64_t lsn = 0;
  if (data_dir_ != nullptr) {
    epoch = data_dir_->epoch();
    lsn = data_dir_->lsn();
  }
  uint64_t leader = leader_lsn_.load(std::memory_order_relaxed);
  line("primary", role == Role::kPrimary ? 1 : 0);
  line("epoch", epoch);
  line("lsn", lsn);
  line("followers", hub != nullptr ? static_cast<uint64_t>(
                                         hub->follower_count())
                                   : 0);
  line("repl_shipped_total", hub != nullptr ? hub->shipped_total() : 0);
  line("repl_min_acked", hub != nullptr ? hub->min_acked() : 0);
  line("repl_applied_total",
       repl_records_applied_total_.load(std::memory_order_relaxed));
  line("repl_resyncs_total",
       repl_resyncs_total_.load(std::memory_order_relaxed));
  line("repl_acks_missed_total",
       repl_acks_missed_total_.load(std::memory_order_relaxed));
  line("repl_lag", leader > lsn ? leader - lsn : 0);
  line("repl_connected",
       repl_connected_.load(std::memory_order_acquire) ? 1 : 0);
  line("readonly_rejected_total",
       readonly_rejected_total_.load(std::memory_order_relaxed));
  line("idle_disconnects_total",
       idle_disconnects_total_.load(std::memory_order_relaxed));
  line("slow_queries_total",
       slow_queries_total_.load(std::memory_order_relaxed));
  line("uptime_s", static_cast<uint64_t>(UptimeSeconds()));
  out += "\nversion ";
  out += dire::kVersion;
  out += "\nEND";
  return out;
}

namespace {
// /tracez depth: enough to reconstruct a recent burst, small enough that
// the copy under recent_mu_ stays trivial.
constexpr size_t kRecentRequests = 128;

std::string RecordJson(const RequestRecord& rec, const char* type) {
  return StrFormat(
      "{\"type\":\"%s\",\"ts_ms\":%lld,\"request_id\":%llu,"
      "\"verb\":%s,\"relation\":%s,\"status\":%s,\"guard\":%s,"
      "\"admitted\":%s,\"queue_us\":%lld,\"exec_us\":%lld,"
      "\"tuples\":%llu,\"cost_est\":%.0f",
      type, static_cast<long long>(rec.ts_ms),
      static_cast<unsigned long long>(rec.id), JsonStr(rec.verb).c_str(),
      JsonStr(rec.relation).c_str(), JsonStr(rec.status).c_str(),
      JsonStr(rec.guard).c_str(), rec.admitted ? "true" : "false",
      static_cast<long long>(rec.queue_us),
      static_cast<long long>(rec.exec_us),
      static_cast<unsigned long long>(rec.tuples), rec.cost_est);
}
}  // namespace

void Server::FinishRequest(RequestRecord rec, const std::string& response) {
  rec.status = response.substr(0, response.find_first_of(" \n"));
  rec.ts_ms = NowWallMs();
  if (rec.admitted) {
    QueueWaitHistogram(rec.verb)->Observe(
        static_cast<uint64_t>(rec.queue_us));
    ExecHistogram(rec.verb)->Observe(static_cast<uint64_t>(rec.exec_us));
    ring_.RecordRequest(static_cast<uint64_t>(rec.queue_us + rec.exec_us));
  }
  WriteAccessLogLine(RecordJson(rec, "request") + "}");
  const bool slow = config_.slow_query_ms > 0 && rec.admitted &&
                    rec.exec_us >= config_.slow_query_ms * 1000;
  {
    std::lock_guard<std::mutex> lock(recent_mu_);
    recent_requests_.push_back(rec);
    if (recent_requests_.size() > kRecentRequests) {
      recent_requests_.pop_front();
    }
  }
  if (slow) LogSlowQuery(rec);
}

void Server::WriteAccessLogLine(const std::string& line) {
  if (access_log_file_ == nullptr) return;
  std::lock_guard<std::mutex> lock(access_log_mu_);
  std::fwrite(line.data(), 1, line.size(), access_log_file_);
  std::fputc('\n', access_log_file_);
  // One flush per request keeps the log tailable and crash-complete; the
  // access log is off the hot path by the time this runs (the response has
  // already been sent).
  std::fflush(access_log_file_);
}

void Server::LogSlowQuery(const RequestRecord& rec) {
  slow_queries_total_.fetch_add(1, std::memory_order_relaxed);
  SlowQueriesCounter()->Add(1);
  std::string plan;
  if (rec.verb != "SLEEP") {
    // Re-plan with the live statistics and count actual per-atom
    // cardinalities, so the log shows the join order the optimizer would
    // pick *now* next to what the data really does. ExplainProgram interns
    // symbols and builds the indexes it probes, hence the exclusive lock.
    // This runs after the response was sent but inside the request's
    // admission slot, so a storm of slow queries self-limits.
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    Result<std::string> explained =
        eval::ExplainProgram(program_, data_dir_->db(),
                             eval::PlannerMode::kCost, /*with_actuals=*/true);
    if (explained.ok()) {
      plan = "join order (est vs actual):\n";
      plan += *explained;
    } else {
      plan = "explain failed: " + explained.status().ToString();
    }
  }
  log::Warn("server", "slow query",
            {{"request_id", std::to_string(rec.id)},
             {"verb", rec.verb},
             {"relation", rec.relation},
             {"exec_us", std::to_string(rec.exec_us)},
             {"threshold_ms", std::to_string(config_.slow_query_ms)},
             {"plan", plan}});
  WriteAccessLogLine(RecordJson(rec, "slow_query") +
                     StrFormat(",\"threshold_ms\":%lld,\"plan\":%s}",
                               static_cast<long long>(config_.slow_query_ms),
                               JsonStr(plan).c_str()));
}

HttpResponse Server::HandleHttp(const HttpRequest& request) {
  HttpResponse resp;
  if (request.path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = obs::PrometheusText();  // "" under -DDIRE_OBS=OFF: valid.
    return resp;
  }
  if (request.path == "/healthz") {
    resp.content_type = "application/json";
    resp.body = HealthzJson();
    // Readiness maps to the status code so load balancers need no JSON
    // parser; liveness is the fact that anything answered at all.
    if (!ready_.load(std::memory_order_acquire)) resp.status = 503;
    return resp;
  }
  if (request.path == "/statusz") {
    resp.content_type = "application/json";
    resp.body = StatuszJson();
    return resp;
  }
  if (request.path == "/tracez") {
    resp.content_type = "application/json";
    resp.body = TracezJson();
    return resp;
  }
  resp.status = 404;
  resp.content_type = "text/plain; charset=utf-8";
  resp.body = "not found; try /metrics /healthz /statusz /tracez\n";
  return resp;
}

std::string Server::HealthzJson() {
  bool ready = ready_.load(std::memory_order_acquire);
  Role role = role_.load(std::memory_order_acquire);
  const char* role_name = role == Role::kPrimary     ? "primary"
                          : role == Role::kPromoting ? "promoting"
                                                     : "follower";
  uint64_t epoch = 0;
  uint64_t lsn = 0;
  if (ready && data_dir_ != nullptr) {
    epoch = data_dir_->epoch();
    lsn = data_dir_->lsn();
  }
  uint64_t leader = leader_lsn_.load(std::memory_order_relaxed);
  uint64_t lag = leader > lsn ? leader - lsn : 0;
  return StrFormat(
      "{\"ready\":%s,\"live\":true,\"role\":\"%s\",\"epoch\":%llu,"
      "\"lsn\":%llu,\"leader\":%s,\"lag\":%llu,\"connected\":%s,"
      "\"inflight\":%d,\"accepted_total\":%llu,\"rejected_total\":%llu,"
      "\"version\":\"%s\",\"uptime_s\":%lld}",
      ready ? "true" : "false", role_name,
      static_cast<unsigned long long>(epoch),
      static_cast<unsigned long long>(lsn),
      JsonStr(config_.replicate_from).c_str(),
      static_cast<unsigned long long>(lag),
      repl_connected_.load(std::memory_order_acquire) ? "true" : "false",
      admission_.outstanding(),
      static_cast<unsigned long long>(admission_.admitted_total()),
      static_cast<unsigned long long>(admission_.shed_total()), dire::kVersion,
      static_cast<long long>(UptimeSeconds()));
}

std::string Server::StatuszJson() {
  bool ready = ready_.load(std::memory_order_acquire);
  // Relation counts want the shared lock; /statusz must stay responsive
  // while a long write holds it exclusively, so try once and report -1
  // ("unavailable right now") rather than blocking the HTTP thread.
  int64_t relations = -1;
  int64_t tuples = -1;
  int64_t arena_bytes = -1;
  // Per-relation arena footprint: name, reserved bytes, used fraction of
  // the reservation. Collected under the same opportunistic lock.
  std::string arena_json = "[]";
  if (ready && db_mu_.try_lock_shared()) {
    const storage::Database* db = data_dir_->db();
    relations = static_cast<int64_t>(db->RelationNames().size());
    tuples = static_cast<int64_t>(db->TotalTuples());
    arena_bytes = static_cast<int64_t>(db->ArenaBytes());
    arena_json = "[";
    bool first = true;
    for (const std::string& name : db->RelationNames()) {
      const storage::Relation* rel = db->Find(name);
      if (rel == nullptr) continue;
      if (!first) arena_json += ',';
      first = false;
      arena_json += StrFormat(
          "{\"name\":%s,\"rows\":%llu,\"bytes\":%llu,"
          "\"utilization\":%.3f}",
          JsonStr(name).c_str(),
          static_cast<unsigned long long>(rel->size()),
          static_cast<unsigned long long>(rel->ArenaBytes()),
          rel->ArenaUtilization());
    }
    arena_json += ']';
    db_mu_.unlock_shared();
  }
  uint64_t epoch = 0;
  uint64_t lsn = 0;
  if (ready && data_dir_ != nullptr) {
    epoch = data_dir_->epoch();
    lsn = data_dir_->lsn();
  }
  std::string out = StrFormat(
      "{\"version\":\"%s\",\"uptime_s\":%lld,\"ready\":%s,"
      "\"role\":\"%s\",\"port\":%d,\"http_port\":%d,",
      dire::kVersion, static_cast<long long>(UptimeSeconds()),
      ready ? "true" : "false",
      role_.load(std::memory_order_acquire) == Role::kPrimary ? "primary"
                                                              : "follower",
      port_, http_port());
  out += StrFormat(
      "\"gauges\":{\"outstanding\":%d,\"accepted_total\":%llu,"
      "\"rejected_total\":%llu,\"too_expensive_total\":%llu,"
      "\"timed_out_total\":%llu,\"partial_total\":%llu,"
      "\"writes_total\":%llu,\"checkpoints_total\":%llu,"
      "\"slow_queries_total\":%llu,\"relations\":%lld,\"tuples\":%lld,"
      "\"arena_bytes\":%lld,"
      "\"epoch\":%llu,\"lsn\":%llu,\"repl_lag\":%lld,"
      "\"repl_connected\":%s},",
      admission_.outstanding(),
      static_cast<unsigned long long>(admission_.admitted_total()),
      static_cast<unsigned long long>(admission_.shed_total()),
      static_cast<unsigned long long>(admission_.too_expensive_total()),
      static_cast<unsigned long long>(
          timed_out_total_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          partial_total_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          writes_total_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          folds_total_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          slow_queries_total_.load(std::memory_order_relaxed)),
      static_cast<long long>(relations), static_cast<long long>(tuples),
      static_cast<long long>(arena_bytes),
      static_cast<unsigned long long>(epoch),
      static_cast<unsigned long long>(lsn),
      static_cast<long long>(CurrentReplLag()),
      repl_connected_.load(std::memory_order_acquire) ? "true" : "false");
  out += "\"arena\":";
  out += arena_json;
  out += ',';
  out += "\"series\":";
  out += ring_.ToJson();
  out += '}';
  return out;
}

std::string Server::TracezJson() {
  std::string out = "{\"spans\":[";
  std::lock_guard<std::mutex> lock(recent_mu_);
  bool first = true;
  // Newest first: the request being debugged is almost always the latest.
  for (auto it = recent_requests_.rbegin(); it != recent_requests_.rend();
       ++it) {
    if (!first) out += ',';
    first = false;
    out += RecordJson(*it, "request") + "}";
  }
  out += "]}";
  return out;
}

void Server::SamplerLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    // 1 s cadence, polled in 100 ms steps so shutdown never waits a slot.
    for (int i = 0; i < 10; ++i) {
      if (stopping_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ring_.Tick(admission_.outstanding(), CurrentReplLag());
  }
}

int64_t Server::CurrentReplLag() const {
  if (!ready_.load(std::memory_order_acquire) || data_dir_ == nullptr) {
    return 0;
  }
  uint64_t leader = leader_lsn_.load(std::memory_order_relaxed);
  uint64_t lsn = data_dir_->lsn();
  return leader > lsn ? static_cast<int64_t>(leader - lsn) : 0;
}

int64_t Server::UptimeSeconds() const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now() - start_time_)
      .count();
}

}  // namespace dire::server
