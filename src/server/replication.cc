#include "server/replication.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>

#include "base/io.h"
#include "base/log.h"
#include "base/string_util.h"

namespace dire::server {

namespace {

// Ceiling on one buffered stream line: a REC line wrapping a maximal WAL
// record (64 MiB) plus its header, with headroom.
constexpr size_t kMaxStreamLineBytes = (64u << 20) + 4096;

std::optional<uint64_t> ParseU64(std::string_view text) {
  if (text.empty() || text.size() > 19) return std::nullopt;
  uint64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    out = out * 10 + static_cast<uint64_t>(c - '0');
  }
  return out;
}

std::optional<uint64_t> ParseKeyU64(std::string_view token,
                                    std::string_view key) {
  if (token.size() <= key.size() + 1 || token.substr(0, key.size()) != key ||
      token[key.size()] != '=') {
    return std::nullopt;
  }
  return ParseU64(token.substr(key.size() + 1));
}

bool WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

}  // namespace

std::string FormatRecLine(uint64_t epoch, uint64_t lsn,
                          std::string_view payload) {
  std::string out = StrFormat("REC %llu %llu %s ",
                              static_cast<unsigned long long>(epoch),
                              static_cast<unsigned long long>(lsn),
                              io::CrcToHex(io::Crc32c(payload)).c_str());
  out.append(payload.data(), payload.size());
  return out;
}

Result<RecLine> ParseRecLine(std::string_view line) {
  // REC <epoch> <lsn> <crc> <payload>; the payload is everything after the
  // fourth space and may itself contain spaces (never newlines).
  if (!StartsWith(line, "REC ")) {
    return Status::Corruption("not a REC line");
  }
  std::string_view rest = line.substr(4);
  size_t s1 = rest.find(' ');
  if (s1 == std::string_view::npos) {
    return Status::Corruption("malformed REC line");
  }
  size_t s2 = rest.find(' ', s1 + 1);
  if (s2 == std::string_view::npos) {
    return Status::Corruption("malformed REC line");
  }
  size_t s3 = rest.find(' ', s2 + 1);
  if (s3 == std::string_view::npos) {
    return Status::Corruption("malformed REC line");
  }
  std::optional<uint64_t> epoch = ParseU64(rest.substr(0, s1));
  std::optional<uint64_t> lsn = ParseU64(rest.substr(s1 + 1, s2 - s1 - 1));
  if (!epoch || !lsn) {
    return Status::Corruption("REC line carries a non-numeric epoch/lsn");
  }
  DIRE_ASSIGN_OR_RETURN(uint32_t want_crc,
                        io::CrcFromHex(rest.substr(s2 + 1, s3 - s2 - 1)));
  std::string_view payload = rest.substr(s3 + 1);
  if (io::Crc32c(payload) != want_crc) {
    return Status::Corruption(
        StrFormat("REC payload checksum mismatch at lsn %llu",
                  static_cast<unsigned long long>(*lsn)));
  }
  RecLine rec;
  rec.epoch = *epoch;
  rec.lsn = *lsn;
  rec.payload = std::string(payload);
  return rec;
}

std::string FormatAckLine(uint64_t lsn) {
  return "ACK lsn=" + std::to_string(lsn);
}

Result<uint64_t> ParseAckLine(std::string_view line) {
  std::string_view trimmed = StripWhitespace(line);
  if (!StartsWith(trimmed, "ACK ")) {
    return Status::Corruption("not an ACK line");
  }
  std::optional<uint64_t> lsn = ParseKeyU64(trimmed.substr(4), "lsn");
  if (!lsn) return Status::Corruption("malformed ACK line");
  return *lsn;
}

std::string FormatPingLine(uint64_t epoch, uint64_t lsn) {
  return StrFormat("PING epoch=%llu lsn=%llu",
                   static_cast<unsigned long long>(epoch),
                   static_cast<unsigned long long>(lsn));
}

Result<PingLine> ParsePingLine(std::string_view line) {
  std::vector<std::string> tokens = Split(StripWhitespace(line), ' ');
  if (tokens.size() != 3 || tokens[0] != "PING") {
    return Status::Corruption("not a PING line");
  }
  std::optional<uint64_t> epoch = ParseKeyU64(tokens[1], "epoch");
  std::optional<uint64_t> lsn = ParseKeyU64(tokens[2], "lsn");
  if (!epoch || !lsn) return Status::Corruption("malformed PING line");
  PingLine ping;
  ping.epoch = *epoch;
  ping.lsn = *lsn;
  return ping;
}

std::string FormatStreamLine(uint64_t epoch, uint64_t lsn) {
  return StrFormat("STREAM epoch=%llu lsn=%llu",
                   static_cast<unsigned long long>(epoch),
                   static_cast<unsigned long long>(lsn));
}

std::string FormatSnapshotLine(uint64_t epoch, uint64_t lsn,
                               uint64_t bytes) {
  return StrFormat("SNAPSHOT epoch=%llu lsn=%llu bytes=%llu",
                   static_cast<unsigned long long>(epoch),
                   static_cast<unsigned long long>(lsn),
                   static_cast<unsigned long long>(bytes));
}

Result<StreamHeader> ParseStreamHeader(std::string_view line) {
  std::vector<std::string> tokens = Split(StripWhitespace(line), ' ');
  StreamHeader header;
  if (tokens.size() == 3 && tokens[0] == "STREAM") {
    std::optional<uint64_t> epoch = ParseKeyU64(tokens[1], "epoch");
    std::optional<uint64_t> lsn = ParseKeyU64(tokens[2], "lsn");
    if (!epoch || !lsn) {
      return Status::Corruption("malformed STREAM header");
    }
    header.epoch = *epoch;
    header.lsn = *lsn;
    return header;
  }
  if (tokens.size() == 4 && tokens[0] == "SNAPSHOT") {
    std::optional<uint64_t> epoch = ParseKeyU64(tokens[1], "epoch");
    std::optional<uint64_t> lsn = ParseKeyU64(tokens[2], "lsn");
    std::optional<uint64_t> bytes = ParseKeyU64(tokens[3], "bytes");
    if (!epoch || !lsn || !bytes) {
      return Status::Corruption("malformed SNAPSHOT header");
    }
    header.snapshot = true;
    header.epoch = *epoch;
    header.lsn = *lsn;
    header.snapshot_bytes = *bytes;
    return header;
  }
  return Status::Corruption("replication handshake got '" +
                            std::string(StripWhitespace(line)) + "'");
}

Result<int> DialTcp(const std::string& target) {
  size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= target.size()) {
    return Status::InvalidArgument("replication target must be host:port, "
                                   "got '" +
                                   target + "'");
  }
  std::string host = target.substr(0, colon);
  std::optional<uint64_t> port = ParseU64(target.substr(colon + 1));
  if (!port || *port == 0 || *port > 65535) {
    return Status::InvalidArgument("bad port in replication target '" +
                                   target + "'");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(*port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 host: '" + host +
                                   "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("cannot create socket: ") +
                            std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status failed = Status::Internal("cannot connect to " + target + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return failed;
  }
  return fd;
}

Result<bool> LineReader::ReadLine(int timeout_ms, std::string* line) {
  for (;;) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    if (buffer_.size() > kMaxStreamLineBytes) {
      return Status::Corruption("replication stream line exceeds the size "
                                "limit");
    }
    pollfd p{fd_, POLLIN, 0};
    int r = ::poll(&p, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("replication poll failed: ") +
                              std::strerror(errno));
    }
    if (r == 0) return false;
    char chunk[65536];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::Internal("replication peer closed the "
                                        "connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("replication recv failed: ") +
                              std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status LineReader::ReadBytes(size_t n, int timeout_ms,
                             const std::function<bool()>& keep_waiting,
                             std::string* out) {
  out->clear();
  if (buffer_.size() >= n) {
    out->assign(buffer_, 0, n);
    buffer_.erase(0, n);
    return Status::Ok();
  }
  out->swap(buffer_);
  while (out->size() < n) {
    if (!keep_waiting()) {
      return Status::Cancelled("replication transfer aborted");
    }
    pollfd p{fd_, POLLIN, 0};
    int r = ::poll(&p, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("replication poll failed: ") +
                              std::strerror(errno));
    }
    if (r == 0) continue;
    char chunk[65536];
    ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got == 0) {
      return Status::Internal("replication peer closed mid-transfer");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("replication recv failed: ") +
                              std::strerror(errno));
    }
    size_t want = n - out->size();
    size_t take = std::min(static_cast<size_t>(got), want);
    out->append(chunk, take);
    if (static_cast<size_t>(got) > take) {
      buffer_.append(chunk + take, static_cast<size_t>(got) - take);
    }
  }
  return Status::Ok();
}

ReplicationHub::ReplicationHub(int heartbeat_ms)
    : heartbeat_ms_(heartbeat_ms > 0 ? heartbeat_ms : 500) {}

ReplicationHub::~ReplicationHub() { Stop(); }

uint64_t ReplicationHub::Attach(std::vector<std::string> preload) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  auto session = std::make_shared<Session>();
  for (std::string& chunk : preload) {
    session->outbox.push_back(std::move(chunk));
  }
  sessions_.emplace(id, std::move(session));
  work_cv_.notify_all();
  return id;
}

void ReplicationHub::Advance(uint64_t epoch, uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_ = epoch;
  lsn_ = lsn;
}

void ReplicationHub::Publish(uint64_t epoch, uint64_t lsn,
                             std::string_view payload) {
  std::string line = FormatRecLine(epoch, lsn, payload);
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  epoch_ = epoch;
  lsn_ = lsn;
  for (auto& [id, session] : sessions_) {
    if (session->dead) continue;
    session->outbox.push_back(line);
  }
  shipped_total_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_all();
}

void ReplicationHub::RunSession(uint64_t id, int fd) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    session = it->second;
    session->fd = fd;
  }

  // ACK reader: its own thread, so a slow outbox drain never stops acks
  // from being observed (AwaitAcks depends on them).
  std::thread ack_thread([this, session, fd] {
    LineReader reader(fd);
    std::string line;
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_ || session->dead) return;
      }
      Result<bool> got = reader.ReadLine(100, &line);
      if (!got.ok()) break;  // Peer gone; the sender will notice too.
      if (!*got) continue;
      Result<uint64_t> acked = ParseAckLine(line);
      if (!acked.ok()) break;  // A follower speaking garbage is dropped.
      std::lock_guard<std::mutex> lock(mu_);
      if (*acked > session->acked) session->acked = *acked;
      acks_total_.fetch_add(1, std::memory_order_relaxed);
      ack_cv_.notify_all();
    }
    std::lock_guard<std::mutex> lock(mu_);
    session->dead = true;
    work_cv_.notify_all();
    ack_cv_.notify_all();
  });

  {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_ && !session->dead) {
      if (session->outbox.empty()) {
        // Idle: heartbeat so the follower can detect a dead link and
        // report lag against a live position.
        uint64_t epoch = epoch_;
        uint64_t lsn = lsn_;
        bool idle =
            !work_cv_.wait_for(lock, std::chrono::milliseconds(heartbeat_ms_),
                               [&] {
                                 return stopping_ || session->dead ||
                                        !session->outbox.empty();
                               });
        if (idle) {
          lock.unlock();
          bool ok = WriteAll(fd, FormatPingLine(epoch, lsn) + "\n");
          lock.lock();
          if (!ok) session->dead = true;
        }
        continue;
      }
      std::string chunk = std::move(session->outbox.front());
      session->outbox.pop_front();
      lock.unlock();
      bool ok = WriteAll(fd, chunk);
      lock.lock();
      if (!ok) session->dead = true;
    }
    session->dead = true;
  }
  // Unblock the ack reader (it may be mid-poll on a healthy socket).
  ::shutdown(fd, SHUT_RDWR);
  ack_thread.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.erase(id);
    ack_cv_.notify_all();
  }
}

bool ReplicationHub::AwaitAcks(uint64_t lsn, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Session>> waiting;
  for (auto& [id, session] : sessions_) {
    if (!session->dead) waiting.push_back(session);
  }
  if (waiting.empty()) return true;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  bool clean = true;
  for (;;) {
    bool pending = false;
    for (auto& session : waiting) {
      if (session->dead) {
        clean = false;  // Died while we waited; its ack never arrived.
        continue;
      }
      if (session->acked < lsn) pending = true;
    }
    if (!pending || stopping_) return clean;
    if (ack_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Laggards are disconnected rather than allowed to hold every write
      // hostage; they resync when the follower reconnects.
      for (auto& session : waiting) {
        if (!session->dead && session->acked < lsn) {
          session->dead = true;
          if (session->fd >= 0) ::shutdown(session->fd, SHUT_RDWR);
          log::Warn("replication",
                    "follower missed the ack deadline; disconnecting",
                    {{"acked", std::to_string(session->acked)},
                     {"need", std::to_string(lsn)}});
        }
      }
      work_cv_.notify_all();
      return false;
    }
  }
}

void ReplicationHub::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  stopping_ = true;
  for (auto& [id, session] : sessions_) {
    session->dead = true;
    if (session->fd >= 0) ::shutdown(session->fd, SHUT_RDWR);
  }
  work_cv_.notify_all();
  ack_cv_.notify_all();
}

int ReplicationHub::follower_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int live = 0;
  for (const auto& [id, session] : sessions_) {
    if (!session->dead) ++live;
  }
  return live;
}

uint64_t ReplicationHub::min_acked() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t min = 0;
  bool any = false;
  for (const auto& [id, session] : sessions_) {
    if (session->dead) continue;
    if (!any || session->acked < min) min = session->acked;
    any = true;
  }
  return any ? min : 0;
}

}  // namespace dire::server
