#ifndef DIRE_SERVER_ADMISSION_H_
#define DIRE_SERVER_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "ast/ast.h"
#include "storage/database.h"

namespace dire::server {

// Admission policy for one server: how much work may be outstanding (
// executing plus queued) before new requests are shed, and how expensive a
// single query may look before it is refused outright.
struct AdmissionConfig {
  // Requests executing concurrently (the worker pool's size).
  int max_inflight = 4;
  // Requests allowed to wait for a worker beyond the inflight ones.
  int max_queue = 16;
  // Backoff hint attached to OVERLOADED / NOTREADY responses.
  int retry_after_ms = 50;
  // Ceiling on a query's admission price (estimated rows scanned, from the
  // cost model's live statistics); 0 = unpriced. Exceeding it is a
  // permanent ERROR, not an OVERLOADED: the query will not get cheaper by
  // retrying.
  double max_query_cost = 0;
};

// What the controller decided for one request.
enum class Admission {
  kAdmitted,      // A slot was reserved; the caller must Release() it.
  kShed,          // Outstanding work is at the cap; respond OVERLOADED.
  kTooExpensive,  // The query's priced cost exceeds max_query_cost.
};

// Bounded admission with load shedding. Every request — read or write —
// reserves one outstanding slot before it may queue for a worker, so the
// total work the server holds is max_inflight + max_queue regardless of how
// many connections are open; everything beyond that is rejected immediately
// (shed, not delayed), which is what keeps latency bounded under overload.
//
// Thread-safe; Admit/Release are a mutex-held counter update.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  // Reserves a slot for a request whose admission price is `cost` (0 for
  // unpriced requests: writes, stats, health are never refused on price).
  Admission Admit(double cost);
  // Returns a slot reserved by a successful Admit.
  void Release();

  int outstanding() const;
  const AdmissionConfig& config() const { return config_; }

  // Monotone decision counts (also exported as dire_server_* metrics).
  uint64_t admitted_total() const;
  uint64_t shed_total() const;
  uint64_t too_expensive_total() const;

 private:
  const AdmissionConfig config_;
  mutable std::mutex mu_;
  int outstanding_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  uint64_t too_expensive_ = 0;
};

// Prices a query at admission using the cost model's statistics (row count
// per relation; see eval/cost.h): the estimated number of rows the
// selection will scan. A query against a missing relation prices at 0.
double EstimateQueryCost(const storage::Database& db, const ast::Atom& query);

}  // namespace dire::server

#endif  // DIRE_SERVER_ADMISSION_H_
