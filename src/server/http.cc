#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "base/string_util.h"

namespace dire::server {

namespace {

// Ceiling on one request's header block; a client exceeding it is cut off.
constexpr size_t kMaxHeaderBytes = 16 * 1024;
// A client gets this long to deliver its request before the connection
// thread gives up (slow-loris protection; the handler itself is fast).
constexpr int kReadTimeoutMs = 5000;

bool WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

}  // namespace

HttpServer::HttpServer(HttpHandler handler) : handler_(std::move(handler)) {}

Result<std::unique_ptr<HttpServer>> HttpServer::Create(
    const std::string& host, int port, HttpHandler handler) {
  std::unique_ptr<HttpServer> self(new HttpServer(std::move(handler)));
  self->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (self->listen_fd_ < 0) {
    return Status::Internal(std::string("cannot create http socket: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(self->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 listen address: " + host);
  }
  if (::bind(self->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Internal(StrFormat("cannot bind http %s:%d: %s",
                                      host.c_str(), port,
                                      std::strerror(errno)));
  }
  if (::listen(self->listen_fd_, 64) != 0) {
    return Status::Internal(std::string("cannot listen (http): ") +
                            std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(self->listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0) {
    self->port_ = ntohs(bound.sin_port);
  }
  self->accept_thread_ = std::thread([s = self.get()] { s->AcceptLoop(); });
  return self;
}

HttpServer::~HttpServer() {
  Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void HttpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_cv_.wait(lock, [this] { return active_connections_ == 0; });
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd p{listen_fd_, POLLIN, 0};
    int r = ::poll(&p, 1, 100);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ++active_connections_;
    }
    std::thread([this, fd] {
      ServeConnection(fd);
      {
        // Notify while still holding conn_mu_: Stop()'s waiter may destroy
        // this HttpServer the moment it observes zero connections, so the
        // notify must complete before the waiter can re-acquire the mutex
        // and see the decrement.
        std::lock_guard<std::mutex> lock(conn_mu_);
        --active_connections_;
        conn_cv_.notify_all();
      }
    }).detach();
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  int waited_ms = 0;
  // Read until the end of the header block; the endpoints take no bodies.
  while (buffer.find("\r\n\r\n") == std::string::npos &&
         buffer.find("\n\n") == std::string::npos) {
    if (buffer.size() > kMaxHeaderBytes || waited_ms >= kReadTimeoutMs ||
        stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    pollfd p{fd, POLLIN, 0};
    int r = ::poll(&p, 1, 100);
    if (r < 0 && errno != EINTR) {
      ::close(fd);
      return;
    }
    if (r <= 0) {
      waited_ms += 100;
      continue;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      ::close(fd);
      return;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  // Request line: METHOD SP TARGET SP HTTP/x.y
  size_t eol = buffer.find_first_of("\r\n");
  std::string request_line = buffer.substr(0, eol);
  size_t sp1 = request_line.find(' ');
  size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  HttpResponse response;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 400;
    response.body = "malformed request line\n";
  } else {
    HttpRequest request;
    request.method = request_line.substr(0, sp1);
    request.path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    size_t query = request.path.find('?');
    if (query != std::string::npos) request.path.resize(query);
    if (request.method != "GET") {
      response.status = 405;
      response.body = "only GET is supported\n";
    } else {
      response = handler_(request);
    }
  }

  std::string out = StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, ReasonPhrase(response.status),
      response.content_type.c_str(), response.body.size());
  out += response.body;
  WriteAll(fd, out);
  ::close(fd);
}

// ---------------------------------------------------------------------------
// TimeSeriesRing

void TimeSeriesRing::RecordRequest(uint64_t latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++current_.requests;
  ++current_.lat_buckets[obs::Histogram::BucketIndex(latency_us)];
}

void TimeSeriesRing::RecordShed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++current_.shed;
}

void TimeSeriesRing::Tick(int64_t queue_depth, int64_t repl_lag) {
  std::lock_guard<std::mutex> lock(mu_);
  current_.queue_depth = queue_depth;
  current_.repl_lag = repl_lag;
  ring_[next_] = current_;
  next_ = (next_ + 1) % kSlots;
  size_ = std::min(size_ + 1, kSlots);
  current_ = Slot{};
}

uint64_t TimeSeriesRing::SlotQuantile(const Slot& slot, double q) {
  if (slot.requests == 0) return 0;
  uint64_t target = static_cast<uint64_t>(q * slot.requests);
  if (target < 1) target = 1;
  uint64_t cumulative = 0;
  for (int i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    cumulative += slot.lat_buckets[i];
    if (cumulative >= target) return obs::Histogram::BucketUpperBound(i);
  }
  return obs::Histogram::BucketUpperBound(obs::Histogram::kNumBuckets - 1);
}

std::string TimeSeriesRing::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string qps, p50, p99, depth, shed, lag;
  for (int i = 0; i < size_; ++i) {
    // Oldest sealed slot first.
    const Slot& slot = ring_[(next_ + kSlots - size_ + i) % kSlots];
    if (i != 0) {
      for (std::string* column : {&qps, &p50, &p99, &depth, &shed, &lag}) {
        *column += ',';
      }
    }
    qps += std::to_string(slot.requests);
    p50 += std::to_string(SlotQuantile(slot, 0.50));
    p99 += std::to_string(SlotQuantile(slot, 0.99));
    depth += std::to_string(slot.queue_depth);
    shed += std::to_string(slot.shed);
    lag += std::to_string(slot.repl_lag);
  }
  return StrFormat(
      "{\"resolution_s\":1,\"samples\":%d,\"qps\":[%s],\"p50_us\":[%s],"
      "\"p99_us\":[%s],\"queue_depth\":[%s],\"shed\":[%s],\"repl_lag\":[%s]}",
      size_, qps.c_str(), p50.c_str(), p99.c_str(), depth.c_str(),
      shed.c_str(), lag.c_str());
}

}  // namespace dire::server
