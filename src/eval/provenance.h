#ifndef DIRE_EVAL_PROVENANCE_H_
#define DIRE_EVAL_PROVENANCE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"
#include "base/hash.h"
#include "base/result.h"
#include "storage/database.h"

namespace dire::eval {

// Records, for every derived tuple, the evaluation round in which it first
// appeared. Pass a tracker through EvalOptions::tracker; rounds then allow
// Explain() to rebuild well-founded derivation trees (each premise strictly
// older than its conclusion, so recursive predicates cannot justify a fact
// with itself).
class ProvenanceTracker {
 public:
  void Record(const std::string& predicate, const storage::Tuple& tuple,
              int round) {
    rounds_[predicate].emplace(tuple, round);
  }

  // Round of first derivation; 0 for unknown tuples (EDB facts). Accepts a
  // borrowed row view (transparent lookup — no key materialization).
  int RoundOf(const std::string& predicate, storage::RowRef tuple) const {
    auto it = rounds_.find(predicate);
    if (it == rounds_.end()) return 0;
    auto jt = it->second.find(tuple);
    return jt == it->second.end() ? 0 : jt->second;
  }

  void Clear() { rounds_.clear(); }

 private:
  std::unordered_map<std::string,
                     std::unordered_map<storage::Tuple, int,
                                        storage::TupleViewHash,
                                        storage::TupleViewEq>>
      rounds_;
};

// One node of a derivation tree: `fact` was produced by rule `rule_index`
// of the program (or is an EDB fact when rule_index == -1), from the listed
// premises.
struct Derivation {
  ast::Atom fact;
  int rule_index = -1;
  std::vector<Derivation> premises;

  // Pretty tree rendering:
  //   t(a,c)  [rule 1]
  //   |- e(a,b)  [edb]
  //   `- t(b,c)  [rule 2]
  //      `- e(b,c)  [edb]
  std::string ToString() const;
};

struct ExplainOptions {
  // Guard against pathological depth (cannot trigger on consistent
  // tracker data, where premise rounds strictly decrease).
  int max_depth = 10000;
};

// Builds one derivation tree for the ground `fact` (all arguments
// constants) against a database previously evaluated with `tracker`
// attached. Fails if the fact is not in the database or no well-founded
// rule instance explains it (e.g. the tracker was not attached).
Result<Derivation> Explain(storage::Database* db, const ast::Program& program,
                           const ProvenanceTracker& tracker,
                           const ast::Atom& fact,
                           const ExplainOptions& options = {});

}  // namespace dire::eval

#endif  // DIRE_EVAL_PROVENANCE_H_
