#include "eval/topdown.h"

#include "base/obs.h"
#include "eval/builtins.h"

namespace dire::eval {
namespace {

// Binds the variables of `atom` against `tuple`; false on mismatch with the
// existing bindings or the atom's constants/repeats. Newly bound variables
// are recorded in `trail`.
bool BindAtom(const ast::Atom& atom, storage::RowRef tuple,
              storage::SymbolTable* symbols,
              std::map<std::string, storage::ValueId>* bindings,
              std::vector<std::string>* trail) {
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const ast::Term& t = atom.args[i];
    if (t.IsConstant()) {
      if (symbols->Intern(t.text()) != tuple[i]) return false;
      continue;
    }
    auto it = bindings->find(t.text());
    if (it != bindings->end()) {
      if (it->second != tuple[i]) return false;
    } else {
      bindings->emplace(t.text(), tuple[i]);
      trail->push_back(t.text());
    }
  }
  return true;
}

}  // namespace

TabledTopDown::TabledTopDown(storage::Database* db,
                             const ast::Program& program)
    : db_(db), program_(program) {
  for (const ast::Rule& r : program.rules) {
    if (!r.IsFact()) idb_.insert(r.head.predicate);
  }
}

Status TabledTopDown::EnsureFactsLoaded() {
  if (facts_loaded_) return Status::Ok();
  facts_loaded_ = true;
  return db_->LoadFacts(program_);
}

TabledTopDown::CallKey TabledTopDown::MakeKey(const ast::Atom& goal,
                                              const Bindings& bindings) const {
  CallKey key;
  key.predicate = goal.predicate;
  for (const ast::Term& t : goal.args) {
    if (t.IsConstant()) {
      key.pattern += 'b';
      key.bound.push_back(
          const_cast<storage::SymbolTable&>(db_->symbols()).Intern(t.text()));
      continue;
    }
    auto it = bindings.find(t.text());
    if (it != bindings.end()) {
      key.pattern += 'b';
      key.bound.push_back(it->second);
    } else {
      key.pattern += 'f';
    }
  }
  return key;
}

Result<QueryAnswer> TabledTopDown::Query(const ast::Atom& query) {
  obs::Span span("topdown.query", "eval");
  span.Attr("query", query.predicate);
  obs::GetCounter("dire_topdown_queries_total", "Tabled top-down queries")
      ->Add(1);
  for (const ast::Rule& r : program_.rules) {
    for (const ast::Atom& a : r.body) {
      if (a.negated) {
        return Status::InvalidArgument(
            "tabled top-down evaluation is implemented for positive "
            "programs; negated literal in: " +
            r.ToString());
      }
    }
  }
  DIRE_RETURN_IF_ERROR(EnsureFactsLoaded());

  QueryAnswer out;
  Bindings empty;
  if (idb_.count(query.predicate) == 0) {
    // EDB query: plain selection.
    storage::Relation* rel = db_->Find(query.predicate);
    if (rel == nullptr) return out;
    for (storage::RowRef t : rel->rows()) {
      Bindings bindings;
      std::vector<std::string> trail;
      if (BindAtom(query, t, &db_->symbols(), &bindings, &trail)) {
        out.tuples.emplace_back(t.begin(), t.end());
      }
    }
    return out;
  }

  CallKey root = MakeKey(query, empty);
  // Outer fixpoint: re-solve until no table grows (cyclic tables pick up
  // the answers discovered by later passes).
  do {
    grew_ = false;
    completed_this_pass_.clear();
    ++stats_.outer_passes;
    DIRE_RETURN_IF_ERROR(SolveCall(root));
  } while (grew_);

  stats_.tables = tables_.size();
  stats_.answers = 0;
  for (const auto& [key, answers] : tables_) stats_.answers += answers.size();
  span.Attr("outer_passes", stats_.outer_passes);
  span.Attr("tables", stats_.tables);
  span.Attr("answers", stats_.answers);
  obs::GetCounter("dire_topdown_answers_total",
                  "Answers tabled by top-down queries")
      ->Add(stats_.answers);

  for (const storage::Tuple& t : tables_[root]) {
    Bindings bindings;
    std::vector<std::string> trail;
    if (BindAtom(query, t, &db_->symbols(), &bindings, &trail)) {
      out.tuples.push_back(t);
    }
  }
  return out;
}

Status TabledTopDown::SolveCall(const CallKey& key) {
  if (guard_ != nullptr) DIRE_RETURN_IF_ERROR(guard_->Check());
  if (in_progress_.count(key) != 0 ||
      completed_this_pass_.count(key) != 0) {
    return Status::Ok();  // Consume the table as it stands.
  }
  in_progress_.insert(key);
  tables_[key];  // Materialize the table.

  for (const ast::Rule& rule : program_.rules) {
    if (rule.IsFact() || rule.head.predicate != key.predicate) continue;
    // Bind head variables from the call's bound positions.
    Bindings bindings;
    bool feasible = true;
    size_t bound_index = 0;
    std::vector<std::string> trail;
    for (size_t i = 0; i < rule.head.args.size() && feasible; ++i) {
      if (key.pattern[i] != 'b') continue;
      storage::ValueId value = key.bound[bound_index++];
      const ast::Term& t = rule.head.args[i];
      if (t.IsConstant()) {
        feasible = db_->symbols().Intern(t.text()) == value;
      } else {
        auto it = bindings.find(t.text());
        if (it != bindings.end()) {
          feasible = it->second == value;
        } else {
          bindings.emplace(t.text(), value);
        }
      }
    }
    if (!feasible) continue;
    DIRE_RETURN_IF_ERROR(SolveBody(key, rule, 0, &bindings));
  }

  in_progress_.erase(key);
  completed_this_pass_.insert(key);
  return Status::Ok();
}

Status TabledTopDown::SolveBody(const CallKey& key, const ast::Rule& rule,
                                size_t index, Bindings* bindings) {
  // SolveBody recurses per matched tuple, so this check bounds the whole
  // search, not just the top of each rule.
  if (guard_ != nullptr) DIRE_RETURN_IF_ERROR(guard_->Check());
  if (index == rule.body.size()) {
    // Head instance complete? Every head variable must be bound (safe rule).
    storage::Tuple answer;
    for (const ast::Term& t : rule.head.args) {
      if (t.IsConstant()) {
        answer.push_back(db_->symbols().Intern(t.text()));
        continue;
      }
      auto it = bindings->find(t.text());
      if (it == bindings->end()) {
        return Status::InvalidArgument(
            "unsafe rule: head variable '" + t.text() +
            "' unbound after solving the body of " + rule.ToString());
      }
      answer.push_back(it->second);
    }
    if (tables_[key].insert(answer).second) {
      grew_ = true;
      if (guard_ != nullptr) guard_->AddTuples(1);
    }
    return Status::Ok();
  }

  const ast::Atom& goal = rule.body[index];
  if (IsBuiltinPredicate(goal.predicate)) {
    if (goal.arity() != 2) {
      return Status::InvalidArgument("builtin '" + goal.predicate +
                                     "' takes two arguments");
    }
    storage::ValueId values[2];
    for (int i = 0; i < 2; ++i) {
      const ast::Term& t = goal.args[static_cast<size_t>(i)];
      if (t.IsConstant()) {
        values[i] = db_->symbols().Intern(t.text());
      } else {
        auto it = bindings->find(t.text());
        if (it == bindings->end()) {
          return Status::InvalidArgument(
              "unsafe builtin: variable '" + t.text() +
              "' unbound in " + goal.ToString());
        }
        values[i] = it->second;
      }
    }
    if (EvalBuiltin(goal.predicate, db_->symbols(), values[0], values[1])) {
      DIRE_RETURN_IF_ERROR(SolveBody(key, rule, index + 1, bindings));
    }
    return Status::Ok();
  }
  if (idb_.count(goal.predicate) != 0) {
    CallKey subcall = MakeKey(goal, *bindings);
    DIRE_RETURN_IF_ERROR(SolveCall(subcall));
    // Iterate over a snapshot: recursive sub-solving may grow the table;
    // the outer fixpoint pass picks up late arrivals.
    std::vector<storage::Tuple> snapshot(tables_[subcall].begin(),
                                         tables_[subcall].end());
    for (const storage::Tuple& t : snapshot) {
      std::vector<std::string> trail;
      if (BindAtom(goal, t, &db_->symbols(), bindings, &trail)) {
        DIRE_RETURN_IF_ERROR(SolveBody(key, rule, index + 1, bindings));
      }
      for (const std::string& v : trail) bindings->erase(v);
    }
    return Status::Ok();
  }

  storage::Relation* rel = db_->Find(goal.predicate);
  if (rel == nullptr) return Status::Ok();
  for (storage::RowRef t : rel->rows()) {
    std::vector<std::string> trail;
    if (BindAtom(goal, t, &db_->symbols(), bindings, &trail)) {
      DIRE_RETURN_IF_ERROR(SolveBody(key, rule, index + 1, bindings));
    }
    for (const std::string& v : trail) bindings->erase(v);
  }
  return Status::Ok();
}

}  // namespace dire::eval
