#ifndef DIRE_EVAL_MAGIC_H_
#define DIRE_EVAL_MAGIC_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "base/result.h"
#include "eval/evaluator.h"
#include "storage/database.h"

namespace dire::eval {

// Magic-sets rewriting for positive Datalog queries with constants.
//
// The paper's §6 notes that the compiled evaluation algorithms it builds on
// (Henschen–Naqvi [6], Bancilhon et al. [3]) "use constants from the queries
// that cause the recursive relation to be constructed to restrict lookups
// during evaluation". This module implements that technique in its standard
// form: given a query atom such as t(a, Y), predicates are adorned with
// bound/free patterns (t^bf), magic predicates (m_t^bf) collect the bindings
// reachable from the query constants, and each rule is guarded by the magic
// predicate of its head, so bottom-up evaluation only derives facts relevant
// to the query.
struct MagicRewrite {
  // The transformed program: adorned rules, magic rules, and the seed fact.
  ast::Program program;
  // Adorned predicate holding the query's answers (e.g. "t@bf").
  std::string answer_predicate;
  // The query rewritten against the answer predicate.
  ast::Atom rewritten_query;
  // The adornment string, 'b'/'f' per argument position.
  std::string adornment;
};

// Rewrites `program` for the given query atom. The query may mix constants
// (bound) and distinct variables (free). Fails if the query predicate is
// unknown or if the program is not positive Datalog. The adornment worklist
// can visit up to 2^arity patterns per predicate, so the optional `guard`
// bounds the transform itself, not just the subsequent evaluation.
Result<MagicRewrite> MagicSetTransform(const ast::Program& program,
                                       const ast::Atom& query,
                                       const ExecutionGuard* guard = nullptr);

struct QueryAnswer {
  std::vector<storage::Tuple> tuples;  // Bindings of the query atom.
  EvalStats stats;                     // Evaluation statistics.
};

// Convenience driver: applies the magic rewrite, evaluates it against `db`
// (facts in `program` are loaded first), and returns the matching tuples of
// the original query atom.
Result<QueryAnswer> AnswerQuery(storage::Database* db,
                                const ast::Program& program,
                                const ast::Atom& query,
                                const EvalOptions& options = {});

// Baseline for comparison: evaluates the whole program to fixpoint and then
// selects the tuples matching `query`.
Result<QueryAnswer> AnswerQueryByFullEvaluation(
    storage::Database* db, const ast::Program& program,
    const ast::Atom& query, const EvalOptions& options = {});

// A read-only selection over an already-materialized database. Unlike
// AnswerQuery (which rewrites and evaluates, inserting magic relations into
// the database), this never mutates anything, so concurrent selections over
// a frozen database are safe — it is the server's QUERY path, where the
// fixpoint is kept materialized and queries only read it.
struct SelectResult {
  std::vector<storage::Tuple> tuples;  // Matches, in relation order.
  // True when `guard` tripped mid-scan; `tuples` is then a sound prefix of
  // the full answer and `exhausted_reason` names the limit that tripped.
  bool exhausted = false;
  std::string exhausted_reason;
};

// Selects the tuples of `query.predicate` matching the query's constant /
// repeated-variable pattern. A missing relation yields no rows; an arity
// mismatch is an error. When `guard` is set, its deadline and cancellation
// are polled periodically and every match is charged against its tuple
// budget, so a selection can return a bounded partial prefix instead of
// scanning without limit.
Result<SelectResult> SelectMatching(const storage::Database& db,
                                    const ast::Atom& query,
                                    const ExecutionGuard* guard = nullptr);

}  // namespace dire::eval

#endif  // DIRE_EVAL_MAGIC_H_
