#include "eval/checkpoint.h"

#include <utility>

#include "base/io.h"
#include "base/log.h"
#include "base/obs.h"
#include "base/string_util.h"

namespace dire::eval {

uint32_t ProgramCrc(std::string_view program_text) {
  return io::Crc32c(program_text);
}

Status DataDirCheckpointer::Checkpoint(int stratum_index, int rounds_done,
                                       const DeltaMap* deltas) {
  storage::SnapshotWriteOptions opts;
  opts.meta[storage::kMetaStratum] = std::to_string(stratum_index);
  opts.meta[storage::kMetaRounds] = std::to_string(rounds_done);
  opts.meta[storage::kMetaProgramCrc] = io::CrcToHex(program_crc_);
  if (deltas != nullptr) {
    for (const auto& [predicate, rel] : *deltas) {
      opts.extra_relations.emplace_back(
          std::string(storage::kDeltaSectionPrefix) + predicate, rel.get());
    }
  }
  return data_dir_->Checkpoint(opts);
}

Result<ResumePoint> BuildResumePoint(storage::DataDir* data_dir,
                                     uint32_t program_crc) {
  const storage::RecoveredCheckpoint& rec = data_dir->recovered();
  ResumePoint resume;
  if (!rec.has_meta) return resume;  // Plain data directory: start fresh.
  if (rec.has_program_crc && rec.program_crc != program_crc) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint belongs to a different program (checkpoint crc %s, "
        "program crc %s); refusing to resume",
        io::CrcToHex(rec.program_crc).c_str(),
        io::CrcToHex(program_crc).c_str()));
  }
  resume.stratum_index = rec.stratum;
  resume.rounds_done = rec.rounds;
  resume.have_deltas = !rec.deltas.empty() && rec.rounds > 0;
  if (!resume.have_deltas) return resume;
  storage::Database* db = data_dir->db();
  for (const auto& [predicate, rows] : rec.deltas) {
    const storage::Relation* full = db->Find(predicate);
    // The checkpointing run serialized the full relation alongside its
    // delta, so a missing or narrower relation means the directory was
    // tampered with between sections — treat as corruption, not a crash.
    if (full == nullptr) {
      return Status::Corruption("checkpointed delta for '" + predicate +
                                "' has no matching relation in the snapshot");
    }
    auto rel =
        std::make_unique<storage::Relation>(predicate, full->arity());
    for (const std::vector<std::string>& row : rows) {
      if (row.size() != full->arity()) {
        return Status::Corruption(StrFormat(
            "checkpointed delta tuple for '%s' has %zu values, arity is %zu",
            predicate.c_str(), row.size(), full->arity()));
      }
      storage::Tuple t;
      t.reserve(row.size());
      for (const std::string& v : row) t.push_back(db->symbols().Intern(v));
      rel->Insert(t);
    }
    resume.deltas.emplace(predicate, std::move(rel));
  }
  return resume;
}

Result<RecoverResult> RecoverDatabase(const std::string& dir,
                                      const ast::Program& program,
                                      std::string_view program_text,
                                      EvalOptions options) {
  obs::Span span("checkpoint.recover", "persist");
  span.Attr("dir", dir);
  obs::GetCounter("dire_recoveries_total",
                  "Checkpoint/restart recoveries attempted")
      ->Add(1);
  if (options.checkpointer != nullptr) {
    return Status::InvalidArgument(
        "RecoverDatabase supplies its own checkpointer; options.checkpointer "
        "must be null");
  }
  DIRE_ASSIGN_OR_RETURN(std::unique_ptr<storage::DataDir> data_dir,
                        storage::DataDir::Open(dir));
  const uint32_t crc = ProgramCrc(program_text);
  DIRE_ASSIGN_OR_RETURN(ResumePoint resume,
                        BuildResumePoint(data_dir.get(), crc));
  span.Attr("resume_stratum", resume.stratum_index);
  span.Attr("resume_rounds", resume.rounds_done);
  if (log::Enabled(log::Level::kInfo) &&
      (resume.stratum_index > 0 || resume.have_deltas)) {
    log::Info("checkpoint", "resuming from checkpoint",
              {{"stratum", std::to_string(resume.stratum_index)},
               {"rounds", std::to_string(resume.rounds_done)},
               {"have_deltas", resume.have_deltas ? "true" : "false"}});
  }
  DataDirCheckpointer checkpointer(data_dir.get(), crc);
  options.checkpointer = &checkpointer;
  Evaluator evaluator(data_dir->db(), options);
  DIRE_ASSIGN_OR_RETURN(EvalStats stats,
                        evaluator.Evaluate(program, &resume));
  RecoverResult result;
  result.data_dir = std::move(data_dir);
  result.stats = stats;
  return result;
}

}  // namespace dire::eval
