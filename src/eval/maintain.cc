#include "eval/maintain.h"

#include <algorithm>
#include <utility>

#include "base/failpoints.h"
#include "base/obs.h"
#include "eval/builtins.h"
#include "eval/cost.h"
#include "eval/evaluator.h"

namespace dire::eval {
namespace {

// Scratch relation name prefixes. '$' cannot appear in a parsed predicate,
// so these names never collide with program relations (the same reservation
// the checkpoint's "$delta:" sections rely on). Per base or derived
// predicate p, one ApplyDelta call may materialize:
//
//   $ivm:i:p   tuples that net-appeared in p (input for base, output for
//              derived — later strata read these as their input deltas)
//   $ivm:d:p   tuples that net-disappeared from p
//   $ivm:a:p   counting accumulator: candidate head tuples with the signed
//              derivation-count delta each collected
//   $ivm:x:p   rows of p whose derivation count reached zero (to remove)
//   $ivm:o:p   DRed delete overestimate
//   $ivm:r:p   DRed tuples rescued by rederivation
//   $ivm:n:p   DRed tuples inserted by the insert phase
//   $ivm:c:p   DRed rederivation candidates of the current round
//   $ivm:s:p   per-round staging (kept out of relations a running plan reads)
//   $ivm:f:p   semi-naive frontier read by the current round
//   $ivm:g:p   semi-naive frontier written by the current round
constexpr char kInsPrefix[] = "$ivm:i:";
constexpr char kDelPrefix[] = "$ivm:d:";
constexpr char kAccPrefix[] = "$ivm:a:";
constexpr char kDeadPrefix[] = "$ivm:x:";
constexpr char kOverPrefix[] = "$ivm:o:";
constexpr char kRescPrefix[] = "$ivm:r:";
constexpr char kNewPrefix[] = "$ivm:n:";
constexpr char kCandPrefix[] = "$ivm:c:";
constexpr char kStagePrefix[] = "$ivm:s:";
constexpr char kFrontPrefix[] = "$ivm:f:";
constexpr char kNextPrefix[] = "$ivm:g:";
constexpr char kPrimePrefix[] = "$ivm:p:";

// One way a body atom can be read by a rewritten variant: an atom (possibly
// renamed onto a scratch relation) and the sign its matches contribute.
struct Choice {
  ast::Atom atom;
  int sign = 1;
};
using ChoiceList = std::vector<Choice>;

ast::Atom Renamed(const ast::Atom& a, const char* prefix) {
  ast::Atom out = a;
  out.predicate = std::string(prefix) + a.predicate;
  out.negated = false;
  return out;
}

bool NonEmpty(const storage::Relation* r) {
  return r != nullptr && !r->empty();
}

// The OLD state of a changed atom, exactly, as signed inclusion-exclusion
// over the NEW physical relation and the delta scans:
//   positive q:  [old q]  = [q] + [q in D] - [q in I]
//   negated  q:  [old !q] = [!q] + [q in I] - [q in D]
// (a tuple is in old q iff it is in new q and not just inserted, or it was
// just deleted; dually for the complement).
ChoiceList OldExactChoices(const ast::Atom& a, const storage::Relation* ins,
                           const storage::Relation* del) {
  ChoiceList out;
  out.push_back({a, 1});
  if (!a.negated) {
    if (NonEmpty(del)) out.push_back({Renamed(a, kDelPrefix), 1});
    if (NonEmpty(ins)) out.push_back({Renamed(a, kInsPrefix), -1});
  } else {
    if (NonEmpty(ins)) out.push_back({Renamed(a, kInsPrefix), 1});
    if (NonEmpty(del)) out.push_back({Renamed(a, kDelPrefix), -1});
  }
  return out;
}

// An unsigned SUPERSET of the old state — enough for DRed's delete
// overestimate, which only needs to reach every derivation that might have
// existed: old q is contained in q union D; old !q in !q union I.
ChoiceList OldSupersetChoices(const ast::Atom& a, const storage::Relation* ins,
                              const storage::Relation* del) {
  ChoiceList out;
  out.push_back({a, 1});
  if (!a.negated) {
    if (NonEmpty(del)) out.push_back({Renamed(a, kDelPrefix), 1});
  } else {
    if (NonEmpty(ins)) out.push_back({Renamed(a, kInsPrefix), 1});
  }
  return out;
}

// Expands the per-position choice lists into their cartesian product of
// rule variants. An empty choice list means a required delta relation is
// empty and the whole product vanishes.
template <typename VariantT>
void ExpandChoices(const ast::Atom& head, const std::vector<ChoiceList>& choices,
                   int delta_idx, std::vector<VariantT>* out) {
  for (const ChoiceList& c : choices) {
    if (c.empty()) return;
  }
  std::vector<size_t> pick(choices.size(), 0);
  while (true) {
    VariantT v;
    v.rule.head = head;
    v.sign = 1;
    v.delta_idx = delta_idx;
    for (size_t j = 0; j < choices.size(); ++j) {
      const Choice& ch = choices[j][pick[j]];
      v.rule.body.push_back(ch.atom);
      v.sign *= ch.sign;
    }
    out->push_back(std::move(v));
    size_t j = 0;
    for (; j < choices.size(); ++j) {
      if (++pick[j] < choices[j].size()) break;
      pick[j] = 0;
    }
    if (j == choices.size()) break;
  }
}

// StatsProvider for variant planning: "$ivm:" names resolve to the scratch
// relations, everything else to the live database — the same resolution the
// executor uses, so the planner prices exactly what will run.
class ScratchStats : public StatsProvider {
 public:
  ScratchStats(
      const storage::Database* db,
      const std::map<std::string, std::unique_ptr<storage::Relation>>* scratch)
      : db_(db), scratch_(scratch) {}

  bool Lookup(const std::string& predicate, AtomSource /*source*/,
              RelationEstimate* out) const override {
    const storage::Relation* rel = nullptr;
    auto it = scratch_->find(predicate);
    if (it != scratch_->end()) {
      rel = it->second.get();
    } else {
      rel = db_->Find(predicate);
    }
    if (rel == nullptr) return false;
    out->rows = static_cast<double>(rel->size());
    out->distinct.resize(rel->arity());
    for (size_t c = 0; c < rel->arity(); ++c) {
      out->distinct[c] =
          std::max(1.0, static_cast<double>(rel->DistinctEstimate(c)));
    }
    return true;
  }

 private:
  const storage::Database* db_;
  const std::map<std::string, std::unique_ptr<storage::Relation>>* scratch_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Variant builders

// Counting delta: the telescoped difference of the rule's body product,
//   sum over i of  old(a_1..a_{i-1}) x delta(a_i) x new(a_{i+1}..a_n)
// where delta of a positive atom is +I -D and of a negated atom +D -I.
// Positions are kept in original body order, so CompileOptions::delta_atom
// can lead the join from the (small) delta scan.
std::vector<Maintainer::Variant> Maintainer::CountingVariants(
    const ast::Rule& r, const ChangeMap& changed) {
  std::vector<Variant> out;
  const size_t n = r.body.size();
  for (size_t i = 0; i < n; ++i) {
    const ast::Atom& a = r.body[i];
    if (IsBuiltinPredicate(a.predicate)) continue;
    auto it = changed.find(a.predicate);
    if (it == changed.end()) continue;
    const Change& ch = it->second;
    ChoiceList delta;
    if (!a.negated) {
      if (NonEmpty(ch.ins)) delta.push_back({Renamed(a, kInsPrefix), 1});
      if (NonEmpty(ch.del)) delta.push_back({Renamed(a, kDelPrefix), -1});
    } else {
      if (NonEmpty(ch.del)) delta.push_back({Renamed(a, kDelPrefix), 1});
      if (NonEmpty(ch.ins)) delta.push_back({Renamed(a, kInsPrefix), -1});
    }
    if (delta.empty()) continue;
    std::vector<ChoiceList> choices(n);
    choices[i] = std::move(delta);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const ast::Atom& b = r.body[j];
      const Change* cj = nullptr;
      if (!IsBuiltinPredicate(b.predicate)) {
        auto jt = changed.find(b.predicate);
        if (jt != changed.end()) cj = &jt->second;
      }
      if (j < i && cj != nullptr) {
        choices[j] = OldExactChoices(b, cj->ins, cj->del);
      } else {
        choices[j] = {{b, 1}};
      }
    }
    ExpandChoices(r.head, choices, static_cast<int>(i), &out);
  }
  return out;
}

// The rule's body product over the OLD state of every changed atom — used
// to (re)prime derivation counts lazily, after base relations have already
// moved on to the new state.
std::vector<Maintainer::Variant> Maintainer::OldStateVariants(
    const ast::Rule& r, const ChangeMap& changed) {
  std::vector<Variant> out;
  const size_t n = r.body.size();
  std::vector<ChoiceList> choices(n);
  for (size_t j = 0; j < n; ++j) {
    const ast::Atom& b = r.body[j];
    const Change* cj = nullptr;
    if (!IsBuiltinPredicate(b.predicate)) {
      auto jt = changed.find(b.predicate);
      if (jt != changed.end()) cj = &jt->second;
    }
    if (cj != nullptr) {
      choices[j] = OldExactChoices(b, cj->ins, cj->del);
    } else {
      choices[j] = {{b, 1}};
    }
  }
  ExpandChoices(r.head, choices, -1, &out);
  return out;
}

// DRed phase 1 seeds: derivations that consumed a tuple the delta removed
// from a non-stratum body position — a deleted tuple of a positive atom, or
// an inserted tuple of a negated one. Other changed non-stratum positions
// read the old-state superset; in-stratum positions read the physical
// relation, whose removal is deferred to phase 2 precisely so it still
// holds the old stratum content here.
std::vector<Maintainer::Variant> Maintainer::DeleteSeedVariants(
    const ast::Rule& r, const ChangeMap& changed,
    const std::set<std::string>& members) {
  std::vector<Variant> out;
  const size_t n = r.body.size();
  for (size_t i = 0; i < n; ++i) {
    const ast::Atom& a = r.body[i];
    if (IsBuiltinPredicate(a.predicate) || members.count(a.predicate) != 0) {
      continue;
    }
    auto it = changed.find(a.predicate);
    if (it == changed.end()) continue;
    ChoiceList seed;
    if (!a.negated) {
      if (NonEmpty(it->second.del)) seed.push_back({Renamed(a, kDelPrefix), 1});
    } else {
      if (NonEmpty(it->second.ins)) seed.push_back({Renamed(a, kInsPrefix), 1});
    }
    if (seed.empty()) continue;
    std::vector<ChoiceList> choices(n);
    choices[i] = std::move(seed);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const ast::Atom& b = r.body[j];
      const Change* cj = nullptr;
      if (!IsBuiltinPredicate(b.predicate) && members.count(b.predicate) == 0) {
        auto jt = changed.find(b.predicate);
        if (jt != changed.end()) cj = &jt->second;
      }
      if (cj != nullptr) {
        choices[j] = OldSupersetChoices(b, cj->ins, cj->del);
      } else {
        choices[j] = {{b, 1}};
      }
    }
    ExpandChoices(r.head, choices, static_cast<int>(i), &out);
  }
  return out;
}

// DRed phase 1 propagation: derivations consuming an already-overdeleted
// in-stratum tuple (the frontier), other positions as in the seeds.
std::vector<Maintainer::Variant> Maintainer::OverPropagateVariants(
    const ast::Rule& r, const ChangeMap& changed,
    const std::set<std::string>& members) {
  std::vector<Variant> out;
  const size_t n = r.body.size();
  for (size_t i = 0; i < n; ++i) {
    const ast::Atom& a = r.body[i];
    if (a.negated || IsBuiltinPredicate(a.predicate) ||
        members.count(a.predicate) == 0) {
      continue;
    }
    std::vector<ChoiceList> choices(n);
    choices[i] = {{Renamed(a, kFrontPrefix), 1}};
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const ast::Atom& b = r.body[j];
      const Change* cj = nullptr;
      if (!IsBuiltinPredicate(b.predicate) && members.count(b.predicate) == 0) {
        auto jt = changed.find(b.predicate);
        if (jt != changed.end()) cj = &jt->second;
      }
      if (cj != nullptr) {
        choices[j] = OldSupersetChoices(b, cj->ins, cj->del);
      } else {
        choices[j] = {{b, 1}};
      }
    }
    ExpandChoices(r.head, choices, static_cast<int>(i), &out);
  }
  return out;
}

// DRed phase 4 seeds: derivations enabled by a tuple the delta added to a
// non-stratum position — an inserted tuple of a positive atom, or a deleted
// tuple of a negated one. Every other position reads the NEW state (base
// relations and lower strata are already new; in-stratum relations hold the
// post-delete, post-rederive certain set, which the propagation rounds
// extend). Insertions are monotone, so new-state reads are exact here.
std::vector<Maintainer::Variant> Maintainer::InsertSeedVariants(
    const ast::Rule& r, const ChangeMap& changed,
    const std::set<std::string>& members) {
  std::vector<Variant> out;
  const size_t n = r.body.size();
  for (size_t i = 0; i < n; ++i) {
    const ast::Atom& a = r.body[i];
    if (IsBuiltinPredicate(a.predicate) || members.count(a.predicate) != 0) {
      continue;
    }
    auto it = changed.find(a.predicate);
    if (it == changed.end()) continue;
    ChoiceList seed;
    if (!a.negated) {
      if (NonEmpty(it->second.ins)) seed.push_back({Renamed(a, kInsPrefix), 1});
    } else {
      if (NonEmpty(it->second.del)) seed.push_back({Renamed(a, kDelPrefix), 1});
    }
    if (seed.empty()) continue;
    std::vector<ChoiceList> choices(n);
    choices[i] = std::move(seed);
    for (size_t j = 0; j < n; ++j) {
      if (j != i) choices[j] = {{r.body[j], 1}};
    }
    ExpandChoices(r.head, choices, static_cast<int>(i), &out);
  }
  return out;
}

// DRed phase 4 propagation: plain semi-naive differentiation on the
// in-stratum positions, frontier-driven.
std::vector<Maintainer::Variant> Maintainer::InsertPropagateVariants(
    const ast::Rule& r, const std::set<std::string>& members) {
  std::vector<Variant> out;
  const size_t n = r.body.size();
  for (size_t i = 0; i < n; ++i) {
    const ast::Atom& a = r.body[i];
    if (a.negated || IsBuiltinPredicate(a.predicate) ||
        members.count(a.predicate) == 0) {
      continue;
    }
    std::vector<ChoiceList> choices(n);
    choices[i] = {{Renamed(a, kFrontPrefix), 1}};
    for (size_t j = 0; j < n; ++j) {
      if (j != i) choices[j] = {{r.body[j], 1}};
    }
    ExpandChoices(r.head, choices, static_cast<int>(i), &out);
  }
  return out;
}

// DRed phase 3: candidate-driven rederivation. Prepending the candidate
// scan restricts the rule to the overdeleted tuples still in question, and
// the unchanged body then checks derivability from the current (certain)
// state. Safe because the original rule was safe: head variables are all
// bound by the candidate atom.
Maintainer::Variant Maintainer::RederiveVariant(const ast::Rule& r) {
  Variant v;
  v.rule.head = r.head;
  ast::Atom cand;
  cand.predicate = std::string(kCandPrefix) + r.head.predicate;
  cand.args = r.head.args;
  v.rule.body.push_back(std::move(cand));
  for (const ast::Atom& b : r.body) v.rule.body.push_back(b);
  v.delta_idx = 0;
  return v;
}

// ---------------------------------------------------------------------------
// Maintainer

Maintainer::Maintainer(storage::Database* db, const ast::Program& program)
    : Maintainer(db, program, Options()) {}

Maintainer::Maintainer(storage::Database* db, const ast::Program& program,
                       Options options)
    : db_(db),
      program_(program),
      options_(options),
      init_status_(Status::Ok()) {
  ast::DependencyGraph graph(program_);
  if (!graph.IsStratified()) {
    init_status_ = Status::InvalidArgument(
        "program cannot be maintained incrementally: " +
        graph.StratificationViolation());
    return;
  }
  for (const ast::Rule& r : program_.rules) {
    arity_[r.head.predicate] = r.head.arity();
    for (const ast::Atom& a : r.body) {
      if (!IsBuiltinPredicate(a.predicate)) arity_[a.predicate] = a.arity();
    }
    if (!r.IsFact()) derived_.insert(r.head.predicate);
  }
  // Program facts hold a derivation unconditionally: for derived
  // predicates, counting gives them a +1 floor and DRed never overdeletes
  // them; for base predicates, deleting one is refused (a full evaluation
  // would re-load it from the program, so maintenance deleting its
  // consequences would diverge from the re-derived fixpoint).
  for (const ast::Rule& r : program_.rules) {
    if (!r.IsFact()) continue;
    auto& rel = fact_rels_[r.head.predicate];
    if (rel == nullptr) {
      rel = std::make_unique<storage::Relation>(
          "$ivm:fact:" + r.head.predicate, r.head.arity());
    }
    storage::Tuple t;
    t.reserve(r.head.args.size());
    for (const ast::Term& term : r.head.args) {
      if (term.IsVariable()) {
        init_status_ =
            Status::InvalidArgument("fact contains a variable: " +
                                    r.head.ToString());
        return;
      }
      t.push_back(db_->symbols().Intern(term.text()));
    }
    rel->Insert(t);
  }
  for (const std::vector<std::string>& scc : graph.Strata()) {
    Stratum s;
    s.members.insert(scc.begin(), scc.end());
    for (const ast::Rule& r : program_.rules) {
      if (!r.IsFact() && s.members.count(r.head.predicate) != 0) {
        s.rules.push_back(&r);
      }
    }
    s.recursive = s.members.size() > 1;
    if (!s.recursive) {
      for (const ast::Rule* r : s.rules) {
        if (r->BodyUses(r->head.predicate)) {
          s.recursive = true;
          break;
        }
      }
    }
    strata_.push_back(std::move(s));
  }
}

void Maintainer::Reset() {
  dirty_ = false;
  counted_.clear();
  scratch_.clear();
}

Result<MaintainStats> Maintainer::ApplyDelta(
    const std::vector<FactDelta>& inserts,
    const std::vector<FactDelta>& deletes, const ExecutionGuard* guard) {
  obs::Span span("ivm.apply", "eval");
  span.Attr("inserts", static_cast<uint64_t>(inserts.size()));
  span.Attr("deletes", static_cast<uint64_t>(deletes.size()));
  Result<MaintainStats> result = ApplyDeltaImpl(inserts, deletes, guard);
  if (obs::kEnabled) {
    static obs::Counter* applied = obs::GetCounter(
        "dire_ivm_applied_total",
        "Delta batches applied by incremental view maintenance");
    static obs::Counter* failed = obs::GetCounter(
        "dire_ivm_failed_total",
        "Maintenance batches that aborted, leaving the maintainer dirty");
    static obs::Counter* ins = obs::GetCounter(
        "dire_ivm_tuples_inserted_total",
        "Net derived tuples inserted by maintenance");
    static obs::Counter* del = obs::GetCounter(
        "dire_ivm_tuples_deleted_total",
        "Net derived tuples deleted by maintenance");
    static obs::Counter* over = obs::GetCounter(
        "dire_ivm_overdeleted_total",
        "Tuples provisionally deleted by DRed overestimates");
    static obs::Counter* resc = obs::GetCounter(
        "dire_ivm_rederived_total",
        "Overdeleted tuples rescued by rederivation");
    static obs::Counter* variants = obs::GetCounter(
        "dire_ivm_variants_total",
        "Rewritten rule variants executed by maintenance");
    if (result.ok()) {
      const MaintainStats& st = result.value();
      applied->Add(1);
      ins->Add(st.tuples_inserted);
      del->Add(st.tuples_deleted);
      over->Add(st.overdeleted);
      resc->Add(st.tuples_rederived);
      variants->Add(st.variants_executed);
      span.Attr("strata_touched", st.strata_touched);
      span.Attr("rounds", static_cast<uint64_t>(st.rounds));
    } else {
      failed->Add(1);
      span.Attr("error", result.status().message());
    }
  }
  return result;
}

Result<MaintainStats> Maintainer::ApplyDeltaImpl(
    const std::vector<FactDelta>& inserts,
    const std::vector<FactDelta>& deletes, const ExecutionGuard* guard) {
  DIRE_RETURN_IF_ERROR(init_status_);
  if (dirty_) {
    return Status::InvalidArgument(
        "maintainer is dirty after a failed ApplyDelta; rebuild the derived "
        "state and Reset()");
  }
  DIRE_FAILPOINT("ivm.apply");
  scratch_.clear();
  ChangeMap changed;
  DIRE_RETURN_IF_ERROR(IngestBaseDeltas(inserts, /*insert=*/true, &changed));
  DIRE_RETURN_IF_ERROR(IngestBaseDeltas(deletes, /*insert=*/false, &changed));
  MaintainStats st;
  if (changed.empty()) return st;
  // Sentinel: any early return below leaves the maintainer dirty, because
  // the derived state may be mid-maintenance (see the class contract).
  dirty_ = true;
  for (size_t i = 0; i < strata_.size(); ++i) {
    const Stratum& s = strata_[i];
    if (s.rules.empty()) continue;
    bool touched = false;
    for (const ast::Rule* r : s.rules) {
      for (const ast::Atom& a : r->body) {
        if (IsBuiltinPredicate(a.predicate)) continue;
        auto it = changed.find(a.predicate);
        if (it != changed.end() &&
            (NonEmpty(it->second.ins) || NonEmpty(it->second.del))) {
          touched = true;
          break;
        }
      }
      if (touched) break;
    }
    if (!touched) continue;
    ++st.strata_touched;
    if (s.recursive) {
      DIRE_RETURN_IF_ERROR(DredStratum(s, &changed, guard, &st));
    } else {
      DIRE_RETURN_IF_ERROR(
          CountingStratum(static_cast<int>(i), s, &changed, guard, &st));
    }
  }
  dirty_ = false;
  // Scratch (including the net-change relations) only means anything within
  // this one ApplyDelta; free it eagerly.
  scratch_.clear();
  return st;
}

Status Maintainer::IngestBaseDeltas(const std::vector<FactDelta>& deltas,
                                    bool insert, ChangeMap* changed) {
  for (const FactDelta& d : deltas) {
    if (IsBuiltinPredicate(d.predicate)) {
      return Status::InvalidArgument("delta targets builtin predicate '" +
                                     d.predicate + "'");
    }
    if (derived_.count(d.predicate) != 0) {
      return Status::InvalidArgument(
          "delta targets derived predicate '" + d.predicate +
          "'; maintenance accepts base-fact changes only");
    }
    storage::Relation* rel = db_->Find(d.predicate);
    if (rel == nullptr || rel->arity() != d.values.size()) {
      return Status::InvalidArgument(
          "delta for '" + d.predicate +
          "' does not match a base relation of that arity");
    }
    storage::Tuple t;
    t.reserve(d.values.size());
    for (const std::string& v : d.values) {
      t.push_back(db_->symbols().Intern(v));
    }
    const bool present = rel->Contains(t);
    if (insert && !present) {
      return Status::InvalidArgument(
          "insert delta for '" + d.predicate +
          "' names a tuple absent from the base relation; apply the base "
          "change before maintaining");
    }
    if (!insert && present) {
      return Status::InvalidArgument(
          "delete delta for '" + d.predicate +
          "' names a tuple still present in the base relation; apply the "
          "base change before maintaining");
    }
    if (!insert) {
      auto fit = fact_rels_.find(d.predicate);
      if (fit != fact_rels_.end() && fit->second->Contains(t)) {
        // A full evaluation re-loads program facts, so the re-derived
        // fixpoint keeps this tuple's consequences; deleting them here
        // would diverge from it.
        return Status::InvalidArgument(
            "delete delta for '" + d.predicate +
            "' names a program fact; only runtime-added facts can be "
            "maintained away");
      }
    }
    storage::Relation* sc = EnsureScratch(
        (insert ? kInsPrefix : kDelPrefix) + d.predicate, d.values.size());
    sc->Insert(t);
    Change& ch = (*changed)[d.predicate];
    if (insert) {
      ch.ins = sc;
    } else {
      ch.del = sc;
    }
  }
  return Status::Ok();
}

Status Maintainer::EnsureStratumCounts(int index, const Stratum& s,
                                       const ChangeMap& changed,
                                       const ExecutionGuard* guard,
                                       MaintainStats* st) {
  const std::string& head = *s.members.begin();
  DIRE_ASSIGN_OR_RETURN(storage::Relation * h,
                        db_->GetOrCreate(head, arity_.at(head)));
  h->EnableCounts();
  for (size_t r = 0; r < h->size(); ++r) h->SetCount(r, 0);
  // The old-state variants are signed inclusion-exclusion over the NEW base
  // relations, so an individual variant can derive tuples outside the old
  // fixpoint (e.g. the plain-body variant sees just-inserted base tuples).
  // Those cancel in the net sum; only net counts are meaningful. Accumulate
  // per tuple first, then validate against the relation.
  storage::Relation* acc = FreshScratch(kPrimePrefix + head, arity_.at(head));
  acc->EnableCounts();
  for (const ast::Rule* rule : s.rules) {
    for (const Variant& v : OldStateVariants(*rule, changed)) {
      Sink sink = [acc, sign = v.sign](storage::RowRef t, uint64_t hash) {
        uint32_t row;
        if (acc->InsertHashed(t, hash)) {
          row = static_cast<uint32_t>(acc->size() - 1);
        } else {
          row = acc->FindRowHashed(t, hash);
        }
        acc->AdjustCount(row, sign);
      };
      DIRE_RETURN_IF_ERROR(RunVariant(v, /*multiplicity=*/true, guard, sink,
                                      st));
    }
  }
  for (size_t r = 0; r < acc->size(); ++r) {
    const int64_t c = acc->CountAt(r);
    if (c == 0) continue;
    const uint32_t row = h->FindRow(acc->row(r));
    if (row == storage::Relation::kNoRow || c < 0) {
      return Status::Internal(
          "old-state derivation of '" + head +
          "' disagrees with the database; the derived state was not at "
          "fixpoint");
    }
    h->SetCount(row, h->CountAt(row) + c);
  }
  auto fit = fact_rels_.find(head);
  if (fit != fact_rels_.end()) {
    for (storage::RowRef t : fit->second->rows()) {
      uint32_t row = h->FindRow(t);
      if (row == storage::Relation::kNoRow) {
        return Status::Internal("base fact of '" + head +
                                "' is missing from its relation");
      }
      h->AdjustCount(row, 1);
    }
  }
  counted_.insert(index);
  ++st->count_inits;
  return Status::Ok();
}

Status Maintainer::CountingStratum(int index, const Stratum& s,
                                   ChangeMap* changed,
                                   const ExecutionGuard* guard,
                                   MaintainStats* st) {
  const std::string& head = *s.members.begin();
  const size_t ar = arity_.at(head);
  if (counted_.count(index) == 0) {
    DIRE_RETURN_IF_ERROR(EnsureStratumCounts(index, s, *changed, guard, st));
  }
  storage::Relation* h = db_->Find(head);  // Exists after count init.
  // Accumulate the signed derivation-count delta per candidate head tuple.
  storage::Relation* acc = FreshScratch(kAccPrefix + head, ar);
  acc->EnableCounts();
  for (const ast::Rule* rule : s.rules) {
    for (const Variant& v : CountingVariants(*rule, *changed)) {
      Sink sink = [acc, sign = v.sign](storage::RowRef t, uint64_t hash) {
        uint32_t row;
        if (acc->InsertHashed(t, hash)) {
          row = static_cast<uint32_t>(acc->size() - 1);
        } else {
          row = acc->FindRowHashed(t, hash);
        }
        acc->AdjustCount(row, sign);
      };
      DIRE_RETURN_IF_ERROR(RunVariant(v, /*multiplicity=*/true, guard, sink,
                                      st));
    }
  }
  DIRE_FAILPOINT("ivm.counting_merge");
  storage::Relation* net_i = nullptr;
  storage::Relation* net_d = nullptr;
  storage::Relation* dead = nullptr;
  for (size_t r = 0; r < acc->size(); ++r) {
    const int64_t c = acc->CountAt(r);
    if (c == 0) continue;
    storage::RowRef t = acc->row(r);
    const uint32_t row = h->FindRow(t);
    if (row == storage::Relation::kNoRow) {
      if (c < 0) {
        return Status::Internal("derivation count of an absent '" + head +
                                "' tuple went negative");
      }
      h->Insert(t);
      h->SetCount(h->size() - 1, c);
      if (net_i == nullptr) net_i = FreshScratch(kInsPrefix + head, ar);
      net_i->Insert(t);
      ++st->tuples_inserted;
      if (guard != nullptr) guard->AddTuples(1);
    } else {
      const int64_t now = h->CountAt(row) + c;
      if (now < 0) {
        return Status::Internal("derivation count of a '" + head +
                                "' tuple went negative");
      }
      if (now == 0) {
        if (dead == nullptr) dead = FreshScratch(kDeadPrefix + head, ar);
        if (net_d == nullptr) net_d = FreshScratch(kDelPrefix + head, ar);
        dead->Insert(t);
        net_d->Insert(t);
        ++st->tuples_deleted;
      } else {
        h->SetCount(row, now);
      }
    }
  }
  if (dead != nullptr) db_->RemoveMatching(head, *dead);
  if (net_i != nullptr || net_d != nullptr) {
    (*changed)[head] = Change{net_i, net_d};
  }
  ++st->counting_passes;
  if (guard != nullptr) DIRE_RETURN_IF_ERROR(guard->Check());
  return Status::Ok();
}

Status Maintainer::DredStratum(const Stratum& s, ChangeMap* changed,
                               const ExecutionGuard* guard,
                               MaintainStats* st) {
  const int cap = options_.max_rounds;
  auto check_rounds = [&]() -> Status {
    if (cap > 0 && st->rounds > static_cast<size_t>(cap)) {
      return Status::ResourceExhausted(
          "incremental maintenance exceeded its fixpoint round cap");
    }
    return Status::Ok();
  };
  for (const std::string& p : s.members) {
    const size_t ar = arity_.at(p);
    DIRE_ASSIGN_OR_RETURN(storage::Relation * rel, db_->GetOrCreate(p, ar));
    (void)rel;
    FreshScratch(kOverPrefix + p, ar);
    FreshScratch(kRescPrefix + p, ar);
    FreshScratch(kNewPrefix + p, ar);
    FreshScratch(kFrontPrefix + p, ar);
    FreshScratch(kNextPrefix + p, ar);
  }

  // Phase 1: overestimate the deleted set. The sink keeps only tuples that
  // exist (every phys relation still holds the old stratum content — the
  // physical removal is deferred to phase 2) and are not protected program
  // facts, and feeds first sightings into the next frontier.
  auto over_sink = [this](const std::string& headp) -> Sink {
    storage::Relation* over = FindScratch(kOverPrefix + headp);
    storage::Relation* next = FindScratch(kNextPrefix + headp);
    const storage::Relation* facts = nullptr;
    auto fit = fact_rels_.find(headp);
    if (fit != fact_rels_.end()) facts = fit->second.get();
    const storage::Relation* phys = db_->Find(headp);
    return [over, next, facts, phys](storage::RowRef t, uint64_t hash) {
      if (phys == nullptr || !phys->ContainsHashed(t, hash)) return;
      if (facts != nullptr && facts->ContainsHashed(t, hash)) return;
      if (over->InsertHashed(t, hash)) next->InsertHashed(t, hash);
    };
  };
  for (const ast::Rule* rule : s.rules) {
    for (const Variant& v : DeleteSeedVariants(*rule, *changed, s.members)) {
      DIRE_RETURN_IF_ERROR(RunVariant(v, /*multiplicity=*/false, guard,
                                      over_sink(rule->head.predicate), st));
    }
  }
  while (true) {
    bool any = false;
    for (const std::string& p : s.members) {
      scratch_[kFrontPrefix + p] = std::move(scratch_[kNextPrefix + p]);
      FreshScratch(kNextPrefix + p, arity_.at(p));
      if (!FindScratch(kFrontPrefix + p)->empty()) any = true;
    }
    if (!any) break;
    ++st->rounds;
    DIRE_RETURN_IF_ERROR(check_rounds());
    for (const ast::Rule* rule : s.rules) {
      for (const Variant& v :
           OverPropagateVariants(*rule, *changed, s.members)) {
        DIRE_RETURN_IF_ERROR(RunVariant(v, /*multiplicity=*/false, guard,
                                        over_sink(rule->head.predicate), st));
      }
    }
  }
  size_t overdeleted = 0;
  for (const std::string& p : s.members) {
    overdeleted += FindScratch(kOverPrefix + p)->size();
  }
  st->overdeleted += overdeleted;

  if (overdeleted > 0) {
    // Phase 2: physically remove the overestimate (in-place compaction;
    // relation pointers stay valid, but row ids shift).
    DIRE_FAILPOINT("ivm.dred_delete");
    for (const std::string& p : s.members) {
      storage::Relation* over = FindScratch(kOverPrefix + p);
      if (!over->empty()) db_->RemoveMatching(p, *over);
    }

      // Phase 3: rederive. Each round asks, for every overdeleted tuple not
    // yet rescued, whether some rule still derives it from the current
    // certain state; rescues merge in after the round's plans finish (a
    // sink must never grow a relation the running plan reads).
    DIRE_FAILPOINT("ivm.dred_rederive");
    while (true) {
      bool any_cand = false;
      for (const std::string& p : s.members) {
        const size_t ar = arity_.at(p);
        storage::Relation* cand = FreshScratch(kCandPrefix + p, ar);
        const storage::Relation* over = FindScratch(kOverPrefix + p);
        const storage::Relation* resc = FindScratch(kRescPrefix + p);
        for (storage::RowRef t : over->rows()) {
          if (!resc->Contains(t)) cand->Insert(t);
        }
        if (!cand->empty()) any_cand = true;
        FreshScratch(kStagePrefix + p, ar);
      }
      if (!any_cand) break;
      for (const ast::Rule* rule : s.rules) {
        const std::string& hp = rule->head.predicate;
        if (FindScratch(kCandPrefix + hp)->empty()) continue;
        storage::Relation* resc = FindScratch(kRescPrefix + hp);
        storage::Relation* stage = FindScratch(kStagePrefix + hp);
        Sink sink = [resc, stage](storage::RowRef t, uint64_t hash) {
          if (resc->InsertHashed(t, hash)) stage->InsertHashed(t, hash);
        };
        DIRE_RETURN_IF_ERROR(RunVariant(RederiveVariant(*rule),
                                        /*multiplicity=*/false, guard, sink,
                                        st));
      }
      size_t rescued_now = 0;
      for (const std::string& p : s.members) {
        storage::Relation* stage = FindScratch(kStagePrefix + p);
        if (stage->empty()) continue;
        storage::Relation* rel = db_->Find(p);
        for (storage::RowRef t : stage->rows()) rel->Insert(t);
        rescued_now += stage->size();
      }
      st->tuples_rederived += rescued_now;
      if (rescued_now == 0) break;
      ++st->rounds;
      DIRE_RETURN_IF_ERROR(check_rounds());
    }
  }

  // Phase 4: insert new derivations, semi-naive over the stratum, seeded
  // from the non-stratum deltas. The sink stages tuples absent from the
  // head; the merge step after each round feeds phys, the accumulated new
  // set, and the next frontier.
  DIRE_FAILPOINT("ivm.insert_merge");
  for (const std::string& p : s.members) {
    FreshScratch(kStagePrefix + p, arity_.at(p));
  }
  auto ins_sink = [this](const std::string& headp) -> Sink {
    const storage::Relation* phys = db_->Find(headp);
    storage::Relation* stage = FindScratch(kStagePrefix + headp);
    return [phys, stage](storage::RowRef t, uint64_t hash) {
      if (phys != nullptr && phys->ContainsHashed(t, hash)) return;
      stage->InsertHashed(t, hash);
    };
  };
  for (const ast::Rule* rule : s.rules) {
    for (const Variant& v : InsertSeedVariants(*rule, *changed, s.members)) {
      DIRE_RETURN_IF_ERROR(RunVariant(v, /*multiplicity=*/false, guard,
                                      ins_sink(rule->head.predicate), st));
    }
  }
  while (true) {
    bool any = false;
    for (const std::string& p : s.members) {
      const size_t ar = arity_.at(p);
      storage::Relation* stage = FindScratch(kStagePrefix + p);
      storage::Relation* front = FreshScratch(kFrontPrefix + p, ar);
      if (!stage->empty()) {
        storage::Relation* rel = db_->Find(p);
        storage::Relation* fresh = FindScratch(kNewPrefix + p);
        for (storage::RowRef t : stage->rows()) {
          if (rel->Insert(t)) {
            fresh->Insert(t);
            front->Insert(t);
            if (guard != nullptr) guard->AddTuples(1);
          }
        }
      }
      FreshScratch(kStagePrefix + p, ar);
      if (!front->empty()) any = true;
    }
    if (!any) break;
    ++st->rounds;
    DIRE_RETURN_IF_ERROR(check_rounds());
    for (const ast::Rule* rule : s.rules) {
      for (const Variant& v : InsertPropagateVariants(*rule, s.members)) {
        DIRE_RETURN_IF_ERROR(RunVariant(v, /*multiplicity=*/false, guard,
                                        ins_sink(rule->head.predicate), st));
      }
    }
  }

  // Net effects for higher strata: deleted = overdeleted, not rescued, not
  // re-inserted; inserted = newly inserted and not just a reincarnation of
  // a provisionally deleted tuple.
  for (const std::string& p : s.members) {
    const size_t ar = arity_.at(p);
    const storage::Relation* over = FindScratch(kOverPrefix + p);
    const storage::Relation* resc = FindScratch(kRescPrefix + p);
    const storage::Relation* fresh = FindScratch(kNewPrefix + p);
    storage::Relation* net_d = nullptr;
    storage::Relation* net_i = nullptr;
    for (storage::RowRef t : over->rows()) {
      if (resc->Contains(t) || fresh->Contains(t)) continue;
      if (net_d == nullptr) net_d = FreshScratch(kDelPrefix + p, ar);
      net_d->Insert(t);
      ++st->tuples_deleted;
    }
    for (storage::RowRef t : fresh->rows()) {
      if (over->Contains(t) && !resc->Contains(t)) continue;
      if (net_i == nullptr) net_i = FreshScratch(kInsPrefix + p, ar);
      net_i->Insert(t);
      ++st->tuples_inserted;
    }
    if (net_d != nullptr || net_i != nullptr) {
      (*changed)[p] = Change{net_i, net_d};
    }
  }
  ++st->dred_passes;
  if (guard != nullptr) DIRE_RETURN_IF_ERROR(guard->Check());
  return Status::Ok();
}

Status Maintainer::RunVariant(const Variant& v, bool multiplicity,
                              const ExecutionGuard* guard, const Sink& sink,
                              MaintainStats* st) {
  CompileOptions copts;
  copts.reorder = true;
  copts.planner = options_.planner;
  ScratchStats stats(db_, &scratch_);
  copts.stats = &stats;
  copts.delta_atom = v.delta_idx;
  DIRE_ASSIGN_OR_RETURN(CompiledRule plan,
                        CompileRule(v.rule, &db_->symbols(), copts));
  if (multiplicity) {
    // Defeat projection-pushdown dedup: counting needs every satisfying
    // body binding, not one per distinct live projection.
    for (CompiledAtom& a : plan.body) a.live_bind_positions = a.bind_positions;
  }
  MutableRelationResolver mresolve =
      [this](const CompiledAtom& atom) -> storage::Relation* {
    storage::Relation* sc = FindScratch(atom.predicate);
    return sc != nullptr ? sc : db_->Find(atom.predicate);
  };
  PrepareIndexes(plan, mresolve);
  RelationResolver resolve =
      [this](const CompiledAtom& atom) -> const storage::Relation* {
    storage::Relation* sc = FindScratch(atom.predicate);
    return sc != nullptr ? sc : db_->Find(atom.predicate);
  };
  ExecuteRule(plan, resolve, sink, &db_->symbols(), guard);
  ++st->variants_executed;
  if (guard != nullptr && guard->Tripped()) return guard->Check();
  return Status::Ok();
}

storage::Relation* Maintainer::EnsureScratch(const std::string& name,
                                             size_t arity, bool counts) {
  auto& slot = scratch_[name];
  if (slot == nullptr) {
    slot = std::make_unique<storage::Relation>(name, arity);
  }
  if (counts) slot->EnableCounts();
  return slot.get();
}

storage::Relation* Maintainer::FreshScratch(const std::string& name,
                                            size_t arity) {
  auto rel = std::make_unique<storage::Relation>(name, arity);
  storage::Relation* ptr = rel.get();
  scratch_[name] = std::move(rel);
  return ptr;
}

storage::Relation* Maintainer::FindScratch(const std::string& name) const {
  auto it = scratch_.find(name);
  return it == scratch_.end() ? nullptr : it->second.get();
}

}  // namespace dire::eval
