#ifndef DIRE_EVAL_EXPLAIN_H_
#define DIRE_EVAL_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "base/result.h"
#include "eval/evaluator.h"
#include "eval/plan.h"
#include "storage/database.h"
#include "storage/value.h"

namespace dire::eval {

// Renders a compiled rule's physical plan: the chosen join order, for each
// atom which positions are index probes / residual checks / fresh bindings,
// and the delta source used by semi-naive variants. For humans debugging
// the optimizer, and for the CLI's `--explain`.
//
//   t(X,Y) :- e(X,Z), t(Z,Y).
//   => join order:
//      1. scan  t            bind #1->Z #2->Y           [delta]
//      2. probe e on #2=Z    bind #1->X
//      head: t(X, Y)
//
// Cost-planned rules additionally carry per-atom cardinality estimates
// (`est=N`, the planner's cumulative join cardinality after the atom) and
// a plan-level `est out` line. When `actual_rows` is non-null (one entry
// per body atom, as produced by CountAtomMatches) each atom also shows
// the observed cardinality (`actual=N`); `actual_emitted` likewise
// annotates the `est out` line.
std::string ExplainPlan(const CompiledRule& plan,
                        const storage::SymbolTable& symbols,
                        const std::vector<uint64_t>* actual_rows = nullptr,
                        const uint64_t* actual_emitted = nullptr);

// Compiles every rule of `program` (plain full-relation plans, greedy
// reordering as the evaluator would, no statistics) and explains each.
Result<std::string> ExplainProgram(const ast::Program& program);

// Statistics-aware variant: compiles each rule against `db`'s live
// relation statistics under `planner` and explains the resulting plans.
// With `with_actuals` each plan is additionally executed in counting mode
// (nothing is inserted) so estimated and observed cardinalities print
// side by side — run it after evaluation to audit the cost model. `db` is
// mutated only through symbol interning and, under with_actuals, the
// index builds the plans probe.
Result<std::string> ExplainProgram(const ast::Program& program,
                                   storage::Database* db,
                                   PlannerMode planner,
                                   bool with_actuals = false);

// Renders an evaluation's per-rule and per-stratum breakdowns as an aligned
// human-readable table (the CLI's `--stats`):
//
//   rule                                    stratum  firings  emitted  inserted      time
//   t(X, Y) :- e(X, Y).                           1        1        5         5     1.2us
//   t(X, Y) :- e(X, Z), t(Z, Y).                  1        5       20        11    14.8us
//   ...
//   stratum  predicates  recursive  rounds  inserted      time
//   ...
//
// Inserted counts sum to stats.tuples_derived. Returns "" when the stats
// carry no rule breakdown (e.g. a facts-only program).
std::string FormatEvalStats(const EvalStats& stats);

}  // namespace dire::eval

#endif  // DIRE_EVAL_EXPLAIN_H_
