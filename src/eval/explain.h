#ifndef DIRE_EVAL_EXPLAIN_H_
#define DIRE_EVAL_EXPLAIN_H_

#include <string>

#include "ast/ast.h"
#include "base/result.h"
#include "eval/evaluator.h"
#include "eval/plan.h"
#include "storage/value.h"

namespace dire::eval {

// Renders a compiled rule's physical plan: the chosen join order, for each
// atom which positions are index probes / residual checks / fresh bindings,
// and the delta source used by semi-naive variants. For humans debugging
// the optimizer, and for the CLI's `--explain`.
//
//   t(X,Y) :- e(X,Z), t(Z,Y).
//   => join order:
//      1. scan  t            bind #1->Z #2->Y           [delta]
//      2. probe e on #2=Z    bind #1->X
//      head: t(X, Y)
std::string ExplainPlan(const CompiledRule& plan,
                        const storage::SymbolTable& symbols);

// Compiles every rule of `program` (plain full-relation plans, greedy
// reordering as the evaluator would) and explains each.
Result<std::string> ExplainProgram(const ast::Program& program);

// Renders an evaluation's per-rule and per-stratum breakdowns as an aligned
// human-readable table (the CLI's `--stats`):
//
//   rule                                    stratum  firings  emitted  inserted      time
//   t(X, Y) :- e(X, Y).                           1        1        5         5     1.2us
//   t(X, Y) :- e(X, Z), t(Z, Y).                  1        5       20        11    14.8us
//   ...
//   stratum  predicates  recursive  rounds  inserted      time
//   ...
//
// Inserted counts sum to stats.tuples_derived. Returns "" when the stats
// carry no rule breakdown (e.g. a facts-only program).
std::string FormatEvalStats(const EvalStats& stats);

}  // namespace dire::eval

#endif  // DIRE_EVAL_EXPLAIN_H_
